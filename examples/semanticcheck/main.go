// Semanticcheck: the paper's use case 2. A nucleotide sequence is
// accidentally fed into the protein experiment. Because A, C, G and T
// are all valid amino-acid letters, every activity runs without error —
// the workflow is syntactically correct but semantically meaningless.
// Only post-hoc validation of the provenance trace against the
// registry's semantic annotations exposes the mistake.
//
//	go run ./examples/semanticcheck
package main

import (
	"fmt"
	"log"

	"preserv/internal/experiment"
	"preserv/internal/ontology"
	"preserv/internal/preserv"
	"preserv/internal/registry"
	"preserv/internal/semval"
	"preserv/internal/store"
)

func main() {
	// Provenance store.
	svc := preserv.NewService(store.New(store.NewMemoryBackend()))
	srv, err := preserv.Serve(svc, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Registry with the experiment's annotated service descriptions.
	reg := registry.NewRegistry()
	rsrv, err := registry.Serve(reg, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer rsrv.Close()
	regClient := registry.NewClient(rsrv.URL, nil)
	if err := experiment.PublishAll(regClient, []string{"gzip", "ppmz"}); err != nil {
		log.Fatal(err)
	}

	params := experiment.Params{
		SampleBytes:     4 << 10,
		Permutations:    4,
		BatchSize:       2,
		Seed:            2005,
		NucleotideInput: true, // the accident
	}
	res, err := experiment.Run(params, experiment.Config{
		Mode:      experiment.RecordSync,
		StoreURLs: []string{srv.URL},
	})
	if err != nil {
		log.Fatal(err) // does NOT happen: the error is purely semantic
	}
	fmt.Printf("experiment ran without error; session %s\n", res.SessionID.Short())
	fmt.Println("(the nucleotide alphabet ACGT is a subset of the amino-acid alphabet,")
	fmt.Println(" so group encoding and compression all 'worked')")
	fmt.Println()
	fmt.Print(res.ResultsText)

	// The reviewer validates the trace.
	validator := &semval.Validator{
		Store:    preserv.NewClient(srv.URL, nil),
		Registry: regClient,
		Ontology: ontology.Bioinformatics(),
	}
	rep, err := validator.ValidateSession(res.SessionID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("semantic validation: %d interactions, %d data edges, %d registry calls, %.1f ms\n",
		rep.Interactions, rep.EdgesChecked, rep.RegistryCalls,
		float64(rep.Elapsed.Microseconds())/1000)
	if rep.Valid() {
		fmt.Println("verdict: semantically valid (unexpected!)")
		return
	}
	fmt.Printf("verdict: SEMANTICALLY INVALID — %d violation(s):\n", len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Printf("  %s\n", v)
	}
}
