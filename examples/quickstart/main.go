// Quickstart: start an in-process provenance store, record the
// p-assertions documenting a tiny two-step process, and query them back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
	"preserv/internal/preserv"
	"preserv/internal/store"
)

func main() {
	// 1. A provenance store with an in-memory backend, served over HTTP.
	svc := preserv.NewService(store.New(store.NewMemoryBackend()))
	srv, err := preserv.Serve(svc, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("provenance store at", srv.URL)

	client := preserv.NewClient(srv.URL, nil)

	// 2. Document a process: a client (the enactor) invokes a greeting
	// service; both the interaction and the service's internal state are
	// asserted, grouped under one session.
	session := ids.New()
	interaction := core.Interaction{
		ID:        ids.New(),
		Sender:    "svc:enactor",
		Receiver:  "svc:greeter",
		Operation: "greet",
	}
	exchange := core.NewInteractionRecord(&core.InteractionPAssertion{
		LocalID:     "exchange-1",
		Asserter:    "svc:enactor",
		Interaction: interaction,
		View:        core.SenderView,
		Request: core.Message{Name: "invoke", Parts: []core.MessagePart{
			{Name: "name", DataID: ids.New(), Content: core.Bytes("world")},
		}},
		Response: core.Message{Name: "result", Parts: []core.MessagePart{
			{Name: "greeting", DataID: ids.New(), Content: core.Bytes("hello, world")},
		}},
		Groups:    []core.GroupRef{{Type: core.GroupSession, ID: session, Seq: 1}},
		Timestamp: time.Now().UTC(),
	})
	// The service documents its own view too — the same interaction,
	// asserted independently by the receiver.
	serviceView := core.NewActorStateRecord(&core.ActorStatePAssertion{
		LocalID:     "state-1",
		Asserter:    "svc:greeter",
		Interaction: interaction,
		View:        core.ReceiverView,
		StateKind:   core.StateScript,
		Content: core.Bytes(`#!/bin/sh
echo "hello, $1"`),
		Groups:    []core.GroupRef{{Type: core.GroupSession, ID: session, Seq: 1}},
		Timestamp: time.Now().UTC(),
	})

	if _, err := client.Record("svc:enactor", []core.Record{*exchange}); err != nil {
		log.Fatal(err)
	}
	if _, err := client.Record("svc:greeter", []core.Record{*serviceView}); err != nil {
		log.Fatal(err)
	}

	// 3. Query the session back.
	records, total, err := client.Query(&prep.Query{SessionID: session})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %s holds %d p-assertions:\n", session.Short(), total)
	for _, r := range records {
		switch r.Kind {
		case core.KindInteraction:
			ip := r.Interaction
			fmt.Printf("  interaction %s: %s -> %s.%s (%d in, %d out)\n",
				ip.Interaction.ID.Short(), ip.Interaction.Sender,
				ip.Interaction.Receiver, ip.Interaction.Operation,
				len(ip.Request.Parts), len(ip.Response.Parts))
		case core.KindActorState:
			as := r.ActorState
			fmt.Printf("  actor state %s: %s documented %q (%d bytes)\n",
				as.Interaction.ID.Short(), as.Asserter, as.StateKind, len(as.Content))
		}
	}

	// 4. Ask a provenance question: which input produced the greeting?
	for _, r := range records {
		if r.Kind != core.KindInteraction {
			continue
		}
		out := r.Interaction.Response.Parts[0]
		in := r.Interaction.Request.Parts[0]
		fmt.Printf("data %s (%q) was derived from data %s (%q)\n",
			out.DataID.Short(), out.Content, in.DataID.Short(), in.Content)
	}
}
