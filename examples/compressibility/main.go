// Compressibility: run the full protein compressibility experiment of
// the paper end to end — synthetic microbial proteins, group encoding,
// shuffled permutations, gzip+ppmz compression, provenance recorded
// asynchronously to an in-process PReServ store.
//
//	go run ./examples/compressibility
package main

import (
	"fmt"
	"log"

	"preserv/internal/experiment"
	"preserv/internal/grid"
	"preserv/internal/preserv"
	"preserv/internal/store"
)

func main() {
	// A persistent-backend store, as in all the paper's evaluations.
	backend := store.NewMemoryBackend()
	svc := preserv.NewService(store.New(backend))
	srv, err := preserv.Serve(svc, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// A small simulated grid: 4 slots, 25 ms scheduling latency.
	cluster, err := grid.NewCluster(4, 25_000_000, 0)
	if err != nil {
		log.Fatal(err)
	}

	params := experiment.Params{
		SampleBytes:  32 << 10, // 32 KB sample (paper: ~100 KB)
		Permutations: 20,       // paper: up to 800
		BatchSize:    5,        // permutations per grid script (paper: 100)
		Seed:         2005,
	}
	cfg := experiment.Config{
		Mode:      experiment.RecordAsync,
		StoreURLs: []string{srv.URL},
		Cluster:   cluster,
	}

	fmt.Printf("running: %d KB sample, %d permutations, batches of %d, %s recording\n",
		params.SampleBytes>>10, params.Permutations, params.BatchSize, cfg.Mode)
	res, err := experiment.Run(params, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(res.ResultsText)
	fmt.Println()
	for _, codec := range res.Results.Codecs() {
		cs := res.Results.PerCodec[codec]
		verdict := "no structure beyond symbol frequencies"
		if cs.StructureIndex < 0.995 {
			verdict = "structure detected: sample compresses better than its permutations"
		}
		fmt.Printf("%-6s structure index %.4f — %s\n", codec, cs.StructureIndex, verdict)
	}

	fmt.Println()
	fmt.Printf("elapsed %.2fs (workflow %.2fs, shipping %.2fs)\n",
		res.Elapsed.Seconds(), res.WorkflowElapsed.Seconds(),
		(res.Elapsed - res.WorkflowElapsed).Seconds())
	fmt.Printf("recorded %d p-assertions under session %s\n", res.RecordsCreated, res.SessionID.Short())

	client := preserv.NewClient(srv.URL, nil)
	cnt, err := client.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store now holds %d records (%d interactions)\n", cnt.Records, cnt.Interactions)
	gs := cluster.Stats()
	fmt.Printf("grid: %d jobs, %.1f%% scheduling/transfer overhead\n",
		gs.JobsRun, 100*gs.OverheadFraction())
}
