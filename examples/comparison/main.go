// Comparison: the paper's use case 1. A bioinformatician runs the same
// experiment twice on the same data and gets different results; the
// provenance store reveals that the gzip service's configuration changed
// between the runs.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"preserv/internal/compare"
	"preserv/internal/core"
	"preserv/internal/experiment"
	"preserv/internal/preserv"
	"preserv/internal/store"
)

func main() {
	svc := preserv.NewService(store.New(store.NewMemoryBackend()))
	srv, err := preserv.Serve(svc, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	params := experiment.Params{
		SampleBytes:  4 << 10,
		Permutations: 4,
		BatchSize:    2,
		Seed:         2005, // same data both times
	}
	cfg := experiment.Config{
		Mode:      experiment.RecordSyncExtra, // script provenance recorded
		StoreURLs: []string{srv.URL},
	}

	// Run 1: the original configuration.
	run1, err := experiment.Run(params, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 1: session %s\n", run1.SessionID.Short())

	// Run 2: someone recompiled the gzip service with a different
	// compression level. Same data, same workflow — different scripts.
	params.ScriptConfigs = map[core.ActorID]string{
		experiment.CompressorService("gzip"): "level=1 (fast mode)",
	}
	run2, err := experiment.Run(params, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 2: session %s\n", run2.SessionID.Short())

	// The reviewer's question: were the two results obtained by the same
	// scientific process?
	client := preserv.NewClient(srv.URL, nil)
	cat, err := (&compare.Categorizer{Store: client}).Categorize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncategorised %d interactions into %d script categories (%.1f ms)\n",
		cat.InteractionsScanned, len(cat.Categories()),
		float64(cat.Elapsed.Microseconds())/1000)

	diffs := cat.SameProcess(run1.SessionID, run2.SessionID)
	if len(diffs) == 0 {
		fmt.Println("verdict: same process — the result difference must come from elsewhere")
		return
	}
	fmt.Printf("verdict: the process CHANGED between the runs (%d service(s) differ):\n", len(diffs))
	for _, d := range diffs {
		fmt.Printf("  service %s:\n", d.Service)
		for _, h := range d.OnlyInA {
			c, _ := cat.Lookup(h)
			fmt.Printf("    run 1 used: %q\n", firstLine(c.Script, 2))
		}
		for _, h := range d.OnlyInB {
			c, _ := cat.Lookup(h)
			fmt.Printf("    run 2 used: %q\n", firstLine(c.Script, 2))
		}
	}
}

// firstLine extracts the n-th line of a script for compact display.
func firstLine(script string, n int) string {
	line := 0
	start := 0
	for i, c := range script {
		if c == '\n' {
			if line == n {
				return script[start:i]
			}
			line++
			start = i + 1
		}
	}
	return script[start:]
}
