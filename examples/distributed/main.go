// Distributed: the paper's §7 future-work scenario, implemented. The
// experiment records asynchronously into two provenance store instances
// (parallel submission); afterwards both stores are consolidated into a
// single persistent store, and the consolidated documentation is used to
// answer the §3 lineage question: which inputs produced the final
// results table?
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"preserv/internal/core"
	"preserv/internal/experiment"
	"preserv/internal/prep"
	"preserv/internal/preserv"
	"preserv/internal/store"
	"preserv/internal/trace"
)

func main() {
	// Two store instances accepting parallel submissions.
	var urls []string
	var clients []*preserv.Client
	for i := 0; i < 2; i++ {
		svc := preserv.NewService(store.New(store.NewMemoryBackend()))
		srv, err := preserv.Serve(svc, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		urls = append(urls, srv.URL)
		clients = append(clients, preserv.NewClient(srv.URL, nil))
	}

	res, err := experiment.Run(experiment.Params{
		SampleBytes:  8 << 10,
		Permutations: 10,
		BatchSize:    5,
		Seed:         2005,
	}, experiment.Config{
		Mode:       experiment.RecordAsync,
		StoreURLs:  urls,
		AsyncBatch: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range clients {
		cnt, err := c.Count()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("store %d received %d records\n", i+1, cnt.Records)
	}

	// Consolidate into one persistent store.
	dir := filepath.Join(os.TempDir(), "preserv-consolidated")
	os.RemoveAll(dir)
	kb, err := store.NewKVBackend(dir)
	if err != nil {
		log.Fatal(err)
	}
	consolidated := store.New(kb)
	defer consolidated.Close()
	csrv, err := preserv.Serve(preserv.NewService(consolidated), "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer csrv.Close()
	dst := preserv.NewClient(csrv.URL, nil)
	accepted, err := preserv.Consolidate(dst, clients...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consolidated %d records into %s (kvdb at %s)\n", accepted, csrv.URL, dir)

	// Lineage over the consolidated store: trace the results table back
	// to its inputs.
	g, err := trace.Build(dst, res.SessionID)
	if err != nil {
		log.Fatal(err)
	}
	records, _, err := dst.Query(&prep.Query{
		SessionID: res.SessionID,
		Kind:      core.KindInteraction.String(),
	})
	if err != nil {
		log.Fatal(err)
	}
	var resultsID core.MessagePart
	for i := range records {
		ip := records[i].Interaction
		if ip.Interaction.Receiver != experiment.SvcAverage {
			continue
		}
		for _, p := range ip.Response.Parts {
			if p.Name == "results" {
				resultsID = p
			}
		}
	}
	if !resultsID.DataID.Valid() {
		log.Fatal("results data id not found")
	}
	lineage := g.Lineage(resultsID.DataID)
	fmt.Printf("\nthe results table (%s) derives from %d data items\n",
		resultsID.DataID.Short(), len(lineage))
	byService := map[core.ActorID]int{}
	for _, n := range lineage {
		if n.ProducedBy.Valid() {
			byService[n.Producer]++
		} else {
			byService["(workflow input)"]++
		}
	}
	for svc, n := range byService {
		fmt.Printf("  %-34s %d item(s)\n", svc, n)
	}
	fmt.Printf("\nworkflow roots: %d; session: %s\n", len(g.Roots()), res.SessionID.Short())
}
