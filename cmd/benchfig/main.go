// Command benchfig regenerates the paper's evaluation artefacts (see
// DESIGN.md's experiment index):
//
//	benchfig -exp e1             # record round-trip microbenchmark
//	benchfig -exp fig4           # Figure 4: recording overhead sweep
//	benchfig -exp fig5           # Figure 5: use-case query sweeps
//	benchfig -exp gran           # E7: granularity ablation
//	benchfig -exp dist           # E8: distributed stores
//	benchfig -exp ingest         # batched-vs-legacy write-path sweep
//	benchfig -exp query          # streaming-vs-materializing read-path sweep
//	benchfig -exp shard          # sharded-store scaling sweep (1/2/4 shards)
//	benchfig -exp obs            # instrumentation-overhead gate (on vs off)
//	benchfig -exp readpath       # memory-speed read path floor gate
//	benchfig -exp writeavail     # write availability under compaction floor gate
//	benchfig -exp pagewalk       # drain-epoch paged fan-out floor gate
//	benchfig -exp all            # everything
//
// By default the sweeps run at laptop scale (seconds); -paper selects
// the paper's parameters (100 KB samples, 100-800 permutations,
// 500-4000 store records), which takes substantially longer.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"preserv/internal/bench"
	"preserv/internal/store"
)

func main() {
	exp := flag.String("exp", "all", "experiment: e1, fig4, fig5, gran, dist, ingest, query, shard, obs, readpath, writeavail, pagewalk or all")
	paper := flag.Bool("paper", false, "run at the paper's scale (slow)")
	seed := flag.Int64("seed", 2005, "workload seed")
	quiet := flag.Bool("q", false, "suppress progress lines")
	flag.Parse()

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = io.Discard
	}
	out := os.Stdout

	runE1 := func() {
		iters := 200
		if *paper {
			iters = 1000
		}
		res, err := bench.RunE1(iters, store.NewMemoryBackend())
		if err != nil {
			log.Fatalf("benchfig: e1: %v", err)
		}
		bench.RenderE1(out, res, "memory")
		fmt.Fprintln(out)
	}

	runFig4 := func() {
		opts := bench.Fig4Options{Seed: *seed}
		if *paper {
			opts.SampleBytes = 100 << 10
			opts.PermSteps = []int{100, 200, 300, 400, 500, 600, 700, 800}
			opts.BatchSize = 100
		}
		points, err := bench.RunFigure4(opts, progress)
		if err != nil {
			log.Fatalf("benchfig: fig4: %v", err)
		}
		sum, err := bench.SummarizeFig4(points)
		if err != nil {
			log.Fatalf("benchfig: fig4 summary: %v", err)
		}
		bench.RenderFig4(out, points, sum)
		fmt.Fprintln(out)
	}

	runFig5 := func() {
		opts := bench.Fig5Options{Seed: *seed}
		if *paper {
			opts.RecordSteps = []int{500, 1000, 1500, 2000, 2500, 3000, 3500, 4000}
		}
		points, err := bench.RunFigure5(opts, progress)
		if err != nil {
			log.Fatalf("benchfig: fig5: %v", err)
		}
		sum, err := bench.SummarizeFig5(points)
		if err != nil {
			log.Fatalf("benchfig: fig5 summary: %v", err)
		}
		bench.RenderFig5(out, points, sum)
		fmt.Fprintln(out)
	}

	runGran := func() {
		opts := bench.GranOptions{Seed: *seed}
		if *paper {
			opts.SampleBytes = 100 << 10
			opts.Permutations = 200
			opts.BatchSizes = []int{1, 5, 10, 25, 50, 100, 200}
			opts.SchedulingDelay = 500 * time.Millisecond
		}
		points, err := bench.RunGranularity(opts, progress)
		if err != nil {
			log.Fatalf("benchfig: gran: %v", err)
		}
		bench.RenderGranularity(out, points)
		fmt.Fprintln(out)
	}

	runDist := func() {
		opts := bench.DistOptions{Seed: *seed}
		if *paper {
			opts.Records = 4800
		}
		points, err := bench.RunDistributed(opts, progress)
		if err != nil {
			log.Fatalf("benchfig: dist: %v", err)
		}
		bench.RenderDistributed(out, points)
		fmt.Fprintln(out)
	}

	runIngest := func() {
		records := map[string]int{"memory": 5000, "kvdb": 5000, "file": 500}
		if *paper {
			records = map[string]int{"memory": 50000, "kvdb": 50000, "file": 2000}
		}
		for _, backend := range []string{"memory", "file", "kvdb"} {
			// The legacy file-backend emulation writes one file pair per
			// posting (~40 files per record) — that cost is the point, but
			// it bounds how many records the sweep can afford there.
			if _, err := bench.RunIngestSweep(backend, []int{1, 4, 8}, 100, records[backend], out); err != nil {
				log.Fatalf("benchfig: ingest: %v", err)
			}
		}
		fmt.Fprintln(out)
	}

	runQuery := func() {
		sessions, per, reps := 50, 24, 20
		if *paper {
			sessions, per, reps = 200, 48, 50
		}
		points, err := bench.RunQueryReadSweep(sessions, per, reps, *seed, progress)
		if err != nil {
			log.Fatalf("benchfig: query: %v", err)
		}
		bench.RenderQueryRead(out, points)
		fmt.Fprintln(out)
	}

	runShard := func() {
		opts := bench.ShardSweepOptions{Seed: *seed}
		if *paper {
			opts.Sessions = 96
			opts.RecordsPerSession = 48
		}
		points, err := bench.RunShardSweep(opts, progress)
		if err != nil {
			log.Fatalf("benchfig: shard: %v", err)
		}
		bench.RenderShardSweep(out, points)
		fmt.Fprintln(out)
	}

	runObs := func() {
		opts := bench.ObsGateOptions{}
		if *paper {
			opts.Records = 20000
			opts.Trials = 5
		}
		res, err := bench.RunObsGate(opts, progress)
		if err != nil {
			log.Fatalf("benchfig: obs: %v", err)
		}
		bench.RenderObsGate(out, res)
		fmt.Fprintln(out)
		if !res.Pass {
			log.Fatalf("benchfig: obs: instrumentation overhead gate failed: ratio %.3f < %.2f",
				res.Ratio, bench.ObsGateThreshold)
		}
	}

	runReadpath := func() {
		opts := bench.ReadPathOptions{Seed: *seed}
		if *paper {
			opts.Keys = 20000
			opts.IngestBatches = 24
			opts.Sessions = 10
			opts.PerSession = 18
			opts.Reps = 8
		}
		points, err := bench.RunReadPathSweep(opts, progress)
		if err != nil {
			log.Fatalf("benchfig: readpath: %v", err)
		}
		bench.RenderReadPath(out, points)
		fmt.Fprintln(out)
		if err := bench.CheckReadPathFloors(points); err != nil {
			log.Fatalf("benchfig: readpath: %v", err)
		}
	}

	runWriteavail := func() {
		opts := bench.WriteAvailOptions{Seed: *seed}
		if *paper {
			opts.Batches = 16
			opts.BatchSize = 512
			opts.Records = 2000
			opts.Reps = 8
		}
		points, err := bench.RunWriteAvailSweep(opts, progress)
		if err != nil {
			log.Fatalf("benchfig: writeavail: %v", err)
		}
		bench.RenderWriteAvail(out, points)
		fmt.Fprintln(out)
		if err := bench.CheckWriteAvailFloors(points); err != nil {
			log.Fatalf("benchfig: writeavail: %v", err)
		}
	}

	runPagewalk := func() {
		opts := bench.PagedWalkOptions{Seed: *seed}
		if *paper {
			opts.Sessions = 64
			opts.PerSession = 48
			opts.Reps = 8
		}
		res, err := bench.RunPagedWalkGate(opts, progress)
		if err != nil {
			log.Fatalf("benchfig: pagewalk: %v", err)
		}
		bench.RenderPagedWalk(out, res)
		fmt.Fprintln(out)
		if err := bench.CheckPagedWalkFloor(res); err != nil {
			log.Fatalf("benchfig: pagewalk: %v", err)
		}
	}

	switch *exp {
	case "e1":
		runE1()
	case "fig4":
		runFig4()
	case "fig5":
		runFig5()
	case "gran":
		runGran()
	case "dist":
		runDist()
	case "ingest":
		runIngest()
	case "query":
		runQuery()
	case "shard":
		runShard()
	case "obs":
		runObs()
	case "readpath":
		runReadpath()
	case "writeavail":
		runWriteavail()
	case "pagewalk":
		runPagewalk()
	case "all":
		runE1()
		runFig4()
		runFig5()
		runGran()
		runDist()
		runIngest()
		runQuery()
		runShard()
		runObs()
		runReadpath()
		runWriteavail()
		runPagewalk()
	default:
		log.Fatalf("benchfig: unknown experiment %q", *exp)
	}
}
