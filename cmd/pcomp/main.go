// Command pcomp runs the protein compressibility experiment: the
// Figure 1 workflow over a synthetic (or FASTA-supplied) sample, with
// provenance recorded to a PReServ store under a chosen configuration.
//
// Usage:
//
//	pcomp -sample 102400 -perms 100 -batch 100 \
//	      -mode async -store http://127.0.0.1:8734
//
// The session identifier printed at the end is the handle for the
// provenance use cases (see provq).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"preserv/internal/bio"
	"preserv/internal/experiment"
	"preserv/internal/grid"
)

func main() {
	sample := flag.Int("sample", 100<<10, "collated sample size in bytes")
	perms := flag.Int("perms", 100, "number of shuffled permutations (N)")
	batch := flag.Int("batch", 100, "permutations per grid script")
	mode := flag.String("mode", "off", "recording mode: off, async, sync, sync+extra")
	stores := flag.String("store", "", "comma-separated provenance store URLs")
	groupingName := flag.String("grouping", "hydropathy4", "group coding: hydropathy4, sampath8 or identity20")
	codecs := flag.String("codecs", "gzip,ppmz", "comma-separated compression methods")
	seed := flag.Int64("seed", 2005, "workload seed")
	nucleotide := flag.Bool("nucleotide", false, "inject the use-case-2 error: nucleotide input sample")
	fasta := flag.String("fasta", "", "FASTA file of input sequences (default: synthetic proteome)")
	slots := flag.Int("slots", 0, "simulated grid slots (0 = local execution)")
	schedDelay := flag.Duration("sched-delay", 50*time.Millisecond, "simulated grid scheduling delay per job")
	flag.Parse()

	var recMode experiment.RecordingMode
	switch *mode {
	case "off", "none":
		recMode = experiment.RecordOff
	case "async":
		recMode = experiment.RecordAsync
	case "sync":
		recMode = experiment.RecordSync
	case "sync+extra", "extra":
		recMode = experiment.RecordSyncExtra
	default:
		log.Fatalf("pcomp: unknown mode %q", *mode)
	}

	grouping, ok := bio.Groupings()[*groupingName]
	if !ok {
		log.Fatalf("pcomp: unknown grouping %q (have: hydropathy4, sampath8, identity20)", *groupingName)
	}

	var storeURLs []string
	if *stores != "" {
		storeURLs = strings.Split(*stores, ",")
	}

	var cluster *grid.Cluster
	if *slots > 0 {
		var err error
		cluster, err = grid.NewCluster(*slots, *schedDelay, 0)
		if err != nil {
			log.Fatalf("pcomp: %v", err)
		}
	}

	var sequences []*bio.Sequence
	if *fasta != "" {
		f, err := os.Open(*fasta)
		if err != nil {
			log.Fatalf("pcomp: %v", err)
		}
		sequences, err = bio.ParseFASTA(f)
		f.Close()
		if err != nil {
			log.Fatalf("pcomp: parsing %s: %v", *fasta, err)
		}
		log.Printf("pcomp: loaded %d sequences from %s", len(sequences), *fasta)
	}

	params := experiment.Params{
		SampleBytes:     *sample,
		Permutations:    *perms,
		BatchSize:       *batch,
		Grouping:        grouping,
		Codecs:          strings.Split(*codecs, ","),
		Seed:            *seed,
		NucleotideInput: *nucleotide,
		Sequences:       sequences,
	}
	cfg := experiment.Config{
		Mode:      recMode,
		StoreURLs: storeURLs,
		Cluster:   cluster,
	}

	log.Printf("pcomp: sample=%dB perms=%d batch=%d grouping=%s codecs=%s mode=%s",
		*sample, *perms, *batch, grouping.Name(), *codecs, recMode)
	res, err := experiment.Run(params, cfg)
	if err != nil {
		log.Fatalf("pcomp: %v", err)
	}

	fmt.Println()
	fmt.Print(res.ResultsText)
	fmt.Println()
	fmt.Printf("session:   %s\n", res.SessionID)
	fmt.Printf("elapsed:   %.3fs (workflow %.3fs)\n", res.Elapsed.Seconds(), res.WorkflowElapsed.Seconds())
	fmt.Printf("records:   %d p-assertions\n", res.RecordsCreated)
	if cluster != nil {
		st := cluster.Stats()
		fmt.Printf("grid:      %d jobs, overhead fraction %.3f\n", st.JobsRun, st.OverheadFraction())
	}
	os.Exit(0)
}
