// Command grimoires runs the service registry (the Grimoires stand-in)
// as a standalone web service, pre-populated with the protein
// compressibility experiment's service descriptions.
//
// Usage:
//
//	grimoires -addr 127.0.0.1:8735 -codecs gzip,ppmz
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"preserv/internal/experiment"
	"preserv/internal/registry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8735", "listen address")
	codecs := flag.String("codecs", "gzip,ppmz", "comma-separated compressor services to describe")
	empty := flag.Bool("empty", false, "start with no published descriptions")
	flag.Parse()

	reg := registry.NewRegistry()
	if !*empty {
		for _, d := range experiment.Descriptions(strings.Split(*codecs, ",")) {
			if err := reg.Publish(d); err != nil {
				log.Fatalf("grimoires: publishing %s: %v", d.Service, err)
			}
		}
	}

	srv, err := registry.Serve(reg, *addr)
	if err != nil {
		log.Fatalf("grimoires: %v", err)
	}
	log.Printf("grimoires: registry listening on %s (%d services)", srv.URL, len(reg.Services()))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("grimoires: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("grimoires: close: %v", err)
	}
}
