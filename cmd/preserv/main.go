// Command preserv runs a PReServ provenance store as a standalone web
// service.
//
// Usage:
//
//	preserv -addr 127.0.0.1:8734 -backend kvdb -dir ./provenance
//
// Backends: memory (volatile), file (one file per record), kvdb (the
// embedded database, used for all paper evaluations).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"preserv/internal/preserv"
	"preserv/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8734", "listen address")
	backendName := flag.String("backend", "kvdb", "storage backend: memory, file or kvdb")
	dir := flag.String("dir", "./provenance-store", "data directory for persistent backends")
	statsEvery := flag.Duration("stats", 0, "periodically log service statistics (0 disables)")
	flag.Parse()

	var backend store.Backend
	var err error
	switch *backendName {
	case "memory":
		backend = store.NewMemoryBackend()
	case "file":
		backend, err = store.NewFileBackend(*dir)
	case "kvdb":
		backend, err = store.NewKVBackend(*dir)
	default:
		log.Fatalf("preserv: unknown backend %q", *backendName)
	}
	if err != nil {
		log.Fatalf("preserv: opening backend: %v", err)
	}

	st := store.New(backend)
	svc := preserv.NewService(st)
	srv, err := preserv.Serve(svc, *addr)
	if err != nil {
		log.Fatalf("preserv: %v", err)
	}
	log.Printf("preserv: provenance store listening on %s (backend %s)", srv.URL, backend.Name())

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				s := svc.Stats()
				cnt, err := st.Count()
				if err != nil {
					log.Printf("preserv: count: %v", err)
					continue
				}
				log.Printf("preserv: records=%d interactions=%d recordReqs=%d queryReqs=%d",
					cnt.Records, cnt.Interactions, s.RecordRequests, s.QueryRequests)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "preserv: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("preserv: close: %v", err)
	}
	if err := st.Close(); err != nil {
		log.Printf("preserv: backend close: %v", err)
	}
}
