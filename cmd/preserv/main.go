// Command preserv runs a PReServ provenance store as a standalone web
// service.
//
// Usage:
//
//	preserv -addr 127.0.0.1:8734 -backend kvdb -dir ./provenance
//	preserv -addr 127.0.0.1:8734 -backend kvdb -dir ./provenance -shards 4
//	preserv -addr 127.0.0.1:8734 -shard-endpoints http://s1:8734,http://s2:8734
//
// Backends: memory (volatile), file (one file per record), kvdb (the
// embedded database, used for all paper evaluations).
//
// With -shards N the service runs in sharded mode: N embedded child
// stores (each with its own backend under DIR/shard-XXX) behind a
// router that places writes session-affine and answers every query
// across all shards — one endpoint, N stores. With -shard-endpoints
// the children are remote PReServ instances instead, which is the
// paper's distributed PReServ with query routing in front.
//
// Telemetry: the service answers urn:prep:stats on the wire and serves
// Prometheus-format metrics at /metrics. -telemetry=false turns off the
// latency histograms and operation spans (request counters stay on);
// -pprof additionally exposes net/http/pprof under /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"preserv/internal/obs"
	"preserv/internal/preserv"
	"preserv/internal/shard"
	"preserv/internal/store"
)

// onOff is a boolean flag that also accepts on/off, so the documented
// `-mmap=off` escape hatch works alongside the stdlib true/false forms.
type onOff bool

func (o *onOff) String() string {
	if o != nil && bool(*o) {
		return "on"
	}
	return "off"
}

func (o *onOff) Set(s string) error {
	switch s {
	case "on", "true", "1", "t", "T", "TRUE", "True":
		*o = true
	case "off", "false", "0", "f", "F", "FALSE", "False":
		*o = false
	default:
		return fmt.Errorf("invalid value %q (want on/off or true/false)", s)
	}
	return nil
}

func (o *onOff) IsBoolFlag() bool { return true }

// openBackend opens one backend flavour rooted at dir.
func openBackend(flavour, dir string) (store.Backend, error) {
	switch flavour {
	case "memory":
		return store.NewMemoryBackend(), nil
	case "file":
		return store.NewFileBackend(dir)
	case "kvdb":
		return store.NewKVBackend(dir)
	}
	return nil, fmt.Errorf("unknown backend %q", flavour)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8734", "listen address")
	backendName := flag.String("backend", "kvdb", "storage backend: memory, file or kvdb")
	dir := flag.String("dir", "./provenance-store", "data directory for persistent backends")
	shards := flag.Int("shards", 0, "shard the store across N embedded child stores (0 or 1 = single store)")
	shardEndpoints := flag.String("shard-endpoints", "", "comma-separated remote store URLs to front as shards (overrides -shards)")
	statsEvery := flag.Duration("stats", 0, "periodically log service statistics (0 disables)")
	compactRatio := flag.Float64("compact-ratio", 0, "garbage-ratio threshold for delete-triggered compaction (0 = default, negative disables)")
	telemetry := flag.Bool("telemetry", true, "record latency histograms and operation spans (request counters are always on)")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof on the service listener")
	mmap := onOff(true)
	flag.Var(&mmap, "mmap", "serve file-backend segment reads from memory-mapped segments (off = plain file reads)")
	blockCacheMB := flag.Int("block-cache-mb", int(store.DefaultBlockCacheBytes>>20), "record block cache budget per store, in MiB (0 disables)")
	flag.Parse()

	obs.SetEnabled(*telemetry)
	store.SetMmapEnabled(bool(mmap))

	var svc *preserv.Service
	var closer interface{ Close() error }
	switch {
	case *shardEndpoints != "":
		rt, err := preserv.NewRemoteRouter(*shardEndpoints)
		if err != nil {
			log.Fatalf("preserv: %v", err)
		}
		svc = preserv.NewShardedService(rt)
		closer = rt
		log.Printf("preserv: sharded front-end over %d remote endpoint(s)", rt.NumShards())
	case *shards > 1:
		var children []shard.Shard
		for i := 0; i < *shards; i++ {
			backend, err := openBackend(*backendName, filepath.Join(*dir, fmt.Sprintf("shard-%03d", i)))
			if err != nil {
				log.Fatalf("preserv: opening shard %d backend: %v", i, err)
			}
			cs := store.New(backend)
			cs.SetBlockCacheBytes(int64(*blockCacheMB) << 20)
			children = append(children, shard.NewLocal(cs))
		}
		rt, err := shard.NewRouter(children...)
		if err != nil {
			log.Fatalf("preserv: %v", err)
		}
		svc = preserv.NewShardedService(rt)
		closer = rt
		log.Printf("preserv: sharded store over %d embedded %s shard(s)", *shards, *backendName)
	default:
		backend, err := openBackend(*backendName, *dir)
		if err != nil {
			log.Fatalf("preserv: opening backend: %v", err)
		}
		st := store.New(backend)
		st.SetBlockCacheBytes(int64(*blockCacheMB) << 20)
		svc = preserv.NewService(st)
		closer = st
		log.Printf("preserv: single %s-backed store", *backendName)
	}

	if *compactRatio != 0 {
		svc.SetCompactRatio(*compactRatio)
	}
	if *pprofFlag {
		svc.EnablePprof()
	}
	srv, err := preserv.Serve(svc, *addr)
	if err != nil {
		log.Fatalf("preserv: %v", err)
	}
	log.Printf("preserv: provenance store listening on %s (metrics at %s/metrics)", srv.URL, srv.URL)

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				s := svc.Stats()
				cnt, err := svc.Provenance().Count()
				if err != nil {
					log.Printf("preserv: count: %v", err)
					continue
				}
				log.Printf("preserv: records=%d interactions=%d recordReqs=%d queryReqs=%d shards=%d",
					cnt.Records, cnt.Interactions, s.RecordRequests, s.QueryRequests, s.Shards)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "preserv: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("preserv: close: %v", err)
	}
	if err := closer.Close(); err != nil {
		log.Printf("preserv: backend close: %v", err)
	}
}
