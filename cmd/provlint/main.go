// Command provlint runs the provlint analyzer suite (internal/lint):
// lockorder, atomicfield, typedfault, obshotpath, and genbump — the
// mechanical checks over the store's concurrency and wire-contract
// invariants.
//
// It is dual-mode:
//
//   - As a vet tool, it speaks the unitchecker protocol, so
//     `go vet -vettool=$(which provlint) ./...` runs the suite with
//     go's own package loading and caching.
//
//   - Standalone, `provlint [-json] [packages]` re-executes the go
//     command with itself as the vet tool — `provlint ./...` is all
//     CI needs. -json emits the vet JSON stream (diagnostics keyed by
//     package and analyzer, suggested fixes included) instead of the
//     human-readable text.
//
// `provlint help` lists the analyzers; `provlint help <name>`
// describes one.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"preserv/internal/lint"
)

func main() {
	args := os.Args[1:]
	if isVetProtocol(args) {
		unitchecker.Main(lint.Analyzers()...) // exits
	}
	os.Exit(standalone(args))
}

// isVetProtocol reports whether the process was invoked by the go
// command's vet machinery (or asked for analyzer help, which the
// unitchecker also serves): a *.cfg argument carries the unit of work,
// -V=full is the version/fingerprint query, and -flags asks for the
// tool's flag schema.
func isVetProtocol(args []string) bool {
	for _, a := range args {
		switch {
		case strings.HasSuffix(a, ".cfg"),
			strings.HasPrefix(a, "-V"),
			a == "-flags",
			a == "help":
			return true
		}
	}
	return false
}

// standalone re-executes `go vet` with this binary as the vet tool, so
// one command covers package loading, caching, and analysis.
func standalone(args []string) int {
	var jsonOut bool
	patterns := make([]string, 0, len(args))
	for _, a := range args {
		switch a {
		case "-json", "--json":
			jsonOut = true
		case "-h", "-help", "--help":
			fmt.Fprintln(os.Stderr, "usage: provlint [-json] [packages]\n       provlint help [analyzer]")
			return 2
		default:
			if strings.HasPrefix(a, "-") {
				fmt.Fprintf(os.Stderr, "provlint: unknown flag %s\n", a)
				return 2
			}
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "provlint: locating own binary: %v\n", err)
		return 1
	}
	vetArgs := []string{"vet", "-vettool=" + exe}
	if jsonOut {
		vetArgs = append(vetArgs, "-json")
	}
	vetArgs = append(vetArgs, patterns...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "provlint: running go vet: %v\n", err)
		return 1
	}
	return 0
}
