// Command provq queries provenance: it runs the two use cases of the
// paper against a live provenance store (and registry). Queries go
// through the store's secondary-index planner; compare fetches only the
// two sessions it needs.
//
//	provq -store URL count
//	provq -shards URL1,URL2,... count
//	provq -store URL stats
//	provq -shards URL1,URL2,... stats -watch 2s
//	provq -store URL sessions
//	provq -store URL categorize
//	provq -store URL compare -a SESSION -b SESSION
//	provq -store URL -registry URL validate -session SESSION
//	provq -store URL lineage -session SESSION -data DATAID
//	provq -store URL consolidate -from URL1,URL2,...
//	provq -store URL delete -session SESSION
//	provq -store URL delete -key STORAGEKEY
//	provq -store URL compact
//	provq -backend file|kvdb -dir PATH compact
//
// delete retracts provenance from a live store: one record by storage
// key, or a whole session's records. The store removes the records and
// their index postings and reclaims the bytes by (possibly automatic)
// compaction.
//
// compact with -dir is an offline maintenance command: it opens the
// store directory directly (no server may have it open) and merges the
// file backend's accumulated posting segments — or the kvdb backend's
// dead log space — away. Without -dir it asks the live server at -store
// to compact itself online (urn:prep:compact).
//
// -shards URL1,URL2,... targets a sharded deployment: provq starts an
// ephemeral loopback router over the listed store endpoints and runs
// the command through it, so every query spans all shards and every
// retraction fans out — the same answers a permanent sharded front-end
// (preserv -shard-endpoints) would give.
//
// stats prints the store's telemetry snapshot (urn:prep:stats): request
// counters, garbage state, query-engine counters, per-shard breakdown,
// latency-histogram quantiles and the slow-operation log. With -watch D
// it refreshes every D until interrupted.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"preserv/internal/compare"
	"preserv/internal/ids"
	"preserv/internal/ontology"
	"preserv/internal/prep"
	"preserv/internal/preserv"
	"preserv/internal/registry"
	"preserv/internal/semval"
	"preserv/internal/store"
	"preserv/internal/trace"
)

// onOff is a boolean flag that also accepts on/off, so the documented
// `-mmap=off` escape hatch works alongside the stdlib true/false forms.
type onOff bool

func (o *onOff) String() string {
	if o != nil && bool(*o) {
		return "on"
	}
	return "off"
}

func (o *onOff) Set(s string) error {
	switch s {
	case "on", "true", "1", "t", "T", "TRUE", "True":
		*o = true
	case "off", "false", "0", "f", "F", "FALSE", "False":
		*o = false
	default:
		return fmt.Errorf("invalid value %q (want on/off or true/false)", s)
	}
	return nil
}

func (o *onOff) IsBoolFlag() bool { return true }

func main() {
	storeURL := flag.String("store", "http://127.0.0.1:8734", "provenance store URL")
	registryURL := flag.String("registry", "http://127.0.0.1:8735", "registry URL (validate)")
	sessionA := flag.String("a", "", "first session id (compare)")
	sessionB := flag.String("b", "", "second session id (compare)")
	session := flag.String("session", "", "session id (validate, lineage, delete)")
	dataID := flag.String("data", "", "data id (lineage)")
	from := flag.String("from", "", "comma-separated source store URLs (consolidate)")
	backend := flag.String("backend", "file", "backend flavour: file or kvdb (offline compact)")
	dir := flag.String("dir", "", "store directory (offline compact; omit to compact via the server)")
	key := flag.String("key", "", "record storage key (delete)")
	shardsFlag := flag.String("shards", "", "comma-separated shard store URLs (query them as one store through an ephemeral router)")
	watch := flag.Duration("watch", 0, "refresh interval for stats (0 = print once)")
	mmapFlag := onOff(true)
	flag.Var(&mmapFlag, "mmap", "memory-map file-backend segments for offline maintenance reads (off = plain file reads)")
	flag.Parse()
	store.SetMmapEnabled(bool(mmapFlag))

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: provq [flags] count|stats|sessions|categorize|compare|validate|lineage|consolidate|delete|compact")
		os.Exit(2)
	}
	if flag.Arg(0) == "compact" && *dir != "" {
		if err := runCompact(*backend, *dir, os.Stdout); err != nil {
			log.Fatalf("provq: %v", err)
		}
		return
	}
	target := *storeURL
	if *shardsFlag != "" {
		// Front the listed shard endpoints with a loopback router for
		// the duration of this invocation: the commands below talk to
		// it exactly as they would to one store.
		rt, err := preserv.NewRemoteRouter(*shardsFlag)
		if err != nil {
			log.Fatalf("provq: %v", err)
		}
		srv, err := preserv.Serve(preserv.NewShardedService(rt), "127.0.0.1:0")
		if err != nil {
			log.Fatalf("provq: starting shard router: %v", err)
		}
		defer srv.Close()
		target = srv.URL
	}
	client := preserv.NewClient(target, nil)

	switch flag.Arg(0) {
	case "count":
		cnt, err := client.Count()
		if err != nil {
			log.Fatalf("provq: %v", err)
		}
		fmt.Printf("records: %d (interactions %d, actor states %d)\n",
			cnt.Records, cnt.Interactions, cnt.ActorStates)

	case "stats":
		for {
			st, err := client.StoreStats()
			if err != nil {
				log.Fatalf("provq: %v", err)
			}
			printStats(os.Stdout, st)
			if *watch <= 0 {
				return
			}
			time.Sleep(*watch)
			fmt.Println()
		}

	case "sessions":
		sessions, err := preserv.Sessions(client)
		if err != nil {
			log.Fatalf("provq: %v", err)
		}
		fmt.Printf("%d session(s):\n", len(sessions))
		for _, s := range sessions {
			fmt.Printf("  %s\n", s)
		}

	case "categorize":
		cat, err := (&compare.Categorizer{Store: client}).Categorize()
		if err != nil {
			log.Fatalf("provq: %v", err)
		}
		fmt.Printf("categorised %d interactions into %d script categories in %.1fms\n",
			cat.InteractionsScanned, len(cat.Categories()), float64(cat.Elapsed.Microseconds())/1000)
		for _, c := range cat.Categories() {
			fmt.Printf("  %s  uses=%-4d  %.60q\n", c.Hash[:12], len(c.Uses), c.Script)
		}

	case "compare":
		a, err := ids.Parse(*sessionA)
		if err != nil {
			log.Fatalf("provq: -a: %v", err)
		}
		b, err := ids.Parse(*sessionB)
		if err != nil {
			log.Fatalf("provq: -b: %v", err)
		}
		// Only the two compared sessions are fetched (indexed), however
		// many other runs the store holds.
		cat, err := (&compare.Categorizer{Store: client}).CategorizeSessions(a, b)
		if err != nil {
			log.Fatalf("provq: %v", err)
		}
		diffs := cat.SameProcess(a, b)
		if len(diffs) == 0 {
			fmt.Println("same process: the two sessions used identical scripts for every service")
			return
		}
		fmt.Printf("process differs in %d service(s):\n", len(diffs))
		for _, d := range diffs {
			fmt.Printf("  %s\n", d.Service)
			for _, h := range d.OnlyInA {
				if c, ok := cat.Lookup(h); ok {
					fmt.Printf("    only in A: %.70q\n", c.Script)
				}
			}
			for _, h := range d.OnlyInB {
				if c, ok := cat.Lookup(h); ok {
					fmt.Printf("    only in B: %.70q\n", c.Script)
				}
			}
		}
		os.Exit(1)

	case "validate":
		s, err := ids.Parse(*session)
		if err != nil {
			log.Fatalf("provq: -session: %v", err)
		}
		validator := &semval.Validator{
			Store:    client,
			Registry: registry.NewClient(*registryURL, nil),
			Ontology: ontology.Bioinformatics(),
		}
		rep, err := validator.ValidateSession(s)
		if err != nil {
			log.Fatalf("provq: %v", err)
		}
		fmt.Printf("validated %d interactions (%d data edges, %d registry calls) in %.1fms\n",
			rep.Interactions, rep.EdgesChecked, rep.RegistryCalls,
			float64(rep.Elapsed.Microseconds())/1000)
		if rep.Valid() {
			fmt.Println("semantically valid")
			return
		}
		fmt.Printf("%d violation(s):\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Printf("  %s\n", v)
		}
		os.Exit(1)

	case "lineage":
		s, err := ids.Parse(*session)
		if err != nil {
			log.Fatalf("provq: -session: %v", err)
		}
		d, err := ids.Parse(*dataID)
		if err != nil {
			log.Fatalf("provq: -data: %v", err)
		}
		g, err := trace.Build(client, s)
		if err != nil {
			log.Fatalf("provq: %v", err)
		}
		anc := g.Lineage(d)
		fmt.Printf("data %s derives from %d item(s):\n", d.Short(), len(anc))
		for _, n := range anc {
			if n.ProducedBy.Valid() {
				fmt.Printf("  %s  produced by %s (part %q)\n", n.DataID.Short(), n.Producer, n.Part)
			} else {
				fmt.Printf("  %s  workflow input\n", n.DataID.Short())
			}
		}
		des := g.Derived(d)
		fmt.Printf("and %d item(s) derive from it\n", len(des))

	case "delete":
		var resp *prep.DeleteResponse
		var err error
		switch {
		case *key != "" && *session != "":
			log.Fatal("provq: delete takes -key or -session, not both")
		case *key != "":
			resp, err = client.DeleteRecord(*key)
		case *session != "":
			var s ids.ID
			if s, err = ids.Parse(*session); err != nil {
				log.Fatalf("provq: -session: %v", err)
			}
			resp, err = client.DeleteSession(s)
		default:
			log.Fatal("provq: delete needs -key STORAGEKEY or -session SESSION")
		}
		if err != nil {
			log.Fatalf("provq: %v", err)
		}
		fmt.Printf("deleted %d record(s); garbage ratio %.2f", resp.Deleted, resp.GarbageRatio)
		if resp.Compacted {
			fmt.Print(" (store compacted)")
		}
		fmt.Println()
		if resp.CompactError != "" {
			fmt.Fprintf(os.Stderr, "provq: warning: scheduled compaction failed: %s\n", resp.CompactError)
		}

	case "compact":
		resp, err := client.Compact()
		if err != nil {
			log.Fatalf("provq: %v", err)
		}
		fmt.Printf("compacted %s: garbage ratio %.2f -> %.2f\n", *storeURL, resp.GarbageBefore, resp.GarbageAfter)

	case "consolidate":
		if *from == "" {
			log.Fatal("provq: consolidate needs -from URL1,URL2,...")
		}
		var sources []*preserv.Client
		for _, u := range strings.Split(*from, ",") {
			sources = append(sources, preserv.NewClient(strings.TrimSpace(u), nil))
		}
		accepted, err := preserv.Consolidate(client, sources...)
		if err != nil {
			log.Fatalf("provq: %v", err)
		}
		fmt.Printf("consolidated %d records from %d store(s) into %s\n",
			accepted, len(sources), *storeURL)

	default:
		fmt.Fprintf(os.Stderr, "provq: unknown command %q\n", flag.Arg(0))
		os.Exit(2)
	}
}

// printStats renders one urn:prep:stats snapshot: the service counters
// and whole-store aggregates, then the per-shard breakdown, then the
// latency summaries and slow operations.
func printStats(out io.Writer, st *prep.StatsResponse) {
	fmt.Fprintf(out, "records: %d  shards: %d  garbage: %.2f  tombstones: %d\n",
		st.Records, st.NumShards, st.GarbageRatio, st.Tombstones)
	fmt.Fprintf(out, "requests: record=%d (accepted %d)  query=%d  delete=%d (deleted %d)  compactions=%d\n",
		st.RecordRequests, st.RecordsAccepted, st.QueryRequests,
		st.DeleteRequests, st.RecordsDeleted, st.Compactions)
	fmt.Fprintf(out, "engine: index=%d scan=%d paged=%d probes=%d postings=%d candidates=%d cache=%d/%d\n",
		st.Engine.IndexPlans, st.Engine.ScanPlans, st.Engine.PagedQueries,
		st.Engine.CostProbes, st.Engine.PostingsRead, st.Engine.CandidatesFetched,
		st.Engine.CacheHits, st.Engine.CacheHits+st.Engine.CacheMisses)
	if st.GenerationValid {
		fmt.Fprintf(out, "generation: %d\n", st.Generation)
	}
	if st.NumShards > 1 {
		fmt.Fprintf(out, "drain epoch: %d", st.DrainEpoch)
		if st.OverlapSuspected {
			fmt.Fprintf(out, "  OVERLAP SUSPECTED (a failed drain left twinned records; re-drain to absorb)")
		}
		fmt.Fprintln(out)
	}
	rc := st.ReadCache
	if rc != (prep.ReadCacheCounters{}) {
		fmt.Fprintf(out, "read path: bloom skip=%d fp=%d hit=%d  block cache=%d/%d (%d entries, %d KiB)  result cache=%d/%d\n",
			rc.BloomSkips, rc.BloomFalsePositives, rc.BloomHits,
			rc.BlockCacheHits, rc.BlockCacheHits+rc.BlockCacheMisses,
			rc.BlockCacheEntries, rc.BlockCacheBytes>>10,
			rc.ResultCacheHits, rc.ResultCacheHits+rc.ResultCacheMisses)
	}
	wp := st.WritePath
	if wp != (prep.WritePathCounters{}) {
		fmt.Fprintf(out, "write path: compacting=%d  stalls=%d (p99=%.2fms, total=%.1fs)\n",
			wp.CompactionsInProgress, wp.StallCount, wp.StallP99*1000, wp.StallSeconds)
	}
	for _, sh := range st.Shards {
		loc := sh.URL
		if loc == "" {
			loc = "embedded"
		}
		fmt.Fprintf(out, "shard %d (%s): records=%d garbage=%.2f tombstones=%d index=%d scan=%d\n",
			sh.Index, loc, sh.Records, sh.GarbageRatio, sh.Tombstones,
			sh.Engine.IndexPlans, sh.Engine.ScanPlans)
		printHistograms(out, "  ", sh.Histograms)
		printSlow(out, "  ", sh.Slow)
	}
	printHistograms(out, "", st.Histograms)
	printSlow(out, "", st.Slow)
}

// printHistograms lists non-empty histogram summaries. Latency
// histograms (family *_seconds) render their quantiles in milliseconds;
// unitless ones (sizes, widths) render raw values.
func printHistograms(out io.Writer, indent string, hists []prep.HistogramStat) {
	for _, h := range hists {
		if h.Count == 0 {
			continue
		}
		fam := h.Name
		if i := strings.IndexByte(fam, '{'); i >= 0 {
			fam = fam[:i]
		}
		if strings.HasSuffix(fam, "_seconds") {
			fmt.Fprintf(out, "%s%-44s n=%-7d p50=%.3fms p95=%.3fms p99=%.3fms\n",
				indent, h.Name, h.Count, h.P50*1000, h.P95*1000, h.P99*1000)
		} else {
			fmt.Fprintf(out, "%s%-44s n=%-7d p50=%.1f p95=%.1f p99=%.1f\n",
				indent, h.Name, h.Count, h.P50, h.P95, h.P99)
		}
	}
}

// printSlow lists the slow-operation log, oldest first.
func printSlow(out io.Writer, indent string, slow []prep.SlowSpan) {
	for _, s := range slow {
		attrs := ""
		for _, a := range s.Attrs {
			attrs += fmt.Sprintf(" %s=%s", a.Key, a.Value)
		}
		if s.Err != "" {
			attrs += " err=" + s.Err
		}
		fmt.Fprintf(out, "%sslow: %-20s %.1fms%s\n", indent, s.Op, s.Seconds*1000, attrs)
	}
}

// runCompact performs offline store maintenance on a local directory:
// merging the file backend's per-Record posting segments into one, or
// rewriting kvdb's log without its dead bytes.
func runCompact(backend, dir string, out *os.File) error {
	if dir == "" {
		return fmt.Errorf("compact needs -dir PATH")
	}
	switch backend {
	case "file":
		fb, err := store.NewFileBackend(dir)
		if err != nil {
			return err
		}
		before := fb.Segments()
		if err := fb.Compact(); err != nil {
			return err
		}
		fmt.Fprintf(out, "compacted %s: %d posting segment(s) -> %d\n", dir, before, fb.Segments())
		return fb.Close()
	case "kvdb":
		kb, err := store.NewKVBackend(dir)
		if err != nil {
			return err
		}
		if err := kb.Compact(); err != nil {
			kb.Close()
			return err
		}
		fmt.Fprintf(out, "compacted kvdb log in %s\n", dir)
		return kb.Close()
	}
	return fmt.Errorf("unknown backend %q (want file or kvdb)", backend)
}
