// Package preserv_test holds the top-level benchmark suite: one
// testing.B benchmark per evaluation artefact of the paper (DESIGN.md
// experiment index E1-E8), plus shape tests asserting the qualitative
// claims. Scaled-down workloads keep `go test -bench=.` in seconds;
// cmd/benchfig -paper runs the full-scale sweeps.
package preserv_test

import (
	"io"
	"testing"

	"preserv/internal/bench"
	"preserv/internal/bio"
	"preserv/internal/compress"
	"preserv/internal/core"
	"preserv/internal/experiment"
	"preserv/internal/grid"
	"preserv/internal/ids"
	"preserv/internal/ontology"
	"preserv/internal/preserv"
	"preserv/internal/store"
	"preserv/internal/workflow"

	"preserv/internal/compare"
	"preserv/internal/registry"
	"preserv/internal/semval"
)

// --- E1: record round trip (§6 text: ≈18 ms on 2005 hardware) ---

func benchRecordRoundTrip(b *testing.B, backend store.Backend) {
	svc := preserv.NewService(store.New(backend))
	srv, err := preserv.Serve(svc, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := preserv.NewClient(srv.URL, nil)
	src := &ids.SeqSource{Prefix: 0xB1}
	session := src.NewID()

	records := make([]core.Record, b.N)
	for i := range records {
		interaction := core.Interaction{
			ID: src.NewID(), Sender: experiment.SvcEnactor, Receiver: "svc:gzip", Operation: "compress",
		}
		records[i] = workflow.NewExchangeRecord(interaction, experiment.SvcEnactor, session, uint64(i+1),
			map[string]workflow.Value{"sample": {DataID: src.NewID(), SemanticType: ontology.TypeGroupEncoded, Content: []byte("HPCNHPCN")}},
			map[string]workflow.Value{"compressed": {DataID: src.NewID(), SemanticType: ontology.TypeCompressed, Content: []byte{1, 2, 3}}},
			64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Record(experiment.SvcEnactor, records[i:i+1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1RecordRoundTripMemory(b *testing.B) {
	benchRecordRoundTrip(b, store.NewMemoryBackend())
}

func BenchmarkE1RecordRoundTripKVDB(b *testing.B) {
	kb, err := store.NewKVBackend(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	benchRecordRoundTrip(b, kb)
}

// --- E2: Figure 4 — one benchmark per recording configuration ---

func benchFig4Mode(b *testing.B, mode experiment.RecordingMode) {
	params := experiment.Params{
		SampleBytes:  4 << 10,
		Permutations: 8,
		BatchSize:    4,
		Seed:         2005,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var urls []string
		var srv *preserv.Server
		if mode != experiment.RecordOff {
			svc := preserv.NewService(store.New(store.NewMemoryBackend()))
			var err error
			srv, err = preserv.Serve(svc, "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			urls = []string{srv.URL}
		}
		b.StartTimer()
		_, err := experiment.Run(params, experiment.Config{Mode: mode, StoreURLs: urls})
		b.StopTimer()
		if srv != nil {
			srv.Close()
		}
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkE2Figure4NoRecording(b *testing.B) { benchFig4Mode(b, experiment.RecordOff) }
func BenchmarkE2Figure4Async(b *testing.B)       { benchFig4Mode(b, experiment.RecordAsync) }
func BenchmarkE2Figure4Sync(b *testing.B)        { benchFig4Mode(b, experiment.RecordSync) }
func BenchmarkE2Figure4SyncExtra(b *testing.B)   { benchFig4Mode(b, experiment.RecordSyncExtra) }

// --- E4/E5: Figure 5 — use-case query time over a populated store ---

func fig5Fixture(b *testing.B, interactions int) (*preserv.Client, *registry.Client, ids.ID, func()) {
	svc := preserv.NewService(store.New(store.NewMemoryBackend()))
	srv, err := preserv.Serve(svc, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	client := preserv.NewClient(srv.URL, nil)
	session, err := bench.Populate(client, interactions, 7)
	if err != nil {
		srv.Close()
		b.Fatal(err)
	}
	reg := registry.NewRegistry()
	rsrv, err := registry.Serve(reg, "127.0.0.1:0")
	if err != nil {
		srv.Close()
		b.Fatal(err)
	}
	regClient := registry.NewClient(rsrv.URL, nil)
	if err := experiment.PublishAll(regClient, []string{"gzip", "ppmz"}); err != nil {
		srv.Close()
		rsrv.Close()
		b.Fatal(err)
	}
	return client, regClient, session, func() { srv.Close(); rsrv.Close() }
}

func BenchmarkE4Figure5Compare(b *testing.B) {
	client, _, _, cleanup := fig5Fixture(b, 240)
	defer cleanup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&compare.Categorizer{Store: client}).Categorize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5Figure5Semval(b *testing.B) {
	client, regClient, session, cleanup := fig5Fixture(b, 240)
	defer cleanup()
	validator := &semval.Validator{Store: client, Registry: regClient, Ontology: ontology.Bioinformatics()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := validator.ValidateSession(session)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Valid() {
			b.Fatal("population should validate")
		}
	}
}

// --- E6: single-permutation workflow (§6 text: ≈4.5 s per 100 KB on
// 2005 hardware; 6 records per permutation) ---

func BenchmarkE6SinglePermutation(b *testing.B) {
	params := experiment.Params{
		SampleBytes:  100 << 10, // the paper's sample size
		Permutations: 1,
		BatchSize:    100,
		Seed:         2005,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Run(params, experiment.Config{Mode: experiment.RecordOff}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: granularity ablation ---

func benchGranularity(b *testing.B, batchSize int) {
	params := experiment.Params{
		SampleBytes:  2 << 10,
		Permutations: 8,
		BatchSize:    batchSize,
		Seed:         2005,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cluster, err := grid.NewCluster(2, 2_000_000 /* 2ms */, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := experiment.Run(params, experiment.Config{Mode: experiment.RecordOff, Cluster: cluster}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7GranularityBatch1(b *testing.B) { benchGranularity(b, 1) }
func BenchmarkE7GranularityBatch8(b *testing.B) { benchGranularity(b, 8) }

// --- E8: distributed async shipping ---

func benchDistributed(b *testing.B, stores int) {
	params := experiment.Params{
		SampleBytes:  2 << 10,
		Permutations: 12,
		BatchSize:    6,
		Seed:         2005,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var urls []string
		var servers []*preserv.Server
		for s := 0; s < stores; s++ {
			svc := preserv.NewService(store.New(store.NewMemoryBackend()))
			srv, err := preserv.Serve(svc, "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			servers = append(servers, srv)
			urls = append(urls, srv.URL)
		}
		b.StartTimer()
		_, err := experiment.Run(params, experiment.Config{
			Mode: experiment.RecordAsync, StoreURLs: urls, AsyncBatch: 10,
		})
		b.StopTimer()
		for _, srv := range servers {
			srv.Close()
		}
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkE8DistributedStores1(b *testing.B) { benchDistributed(b, 1) }
func BenchmarkE8DistributedStores4(b *testing.B) { benchDistributed(b, 4) }

// --- Substrate throughput: the compressors the Measure workflow uses ---

func benchCodec(b *testing.B, name string) {
	codec, err := compress.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	g := bio.NewGenerator(2005)
	sample := g.Protein("bench", 64<<10).Residues
	encoded, err := bio.Hydropathy4().Encode(sample)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(encoded)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Compress(encoded); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecGzip(b *testing.B)  { benchCodec(b, "gzip") }
func BenchmarkCodecPPMZ(b *testing.B)  { benchCodec(b, "ppmz") }
func BenchmarkCodecBZip2(b *testing.B) { benchCodec(b, "bzip2") }

// --- Shape tests (E3 and E6 claims) ---

// TestFigure4Shape asserts Figure 4's qualitative claims on a
// scaled-down sweep. Timing on a shared single-core host is noisy, so
// the assertions compare whole-sweep totals with tolerance: recording
// must cost more than not recording, asynchronous recording must stay
// the cheapest recording configuration, and every fit must rise.
func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds-long")
	}
	points, err := bench.RunFigure4(bench.Fig4Options{
		SampleBytes: 2 << 10,
		PermSteps:   []int{4, 8, 12, 16},
		BatchSize:   4,
		Seed:        2005,
		Repeats:     3,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	total := func(mode experiment.RecordingMode) float64 {
		_, ys := bench.Fig4Series(points, mode)
		var s float64
		for _, y := range ys {
			s += y
		}
		return s
	}
	none := total(experiment.RecordOff)
	async := total(experiment.RecordAsync)
	syncT := total(experiment.RecordSync)
	extra := total(experiment.RecordSyncExtra)
	if async < none {
		t.Errorf("async total %.3fs below no-recording total %.3fs", async, none)
	}
	// 15%% tolerance absorbs scheduler noise on a contended host.
	if async > syncT*1.15 {
		t.Errorf("async total %.3fs well above sync total %.3fs", async, syncT)
	}
	if syncT > extra*1.25 {
		t.Errorf("sync total %.3fs well above sync+extra total %.3fs", syncT, extra)
	}
	sum, err := bench.SummarizeFig4(points)
	if err != nil {
		t.Fatal(err)
	}
	for mode, fit := range sum.Fits {
		if fit.Slope <= 0 {
			t.Errorf("mode %s has non-positive slope: %s", mode, fit)
		}
	}
}

// TestE6RecordsPerPermutation asserts the §6 count: six records per
// permutation with the paper's two compressors.
func TestE6RecordsPerPermutation(t *testing.T) {
	svc := preserv.NewService(store.New(store.NewMemoryBackend()))
	srv, err := preserv.Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	run := func(perms int) int64 {
		res, err := experiment.Run(experiment.Params{
			SampleBytes:  1 << 10,
			Permutations: perms,
			BatchSize:    4,
			Seed:         2005,
		}, experiment.Config{Mode: experiment.RecordSync, StoreURLs: []string{srv.URL}})
		if err != nil {
			t.Fatal(err)
		}
		return res.RecordsCreated
	}
	base := run(2)
	more := run(6)
	perPermutation := (more - base) / 4
	if perPermutation != 6 {
		t.Errorf("marginal records per permutation = %d, want 6", perPermutation)
	}
}

// TestFigure5SlopeRatio asserts E5's headline: the semantic-validity
// slope is a large multiple of the script-comparison slope (paper ≈11×,
// driven by ~10 registry calls per interaction vs 1 store call).
func TestFigure5SlopeRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds-long")
	}
	points, err := bench.RunFigure5(bench.Fig5Options{
		RecordSteps: []int{60, 120, 240, 360},
		Seed:        2005,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := bench.SummarizeFig5(points)
	if err != nil {
		t.Fatal(err)
	}
	if sum.SlopeRatio < 2 {
		t.Errorf("semval/compare slope ratio = %.2f, want the semantic check clearly steeper", sum.SlopeRatio)
	}
	if sum.CompareFit.R < 0.9 || sum.SemvalFit.R < 0.9 {
		t.Errorf("linearity: compare r=%.3f semval r=%.3f, want > 0.9",
			sum.CompareFit.R, sum.SemvalFit.R)
	}
}
