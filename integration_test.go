package preserv_test

// Full-stack integration test: the complete story of the paper in one
// scenario. Two runs of the protein compressibility experiment record
// provenance asynchronously into two distributed store instances; the
// stores are consolidated into a persistent kvdb-backed store; the
// execution-comparison use case detects the configuration change between
// the runs; the semantic-validity use case passes for the protein
// sessions; lineage tracing links the collated sample to the final
// results; and the consolidated store survives a restart.

import (
	"path/filepath"
	"testing"

	"preserv/internal/compare"
	"preserv/internal/core"
	"preserv/internal/experiment"
	"preserv/internal/ontology"
	"preserv/internal/prep"
	"preserv/internal/preserv"
	"preserv/internal/registry"
	"preserv/internal/semval"
	"preserv/internal/store"
	"preserv/internal/trace"
)

func startMemoryStore(t *testing.T) (*preserv.Client, *preserv.Server) {
	t.Helper()
	svc := preserv.NewService(store.New(store.NewMemoryBackend()))
	srv, err := preserv.Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return preserv.NewClient(srv.URL, nil), srv
}

func TestFullStackScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second end-to-end scenario")
	}

	// Two distributed store instances (the E8 deployment).
	client1, srv1 := startMemoryStore(t)
	client2, srv2 := startMemoryStore(t)

	// The registry with annotated service descriptions.
	reg := registry.NewRegistry()
	rsrv, err := registry.Serve(reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()
	regClient := registry.NewClient(rsrv.URL, nil)
	if err := experiment.PublishAll(regClient, []string{"gzip", "ppmz"}); err != nil {
		t.Fatal(err)
	}

	// Run 1: the baseline experiment, recording striped over both stores.
	params := experiment.Params{
		SampleBytes:  2 << 10,
		Permutations: 4,
		BatchSize:    2,
		Seed:         2005,
	}
	cfg := experiment.Config{
		Mode:       experiment.RecordSyncExtra, // scripts needed for use case 1
		StoreURLs:  []string{srv1.URL},
		JournalDir: t.TempDir(),
	}
	run1, err := experiment.Run(params, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Run 2: the ppmz service was reconfigured (higher order).
	params.ScriptConfigs = map[core.ActorID]string{
		experiment.CompressorService("ppmz"): "order=5",
	}
	cfg.StoreURLs = []string{srv2.URL}
	run2, err := experiment.Run(params, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Consolidate both stores into one persistent kvdb-backed store.
	kvDir := filepath.Join(t.TempDir(), "consolidated")
	kb, err := store.NewKVBackend(kvDir)
	if err != nil {
		t.Fatal(err)
	}
	consolidatedStore := store.New(kb)
	csvc := preserv.NewService(consolidatedStore)
	csrv, err := preserv.Serve(csvc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cclient := preserv.NewClient(csrv.URL, nil)
	accepted, err := preserv.Consolidate(cclient, client1, client2)
	if err != nil {
		t.Fatal(err)
	}
	if accepted == 0 {
		t.Fatal("consolidation moved nothing")
	}

	// Both sessions are discoverable in the consolidated store.
	sessions, err := preserv.Sessions(cclient)
	if err != nil {
		t.Fatal(err)
	}
	foundSessions := map[string]bool{}
	for _, s := range sessions {
		foundSessions[s.String()] = true
	}
	if !foundSessions[run1.SessionID.String()] || !foundSessions[run2.SessionID.String()] {
		t.Fatalf("sessions missing after consolidation: %v", sessions)
	}

	// Use case 1 on the consolidated store: the ppmz change is detected.
	cat, err := (&compare.Categorizer{Store: cclient}).Categorize()
	if err != nil {
		t.Fatal(err)
	}
	diffs := cat.SameProcess(run1.SessionID, run2.SessionID)
	if len(diffs) != 1 || diffs[0].Service != experiment.CompressorService("ppmz") {
		t.Fatalf("diffs = %+v, want exactly the ppmz service", diffs)
	}

	// Use case 2 on the consolidated store: both sessions are valid.
	validator := &semval.Validator{
		Store:    cclient,
		Registry: regClient,
		Ontology: ontology.Bioinformatics(),
	}
	rep1, err := validator.ValidateSession(run1.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Valid() {
		t.Fatalf("run1 invalid: %v", rep1.Violations)
	}
	rep2, err := validator.ValidateSession(run2.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Valid() {
		t.Fatalf("run2 invalid: %v", rep2.Violations)
	}

	// Lineage on the consolidated store: the collated sample is an
	// ancestor of the results table.
	g, err := trace.Build(cclient, run1.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	records, _, err := cclient.Query(&prep.Query{
		SessionID: run1.SessionID,
		Kind:      core.KindInteraction.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var sampleID, resultsID = run1.SessionID, run1.SessionID // placeholders, reassigned below
	foundSample, foundResults := false, false
	for i := range records {
		ip := records[i].Interaction
		switch ip.Interaction.Receiver {
		case experiment.SvcCollate:
			for _, p := range ip.Response.Parts {
				if p.Name == "sample" {
					sampleID, foundSample = p.DataID, true
				}
			}
		case experiment.SvcAverage:
			for _, p := range ip.Response.Parts {
				if p.Name == "results" {
					resultsID, foundResults = p.DataID, true
				}
			}
		}
	}
	if !foundSample || !foundResults {
		t.Fatal("sample/results data ids not found in consolidated records")
	}
	if !g.WasInputTo(sampleID, resultsID) {
		t.Error("lineage broken after consolidation: sample not an ancestor of results")
	}

	// Persistence: close everything, reopen the kvdb store, count again.
	wantCount, err := cclient.Count()
	if err != nil {
		t.Fatal(err)
	}
	csrv.Close()
	if err := consolidatedStore.Close(); err != nil {
		t.Fatal(err)
	}
	kb2, err := store.NewKVBackend(kvDir)
	if err != nil {
		t.Fatal(err)
	}
	reopened := store.New(kb2)
	defer reopened.Close()
	csrv2, err := preserv.Serve(preserv.NewService(reopened), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer csrv2.Close()
	gotCount, err := preserv.NewClient(csrv2.URL, nil).Count()
	if err != nil {
		t.Fatal(err)
	}
	if gotCount.Records != wantCount.Records {
		t.Errorf("restart lost records: %d -> %d", wantCount.Records, gotCount.Records)
	}

	// The experiment's science still holds end to end.
	for _, codec := range run1.Results.Codecs() {
		cs := run1.Results.PerCodec[codec]
		if cs.SampleRatio <= 0 || cs.MeanRatio <= 0 {
			t.Errorf("%s stats degenerate: %+v", codec, cs)
		}
	}
}
