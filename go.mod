module preserv

go 1.24
