// Package obs is the store's dependency-free instrumentation core: a
// metrics registry of atomic counters, gauges and fixed-bucket latency
// histograms with quantile extraction, plus lightweight per-operation
// spans (span.go) kept in a bounded ring with a slow-operation log. The
// paper's thesis is that a system becomes trustworthy when what it did
// is inspectable after the fact; obs applies that to the provenance
// store itself — every layer (store, planner, router, service, client)
// records what each operation cost, and the telemetry is exposed over
// the wire (urn:prep:stats), as a Prometheus-text /metrics endpoint,
// and through `provq stats`.
//
// Design constraints: no dependencies beyond the standard library, and
// near-zero overhead on hot paths — counters and gauges are single
// atomics, histogram observation is two atomic adds plus a branch-free
// bucket search, and SetEnabled(false) turns the timing instruments
// (histogram observation and span creation, the parts that call
// time.Now or allocate) into no-ops while counters keep working, since
// service accounting depends on them.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled is the package-wide switch for the *timing* instruments:
// histogram observation and span creation. Counters and gauges are
// always live — service statistics are built on them. It defaults on.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns timing instrumentation (histograms, spans) on or
// off process-wide. The overhead benchmark gate flips it to measure
// what instrumentation costs.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether timing instrumentation is on.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing atomic counter. Counters are
// exempt from SetEnabled: accounting must not stop when profiling does.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value (a queue depth, a backlog).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// LatencyBuckets is the default histogram bucket layout for operation
// latencies in seconds: exponential-ish from 10µs to 10s, matching the
// range between a memory-backend point write and a worst-case remote
// fan-out. Values above the last bound land in the overflow bucket.
var LatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
	100e-3, 250e-3, 500e-3, 1, 2.5, 5, 10,
}

// SizeBuckets is the default layout for count-valued distributions
// (batch sizes, page widths, postings per query).
var SizeBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram is a fixed-bucket distribution: len(bounds)+1 atomic
// bucket counts (the last is the overflow bucket), an atomic total
// count and an atomic sum. Observation is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	count  atomic.Int64
	// sum accumulates as float64 bits via CAS — observation values are
	// float64 (seconds, sizes), and contention on one histogram is low
	// enough that the CAS loop effectively never spins.
	sum atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending bucket
// upper bounds (nil selects LatencyBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value. A no-op while instrumentation is disabled.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	// Binary search for the first bound >= v; linear would also do for
	// ~20 buckets, but sort.SearchFloat64s keeps it O(log n) and clear.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Snapshot captures the histogram's current state. Concurrent
// observations may straddle the capture (the per-bucket reads are not
// mutually atomic); quantiles are estimates regardless, so a
// one-observation skew is immaterial.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Bounds: h.bounds, Counts: make([]int64, len(h.counts))}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry,
	// the overflow bucket.
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation within the bucket the rank falls into; the overflow
// bucket reports the last finite bound. Zero observations estimate 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if c == 0 {
				return hi
			}
			// Position of the rank within this bucket's count.
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + (hi-lo)*frac
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the observed mean (0 with no observations).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Registry names and owns a process component's instruments. Metric
// names follow the Prometheus convention and may carry inline labels:
// `preserv_request_seconds{action="record"}`. Lookup is
// get-or-create, so two layers naming the same metric share one
// instrument; callers hold the returned handle and never pay the map
// lookup on the hot path.
type Registry struct {
	mu         sync.Mutex // provlint:lock-order 20
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	histograms map[string]*Histogram
	tracerOnce sync.Once
	tracer     *Tracer
	// snapMu makes multi-counter updates atomic with respect to
	// snapshots: updates grouped under Batch hold it shared, and
	// CounterSnapshot holds it exclusively — so one snapshot can never
	// observe half of a grouped update (the Service.Stats torn-read
	// fix). Counters updated outside Batch are unaffected.
	// provlint:lock-order 10
	snapMu sync.RWMutex
}

// NewRegistry returns an empty registry with its own tracer.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() float64),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a pull-valued gauge (a garbage ratio, a cache
// size) evaluated at snapshot/render time. The first registration of a
// name wins; later ones are ignored, matching get-or-create elsewhere.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gaugeFuncs[name]; !ok {
		r.gaugeFuncs[name] = fn
	}
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (nil bounds = LatencyBuckets). Bounds are fixed
// at creation; a later caller's differing bounds are ignored.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Tracer returns the registry's span tracer, created on first use.
func (r *Registry) Tracer() *Tracer {
	r.tracerOnce.Do(func() { r.tracer = NewTracer(DefaultSpanRing) })
	return r.tracer
}

// Batch runs fn — typically a handful of Counter.Add calls describing
// one completed request — such that a concurrent CounterSnapshot sees
// either all of fn's updates or none of them.
func (r *Registry) Batch(fn func()) {
	r.snapMu.RLock()
	defer r.snapMu.RUnlock()
	fn()
}

// CounterSnapshot returns every counter's value as one internally
// consistent view: it excludes all in-flight Batch groups, so sums and
// ratios across counters hold the invariants the updaters maintained.
func (r *Registry) CounterSnapshot() map[string]int64 {
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	return out
}

// HistogramSnapshots captures every histogram, keyed by name.
func (r *Registry) HistogramSnapshots() map[string]HistogramSnapshot {
	r.mu.Lock()
	hs := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hs[name] = h
	}
	r.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(hs))
	for name, h := range hs {
		out[name] = h.Snapshot()
	}
	return out
}
