package obs

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounterHistogram hammers one counter and one histogram
// from N writers and checks exact totals — run under -race this also
// proves the instruments are data-race free.
func TestConcurrentCounterHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	h := r.Histogram("op_seconds", nil)
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Add(1)
				h.Observe(float64(i%100) * 1e-5)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	snap := h.Snapshot()
	if snap.Count != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", snap.Count, writers*perWriter)
	}
	var bucketTotal int64
	for _, c := range snap.Counts {
		bucketTotal += c
	}
	if bucketTotal != snap.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, snap.Count)
	}
	// Sum of i%100 * 1e-5 over perWriter iterations, times writers.
	var want float64
	for i := 0; i < perWriter; i++ {
		want += float64(i%100) * 1e-5
	}
	want *= writers
	if math.Abs(snap.Sum-want) > want*1e-9 {
		t.Fatalf("histogram sum = %g, want %g", snap.Sum, want)
	}
}

// TestBatchSnapshotConsistency checks the torn-read fix mechanism: a
// snapshot taken while writers update two counters in lockstep under
// Batch must always see them equal.
func TestBatchSnapshotConsistency(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("a_total")
	b := r.Counter("b_total")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Batch(func() {
					a.Add(1)
					b.Add(1)
				})
			}
		}()
	}
	for i := 0; i < 200; i++ {
		snap := r.CounterSnapshot()
		if snap["a_total"] != snap["b_total"] {
			close(stop)
			wg.Wait()
			t.Fatalf("torn snapshot: a=%d b=%d", snap["a_total"], snap["b_total"])
		}
	}
	close(stop)
	wg.Wait()
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	snap := h.Snapshot()
	if p50 := snap.Quantile(0.5); p50 < 1 || p50 > 2 {
		t.Fatalf("p50 = %g, want within (1,2]", p50)
	}
	if p99 := snap.Quantile(0.99); p99 < 1 || p99 > 2 {
		t.Fatalf("p99 = %g, want within (1,2]", p99)
	}
	h.Observe(100) // overflow bucket
	if q := h.Snapshot().Quantile(1); q != 8 {
		t.Fatalf("overflow quantile = %g, want 8 (last bound)", q)
	}
	if q := (HistogramSnapshot{Bounds: []float64{1}, Counts: []int64{0, 0}}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
}

func TestSpanRingBounded(t *testing.T) {
	tr := NewTracer(8)
	tr.SetSlowThreshold(0) // disable slow capture for this test
	for i := 0; i < 50; i++ {
		s := tr.StartSpan(fmt.Sprintf("op-%d", i))
		s.End(nil)
	}
	recent := tr.Recent()
	if len(recent) != 8 {
		t.Fatalf("ring holds %d spans, want 8", len(recent))
	}
	// Oldest-first order: the survivors are ops 42..49.
	for i, s := range recent {
		if want := fmt.Sprintf("op-%d", 42+i); s.Op() != want {
			t.Fatalf("recent[%d] = %s, want %s", i, s.Op(), want)
		}
	}
	if len(tr.Slow()) != 0 {
		t.Fatalf("slow log not empty with capture disabled")
	}
}

func TestSlowLogCapture(t *testing.T) {
	tr := NewTracer(4)
	tr.SetSlowThreshold(5 * time.Millisecond)
	fast := tr.StartSpan("fast")
	fast.End(nil)
	slow := tr.StartSpan("slow").SetAttr("strategy", "scan")
	time.Sleep(10 * time.Millisecond)
	slow.End(errors.New("deadline"))
	got := tr.Slow()
	if len(got) != 1 {
		t.Fatalf("slow log has %d spans, want 1", len(got))
	}
	s := got[0]
	if s.Op() != "slow" || s.Err() != "deadline" {
		t.Fatalf("slow span = %s err=%q", s.Op(), s.Err())
	}
	if len(s.Attrs()) != 1 || s.Attrs()[0].Key != "strategy" || s.Attrs()[0].Value != "scan" {
		t.Fatalf("slow span attrs = %v", s.Attrs())
	}
	if s.Duration() < 5*time.Millisecond {
		t.Fatalf("slow span duration %v below threshold", s.Duration())
	}
}

func TestSpanParentLinkage(t *testing.T) {
	tr := NewTracer(0)
	parent := tr.StartSpan("parent")
	child := tr.StartChild("child", parent)
	if child.ParentID() != parent.ID() {
		t.Fatalf("child parent = %d, want %d", child.ParentID(), parent.ID())
	}
	child.End(nil)
	parent.End(nil)
}

func TestDisabledInstrumentation(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	r := NewRegistry()
	h := r.Histogram("h_seconds", nil)
	h.Observe(1)
	if h.Snapshot().Count != 0 {
		t.Fatalf("histogram observed while disabled")
	}
	if s := r.Tracer().StartSpan("x"); s != nil {
		t.Fatalf("span started while disabled")
	}
	// Nil-span methods must all be safe.
	var s *Span
	s.SetAttr("k", "v")
	s.End(nil)
	s.Observe(h, nil)
	if s.Op() != "" || s.ID() != 0 || s.Duration() != 0 {
		t.Fatalf("nil span not inert")
	}
	// Counters stay live: accounting must not stop when profiling does.
	c := r.Counter("c_total")
	c.Add(3)
	if c.Load() != 3 {
		t.Fatalf("counter suppressed while disabled")
	}
}

// TestPrometheusExposition renders a mixed registry set and checks the
// text format parses: one TYPE line per family, histogram bucket
// cumulativeness, label injection, and sorted stability.
func TestPrometheusExposition(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter(`requests_total{action="record"}`).Add(7)
	r1.Counter(`requests_total{action="query"}`).Add(3)
	r1.Gauge("journal_pending").Set(5)
	r1.GaugeFunc("garbage_ratio", func() float64 { return 0.25 })
	h := r1.Histogram("op_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)

	r2 := NewRegistry()
	r2.Counter(`requests_total{action="record"}`).Add(2)

	var sb strings.Builder
	if err := WritePrometheus(&sb, Export{Reg: r1}, Export{Labels: `shard="1"`, Reg: r2}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if n := strings.Count(out, "# TYPE requests_total counter"); n != 1 {
		t.Fatalf("requests_total TYPE emitted %d times, want 1:\n%s", n, out)
	}
	for _, want := range []string{
		`requests_total{action="record"} 7`,
		`requests_total{action="query"} 3`,
		`requests_total{shard="1",action="record"} 2`,
		`journal_pending 5`,
		`garbage_ratio 0.25`,
		`op_seconds_bucket{le="0.001"} 1`,
		`op_seconds_bucket{le="0.01"} 2`,
		`op_seconds_bucket{le="+Inf"} 3`,
		`op_seconds_count 3`,
		"# TYPE op_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be `name value` with a parseable value.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("counter identity not stable")
	}
	if r.Histogram("h", nil) != r.Histogram("h", SizeBuckets) {
		t.Fatal("histogram identity not stable")
	}
	if r.Tracer() != r.Tracer() {
		t.Fatal("tracer identity not stable")
	}
}
