package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Export pairs a registry with extra labels to inject into every
// sample it contributes, e.g. Labels `shard="0"` distinguishes the
// per-shard store registries a router-backed service renders together.
type Export struct {
	// Labels is a raw label list without braces, e.g. `shard="0"`.
	// Empty means no extra labels.
	Labels string
	Reg    *Registry
}

// WritePrometheus renders the given registries in the Prometheus text
// exposition format (version 0.0.4). Metric names may embed labels
// (`name{action="record"}`); extra Export labels are merged in. Each
// family's TYPE comment is emitted exactly once even when several
// registries contribute samples to it, and output is sorted for stable
// scrapes.
func WritePrometheus(w io.Writer, exports ...Export) error {
	type sample struct {
		name   string // full series name with label set
		value  string
		family string
		typ    string // counter | gauge | histogram
		// sortName is the series identity without the le label, and
		// order the bucket bound — so one histogram's buckets render in
		// ascending-bound order (as the reference clients do) instead of
		// the lexical order of their formatted le values.
		sortName string
		order    float64
	}
	var samples []sample

	addLabels := func(name, extra string) string {
		if extra == "" {
			return name
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			// name{a="b"} + extra -> name{extra,a="b"}
			return name[:i] + "{" + extra + "," + name[i+1:]
		}
		return name + "{" + extra + "}"
	}
	familyOf := func(name string) string {
		if i := strings.IndexByte(name, '{'); i >= 0 {
			return name[:i]
		}
		return name
	}

	for _, e := range exports {
		if e.Reg == nil {
			continue
		}
		for name, v := range e.Reg.CounterSnapshot() {
			full := addLabels(name, e.Labels)
			samples = append(samples, sample{name: full, value: strconv.FormatInt(v, 10), family: familyOf(name), typ: "counter", sortName: full})
		}
		e.Reg.mu.Lock()
		gauges := make(map[string]int64, len(e.Reg.gauges))
		for name, g := range e.Reg.gauges {
			gauges[name] = g.Load()
		}
		funcs := make(map[string]func() float64, len(e.Reg.gaugeFuncs))
		for name, fn := range e.Reg.gaugeFuncs {
			funcs[name] = fn
		}
		e.Reg.mu.Unlock()
		for name, v := range gauges {
			full := addLabels(name, e.Labels)
			samples = append(samples, sample{name: full, value: strconv.FormatInt(v, 10), family: familyOf(name), typ: "gauge", sortName: full})
		}
		// Gauge funcs run outside the registry lock: they may call back
		// into arbitrary store code.
		for name, fn := range funcs {
			full := addLabels(name, e.Labels)
			samples = append(samples, sample{name: full, value: formatFloat(fn()), family: familyOf(name), typ: "gauge", sortName: full})
		}
		for name, snap := range e.Reg.HistogramSnapshots() {
			fam := familyOf(name)
			bucketSort := insertSuffix(addLabels(name, e.Labels), fam, "_bucket")
			var cum int64
			for i, bound := range snap.Bounds {
				cum += snap.Counts[i]
				series := addLabels(withLabel(name, `le="`+formatFloat(bound)+`"`), e.Labels)
				samples = append(samples, sample{name: insertSuffix(series, fam, "_bucket"), value: strconv.FormatInt(cum, 10), family: fam, typ: "histogram", sortName: bucketSort, order: bound})
			}
			inf := addLabels(withLabel(name, `le="+Inf"`), e.Labels)
			samples = append(samples, sample{name: insertSuffix(inf, fam, "_bucket"), value: strconv.FormatInt(snap.Count, 10), family: fam, typ: "histogram", sortName: bucketSort, order: math.Inf(1)})
			sum := insertSuffix(addLabels(name, e.Labels), fam, "_sum")
			samples = append(samples, sample{name: sum, value: formatFloat(snap.Sum), family: fam, typ: "histogram", sortName: sum})
			cnt := insertSuffix(addLabels(name, e.Labels), fam, "_count")
			samples = append(samples, sample{name: cnt, value: strconv.FormatInt(snap.Count, 10), family: fam, typ: "histogram", sortName: cnt})
		}
	}

	sort.Slice(samples, func(i, j int) bool {
		if samples[i].family != samples[j].family {
			return samples[i].family < samples[j].family
		}
		if samples[i].sortName != samples[j].sortName {
			return samples[i].sortName < samples[j].sortName
		}
		return samples[i].order < samples[j].order
	})

	lastFamily := ""
	for _, s := range samples {
		if s.family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.family, s.typ); err != nil {
				return err
			}
			lastFamily = s.family
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", s.name, s.value); err != nil {
			return err
		}
	}
	return nil
}

// withLabel appends one label to a possibly already-labelled name.
func withLabel(name, label string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + label + "}"
	}
	return name + "{" + label + "}"
}

// insertSuffix turns `family{labels}` into `family<suffix>{labels}`
// (or appends the suffix when the series has no labels). fam is the
// bare family name the series was built from.
func insertSuffix(series, fam, suffix string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return fam + suffix + series[i:]
	}
	return fam + suffix
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
