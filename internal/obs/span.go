package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSpanRing is the default capacity of a tracer's recent-span
// ring and of its slow-operation log.
const DefaultSpanRing = 128

// DefaultSlowThreshold is the duration above which a finished span is
// copied into the slow log.
const DefaultSlowThreshold = 100 * time.Millisecond

// Attr is one span attribute. Values are pre-rendered strings so the
// ring holds no live references into the operation that produced it.
type Attr struct {
	Key   string
	Value string
}

// Span records one operation: name, start, duration, error tag,
// attributes, and linkage to a parent span. All methods are nil-safe —
// a disabled tracer returns nil spans and the instrumented code runs
// with zero timing overhead (no time.Now, no allocation).
type Span struct {
	tracer   *Tracer
	id       uint64
	parentID uint64
	op       string
	start    time.Time
	duration time.Duration
	errMsg   string
	attrs    []Attr
	done     bool
}

// Op returns the operation name ("" on a nil span).
func (s *Span) Op() string {
	if s == nil {
		return ""
	}
	return s.op
}

// ID returns the span's tracer-unique id (0 on a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// ParentID returns the parent span's id, or 0 for a root span.
func (s *Span) ParentID() uint64 {
	if s == nil {
		return 0
	}
	return s.parentID
}

// Start returns the span's start time (zero on a nil span).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the measured duration; before End it returns the
// elapsed time so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	if s.done {
		return s.duration
	}
	return time.Since(s.start)
}

// Err returns the error message recorded at End ("" if none).
func (s *Span) Err() string {
	if s == nil {
		return ""
	}
	return s.errMsg
}

// Attrs returns the span's attributes (nil on a nil span).
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs
}

// SetAttr appends one attribute. Spans are operation-local (owned by
// one goroutine until End), so this needs no locking.
func (s *Span) SetAttr(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	return s
}

// End finishes the span, tagging it with err (may be nil), and
// publishes it to the tracer's ring and, if slow enough, the slow log.
func (s *Span) End(err error) {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.duration = time.Since(s.start)
	if err != nil {
		s.errMsg = err.Error()
	}
	s.tracer.record(s)
}

// Observe is a convenience for the span-plus-histogram idiom: it Ends
// the span and records its duration in seconds into h. Both the span
// and h may be nil.
func (s *Span) Observe(h *Histogram, err error) {
	if s != nil {
		s.End(err)
		if h != nil {
			h.Observe(s.duration.Seconds())
		}
		return
	}
	// Span disabled: nothing was timed, so there is nothing to observe.
}

// Tracer keeps a bounded ring of recently finished spans and a
// separate ring of slow ones. Finished spans are copied in under a
// mutex — End is off the ultra-hot path (it already paid a time.Now),
// and a mutex keeps snapshotting trivial.
type Tracer struct {
	nextID atomic.Uint64
	slowNS atomic.Int64 // threshold in nanoseconds; <=0 disables the slow log

	mu      sync.Mutex
	ring    []*Span
	ringPos int
	ringLen int
	slow    []*Span
	slowPos int
	slowLen int
}

// NewTracer returns a tracer whose recent and slow rings hold up to
// cap spans each (cap <= 0 selects DefaultSpanRing).
func NewTracer(cap int) *Tracer {
	if cap <= 0 {
		cap = DefaultSpanRing
	}
	t := &Tracer{ring: make([]*Span, cap), slow: make([]*Span, cap)}
	t.slowNS.Store(int64(DefaultSlowThreshold))
	return t
}

// SetSlowThreshold sets the duration at or above which finished spans
// are kept in the slow log; zero or negative disables slow capture.
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNS.Store(int64(d)) }

// SlowThreshold returns the current slow-capture threshold.
func (t *Tracer) SlowThreshold() time.Duration { return time.Duration(t.slowNS.Load()) }

// StartSpan begins a span named op. It returns nil while
// instrumentation is disabled; all Span methods tolerate nil.
func (t *Tracer) StartSpan(op string) *Span {
	return t.StartChild(op, nil)
}

// StartChild begins a span linked to parent (which may be nil for a
// root span, or a nil span from a disabled period).
func (t *Tracer) StartChild(op string, parent *Span) *Span {
	if t == nil || !enabled.Load() {
		return nil
	}
	s := &Span{tracer: t, id: t.nextID.Add(1), op: op, start: time.Now()}
	if parent != nil {
		s.parentID = parent.id
	}
	return s
}

func (t *Tracer) record(s *Span) {
	slowNS := t.slowNS.Load()
	isSlow := slowNS > 0 && int64(s.duration) >= slowNS
	t.mu.Lock()
	t.ring[t.ringPos] = s
	t.ringPos = (t.ringPos + 1) % len(t.ring)
	if t.ringLen < len(t.ring) {
		t.ringLen++
	}
	if isSlow {
		t.slow[t.slowPos] = s
		t.slowPos = (t.slowPos + 1) % len(t.slow)
		if t.slowLen < len(t.slow) {
			t.slowLen++
		}
	}
	t.mu.Unlock()
}

// Recent returns the finished spans currently in the ring, oldest
// first. The returned slice is freshly allocated.
func (t *Tracer) Recent() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return copyRing(t.ring, t.ringPos, t.ringLen)
}

// Slow returns the spans currently in the slow log, oldest first.
func (t *Tracer) Slow() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return copyRing(t.slow, t.slowPos, t.slowLen)
}

func copyRing(ring []*Span, pos, n int) []*Span {
	out := make([]*Span, 0, n)
	start := pos - n
	if start < 0 {
		start += len(ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, ring[(start+i)%len(ring)])
	}
	return out
}
