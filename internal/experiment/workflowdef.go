package experiment

import (
	"bytes"
	"fmt"

	"preserv/internal/bio"
	"preserv/internal/ontology"
	"preserv/internal/workflow"
)

// resultsHolder receives the Average activity's parsed output.
type resultsHolder struct {
	results *Results
	text    string
}

// permSeed derives the deterministic shuffle seed for one permutation.
func permSeed(base int64, perm int) int64 {
	return base*1_000_003 + int64(perm)
}

// buildWorkflow assembles the Figure 1 DAG: Collate Sample → Encode by
// Groups → permutation batches (each running the Figure 2 Measure
// sub-workflow per permutation) → Collate Sizes → Average.
func buildWorkflow(x *runner, p Params) (*workflow.Workflow, *resultsHolder, error) {
	holder := &resultsHolder{}
	w := workflow.New("protein-compressibility")
	gen := bio.NewGenerator(p.Seed)

	avgLen := (p.SeqMinLen + p.SeqMaxLen) / 2
	count := p.SampleBytes/avgLen + p.SampleBytes/(avgLen*4) + 4

	collateSvc := SvcCollate
	seqType := ontology.TypeProtein
	var seqs []*bio.Sequence
	switch {
	case p.Sequences != nil:
		// Real input (the paper downloads RefSeq proteins). The declared
		// type follows the collation service actually invoked, not the
		// data — which is exactly what makes use case 2 necessary.
		seqs = p.Sequences
		if p.NucleotideInput {
			collateSvc = SvcCollateNuc
			seqType = ontology.TypeNucleotide
		}
	case p.NucleotideInput:
		collateSvc = SvcCollateNuc
		seqType = ontology.TypeNucleotide
		for i := 0; i < count; i++ {
			seqs = append(seqs, gen.Nucleotide(fmt.Sprintf("NUC%05d", i), avgLen))
		}
	default:
		seqs = gen.ProteinSet(count, p.SeqMinLen, p.SeqMaxLen)
	}
	var fasta bytes.Buffer
	if err := bio.WriteFASTA(&fasta, seqs); err != nil {
		return nil, nil, fmt.Errorf("experiment: rendering input FASTA: %w", err)
	}

	// Collate Sample.
	err := w.Add(&workflow.Activity{
		ID:        "collate-sample",
		Service:   collateSvc,
		Operation: "collate",
		Script:    x.scriptFor(collateSvc),
		Run: func(ctx *workflow.Context) error {
			if _, err := ctx.Input("sequences"); err != nil {
				return err
			}
			sample, err := bio.CollateSample(seqs, p.SampleBytes)
			if err != nil {
				return err
			}
			ctx.SetOutput("sample", seqType, "text/plain", sample)
			return nil
		},
	})
	if err != nil {
		return nil, nil, err
	}
	if err := w.BindLiteral("collate-sample", "sequences", workflow.Value{
		DataID:       x.ids.NewID(),
		SemanticType: seqType,
		ContentType:  "application/fasta",
		Content:      fasta.Bytes(),
	}); err != nil {
		return nil, nil, err
	}

	// Encode by Groups. A nucleotide sample passes through silently —
	// its symbols are a subset of the amino-acid alphabet (use case 2).
	if err := w.Add(&workflow.Activity{
		ID:        "encode-by-groups",
		Service:   SvcEncode,
		Operation: "encode",
		Script:    x.scriptFor(SvcEncode),
		Run: func(ctx *workflow.Context) error {
			sample, err := ctx.Input("sample")
			if err != nil {
				return err
			}
			encoded, err := p.Grouping.Encode(sample.Content)
			if err != nil {
				return err
			}
			ctx.SetOutput("encoded", ontology.TypeGroupEncoded, "text/plain", encoded)
			return nil
		},
	}); err != nil {
		return nil, nil, err
	}
	if err := w.Bind("encode-by-groups", "sample", "collate-sample", "sample"); err != nil {
		return nil, nil, err
	}
	if err := w.BindLiteral("encode-by-groups", "grouping", workflow.Value{
		DataID:       x.ids.NewID(),
		SemanticType: ontology.TypeGroupingSpec,
		ContentType:  "text/plain",
		Content:      []byte(p.Grouping.Spec()),
	}); err != nil {
		return nil, nil, err
	}

	// Permutation batches: permutation 0 is the unshuffled encoded
	// sample; 1..N are shuffles. Each batch is one grid script.
	totalUnits := p.Permutations + 1
	numBatches := (totalUnits + p.BatchSize - 1) / p.BatchSize
	batchIDs := make([]string, 0, numBatches)
	for b := 0; b < numBatches; b++ {
		startPerm := b * p.BatchSize
		endPerm := startPerm + p.BatchSize
		if endPerm > totalUnits {
			endPerm = totalUnits
		}
		id := fmt.Sprintf("measure-batch-%03d", b)
		batchIDs = append(batchIDs, id)
		if err := w.Add(&workflow.Activity{
			ID:           id,
			Service:      SvcBatch,
			Operation:    "measure",
			Script:       x.scriptFor(SvcBatch),
			StageInBytes: p.SampleBytes,
			Run: func(ctx *workflow.Context) error {
				encoded, err := ctx.Input("encoded")
				if err != nil {
					return err
				}
				var entries []SizeEntry
				for perm := startPerm; perm < endPerm; perm++ {
					sample := encoded
					if perm > 0 {
						permuted := bio.Shuffle(encoded.Content, permSeed(p.Seed, perm))
						sample = x.value(ontology.TypePermutedEncoded, "text/plain", permuted)
					}
					permEntries, err := x.measureOne(perm, sample)
					if err != nil {
						return err
					}
					entries = append(entries, permEntries...)
				}
				ctx.SetOutput("sizes", ontology.TypeSizesTable, "text/tab-separated-values", FormatSizes(entries))
				return nil
			},
		}); err != nil {
			return nil, nil, err
		}
		if err := w.Bind(id, "encoded", "encode-by-groups", "encoded"); err != nil {
			return nil, nil, err
		}
	}

	// Collate Sizes across batches.
	if err := w.Add(&workflow.Activity{
		ID:        "collate-sizes",
		Service:   SvcCollateSizes,
		Operation: "collate-all",
		Script:    x.scriptFor(SvcCollateSizes),
		Run: func(ctx *workflow.Context) error {
			var table bytes.Buffer
			for _, name := range ctx.InputNames() {
				v, err := ctx.Input(name)
				if err != nil {
					return err
				}
				table.Write(v.Content)
			}
			ctx.SetOutput("sizes-table", ontology.TypeSizesTable, "text/tab-separated-values", table.Bytes())
			return nil
		},
	}); err != nil {
		return nil, nil, err
	}
	for b, id := range batchIDs {
		if err := w.Bind("collate-sizes", fmt.Sprintf("sizes-%03d", b), id, "sizes"); err != nil {
			return nil, nil, err
		}
	}

	// Average.
	if err := w.Add(&workflow.Activity{
		ID:        "average",
		Service:   SvcAverage,
		Operation: "average",
		Script:    x.scriptFor(SvcAverage),
		Run: func(ctx *workflow.Context) error {
			table, err := ctx.Input("sizes-table")
			if err != nil {
				return err
			}
			entries, err := ParseSizes(table.Content)
			if err != nil {
				return err
			}
			results, err := ComputeResults(entries)
			if err != nil {
				return err
			}
			text := results.Render()
			holder.results = results
			holder.text = string(text)
			ctx.SetOutput("results", ontology.TypeCompressibility, "text/plain", text)
			return nil
		},
	}); err != nil {
		return nil, nil, err
	}
	if err := w.Bind("average", "sizes-table", "collate-sizes", "sizes-table"); err != nil {
		return nil, nil, err
	}

	return w, holder, nil
}
