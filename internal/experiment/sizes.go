package experiment

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"preserv/internal/stats"
)

// LabelOriginal marks the uncompressed size entry of a permutation.
const LabelOriginal = "original"

// SizeEntry is one row of a sizes table: the measured size of one form
// (original or compressed-with-codec) of one permutation. Permutation 0
// is the unshuffled encoded sample itself.
type SizeEntry struct {
	Perm  int
	Label string // LabelOriginal or a codec name
	Size  int
}

// FormatSizes renders entries as the tab-separated sizes-table text that
// flows between the Collate Sizes and Average activities.
func FormatSizes(entries []SizeEntry) []byte {
	var buf bytes.Buffer
	for _, e := range entries {
		fmt.Fprintf(&buf, "%d\t%s\t%d\n", e.Perm, e.Label, e.Size)
	}
	return buf.Bytes()
}

// ParseSizes reverses FormatSizes. Blank lines are tolerated.
func ParseSizes(data []byte) ([]SizeEntry, error) {
	var entries []SizeEntry
	sc := bufio.NewScanner(bytes.NewReader(data))
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) != 3 {
			return nil, fmt.Errorf("experiment: sizes line %d has %d fields", line, len(fields))
		}
		perm, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("experiment: sizes line %d perm: %w", line, err)
		}
		size, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("experiment: sizes line %d size: %w", line, err)
		}
		if fields[1] == "" {
			return nil, fmt.Errorf("experiment: sizes line %d has empty label", line)
		}
		entries = append(entries, SizeEntry{Perm: perm, Label: fields[1], Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("experiment: reading sizes: %w", err)
	}
	return entries, nil
}

// CodecStats is the compressibility outcome for one compression method —
// "a compressibility value ... relative to both the compression method
// and group coding employed", with the permutation distribution the
// workflow exists to estimate.
type CodecStats struct {
	Codec string
	// SampleRatio is compressed/original for the unshuffled encoded
	// sample (permutation 0) — the lower bound on compressibility.
	SampleRatio float64
	// MeanRatio and StdRatio summarise the ratios of the shuffled
	// permutations, the standard of comparison that removes encoding and
	// symbol-frequency effects.
	MeanRatio float64
	StdRatio  float64
	// Permutations is the number of shuffled permutations measured.
	Permutations int
	// StructureIndex is SampleRatio/MeanRatio: below 1 means the
	// compressor found structure beyond symbol frequencies.
	StructureIndex float64
}

// Results aggregates the experiment outcome per codec.
type Results struct {
	PerCodec map[string]CodecStats
}

// ComputeResults derives per-codec compressibility statistics from a
// sizes table.
func ComputeResults(entries []SizeEntry) (*Results, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("experiment: empty sizes table")
	}
	orig := make(map[int]int)
	byCodec := make(map[string]map[int]int)
	for _, e := range entries {
		if e.Size < 0 {
			return nil, fmt.Errorf("experiment: negative size for perm %d", e.Perm)
		}
		if e.Label == LabelOriginal {
			orig[e.Perm] = e.Size
			continue
		}
		m := byCodec[e.Label]
		if m == nil {
			m = make(map[int]int)
			byCodec[e.Label] = m
		}
		m[e.Perm] = e.Size
	}
	res := &Results{PerCodec: make(map[string]CodecStats)}
	for codec, sizes := range byCodec {
		var ratios []float64
		var sampleRatio float64
		haveSample := false
		perms := make([]int, 0, len(sizes))
		for p := range sizes {
			perms = append(perms, p)
		}
		sort.Ints(perms)
		for _, p := range perms {
			o, ok := orig[p]
			if !ok || o == 0 {
				return nil, fmt.Errorf("experiment: no original size for perm %d", p)
			}
			ratio := float64(sizes[p]) / float64(o)
			if p == 0 {
				sampleRatio = ratio
				haveSample = true
			} else {
				ratios = append(ratios, ratio)
			}
		}
		cs := CodecStats{
			Codec:        codec,
			SampleRatio:  sampleRatio,
			MeanRatio:    stats.Mean(ratios),
			StdRatio:     stats.StdDev(ratios),
			Permutations: len(ratios),
		}
		if !haveSample {
			return nil, fmt.Errorf("experiment: codec %s has no sample (perm 0) measurement", codec)
		}
		if cs.MeanRatio > 0 {
			cs.StructureIndex = cs.SampleRatio / cs.MeanRatio
		}
		res.PerCodec[codec] = cs
	}
	if len(res.PerCodec) == 0 {
		return nil, fmt.Errorf("experiment: sizes table has no codec entries")
	}
	return res, nil
}

// Codecs lists the codecs present, sorted.
func (r *Results) Codecs() []string {
	out := make([]string, 0, len(r.PerCodec))
	for c := range r.PerCodec {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Render produces the human-readable results table the Average activity
// emits.
func (r *Results) Render() []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%-8s %12s %12s %12s %8s %10s\n",
		"codec", "sampleRatio", "meanRatio", "stdRatio", "nPerm", "structure")
	for _, codec := range r.Codecs() {
		cs := r.PerCodec[codec]
		fmt.Fprintf(&buf, "%-8s %12.4f %12.4f %12.4f %8d %10.4f\n",
			cs.Codec, cs.SampleRatio, cs.MeanRatio, cs.StdRatio, cs.Permutations, cs.StructureIndex)
	}
	return buf.Bytes()
}
