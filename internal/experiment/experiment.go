// Package experiment implements the protein compressibility experiment
// of the paper's Section 2: the comparative sequence compressibility
// workflow (Figure 1) with its Measure sub-workflow (Figure 2), executed
// over the workflow/grid substrates with provenance recorded through
// PReP under the four configurations that Figure 4 compares.
//
// The experiment batches permutations into grid scripts ("we grouped the
// execution of 100 permutations into a single script to increase the
// granularity of the activities to be scheduled by Condor") while still
// documenting every activity of the Measure workflow for every
// permutation — six p-assertion records per permutation.
package experiment

import (
	"fmt"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"preserv/internal/bio"
	"preserv/internal/client"
	"preserv/internal/compress"
	"preserv/internal/core"
	"preserv/internal/grid"
	"preserv/internal/ids"
	"preserv/internal/ontology"
	"preserv/internal/preserv"
	"preserv/internal/workflow"
)

// RecordingMode selects the Figure 4 configuration.
type RecordingMode int

// Recording configurations, in the order plotted in Figure 4.
const (
	// RecordOff runs without recording p-assertions.
	RecordOff RecordingMode = iota
	// RecordAsync accumulates p-assertions in a local file and ships
	// them after execution.
	RecordAsync
	// RecordSync records by direct service invocation during execution.
	RecordSync
	// RecordSyncExtra is synchronous recording with extra actor-state
	// p-assertions (script provenance for use case 1).
	RecordSyncExtra
)

// String names the mode as in the Figure 4 legend.
func (m RecordingMode) String() string {
	switch m {
	case RecordOff:
		return "no-recording"
	case RecordAsync:
		return "async"
	case RecordSync:
		return "sync"
	case RecordSyncExtra:
		return "sync+extra"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Params describes the scientific workload.
type Params struct {
	// SampleBytes is the collated sample size (the paper uses ~100 KB).
	SampleBytes int
	// Permutations is N, the number of shuffled permutations.
	Permutations int
	// BatchSize is how many permutations one grid script processes
	// (the paper uses 100).
	BatchSize int
	// Grouping is the amino-acid group coding; nil selects Hydropathy4.
	Grouping *bio.Grouping
	// Codecs names the compression methods; nil selects gzip and ppmz,
	// the pair of Figure 2.
	Codecs []string
	// Seed makes the whole experiment deterministic.
	Seed int64
	// SeqMinLen and SeqMaxLen bound generated sequence lengths.
	SeqMinLen, SeqMaxLen int
	// NucleotideInput injects the use-case-2 error: the collated sample
	// is nucleotide data, which recodes without any syntactic error.
	NucleotideInput bool
	// ScriptConfigs customises the recorded script content per service
	// (keyed by actor ID); use case 1 detects these as process changes.
	ScriptConfigs map[core.ActorID]string
	// Sequences supplies real input sequences (e.g. parsed from FASTA,
	// the paper's RefSeq download). When nil, a seeded synthetic
	// proteome is generated instead.
	Sequences []*bio.Sequence
}

func (p *Params) withDefaults() Params {
	out := *p
	if out.SampleBytes <= 0 {
		out.SampleBytes = 100 << 10
	}
	if out.Permutations < 0 {
		out.Permutations = 0
	}
	if out.BatchSize <= 0 {
		out.BatchSize = 100
	}
	if out.Grouping == nil {
		out.Grouping = bio.Hydropathy4()
	}
	if len(out.Codecs) == 0 {
		out.Codecs = []string{"gzip", "ppmz"}
	}
	if out.SeqMinLen <= 0 {
		out.SeqMinLen = 200
	}
	if out.SeqMaxLen < out.SeqMinLen {
		out.SeqMaxLen = out.SeqMinLen * 3
	}
	return out
}

// RecordsPerPermutation returns how many p-assertion records one
// permutation generates in the base configurations: one per Measure
// activity — the compressions, the size measurements (original plus one
// per compressed form) and the collation. With the paper's two codecs
// this is six.
func RecordsPerPermutation(codecs int) int { return 2*codecs + 2 }

// Config describes the provenance and execution environment.
type Config struct {
	// Mode selects the recording configuration.
	Mode RecordingMode
	// StoreURLs are the provenance store endpoints (ignored for
	// RecordOff; async mode stripes over all of them, sync uses the
	// first).
	StoreURLs []string
	// JournalDir holds the async journal file; "" uses the OS temp dir.
	JournalDir string
	// AsyncBatch is the async shipping batch size; 0 uses the default.
	AsyncBatch int
	// Cluster simulates the grid; nil runs locally.
	Cluster *grid.Cluster
	// IDs supplies identifiers; nil uses the cryptographic source.
	IDs ids.Source
}

// Result is the outcome of one experiment run.
type Result struct {
	// SessionID groups every p-assertion of the run.
	SessionID ids.ID
	// Results holds the compressibility statistics per codec.
	Results *Results
	// ResultsText is the rendered table the Average activity emitted.
	ResultsText string
	// Elapsed is the overall execution time: workflow plus (for async
	// mode) the post-execution shipping — the y-axis of Figure 4.
	Elapsed time.Duration
	// WorkflowElapsed excludes the async shipping phase.
	WorkflowElapsed time.Duration
	// RecordsCreated counts p-assertions submitted to the recorder.
	RecordsCreated int64
	// Mode echoes the recording configuration.
	Mode RecordingMode
}

// runner carries the state shared between coarse workflow activities and
// the fine-grained Measure recording inside batch scripts.
type runner struct {
	params   Params
	mode     RecordingMode
	rec      client.Recorder
	ids      ids.Source
	session  ids.ID
	seq      atomic.Uint64
	enactor  core.ActorID
	maxBytes int
	records  atomic.Int64
}

func (x *runner) scriptFor(svc core.ActorID) string {
	return DefaultScript(svc, x.params.ScriptConfigs[svc])
}

// recordExchange documents one fine-grained Measure activity, and in the
// extra configuration also its script.
func (x *runner) recordExchange(service core.ActorID, op string, inputs, outputs map[string]workflow.Value) error {
	if x.mode == RecordOff {
		return nil
	}
	interaction := core.Interaction{
		ID:        x.ids.NewID(),
		Sender:    x.enactor,
		Receiver:  service,
		Operation: op,
	}
	n := x.seq.Add(1)
	recs := []core.Record{
		workflow.NewExchangeRecord(interaction, x.enactor, x.session, n, inputs, outputs, x.maxBytes),
	}
	if x.mode == RecordSyncExtra {
		recs = append(recs, workflow.NewScriptRecord(interaction, x.enactor, x.session, n, x.scriptFor(service)))
	}
	if err := x.rec.Record(recs...); err != nil {
		return err
	}
	x.records.Add(int64(len(recs)))
	return nil
}

// value mints a workflow.Value with a fresh data identifier.
func (x *runner) value(semanticType, contentType string, content []byte) workflow.Value {
	return workflow.Value{
		DataID:       x.ids.NewID(),
		SemanticType: semanticType,
		ContentType:  contentType,
		Content:      content,
	}
}

// measureOne runs the Measure sub-workflow (Figure 2) for one
// permutation: compress with every codec, measure every form's size,
// collate. It records one p-assertion per activity.
func (x *runner) measureOne(perm int, sample workflow.Value) ([]SizeEntry, error) {
	entries := []SizeEntry{{Perm: perm, Label: LabelOriginal, Size: len(sample.Content)}}
	sizeValues := map[string]workflow.Value{}

	// Size of the (permuted) sample itself.
	origSize := x.value(ontology.TypeSize, "text/plain", []byte(strconv.Itoa(len(sample.Content))))
	if err := x.recordExchange(SvcMeasure, "measure",
		map[string]workflow.Value{"data": sample},
		map[string]workflow.Value{"size": origSize}); err != nil {
		return nil, err
	}
	sizeValues["size-"+LabelOriginal] = origSize

	for _, codecName := range x.params.Codecs {
		codec, err := compress.Lookup(codecName)
		if err != nil {
			return nil, err
		}
		compressed, err := codec.Compress(sample.Content)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s on perm %d: %w", codecName, perm, err)
		}
		compVal := x.value(ontology.TypeCompressed, "application/octet-stream", compressed)
		if err := x.recordExchange(CompressorService(codecName), "compress",
			map[string]workflow.Value{"sample": sample},
			map[string]workflow.Value{"compressed": compVal}); err != nil {
			return nil, err
		}

		sizeVal := x.value(ontology.TypeSize, "text/plain", []byte(strconv.Itoa(len(compressed))))
		if err := x.recordExchange(SvcMeasure, "measure",
			map[string]workflow.Value{"data": compVal},
			map[string]workflow.Value{"size": sizeVal}); err != nil {
			return nil, err
		}
		sizeValues["size-"+codecName] = sizeVal
		entries = append(entries, SizeEntry{Perm: perm, Label: codecName, Size: len(compressed)})
	}

	// Collate this permutation's sizes into a table.
	table := x.value(ontology.TypeSizesTable, "text/tab-separated-values", FormatSizes(entries))
	if err := x.recordExchange(SvcCollateSizes, "collate-permutation",
		sizeValues,
		map[string]workflow.Value{"sizes": table}); err != nil {
		return nil, err
	}
	return entries, nil
}

// Run executes the experiment.
func Run(params Params, cfg Config) (*Result, error) {
	p := params.withDefaults()

	src := cfg.IDs
	if src == nil {
		src = cryptoIDs{}
	}
	session := src.NewID()

	// Assemble the recorder for the requested configuration.
	var rec client.Recorder
	switch cfg.Mode {
	case RecordOff:
		rec = client.NullRecorder{}
	case RecordSync, RecordSyncExtra:
		if len(cfg.StoreURLs) == 0 {
			return nil, fmt.Errorf("experiment: %s mode needs a store URL", cfg.Mode)
		}
		rec = client.NewSyncRecorder(preserv.NewClient(cfg.StoreURLs[0], nil), SvcEnactor)
	case RecordAsync:
		if len(cfg.StoreURLs) == 0 {
			return nil, fmt.Errorf("experiment: async mode needs at least one store URL")
		}
		dir := cfg.JournalDir
		if dir == "" {
			dir = filepath.Join(".", "")
		}
		clients := make([]*preserv.Client, len(cfg.StoreURLs))
		for i, u := range cfg.StoreURLs {
			clients[i] = preserv.NewClient(u, nil)
		}
		journal := filepath.Join(dir, fmt.Sprintf("pcomp-journal-%s.gob", session.Short()))
		async, err := client.NewAsyncRecorder(SvcEnactor, journal, cfg.AsyncBatch, clients...)
		if err != nil {
			return nil, err
		}
		rec = async
	default:
		return nil, fmt.Errorf("experiment: unknown recording mode %d", cfg.Mode)
	}

	x := &runner{
		params:   p,
		mode:     cfg.Mode,
		rec:      rec,
		ids:      src,
		session:  session,
		enactor:  SvcEnactor,
		maxBytes: workflow.DefaultMaxContentBytes,
	}

	w, holder, err := buildWorkflow(x, p)
	if err != nil {
		return nil, err
	}

	engine := workflow.Engine{
		Enactor:          SvcEnactor,
		IDs:              src,
		Cluster:          cfg.Cluster,
		RecordActorState: cfg.Mode == RecordSyncExtra,
		Session:          session,
	}
	if cfg.Mode != RecordOff {
		engine.Recorder = rec
	}

	start := time.Now()
	res, err := engine.Run(w)
	if err != nil {
		rec.Close()
		return nil, err
	}
	workflowElapsed := time.Since(start)
	// Async mode ships the accumulated journal after execution; the
	// overall time the paper plots includes this phase.
	if err := rec.Flush(); err != nil {
		rec.Close()
		return nil, fmt.Errorf("experiment: shipping journaled p-assertions: %w", err)
	}
	elapsed := time.Since(start)
	if err := rec.Close(); err != nil {
		return nil, err
	}

	if holder.results == nil {
		return nil, fmt.Errorf("experiment: average activity produced no results")
	}
	return &Result{
		SessionID:       session,
		Results:         holder.results,
		ResultsText:     holder.text,
		Elapsed:         elapsed,
		WorkflowElapsed: workflowElapsed,
		RecordsCreated:  res.RecordsCreated + x.records.Load(),
		Mode:            cfg.Mode,
	}, nil
}

type cryptoIDs struct{}

func (cryptoIDs) NewID() ids.ID { return ids.New() }
