package experiment

import (
	"strings"
	"testing"

	"preserv/internal/bio"
)

// TestRunWithSuppliedFASTA runs the experiment on parsed FASTA input,
// the paper's actual input path (RefSeq downloads).
func TestRunWithSuppliedFASTA(t *testing.T) {
	// Build a FASTA document from generated sequences, then parse it
	// back — the full real-input code path.
	gen := bio.NewGenerator(77)
	var fasta strings.Builder
	if err := bio.WriteFASTA(&fasta, gen.ProteinSet(30, 100, 300)); err != nil {
		t.Fatal(err)
	}
	seqs, err := bio.ParseFASTA(strings.NewReader(fasta.String()))
	if err != nil {
		t.Fatal(err)
	}

	p := smallParams()
	p.Sequences = seqs
	res, err := Run(p, Config{Mode: RecordOff})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results.PerCodec) != 2 {
		t.Fatalf("results = %v", res.Results.Codecs())
	}
	for codec, cs := range res.Results.PerCodec {
		if cs.SampleRatio <= 0 || cs.SampleRatio >= 1 {
			t.Errorf("%s sample ratio = %v", codec, cs.SampleRatio)
		}
	}
}

// TestRunSuppliedSequencesTooShort verifies the collation error
// surfaces when supplied input cannot fill the sample.
func TestRunSuppliedSequencesTooShort(t *testing.T) {
	gen := bio.NewGenerator(78)
	p := smallParams()
	p.Sequences = gen.ProteinSet(2, 50, 60) // ~110 residues << 2048
	if _, err := Run(p, Config{Mode: RecordOff}); err == nil {
		t.Error("insufficient input should fail collation")
	}
}

// TestRunSuppliedNucleotideSequences covers the real-input variant of
// the use-case-2 trap.
func TestRunSuppliedNucleotideSequences(t *testing.T) {
	gen := bio.NewGenerator(79)
	var seqs []*bio.Sequence
	for i := 0; i < 30; i++ {
		seqs = append(seqs, gen.Nucleotide("n", 150))
	}
	p := smallParams()
	p.Sequences = seqs
	p.NucleotideInput = true
	res, err := Run(p, Config{Mode: RecordOff})
	if err != nil {
		t.Fatalf("nucleotide FASTA must run without syntactic error: %v", err)
	}
	if res.Results == nil {
		t.Fatal("no results")
	}
}
