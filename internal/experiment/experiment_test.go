package experiment

import (
	"strings"
	"testing"

	"preserv/internal/bio"
	"preserv/internal/core"
	"preserv/internal/grid"
	"preserv/internal/ontology"
	"preserv/internal/prep"
	"preserv/internal/preserv"
	"preserv/internal/registry"
	"preserv/internal/semval"
	"preserv/internal/store"
)

// smallParams keeps test runs fast: a few KB sample, a few permutations.
func smallParams() Params {
	return Params{
		SampleBytes:  2048,
		Permutations: 3,
		BatchSize:    2,
		Seed:         7,
		SeqMinLen:    100,
		SeqMaxLen:    200,
	}
}

func startStore(t *testing.T) (*preserv.Client, string) {
	t.Helper()
	svc := preserv.NewService(store.New(store.NewMemoryBackend()))
	srv, err := preserv.Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return preserv.NewClient(srv.URL, nil), srv.URL
}

func TestRunNoRecording(t *testing.T) {
	res, err := Run(smallParams(), Config{Mode: RecordOff})
	if err != nil {
		t.Fatal(err)
	}
	if res.RecordsCreated != 0 {
		t.Errorf("no-recording mode created %d records", res.RecordsCreated)
	}
	if res.Results == nil || len(res.Results.PerCodec) != 2 {
		t.Fatalf("results = %+v", res.Results)
	}
	for _, codec := range []string{"gzip", "ppmz"} {
		cs, ok := res.Results.PerCodec[codec]
		if !ok {
			t.Fatalf("codec %s missing", codec)
		}
		if cs.SampleRatio <= 0 || cs.MeanRatio <= 0 {
			t.Errorf("%s ratios: %+v", codec, cs)
		}
		if cs.Permutations != 3 {
			t.Errorf("%s permutations = %d, want 3", codec, cs.Permutations)
		}
		// The headline scientific property: the structured sample must
		// compress at least as well as its shuffled permutations.
		if cs.StructureIndex >= 1.02 {
			t.Errorf("%s structure index = %.4f; structured sample should not compress worse", codec, cs.StructureIndex)
		}
	}
	if !strings.Contains(res.ResultsText, "gzip") {
		t.Error("results text missing codec rows")
	}
}

func TestRunDeterministicResults(t *testing.T) {
	a, err := Run(smallParams(), Config{Mode: RecordOff})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallParams(), Config{Mode: RecordOff})
	if err != nil {
		t.Fatal(err)
	}
	for codec, ca := range a.Results.PerCodec {
		cb := b.Results.PerCodec[codec]
		if ca.SampleRatio != cb.SampleRatio || ca.MeanRatio != cb.MeanRatio {
			t.Errorf("%s: results differ across identical seeded runs", codec)
		}
	}
}

func TestRunSyncRecordsSixPerPermutation(t *testing.T) {
	pc, url := startStore(t)
	p := smallParams()
	res, err := Run(p, Config{Mode: RecordSync, StoreURLs: []string{url}})
	if err != nil {
		t.Fatal(err)
	}
	// Fine-grained: 6 records per permutation unit (N permutations plus
	// the unshuffled sample). Coarse: one per workflow activity.
	units := p.Permutations + 1
	batches := (units + p.BatchSize - 1) / p.BatchSize
	coarse := 3 + batches // collate, encode, collate-sizes, average = 4... batches + 4
	coarse = 4 + batches
	wantFine := int64(units * RecordsPerPermutation(2))
	if res.RecordsCreated != wantFine+int64(coarse) {
		t.Errorf("records = %d, want %d fine + %d coarse", res.RecordsCreated, wantFine, coarse)
	}
	cnt, err := pc.Count()
	if err != nil {
		t.Fatal(err)
	}
	if int64(cnt.Records) != res.RecordsCreated {
		t.Errorf("store holds %d records, recorder reported %d", cnt.Records, res.RecordsCreated)
	}
	if cnt.ActorStates != 0 {
		t.Errorf("sync mode stored %d actor states, want 0", cnt.ActorStates)
	}
}

func TestRunSyncExtraRecordsScripts(t *testing.T) {
	pc, url := startStore(t)
	res, err := Run(smallParams(), Config{Mode: RecordSyncExtra, StoreURLs: []string{url}})
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := pc.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.ActorStates == 0 {
		t.Fatal("extra mode stored no actor-state p-assertions")
	}
	if cnt.ActorStates != cnt.Interactions {
		t.Errorf("actor states = %d, interactions = %d; extra mode pairs them", cnt.ActorStates, cnt.Interactions)
	}
	// Scripts must be queryable for the comparison use case.
	recs, _, err := pc.Query(&prep.Query{
		SessionID: res.SessionID,
		Kind:      core.KindActorState.String(),
		StateKind: core.StateScript,
		Limit:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || !strings.Contains(string(recs[0].ActorState.Content), "#!/bin/sh") {
		t.Error("script p-assertions missing or malformed")
	}
}

func TestRunAsyncDefersAndShips(t *testing.T) {
	pc, url := startStore(t)
	p := smallParams()
	res, err := Run(p, Config{
		Mode:       RecordAsync,
		StoreURLs:  []string{url},
		JournalDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := pc.Count()
	if err != nil {
		t.Fatal(err)
	}
	if int64(cnt.Records) != res.RecordsCreated {
		t.Errorf("store holds %d, want %d", cnt.Records, res.RecordsCreated)
	}
	if res.Elapsed < res.WorkflowElapsed {
		t.Error("overall elapsed must include the shipping phase")
	}
}

func TestRunAsyncDistributed(t *testing.T) {
	_, url1 := startStore(t)
	pc2, url2 := startStore(t)
	res, err := Run(smallParams(), Config{
		Mode:       RecordAsync,
		StoreURLs:  []string{url1, url2},
		JournalDir: t.TempDir(),
		AsyncBatch: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cnt2, err := pc2.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt2.Records == 0 {
		t.Error("second store received nothing in distributed mode")
	}
	if res.RecordsCreated == 0 {
		t.Error("no records created")
	}
}

func TestRunModesNeedStoreURL(t *testing.T) {
	for _, mode := range []RecordingMode{RecordSync, RecordSyncExtra, RecordAsync} {
		if _, err := Run(smallParams(), Config{Mode: mode}); err == nil {
			t.Errorf("mode %s without store URL should fail", mode)
		}
	}
	if _, err := Run(smallParams(), Config{Mode: RecordingMode(99)}); err == nil {
		t.Error("unknown mode should fail")
	}
}

func TestRunOnGridCluster(t *testing.T) {
	cluster, err := grid.NewCluster(2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(smallParams(), Config{Mode: RecordOff, Cluster: cluster})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results == nil {
		t.Fatal("no results")
	}
	if cluster.Stats().JobsRun == 0 {
		t.Error("cluster ran no jobs")
	}
}

func TestRunNucleotideTrapEndToEnd(t *testing.T) {
	// The full use-case-2 story: a nucleotide sample runs through the
	// whole experiment WITHOUT error, and only semantic validation
	// against the registry exposes the problem.
	pc, url := startStore(t)
	_ = pc

	reg := registry.NewRegistry()
	rsrv, err := registry.Serve(reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()
	rc := registry.NewClient(rsrv.URL, nil)
	if err := PublishAll(rc, []string{"gzip", "ppmz"}); err != nil {
		t.Fatal(err)
	}

	p := smallParams()
	p.NucleotideInput = true
	res, err := Run(p, Config{Mode: RecordSync, StoreURLs: []string{url}})
	if err != nil {
		t.Fatalf("nucleotide run must succeed syntactically: %v", err)
	}

	val := &semval.Validator{
		Store:    preserv.NewClient(url, nil),
		Registry: rc,
		Ontology: ontology.Bioinformatics(),
	}
	rep, err := val.ValidateSession(res.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid() {
		t.Fatal("semantic validation passed; the nucleotide error went undetected")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Service == SvcEncode && v.Produced == ontology.TypeNucleotide && v.Expected == ontology.TypeProtein {
			found = true
		}
	}
	if !found {
		t.Errorf("expected the encode-input violation, got: %v", rep.Violations)
	}
}

func TestRunProteinSessionValidates(t *testing.T) {
	// The healthy counterpart: a protein run passes semantic validation.
	_, url := startStore(t)
	reg := registry.NewRegistry()
	rsrv, err := registry.Serve(reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()
	rc := registry.NewClient(rsrv.URL, nil)
	if err := PublishAll(rc, []string{"gzip", "ppmz"}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(smallParams(), Config{Mode: RecordSync, StoreURLs: []string{url}})
	if err != nil {
		t.Fatal(err)
	}
	val := &semval.Validator{
		Store:    preserv.NewClient(url, nil),
		Registry: rc,
		Ontology: ontology.Bioinformatics(),
	}
	rep, err := val.ValidateSession(res.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Valid() {
		t.Fatalf("protein session should validate cleanly, got: %v", rep.Violations)
	}
	if rep.Interactions == 0 || rep.EdgesChecked == 0 {
		t.Errorf("validation checked nothing: %+v", rep)
	}
}

func TestScriptConfigsChangeRecordedScripts(t *testing.T) {
	pc, url := startStore(t)
	p := smallParams()
	p.ScriptConfigs = map[core.ActorID]string{CompressorService("gzip"): "level=1"}
	res, err := Run(p, Config{Mode: RecordSyncExtra, StoreURLs: []string{url}})
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := pc.Query(&prep.Query{
		SessionID: res.SessionID,
		Kind:      core.KindActorState.String(),
		StateKind: core.StateScript,
		Service:   CompressorService("gzip"),
		Limit:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || !strings.Contains(string(recs[0].ActorState.Content), "level=1") {
		t.Error("script config not embedded in recorded script")
	}
}

func TestPermSeedDistinct(t *testing.T) {
	seen := make(map[int64]bool)
	for perm := 0; perm < 1000; perm++ {
		s := permSeed(42, perm)
		if seen[s] {
			t.Fatalf("duplicate shuffle seed at perm %d", perm)
		}
		seen[s] = true
	}
	if permSeed(1, 5) == permSeed(2, 5) {
		t.Error("different base seeds should give different perm seeds")
	}
}

func TestRecordsPerPermutation(t *testing.T) {
	if got := RecordsPerPermutation(2); got != 6 {
		t.Errorf("RecordsPerPermutation(2) = %d, want 6 (the paper's count)", got)
	}
	if got := RecordsPerPermutation(3); got != 8 {
		t.Errorf("RecordsPerPermutation(3) = %d, want 8", got)
	}
}

func TestRunSingleCodec(t *testing.T) {
	p := smallParams()
	p.Codecs = []string{"gzip"}
	res, err := Run(p, Config{Mode: RecordOff})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results.PerCodec) != 1 {
		t.Errorf("codecs = %v", res.Results.Codecs())
	}
}

func TestRunBzip2Codec(t *testing.T) {
	p := smallParams()
	p.Codecs = []string{"bzip2"}
	res, err := Run(p, Config{Mode: RecordOff})
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Results.PerCodec["bzip2"]
	if cs.SampleRatio <= 0 {
		t.Errorf("bzip2 stats = %+v", cs)
	}
}

func TestRunUnknownCodecFails(t *testing.T) {
	p := smallParams()
	p.Codecs = []string{"snappy"}
	if _, err := Run(p, Config{Mode: RecordOff}); err == nil {
		t.Error("unknown codec should fail")
	}
}

func TestDifferentGroupingsChangeCompressibility(t *testing.T) {
	p := smallParams()
	p.Codecs = []string{"gzip"}
	rh, err := Run(p, Config{Mode: RecordOff})
	if err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.Grouping = bio.Identity20()
	ri, err := Run(p2, Config{Mode: RecordOff})
	if err != nil {
		t.Fatal(err)
	}
	// A 4-symbol alphabet must compress (absolutely) better than the
	// 20-symbol identity encoding of the same underlying sample.
	if rh.Results.PerCodec["gzip"].SampleRatio >= ri.Results.PerCodec["gzip"].SampleRatio {
		t.Errorf("hydropathy4 ratio %.4f should beat identity20 ratio %.4f",
			rh.Results.PerCodec["gzip"].SampleRatio, ri.Results.PerCodec["gzip"].SampleRatio)
	}
}

func TestZeroPermutations(t *testing.T) {
	p := smallParams()
	p.Permutations = 0
	res, err := Run(p, Config{Mode: RecordOff})
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Results.PerCodec["gzip"]
	if cs.Permutations != 0 || cs.MeanRatio != 0 {
		t.Errorf("zero-permutation stats = %+v", cs)
	}
}
