package experiment

import (
	"fmt"

	"preserv/internal/core"
	"preserv/internal/ontology"
	"preserv/internal/registry"
)

// Actor identities of the experiment's services. The workflow enactor is
// the client of every service; each box of the paper's Figures 1 and 2
// is a service in its own right.
const (
	SvcEnactor      core.ActorID = "svc:enactor"
	SvcCollate      core.ActorID = "svc:collate-sample"
	SvcCollateNuc   core.ActorID = "svc:collate-sample-nucleotide"
	SvcEncode       core.ActorID = "svc:encode-by-groups"
	SvcShuffle      core.ActorID = "svc:shuffle"
	SvcMeasure      core.ActorID = "svc:measure-size"
	SvcCollateSizes core.ActorID = "svc:collate-sizes"
	SvcBatch        core.ActorID = "svc:measure-batch"
	SvcAverage      core.ActorID = "svc:average"
)

// CompressorService returns the actor identity of a compression service.
func CompressorService(codec string) core.ActorID {
	return core.ActorID("svc:" + codec)
}

// DefaultScript renders the canonical script content for a service.
// Scripts are what use case 1 categorises, so they embed the
// configuration that distinguishes two runs of "the same" experiment.
func DefaultScript(service core.ActorID, config string) string {
	if config == "" {
		config = "default"
	}
	return fmt.Sprintf("#!/bin/sh\n# service: %s\n# config: %s\nexec /opt/pcomp/bin/%s \"$@\"\n",
		service, config, service[len("svc:"):])
}

// Descriptions returns the registry service descriptions, with semantic
// annotations from the application ontology, for every service the
// experiment invokes. codecs names the compression services in use.
func Descriptions(codecs []string) []*registry.ServiceDescription {
	descs := []*registry.ServiceDescription{
		{
			Service:     SvcCollate,
			Description: "collates protein sequences into a sample of the requested size",
			Operations: []registry.Operation{{
				Name:    "collate",
				Inputs:  []registry.PartDecl{{Name: "sequences", SemanticType: ontology.TypeProtein}},
				Outputs: []registry.PartDecl{{Name: "sample", SemanticType: ontology.TypeProtein}},
			}},
		},
		{
			Service:     SvcCollateNuc,
			Description: "collates nucleotide sequences into a sample",
			Operations: []registry.Operation{{
				Name:    "collate",
				Inputs:  []registry.PartDecl{{Name: "sequences", SemanticType: ontology.TypeNucleotide}},
				Outputs: []registry.PartDecl{{Name: "sample", SemanticType: ontology.TypeNucleotide}},
			}},
		},
		{
			Service:     SvcEncode,
			Description: "recodes an amino-acid sequence with a reduced group alphabet",
			Operations: []registry.Operation{{
				Name: "encode",
				Inputs: []registry.PartDecl{
					{Name: "sample", SemanticType: ontology.TypeProtein},
					{Name: "grouping", SemanticType: ontology.TypeGroupingSpec},
				},
				Outputs: []registry.PartDecl{{Name: "encoded", SemanticType: ontology.TypeGroupEncoded}},
			}},
		},
		{
			Service:     SvcShuffle,
			Description: "produces a random permutation of a sequence",
			Operations: []registry.Operation{{
				Name: "shuffle",
				Inputs: []registry.PartDecl{
					{Name: "sample", SemanticType: ontology.TypeGroupEncoded},
					{Name: "seed", SemanticType: ontology.TypeRandomSeed},
				},
				Outputs: []registry.PartDecl{{Name: "permuted", SemanticType: ontology.TypePermutedEncoded}},
			}},
		},
		{
			Service:     SvcMeasure,
			Description: "measures the size of a datum in bytes",
			Operations: []registry.Operation{{
				Name:    "measure",
				Inputs:  []registry.PartDecl{{Name: "data", SemanticType: ontology.TypeAny}},
				Outputs: []registry.PartDecl{{Name: "size", SemanticType: ontology.TypeSize}},
			}},
		},
		{
			Service:     SvcCollateSizes,
			Description: "collates size measurements into tables",
			Operations: []registry.Operation{
				{
					Name:    "collate-permutation",
					Inputs:  []registry.PartDecl{{Name: "size-*", SemanticType: ontology.TypeSize}},
					Outputs: []registry.PartDecl{{Name: "sizes", SemanticType: ontology.TypeSizesTable}},
				},
				{
					Name:    "collate-all",
					Inputs:  []registry.PartDecl{{Name: "sizes-*", SemanticType: ontology.TypeSizesTable}},
					Outputs: []registry.PartDecl{{Name: "sizes-table", SemanticType: ontology.TypeSizesTable}},
				},
			},
		},
		{
			Service:     SvcBatch,
			Description: "runs the Measure sub-workflow for a batch of permutations",
			Operations: []registry.Operation{{
				Name:    "measure",
				Inputs:  []registry.PartDecl{{Name: "encoded", SemanticType: ontology.TypeGroupEncoded}},
				Outputs: []registry.PartDecl{{Name: "sizes", SemanticType: ontology.TypeSizesTable}},
			}},
		},
		{
			Service:     SvcAverage,
			Description: "computes compressibility statistics from size tables",
			Operations: []registry.Operation{{
				Name:    "average",
				Inputs:  []registry.PartDecl{{Name: "sizes-table", SemanticType: ontology.TypeSizesTable}},
				Outputs: []registry.PartDecl{{Name: "results", SemanticType: ontology.TypeCompressibility}},
			}},
		},
	}
	for _, codec := range codecs {
		descs = append(descs, &registry.ServiceDescription{
			Service:     CompressorService(codec),
			Description: codec + " compression service",
			Operations: []registry.Operation{{
				Name:    "compress",
				Inputs:  []registry.PartDecl{{Name: "sample", SemanticType: ontology.TypeGroupEncoded}},
				Outputs: []registry.PartDecl{{Name: "compressed", SemanticType: ontology.TypeCompressed}},
			}},
		})
	}
	return descs
}

// PublishAll publishes every description to the registry endpoint.
func PublishAll(rc *registry.Client, codecs []string) error {
	for _, d := range Descriptions(codecs) {
		if err := rc.Publish(d); err != nil {
			return fmt.Errorf("experiment: publishing %s: %w", d.Service, err)
		}
	}
	return nil
}
