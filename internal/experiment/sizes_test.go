package experiment

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatParseSizesRoundTrip(t *testing.T) {
	entries := []SizeEntry{
		{Perm: 0, Label: LabelOriginal, Size: 1000},
		{Perm: 0, Label: "gzip", Size: 250},
		{Perm: 1, Label: LabelOriginal, Size: 1000},
		{Perm: 1, Label: "gzip", Size: 300},
		{Perm: 1, Label: "ppmz", Size: 280},
	}
	back, err := ParseSizes(FormatSizes(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(back), len(entries))
	}
	for i := range entries {
		if back[i] != entries[i] {
			t.Errorf("entry %d = %+v, want %+v", i, back[i], entries[i])
		}
	}
}

func TestParseSizesTolerationAndErrors(t *testing.T) {
	if _, err := ParseSizes([]byte("\n\n1\tgzip\t5\n\n")); err != nil {
		t.Errorf("blank lines should be tolerated: %v", err)
	}
	bad := []string{
		"1\tgzip",           // too few fields
		"1\tgzip\t5\textra", // too many fields
		"x\tgzip\t5",        // bad perm
		"1\tgzip\ty",        // bad size
		"1\t\t5",            // empty label
	}
	for _, line := range bad {
		if _, err := ParseSizes([]byte(line + "\n")); err == nil {
			t.Errorf("ParseSizes(%q) succeeded, want error", line)
		}
	}
}

func TestComputeResultsBasic(t *testing.T) {
	entries := []SizeEntry{
		{Perm: 0, Label: LabelOriginal, Size: 1000},
		{Perm: 0, Label: "gzip", Size: 200},
		{Perm: 1, Label: LabelOriginal, Size: 1000},
		{Perm: 1, Label: "gzip", Size: 400},
		{Perm: 2, Label: LabelOriginal, Size: 1000},
		{Perm: 2, Label: "gzip", Size: 600},
	}
	res, err := ComputeResults(entries)
	if err != nil {
		t.Fatal(err)
	}
	cs := res.PerCodec["gzip"]
	if math.Abs(cs.SampleRatio-0.2) > 1e-9 {
		t.Errorf("SampleRatio = %v", cs.SampleRatio)
	}
	if math.Abs(cs.MeanRatio-0.5) > 1e-9 {
		t.Errorf("MeanRatio = %v", cs.MeanRatio)
	}
	if cs.Permutations != 2 {
		t.Errorf("Permutations = %d", cs.Permutations)
	}
	if math.Abs(cs.StructureIndex-0.4) > 1e-9 {
		t.Errorf("StructureIndex = %v", cs.StructureIndex)
	}
	if cs.StdRatio <= 0 {
		t.Errorf("StdRatio = %v", cs.StdRatio)
	}
}

func TestComputeResultsErrors(t *testing.T) {
	cases := map[string][]SizeEntry{
		"empty": {},
		"no original": {
			{Perm: 0, Label: "gzip", Size: 1},
		},
		"zero original": {
			{Perm: 0, Label: LabelOriginal, Size: 0},
			{Perm: 0, Label: "gzip", Size: 1},
		},
		"negative size": {
			{Perm: 0, Label: LabelOriginal, Size: 10},
			{Perm: 0, Label: "gzip", Size: -1},
		},
		"only originals": {
			{Perm: 0, Label: LabelOriginal, Size: 10},
		},
		"missing sample perm": {
			{Perm: 1, Label: LabelOriginal, Size: 10},
			{Perm: 1, Label: "gzip", Size: 5},
		},
	}
	for name, entries := range cases {
		if _, err := ComputeResults(entries); err == nil {
			t.Errorf("%s: ComputeResults succeeded, want error", name)
		}
	}
}

func TestResultsRenderAndCodecs(t *testing.T) {
	entries := []SizeEntry{
		{Perm: 0, Label: LabelOriginal, Size: 100},
		{Perm: 0, Label: "zzz", Size: 50},
		{Perm: 0, Label: "aaa", Size: 40},
	}
	res, err := ComputeResults(entries)
	if err != nil {
		t.Fatal(err)
	}
	codecs := res.Codecs()
	if len(codecs) != 2 || codecs[0] != "aaa" || codecs[1] != "zzz" {
		t.Errorf("Codecs = %v", codecs)
	}
	out := string(res.Render())
	for _, want := range []string{"codec", "aaa", "zzz", "structure"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
}

// Property: format/parse is the identity for arbitrary valid entries.
func TestQuickSizesRoundTrip(t *testing.T) {
	f := func(perms []uint8, sizes []uint16) bool {
		n := len(perms)
		if len(sizes) < n {
			n = len(sizes)
		}
		entries := make([]SizeEntry, n)
		for i := 0; i < n; i++ {
			label := "gzip"
			if i%3 == 0 {
				label = LabelOriginal
			}
			entries[i] = SizeEntry{Perm: int(perms[i]), Label: label, Size: int(sizes[i])}
		}
		back, err := ParseSizes(FormatSizes(entries))
		if err != nil {
			return false
		}
		if len(back) != len(entries) {
			return false
		}
		for i := range entries {
			if back[i] != entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling all sizes by a constant leaves ratios unchanged.
func TestQuickComputeResultsScaleInvariant(t *testing.T) {
	f := func(comp1, comp2 uint8) bool {
		base := []SizeEntry{
			{Perm: 0, Label: LabelOriginal, Size: 1000},
			{Perm: 0, Label: "c", Size: int(comp1) + 1},
			{Perm: 1, Label: LabelOriginal, Size: 1000},
			{Perm: 1, Label: "c", Size: int(comp2) + 1},
		}
		scaled := make([]SizeEntry, len(base))
		for i, e := range base {
			e.Size *= 7
			scaled[i] = e
		}
		r1, err1 := ComputeResults(base)
		r2, err2 := ComputeResults(scaled)
		if err1 != nil || err2 != nil {
			return false
		}
		a, b := r1.PerCodec["c"], r2.PerCodec["c"]
		return math.Abs(a.SampleRatio-b.SampleRatio) < 1e-9 &&
			math.Abs(a.MeanRatio-b.MeanRatio) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
