package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// LockOrder enforces the declared lock hierarchy: every mutex carrying
// a provlint:lock-order rank must be acquired in strictly ascending
// rank order within a function, and every call to a function annotated
// provlint:requires must happen with the named lock held. The
// simulation is linear and intra-procedural — statements are visited
// in source order, `defer x.Unlock()` keeps x held to the end, and
// function literals are simulated with their own empty held set (a
// goroutine or callback starts with no locks of its own).
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "check mutex acquisition order against the declared provlint:lock-order hierarchy " +
		"and provlint:requires call-site obligations",
	Run: runLockOrder,
}

// heldLock is one annotated lock the simulation believes is held.
type heldLock struct {
	obj  types.Object
	rank int
}

func runLockOrder(pass *analysis.Pass) (interface{}, error) {
	d := collectDirectives(pass)
	if len(d.lockRank) == 0 && len(d.requires) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			simulateFunc(pass, d, fd, fd.Body)
		}
	}
	return nil, nil
}

// simulateFunc simulates one function body in source order, tracking
// the held set of annotated locks, and reports rank inversions and
// unmet `requires` obligations. The model is deliberately simple:
//
//   - Straight-line statements mutate the held set (Lock acquires,
//     Unlock releases, `defer x.Unlock()` keeps x held to the end).
//   - Branch bodies (if/for/switch/select) are simulated with a COPY
//     of the held set; their effects do not escape to the fall-through
//     path. This keeps the early-exit guard idiom
//     `if done { mu.Unlock(); return nil }` from looking like a
//     release on the path that continues with mu held.
//   - Nested function literals are queued and simulated with an empty
//     held set (a goroutine or callback starts with no locks).
func simulateFunc(pass *analysis.Pass, d *directives, fd *ast.FuncDecl, body *ast.BlockStmt) {
	sim := &lockSim{pass: pass, d: d, fnObj: funcObj(pass, fd)}
	sim.block(body, nil)
	for i := 0; i < len(sim.lits); i++ { // queue grows while simulating
		lit := sim.lits[i]
		litSim := &lockSim{pass: pass, d: d, fnObj: sim.fnObj, lits: sim.lits}
		litSim.block(lit.Body, nil)
		sim.lits = litSim.lits
	}
}

// lockSim carries the per-function simulation state.
type lockSim struct {
	pass  *analysis.Pass
	d     *directives
	fnObj types.Object
	lits  []*ast.FuncLit
}

// block simulates a statement list and returns the held set at its
// fall-through exit.
func (s *lockSim) block(b *ast.BlockStmt, held []heldLock) []heldLock {
	if b == nil {
		return held
	}
	for _, st := range b.List {
		held = s.stmt(st, held)
	}
	return held
}

// stmt simulates one statement and returns the updated held set.
func (s *lockSim) stmt(st ast.Stmt, held []heldLock) []heldLock {
	switch st := st.(type) {
	case *ast.BlockStmt:
		// An explicit block shares the enclosing path.
		return s.block(st, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		held = s.expr(st.Cond, held)
		s.block(st.Body, snapshot(held))
		if st.Else != nil {
			s.stmt(st.Else, snapshot(held))
		}
		return held
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			held = s.expr(st.Cond, held)
		}
		inner := snapshot(held)
		inner = s.block(st.Body, inner)
		if st.Post != nil {
			s.stmt(st.Post, inner)
		}
		return held
	case *ast.RangeStmt:
		held = s.expr(st.X, held)
		s.block(st.Body, snapshot(held))
		return held
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			held = s.expr(st.Tag, held)
		}
		s.clauses(st.Body, held)
		return held
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		held = s.stmt(st.Assign, held)
		s.clauses(st.Body, held)
		return held
	case *ast.SelectStmt:
		s.clauses(st.Body, held)
		return held
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end; any
		// other deferred call is checked against the current held set
		// (the closest linear approximation of "runs on every exit").
		if sel, ok := st.Call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Unlock", "RUnlock":
				return held
			}
		}
		return s.expr(st.Call, held)
	case *ast.GoStmt:
		// The goroutine body runs with its own empty held set; its
		// function-literal operand is queued by expr.
		return s.expr(st.Call.Fun, held)
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt, held)
	case *ast.ExprStmt:
		return s.expr(st.X, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			held = s.expr(e, held)
		}
		for _, e := range st.Lhs {
			held = s.expr(e, held)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			held = s.expr(e, held)
		}
		return held
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		var out []heldLock = held
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				out = s.expr(e, out)
				return false
			}
			return true
		})
		return out
	default:
		return held
	}
}

// clauses simulates each case/comm clause body with its own copy of
// the held set.
func (s *lockSim) clauses(body *ast.BlockStmt, held []heldLock) {
	for _, st := range body.List {
		inner := snapshot(held)
		switch cc := st.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				inner = s.expr(e, inner)
			}
			for _, b := range cc.Body {
				inner = s.stmt(b, inner)
			}
		case *ast.CommClause:
			if cc.Comm != nil {
				inner = s.stmt(cc.Comm, inner)
			}
			for _, b := range cc.Body {
				inner = s.stmt(b, inner)
			}
		}
	}
}

// expr walks an expression in evaluation order, applying Lock/Unlock
// effects, checking requires obligations, and queueing function
// literals.
func (s *lockSim) expr(e ast.Expr, held []heldLock) []heldLock {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.lits = append(s.lits, n)
			return false
		case *ast.CallExpr:
			// Walk arguments (and nested calls in the callee) first so
			// the effects of inner calls precede the outer one.
			if n.Fun != nil {
				held = s.expr(n.Fun, held)
			}
			for _, a := range n.Args {
				held = s.expr(a, held)
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if obj := lockBaseObj(s.pass.TypesInfo, sel.X); obj != nil {
						if rank, ok := s.d.lockRank[obj]; ok {
							checkAcquire(s.pass, s.d, held, obj, rank, n)
							held = append(held, heldLock{obj, rank})
						}
					}
				case "Unlock", "RUnlock":
					if obj := lockBaseObj(s.pass.TypesInfo, sel.X); obj != nil {
						if _, ok := s.d.lockRank[obj]; ok {
							held = release(held, obj)
						}
					}
				}
			}
			checkRequires(s.pass, s.d, held, s.fnObj, n)
			return false
		}
		return true
	})
	return held
}

// snapshot copies a held set so a branch cannot mutate its parent's.
func snapshot(held []heldLock) []heldLock {
	out := make([]heldLock, len(held))
	copy(out, held)
	return out
}

// checkAcquire reports an inversion when a lock is acquired while a
// lock of equal or higher rank is already held. Re-acquisition of the
// same object is skipped: striped lock arrays annotate one field, and
// their elements are acquired in a fixed index order the per-object
// model cannot see.
func checkAcquire(pass *analysis.Pass, d *directives, held []heldLock, obj types.Object, rank int, at ast.Node) {
	for _, h := range held {
		if h.obj == obj {
			return
		}
	}
	for _, h := range held {
		if h.rank >= rank {
			d.report(pass, analysis.Diagnostic{
				Pos: at.Pos(),
				Message: fmt.Sprintf(
					"lock order inversion: acquires %s (rank %d) while holding %s (rank %d); the hierarchy requires ascending ranks",
					obj.Name(), rank, h.obj.Name(), h.rank),
			})
			return
		}
	}
}

// checkRequires reports calls to provlint:requires-annotated functions
// made without the named lock held (and without the caller carrying
// the same obligation).
func checkRequires(pass *analysis.Pass, d *directives, held []heldLock, caller types.Object, call *ast.CallExpr) {
	callee := typeutil.Callee(pass.TypesInfo, call)
	if callee == nil {
		return
	}
	needs := d.requires[callee]
	if len(needs) == 0 {
		return
	}
outer:
	for _, name := range needs {
		for _, h := range held {
			if h.obj.Name() == name {
				continue outer
			}
		}
		if caller != nil {
			for _, n := range d.requires[caller] {
				if n == name {
					continue outer
				}
			}
		}
		d.report(pass, analysis.Diagnostic{
			Pos: call.Pos(),
			Message: fmt.Sprintf(
				"call to %s requires %s held (provlint:requires), but no acquisition is visible on this path",
				callee.Name(), name),
		})
	}
}

// release removes the most recent held entry for obj.
func release(held []heldLock, obj types.Object) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].obj == obj {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}
