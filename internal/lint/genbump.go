package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// GenBump pins the cache-coherence ordering the PR 7 read path depends
// on: in package store, any function that mutates the backend through
// the Backend interface (Put/PutBatch/Delete/DeleteBatch) must bump
// the store generation in the same commit section — a call to
// `.gen.Add(...)` anywhere in the function, deferred bumps included —
// or carry an explicit provlint:no-genbump annotation whose comment
// justifies where the bump lives instead. A missed bump lets the
// query result cache, the block cache, and the router result cache
// serve stale answers as fresh.
var GenBump = &analysis.Analyzer{
	Name: "genbump",
	Doc: "check that store functions mutating the Backend also bump the store generation " +
		"(or carry provlint:no-genbump)",
	Run: runGenBump,
}

// backendMutators are the Backend interface's mutating methods.
var backendMutators = map[string]bool{
	"Put":         true,
	"PutBatch":    true,
	"Delete":      true,
	"DeleteBatch": true,
}

func runGenBump(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() != "store" {
		return nil, nil
	}
	backendObj := pass.Pkg.Scope().Lookup("Backend")
	if backendObj == nil {
		return nil, nil
	}
	backendType := backendObj.Type()
	if _, ok := backendType.Underlying().(*types.Interface); !ok {
		return nil, nil
	}
	d := collectDirectives(pass)

	for _, f := range pass.Files {
		// Tests drive backends directly to pin the Backend contract
		// itself; the generation/caching contract they would need to
		// honour belongs to the Store wrapper, not to them.
		if strings.HasSuffix(pass.Fset.Position(f.FileStart).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var mutation *ast.CallExpr
			var mutationName string
			bumped := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				// A generation bump: any `<...>.gen.Add(...)` call.
				if sel.Sel.Name == "Add" {
					if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == "gen" {
						bumped = true
					}
				}
				// A backend mutation: Put/PutBatch/Delete/DeleteBatch
				// dispatched through the Backend interface.
				if backendMutators[sel.Sel.Name] {
					if recvT := pass.TypesInfo.TypeOf(sel.X); recvT != nil &&
						types.Identical(types.Unalias(recvT), backendType) {
						if mutation == nil {
							mutation = call
							mutationName = sel.Sel.Name
						}
					}
				}
				return true
			})
			if mutation != nil && !bumped && !d.noGenbump[funcObj(pass, fd)] {
				d.report(pass, analysis.Diagnostic{
					Pos: mutation.Pos(),
					Message: fmt.Sprintf(
						"%s calls Backend.%s without bumping the store generation: cached query results would "+
							"survive the mutation — add a gen.Add in the same commit section, or annotate the "+
							"function provlint:no-genbump with a justification",
						fd.Name.Name, mutationName),
				})
			}
		}
	}
	return nil, nil
}
