package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// AtomicField finds the exact class of the PR 5 CompactRatio and PR 6
// torn-stats bugs: a field that is ever accessed through sync/atomic
// must never be read or written plainly, and must never escape by a
// copy of its enclosing struct. Plain reads get a suggested fix that
// rewrites them to the matching atomic load. Construction-time plain
// access goes in functions annotated provlint:atomic-exempt.
var AtomicField = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "check that fields accessed via sync/atomic are never read/written plainly " +
		"or copied with their struct",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runAtomicField,
}

// atomicLoadFunc maps a basic field type to its sync/atomic load
// function, for the suggested fix.
func atomicLoadFunc(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	switch b.Kind() {
	case types.Int32:
		return "LoadInt32"
	case types.Int64:
		return "LoadInt64"
	case types.Uint32:
		return "LoadUint32"
	case types.Uint64:
		return "LoadUint64"
	case types.Uintptr:
		return "LoadUintptr"
	}
	return ""
}

func runAtomicField(pass *analysis.Pass) (interface{}, error) {
	d := collectDirectives(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: find every `&x` argument to a sync/atomic function. The
	// pointed-to field/var objects become the atomic set; those exact
	// operand expressions are the sanctioned uses.
	marked := map[types.Object]bool{}
	sanctioned := map[ast.Expr]bool{}
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := typeutil.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return
		}
		for _, arg := range call.Args {
			ue, ok := arg.(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				continue
			}
			if obj := lockBaseObj(pass.TypesInfo, ue.X); obj != nil {
				if v, ok := obj.(*types.Var); ok {
					marked[v] = true
					sanctioned[ue.X] = true
				}
			}
		}
	})
	if len(marked) == 0 {
		return nil, nil
	}

	// Owner structs: named types whose struct contains a marked field,
	// for the escape-by-copy check.
	owners := map[*types.TypeName]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if fobj := pass.TypesInfo.Defs[name]; fobj != nil && marked[fobj] {
						if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
							owners[tn] = fobj.Name()
						}
					}
				}
			}
			return true
		})
	}

	// atomicImported reports whether the file at pos imports
	// sync/atomic — the suggested fix is only safe to attach there.
	atomicImported := func(pos token.Pos) bool {
		for _, f := range pass.Files {
			if f.FileStart <= pos && pos < f.FileEnd {
				for _, imp := range f.Imports {
					if imp.Path.Value == `"sync/atomic"` {
						return true
					}
				}
			}
		}
		return false
	}

	// Pass 2: every other use of a marked field is a violation.
	ins.WithStack([]ast.Node{(*ast.SelectorExpr)(nil), (*ast.Ident)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		var obj types.Object
		var expr ast.Expr
		switch n := n.(type) {
		case *ast.SelectorExpr:
			obj = pass.TypesInfo.Uses[n.Sel]
			expr = n
		case *ast.Ident:
			// Package-level vars only; field selectors are handled via
			// their SelectorExpr so the whole expression is rewritten.
			if len(stack) >= 2 {
				if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.Sel == n {
					return true
				}
			}
			obj = pass.TypesInfo.Uses[n]
			expr = n
		}
		if obj == nil || !marked[obj] || sanctioned[expr] {
			return true
		}
		if fd := enclosingFuncDecl(stack); fd != nil && d.atomicExempt[funcObj(pass, fd)] {
			return true
		}
		diag := analysis.Diagnostic{Pos: expr.Pos()}
		if isWriteContext(stack, expr) {
			diag.Message = fmt.Sprintf(
				"plain write to atomic field %s: every access must go through sync/atomic (or annotate the function provlint:atomic-exempt)",
				obj.Name())
		} else {
			diag.Message = fmt.Sprintf(
				"plain read of atomic field %s: every access must go through sync/atomic (or annotate the function provlint:atomic-exempt)",
				obj.Name())
			if load := atomicLoadFunc(obj.Type()); load != "" && atomicImported(expr.Pos()) {
				diag.SuggestedFixes = []analysis.SuggestedFix{{
					Message: fmt.Sprintf("rewrite to atomic.%s", load),
					TextEdits: []analysis.TextEdit{{
						Pos:     expr.Pos(),
						End:     expr.End(),
						NewText: []byte(fmt.Sprintf("atomic.%s(&%s)", load, types.ExprString(expr))),
					}},
				}}
			}
		}
		d.report(pass, diag)
		return true
	})

	// Pass 3: escape by struct copy — copying a live value of a struct
	// that owns an atomic field tears it.
	checkCopy := func(expr ast.Expr) {
		src := expr
		if star, ok := src.(*ast.StarExpr); ok {
			src = star.X
		} else {
			switch src.(type) {
			case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
			default:
				return // composite literals, calls, &x: not a copy of a live value
			}
		}
		t := pass.TypesInfo.TypeOf(expr)
		if t == nil {
			return
		}
		named, ok := types.Unalias(t).(*types.Named)
		if !ok {
			return
		}
		if field, ok := owners[named.Obj()]; ok {
			d.report(pass, analysis.Diagnostic{
				Pos: expr.Pos(),
				Message: fmt.Sprintf(
					"copies struct %s, tearing its atomic field %s: pass *%s instead",
					named.Obj().Name(), field, named.Obj().Name()),
			})
		}
	}
	ins.Preorder([]ast.Node{(*ast.AssignStmt)(nil), (*ast.ValueSpec)(nil), (*ast.CallExpr)(nil), (*ast.ReturnStmt)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				checkCopy(rhs)
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				checkCopy(v)
			}
		case *ast.CallExpr:
			if fn := typeutil.Callee(pass.TypesInfo, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
				return
			}
			for _, arg := range n.Args {
				checkCopy(arg)
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				checkCopy(r)
			}
		}
	})
	return nil, nil
}

// enclosingFuncDecl returns the nearest FuncDecl on the stack.
func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// isWriteContext reports whether expr is being assigned to (including
// ++/--), as opposed to read.
func isWriteContext(stack []ast.Node, expr ast.Expr) bool {
	if len(stack) < 2 {
		return false
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if lhs == expr {
				return true
			}
		}
	case *ast.IncDecStmt:
		return parent.X == expr
	case *ast.UnaryExpr:
		return parent.Op == token.AND // address escape counts as a write hazard
	}
	return false
}
