// Package store (directory storefix) seeds the genbump violation: a
// function that mutates through the Backend interface without bumping
// the store generation. The analyzer keys on the package being named
// "store" and the interface being named "Backend", so this fixture
// deliberately reuses both names.
package store

// Backend is the fixture's mutable storage interface; the method set
// mirrors the mutators the analyzer tracks.
type Backend interface {
	Put(key string, val []byte) error
	PutBatch(kv map[string][]byte) error
	Delete(key string) error
	DeleteBatch(keys []string) error
}

type counter struct{ v uint64 }

func (c *counter) Add(d uint64) uint64 { c.v += d; return c.v }

type Store struct {
	b   Backend
	gen counter
}

func (s *Store) putBumped(key string, val []byte) error {
	err := s.b.Put(key, val)
	s.gen.Add(1)
	return err
}

func (s *Store) putUnbumped(key string, val []byte) error {
	return s.b.Put(key, val) // want `putUnbumped calls Backend.Put without bumping the store generation`
}

func (s *Store) deleteDeferredBump(keys []string) error {
	defer s.gen.Add(1)
	return s.b.DeleteBatch(keys)
}

// putRaw's bump lives in its callers, which batch several raw puts
// under one generation step.
//
// provlint:no-genbump callers batch raw puts under one bump
func (s *Store) putRaw(key string, val []byte) error {
	return s.b.Put(key, val)
}
