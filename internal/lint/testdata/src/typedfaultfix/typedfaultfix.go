// Package typedfaultfix seeds wire-contract violations for the
// typedfault analyzer: inside a typed-faults function, a bare
// errors.New and a %w-less fmt.Errorf at the return site strand the
// remote caller with string matching; sentinels and %w-wraps are the
// sanctioned forms, and unannotated functions are out of scope.
package typedfaultfix

import (
	"errors"
	"fmt"
)

var errNotFound = errors.New("typedfaultfix: not found")

// provlint:typed-faults
func handleBare() error {
	return errors.New("boom") // want `untyped fault: errors.New at the return site`
}

// provlint:typed-faults
func handleErrorf(id int) error {
	return fmt.Errorf("bad id %d", id) // want `untyped fault: fmt.Errorf without %w`
}

// provlint:typed-faults
func handleWrapped(id int) error {
	return fmt.Errorf("handling %d: %w", id, errNotFound)
}

// provlint:typed-faults
func handleSentinel() error {
	return errNotFound
}

// provlint:typed-faults
func handleClosure() error {
	// A closure's returns are not the annotated function's returns.
	check := func() error { return errors.New("internal probe") }
	if err := check(); err != nil {
		return fmt.Errorf("probe: %w", errNotFound)
	}
	return nil
}

func unannotated() error {
	return errors.New("fine outside the contract")
}
