// Package obsfix seeds the obshotpath violation: a by-name registry
// lookup on a per-operation path, against the sanctioned forms — a
// constructor, an obs-setup function, a held handle, and the
// Once-cached Tracer.
package obsfix

import "obs"

type service struct {
	reg  *obs.Registry
	hits *obs.Counter
}

func NewService(reg *obs.Registry) *service {
	return &service{reg: reg, hits: reg.Counter("service_hits_total")}
}

func (s *service) handle() {
	s.reg.Counter("service_hits_total").Add(1) // want `obs registry lookup Counter`
	s.hits.Add(1)
}

// register resolves late-bound instruments after configuration load;
// the annotation sanctions the lookup outside a constructor.
//
// provlint:obs-setup late-bound registration after config load
func (s *service) register() {
	s.reg.Histogram("service_seconds", nil)
}

func (s *service) trace() *obs.Tracer {
	return s.reg.Tracer() // Once-cached pointer, not a by-name lookup
}
