// Package obs is a minimal stub of the real internal/obs registry,
// just enough surface for the obshotpath fixture to type-check the
// same way production code does: the analyzer matches by package name
// "obs" and receiver type name "Registry", so findings here prove the
// production matching.
package obs

type Counter struct{ n int64 }

func (c *Counter) Add(d int64) { c.n += d }

type Gauge struct{ v int64 }

func (g *Gauge) Set(v int64) { g.v = v }

type Histogram struct{}

func (h *Histogram) Observe(float64) {}

type Tracer struct{}

type Registry struct{}

func (r *Registry) Counter(name string) *Counter   { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge       { return &Gauge{} }
func (r *Registry) GaugeFunc(name string, fn func() float64) {}
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	return &Histogram{}
}
func (r *Registry) Tracer() *Tracer { return &Tracer{} }
