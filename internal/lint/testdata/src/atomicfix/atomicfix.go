// Package atomicfix seeds the atomicfield bug class: a field accessed
// through sync/atomic that is also read plainly (fixable), written
// plainly, and escaped by a struct copy — plus the atomic-exempt
// constructor idiom that must stay silent.
package atomicfix

import "sync/atomic"

type stats struct {
	hits int64
	name string
}

func (s *stats) incr() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) plainRead() int64 {
	return s.hits // want `plain read of atomic field hits`
}

func (s *stats) plainWrite() {
	s.hits = 0 // want `plain write to atomic field hits`
}

func (s *stats) copies() stats {
	return *s // want `copies struct stats, tearing its atomic field hits`
}

func (s *stats) label() string {
	return s.name // non-atomic field: plain access is fine
}

// newStats touches the field plainly before the value is published,
// which the annotation sanctions.
//
// provlint:atomic-exempt construction-time access before publication
func newStats() *stats {
	s := &stats{}
	s.hits = 0
	return s
}
