// Package lockorderfix seeds lock-hierarchy violations for the
// lockorder analyzer: a rank inversion, an unmet requires obligation
// (including from a goroutine, which starts with an empty held set),
// and the clean idioms — ascending acquisition, deferred release,
// early-exit guards, obligation-carrying callers — that must stay
// silent.
package lockorderfix

import "sync"

type server struct {
	// provlint:lock-order 10
	a sync.Mutex
	// provlint:lock-order 20
	b sync.RWMutex

	done bool
}

func (s *server) good() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

func (s *server) inverted() {
	s.b.Lock()
	s.a.Lock() // want `lock order inversion: acquires a (rank 10) while holding b (rank 20)`
	s.a.Unlock()
	s.b.Unlock()
}

// flushLocked must only run under a.
//
// provlint:requires a
func (s *server) flushLocked() {}

func (s *server) callsWithout() {
	s.flushLocked() // want `call to flushLocked requires a held`
}

func (s *server) callsWith() {
	s.a.Lock()
	defer s.a.Unlock()
	s.flushLocked()
}

// guard pins the early-exit model: the unlock inside the if-block does
// not release on the fall-through path, so the flushLocked call below
// it is still covered.
func (s *server) guard() {
	s.a.Lock()
	if s.done {
		s.a.Unlock()
		return
	}
	s.flushLocked()
	s.a.Unlock()
}

// carrier passes its own obligation down instead of acquiring.
//
// provlint:requires a
func (s *server) carrier() {
	s.flushLocked()
}

// goroutine bodies start with no locks of their own: the enclosing
// deferred unlock does not cover the closure.
func (s *server) spawns() {
	s.a.Lock()
	defer s.a.Unlock()
	go func() {
		s.flushLocked() // want `call to flushLocked requires a held`
	}()
}
