package lint

// This file is a minimal stand-in for golang.org/x/tools/go/analysis/
// analysistest, which the build environment cannot vendor (it is not
// part of the toolchain's own vendored x/tools subset). It loads a
// fixture package from testdata/src/<dir>, type-checks it with the
// stdlib source importer (no compiled export data needed), runs one
// analyzer over a hand-built analysis.Pass, and matches the emitted
// diagnostics against `// want `+"`substring`"+` comments on the
// offending lines. Each fixture seeds deliberate violations, so these
// tests prove the analyzers still CATCH the bug classes they exist
// for — a provlint that silently stopped firing would fail here, not
// pass CI quietly.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// fixturePkg is one loaded-and-checked fixture package.
type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// fixtureLoader resolves imports first against testdata/src (so
// fixtures can import stub packages like "obs"), then against the
// standard library compiled from GOROOT source.
type fixtureLoader struct {
	fset     *token.FileSet
	base     string
	cache    map[string]*fixturePkg
	fallback types.Importer
}

func newFixtureLoader() *fixtureLoader {
	fset := token.NewFileSet()
	return &fixtureLoader{
		fset:     fset,
		base:     filepath.Join("testdata", "src"),
		cache:    make(map[string]*fixturePkg),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
}

func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(l.base, path)); err == nil && fi.IsDir() {
		fp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	return l.fallback.Import(path)
}

func (l *fixtureLoader) load(dir string) (*fixturePkg, error) {
	if fp, ok := l.cache[dir]; ok {
		return fp, nil
	}
	entries, err := os.ReadDir(filepath.Join(l.base, dir))
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(l.base, dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(dir, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	fp := &fixturePkg{pkg: pkg, files: files, info: info}
	l.cache[dir] = fp
	return fp, nil
}

// runFixture runs one analyzer over a fixture package and returns the
// diagnostics it reported, alongside the loader (for positions).
func runFixture(t *testing.T, a *analysis.Analyzer, dir string) ([]analysis.Diagnostic, *fixtureLoader) {
	t.Helper()
	l := newFixtureLoader()
	fp, err := l.load(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       l.fset,
		Files:      fp.files,
		Pkg:        fp.pkg,
		TypesInfo:  fp.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf: map[*analysis.Analyzer]interface{}{
			inspect.Analyzer: inspector.New(fp.files),
		},
		Report: func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	checkWants(t, l, dir, diags)
	return diags, l
}

// wantKey identifies one expectation site.
type wantKey struct {
	file string
	line int
}

// checkWants matches reported diagnostics against the fixture's
// `// want` comments: every diagnostic must land on a line carrying a
// matching expectation (substring match), and every expectation must
// be consumed by exactly one diagnostic.
func checkWants(t *testing.T, l *fixtureLoader, dir string, diags []analysis.Diagnostic) {
	t.Helper()
	fp := l.cache[dir]
	type want struct {
		text string
		used bool
	}
	wants := map[wantKey][]*want{}
	for _, f := range fp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want `")
				if i < 0 {
					continue
				}
				rest := text[i+len("// want `"):]
				j := strings.Index(rest, "`")
				if j < 0 {
					t.Fatalf("%s: unterminated want expectation: %s", l.fset.Position(c.Pos()), text)
				}
				posn := l.fset.Position(c.Pos())
				k := wantKey{posn.Filename, posn.Line}
				wants[k] = append(wants[k], &want{text: rest[:j]})
			}
		}
	}
	for _, d := range diags {
		posn := l.fset.Position(d.Pos)
		k := wantKey{posn.Filename, posn.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.used && strings.Contains(d.Message, w.text) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", posn, d.Message)
		}
	}
	var missed []string
	for k, ws := range wants {
		for _, w := range ws {
			if !w.used {
				missed = append(missed, k.file+":"+itoa(k.line)+": "+w.text)
			}
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Errorf("expected diagnostic not reported: %s", m)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestLockOrderFixture(t *testing.T) {
	runFixture(t, LockOrder, "lockorderfix")
}

func TestAtomicFieldFixture(t *testing.T) {
	diags, l := runFixture(t, AtomicField, "atomicfix")

	// The plain read must carry a -fix-safe suggested rewrite to the
	// matching atomic load of the exact source expression.
	var fixed bool
	for _, d := range diags {
		if !strings.Contains(d.Message, "plain read of atomic field hits") {
			continue
		}
		if len(d.SuggestedFixes) != 1 || len(d.SuggestedFixes[0].TextEdits) != 1 {
			t.Fatalf("plain read diagnostic: want exactly one suggested fix with one edit, got %+v", d.SuggestedFixes)
		}
		ed := d.SuggestedFixes[0].TextEdits[0]
		if got, want := string(ed.NewText), "atomic.LoadInt64(&s.hits)"; got != want {
			t.Errorf("suggested fix text = %q, want %q", got, want)
		}
		// The edit must replace exactly the offending expression.
		start, end := l.fset.Position(ed.Pos), l.fset.Position(ed.End)
		src, err := os.ReadFile(start.Filename)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := string(src[start.Offset:end.Offset]), "s.hits"; got != want {
			t.Errorf("suggested fix replaces %q, want %q", got, want)
		}
		fixed = true
	}
	if !fixed {
		t.Error("plain read diagnostic with suggested fix not reported")
	}
}

func TestTypedFaultFixture(t *testing.T) {
	runFixture(t, TypedFault, "typedfaultfix")
}

func TestObsHotPathFixture(t *testing.T) {
	runFixture(t, ObsHotPath, "obsfix")
}

func TestGenBumpFixture(t *testing.T) {
	// The directory is storefix but the package is named store: the
	// analyzer gates on the package NAME, which is what production
	// internal/store presents.
	runFixture(t, GenBump, "storefix")
}
