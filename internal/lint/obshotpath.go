package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// ObsHotPath enforces the telemetry hot-path rule established in PR 6:
// obs registry entries are resolved by name once, at construction —
// Registry.Counter/Gauge/GaugeFunc/Histogram take the registry lock
// and probe a map, which per-operation code must never pay. Lookups
// are legal in constructors (New*/new*), in init, in test files, in
// package obs itself, and in functions annotated provlint:obs-setup;
// anywhere else the handle must be a field resolved at construction.
// (Registry.Tracer is exempt: it is a sync.Once-cached pointer, not a
// by-name map lookup.)
var ObsHotPath = &analysis.Analyzer{
	Name: "obshotpath",
	Doc: "check that by-name obs registry lookups (Counter/Gauge/GaugeFunc/Histogram) " +
		"happen only in constructors, init, or provlint:obs-setup functions",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runObsHotPath,
}

// obsLookupMethods are the by-name, lock-taking registry resolvers.
var obsLookupMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"GaugeFunc": true,
	"Histogram": true,
}

func runObsHotPath(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "obs" {
		return nil, nil // the registry's own implementation
	}
	d := collectDirectives(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || !obsLookupMethods[fn.Name()] || !isObsRegistryMethod(fn) {
			return true
		}
		posn := pass.Fset.Position(call.Pos())
		if strings.HasSuffix(posn.Filename, "_test.go") {
			return true
		}
		fd := enclosingFuncDecl(stack)
		if fd != nil {
			name := fd.Name.Name
			if strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") || name == "init" {
				return true
			}
			if d.obsSetup[funcObj(pass, fd)] {
				return true
			}
		}
		where := "package-level code"
		if fd != nil {
			where = fd.Name.Name
		}
		d.report(pass, analysis.Diagnostic{
			Pos: call.Pos(),
			Message: fmt.Sprintf(
				"obs registry lookup %s(%s) in %s: by-name resolution belongs in a constructor — "+
					"resolve the handle at construction, or annotate the function provlint:obs-setup",
				fn.Name(), lookupArg(call), where),
		})
		return true
	})
	return nil, nil
}

// isObsRegistryMethod reports whether fn is a method on obs.Registry
// (matched by type name and package name, so fixture stubs type-check
// the same way the real package does).
func isObsRegistryMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Registry" && named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "obs"
}

// lookupArg renders the first (name) argument for the diagnostic.
func lookupArg(call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	s := types.ExprString(call.Args[0])
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}
