// Package lint is provlint: a go/analysis suite that mechanically
// enforces the store's concurrency and wire-contract invariants. Nine
// PRs of hand-maintained rules — lock hierarchies, atomic-bits-only
// fields, typed faults that must survive the soap wire, hot-path
// telemetry discipline, and the generation-bump cache-coherence
// ordering — live here as machine-checked analyzers instead of
// comments that only -race might catch.
//
// The analyzers are driven by `provlint:` annotations in ordinary
// comments, which double as the durable, reviewable record of the
// concurrency design:
//
//	// provlint:lock-order <rank>
//	    On a mutex field or package-level mutex var. Locks must be
//	    acquired in strictly ascending rank order (package-scoped
//	    hierarchy); lockorder flags any function whose acquisition
//	    order inverts it.
//
//	// provlint:requires <lockname>
//	    On a function: callers in the same package must hold the
//	    named annotated lock at the call site (or themselves carry
//	    the same requires annotation).
//
//	// provlint:atomic-exempt <reason>
//	    On a function: atomicfield permits plain access to atomic
//	    fields inside it (single-threaded construction, sections
//	    already under a full exclusive lock).
//
//	// provlint:typed-faults
//	    On a function: typedfault requires every returned error to
//	    be a registered typed fault or wrap one with %w — never a
//	    bare errors.New or a fmt.Errorf without %w.
//
//	// provlint:obs-setup
//	    On a function: obshotpath permits by-name obs registry
//	    lookups (Counter/Gauge/GaugeFunc/Histogram) inside it, as it
//	    does in constructors (New*/new*/init) by default.
//
//	// provlint:no-genbump <reason>
//	    On a function in internal/store: genbump permits backend
//	    mutations without a generation bump in the same function
//	    (used when the bump provably lives in every caller).
//
//	// provlint:ignore <analyzer> <reason>
//	    On (or directly above) an offending line: suppresses that
//	    analyzer's findings for the line. Every use must carry a
//	    justification; there is no package- or file-wide silencing.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers returns the full provlint suite, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		LockOrder,
		AtomicField,
		TypedFault,
		ObsHotPath,
		GenBump,
	}
}

// directives is everything the provlint annotations in one package
// declare, resolved to type-checker objects.
type directives struct {
	// lockRank maps an annotated mutex field or package var to its
	// hierarchy rank (provlint:lock-order).
	lockRank map[types.Object]int
	// requires maps a function to the lock names its callers must hold
	// (provlint:requires).
	requires map[types.Object][]string
	// atomicExempt, typedFaults, obsSetup, and noGenbump mark annotated
	// functions for the corresponding analyzers.
	atomicExempt map[types.Object]bool
	typedFaults  map[types.Object]bool
	obsSetup     map[types.Object]bool
	noGenbump    map[types.Object]bool
	// ignores maps filename -> line -> analyzer names suppressed on
	// that line (provlint:ignore).
	ignores map[string]map[int][]string
}

const prefix = "provlint:"

// parseDirective splits one comment line into a provlint directive name
// and its argument string, reporting ok=false for ordinary comments.
func parseDirective(line string) (name, args string, ok bool) {
	text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "//"))
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	name, args, _ = strings.Cut(rest, " ")
	return name, strings.TrimSpace(args), true
}

// groupDirectives yields every directive in a comment group.
func groupDirectives(cg *ast.CommentGroup, fn func(name, args string)) {
	if cg == nil {
		return
	}
	for _, c := range cg.List {
		if name, args, ok := parseDirective(c.Text); ok {
			fn(name, args)
		}
	}
}

// collectDirectives scans every file in the pass for provlint
// annotations and resolves them against the type information.
func collectDirectives(pass *analysis.Pass) *directives {
	d := &directives{
		lockRank:     make(map[types.Object]int),
		requires:     make(map[types.Object][]string),
		atomicExempt: make(map[types.Object]bool),
		typedFaults:  make(map[types.Object]bool),
		obsSetup:     make(map[types.Object]bool),
		noGenbump:    make(map[types.Object]bool),
		ignores:      make(map[string]map[int][]string),
	}
	for _, f := range pass.Files {
		// Suppression lines: any comment anywhere in the file.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, args, ok := parseDirective(c.Text)
				if !ok || name != "ignore" {
					continue
				}
				analyzer, _, _ := strings.Cut(args, " ")
				if analyzer == "" {
					continue
				}
				posn := pass.Fset.Position(c.Pos())
				byLine := d.ignores[posn.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					d.ignores[posn.Filename] = byLine
				}
				byLine[posn.Line] = append(byLine[posn.Line], analyzer)
			}
		}

		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				obj := pass.TypesInfo.Defs[n.Name]
				if obj == nil {
					return true
				}
				groupDirectives(n.Doc, func(name, args string) {
					switch name {
					case "requires":
						if args != "" {
							d.requires[obj] = append(d.requires[obj], strings.Fields(args)...)
						}
					case "atomic-exempt":
						d.atomicExempt[obj] = true
					case "typed-faults":
						d.typedFaults[obj] = true
					case "obs-setup":
						d.obsSetup[obj] = true
					case "no-genbump":
						d.noGenbump[obj] = true
					}
				})
			case *ast.StructType:
				for _, field := range n.Fields.List {
					rank, ok := fieldRank(field)
					if !ok {
						continue
					}
					for _, name := range field.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							d.lockRank[obj] = rank
						}
					}
				}
			case *ast.GenDecl:
				if n.Tok != token.VAR {
					return true
				}
				declRank, declOK := groupRank(n.Doc)
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					rank, ok := groupRank(vs.Doc)
					if !ok {
						rank, ok = groupRank(vs.Comment)
					}
					if !ok {
						rank, ok = declRank, declOK
					}
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							d.lockRank[obj] = rank
						}
					}
				}
			}
			return true
		})
	}
	return d
}

// fieldRank extracts a provlint:lock-order rank from a struct field's
// doc or trailing comment.
func fieldRank(field *ast.Field) (int, bool) {
	if r, ok := groupRank(field.Doc); ok {
		return r, ok
	}
	return groupRank(field.Comment)
}

func groupRank(cg *ast.CommentGroup) (rank int, ok bool) {
	groupDirectives(cg, func(name, args string) {
		if name != "lock-order" {
			return
		}
		if n, err := strconv.Atoi(strings.Fields(args + " x")[0]); err == nil {
			rank, ok = n, true
		}
	})
	return rank, ok
}

// suppressed reports whether the given analyzer's finding at pos is
// covered by a provlint:ignore on the same line or the line above.
func (d *directives) suppressed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	posn := fset.Position(pos)
	byLine := d.ignores[posn.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{posn.Line, posn.Line - 1} {
		for _, a := range byLine[line] {
			if a == analyzer {
				return true
			}
		}
	}
	return false
}

// report emits a diagnostic unless a provlint:ignore suppresses it.
func (d *directives) report(pass *analysis.Pass, diag analysis.Diagnostic) {
	if d.suppressed(pass.Fset, pass.Analyzer.Name, diag.Pos) {
		return
	}
	pass.Report(diag)
}

// funcObj resolves the *types.Func a FuncDecl defines.
func funcObj(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	return pass.TypesInfo.Defs[fd.Name]
}

// lockBaseObj resolves the annotated object a lock expression refers
// to: for `r.mu.Lock()` the mu field, for `shipMu.Lock()` the package
// var, for `s.stripes[i].Lock()` the stripes field (index expressions
// strip to their base, so a striped lock array is one object).
func lockBaseObj(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		case *ast.SelectorExpr:
			return info.Uses[e.Sel]
		case *ast.Ident:
			return info.Uses[e]
		default:
			return nil
		}
	}
}
