package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// TypedFault enforces the wire error contract on functions annotated
// provlint:typed-faults — plug-in action handlers and shard.Router
// public methods, whose errors must survive the soap round trip as
// errors.Is-matchable values (shard.ErrStaleCursor → client.bad-request
// is the canonical example). Inside an annotated function, a returned
// error may be a registered sentinel, a typed fault value, or a
// fmt.Errorf that wraps one with %w — never a bare errors.New and
// never a fmt.Errorf without %w, both of which strand the caller with
// string matching.
var TypedFault = &analysis.Analyzer{
	Name: "typedfault",
	Doc: "check that provlint:typed-faults functions only return registered typed faults " +
		"or errors wrapping one with %w",
	Run: runTypedFault,
}

func runTypedFault(pass *analysis.Pass) (interface{}, error) {
	d := collectDirectives(pass)
	if len(d.typedFaults) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !d.typedFaults[funcObj(pass, fd)] {
				continue
			}
			checkTypedFaultFunc(pass, d, fd)
		}
	}
	return nil, nil
}

func checkTypedFaultFunc(pass *analysis.Pass, d *directives, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure's returns are not the function's
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			checkFaultExpr(pass, d, res)
		}
		return true
	})
}

// checkFaultExpr flags error expressions that mint a fresh untyped
// error at the return site.
func checkFaultExpr(pass *analysis.Pass, d *directives, expr ast.Expr) {
	t := pass.TypesInfo.TypeOf(expr)
	if t == nil || !isErrorType(t) {
		return
	}
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return
	}
	fn := typeutil.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch {
	case fn.Pkg().Path() == "errors" && fn.Name() == "New":
		d.report(pass, analysis.Diagnostic{
			Pos: expr.Pos(),
			Message: "untyped fault: errors.New at the return site cannot be matched with errors.Is across the wire; " +
				"return a registered sentinel or wrap one with %w",
		})
	case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
		if len(call.Args) == 0 || !formatWraps(pass, call.Args[0]) {
			d.report(pass, analysis.Diagnostic{
				Pos: expr.Pos(),
				Message: "untyped fault: fmt.Errorf without %w breaks errors.Is matching across the wire; " +
					"wrap a registered sentinel with %w",
			})
		}
	}
}

// formatWraps reports whether a fmt.Errorf format argument is a
// constant string containing %w.
func formatWraps(pass *analysis.Pass, arg ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		// Non-constant format: assume the caller knows what it is doing.
		return true
	}
	return strings.Contains(constant.StringVal(tv.Value), "%w")
}

// errorType is the universe error interface. Concrete error
// implementations (e.g. *soap.Fault) are typed by definition; only
// the two untyped constructors below can hide an unmatchable error.
var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(types.Unalias(t), errorType)
}
