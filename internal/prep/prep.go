// Package prep defines PReP, the Provenance Recording Protocol: the
// messages actors exchange with a provenance store to record p-assertions
// (asynchronously or synchronously) and to query them back. PReP
// deliberately specifies *how* documentation is recorded while leaving
// *when* to the implementor — the client package exploits this to offer
// both synchronous and accumulate-then-ship asynchronous recording.
package prep

import (
	"encoding/xml"
	"fmt"
	"time"

	"preserv/internal/core"
	"preserv/internal/ids"
)

// Action URIs understood by a provenance store.
const (
	// ActionRecord submits a batch of p-assertions.
	ActionRecord = "urn:prep:record"
	// ActionQuery retrieves p-assertions matching a filter by scanning
	// the store (the paper's access pattern, kept for Figure 5).
	ActionQuery = "urn:prep:query"
	// ActionPlannedQuery retrieves p-assertions matching a filter via
	// the secondary-index query planner (internal/query), reporting the
	// plan it chose alongside the results.
	ActionPlannedQuery = "urn:prep:query-planned"
	// ActionQueryPage retrieves one cursor-delimited page of a planned
	// query's results, so clients stream large result sets instead of
	// the store buffering them whole per request.
	ActionQueryPage = "urn:prep:query-page"
	// ActionSessions enumerates the distinct session identifiers
	// recorded in the store, straight off the session index.
	ActionSessions = "urn:prep:sessions"
	// ActionCount reports store statistics.
	ActionCount = "urn:prep:count"
	// ActionDelete retracts recorded p-assertions: one record by storage
	// key, or a whole session. Deletion removes the records and their
	// index postings and invalidates cached query results; the on-disk
	// bytes are reclaimed by compaction.
	ActionDelete = "urn:prep:delete"
	// ActionCompact triggers online compaction of the store's backend,
	// reclaiming the dead bytes deletions and overwrites leave behind.
	// The server also schedules compaction itself when the backend's
	// garbage ratio crosses its threshold after a delete.
	ActionCompact = "urn:prep:compact"
	// ActionStats returns the store's telemetry: service counters,
	// per-shard engine statistics, garbage/tombstone state, latency
	// histogram snapshots and recent slow operations. This is what lets
	// a router aggregate real numbers from remote shards instead of
	// zeros, and what `provq stats` renders.
	ActionStats = "urn:prep:stats"
)

// RecordRequest submits p-assertions to the store. All records must be
// asserted by the named actor; the store validates this, preventing one
// actor from forging another's documentation.
type RecordRequest struct {
	XMLName  xml.Name      `xml:"RecordRequest"`
	Asserter core.ActorID  `xml:"asserter"`
	Records  []core.Record `xml:"record"`
}

// Reject describes one record the store refused.
type Reject struct {
	// Index is the record's position in the request.
	Index  int    `xml:"index"`
	Reason string `xml:"reason"`
}

// RecordResponse acknowledges a RecordRequest.
type RecordResponse struct {
	XMLName  xml.Name `xml:"RecordResponse"`
	Accepted int      `xml:"accepted"`
	Rejects  []Reject `xml:"reject,omitempty"`
}

// Query is a conjunctive filter over stored p-assertions. Zero-valued
// fields do not constrain the result.
type Query struct {
	XMLName xml.Name `xml:"Query"`
	// InteractionID restricts to one interaction.
	InteractionID ids.ID `xml:"interactionId,omitempty"`
	// SessionID restricts to records grouped under the session.
	SessionID ids.ID `xml:"sessionId,omitempty"`
	// GroupID restricts to records in the given group of any type.
	GroupID ids.ID `xml:"groupId,omitempty"`
	// Kind restricts to "interaction" or "actorState" records.
	Kind string `xml:"kind,omitempty"`
	// Asserter restricts to one asserting actor.
	Asserter core.ActorID `xml:"asserter,omitempty"`
	// Service restricts to interactions whose receiver is this actor.
	Service core.ActorID `xml:"service,omitempty"`
	// StateKind restricts actor-state records to one state kind.
	StateKind string `xml:"stateKind,omitempty"`
	// DataID restricts to interaction records whose request or response
	// parts carry the given data item.
	DataID ids.ID `xml:"dataId,omitempty"`
	// Since and Until restrict to records asserted within the inclusive
	// time range; a zero bound is unconstrained. Records without a
	// timestamp never match a time-constrained query (they are absent
	// from the time index, and the scan path agrees).
	Since time.Time `xml:"since,omitempty"`
	Until time.Time `xml:"until,omitempty"`
	// Limit caps the number of returned records; 0 means no cap.
	Limit int `xml:"limit,omitempty"`
}

// Validate rejects structurally impossible queries.
func (q *Query) Validate() error {
	switch q.Kind {
	case "", core.KindInteraction.String(), core.KindActorState.String():
	default:
		return fmt.Errorf("prep: unknown kind filter %q", q.Kind)
	}
	if q.Limit < 0 {
		return fmt.Errorf("prep: negative limit %d", q.Limit)
	}
	if q.StateKind != "" && q.Kind == core.KindInteraction.String() {
		return fmt.Errorf("prep: stateKind filter contradicts kind=interaction")
	}
	if q.DataID.Valid() && q.Kind == core.KindActorState.String() {
		return fmt.Errorf("prep: dataId filter contradicts kind=actorState")
	}
	if !q.Since.IsZero() && !q.Until.IsZero() && q.Until.Before(q.Since) {
		return fmt.Errorf("prep: empty time range (until %v before since %v)", q.Until, q.Since)
	}
	return nil
}

// Matches reports whether a record satisfies every constraint of q
// (ignoring Limit, which the store applies).
func (q *Query) Matches(r *core.Record) bool {
	if q.InteractionID.Valid() && r.InteractionID() != q.InteractionID {
		return false
	}
	if q.SessionID.Valid() {
		sid, ok := r.GroupID(core.GroupSession)
		if !ok || sid != q.SessionID {
			return false
		}
	}
	if q.GroupID.Valid() {
		found := false
		for _, g := range r.Groups() {
			if g.ID == q.GroupID {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if q.Kind != "" && r.Kind.String() != q.Kind {
		return false
	}
	if q.Asserter != "" && r.Asserter() != q.Asserter {
		return false
	}
	if q.Service != "" {
		var recv core.ActorID
		switch r.Kind {
		case core.KindInteraction:
			recv = r.Interaction.Interaction.Receiver
		case core.KindActorState:
			recv = r.ActorState.Interaction.Receiver
		}
		if recv != q.Service {
			return false
		}
	}
	if q.StateKind != "" {
		if r.Kind != core.KindActorState || r.ActorState.StateKind != q.StateKind {
			return false
		}
	}
	if q.DataID.Valid() {
		found := false
		for _, d := range r.DataIDs() {
			if d == q.DataID {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if !q.Since.IsZero() || !q.Until.IsZero() {
		ts := r.Timestamp()
		if ts.IsZero() {
			return false
		}
		if !q.Since.IsZero() && ts.Before(q.Since) {
			return false
		}
		if !q.Until.IsZero() && ts.After(q.Until) {
			return false
		}
	}
	return true
}

// QueryResponse returns matching records. Total reports the number of
// matches before Limit was applied.
type QueryResponse struct {
	XMLName xml.Name      `xml:"QueryResponse"`
	Total   int           `xml:"total"`
	Records []core.Record `xml:"record,omitempty"`
}

// Plan strategies reported by the query planner.
const (
	// PlanIndex means the planner answered from secondary-index posting
	// lists, fetching only candidate records.
	PlanIndex = "index"
	// PlanScan means the planner fell back to the linear scan path
	// because no indexed field was constrained (or no index exists).
	PlanScan = "scan"
)

// QueryPlan describes how the planner answered a planned query; it is
// returned to the caller so access patterns are observable end-to-end.
type QueryPlan struct {
	// Strategy is PlanIndex or PlanScan.
	Strategy string `xml:"strategy"`
	// Dims names the index dimensions used, in the order the planner
	// chose them — most selective (the driving posting list) first
	// (empty for scans).
	Dims []string `xml:"dim,omitempty"`
	// DimCounts aligns with Dims: the CountPostings cardinality
	// estimate that made the planner pick this order — the cost model's
	// inputs, surfaced so estimated-vs-actual drift is observable.
	DimCounts []int `xml:"dimCount,omitempty"`
	// EstCandidates is the planner's candidate estimate before
	// execution: the driving posting list's cardinality. Compare with
	// Candidates, the records actually fetched after intersection.
	EstCandidates int `xml:"estCandidates"`
	// Postings is the number of index posting entries actually read.
	// With seekable iterators this can be far below the lists' summed
	// cardinality: a leapfrog intersection skips over runs it proves
	// irrelevant without reading them.
	Postings int `xml:"postings"`
	// Candidates is the number of records fetched; for an index
	// strategy this is the planner's whole record-level cost.
	Candidates int `xml:"candidates"`
	// Cached reports that the result came from the engine's result
	// cache without touching the store (Postings and Candidates then
	// describe the original computation).
	Cached bool `xml:"cached"`
}

// PlannedQueryResponse returns matching records plus the plan used.
type PlannedQueryResponse struct {
	XMLName xml.Name      `xml:"PlannedQueryResponse"`
	Total   int           `xml:"total"`
	Plan    QueryPlan     `xml:"plan"`
	Records []core.Record `xml:"record,omitempty"`
}

// PageQueryRequest asks for one page of a query's results. After is the
// cursor returned by the previous page (empty for the first page);
// PageSize caps the page's record count (zero selects the store's
// default). The query's Limit field is ignored — paging owns
// truncation — and no total match count is reported: a page is computed
// with early termination, without visiting the candidates beyond it.
type PageQueryRequest struct {
	XMLName  xml.Name `xml:"PageQueryRequest"`
	Query    Query    `xml:"Query"`
	After    string   `xml:"after,omitempty"`
	PageSize int      `xml:"pageSize,omitempty"`
}

// PageQueryResponse returns one page of matching records in stable
// storage-key order. Next is the cursor to pass as the following
// request's After; Done reports that the result set is exhausted (a
// final page may be both non-empty and Done=false when the store cannot
// cheaply prove exhaustion — the following page then comes back empty
// with Done=true).
type PageQueryResponse struct {
	XMLName xml.Name      `xml:"PageQueryResponse"`
	Plan    QueryPlan     `xml:"plan"`
	Next    string        `xml:"next,omitempty"`
	Done    bool          `xml:"done"`
	Records []core.Record `xml:"record,omitempty"`
}

// DeleteRequest retracts recorded p-assertions: exactly one of
// StorageKey (one record), StorageKeys (a batch of records in one
// round trip — what a router draining a remote shard sends per moved
// page) or SessionID (every record grouped under the session) must be
// set.
type DeleteRequest struct {
	XMLName     xml.Name `xml:"DeleteRequest"`
	StorageKey  string   `xml:"storageKey,omitempty"`
	StorageKeys []string `xml:"storageKeys>key,omitempty"`
	SessionID   ids.ID   `xml:"sessionId,omitempty"`
}

// Validate rejects structurally impossible delete requests.
func (r *DeleteRequest) Validate() error {
	set := 0
	if r.StorageKey != "" {
		set++
	}
	if len(r.StorageKeys) > 0 {
		set++
	}
	if r.SessionID.Valid() {
		set++
	}
	if set != 1 {
		return fmt.Errorf("prep: delete needs exactly one of storageKey, storageKeys or sessionId")
	}
	for _, k := range r.StorageKeys {
		if k == "" {
			return fmt.Errorf("prep: delete batch contains an empty storage key")
		}
	}
	return nil
}

// DeleteResponse acknowledges a DeleteRequest. Deleted counts the
// records actually removed (0 for an already-absent key — retraction is
// idempotent). GarbageRatio is the backend's dead-byte fraction after
// the deletion, and Compacted reports that the deletion pushed the
// ratio over the server's threshold and an online compaction ran.
// CompactError carries a scheduled compaction's failure without
// masking the delete itself, which already succeeded.
type DeleteResponse struct {
	XMLName      xml.Name `xml:"DeleteResponse"`
	Deleted      int      `xml:"deleted"`
	GarbageRatio float64  `xml:"garbageRatio"`
	Compacted    bool     `xml:"compacted"`
	CompactError string   `xml:"compactError,omitempty"`
}

// CompactRequest asks the server to compact its backend now.
type CompactRequest struct {
	XMLName xml.Name `xml:"CompactRequest"`
}

// CompactResponse reports a compaction's effect: the backend's
// dead-byte fraction before and after.
type CompactResponse struct {
	XMLName       xml.Name `xml:"CompactResponse"`
	GarbageBefore float64  `xml:"garbageBefore"`
	GarbageAfter  float64  `xml:"garbageAfter"`
}

// SessionsRequest asks for the distinct recorded session identifiers.
type SessionsRequest struct {
	XMLName xml.Name `xml:"SessionsRequest"`
}

// SessionsResponse lists distinct session identifiers, sorted.
type SessionsResponse struct {
	XMLName  xml.Name `xml:"SessionsResponse"`
	Sessions []ids.ID `xml:"session,omitempty"`
}

// CountRequest asks for store statistics.
type CountRequest struct {
	XMLName xml.Name `xml:"CountRequest"`
}

// CountResponse reports store statistics. Interactions counts distinct
// interaction records — the x-axis of the paper's Figure 5.
type CountResponse struct {
	XMLName      xml.Name `xml:"CountResponse"`
	Records      int      `xml:"records"`
	Interactions int      `xml:"interactions"`
	ActorStates  int      `xml:"actorStates"`
}

// StatsRequest asks for the store's full telemetry snapshot.
type StatsRequest struct {
	XMLName xml.Name `xml:"StatsRequest"`
}

// EngineCounters is the wire form of a query engine's cumulative
// planner and cache telemetry (shard.EngineStats). For a sharded
// store these are sums over the shards.
type EngineCounters struct {
	CacheHits         int64 `xml:"cacheHits"`
	CacheMisses       int64 `xml:"cacheMisses"`
	IndexPlans        int64 `xml:"indexPlans"`
	ScanPlans         int64 `xml:"scanPlans"`
	PagedQueries      int64 `xml:"pagedQueries"`
	CostProbes        int64 `xml:"costProbes"`
	PostingsRead      int64 `xml:"postingsRead"`
	CandidatesFetched int64 `xml:"candidatesFetched"`
}

// ReadCacheCounters is the wire form of the storage read path's cache
// telemetry: bloom-filter outcomes (skips answered without touching
// the backend, false positives, confirmed hits), the record block
// cache's lookup outcomes and residency, and the router-level result
// cache's lookup outcomes. For a sharded store the bloom and block
// cache fields are sums over the shards; the result cache fields
// belong to the router itself.
type ReadCacheCounters struct {
	BloomSkips          int64 `xml:"bloomSkips"`
	BloomFalsePositives int64 `xml:"bloomFalsePositives"`
	BloomHits           int64 `xml:"bloomHits"`
	BlockCacheHits      int64 `xml:"blockCacheHits"`
	BlockCacheMisses    int64 `xml:"blockCacheMisses"`
	BlockCacheBytes     int64 `xml:"blockCacheBytes"`
	BlockCacheEntries   int64 `xml:"blockCacheEntries"`
	ResultCacheHits     int64 `xml:"resultCacheHits"`
	ResultCacheMisses   int64 `xml:"resultCacheMisses"`
}

// Add accumulates o into c (aggregating shard breakdowns).
func (c *ReadCacheCounters) Add(o ReadCacheCounters) {
	c.BloomSkips += o.BloomSkips
	c.BloomFalsePositives += o.BloomFalsePositives
	c.BloomHits += o.BloomHits
	c.BlockCacheHits += o.BlockCacheHits
	c.BlockCacheMisses += o.BlockCacheMisses
	c.BlockCacheBytes += o.BlockCacheBytes
	c.BlockCacheEntries += o.BlockCacheEntries
	c.ResultCacheHits += o.ResultCacheHits
	c.ResultCacheMisses += o.ResultCacheMisses
}

// WritePathCounters is the wire form of the storage write path's health
// telemetry: how many backend compactions are running right now, and
// the per-record commit-stall distribution summarised. For a sharded
// store the counts and seconds are sums over the shards and StallP99 is
// the worst shard's p99.
type WritePathCounters struct {
	CompactionsInProgress int64   `xml:"compactionsInProgress"`
	StallCount            int64   `xml:"stallCount"`
	StallSeconds          float64 `xml:"stallSeconds"`
	StallP99              float64 `xml:"stallP99"`
}

// Add accumulates o into c (aggregating shard breakdowns).
func (c *WritePathCounters) Add(o WritePathCounters) {
	c.CompactionsInProgress += o.CompactionsInProgress
	c.StallCount += o.StallCount
	c.StallSeconds += o.StallSeconds
	if o.StallP99 > c.StallP99 {
		c.StallP99 = o.StallP99
	}
}

// HistogramStat is one latency or size distribution, summarised: total
// observations, their sum (seconds for *_seconds histograms, raw units
// otherwise) and interpolated percentiles.
type HistogramStat struct {
	Name  string  `xml:"name"`
	Count int64   `xml:"count"`
	Sum   float64 `xml:"sum"`
	P50   float64 `xml:"p50"`
	P95   float64 `xml:"p95"`
	P99   float64 `xml:"p99"`
}

// SpanAttr is one attribute of a recorded span.
type SpanAttr struct {
	Key   string `xml:"key"`
	Value string `xml:"value"`
}

// SlowSpan is one slow operation from the tracer's slow log — for a
// slow query the attributes carry the executed plan (strategy, dim
// cardinalities, estimated versus actual candidates).
type SlowSpan struct {
	Op      string     `xml:"op"`
	Start   time.Time  `xml:"start"`
	Seconds float64    `xml:"seconds"`
	Err     string     `xml:"err,omitempty"`
	Attrs   []SpanAttr `xml:"attr,omitempty"`
}

// ShardStats is one shard's telemetry: record count, garbage state,
// engine counters, histogram summaries and recent slow operations.
// URL is set for remote shards, empty for local ones.
type ShardStats struct {
	Index        int               `xml:"index"`
	URL          string            `xml:"url,omitempty"`
	Records      int               `xml:"records"`
	GarbageRatio float64           `xml:"garbageRatio"`
	Tombstones   int64             `xml:"tombstones"`
	Engine       EngineCounters    `xml:"engine"`
	ReadCache    ReadCacheCounters `xml:"readCache"`
	WritePath    WritePathCounters `xml:"writePath"`
	Histograms   []HistogramStat   `xml:"histogram,omitempty"`
	Slow         []SlowSpan        `xml:"slow,omitempty"`
}

// StatsResponse is the urn:prep:stats reply: the service's request
// counters, whole-store aggregates (sums/weighted averages over the
// shards, directly consumable by a parent router treating this store
// as one shard), and the per-shard breakdown.
type StatsResponse struct {
	XMLName xml.Name `xml:"StatsResponse"`

	// Service-level request accounting (one consistent snapshot).
	RecordRequests  int64 `xml:"recordRequests"`
	RecordsAccepted int64 `xml:"recordsAccepted"`
	QueryRequests   int64 `xml:"queryRequests"`
	DeleteRequests  int64 `xml:"deleteRequests"`
	RecordsDeleted  int64 `xml:"recordsDeleted"`
	Compactions     int64 `xml:"compactions"`

	// Whole-store aggregates. Generation is the store's content
	// generation — it changes whenever any shard accepts or deletes a
	// record, so equal generations imply equal query answers; a parent
	// router probes it (cheaply, via its TTL-cached stats snapshot) to
	// key its generation-tuple result cache. GenerationValid is false
	// when some shard behind this service cannot report one.
	Records         int               `xml:"records"`
	NumShards       int               `xml:"numShards"`
	Generation      uint64            `xml:"generation"`
	GenerationValid bool              `xml:"generationValid"`
	// DrainEpoch is the router's drain epoch: it advances whenever a
	// drain starts, moves a page, or finishes, and composite paging
	// cursors minted under an older epoch are rejected as stale (the
	// drain-safe paging contract). Zero for a service fronting a single
	// store, which never rebalances. OverlapSuspected reports that a
	// failed drain may have left records twinned across shards — the
	// state in which Limit-ed Totals are computed by key union, and the
	// operator's cue to re-drain.
	DrainEpoch       uint64 `xml:"drainEpoch"`
	OverlapSuspected bool   `xml:"overlapSuspected"`
	GarbageRatio    float64           `xml:"garbageRatio"`
	Tombstones      int64             `xml:"tombstones"`
	Engine          EngineCounters    `xml:"engine"`
	ReadCache       ReadCacheCounters `xml:"readCache"`
	WritePath       WritePathCounters `xml:"writePath"`

	// Per-shard breakdown plus the service's own request histograms.
	Shards     []ShardStats    `xml:"shard,omitempty"`
	Histograms []HistogramStat `xml:"histogram,omitempty"`
	Slow       []SlowSpan      `xml:"slow,omitempty"`
}
