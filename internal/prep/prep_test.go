package prep

import (
	"encoding/xml"
	"testing"
	"time"

	"preserv/internal/core"
	"preserv/internal/ids"
)

var seq = &ids.SeqSource{Prefix: 0xBB}

func interactionRecord(session ids.ID, receiver core.ActorID) *core.Record {
	in := core.Interaction{
		ID:        seq.NewID(),
		Sender:    "svc:enactor",
		Receiver:  receiver,
		Operation: "run",
	}
	return core.NewInteractionRecord(&core.InteractionPAssertion{
		LocalID:     "l1",
		Asserter:    in.Sender,
		Interaction: in,
		View:        core.SenderView,
		Request:     core.Message{Name: "invoke"},
		Response:    core.Message{Name: "result"},
		Groups:      []core.GroupRef{{Type: core.GroupSession, ID: session, Seq: 1}},
		Timestamp:   time.Now(),
	})
}

func actorStateRecord(session ids.ID, receiver core.ActorID, kind string) *core.Record {
	in := core.Interaction{
		ID:        seq.NewID(),
		Sender:    "svc:enactor",
		Receiver:  receiver,
		Operation: "run",
	}
	return core.NewActorStateRecord(&core.ActorStatePAssertion{
		LocalID:     "s1",
		Asserter:    in.Receiver,
		Interaction: in,
		View:        core.ReceiverView,
		StateKind:   kind,
		Content:     core.Bytes("#!/bin/sh\n"),
		Groups:      []core.GroupRef{{Type: core.GroupSession, ID: session, Seq: 2}},
		Timestamp:   time.Now(),
	})
}

func TestQueryValidate(t *testing.T) {
	good := []Query{
		{},
		{Kind: "interaction"},
		{Kind: "actorState", StateKind: core.StateScript},
		{Limit: 10},
	}
	for i, q := range good {
		if err := q.Validate(); err != nil {
			t.Errorf("good query %d rejected: %v", i, err)
		}
	}
	bad := []Query{
		{Kind: "weird"},
		{Limit: -1},
		{Kind: "interaction", StateKind: "script"},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

func TestMatchesInteractionID(t *testing.T) {
	session := seq.NewID()
	r := interactionRecord(session, "svc:gzip")
	q := Query{InteractionID: r.InteractionID()}
	if !q.Matches(r) {
		t.Error("record should match its own interaction id")
	}
	q.InteractionID = seq.NewID()
	if q.Matches(r) {
		t.Error("record should not match a different interaction id")
	}
}

func TestMatchesSession(t *testing.T) {
	s1, s2 := seq.NewID(), seq.NewID()
	r := interactionRecord(s1, "svc:gzip")
	if !(&Query{SessionID: s1}).Matches(r) {
		t.Error("session match failed")
	}
	if (&Query{SessionID: s2}).Matches(r) {
		t.Error("wrong session matched")
	}
}

func TestMatchesGroupID(t *testing.T) {
	s := seq.NewID()
	r := interactionRecord(s, "svc:gzip")
	if !(&Query{GroupID: s}).Matches(r) {
		t.Error("group id match failed")
	}
	if (&Query{GroupID: seq.NewID()}).Matches(r) {
		t.Error("wrong group matched")
	}
}

func TestMatchesKind(t *testing.T) {
	s := seq.NewID()
	ri := interactionRecord(s, "svc:gzip")
	rs := actorStateRecord(s, "svc:gzip", core.StateScript)
	qi := &Query{Kind: "interaction"}
	qs := &Query{Kind: "actorState"}
	if !qi.Matches(ri) || qi.Matches(rs) {
		t.Error("interaction kind filter wrong")
	}
	if !qs.Matches(rs) || qs.Matches(ri) {
		t.Error("actorState kind filter wrong")
	}
}

func TestMatchesAsserterAndService(t *testing.T) {
	s := seq.NewID()
	r := interactionRecord(s, "svc:ppmz")
	if !(&Query{Asserter: "svc:enactor"}).Matches(r) {
		t.Error("asserter filter failed")
	}
	if (&Query{Asserter: "svc:ppmz"}).Matches(r) {
		t.Error("asserter filter matched receiver")
	}
	if !(&Query{Service: "svc:ppmz"}).Matches(r) {
		t.Error("service filter failed")
	}
	if (&Query{Service: "svc:gzip"}).Matches(r) {
		t.Error("service filter matched wrong service")
	}
	rs := actorStateRecord(s, "svc:ppmz", core.StateScript)
	if !(&Query{Service: "svc:ppmz"}).Matches(rs) {
		t.Error("service filter must apply to actor state records too")
	}
}

func TestMatchesStateKind(t *testing.T) {
	s := seq.NewID()
	script := actorStateRecord(s, "svc:gzip", core.StateScript)
	usage := actorStateRecord(s, "svc:gzip", core.StateResource)
	inter := interactionRecord(s, "svc:gzip")
	q := &Query{StateKind: core.StateScript}
	if !q.Matches(script) {
		t.Error("script state should match")
	}
	if q.Matches(usage) {
		t.Error("resource state should not match script filter")
	}
	if q.Matches(inter) {
		t.Error("interaction record should not match stateKind filter")
	}
}

func TestMatchesConjunction(t *testing.T) {
	s := seq.NewID()
	r := actorStateRecord(s, "svc:gzip", core.StateScript)
	q := &Query{
		SessionID: s,
		Kind:      "actorState",
		StateKind: core.StateScript,
		Service:   "svc:gzip",
	}
	if !q.Matches(r) {
		t.Error("conjunctive query should match")
	}
	q.Service = "svc:ppmz"
	if q.Matches(r) {
		t.Error("one failing conjunct must reject")
	}
}

func TestEmptyQueryMatchesEverything(t *testing.T) {
	s := seq.NewID()
	q := &Query{}
	if !q.Matches(interactionRecord(s, "svc:a")) || !q.Matches(actorStateRecord(s, "svc:b", "x")) {
		t.Error("empty query must match all records")
	}
}

func TestRecordRequestXMLRoundTrip(t *testing.T) {
	s := seq.NewID()
	req := &RecordRequest{
		Asserter: "svc:enactor",
		Records: []core.Record{
			*interactionRecord(s, "svc:gzip"),
			*actorStateRecord(s, "svc:gzip", core.StateScript),
		},
	}
	// Fix asserter consistency for the second record (receiver view).
	req.Records[1].ActorState.Asserter = "svc:gzip"
	data, err := xml.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back RecordRequest
	if err := xml.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Asserter != req.Asserter || len(back.Records) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	for i := range back.Records {
		if back.Records[i].StorageKey() != req.Records[i].StorageKey() {
			t.Errorf("record %d key changed: %s vs %s", i,
				back.Records[i].StorageKey(), req.Records[i].StorageKey())
		}
	}
}

func TestQueryXMLRoundTrip(t *testing.T) {
	q := &Query{
		InteractionID: seq.NewID(),
		SessionID:     seq.NewID(),
		Kind:          "actorState",
		StateKind:     "script",
		Limit:         25,
	}
	data, err := xml.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	var back Query
	if err := xml.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.InteractionID != q.InteractionID || back.SessionID != q.SessionID ||
		back.Kind != q.Kind || back.StateKind != q.StateKind || back.Limit != q.Limit {
		t.Errorf("query round trip mismatch: %+v vs %+v", back, q)
	}
}

func TestResponsesXMLRoundTrip(t *testing.T) {
	rr := &RecordResponse{Accepted: 3, Rejects: []Reject{{Index: 1, Reason: "bad"}}}
	data, err := xml.Marshal(rr)
	if err != nil {
		t.Fatal(err)
	}
	var backRR RecordResponse
	if err := xml.Unmarshal(data, &backRR); err != nil {
		t.Fatal(err)
	}
	if backRR.Accepted != 3 || len(backRR.Rejects) != 1 || backRR.Rejects[0].Index != 1 {
		t.Errorf("RecordResponse round trip: %+v", backRR)
	}

	cr := &CountResponse{Records: 10, Interactions: 6, ActorStates: 4}
	data, err = xml.Marshal(cr)
	if err != nil {
		t.Fatal(err)
	}
	var backCR CountResponse
	if err := xml.Unmarshal(data, &backCR); err != nil {
		t.Fatal(err)
	}
	if backCR.Records != cr.Records || backCR.Interactions != cr.Interactions ||
		backCR.ActorStates != cr.ActorStates {
		t.Errorf("CountResponse round trip: %+v", backCR)
	}
}
