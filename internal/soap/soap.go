// Package soap implements the minimal XML message envelope the
// provenance architecture uses on the wire. It stands in for the SOAP
// binding of the paper's PReServ ("a SOAP message is sent to PReServ to
// either record or query provenance"): an Envelope with an action header
// and an XML body, POSTed over HTTP, with faults for error returns.
package soap

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"

	"preserv/internal/ids"
)

// ContentType is the media type of envelope messages.
const ContentType = "text/xml; charset=utf-8"

// MaxMessageBytes bounds accepted message sizes (32 MiB), protecting the
// store from unbounded payloads.
const MaxMessageBytes = 32 << 20

// Envelope is the wire wrapper for every message.
type Envelope struct {
	XMLName xml.Name `xml:"Envelope"`
	Header  Header   `xml:"Header"`
	Body    Body     `xml:"Body"`
}

// Header carries routing metadata.
type Header struct {
	// Action selects the operation, e.g. prep.ActionRecord.
	Action string `xml:"action"`
	// MessageID uniquely identifies this message.
	MessageID ids.ID `xml:"messageId"`
}

// Body holds the payload document verbatim.
type Body struct {
	Inner []byte `xml:",innerxml"`
}

// Fault is the error payload.
type Fault struct {
	XMLName xml.Name `xml:"Fault"`
	Code    string   `xml:"code"`
	Message string   `xml:"message"`
}

// Error implements the error interface so faults propagate naturally.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap: fault %s: %s", f.Code, f.Message)
}

// Fault codes.
const (
	FaultBadRequest = "client.bad-request"
	FaultBadAction  = "client.unknown-action"
	FaultInternal   = "server.internal"
)

// ErrNotEnvelope is returned when input does not parse as an Envelope.
var ErrNotEnvelope = errors.New("soap: not an envelope")

// Marshal wraps an XML-marshallable payload in an envelope.
func Marshal(action string, payload interface{}) ([]byte, error) {
	inner, err := xml.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("soap: marshalling %s payload: %w", action, err)
	}
	env := Envelope{
		Header: Header{Action: action, MessageID: ids.New()},
		Body:   Body{Inner: inner},
	}
	data, err := xml.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("soap: marshalling envelope: %w", err)
	}
	return data, nil
}

// Unmarshal parses an envelope, returning its action and raw body.
func Unmarshal(data []byte) (action string, body []byte, err error) {
	var env Envelope
	if err := xml.Unmarshal(data, &env); err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrNotEnvelope, err)
	}
	if env.Header.Action == "" {
		return "", nil, fmt.Errorf("%w: missing action header", ErrNotEnvelope)
	}
	return env.Header.Action, env.Body.Inner, nil
}

// DecodeBody parses an envelope body into v. If the body is a Fault it
// is returned as the error instead.
func DecodeBody(body []byte, v interface{}) error {
	if f, ok := AsFault(body); ok {
		return f
	}
	if err := xml.Unmarshal(body, v); err != nil {
		return fmt.Errorf("soap: decoding body: %w", err)
	}
	return nil
}

// AsFault reports whether the body is a Fault, returning it if so.
func AsFault(body []byte) (*Fault, bool) {
	trimmed := bytes.TrimSpace(body)
	if !bytes.HasPrefix(trimmed, []byte("<Fault")) {
		return nil, false
	}
	var f Fault
	if err := xml.Unmarshal(trimmed, &f); err != nil {
		return nil, false
	}
	return &f, true
}

// Handler processes one decoded message and returns the reply payload
// (to be XML-marshalled) or an error. Returning a *Fault preserves its
// code; other errors become FaultInternal.
type Handler interface {
	// Actions lists the action URIs this handler accepts.
	Actions() []string
	// Handle processes the raw body of a message with a matching action.
	Handle(action string, body []byte) (reply interface{}, err error)
}

// HTTPHandler adapts a set of Handlers to net/http — this is the
// message-translator layer of the PReServ design (Figure 3): it strips
// the HTTP and envelope headers and passes the body to the plug-in
// registered for the action.
type HTTPHandler struct {
	byAction map[string]Handler
}

// NewHTTPHandler builds the translator from the given plug-ins.
// Registering two handlers for one action panics: that is a static
// wiring error.
func NewHTTPHandler(handlers ...Handler) *HTTPHandler {
	h := &HTTPHandler{byAction: make(map[string]Handler)}
	for _, handler := range handlers {
		for _, action := range handler.Actions() {
			if _, dup := h.byAction[action]; dup {
				panic("soap: duplicate handler for action " + action)
			}
			h.byAction[action] = handler
		}
	}
	return h
}

// ServeHTTP implements http.Handler.
func (h *HTTPHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "envelope messages must be POSTed", http.StatusMethodNotAllowed)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, MaxMessageBytes+1))
	if err != nil {
		h.writeFault(w, FaultBadRequest, "reading request: "+err.Error())
		return
	}
	if len(data) > MaxMessageBytes {
		h.writeFault(w, FaultBadRequest, "message exceeds size limit")
		return
	}
	action, body, err := Unmarshal(data)
	if err != nil {
		h.writeFault(w, FaultBadRequest, err.Error())
		return
	}
	handler, ok := h.byAction[action]
	if !ok {
		h.writeFault(w, FaultBadAction, "no handler for action "+action)
		return
	}
	reply, err := handler.Handle(action, body)
	if err != nil {
		var f *Fault
		if errors.As(err, &f) {
			h.writeFault(w, f.Code, f.Message)
		} else {
			h.writeFault(w, FaultInternal, err.Error())
		}
		return
	}
	respData, err := Marshal(action+"-response", reply)
	if err != nil {
		h.writeFault(w, FaultInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", ContentType)
	w.Write(respData)
}

func (h *HTTPHandler) writeFault(w http.ResponseWriter, code, msg string) {
	data, err := Marshal("fault", &Fault{Code: code, Message: msg})
	if err != nil {
		http.Error(w, msg, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ContentType)
	// Faults still travel as 200-level envelope replies, as in SOAP 1.1
	// over HTTP POST bindings; transport-level errors use HTTP codes.
	w.Write(data)
}

// Post sends a payload to url under the given action and decodes the
// reply body into reply (which may be nil to discard it). Fault replies
// are returned as *Fault errors.
func Post(client *http.Client, url, action string, payload, reply interface{}) error {
	data, err := Marshal(action, payload)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, ContentType, bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("soap: posting %s: %w", action, err)
	}
	defer resp.Body.Close()
	respData, err := io.ReadAll(io.LimitReader(resp.Body, MaxMessageBytes+1))
	if err != nil {
		return fmt.Errorf("soap: reading reply: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("soap: %s returned HTTP %d: %s", action, resp.StatusCode, bytes.TrimSpace(respData))
	}
	_, body, err := Unmarshal(respData)
	if err != nil {
		return err
	}
	if f, ok := AsFault(body); ok {
		return f
	}
	if reply == nil {
		return nil
	}
	return DecodeBody(body, reply)
}
