package soap

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"
)

type echoPayload struct {
	XMLName xml.Name `xml:"Echo"`
	Text    string   `xml:"text"`
	N       int      `xml:"n"`
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	data, err := Marshal("urn:test:echo", &echoPayload{Text: "hi <&> there", N: 7})
	if err != nil {
		t.Fatal(err)
	}
	action, body, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if action != "urn:test:echo" {
		t.Errorf("action = %q", action)
	}
	var p echoPayload
	if err := DecodeBody(body, &p); err != nil {
		t.Fatal(err)
	}
	if p.Text != "hi <&> there" || p.N != 7 {
		t.Errorf("payload = %+v", p)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, _, err := Unmarshal([]byte("not xml")); !errors.Is(err, ErrNotEnvelope) {
		t.Errorf("err = %v", err)
	}
	// Envelope without action header.
	data, _ := xml.Marshal(Envelope{})
	if _, _, err := Unmarshal(data); !errors.Is(err, ErrNotEnvelope) {
		t.Errorf("missing action: err = %v", err)
	}
}

func TestFaultDetection(t *testing.T) {
	f := &Fault{Code: FaultInternal, Message: "boom"}
	data, err := xml.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := AsFault(data)
	if !ok {
		t.Fatal("fault not detected")
	}
	if got.Code != FaultInternal || got.Message != "boom" {
		t.Errorf("fault = %+v", got)
	}
	if _, ok := AsFault([]byte("<Echo/>")); ok {
		t.Error("non-fault detected as fault")
	}
	var p echoPayload
	err = DecodeBody(data, &p)
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Errorf("DecodeBody of fault: err = %v, want *Fault", err)
	}
}

// echoHandler replies with the same payload; action "boom" fails.
type echoHandler struct{}

func (echoHandler) Actions() []string {
	return []string{"urn:test:echo", "urn:test:boom", "urn:test:fault"}
}

func (echoHandler) Handle(action string, body []byte) (interface{}, error) {
	switch action {
	case "urn:test:boom":
		return nil, errors.New("kaput")
	case "urn:test:fault":
		return nil, &Fault{Code: FaultBadRequest, Message: "custom"}
	}
	var p echoPayload
	if err := xml.Unmarshal(body, &p); err != nil {
		return nil, err
	}
	p.N++
	return &p, nil
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHTTPHandler(echoHandler{}))
	t.Cleanup(srv.Close)
	return srv
}

func TestPostRoundTrip(t *testing.T) {
	srv := newTestServer(t)
	var reply echoPayload
	err := Post(srv.Client(), srv.URL, "urn:test:echo", &echoPayload{Text: "x", N: 1}, &reply)
	if err != nil {
		t.Fatal(err)
	}
	if reply.N != 2 || reply.Text != "x" {
		t.Errorf("reply = %+v", reply)
	}
}

func TestPostNilReply(t *testing.T) {
	srv := newTestServer(t)
	if err := Post(srv.Client(), srv.URL, "urn:test:echo", &echoPayload{N: 1}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPostServerError(t *testing.T) {
	srv := newTestServer(t)
	err := Post(srv.Client(), srv.URL, "urn:test:boom", &echoPayload{}, nil)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
	if f.Code != FaultInternal {
		t.Errorf("code = %q, want internal", f.Code)
	}
}

func TestPostCustomFaultCodePreserved(t *testing.T) {
	srv := newTestServer(t)
	err := Post(srv.Client(), srv.URL, "urn:test:fault", &echoPayload{}, nil)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
	if f.Code != FaultBadRequest || f.Message != "custom" {
		t.Errorf("fault = %+v", f)
	}
}

func TestPostUnknownAction(t *testing.T) {
	srv := newTestServer(t)
	err := Post(srv.Client(), srv.URL, "urn:test:nope", &echoPayload{}, nil)
	var f *Fault
	if !errors.As(err, &f) || f.Code != FaultBadAction {
		t.Fatalf("err = %v, want unknown-action fault", err)
	}
}

func TestHTTPRejectsGet(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
}

func TestHTTPBadEnvelope(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Post(srv.URL, ContentType, strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	_, body, err := Unmarshal(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	f, ok := AsFault(body)
	if !ok || f.Code != FaultBadRequest {
		t.Errorf("want bad-request fault, got %v %v", f, ok)
	}
}

func TestHTTPOversizedMessage(t *testing.T) {
	srv := newTestServer(t)
	big := strings.NewReader(strings.Repeat("A", MaxMessageBytes+2))
	resp, err := http.Post(srv.URL, ContentType, big)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	_, body, err := Unmarshal(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := AsFault(body); !ok || f.Code != FaultBadRequest {
		t.Error("oversized message should fault")
	}
}

func TestDuplicateHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate action registration must panic")
		}
	}()
	NewHTTPHandler(echoHandler{}, echoHandler{})
}

func TestFaultError(t *testing.T) {
	f := &Fault{Code: "c", Message: "m"}
	if !strings.Contains(f.Error(), "c") || !strings.Contains(f.Error(), "m") {
		t.Errorf("Error() = %q", f.Error())
	}
}

func TestPostConnectionRefused(t *testing.T) {
	err := Post(http.DefaultClient, "http://127.0.0.1:1/nope", "urn:test:echo", &echoPayload{}, nil)
	if err == nil {
		t.Fatal("post to dead address should fail")
	}
}

// Property: any printable payload text survives the envelope round trip.
func TestQuickEnvelopeRoundTrip(t *testing.T) {
	f := func(text string, n int) bool {
		data, err := Marshal("urn:q", &echoPayload{Text: text, N: n})
		if err != nil {
			return false
		}
		action, body, err := Unmarshal(data)
		if err != nil || action != "urn:q" {
			return false
		}
		var p echoPayload
		if err := DecodeBody(body, &p); err != nil {
			return false
		}
		// XML cannot represent some control characters; tolerate the
		// documented lossy cases by re-marshalling and comparing.
		d2, err := Marshal("urn:q", &p)
		if err != nil {
			return false
		}
		return p.N == n && len(d2) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalUnmarshallablePayload(t *testing.T) {
	// Channels cannot be XML-marshalled.
	type bad struct {
		XMLName xml.Name `xml:"Bad"`
		C       chan int `xml:"c"`
	}
	if _, err := Marshal("urn:test", &bad{C: make(chan int)}); err == nil {
		t.Error("marshalling a channel should fail")
	}
}

func TestEnvelopeHasMessageID(t *testing.T) {
	data, err := Marshal("urn:test", &echoPayload{})
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := xml.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if !env.Header.MessageID.Valid() {
		t.Error("envelope must carry a message id")
	}
	// Two envelopes get distinct message ids.
	data2, _ := Marshal("urn:test", &echoPayload{})
	var env2 Envelope
	xml.Unmarshal(data2, &env2)
	if env.Header.MessageID == env2.Header.MessageID {
		t.Error("message ids must be unique")
	}
}

func ExamplePost() {
	srv := httptest.NewServer(NewHTTPHandler(echoHandler{}))
	defer srv.Close()
	var reply echoPayload
	if err := Post(srv.Client(), srv.URL, "urn:test:echo", &echoPayload{Text: "ping", N: 41}, &reply); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(reply.Text, reply.N)
	// Output: ping 42
}
