// Package stats provides the small statistical toolkit the evaluation
// needs: sample moments, ordinary least-squares regression with Pearson
// correlation (the paper reports r > 0.99 for every plot), and summary
// helpers for distributions of compressed sizes.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData is returned when an operation needs more samples
// than were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty
// slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (divisor n-1) of xs.
// It returns 0 when fewer than two samples are provided.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs; 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs; 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (the mean of the two central elements
// for even-length input); 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Fit is the result of an ordinary least-squares linear regression
// y = Slope*x + Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	// R is the Pearson product-moment correlation coefficient of the
	// sample. The paper reports |R| > 0.99 for each evaluation plot.
	R float64
	// N is the number of points fitted.
	N int
}

// R2 returns the coefficient of determination.
func (f Fit) R2() float64 { return f.R * f.R }

// Predict evaluates the fitted line at x.
func (f Fit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// String renders the fit in a compact human-readable form.
func (f Fit) String() string {
	return fmt.Sprintf("y = %.6g*x + %.6g (r=%.4f, n=%d)", f.Slope, f.Intercept, f.R, f.N)
}

// LinearFit performs ordinary least-squares regression of ys on xs.
// It requires len(xs) == len(ys) >= 2 and at least two distinct x values.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: mismatched lengths %d and %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return Fit{}, fmt.Errorf("%w: need at least 2 points, got %d", ErrInsufficientData, n)
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 {
		return Fit{}, fmt.Errorf("%w: all x values identical", ErrInsufficientData)
	}
	slope := sxy / sxx
	fit := Fit{
		Slope:     slope,
		Intercept: my - slope*mx,
		N:         n,
	}
	if syy == 0 {
		// A perfectly horizontal line: correlation is conventionally 1
		// for our purposes (the fit explains all — zero — variance).
		fit.R = 1
	} else {
		fit.R = sxy / math.Sqrt(sxx*syy)
	}
	return fit, nil
}

// Summary captures the descriptive statistics of one sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Median: Median(xs),
		Max:    Max(xs),
	}
}

// String renders the summary in one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}

// RelativeOverhead returns (with-base)/base, the fractional slowdown of
// `with` relative to `base`. The paper's headline claim is that the
// asynchronous-recording overhead stays below 0.10. base must be > 0.
func RelativeOverhead(base, with float64) float64 {
	if base <= 0 {
		return math.Inf(1)
	}
	return (with - base) / base
}
