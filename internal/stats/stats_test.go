package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almost(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 divisor: sum sq dev = 32, / 7.
	if got, want := Variance(xs), 32.0/7.0; !almost(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !almost(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Error("variance of singleton should be 0")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Errorf("Min/Max wrong: %v %v", Min(xs), Max(xs))
	}
	if got := Median(xs); !almost(got, 3.5, 1e-12) {
		t.Errorf("Median = %v, want 3.5", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd Median = %v, want 2", got)
	}
	if Median(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty-slice edge cases should return 0")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated its input: %v", xs)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 3, 1e-9) || !almost(fit.Intercept, 7, 1e-9) {
		t.Errorf("fit = %v, want slope 3 intercept 7", fit)
	}
	if !almost(fit.R, 1, 1e-12) {
		t.Errorf("R = %v, want 1", fit.R)
	}
	if !almost(fit.Predict(10), 37, 1e-9) {
		t.Errorf("Predict(10) = %v, want 37", fit.Predict(10))
	}
	if !almost(fit.R2(), 1, 1e-12) {
		t.Errorf("R2 = %v", fit.R2())
	}
}

func TestLinearFitNegativeCorrelation(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{9, 7, 5, 3}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, -2, 1e-9) || !almost(fit.R, -1, 1e-12) {
		t.Errorf("fit = %v, want slope -2, r -1", fit)
	}
}

func TestLinearFitHorizontal(t *testing.T) {
	fit, err := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.R != 1 {
		t.Errorf("horizontal fit = %v, want slope 0 r 1", fit)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x should error")
	}
}

func TestLinearFitNoisy(t *testing.T) {
	// y = 5x + 1 with small deterministic perturbation: r must stay
	// above 0.99, the threshold the paper applies to its own plots.
	var xs, ys []float64
	for i := 0; i < 50; i++ {
		x := float64(i)
		noise := 0.5 * math.Sin(float64(i)*1.7)
		xs = append(xs, x)
		ys = append(ys, 5*x+1+noise)
	}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R < 0.99 {
		t.Errorf("R = %v, want > 0.99", fit.R)
	}
	if !almost(fit.Slope, 5, 0.05) {
		t.Errorf("Slope = %v, want ≈5", fit.Slope)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestRelativeOverhead(t *testing.T) {
	if got := RelativeOverhead(100, 110); !almost(got, 0.10, 1e-12) {
		t.Errorf("overhead = %v, want 0.10", got)
	}
	if got := RelativeOverhead(100, 90); !almost(got, -0.10, 1e-12) {
		t.Errorf("overhead = %v, want -0.10", got)
	}
	if !math.IsInf(RelativeOverhead(0, 5), 1) {
		t.Error("zero base should give +Inf")
	}
}

func TestFitString(t *testing.T) {
	fit := Fit{Slope: 2, Intercept: 1, R: 0.999, N: 8}
	if fit.String() == "" {
		t.Error("empty String")
	}
}

// Property: fitting y = a*x + b exactly recovers a and b for any finite
// a, b and a spread of xs.
func TestQuickLinearFitRecovers(t *testing.T) {
	f := func(a8, b8 int8) bool {
		a, b := float64(a8), float64(b8)
		xs := []float64{0, 1, 2, 3, 4, 5, 6, 7}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a*x + b
		}
		fit, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		return almost(fit.Slope, a, 1e-6) && almost(fit.Intercept, b, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mean is translation-equivariant: Mean(xs+c) = Mean(xs)+c.
func TestQuickMeanTranslation(t *testing.T) {
	f := func(raw []int8, c8 int8) bool {
		if len(raw) == 0 {
			return true
		}
		c := float64(c8)
		xs := make([]float64, len(raw))
		shifted := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			shifted[i] = float64(v) + c
		}
		return almost(Mean(shifted), Mean(xs)+c, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: stddev is translation-invariant.
func TestQuickStdDevTranslationInvariant(t *testing.T) {
	f := func(raw []int8, c8 int8) bool {
		if len(raw) < 2 {
			return true
		}
		c := float64(c8)
		xs := make([]float64, len(raw))
		shifted := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			shifted[i] = float64(v) + c
		}
		return almost(StdDev(shifted), StdDev(xs), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
