// Package ontology provides the small semantic-type lattice that use
// case 2 validates against. The paper annotates each WSDL message part
// "by some metadata identifying its semantic type, which we have
// expressed in an ontology fragment for this specific application"; this
// package is that fragment plus the subsumption reasoning over it.
package ontology

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Well-known type URIs of the protein compressibility application.
const (
	TypeSequence        = "bio:Sequence"
	TypeProtein         = "bio:ProteinSequence"
	TypeNucleotide      = "bio:NucleotideSequence"
	TypeGroupEncoded    = "bio:GroupEncodedSequence"
	TypePermutedEncoded = "bio:PermutedGroupEncodedSequence"
	TypeCompressed      = "bio:CompressedData"
	TypeSize            = "bio:SizeMeasurement"
	TypeSizesTable      = "bio:SizesTable"
	TypeCompressibility = "bio:CompressibilityResult"
	TypeGroupingSpec    = "bio:GroupingSpec"
	TypeRandomSeed      = "bio:RandomSeed"
	TypeAny             = "owl:Thing"
)

// ErrUnknownType is returned when reasoning about an undeclared type.
var ErrUnknownType = errors.New("ontology: unknown type")

// Ontology is a forest of types under single inheritance. The zero value
// is empty; use New (optionally followed by Declare) or Bioinformatics.
type Ontology struct {
	mu     sync.RWMutex
	parent map[string]string // typ -> parent ("" for roots)
}

// New returns an empty ontology containing only TypeAny as root.
func New() *Ontology {
	o := &Ontology{parent: make(map[string]string)}
	o.parent[TypeAny] = ""
	return o
}

// Declare adds a type beneath parent. Parent must already be declared;
// redeclaring a type with the same parent is a no-op, with a different
// parent an error.
func (o *Ontology) Declare(typ, parent string) error {
	if typ == "" {
		return errors.New("ontology: empty type")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.parent[parent]; !ok {
		return fmt.Errorf("%w: parent %q", ErrUnknownType, parent)
	}
	if existing, ok := o.parent[typ]; ok {
		if existing != parent {
			return fmt.Errorf("ontology: %q already declared under %q", typ, existing)
		}
		return nil
	}
	o.parent[typ] = parent
	return nil
}

// Known reports whether typ has been declared.
func (o *Ontology) Known(typ string) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	_, ok := o.parent[typ]
	return ok
}

// Types returns every declared type, sorted.
func (o *Ontology) Types() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]string, 0, len(o.parent))
	for t := range o.parent {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Subsumes reports whether super is an ancestor of (or equal to) sub.
// Unknown types subsume nothing and are subsumed by nothing.
func (o *Ontology) Subsumes(super, sub string) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if _, ok := o.parent[super]; !ok {
		return false
	}
	cur, ok := sub, false
	if _, ok = o.parent[cur]; !ok {
		return false
	}
	for {
		if cur == super {
			return true
		}
		next, ok := o.parent[cur]
		if !ok || next == "" {
			return false
		}
		cur = next
	}
}

// Compatible reports whether data of type produced may flow into an
// input declared as type expected: the expected type must subsume the
// produced type. A nucleotide sequence flowing into an input declared
// bio:ProteinSequence is the paper's canonical *incompatibility*.
func (o *Ontology) Compatible(produced, expected string) bool {
	return o.Subsumes(expected, produced)
}

// Bioinformatics returns the application ontology fragment used by the
// protein compressibility experiment.
func Bioinformatics() *Ontology {
	o := New()
	must := func(typ, parent string) {
		if err := o.Declare(typ, parent); err != nil {
			panic(err) // static fragment; cannot fail
		}
	}
	must(TypeSequence, TypeAny)
	must(TypeProtein, TypeSequence)
	must(TypeNucleotide, TypeSequence)
	must(TypeGroupEncoded, TypeSequence)
	must(TypePermutedEncoded, TypeGroupEncoded)
	must(TypeCompressed, TypeAny)
	must(TypeSize, TypeAny)
	must(TypeSizesTable, TypeAny)
	must(TypeCompressibility, TypeAny)
	must(TypeGroupingSpec, TypeAny)
	must(TypeRandomSeed, TypeAny)
	return o
}
