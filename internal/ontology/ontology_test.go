package ontology

import (
	"testing"
	"testing/quick"
)

func TestBioinformaticsFragmentComplete(t *testing.T) {
	o := Bioinformatics()
	for _, typ := range []string{
		TypeSequence, TypeProtein, TypeNucleotide, TypeGroupEncoded,
		TypePermutedEncoded, TypeCompressed, TypeSize, TypeSizesTable,
		TypeCompressibility, TypeGroupingSpec, TypeRandomSeed, TypeAny,
	} {
		if !o.Known(typ) {
			t.Errorf("type %s missing from fragment", typ)
		}
	}
}

func TestSubsumptionReflexive(t *testing.T) {
	o := Bioinformatics()
	for _, typ := range o.Types() {
		if !o.Subsumes(typ, typ) {
			t.Errorf("Subsumes(%s, %s) = false, want reflexive", typ, typ)
		}
	}
}

func TestSubsumptionHierarchy(t *testing.T) {
	o := Bioinformatics()
	cases := []struct {
		super, sub string
		want       bool
	}{
		{TypeSequence, TypeProtein, true},
		{TypeSequence, TypeNucleotide, true},
		{TypeSequence, TypePermutedEncoded, true}, // two levels
		{TypeGroupEncoded, TypePermutedEncoded, true},
		{TypeAny, TypeProtein, true},
		{TypeProtein, TypeSequence, false},   // inverse
		{TypeProtein, TypeNucleotide, false}, // siblings
		{TypeNucleotide, TypeProtein, false},
		{TypeCompressed, TypeProtein, false},
	}
	for _, c := range cases {
		if got := o.Subsumes(c.super, c.sub); got != c.want {
			t.Errorf("Subsumes(%s, %s) = %v, want %v", c.super, c.sub, got, c.want)
		}
	}
}

func TestCompatibleNucleotideTrap(t *testing.T) {
	o := Bioinformatics()
	// The use-case-2 error: nucleotide data into a protein-only input.
	if o.Compatible(TypeNucleotide, TypeProtein) {
		t.Error("nucleotide must NOT be compatible with a protein input")
	}
	// The legitimate flows of the workflow.
	if !o.Compatible(TypeProtein, TypeSequence) {
		t.Error("protein must flow into a generic sequence input")
	}
	if !o.Compatible(TypeProtein, TypeProtein) {
		t.Error("exact type match must be compatible")
	}
	if !o.Compatible(TypePermutedEncoded, TypeGroupEncoded) {
		t.Error("permuted encoded data must be accepted where group-encoded is expected")
	}
}

func TestUnknownTypes(t *testing.T) {
	o := Bioinformatics()
	if o.Subsumes("bio:Mystery", TypeProtein) {
		t.Error("unknown super should not subsume")
	}
	if o.Subsumes(TypeProtein, "bio:Mystery") {
		t.Error("unknown sub should not be subsumed")
	}
	if o.Known("bio:Mystery") {
		t.Error("unknown type reported known")
	}
}

func TestDeclareValidation(t *testing.T) {
	o := New()
	if err := o.Declare("", TypeAny); err == nil {
		t.Error("empty type accepted")
	}
	if err := o.Declare("x:A", "x:Missing"); err == nil {
		t.Error("unknown parent accepted")
	}
	if err := o.Declare("x:A", TypeAny); err != nil {
		t.Fatal(err)
	}
	if err := o.Declare("x:A", TypeAny); err != nil {
		t.Errorf("idempotent redeclare should pass: %v", err)
	}
	if err := o.Declare("x:B", "x:A"); err != nil {
		t.Fatal(err)
	}
	if err := o.Declare("x:B", TypeAny); err == nil {
		t.Error("conflicting redeclare accepted")
	}
}

func TestTypesSorted(t *testing.T) {
	o := Bioinformatics()
	types := o.Types()
	for i := 1; i < len(types); i++ {
		if types[i-1] >= types[i] {
			t.Fatalf("Types not sorted: %v", types)
		}
	}
}

// Property: subsumption is transitive on the fragment: if A subsumes B
// and B subsumes C then A subsumes C, for all declared triples.
func TestSubsumptionTransitive(t *testing.T) {
	o := Bioinformatics()
	types := o.Types()
	for _, a := range types {
		for _, b := range types {
			if !o.Subsumes(a, b) {
				continue
			}
			for _, c := range types {
				if o.Subsumes(b, c) && !o.Subsumes(a, c) {
					t.Fatalf("transitivity violated: %s > %s > %s", a, b, c)
				}
			}
		}
	}
}

// Property: antisymmetry — mutual subsumption implies equality.
func TestSubsumptionAntisymmetric(t *testing.T) {
	o := Bioinformatics()
	types := o.Types()
	for _, a := range types {
		for _, b := range types {
			if a != b && o.Subsumes(a, b) && o.Subsumes(b, a) {
				t.Fatalf("antisymmetry violated: %s and %s", a, b)
			}
		}
	}
}

// Property: Compatible(x, TypeAny) holds for every declared type.
func TestQuickEverythingFlowsIntoAny(t *testing.T) {
	o := Bioinformatics()
	types := o.Types()
	f := func(i uint8) bool {
		typ := types[int(i)%len(types)]
		return o.Compatible(typ, TypeAny)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReads(t *testing.T) {
	o := Bioinformatics()
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				o.Subsumes(TypeSequence, TypeProtein)
				o.Compatible(TypeNucleotide, TypeProtein)
			}
			done <- true
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
