// Package trace reconstructs data lineage from recorded p-assertions.
// Section 3 of the paper requires that a provenance system "maintain a
// link between the inputs and the outputs of each workflow run in an
// accurate manner: it should be possible to determine which inputs were
// used to produce which output unambiguously from the provenance
// documentation, even if multiple workflows were run simultaneously."
//
// The unambiguous link is the data identifier carried by message parts:
// an interaction consumes the data ids in its request parts and produces
// the ones in its response parts. Lineage is the transitive closure of
// that relation.
package trace

import (
	"fmt"
	"sort"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
	"preserv/internal/preserv"
)

// Node is one data item in the lineage graph.
type Node struct {
	DataID ids.ID
	// ProducedBy is the interaction that emitted the datum (zero for
	// workflow inputs).
	ProducedBy ids.ID
	// Producer names the service that emitted it.
	Producer core.ActorID
	// Part is the response part name it appeared in.
	Part string
}

// Edge states that From was an input to the interaction that produced To.
type Edge struct {
	From, To ids.ID
	// Via is the interaction consuming From and producing To.
	Via ids.ID
	// Service is the interaction's receiver.
	Service core.ActorID
}

// Graph is the dataflow of one session.
type Graph struct {
	nodes map[ids.ID]Node
	// produced maps a data id to the ids consumed by its producing
	// interaction (its direct ancestors).
	parents map[ids.ID][]Edge
	// children maps a data id to the data produced by interactions that
	// consumed it.
	children map[ids.ID][]Edge
}

// Build fetches a session's interaction records and assembles its
// dataflow graph. The fetch goes through the store's cursor-paged query
// planner: on a multi-session store it touches only the session's
// posting list, and however large the session, the store serves it one
// page at a time while the graph ingests each record as it arrives —
// neither side ever buffers the full record set.
func Build(client *preserv.Client, session ids.ID) (*Graph, error) {
	g := NewGraph()
	_, err := client.QueryStream(&prep.Query{
		Kind:      core.KindInteraction.String(),
		SessionID: session,
	}, 0, func(r *core.Record) error {
		g.Ingest(r)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("trace: fetching session: %w", err)
	}
	return g, nil
}

// NewGraph returns an empty dataflow graph ready to Ingest records.
func NewGraph() *Graph {
	return &Graph{
		nodes:    make(map[ids.ID]Node),
		parents:  make(map[ids.ID][]Edge),
		children: make(map[ids.ID][]Edge),
	}
}

// FromRecords assembles the graph from interaction records directly.
func FromRecords(records []core.Record) *Graph {
	g := NewGraph()
	for i := range records {
		g.Ingest(&records[i])
	}
	return g
}

// Ingest merges one interaction record into the graph (non-interaction
// records are ignored). Records may arrive in any order and one at a
// time — this is what lets Build consume a paged stream.
func (g *Graph) Ingest(r *core.Record) {
	if r.Kind != core.KindInteraction || r.Interaction == nil {
		return
	}
	ip := r.Interaction
	var inputs []ids.ID
	for _, p := range ip.Request.Parts {
		if p.DataID.Valid() {
			inputs = append(inputs, p.DataID)
			if _, known := g.nodes[p.DataID]; !known {
				// Workflow-level input unless a later record names
				// a producer.
				g.nodes[p.DataID] = Node{DataID: p.DataID}
			}
		}
	}
	for _, p := range ip.Response.Parts {
		if !p.DataID.Valid() {
			continue
		}
		g.nodes[p.DataID] = Node{
			DataID:     p.DataID,
			ProducedBy: ip.Interaction.ID,
			Producer:   ip.Interaction.Receiver,
			Part:       p.Name,
		}
		for _, in := range inputs {
			e := Edge{
				From:    in,
				To:      p.DataID,
				Via:     ip.Interaction.ID,
				Service: ip.Interaction.Receiver,
			}
			g.parents[p.DataID] = append(g.parents[p.DataID], e)
			g.children[in] = append(g.children[in], e)
		}
	}
}

// Len returns the number of data items known to the graph.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node for a data id.
func (g *Graph) Node(id ids.ID) (Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// Parents returns the direct ancestors (inputs of the producing
// interaction) of a data item.
func (g *Graph) Parents(id ids.ID) []Edge {
	return append([]Edge(nil), g.parents[id]...)
}

// Children returns the data directly derived from a data item.
func (g *Graph) Children(id ids.ID) []Edge {
	return append([]Edge(nil), g.children[id]...)
}

func (g *Graph) closure(start ids.ID, step func(ids.ID) []Edge, pick func(Edge) ids.ID) []Node {
	seen := map[ids.ID]bool{start: true}
	var frontier []ids.ID
	frontier = append(frontier, start)
	var out []Node
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, e := range step(cur) {
			next := pick(e)
			if seen[next] {
				continue
			}
			seen[next] = true
			if n, ok := g.nodes[next]; ok {
				out = append(out, n)
			} else {
				out = append(out, Node{DataID: next})
			}
			frontier = append(frontier, next)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].DataID.Compare(out[j].DataID) < 0
	})
	return out
}

// Lineage returns every data item the given datum transitively derives
// from — the answer to "which inputs were used to produce this output".
func (g *Graph) Lineage(id ids.ID) []Node {
	return g.closure(id, func(x ids.ID) []Edge { return g.parents[x] }, func(e Edge) ids.ID { return e.From })
}

// Derived returns every data item transitively derived from the given
// datum — the answer to "was this data item used as input to a
// computation" (use case from §1) and what came of it.
func (g *Graph) Derived(id ids.ID) []Node {
	return g.closure(id, func(x ids.ID) []Edge { return g.children[x] }, func(e Edge) ids.ID { return e.To })
}

// WasInputTo reports whether the datum was consumed, directly or
// transitively, in producing the target.
func (g *Graph) WasInputTo(datum, target ids.ID) bool {
	for _, n := range g.Lineage(target) {
		if n.DataID == datum {
			return true
		}
	}
	return false
}

// Roots returns the workflow-level inputs: data items that no recorded
// interaction produced.
func (g *Graph) Roots() []Node {
	var out []Node
	for id, n := range g.nodes {
		if !n.ProducedBy.Valid() && len(g.parents[id]) == 0 {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].DataID.Compare(out[j].DataID) < 0
	})
	return out
}
