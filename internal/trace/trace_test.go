package trace

import (
	"testing"
	"time"

	"preserv/internal/core"
	"preserv/internal/experiment"
	"preserv/internal/ids"
	"preserv/internal/prep"
	"preserv/internal/preserv"
	"preserv/internal/store"
)

var seq = &ids.SeqSource{Prefix: 0xAB}

// chainRecords builds a 3-stage pipeline: in -> A -> mid -> B -> out,
// plus a side input used by B.
func chainRecords(session ids.ID) (records []core.Record, in, mid, side, out ids.ID) {
	in, mid, side, out = seq.NewID(), seq.NewID(), seq.NewID(), seq.NewID()
	mk := func(n uint64, svc core.ActorID, reqParts, respParts []core.MessagePart) core.Record {
		inter := core.Interaction{ID: seq.NewID(), Sender: "svc:enactor", Receiver: svc, Operation: "run"}
		return *core.NewInteractionRecord(&core.InteractionPAssertion{
			LocalID:     "x",
			Asserter:    "svc:enactor",
			Interaction: inter,
			View:        core.SenderView,
			Request:     core.Message{Name: "invoke", Parts: reqParts},
			Response:    core.Message{Name: "result", Parts: respParts},
			Groups:      []core.GroupRef{{Type: core.GroupSession, ID: session, Seq: n}},
			Timestamp:   time.Now().UTC(),
		})
	}
	records = []core.Record{
		mk(1, "svc:a",
			[]core.MessagePart{{Name: "in", DataID: in}},
			[]core.MessagePart{{Name: "mid", DataID: mid}}),
		mk(2, "svc:b",
			[]core.MessagePart{{Name: "mid", DataID: mid}, {Name: "side", DataID: side}},
			[]core.MessagePart{{Name: "out", DataID: out}}),
	}
	return records, in, mid, side, out
}

func TestFromRecordsBasicGraph(t *testing.T) {
	session := seq.NewID()
	records, in, mid, side, out := chainRecords(session)
	g := FromRecords(records)

	if g.Len() != 4 {
		t.Fatalf("graph has %d nodes, want 4", g.Len())
	}
	n, ok := g.Node(mid)
	if !ok || n.Producer != "svc:a" || n.Part != "mid" {
		t.Errorf("mid node = %+v", n)
	}
	if n, _ := g.Node(in); n.ProducedBy.Valid() {
		t.Error("workflow input should have no producer")
	}
	_ = side
	_ = out
}

func TestLineage(t *testing.T) {
	session := seq.NewID()
	records, in, mid, side, out := chainRecords(session)
	g := FromRecords(records)

	anc := g.Lineage(out)
	got := map[ids.ID]bool{}
	for _, n := range anc {
		got[n.DataID] = true
	}
	if len(anc) != 3 || !got[in] || !got[mid] || !got[side] {
		t.Errorf("Lineage(out) = %v", anc)
	}
	if len(g.Lineage(in)) != 0 {
		t.Error("workflow input should have empty lineage")
	}
}

func TestDerived(t *testing.T) {
	session := seq.NewID()
	records, in, mid, _, out := chainRecords(session)
	g := FromRecords(records)

	des := g.Derived(in)
	got := map[ids.ID]bool{}
	for _, n := range des {
		got[n.DataID] = true
	}
	if len(des) != 2 || !got[mid] || !got[out] {
		t.Errorf("Derived(in) = %v", des)
	}
	if len(g.Derived(out)) != 0 {
		t.Error("final output should have no derivations")
	}
}

func TestWasInputTo(t *testing.T) {
	session := seq.NewID()
	records, in, mid, side, out := chainRecords(session)
	g := FromRecords(records)

	if !g.WasInputTo(in, out) {
		t.Error("in -> out transitivity missed")
	}
	if !g.WasInputTo(side, out) {
		t.Error("side -> out missed")
	}
	if g.WasInputTo(out, in) {
		t.Error("lineage must not run backwards")
	}
	if g.WasInputTo(side, mid) {
		t.Error("side was not an input to mid")
	}
}

func TestRoots(t *testing.T) {
	session := seq.NewID()
	records, in, _, side, _ := chainRecords(session)
	g := FromRecords(records)
	roots := g.Roots()
	got := map[ids.ID]bool{}
	for _, n := range roots {
		got[n.DataID] = true
	}
	if len(roots) != 2 || !got[in] || !got[side] {
		t.Errorf("Roots = %v", roots)
	}
}

func TestParentsChildrenEdges(t *testing.T) {
	session := seq.NewID()
	records, in, mid, side, out := chainRecords(session)
	g := FromRecords(records)

	parents := g.Parents(out)
	if len(parents) != 2 {
		t.Fatalf("Parents(out) = %v", parents)
	}
	for _, e := range parents {
		if e.Service != "svc:b" || e.To != out {
			t.Errorf("edge = %+v", e)
		}
		if e.From != mid && e.From != side {
			t.Errorf("unexpected parent %v", e.From)
		}
	}
	children := g.Children(in)
	if len(children) != 1 || children[0].To != mid || children[0].Service != "svc:a" {
		t.Errorf("Children(in) = %v", children)
	}
}

func TestIgnoresNonInteractionRecords(t *testing.T) {
	session := seq.NewID()
	records, _, _, _, _ := chainRecords(session)
	inter := records[0].Interaction.Interaction
	state := *core.NewActorStateRecord(&core.ActorStatePAssertion{
		LocalID:     "s",
		Asserter:    inter.Receiver,
		Interaction: inter,
		View:        core.ReceiverView,
		StateKind:   core.StateScript,
		Content:     core.Bytes("x"),
		Timestamp:   time.Now().UTC(),
	})
	g := FromRecords(append(records, state))
	if g.Len() != 4 {
		t.Errorf("actor state polluted the graph: %d nodes", g.Len())
	}
}

func TestBuildFromLiveStoreExperimentSession(t *testing.T) {
	// End-to-end: run the real experiment and answer the §3 question —
	// was the collated sample used, transitively, in producing the final
	// results table?
	svc := preserv.NewService(store.New(store.NewMemoryBackend()))
	srv, err := preserv.Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	res, err := experiment.Run(experiment.Params{
		SampleBytes:  1 << 10,
		Permutations: 2,
		BatchSize:    2,
		Seed:         9,
	}, experiment.Config{
		Mode:      experiment.RecordSync,
		StoreURLs: []string{srv.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	client := preserv.NewClient(srv.URL, nil)
	g, err := Build(client, res.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() == 0 {
		t.Fatal("empty graph from live session")
	}

	// Find the results table (produced by svc:average) and the collated
	// sample (produced by the collate service).
	var resultsID, sampleID ids.ID
	for _, root := range g.Roots() {
		_ = root
	}
	records, _, err := client.Query(&prep.Query{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if records[i].Kind != core.KindInteraction {
			continue
		}
		ip := records[i].Interaction
		switch ip.Interaction.Receiver {
		case experiment.SvcAverage:
			for _, p := range ip.Response.Parts {
				if p.Name == "results" {
					resultsID = p.DataID
				}
			}
		case experiment.SvcCollate:
			for _, p := range ip.Response.Parts {
				if p.Name == "sample" {
					sampleID = p.DataID
				}
			}
		}
	}
	if !resultsID.Valid() || !sampleID.Valid() {
		t.Fatal("could not locate results/sample data ids")
	}
	if !g.WasInputTo(sampleID, resultsID) {
		t.Error("the collated sample must be in the lineage of the results table")
	}
	if len(g.Lineage(resultsID)) < 5 {
		t.Errorf("results lineage suspiciously small: %d nodes", len(g.Lineage(resultsID)))
	}
}
