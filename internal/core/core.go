// Package core defines the paper's technology-independent notion of
// provenance for service-oriented architectures: p-assertions.
//
// A p-assertion is "an assertion, by an actor, pertaining to the
// provenance of some data". The paper identifies two kinds:
//
//   - interaction p-assertions document the messages exchanged when a
//     client invokes a service (the inputs and outputs of the services
//     involved in generating a result);
//   - actor state p-assertions document an actor's internal state in the
//     context of a specific interaction — anything from the script being
//     executed to CPU consumption.
//
// P-assertions are further organised by groups — well-specified
// associations of interactions such as sessions (one workflow run) and
// threads (a sequential succession of activities) — which let later
// reasoning reconstruct execution structure.
//
// One representational note, recorded in DESIGN.md: PReP documents the
// request and the response of an invocation as two separate message
// p-assertions. This implementation documents a whole exchange (request
// parts + response parts) in a single interaction p-assertion, matching
// the paper's observed record volume of six records per permutation (one
// per Measure-workflow activity). Both parties may still assert their
// own view of the same interaction.
package core

import (
	"crypto/sha256"
	"encoding/base64"
	"errors"
	"fmt"
	"time"

	"preserv/internal/ids"
)

// ActorID identifies an actor — a client or a service — by a stable
// URI-like name (e.g. "svc:gzip-compression").
type ActorID string

// View states which party to an interaction is making an assertion.
type View int

// Views of an interaction.
const (
	// SenderView marks assertions by the party that sent the invocation
	// (the client; in the experiment, the workflow enactor).
	SenderView View = iota + 1
	// ReceiverView marks assertions by the invoked service.
	ReceiverView
)

// String returns the view's wire name.
func (v View) String() string {
	switch v {
	case SenderView:
		return "sender"
	case ReceiverView:
		return "receiver"
	default:
		return fmt.Sprintf("view(%d)", int(v))
	}
}

// ParseView converts a wire name back to a View.
func ParseView(s string) (View, error) {
	switch s {
	case "sender":
		return SenderView, nil
	case "receiver":
		return ReceiverView, nil
	}
	return 0, fmt.Errorf("core: unknown view %q", s)
}

// Interaction identifies one client-service exchange. The ID is globally
// unique so that assertions contributed independently by both parties —
// possibly through different technologies — can be joined later, even
// when multiple workflows run simultaneously.
type Interaction struct {
	ID ids.ID `xml:"id"`
	// Sender is the invoking actor (client).
	Sender ActorID `xml:"sender"`
	// Receiver is the invoked actor (service).
	Receiver ActorID `xml:"receiver"`
	// Operation names the service operation invoked.
	Operation string `xml:"operation"`
}

// Group types with well-understood semantics, per the paper.
const (
	// GroupSession denotes one workflow run.
	GroupSession = "session"
	// GroupThread denotes a sequential succession of activities.
	GroupThread = "thread"
)

// GroupRef places an interaction inside a named group with a sequence
// number that orders the group's members.
type GroupRef struct {
	Type string `xml:"type"`
	ID   ids.ID `xml:"id"`
	Seq  uint64 `xml:"seq"`
}

// Bytes is a byte slice that serialises as base64 text, keeping binary
// payloads (compressed samples, for instance) safe inside XML documents.
type Bytes []byte

// MarshalText implements encoding.TextMarshaler.
func (b Bytes) MarshalText() ([]byte, error) {
	out := make([]byte, base64.StdEncoding.EncodedLen(len(b)))
	base64.StdEncoding.Encode(out, b)
	return out, nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (b *Bytes) UnmarshalText(text []byte) error {
	out := make([]byte, base64.StdEncoding.DecodedLen(len(text)))
	n, err := base64.StdEncoding.Decode(out, text)
	if err != nil {
		return fmt.Errorf("core: decoding content: %w", err)
	}
	*b = out[:n]
	return nil
}

// ContentStyle is PReP's documentation style: how a message part's value
// is represented inside a p-assertion. Actors choose a style per part —
// small values verbatim, large ones by cryptographic digest — without
// affecting data identity, which DataID carries regardless.
type ContentStyle string

// Documentation styles.
const (
	// StyleVerbatim documents the value byte-for-byte.
	StyleVerbatim ContentStyle = "verbatim"
	// StyleDigest documents the value by its SHA-256 digest; equality of
	// values remains checkable, content is not reproducible.
	StyleDigest ContentStyle = "digest"
	// StyleOmitted documents only the part's existence and identity.
	StyleOmitted ContentStyle = "omitted"
)

// MessagePart is one named element of a message. DataID identifies the
// data item flowing through the part, allowing unambiguous input/output
// linkage across interactions; Content carries the documentation of the
// value itself, in the representation Style declares.
type MessagePart struct {
	Name string `xml:"name"`
	// DataID identifies the data item; parts carrying literal
	// configuration rather than flowing data may leave it nil.
	DataID ids.ID `xml:"dataId,omitempty"`
	// ContentType is a hint such as "text/plain" or "application/fasta".
	ContentType string `xml:"contentType,omitempty"`
	// Style is the documentation style; empty means StyleVerbatim.
	Style   ContentStyle `xml:"style,omitempty"`
	Content Bytes        `xml:"content,omitempty"`
}

// DocumentContent builds the (Style, Content) documentation of a value:
// verbatim up to maxVerbatim bytes, SHA-256 digest beyond, omitted when
// maxVerbatim is zero and the value is non-empty. A negative maxVerbatim
// documents everything verbatim.
func DocumentContent(value []byte, maxVerbatim int) (ContentStyle, Bytes) {
	switch {
	case maxVerbatim < 0 || len(value) <= maxVerbatim:
		return StyleVerbatim, Bytes(append([]byte(nil), value...))
	case maxVerbatim == 0:
		return StyleOmitted, nil
	default:
		sum := sha256.Sum256(value)
		return StyleDigest, Bytes(sum[:])
	}
}

// Message is a named list of parts (an invocation or a result).
type Message struct {
	Name  string        `xml:"name"`
	Parts []MessagePart `xml:"part"`
}

// InteractionPAssertion documents one interaction from one party's view.
type InteractionPAssertion struct {
	// LocalID distinguishes multiple assertions by the same asserter
	// about the same interaction.
	LocalID string `xml:"localId"`
	// Asserter is the actor making the assertion.
	Asserter    ActorID     `xml:"asserter"`
	Interaction Interaction `xml:"interaction"`
	View        View        `xml:"view"`
	// Request documents the invocation message, Response the result.
	Request  Message    `xml:"request"`
	Response Message    `xml:"response"`
	Groups   []GroupRef `xml:"group,omitempty"`
	// Timestamp is when the assertion was created (not when the
	// interaction occurred; actors may assert after the fact).
	Timestamp time.Time `xml:"timestamp"`
}

// ActorStatePAssertion documents internal actor state in the context of
// an interaction: the executed script, resource usage, configuration...
type ActorStatePAssertion struct {
	LocalID     string      `xml:"localId"`
	Asserter    ActorID     `xml:"asserter"`
	Interaction Interaction `xml:"interaction"`
	View        View        `xml:"view"`
	// StateKind labels the category of state documented.
	StateKind string `xml:"stateKind"`
	// Content is the state documentation itself (e.g. the full script
	// text, so changes between runs can be detected byte-for-byte).
	Content   Bytes      `xml:"content"`
	Groups    []GroupRef `xml:"group,omitempty"`
	Timestamp time.Time  `xml:"timestamp"`
}

// Well-known StateKind values used by the experiment.
const (
	StateScript   = "script"
	StateConfig   = "config"
	StateResource = "resource-usage"
	StateWorkflow = "workflow-definition"
)

// Kind discriminates record payloads.
type Kind int

// Record kinds.
const (
	KindInteraction Kind = iota + 1
	KindActorState
)

// String returns the kind's wire name.
func (k Kind) String() string {
	switch k {
	case KindInteraction:
		return "interaction"
	case KindActorState:
		return "actorState"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Record is the storage and transport unit: exactly one of the payload
// pointers is set, matching Kind.
type Record struct {
	Kind        Kind                   `xml:"kind"`
	Interaction *InteractionPAssertion `xml:"interactionPAssertion,omitempty"`
	ActorState  *ActorStatePAssertion  `xml:"actorStatePAssertion,omitempty"`
}

// Validation errors.
var (
	ErrInvalid = errors.New("core: invalid p-assertion")
)

func validateCommon(localID string, asserter ActorID, in Interaction, v View, groups []GroupRef) error {
	if localID == "" {
		return fmt.Errorf("%w: empty local id", ErrInvalid)
	}
	if asserter == "" {
		return fmt.Errorf("%w: empty asserter", ErrInvalid)
	}
	if !in.ID.Valid() {
		return fmt.Errorf("%w: invalid interaction id", ErrInvalid)
	}
	if in.Sender == "" || in.Receiver == "" {
		return fmt.Errorf("%w: interaction requires sender and receiver", ErrInvalid)
	}
	if v != SenderView && v != ReceiverView {
		return fmt.Errorf("%w: bad view %d", ErrInvalid, v)
	}
	if v == SenderView && asserter != in.Sender {
		return fmt.Errorf("%w: sender view must be asserted by the sender (%s != %s)", ErrInvalid, asserter, in.Sender)
	}
	if v == ReceiverView && asserter != in.Receiver {
		return fmt.Errorf("%w: receiver view must be asserted by the receiver (%s != %s)", ErrInvalid, asserter, in.Receiver)
	}
	for _, g := range groups {
		if g.Type == "" || !g.ID.Valid() {
			return fmt.Errorf("%w: malformed group reference %+v", ErrInvalid, g)
		}
	}
	return nil
}

// Validate checks structural well-formedness.
func (p *InteractionPAssertion) Validate() error {
	return validateCommon(p.LocalID, p.Asserter, p.Interaction, p.View, p.Groups)
}

// Validate checks structural well-formedness.
func (p *ActorStatePAssertion) Validate() error {
	if err := validateCommon(p.LocalID, p.Asserter, p.Interaction, p.View, p.Groups); err != nil {
		return err
	}
	if p.StateKind == "" {
		return fmt.Errorf("%w: actor state requires a state kind", ErrInvalid)
	}
	return nil
}

// Validate checks that the record is well-formed and internally
// consistent (Kind matches the populated payload).
func (r *Record) Validate() error {
	switch r.Kind {
	case KindInteraction:
		if r.Interaction == nil || r.ActorState != nil {
			return fmt.Errorf("%w: interaction record payload mismatch", ErrInvalid)
		}
		return r.Interaction.Validate()
	case KindActorState:
		if r.ActorState == nil || r.Interaction != nil {
			return fmt.Errorf("%w: actor state record payload mismatch", ErrInvalid)
		}
		return r.ActorState.Validate()
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrInvalid, r.Kind)
	}
}

// InteractionID returns the interaction the record documents.
func (r *Record) InteractionID() ids.ID {
	switch r.Kind {
	case KindInteraction:
		if r.Interaction != nil {
			return r.Interaction.Interaction.ID
		}
	case KindActorState:
		if r.ActorState != nil {
			return r.ActorState.Interaction.ID
		}
	}
	return ids.Nil
}

// Asserter returns the asserting actor.
func (r *Record) Asserter() ActorID {
	switch r.Kind {
	case KindInteraction:
		if r.Interaction != nil {
			return r.Interaction.Asserter
		}
	case KindActorState:
		if r.ActorState != nil {
			return r.ActorState.Asserter
		}
	}
	return ""
}

// View returns the asserted view.
func (r *Record) View() View {
	switch r.Kind {
	case KindInteraction:
		if r.Interaction != nil {
			return r.Interaction.View
		}
	case KindActorState:
		if r.ActorState != nil {
			return r.ActorState.View
		}
	}
	return 0
}

// LocalID returns the asserter-local identifier.
func (r *Record) LocalID() string {
	switch r.Kind {
	case KindInteraction:
		if r.Interaction != nil {
			return r.Interaction.LocalID
		}
	case KindActorState:
		if r.ActorState != nil {
			return r.ActorState.LocalID
		}
	}
	return ""
}

// Receiver returns the receiving actor (the invoked service) of the
// interaction the record documents.
func (r *Record) Receiver() ActorID {
	switch r.Kind {
	case KindInteraction:
		if r.Interaction != nil {
			return r.Interaction.Interaction.Receiver
		}
	case KindActorState:
		if r.ActorState != nil {
			return r.ActorState.Interaction.Receiver
		}
	}
	return ""
}

// Timestamp returns when the assertion was created.
func (r *Record) Timestamp() time.Time {
	switch r.Kind {
	case KindInteraction:
		if r.Interaction != nil {
			return r.Interaction.Timestamp
		}
	case KindActorState:
		if r.ActorState != nil {
			return r.ActorState.Timestamp
		}
	}
	return time.Time{}
}

// DataIDs returns the distinct data identifiers carried by the record's
// message parts, in order of first appearance (request before response).
// Actor-state records carry no message parts and return nil.
func (r *Record) DataIDs() []ids.ID {
	if r.Kind != KindInteraction || r.Interaction == nil {
		return nil
	}
	var out []ids.ID
	seen := make(map[ids.ID]bool)
	for _, msg := range []*Message{&r.Interaction.Request, &r.Interaction.Response} {
		for _, p := range msg.Parts {
			if p.DataID.Valid() && !seen[p.DataID] {
				seen[p.DataID] = true
				out = append(out, p.DataID)
			}
		}
	}
	return out
}

// Groups returns the record's group references.
func (r *Record) Groups() []GroupRef {
	switch r.Kind {
	case KindInteraction:
		if r.Interaction != nil {
			return r.Interaction.Groups
		}
	case KindActorState:
		if r.ActorState != nil {
			return r.ActorState.Groups
		}
	}
	return nil
}

// GroupID returns the ID of the first group of the given type, if any.
func (r *Record) GroupID(groupType string) (ids.ID, bool) {
	for _, g := range r.Groups() {
		if g.Type == groupType {
			return g.ID, true
		}
	}
	return ids.Nil, false
}

// StorageKey returns the unique key under which the record is stored:
// kind / interaction id / view / asserter / local id. Two distinct valid
// records can never share a key, and all records of one interaction
// share a key prefix — which is what the store's lookups index on.
func (r *Record) StorageKey() string {
	var kindTag string
	switch r.Kind {
	case KindInteraction:
		kindTag = "i"
	case KindActorState:
		kindTag = "s"
	default:
		kindTag = "?"
	}
	return fmt.Sprintf("%s/%s/%s/%s/%s",
		kindTag, r.InteractionID(), r.View(), r.Asserter(), r.LocalID())
}

// NewInteractionRecord wraps an interaction p-assertion as a Record.
func NewInteractionRecord(p *InteractionPAssertion) *Record {
	return &Record{Kind: KindInteraction, Interaction: p}
}

// NewActorStateRecord wraps an actor state p-assertion as a Record.
func NewActorStateRecord(p *ActorStatePAssertion) *Record {
	return &Record{Kind: KindActorState, ActorState: p}
}
