package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"time"

	"preserv/internal/ids"
)

// MarshalText implements encoding.TextMarshaler so views serialise by
// name in XML documents.
func (v View) MarshalText() ([]byte, error) {
	if v != SenderView && v != ReceiverView {
		return nil, fmt.Errorf("core: cannot marshal view %d", int(v))
	}
	return []byte(v.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (v *View) UnmarshalText(text []byte) error {
	parsed, err := ParseView(string(text))
	if err != nil {
		return err
	}
	*v = parsed
	return nil
}

// MarshalText implements encoding.TextMarshaler for record kinds.
func (k Kind) MarshalText() ([]byte, error) {
	if k != KindInteraction && k != KindActorState {
		return nil, fmt.Errorf("core: cannot marshal kind %d", int(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *Kind) UnmarshalText(text []byte) error {
	switch string(text) {
	case "interaction":
		*k = KindInteraction
	case "actorState":
		*k = KindActorState
	default:
		return fmt.Errorf("core: unknown kind %q", text)
	}
	return nil
}

// Storage codec. The format is internal to a single store; the wire
// format between actors and the store is XML (see internal/soap and
// internal/prep).
//
// Records encode in a compact hand-rolled binary form: a magic prefix,
// the kind byte, then the p-assertion's fields as fixed-width IDs and
// uvarint-length-prefixed strings/bytes. The previous format (one gob
// stream per record) spent roughly half of every encode re-sending gob
// type descriptors — at ~20 index postings per record the encoder was
// the single hottest function on the ingest path. DecodeRecord still
// accepts gob blobs, so stores written before the format change keep
// working; idempotent re-records of such blobs are handled by the store
// comparing canonical re-encodings (see store.Record).
//
// The first magic byte is 0xA5: a gob stream's first byte is a uvarint
// length whose leading byte is always in [0x00, 0x7F] or [0xF8, 0xFF],
// so the two formats cannot be confused.
var codecMagic = [4]byte{0xA5, 'P', 'A', '1'}

// EncodeRecord serialises a record for storage in a backend. Encoding is
// deterministic: equal records produce equal bytes, which the store's
// idempotency check relies on.
func EncodeRecord(r *Record) ([]byte, error) {
	buf := make([]byte, 0, 256)
	buf = append(buf, codecMagic[:]...)
	buf = append(buf, byte(r.Kind))
	switch r.Kind {
	case KindInteraction:
		if r.Interaction == nil {
			return nil, fmt.Errorf("core: encoding record: interaction payload missing")
		}
		p := r.Interaction
		var err error
		buf = appendCommon(buf, p.LocalID, p.Asserter, p.Interaction, p.View)
		buf = appendMessage(buf, &p.Request)
		buf = appendMessage(buf, &p.Response)
		buf = appendGroups(buf, p.Groups)
		if buf, err = appendTime(buf, p.Timestamp); err != nil {
			return nil, err
		}
	case KindActorState:
		if r.ActorState == nil {
			return nil, fmt.Errorf("core: encoding record: actor state payload missing")
		}
		p := r.ActorState
		var err error
		buf = appendCommon(buf, p.LocalID, p.Asserter, p.Interaction, p.View)
		buf = appendString(buf, p.StateKind)
		buf = appendBytes(buf, p.Content)
		buf = appendGroups(buf, p.Groups)
		if buf, err = appendTime(buf, p.Timestamp); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: encoding record: unknown kind %d", r.Kind)
	}
	return buf, nil
}

// EncodeRecordLegacy serialises a record in the pre-batching storage
// format: one self-describing gob stream per record. Kept for
// compatibility tests (DecodeRecord must keep reading stores written
// before the format change) and as the faithful baseline in the ingest
// benchmarks. New code stores via EncodeRecord.
func EncodeRecordLegacy(r *Record) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("core: encoding record: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRecord reverses EncodeRecord. Blobs in the pre-batching gob
// format decode through a fallback path.
func DecodeRecord(data []byte) (*Record, error) {
	if len(data) < len(codecMagic)+1 || !bytes.Equal(data[:len(codecMagic)], codecMagic[:]) {
		var r Record
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&r); err != nil {
			return nil, fmt.Errorf("core: decoding record: %w", err)
		}
		// gob happily decodes short junk into a zero Record; only a
		// structurally complete record (a known kind with its payload
		// present) is a legitimate legacy blob — anything else must
		// surface as corruption, not crash a later re-encode.
		switch {
		case r.Kind == KindInteraction && r.Interaction != nil:
		case r.Kind == KindActorState && r.ActorState != nil:
		default:
			return nil, fmt.Errorf("core: decoding record: gob blob is not a complete record (kind %d)", r.Kind)
		}
		return &r, nil
	}
	d := &decoder{data: data, off: len(codecMagic)}
	kind := Kind(d.byte())
	r := &Record{Kind: kind}
	switch kind {
	case KindInteraction:
		p := &InteractionPAssertion{}
		p.LocalID, p.Asserter, p.Interaction, p.View = d.common()
		p.Request = d.message()
		p.Response = d.message()
		p.Groups = d.groups()
		p.Timestamp = d.time()
		r.Interaction = p
	case KindActorState:
		p := &ActorStatePAssertion{}
		p.LocalID, p.Asserter, p.Interaction, p.View = d.common()
		p.StateKind = d.str()
		p.Content = Bytes(d.bytes())
		p.Groups = d.groups()
		p.Timestamp = d.time()
		r.ActorState = p
	default:
		return nil, fmt.Errorf("core: decoding record: unknown kind %d", kind)
	}
	if d.err != nil {
		return nil, fmt.Errorf("core: decoding record: %w", d.err)
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("core: decoding record: %d trailing bytes", len(data)-d.off)
	}
	return r, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendID(buf []byte, id ids.ID) []byte {
	b, _ := id.MarshalBinary() // 16 bytes, never errors
	return append(buf, b...)
}

func appendCommon(buf []byte, localID string, asserter ActorID, in Interaction, v View) []byte {
	buf = appendString(buf, localID)
	buf = appendString(buf, string(asserter))
	buf = appendID(buf, in.ID)
	buf = appendString(buf, string(in.Sender))
	buf = appendString(buf, string(in.Receiver))
	buf = appendString(buf, in.Operation)
	return append(buf, byte(v))
}

func appendMessage(buf []byte, m *Message) []byte {
	buf = appendString(buf, m.Name)
	buf = binary.AppendUvarint(buf, uint64(len(m.Parts)))
	for i := range m.Parts {
		p := &m.Parts[i]
		buf = appendString(buf, p.Name)
		buf = appendID(buf, p.DataID)
		buf = appendString(buf, p.ContentType)
		buf = appendString(buf, string(p.Style))
		buf = appendBytes(buf, p.Content)
	}
	return buf
}

func appendGroups(buf []byte, groups []GroupRef) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(groups)))
	for _, g := range groups {
		buf = appendString(buf, g.Type)
		buf = appendID(buf, g.ID)
		buf = binary.AppendUvarint(buf, g.Seq)
	}
	return buf
}

func appendTime(buf []byte, t time.Time) ([]byte, error) {
	b, err := t.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("core: encoding timestamp: %w", err)
	}
	return appendBytes(buf, b), nil
}

// decoder walks an encoded record, latching the first error; callers
// check err once at the end rather than after every field.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) fail(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
		d.off = len(d.data)
	}
}

func (d *decoder) byte() byte {
	if d.off >= len(d.data) {
		d.fail("truncated at byte field")
		return 0
	}
	b := d.data[d.off]
	d.off++
	return b
}

func (d *decoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) take(n uint64) []byte {
	if n > uint64(len(d.data)-d.off) {
		d.fail("truncated: need %d bytes at offset %d", n, d.off)
		return nil
	}
	b := d.data[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

func (d *decoder) str() string { return string(d.take(d.uvarint())) }

// bytes returns a copy (nil when empty, matching gob's behaviour) so the
// record does not alias the backend's buffer.
func (d *decoder) bytes() []byte {
	b := d.take(d.uvarint())
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}

func (d *decoder) id() ids.ID {
	b := d.take(16)
	var id ids.ID
	if b != nil {
		if err := id.UnmarshalBinary(b); err != nil {
			d.fail("bad id: %v", err)
		}
	}
	return id
}

func (d *decoder) common() (string, ActorID, Interaction, View) {
	localID := d.str()
	asserter := ActorID(d.str())
	in := Interaction{ID: d.id(), Sender: ActorID(d.str()), Receiver: ActorID(d.str()), Operation: d.str()}
	return localID, asserter, in, View(d.byte())
}

func (d *decoder) message() Message {
	m := Message{Name: d.str()}
	n := d.uvarint()
	if d.err != nil {
		return m
	}
	if n > uint64(len(d.data)-d.off) {
		d.fail("implausible part count %d", n)
		return m
	}
	if n > 0 {
		m.Parts = make([]MessagePart, 0, n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Parts = append(m.Parts, MessagePart{
			Name:        d.str(),
			DataID:      d.id(),
			ContentType: d.str(),
			Style:       ContentStyle(d.str()),
			Content:     Bytes(d.bytes()),
		})
	}
	return m
}

func (d *decoder) groups() []GroupRef {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(d.data)-d.off) {
		d.fail("implausible group count %d", n)
		return nil
	}
	out := make([]GroupRef, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, GroupRef{Type: d.str(), ID: d.id(), Seq: d.uvarint()})
	}
	return out
}

func (d *decoder) time() time.Time {
	b := d.take(d.uvarint())
	var t time.Time
	if d.err == nil && len(b) > 0 {
		if err := t.UnmarshalBinary(b); err != nil {
			d.fail("bad timestamp: %v", err)
		}
	}
	return t
}
