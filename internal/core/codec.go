package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// MarshalText implements encoding.TextMarshaler so views serialise by
// name in XML documents.
func (v View) MarshalText() ([]byte, error) {
	if v != SenderView && v != ReceiverView {
		return nil, fmt.Errorf("core: cannot marshal view %d", int(v))
	}
	return []byte(v.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (v *View) UnmarshalText(text []byte) error {
	parsed, err := ParseView(string(text))
	if err != nil {
		return err
	}
	*v = parsed
	return nil
}

// MarshalText implements encoding.TextMarshaler for record kinds.
func (k Kind) MarshalText() ([]byte, error) {
	if k != KindInteraction && k != KindActorState {
		return nil, fmt.Errorf("core: cannot marshal kind %d", int(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *Kind) UnmarshalText(text []byte) error {
	switch string(text) {
	case "interaction":
		*k = KindInteraction
	case "actorState":
		*k = KindActorState
	default:
		return fmt.Errorf("core: unknown kind %q", text)
	}
	return nil
}

// EncodeRecord serialises a record for storage in a backend. The format
// (gob) is internal to a single store; the wire format between actors
// and the store is XML (see internal/soap and internal/prep).
func EncodeRecord(r *Record) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("core: encoding record: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRecord reverses EncodeRecord.
func DecodeRecord(data []byte) (*Record, error) {
	var r Record
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&r); err != nil {
		return nil, fmt.Errorf("core: decoding record: %w", err)
	}
	return &r, nil
}
