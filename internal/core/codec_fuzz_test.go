package core

// Native fuzz target for the hand-rolled record storage codec: whatever
// bytes a torn write, a corrupt segment or a hostile actor hands
// DecodeRecord, it must return an error rather than panic — and
// anything it accepts must re-encode canonically and round-trip.
// CI runs this for a 30s smoke on every push; the seed corpus under
// testdata/fuzz pins the interesting shapes (valid binary encodings of
// both kinds, the legacy gob format, truncations, and flipped bytes).

import (
	"bytes"
	"testing"
	"time"

	"preserv/internal/ids"
)

// fuzzSeedRecords builds one representative record per kind.
func fuzzSeedRecords() []*Record {
	src := &ids.SeqSource{Prefix: 0xFA}
	in := Interaction{ID: src.NewID(), Sender: "svc:enactor", Receiver: "svc:gzip", Operation: "run"}
	ir := NewInteractionRecord(&InteractionPAssertion{
		LocalID:     "e1",
		Asserter:    "svc:enactor",
		Interaction: in,
		View:        SenderView,
		Request:     Message{Name: "invoke", Parts: []MessagePart{{Name: "in", DataID: src.NewID(), ContentType: "text/plain", Content: Bytes("MKVL")}}},
		Response:    Message{Name: "result", Parts: []MessagePart{{Name: "out", DataID: src.NewID()}}},
		Groups:      []GroupRef{{Type: GroupSession, ID: src.NewID(), Seq: 1}},
		Timestamp:   time.Date(2026, 7, 1, 9, 0, 0, 0, time.UTC),
	})
	sr := NewActorStateRecord(&ActorStatePAssertion{
		LocalID:     "s1",
		Asserter:    "svc:gzip",
		Interaction: in,
		View:        ReceiverView,
		StateKind:   StateScript,
		Content:     Bytes("#!/bin/sh\ngzip"),
		Groups:      []GroupRef{{Type: GroupSession, ID: src.NewID(), Seq: 2}},
		Timestamp:   time.Date(2026, 7, 1, 9, 0, 1, 0, time.UTC),
	})
	return []*Record{ir, sr}
}

func FuzzDecodeRecord(f *testing.F) {
	for _, r := range fuzzSeedRecords() {
		enc, err := EncodeRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		f.Add(enc[:len(enc)/2]) // torn tail
		legacy, err := EncodeRecordLegacy(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(legacy)
	}
	f.Add([]byte{})
	f.Add([]byte{0xA5, 'P', 'A', '1'})      // magic only
	f.Add([]byte{0xA5, 'P', 'A', '1', 99})  // unknown kind
	f.Add([]byte("not a record at all"))    // gob fallback path
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRecord(data) // must not panic, whatever data is
		if err != nil {
			return
		}
		// Accepted input: the decoded record must re-encode, and the
		// canonical form must be a fixpoint (decode→encode→decode→encode
		// stabilises) — the property the store's idempotency check
		// (sameRecordBytes) relies on.
		enc, err := EncodeRecord(r)
		if err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		r2, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v", err)
		}
		enc2, err := EncodeRecord(r2)
		if err != nil {
			t.Fatalf("round-tripped record failed to re-encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding is not a fixpoint:\n%x\n%x", enc, enc2)
		}
	})
}
