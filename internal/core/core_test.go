package core

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"preserv/internal/ids"
)

var seq = &ids.SeqSource{Prefix: 0xC0}

func sampleInteraction() Interaction {
	return Interaction{
		ID:        seq.NewID(),
		Sender:    "svc:enactor",
		Receiver:  "svc:gzip",
		Operation: "compress",
	}
}

func sampleInteractionPA() *InteractionPAssertion {
	in := sampleInteraction()
	return &InteractionPAssertion{
		LocalID:     "pa-1",
		Asserter:    in.Sender,
		Interaction: in,
		View:        SenderView,
		Request: Message{
			Name: "invoke",
			Parts: []MessagePart{
				{Name: "sample", DataID: seq.NewID(), ContentType: "text/plain", Content: Bytes("MKVLAT")},
			},
		},
		Response: Message{
			Name: "result",
			Parts: []MessagePart{
				{Name: "compressed", DataID: seq.NewID(), Content: Bytes{0x1f, 0x8b, 0x00}},
			},
		},
		Groups: []GroupRef{
			{Type: GroupSession, ID: seq.NewID(), Seq: 1},
			{Type: GroupThread, ID: seq.NewID(), Seq: 4},
		},
		Timestamp: time.Date(2005, 6, 1, 12, 0, 0, 0, time.UTC),
	}
}

func sampleActorStatePA() *ActorStatePAssertion {
	in := sampleInteraction()
	return &ActorStatePAssertion{
		LocalID:     "as-1",
		Asserter:    in.Receiver,
		Interaction: in,
		View:        ReceiverView,
		StateKind:   StateScript,
		Content:     Bytes("#!/bin/sh\ngzip -9 $1"),
		Groups:      []GroupRef{{Type: GroupSession, ID: seq.NewID(), Seq: 2}},
		Timestamp:   time.Date(2005, 6, 1, 12, 0, 1, 0, time.UTC),
	}
}

func TestValidInteractionPAssertion(t *testing.T) {
	if err := sampleInteractionPA().Validate(); err != nil {
		t.Fatalf("valid assertion rejected: %v", err)
	}
}

func TestValidActorStatePAssertion(t *testing.T) {
	if err := sampleActorStatePA().Validate(); err != nil {
		t.Fatalf("valid assertion rejected: %v", err)
	}
}

func TestInteractionValidationFailures(t *testing.T) {
	mutations := map[string]func(*InteractionPAssertion){
		"empty local id":    func(p *InteractionPAssertion) { p.LocalID = "" },
		"empty asserter":    func(p *InteractionPAssertion) { p.Asserter = "" },
		"nil interaction":   func(p *InteractionPAssertion) { p.Interaction.ID = ids.Nil },
		"no sender":         func(p *InteractionPAssertion) { p.Interaction.Sender = "" },
		"no receiver":       func(p *InteractionPAssertion) { p.Interaction.Receiver = "" },
		"zero view":         func(p *InteractionPAssertion) { p.View = 0 },
		"bogus view":        func(p *InteractionPAssertion) { p.View = View(9) },
		"wrong sender view": func(p *InteractionPAssertion) { p.Asserter = "svc:other" },
		"bad group":         func(p *InteractionPAssertion) { p.Groups = append(p.Groups, GroupRef{Type: "", ID: seq.NewID()}) },
		"bad group id":      func(p *InteractionPAssertion) { p.Groups = append(p.Groups, GroupRef{Type: "session"}) },
	}
	for name, mutate := range mutations {
		p := sampleInteractionPA()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate passed, want error", name)
		}
	}
}

func TestReceiverViewAsserterCheck(t *testing.T) {
	p := sampleActorStatePA()
	p.Asserter = "svc:impostor"
	if err := p.Validate(); err == nil {
		t.Error("receiver view asserted by non-receiver must fail")
	}
}

func TestActorStateRequiresKind(t *testing.T) {
	p := sampleActorStatePA()
	p.StateKind = ""
	if err := p.Validate(); err == nil {
		t.Error("empty state kind must fail")
	}
}

func TestRecordValidate(t *testing.T) {
	good := []*Record{
		NewInteractionRecord(sampleInteractionPA()),
		NewActorStateRecord(sampleActorStatePA()),
	}
	for i, r := range good {
		if err := r.Validate(); err != nil {
			t.Errorf("good record %d rejected: %v", i, err)
		}
	}
	bad := []*Record{
		{},
		{Kind: KindInteraction},
		{Kind: KindActorState},
		{Kind: KindInteraction, Interaction: sampleInteractionPA(), ActorState: sampleActorStatePA()},
		{Kind: Kind(42), Interaction: sampleInteractionPA()},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
}

func TestRecordAccessors(t *testing.T) {
	p := sampleInteractionPA()
	r := NewInteractionRecord(p)
	if r.InteractionID() != p.Interaction.ID {
		t.Error("InteractionID mismatch")
	}
	if r.Asserter() != p.Asserter {
		t.Error("Asserter mismatch")
	}
	if r.View() != SenderView {
		t.Error("View mismatch")
	}
	if r.LocalID() != "pa-1" {
		t.Error("LocalID mismatch")
	}
	if len(r.Groups()) != 2 {
		t.Error("Groups mismatch")
	}
	sid, ok := r.GroupID(GroupSession)
	if !ok || sid != p.Groups[0].ID {
		t.Error("GroupID(session) mismatch")
	}
	if _, ok := r.GroupID("epoch"); ok {
		t.Error("GroupID of absent type should report false")
	}
	var empty Record
	if empty.InteractionID() != ids.Nil || empty.Asserter() != "" || empty.LocalID() != "" {
		t.Error("zero record accessors should return zero values")
	}
}

func TestStorageKeyUniqueAndPrefixed(t *testing.T) {
	p1 := sampleInteractionPA()
	r1 := NewInteractionRecord(p1)
	// Same interaction, receiver view.
	p2 := sampleInteractionPA()
	p2.Interaction = p1.Interaction
	p2.View = ReceiverView
	p2.Asserter = p1.Interaction.Receiver
	r2 := NewInteractionRecord(p2)
	if r1.StorageKey() == r2.StorageKey() {
		t.Error("distinct views must produce distinct keys")
	}
	if !strings.Contains(r1.StorageKey(), p1.Interaction.ID.String()) {
		t.Error("storage key must embed the interaction id")
	}
	as := sampleActorStatePA()
	as.Interaction = p1.Interaction
	as.Asserter = p1.Interaction.Receiver
	r3 := NewActorStateRecord(as)
	if strings.HasPrefix(r3.StorageKey(), "i/") {
		t.Error("actor state keys must use the s/ prefix")
	}
}

func TestViewRoundTrip(t *testing.T) {
	for _, v := range []View{SenderView, ReceiverView} {
		back, err := ParseView(v.String())
		if err != nil || back != v {
			t.Errorf("ParseView(%q) = %v, %v", v.String(), back, err)
		}
	}
	if _, err := ParseView("bystander"); err == nil {
		t.Error("unknown view should fail to parse")
	}
	if _, err := View(3).MarshalText(); err == nil {
		t.Error("marshalling invalid view should fail")
	}
}

func TestKindText(t *testing.T) {
	for _, k := range []Kind{KindInteraction, KindActorState} {
		text, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := back.UnmarshalText(text); err != nil || back != k {
			t.Errorf("kind round trip failed for %v", k)
		}
	}
	var k Kind
	if err := k.UnmarshalText([]byte("nonsense")); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := Kind(9).MarshalText(); err == nil {
		t.Error("marshalling invalid kind should fail")
	}
}

func TestXMLRoundTripInteraction(t *testing.T) {
	r := NewInteractionRecord(sampleInteractionPA())
	data, err := xml.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := xml.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != KindInteraction || back.Interaction == nil {
		t.Fatalf("round trip lost payload: %+v", back)
	}
	got, want := back.Interaction, r.Interaction
	if got.LocalID != want.LocalID || got.Asserter != want.Asserter ||
		got.Interaction != want.Interaction || got.View != want.View {
		t.Errorf("header fields lost: %+v vs %+v", got, want)
	}
	if len(got.Request.Parts) != 1 || !bytes.Equal(got.Request.Parts[0].Content, want.Request.Parts[0].Content) {
		t.Error("request parts lost")
	}
	if got.Request.Parts[0].DataID != want.Request.Parts[0].DataID {
		t.Error("data id lost")
	}
	if len(got.Groups) != 2 || got.Groups[0] != want.Groups[0] {
		t.Error("groups lost")
	}
	if !got.Timestamp.Equal(want.Timestamp) {
		t.Error("timestamp lost")
	}
}

func TestXMLRoundTripActorStateBinaryContent(t *testing.T) {
	p := sampleActorStatePA()
	p.Content = Bytes{0x00, 0x01, 0xFF, 0xFE, '<', '>', '&'}
	r := NewActorStateRecord(p)
	data, err := xml.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := xml.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.ActorState.Content, p.Content) {
		t.Errorf("binary content corrupted: %v vs %v", back.ActorState.Content, p.Content)
	}
}

func TestGobRoundTrip(t *testing.T) {
	for _, r := range []*Record{
		NewInteractionRecord(sampleInteractionPA()),
		NewActorStateRecord(sampleActorStatePA()),
	} {
		data, err := EncodeRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeRecord(data)
		if err != nil {
			t.Fatal(err)
		}
		if back.StorageKey() != r.StorageKey() {
			t.Errorf("storage key changed: %s vs %s", back.StorageKey(), r.StorageKey())
		}
		if err := back.Validate(); err != nil {
			t.Errorf("decoded record invalid: %v", err)
		}
	}
}

func TestDecodeRecordGarbage(t *testing.T) {
	if _, err := DecodeRecord([]byte("not gob at all")); err == nil {
		t.Error("garbage should fail to decode")
	}
}

func TestDocumentContentStyles(t *testing.T) {
	small := []byte("tiny")
	big := bytes.Repeat([]byte("x"), 1000)

	style, content := DocumentContent(small, 100)
	if style != StyleVerbatim || !bytes.Equal(content, small) {
		t.Errorf("small: %q %v", style, content)
	}
	style, content = DocumentContent(big, 100)
	if style != StyleDigest || len(content) != 32 {
		t.Errorf("big: %q %d bytes", style, len(content))
	}
	// Digest is deterministic and discriminating.
	_, d1 := DocumentContent(big, 100)
	_, d2 := DocumentContent(big, 100)
	if !bytes.Equal(d1, d2) {
		t.Error("digest not deterministic")
	}
	_, d3 := DocumentContent(append([]byte("y"), big...), 100)
	if bytes.Equal(d1, d3) {
		t.Error("different values share a digest")
	}
	style, content = DocumentContent(big, 0)
	if style != StyleOmitted || content != nil {
		t.Errorf("omitted: %q %v", style, content)
	}
	style, _ = DocumentContent(nil, 0)
	if style != StyleVerbatim {
		t.Errorf("empty value at max 0: %q, want verbatim", style)
	}
	style, content = DocumentContent(big, -1)
	if style != StyleVerbatim || len(content) != 1000 {
		t.Errorf("unlimited: %q %d", style, len(content))
	}
	// DocumentContent must copy, not alias.
	_, c := DocumentContent(small, 100)
	c[0] = 'X'
	if small[0] != 't' {
		t.Error("DocumentContent aliased its input")
	}
}

// Property: Bytes round-trips through text for arbitrary content.
func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		text, err := Bytes(data).MarshalText()
		if err != nil {
			return false
		}
		var back Bytes
		if err := back.UnmarshalText(text); err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: gob round trip preserves storage keys for randomised records.
func TestQuickGobPreservesKey(t *testing.T) {
	f := func(localID string, content []byte, seqNo uint64) bool {
		if localID == "" {
			localID = "x"
		}
		p := sampleActorStatePA()
		p.LocalID = localID
		p.Content = content
		p.Groups[0].Seq = seqNo
		r := NewActorStateRecord(p)
		data, err := EncodeRecord(r)
		if err != nil {
			return false
		}
		back, err := DecodeRecord(data)
		if err != nil {
			return false
		}
		return back.StorageKey() == r.StorageKey() &&
			bytes.Equal(back.ActorState.Content, content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLegacyGobBlobsStillDecode(t *testing.T) {
	// Stores written before the binary storage codec hold one gob
	// stream per record; DecodeRecord must keep reading them.
	for _, r := range []*Record{
		NewInteractionRecord(sampleInteractionPA()),
		NewActorStateRecord(sampleActorStatePA()),
	} {
		legacy, err := EncodeRecordLegacy(r)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeRecord(legacy)
		if err != nil {
			t.Fatalf("legacy blob failed to decode: %v", err)
		}
		if back.StorageKey() != r.StorageKey() {
			t.Errorf("storage key changed across formats: %s vs %s", back.StorageKey(), r.StorageKey())
		}
		if err := back.Validate(); err != nil {
			t.Errorf("decoded legacy record invalid: %v", err)
		}
		// The two formats must be distinguishable byte-for-byte.
		fresh, err := EncodeRecord(back)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(fresh, legacy) {
			t.Error("new and legacy encodings are identical — format marker missing?")
		}
	}
}

func TestEncodeDeterministicAndStable(t *testing.T) {
	// The store's idempotency check compares bytes: encoding the same
	// record twice, or re-encoding a decoded record, must be identical.
	r := NewInteractionRecord(sampleInteractionPA())
	a, err := EncodeRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("encoding is not deterministic")
	}
	back, err := DecodeRecord(a)
	if err != nil {
		t.Fatal(err)
	}
	c, err := EncodeRecord(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("decode/re-encode is not byte-stable")
	}
}

func TestDecodeRecordTruncated(t *testing.T) {
	r := NewInteractionRecord(sampleInteractionPA())
	data, err := EncodeRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{5, len(data) / 2, len(data) - 1} {
		if _, err := DecodeRecord(data[:cut]); err == nil {
			t.Errorf("truncation at %d decoded without error", cut)
		}
	}
	if _, err := DecodeRecord(append(append([]byte(nil), data...), 0x01)); err == nil {
		t.Error("trailing garbage decoded without error")
	}
}
