package grid

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, 0, 0); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := NewCluster(-2, 0, 0); err == nil {
		t.Error("negative slots accepted")
	}
	c, err := NewCluster(3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Slots() != 3 {
		t.Errorf("Slots = %d", c.Slots())
	}
}

func TestRunJobExecutes(t *testing.T) {
	c := Local(2)
	ran := false
	err := c.RunJob(Job{Name: "j", Run: func() error { ran = true; return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("job did not run")
	}
	if c.Stats().JobsRun != 1 {
		t.Errorf("JobsRun = %d", c.Stats().JobsRun)
	}
}

func TestRunJobNilBody(t *testing.T) {
	c := Local(1)
	if err := c.RunJob(Job{Name: "j"}); !errors.Is(err, ErrNilJob) {
		t.Errorf("err = %v", err)
	}
}

func TestRunJobErrorWrapped(t *testing.T) {
	c := Local(1)
	boom := errors.New("boom")
	err := c.RunJob(Job{Name: "xyz", Run: func() error { return boom }})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestSlotLimitEnforced(t *testing.T) {
	c := Local(2)
	var concurrent, peak atomic.Int32
	jobs := make([]Job, 10)
	for i := range jobs {
		jobs[i] = Job{
			Name: "j",
			Run: func() error {
				cur := concurrent.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				time.Sleep(5 * time.Millisecond)
				concurrent.Add(-1)
				return nil
			},
		}
	}
	if err := c.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 2 {
		t.Errorf("peak concurrency %d exceeded 2 slots", peak.Load())
	}
	if c.Stats().JobsRun != 10 {
		t.Errorf("JobsRun = %d", c.Stats().JobsRun)
	}
}

func TestSubmitPropagatesError(t *testing.T) {
	c := Local(4)
	boom := errors.New("boom")
	jobs := []Job{
		{Name: "ok", Run: func() error { return nil }},
		{Name: "bad", Run: func() error { return boom }},
		{Name: "ok2", Run: func() error { return nil }},
	}
	if err := c.Submit(jobs); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestSchedulingDelayApplied(t *testing.T) {
	c, err := NewCluster(1, 20*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	c.RunJob(Job{Name: "j", Run: func() error { return nil }})
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("job finished in %v, scheduling delay not applied", elapsed)
	}
	if c.Stats().SchedulingTime < 20*time.Millisecond {
		t.Errorf("SchedulingTime = %v", c.Stats().SchedulingTime)
	}
}

func TestTransferCostApplied(t *testing.T) {
	// 1 MB at 10 MB/s = 100 ms.
	c, err := NewCluster(1, 0, 10<<20)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	c.RunJob(Job{Name: "j", StageInBytes: 1 << 20, Run: func() error { return nil }})
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Errorf("transfer cost not applied: %v", elapsed)
	}
	if c.Stats().TransferTime == 0 {
		t.Error("TransferTime not accounted")
	}
}

func TestZeroTransferRateFree(t *testing.T) {
	c := Local(1)
	start := time.Now()
	c.RunJob(Job{Name: "j", StageInBytes: 1 << 30, Run: func() error { return nil }})
	if time.Since(start) > 100*time.Millisecond {
		t.Error("transfer should be free with rate 0")
	}
}

func TestOverheadFraction(t *testing.T) {
	s := Stats{
		SchedulingTime: 20 * time.Millisecond,
		TransferTime:   30 * time.Millisecond,
		BusyTime:       50 * time.Millisecond,
	}
	if got := s.OverheadFraction(); got != 0.5 {
		t.Errorf("OverheadFraction = %v, want 0.5", got)
	}
	if (Stats{}).OverheadFraction() != 0 {
		t.Error("empty stats should report 0 overhead")
	}
}

func TestGranularityReducesOverheadFraction(t *testing.T) {
	// E7's core claim in miniature: batching more work per job lowers
	// the scheduling-overhead fraction.
	work := func(n int) func() error {
		return func() error {
			time.Sleep(time.Duration(n) * time.Millisecond)
			return nil
		}
	}
	fine, _ := NewCluster(1, 5*time.Millisecond, 0)
	for i := 0; i < 8; i++ {
		fine.RunJob(Job{Name: "fine", Run: work(2)})
	}
	coarse, _ := NewCluster(1, 5*time.Millisecond, 0)
	coarse.RunJob(Job{Name: "coarse", Run: work(16)})

	if fine.Stats().OverheadFraction() <= coarse.Stats().OverheadFraction() {
		t.Errorf("fine granularity overhead %.3f should exceed coarse %.3f",
			fine.Stats().OverheadFraction(), coarse.Stats().OverheadFraction())
	}
}

func TestLocalClampsSlots(t *testing.T) {
	c := Local(0)
	if c.Slots() != 1 {
		t.Errorf("Local(0).Slots = %d, want 1", c.Slots())
	}
}
