// Package grid simulates the Condor-style batch execution environment
// the paper runs on (VDT scheduling jobs over a cluster): a fixed number
// of execution slots, a per-job scheduling latency, and a stage-in file
// transfer cost. The paper's central operational observation — recording
// overhead is acceptable when activity granularity is coarse enough to
// offset "the overhead of grid scheduling and file transfer" — is
// exactly the trade-off this package makes reproducible (experiment E7).
package grid

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Cluster models the execution substrate. The zero value is invalid;
// use NewCluster.
type Cluster struct {
	slots chan struct{}
	// SchedulingDelay is the queue-to-start latency per job (Condor
	// matchmaking, in the paper's deployment).
	SchedulingDelay time.Duration
	// TransferBytesPerSec is the stage-in bandwidth; 0 disables transfer
	// cost modelling.
	TransferBytesPerSec float64

	jobsRun      atomic.Int64
	schedNanos   atomic.Int64
	transferNano atomic.Int64
	busyNanos    atomic.Int64
}

// NewCluster returns a cluster with the given number of parallel slots.
func NewCluster(slots int, schedulingDelay time.Duration, transferBytesPerSec float64) (*Cluster, error) {
	if slots < 1 {
		return nil, fmt.Errorf("grid: need at least one slot, got %d", slots)
	}
	c := &Cluster{
		slots:               make(chan struct{}, slots),
		SchedulingDelay:     schedulingDelay,
		TransferBytesPerSec: transferBytesPerSec,
	}
	for i := 0; i < slots; i++ {
		c.slots <- struct{}{}
	}
	return c, nil
}

// Slots returns the cluster's degree of parallelism.
func (c *Cluster) Slots() int { return cap(c.slots) }

// Job is one schedulable unit.
type Job struct {
	// Name identifies the job in errors and stats.
	Name string
	// StageInBytes is the data shipped to the execution site.
	StageInBytes int
	// Run is the job body.
	Run func() error
}

// ErrNilJob is returned for jobs without a body.
var ErrNilJob = errors.New("grid: job has no Run function")

// RunJob schedules one job: it waits for a free slot, pays the
// scheduling and transfer latencies, runs the body and frees the slot.
func (c *Cluster) RunJob(job Job) error {
	if job.Run == nil {
		return fmt.Errorf("%w: %s", ErrNilJob, job.Name)
	}
	<-c.slots
	defer func() { c.slots <- struct{}{} }()

	if c.SchedulingDelay > 0 {
		time.Sleep(c.SchedulingDelay)
		c.schedNanos.Add(int64(c.SchedulingDelay))
	}
	if c.TransferBytesPerSec > 0 && job.StageInBytes > 0 {
		d := time.Duration(float64(job.StageInBytes) / c.TransferBytesPerSec * float64(time.Second))
		time.Sleep(d)
		c.transferNano.Add(int64(d))
	}
	start := time.Now()
	err := job.Run()
	c.busyNanos.Add(int64(time.Since(start)))
	c.jobsRun.Add(1)
	if err != nil {
		return fmt.Errorf("grid: job %s: %w", job.Name, err)
	}
	return nil
}

// Submit runs all jobs, using up to Slots at a time, and returns the
// first error encountered (all jobs still run to completion).
func (c *Cluster) Submit(jobs []Job) error {
	var wg sync.WaitGroup
	errs := make([]error, len(jobs))
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.RunJob(jobs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats summarises cluster activity since creation.
type Stats struct {
	JobsRun        int64
	SchedulingTime time.Duration
	TransferTime   time.Duration
	BusyTime       time.Duration
}

// Stats returns a snapshot of cluster counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		JobsRun:        c.jobsRun.Load(),
		SchedulingTime: time.Duration(c.schedNanos.Load()),
		TransferTime:   time.Duration(c.transferNano.Load()),
		BusyTime:       time.Duration(c.busyNanos.Load()),
	}
}

// OverheadFraction reports the fraction of total job wall time spent on
// scheduling and transfer rather than computation — the quantity the
// paper's granularity argument is about.
func (s Stats) OverheadFraction() float64 {
	total := s.SchedulingTime + s.TransferTime + s.BusyTime
	if total == 0 {
		return 0
	}
	return float64(s.SchedulingTime+s.TransferTime) / float64(total)
}

// Local returns a cluster approximating local in-process execution:
// as many slots as requested (minimum one), no scheduling or transfer
// cost. Useful in tests and for the "no grid" baseline.
func Local(slots int) *Cluster {
	if slots < 1 {
		slots = 1
	}
	c, err := NewCluster(slots, 0, 0)
	if err != nil {
		panic(err) // unreachable: slots clamped above
	}
	return c
}
