package preserv

// Tests for the deletion/compaction wire actions: urn:prep:delete (by
// storage key and by session), urn:prep:compact, garbage-ratio-
// scheduled compaction after deletes, and the lifecycle telemetry in
// Stats.

import (
	"testing"

	"preserv/internal/core"
	"preserv/internal/prep"
	"preserv/internal/store"
)

// startKVServer serves a kvdb-backed store, the flavour whose garbage
// ratio moves when records are deleted.
func startKVServer(t *testing.T) (*Client, *Service) {
	t.Helper()
	b, err := store.NewKVBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(store.New(b))
	srv, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); b.Close() })
	return NewClient(srv.URL, nil), svc
}

func TestDeleteRecordOverHTTP(t *testing.T) {
	client, svc := startServer(t)
	session := seq.NewID()
	r1 := mkRecord(session, "svc:gzip")
	r2 := mkRecord(session, "svc:ppmz")
	if _, err := client.Record("svc:enactor", []core.Record{r1, r2}); err != nil {
		t.Fatal(err)
	}
	resp, err := client.DeleteRecord(r1.StorageKey())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Deleted != 1 {
		t.Fatalf("Deleted = %d", resp.Deleted)
	}
	// Retraction is idempotent: a second delete of the same key is a
	// no-op, not an error.
	resp, err = client.DeleteRecord(r1.StorageKey())
	if err != nil || resp.Deleted != 0 {
		t.Fatalf("re-delete: %+v, %v", resp, err)
	}
	// Both read paths agree.
	recs, total, err := client.Query(&prep.Query{SessionID: session})
	if err != nil || total != 1 || len(recs) != 1 || recs[0].StorageKey() != r2.StorageKey() {
		t.Fatalf("scan after delete: %d/%d, %v", len(recs), total, err)
	}
	precs, ptotal, _, err := client.QueryPlanned(&prep.Query{SessionID: session})
	if err != nil || ptotal != 1 || len(precs) != 1 || precs[0].StorageKey() != r2.StorageKey() {
		t.Fatalf("planned query after delete: %d/%d, %v", len(precs), ptotal, err)
	}
	stats := svc.Stats()
	if stats.DeleteRequests != 2 || stats.RecordsDeleted != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestDeleteSessionOverHTTP(t *testing.T) {
	client, _ := startServer(t)
	keep, doomed := seq.NewID(), seq.NewID()
	var recs []core.Record
	for i := 0; i < 3; i++ {
		recs = append(recs, mkRecord(keep, "svc:gzip"), mkRecord(doomed, "svc:ppmz"))
	}
	if _, err := client.Record("svc:enactor", recs); err != nil {
		t.Fatal(err)
	}
	resp, err := client.DeleteSession(doomed)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Deleted != 3 {
		t.Fatalf("Deleted = %d", resp.Deleted)
	}
	sessions, err := client.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sessions {
		if s == doomed {
			t.Error("deleted session still listed")
		}
	}
	if _, total, err := client.Query(&prep.Query{SessionID: keep}); err != nil || total != 3 {
		t.Fatalf("kept session: total=%d err=%v", total, err)
	}
}

func TestDeleteRequestValidation(t *testing.T) {
	client, _ := startServer(t)
	if _, err := client.delete(&prep.DeleteRequest{}); err == nil {
		t.Error("empty delete request accepted")
	}
	if _, err := client.delete(&prep.DeleteRequest{StorageKey: "i/x/1", SessionID: seq.NewID()}); err == nil {
		t.Error("over-specified delete request accepted")
	}
}

func TestCompactActionReclaimsGarbage(t *testing.T) {
	client, svc := startKVServer(t)
	session := seq.NewID()
	var recs []core.Record
	for i := 0; i < 6; i++ {
		recs = append(recs, mkRecord(session, "svc:gzip"))
	}
	if _, err := client.Record("svc:enactor", recs); err != nil {
		t.Fatal(err)
	}
	// Disable auto compaction so the explicit action is what reclaims.
	svc.SetCompactRatio(-1)
	if _, err := client.DeleteSession(session); err != nil {
		t.Fatal(err)
	}
	if svc.Stats().GarbageRatio <= 0 {
		t.Fatal("deletes left no measurable garbage")
	}
	resp, err := client.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if resp.GarbageBefore <= 0 || resp.GarbageAfter != 0 {
		t.Fatalf("compact response: %+v", resp)
	}
	stats := svc.Stats()
	if stats.Compactions != 1 || stats.GarbageRatio != 0 || stats.Tombstones != 0 {
		t.Errorf("stats after compact: %+v", stats)
	}
}

func TestScheduledCompactionTriggersOnGarbageRatio(t *testing.T) {
	client, svc := startKVServer(t)
	session := seq.NewID()
	var recs []core.Record
	for i := 0; i < 6; i++ {
		recs = append(recs, mkRecord(session, "svc:gzip"))
	}
	if _, err := client.Record("svc:enactor", recs); err != nil {
		t.Fatal(err)
	}
	// Any garbage at all crosses this threshold, so the session delete
	// must come back already compacted.
	svc.SetCompactRatio(0.01)
	resp, err := client.DeleteSession(session)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Compacted {
		t.Fatal("delete did not trigger scheduled compaction")
	}
	if resp.GarbageRatio != 0 {
		t.Fatalf("garbage ratio after scheduled compaction = %v", resp.GarbageRatio)
	}
	if svc.Stats().Compactions != 1 {
		t.Errorf("compactions = %d", svc.Stats().Compactions)
	}
}
