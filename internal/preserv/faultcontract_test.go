package preserv

// Regression pins for the wire error contract provlint's typedfault
// analyzer enforces statically: the shard cursor sentinels must stay
// errors.Is-matchable through the full client → server → client round
// trip. The server folds them into bad-request faults whose message
// carries the sentinel text, and Client.QueryPage re-types the fault —
// if either side drops its half of the contract, callers are back to
// string matching and QueryStream's restart logic goes blind.

import (
	"errors"
	"testing"

	"preserv/internal/prep"
	"preserv/internal/shard"
)

func TestStaleCursorErrorsIsAcrossRoundTrip(t *testing.T) {
	client, _, rt := startShardedServer(t, 3)
	recordShardSessions(t, client, 6, 4)

	q := &prep.Query{}
	first, err := client.QueryPage(q, "", 5)
	if err != nil || first.Done || first.Next == "" {
		t.Fatalf("first page: %+v err=%v", first, err)
	}
	if _, err := rt.Drain(1); err != nil {
		t.Fatal(err)
	}
	_, err = client.QueryPage(q, first.Next, 5)
	if !errors.Is(err, shard.ErrStaleCursor) {
		t.Fatalf("stale cursor over the wire: errors.Is(err, ErrStaleCursor)=false, err=%v", err)
	}
	if errors.Is(err, shard.ErrBadCursor) {
		t.Fatalf("stale cursor mis-typed as ErrBadCursor too: %v", err)
	}
}

func TestBadCursorErrorsIsAcrossRoundTrip(t *testing.T) {
	client, _, _ := startShardedServer(t, 3)
	recordShardSessions(t, client, 4, 3)

	// A cursor that claims to be composite ("sc1!" tag) but cannot be
	// decoded: wrong shard count, no fingerprint field.
	_, err := client.QueryPage(&prep.Query{}, "sc1!garbage", 5)
	if !errors.Is(err, shard.ErrBadCursor) {
		t.Fatalf("malformed cursor over the wire: errors.Is(err, ErrBadCursor)=false, err=%v", err)
	}
	if errors.Is(err, shard.ErrStaleCursor) {
		t.Fatalf("malformed cursor mis-typed as ErrStaleCursor too: %v", err)
	}
}
