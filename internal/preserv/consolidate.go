package preserv

import (
	"fmt"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
)

// Sessions lists the distinct session identifiers recorded in a store,
// sorted; sessions are the unit a scientist navigates by ("a workflow
// run is usually referred to as a session"). It is answered from the
// store's session index — the distinct index terms — without fetching a
// single record. The index covers session references on every record
// kind, so a session documented only by actor-state p-assertions is
// listed too (earlier versions derived the list from interaction
// records alone and would have missed it).
func Sessions(c *Client) ([]ids.ID, error) {
	return c.Sessions()
}

// Consolidate copies every record from the source stores into dst —
// the facility the paper's future-work section calls for alongside
// distributed PReServ ("a facility is also required to consolidate data
// into a single provenance store"). Records are deduplicated by storage
// key (the store layer is idempotent for identical records), and each
// batch is submitted under its own asserter, preserving the
// who-asserted-what integrity check.
//
// It returns the number of records accepted by dst.
func Consolidate(dst *Client, sources ...*Client) (int, error) {
	const batchSize = 200
	total := 0
	for i, src := range sources {
		records, _, err := src.Query(&prep.Query{})
		if err != nil {
			return total, fmt.Errorf("preserv: consolidating source %d: %w", i, err)
		}
		// Group by asserter: RecordRequests carry one asserter each.
		byAsserter := make(map[core.ActorID][]core.Record)
		for _, r := range records {
			byAsserter[r.Asserter()] = append(byAsserter[r.Asserter()], r)
		}
		for asserter, recs := range byAsserter {
			for off := 0; off < len(recs); off += batchSize {
				end := off + batchSize
				if end > len(recs) {
					end = len(recs)
				}
				resp, err := dst.Record(asserter, recs[off:end])
				if err != nil {
					return total, fmt.Errorf("preserv: consolidating into %s: %w", dst.URL(), err)
				}
				if len(resp.Rejects) > 0 {
					return total, fmt.Errorf("preserv: consolidation rejected %d records, first: %s",
						len(resp.Rejects), resp.Rejects[0].Reason)
				}
				total += resp.Accepted
			}
		}
	}
	return total, nil
}
