package preserv

// Tests for the sharded service mode: a NewShardedService front-end
// over embedded child stores, and over remote PReServ endpoints via
// RemoteShard — the full wire surface (record, scanned/planned/paged
// queries, sessions, delete, compact, stats) answered across shards.

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
	"preserv/internal/shard"
	"preserv/internal/soap"
	"preserv/internal/store"
)

// startShardedServer serves a sharded service over n embedded memory
// child stores and returns a client, the service and the router.
func startShardedServer(t *testing.T, n int) (*Client, *Service, *shard.Router) {
	t.Helper()
	children := make([]shard.Shard, n)
	for i := range children {
		children[i] = shard.NewLocal(store.New(store.NewMemoryBackend()))
	}
	rt, err := shard.NewRouter(children...)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewShardedService(rt)
	srv, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return NewClient(srv.URL, nil), svc, rt
}

// recordShardSessions records perSession records into each of n fresh
// sessions through the client and returns the session ids.
func recordShardSessions(t *testing.T, client *Client, sessions, perSession int) []ids.ID {
	t.Helper()
	out := make([]ids.ID, 0, sessions)
	for i := 0; i < sessions; i++ {
		sid := seq.NewID()
		out = append(out, sid)
		recs := make([]core.Record, 0, perSession)
		for j := 0; j < perSession; j++ {
			recs = append(recs, mkRecord(sid, core.ActorID(fmt.Sprintf("svc:stage-%d", j%2))))
		}
		resp, err := client.Record("svc:enactor", recs)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Accepted != perSession || len(resp.Rejects) != 0 {
			t.Fatalf("session %d: accepted %d/%d, rejects %v", i, resp.Accepted, perSession, resp.Rejects)
		}
	}
	return out
}

func TestShardedServiceEndToEnd(t *testing.T) {
	client, svc, rt := startShardedServer(t, 3)
	sids := recordShardSessions(t, client, 8, 5)

	// Count sums the shards.
	cnt, err := client.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Records != 40 {
		t.Fatalf("count %d, want 40", cnt.Records)
	}

	// Sessions union across shards.
	sessions, err := client.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != len(sids) {
		t.Fatalf("sessions %d, want %d", len(sessions), len(sids))
	}

	// Scan, planned and paged answers agree over the wire.
	want, wantTotal, err := client.Query(&prep.Query{SessionID: sids[0]})
	if err != nil {
		t.Fatal(err)
	}
	if wantTotal != 5 {
		t.Fatalf("session query total %d, want 5", wantTotal)
	}
	got, gotTotal, plan, err := client.QueryPlanned(&prep.Query{SessionID: sids[0]})
	if err != nil {
		t.Fatal(err)
	}
	if gotTotal != wantTotal || len(got) != len(want) {
		t.Fatalf("planned %d/%d vs scan %d/%d", len(got), gotTotal, len(want), wantTotal)
	}
	if plan == nil || plan.Strategy == "" {
		t.Fatal("merged plan missing over the wire")
	}
	var streamed []core.Record
	if _, err := client.QueryStream(&prep.Query{}, 7, func(r *core.Record) error {
		streamed = append(streamed, *r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != 40 {
		t.Fatalf("streamed %d records, want 40", len(streamed))
	}
	for i := 1; i < len(streamed); i++ {
		if streamed[i-1].StorageKey() >= streamed[i].StorageKey() {
			t.Fatal("stream not in storage-key order")
		}
	}

	// The records really are sharded: more than one child holds data.
	populated := 0
	for i := 0; i < rt.NumShards(); i++ {
		c, err := rt.Shard(i).Count()
		if err != nil {
			t.Fatal(err)
		}
		if c.Records > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("only %d shard(s) populated — not sharded", populated)
	}

	// Deletion fans out; stats report the sharded topology.
	dresp, err := client.DeleteSession(sids[1])
	if err != nil {
		t.Fatal(err)
	}
	if dresp.Deleted != 5 {
		t.Fatalf("deleted %d, want 5", dresp.Deleted)
	}
	if _, err := client.Compact(); err != nil {
		t.Fatal(err)
	}
	stats := svc.Stats()
	if stats.Shards != 3 {
		t.Fatalf("stats.Shards = %d, want 3", stats.Shards)
	}
	if stats.RecordsAccepted != 40 || stats.RecordsDeleted != 5 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.QueryIndexPlans == 0 {
		t.Fatal("aggregated engine stats report no index plans")
	}
}

func TestShardedServiceOverRemoteEndpoints(t *testing.T) {
	// Two plain single-store servers...
	var children []shard.Shard
	var backends []*Service
	for i := 0; i < 2; i++ {
		child, svc := startServer(t)
		children = append(children, NewRemoteShard(child))
		backends = append(backends, svc)
	}
	// ...fronted by a sharded service — the distributed PReServ.
	rt, err := shard.NewRouter(children...)
	if err != nil {
		t.Fatal(err)
	}
	front, err := Serve(NewShardedService(rt), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { front.Close() })
	client := NewClient(front.URL, nil)

	sids := recordShardSessions(t, client, 6, 4)

	// Every session lives wholly on its affinity endpoint.
	for _, sid := range sids {
		home := shard.AffinityIndex(sid.String(), 2)
		for b, svc := range backends {
			recs, _, err := svc.Provenance().Query(&prep.Query{SessionID: sid})
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			if b == home {
				want = 4
			}
			if len(recs) != want {
				t.Fatalf("backend %d holds %d records of session %s, want %d", b, len(recs), sid, want)
			}
		}
	}

	// The front answers across both endpoints.
	cnt, err := client.Count()
	if err != nil || cnt.Records != 24 {
		t.Fatalf("front count %d err=%v, want 24", cnt.Records, err)
	}
	recs, total, err := client.Query(&prep.Query{Asserter: "svc:enactor"})
	if err != nil || total != 24 || len(recs) != 24 {
		t.Fatalf("front query %d/%d err=%v", len(recs), total, err)
	}

	// Deleting one record by key reaches the right endpoint via fan-out.
	dresp, err := client.DeleteRecord(recs[0].StorageKey())
	if err != nil || dresp.Deleted != 1 {
		t.Fatalf("front delete: %+v err=%v", dresp, err)
	}
	if cnt, _ := client.Count(); cnt.Records != 23 {
		t.Fatalf("count after delete %d, want 23", cnt.Records)
	}
}

// TestSetCompactRatioRaceUnderConcurrentDeletes is the regression test
// for the CompactRatio data race: the threshold is retuned while delete
// requests (which read it in maybeCompact) are in flight. Run under
// -race this flagged the old plain-float64 field.
func TestSetCompactRatioRaceUnderConcurrentDeletes(t *testing.T) {
	client, svc := startKVServer(t)

	// A pile of single-record sessions to delete concurrently.
	const n = 24
	keys := make([]string, 0, n)
	for i := 0; i < n; i++ {
		r := mkRecord(seq.NewID(), "svc:gzip")
		if _, err := client.Record("svc:enactor", []core.Record{r}); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, r.StorageKey())
	}

	var wg sync.WaitGroup
	errs := make(chan error, n+1)
	// One goroutine retunes the threshold continuously...
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			svc.SetCompactRatio(float64(i%10) / 10)
		}
		svc.SetCompactRatio(-1)
	}()
	// ...while deletes stream in and read it per request.
	for _, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			if _, err := client.DeleteRecord(k); err != nil {
				errs <- err
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := svc.Stats().RecordsDeleted; got != n {
		t.Fatalf("deleted %d, want %d", got, n)
	}
}

// TestShardedPageBadCursorFaultsBadRequest pins the wire mapping for an
// undecodable composite cursor (stale across a topology resize, or
// corrupted): it is client input, faulted as bad-request by the server
// and re-typed by the client into shard.ErrBadCursor — so callers
// distinguish it from an internal server error with errors.Is, never
// by string matching (faultcontract_test.go pins the same for
// ErrStaleCursor).
func TestShardedPageBadCursorFaultsBadRequest(t *testing.T) {
	client, _, _ := startShardedServer(t, 2)
	_, err := client.QueryPage(&prep.Query{}, "sc1!3!a!b!c", 10)
	if err == nil {
		t.Fatal("mismatched composite cursor should fault")
	}
	if !errors.Is(err, shard.ErrBadCursor) {
		t.Fatalf("err = %v, want errors.Is(err, shard.ErrBadCursor)", err)
	}
}

// TestDeleteRecordsBatchedOverWire pins the batched retraction form: a
// whole key batch deletes in one request (the round trip a drain pays
// per moved page on a remote shard), spanning shards, idempotently.
func TestDeleteRecordsBatchedOverWire(t *testing.T) {
	client, _, _ := startShardedServer(t, 2)
	recordShardSessions(t, client, 3, 4)
	recs, total, err := client.Query(&prep.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if total != 12 {
		t.Fatalf("recorded %d records, want 12", total)
	}
	keys := make([]string, 0, 5)
	for i := range recs[:5] {
		keys = append(keys, recs[i].StorageKey())
	}
	resp, err := client.DeleteRecords(keys)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Deleted != 5 {
		t.Fatalf("batched delete removed %d, want 5", resp.Deleted)
	}
	// Retraction is idempotent: the same batch again deletes nothing.
	resp, err = client.DeleteRecords(keys)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Deleted != 0 {
		t.Fatalf("re-delete removed %d, want 0", resp.Deleted)
	}
	if _, total, err = client.Query(&prep.Query{}); err != nil || total != 7 {
		t.Fatalf("after batched delete: total %d err %v, want 7", total, err)
	}
	// An empty key inside the batch is client input and must fault as
	// bad-request. The Go client's marshaller drops empty <key>
	// elements, so post the malformed envelope raw — the form only a
	// handcrafted request can take.
	env := soap.Envelope{
		Header: soap.Header{Action: prep.ActionDelete, MessageID: ids.New()},
		Body:   soap.Body{Inner: []byte(`<DeleteRequest><storageKeys><key></key><key>i/x</key></storageKeys></DeleteRequest>`)},
	}
	data, err := xml.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	hresp, err := http.Post(client.URL(), soap.ContentType, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	reply, err := io.ReadAll(hresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_, body, err := soap.Unmarshal(reply)
	if err != nil {
		t.Fatal(err)
	}
	fault, ok := soap.AsFault(body)
	if !ok || fault.Code != soap.FaultBadRequest {
		t.Fatalf("empty key in batch: reply %s, want bad-request fault", body)
	}
}
