package preserv

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
	"preserv/internal/store"
)

var seq = &ids.SeqSource{Prefix: 0xEE}

func startServer(t *testing.T) (*Client, *Service) {
	t.Helper()
	svc := NewService(store.New(store.NewMemoryBackend()))
	srv, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return NewClient(srv.URL, nil), svc
}

func mkRecord(session ids.ID, receiver core.ActorID) core.Record {
	in := core.Interaction{ID: seq.NewID(), Sender: "svc:enactor", Receiver: receiver, Operation: "run"}
	return *core.NewInteractionRecord(&core.InteractionPAssertion{
		LocalID:     "x",
		Asserter:    in.Sender,
		Interaction: in,
		View:        core.SenderView,
		Request: core.Message{Name: "invoke", Parts: []core.MessagePart{
			{Name: "sample", DataID: seq.NewID(), Content: core.Bytes("MKVL")},
		}},
		Response:  core.Message{Name: "result"},
		Groups:    []core.GroupRef{{Type: core.GroupSession, ID: session, Seq: 1}},
		Timestamp: time.Now().UTC(),
	})
}

func mkScriptRecord(inter core.Interaction, session ids.ID, script string) core.Record {
	return *core.NewActorStateRecord(&core.ActorStatePAssertion{
		LocalID:     "scr",
		Asserter:    inter.Receiver,
		Interaction: inter,
		View:        core.ReceiverView,
		StateKind:   core.StateScript,
		Content:     core.Bytes(script),
		Groups:      []core.GroupRef{{Type: core.GroupSession, ID: session, Seq: 1}},
		Timestamp:   time.Now().UTC(),
	})
}

func TestRecordAndQueryOverHTTP(t *testing.T) {
	client, _ := startServer(t)
	session := seq.NewID()
	r := mkRecord(session, "svc:gzip")
	resp, err := client.Record("svc:enactor", []core.Record{r})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 || len(resp.Rejects) != 0 {
		t.Fatalf("record response: %+v", resp)
	}
	recs, total, err := client.Query(&prep.Query{SessionID: session})
	if err != nil {
		t.Fatal(err)
	}
	if total != 1 || len(recs) != 1 {
		t.Fatalf("query: %d/%d", len(recs), total)
	}
	got := recs[0]
	if got.StorageKey() != r.StorageKey() {
		t.Errorf("round-tripped record key %s != %s", got.StorageKey(), r.StorageKey())
	}
	if string(got.Interaction.Request.Parts[0].Content) != "MKVL" {
		t.Errorf("content lost: %q", got.Interaction.Request.Parts[0].Content)
	}
}

func TestCountOverHTTP(t *testing.T) {
	client, _ := startServer(t)
	session := seq.NewID()
	r := mkRecord(session, "svc:gzip")
	scr := mkScriptRecord(r.Interaction.Interaction, session, "#!x")
	if _, err := client.Record("svc:enactor", []core.Record{r}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Record("svc:gzip", []core.Record{scr}); err != nil {
		t.Fatal(err)
	}
	cnt, err := client.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Interactions != 1 || cnt.ActorStates != 1 || cnt.Records != 2 {
		t.Fatalf("count = %+v", cnt)
	}
}

func TestRejectsSurfaceOverHTTP(t *testing.T) {
	client, _ := startServer(t)
	session := seq.NewID()
	bad := mkRecord(session, "svc:gzip")
	bad.Interaction.LocalID = "" // invalid
	resp, err := client.Record("svc:enactor", []core.Record{bad})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 0 || len(resp.Rejects) != 1 {
		t.Fatalf("response: %+v", resp)
	}
	if !strings.Contains(resp.Rejects[0].Reason, "local id") {
		t.Errorf("reject reason = %q", resp.Rejects[0].Reason)
	}
}

func TestServiceStats(t *testing.T) {
	client, svc := startServer(t)
	session := seq.NewID()
	client.Record("svc:enactor", []core.Record{mkRecord(session, "svc:gzip")})
	client.Query(&prep.Query{SessionID: session})
	client.Count()
	st := svc.Stats()
	if st.RecordRequests != 1 || st.RecordsAccepted != 1 || st.QueryRequests != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueryInvalidFaults(t *testing.T) {
	client, _ := startServer(t)
	_, _, err := client.Query(&prep.Query{Kind: "bogus"})
	if err == nil {
		t.Fatal("invalid query should fault")
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", nil)
	if _, err := c.Record("a", nil); err == nil {
		t.Error("record against dead server should fail")
	}
	if _, _, err := c.Query(&prep.Query{}); err == nil {
		t.Error("query against dead server should fail")
	}
	if _, err := c.Count(); err == nil {
		t.Error("count against dead server should fail")
	}
}

func TestConcurrentRecording(t *testing.T) {
	// The paper's scalability concern: parallel submissions into one
	// store instance must not lose records.
	client, _ := startServer(t)
	session := seq.NewID()
	const goroutines = 8
	const perG = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r := mkRecord(session, "svc:gzip")
				if _, err := client.Record("svc:enactor", []core.Record{r}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cnt, err := client.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Interactions != goroutines*perG {
		t.Fatalf("stored %d interactions, want %d", cnt.Interactions, goroutines*perG)
	}
}

func TestBatchRecording(t *testing.T) {
	client, _ := startServer(t)
	session := seq.NewID()
	var batch []core.Record
	for i := 0; i < 120; i++ {
		batch = append(batch, mkRecord(session, core.ActorID(fmt.Sprintf("svc:s%d", i%5))))
	}
	resp, err := client.Record("svc:enactor", batch)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 120 {
		t.Fatalf("accepted %d of 120", resp.Accepted)
	}
	_, total, err := client.Query(&prep.Query{Service: "svc:s0"})
	if err != nil {
		t.Fatal(err)
	}
	if total != 24 {
		t.Fatalf("service filter total = %d, want 24", total)
	}
}

func TestKVBackedServiceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	kb, err := store.NewKVBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(store.New(kb))
	srv, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(srv.URL, nil)
	session := seq.NewID()
	if _, err := client.Record("svc:enactor", []core.Record{mkRecord(session, "svc:gzip")}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	svc.Store.Close()

	// Reopen: the record must still be there (persistent provenance
	// "beyond the life of a Grid application").
	kb2, err := store.NewKVBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := NewService(store.New(kb2))
	defer svc2.Store.Close()
	srv2, err := Serve(svc2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cnt, err := NewClient(srv2.URL, nil).Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Interactions != 1 {
		t.Fatalf("persistent store lost the record: %+v", cnt)
	}
}

func TestServeBadAddress(t *testing.T) {
	svc := NewService(store.New(store.NewMemoryBackend()))
	if _, err := Serve(svc, "256.0.0.1:99999"); err == nil {
		t.Error("bad address should fail")
	}
}

func TestStatsSurfaceQueryCacheCounters(t *testing.T) {
	client, svc := startServer(t)
	session := seq.NewID()
	if _, err := client.Record("svc:enactor", []core.Record{mkRecord(session, "svc:gzip")}); err != nil {
		t.Fatal(err)
	}
	q := &prep.Query{SessionID: session}
	if _, _, _, err := client.QueryPlanned(q); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.QueryCacheMisses == 0 || st.QueryCacheHits != 0 {
		t.Fatalf("after cold query: hits=%d misses=%d, want a miss and no hit", st.QueryCacheHits, st.QueryCacheMisses)
	}
	if _, _, plan, err := client.QueryPlanned(q); err != nil || !plan.Cached {
		t.Fatalf("second query: cached=%v err=%v", plan != nil && plan.Cached, err)
	}
	st = svc.Stats()
	if st.QueryCacheHits != 1 {
		t.Fatalf("after warm query: hits=%d misses=%d, want exactly 1 hit", st.QueryCacheHits, st.QueryCacheMisses)
	}
}

// slowServer starts a Server whose handler blocks until release is
// closed — the in-flight request Close must drain (or cut off).
func slowServer(t *testing.T, started chan<- struct{}, release <-chan struct{}) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() { close(started) })
		select {
		case <-release:
			fmt.Fprint(w, "drained")
		case <-time.After(5 * time.Second):
		}
	})
	srv := &Server{
		URL:     "http://" + ln.Addr().String(),
		ln:      ln,
		httpSrv: &http.Server{Handler: h},
		done:    make(chan struct{}),
	}
	go func() {
		defer close(srv.done)
		_ = srv.httpSrv.Serve(ln)
	}()
	return srv
}

func TestCloseDrainsInFlightRequests(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	srv := slowServer(t, started, release)

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get(srv.URL)
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- result{body: string(body), err: err}
	}()
	<-started

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	// Close must wait for the in-flight response, not kill it: give the
	// shutdown a moment to start draining, then let the handler finish.
	select {
	case err := <-closed:
		t.Fatalf("Close returned %v while a request was still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close after drain: %v", err)
	}
	r := <-got
	if r.err != nil || r.body != "drained" {
		t.Fatalf("in-flight request: body=%q err=%v, want drained response", r.body, r.err)
	}
}

func TestCloseDrainTimeoutCutsStragglers(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	srv := slowServer(t, started, release)
	srv.DrainTimeout = 50 * time.Millisecond

	errCh := make(chan error, 1)
	go func() {
		_, err := http.Get(srv.URL)
		errCh <- err
	}()
	<-started
	if err := srv.Close(); err == nil {
		t.Fatal("Close should report the drain deadline being exceeded")
	}
	// The hung request is forcibly cut, not left dangling.
	select {
	case <-errCh:
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight request still dangling after forced close")
	}
}
