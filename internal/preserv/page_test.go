package preserv

// Wire-level tests for the cursor-paged query action: the cursor, page
// size and done flag must survive the XML round trip, a paged stream
// must reassemble exactly what one planned query returns, and the
// planner telemetry must surface in Stats.

import (
	"reflect"
	"testing"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
)

func TestQueryPageOverHTTP(t *testing.T) {
	client, _ := startServer(t)
	session := seq.NewID()
	var records []core.Record
	for i := 0; i < 9; i++ {
		records = append(records, mkRecord(session, "svc:gzip"))
	}
	if resp, err := client.Record("svc:enactor", records); err != nil || resp.Accepted != len(records) {
		t.Fatalf("record: %+v err=%v", resp, err)
	}

	q := &prep.Query{SessionID: session}
	want, _, _, err := client.QueryPlanned(q)
	if err != nil {
		t.Fatal(err)
	}

	var got []core.Record
	after := ""
	pages := 0
	for {
		resp, err := client.QueryPage(q, after, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Records) > 4 {
			t.Fatalf("page carries %d records, asked for 4", len(resp.Records))
		}
		if resp.Plan.Strategy != prep.PlanIndex {
			t.Errorf("page plan strategy = %q, want index", resp.Plan.Strategy)
		}
		got = append(got, resp.Records...)
		pages++
		if pages > 5 {
			t.Fatal("paging did not terminate")
		}
		if resp.Done || resp.Next == "" {
			break
		}
		after = resp.Next
	}
	if pages < 3 {
		t.Errorf("9 records over size-4 pages took %d pages, want >= 3", pages)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("paged stream (%d) differs from planned query (%d)", len(got), len(want))
	}
}

func TestQueryStreamOverHTTP(t *testing.T) {
	client, _ := startServer(t)
	s1, s2 := seq.NewID(), seq.NewID()
	for _, session := range []ids.ID{s1, s2} {
		var records []core.Record
		for i := 0; i < 5; i++ {
			records = append(records, mkRecord(session, "svc:ppmz"))
		}
		if _, err := client.Record("svc:enactor", records); err != nil {
			t.Fatal(err)
		}
	}
	q := &prep.Query{SessionID: s2}
	want, _, _, err := client.QueryPlanned(q)
	if err != nil {
		t.Fatal(err)
	}
	var got []core.Record
	plan, err := client.QueryStream(q, 2, func(r *core.Record) error {
		got = append(got, *r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || plan.Strategy != prep.PlanIndex {
		t.Errorf("stream plan = %+v, want index strategy", plan)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed records (%d) differ from planned query (%d)", len(got), len(want))
	}

	// A stream over an empty result set ends immediately.
	calls := 0
	if _, err := client.QueryStream(&prep.Query{SessionID: seq.NewID()}, 2, func(*core.Record) error {
		calls++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Errorf("empty stream invoked fn %d times", calls)
	}
}

func TestStatsSurfacePlannerCounters(t *testing.T) {
	client, svc := startServer(t)
	session := seq.NewID()
	if _, err := client.Record("svc:enactor", []core.Record{mkRecord(session, "svc:gzip")}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := client.QueryPlanned(&prep.Query{SessionID: session}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Query(&prep.Query{}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.QueryPage(&prep.Query{SessionID: session}, "", 2); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.QueryIndexPlans < 2 {
		t.Errorf("QueryIndexPlans = %d, want >= 2 (planned + page)", st.QueryIndexPlans)
	}
	if st.QueryPages != 1 {
		t.Errorf("QueryPages = %d, want 1", st.QueryPages)
	}
	if st.QueryCostProbes == 0 || st.QueryPostingsRead == 0 || st.QueryCandidatesFetched == 0 {
		t.Errorf("planner counters not surfaced: %+v", st)
	}
}
