// Package preserv implements PReServ — Provenance Recording for
// Services — as an HTTP web service, following the layered design of the
// paper's Figure 3: a message translator (internal/soap) strips the
// transport headers and hands the body to the plug-in registered for the
// message's action; plug-ins (Store, Query) call the Provenance Store
// Interface (internal/store), which runs over interchangeable backends.
package preserv

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/obs"
	"preserv/internal/prep"
	"preserv/internal/shard"
	"preserv/internal/soap"
	"preserv/internal/store"
)

// compile-time checks: both provenance implementations satisfy the
// plug-ins' surface.
var (
	_ Provenance = (*shard.Local)(nil)
	_ Provenance = (*shard.Router)(nil)
)

// DefaultCompactRatio is the garbage-ratio threshold above which a
// deletion triggers an online compaction of the backend: once half the
// stored bytes are dead, rewriting the live half costs less than
// carrying the garbage.
const DefaultCompactRatio = 0.5

// Provenance is the store-shaped surface the plug-ins serve. One
// embedded store (wrapped as shard.Local, which pairs it with a query
// engine) satisfies it, and so does a shard.Router fronting several —
// the service layer is identical either way, which is what makes the
// sharded service mode a wiring change rather than a reimplementation.
type Provenance interface {
	Record(asserter core.ActorID, records []core.Record) (int, []prep.Reject, error)
	Query(q *prep.Query) ([]core.Record, int, error)
	QueryPlanned(q *prep.Query) ([]core.Record, int, *prep.QueryPlan, error)
	QueryPage(q *prep.Query, after string, pageSize int) ([]core.Record, string, bool, *prep.QueryPlan, error)
	Sessions() ([]ids.ID, error)
	Count() (prep.CountResponse, error)
	DeleteRecord(key string) (bool, error)
	DeleteRecords(keys []string) (int, error)
	DeleteSession(session ids.ID) (int, error)
	Compact() error
	// CompactAbove compacts only the parts whose garbage ratio reached
	// threshold: for one store that is the store or nothing; for a
	// router, just the hot shards — scheduled reclamation must not
	// rewrite every clean shard because one crossed the line.
	CompactAbove(threshold float64) error
	GarbageRatio() float64
	Tombstones() int64
	EngineStats() shard.EngineStats
}

// StorePlugIn handles the mutating actions: record submissions
// (prep.ActionRecord), retractions (prep.ActionDelete) and online
// compaction (prep.ActionCompact).
type StorePlugIn struct {
	prov Provenance
	// compactRatio holds the garbage-ratio threshold for delete-
	// triggered compaction as float64 bits, so SetCompactRatio may be
	// called while delete traffic is in flight: maybeCompact reads it
	// on every delete, and a plain float64 field here was a data race
	// (caught by -race under concurrent deletes). Zero (the natural
	// zero value) means DefaultCompactRatio; negative disables
	// automatic compaction (explicit ActionCompact still works).
	compactRatio atomic.Uint64
	// Request accounting lives in the service registry so one
	// CounterSnapshot sees every counter at a single point in time, and
	// related counters (a request plus the records it accepted) update
	// atomically with respect to that snapshot via reg.Batch — the
	// field-by-field reads the old per-plugin atomics allowed could
	// tear (requests incremented at entry, accepted at completion).
	reg             *obs.Registry
	requests        *obs.Counter
	recordsAccepted *obs.Counter
	deleteRequests  *obs.Counter
	recordsDeleted  *obs.Counter
	compactions     *obs.Counter
	// compactMu serialises compactions: concurrent deletes must not pile
	// up rewrites of the same log.
	compactMu sync.Mutex
}

// NewStorePlugIn returns a store plug-in over p, accounting into reg
// (nil creates a private registry).
func NewStorePlugIn(p Provenance, reg *obs.Registry) *StorePlugIn {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &StorePlugIn{
		prov:            p,
		reg:             reg,
		requests:        reg.Counter("preserv_record_requests_total"),
		recordsAccepted: reg.Counter("preserv_records_accepted_total"),
		deleteRequests:  reg.Counter("preserv_delete_requests_total"),
		recordsDeleted:  reg.Counter("preserv_records_deleted_total"),
		compactions:     reg.Counter("preserv_compactions_total"),
	}
}

// SetCompactRatio atomically replaces the garbage-ratio threshold for
// delete-triggered compaction (zero restores DefaultCompactRatio,
// negative disables). Safe to call with delete requests in flight.
func (p *StorePlugIn) SetCompactRatio(r float64) {
	p.compactRatio.Store(math.Float64bits(r))
}

// compactThreshold reads the effective threshold atomically.
func (p *StorePlugIn) compactThreshold() float64 {
	threshold := math.Float64frombits(p.compactRatio.Load())
	if threshold == 0 {
		threshold = DefaultCompactRatio
	}
	return threshold
}

// Actions implements soap.Handler.
func (p *StorePlugIn) Actions() []string {
	return []string{prep.ActionRecord, prep.ActionDelete, prep.ActionCompact}
}

// Handle implements soap.Handler. Errors returned to the soap layer
// must stay errors.Is-matchable across the wire.
//
// provlint:typed-faults
func (p *StorePlugIn) Handle(action string, body []byte) (interface{}, error) {
	switch action {
	case prep.ActionRecord:
		var req prep.RecordRequest
		if err := xml.Unmarshal(body, &req); err != nil {
			p.requests.Add(1)
			return nil, &soap.Fault{Code: soap.FaultBadRequest, Message: "bad record request: " + err.Error()}
		}
		accepted, rejects, err := p.prov.Record(req.Asserter, req.Records)
		if err != nil {
			p.requests.Add(1)
			return nil, err
		}
		// The request and its accepted count land together: a stats
		// snapshot sees both or neither, never a request whose records
		// are still unaccounted.
		p.reg.Batch(func() {
			p.requests.Add(1)
			p.recordsAccepted.Add(int64(accepted))
		})
		return &prep.RecordResponse{Accepted: accepted, Rejects: rejects}, nil
	case prep.ActionDelete:
		var req prep.DeleteRequest
		if err := xml.Unmarshal(body, &req); err != nil {
			p.deleteRequests.Add(1)
			return nil, &soap.Fault{Code: soap.FaultBadRequest, Message: "bad delete request: " + err.Error()}
		}
		if err := req.Validate(); err != nil {
			p.deleteRequests.Add(1)
			return nil, &soap.Fault{Code: soap.FaultBadRequest, Message: err.Error()}
		}
		deleted := 0
		var derr error
		switch {
		case req.StorageKey != "":
			var ok bool
			ok, derr = p.prov.DeleteRecord(req.StorageKey)
			if ok {
				deleted = 1
			}
		case len(req.StorageKeys) > 0:
			deleted, derr = p.prov.DeleteRecords(req.StorageKeys)
		default:
			deleted, derr = p.prov.DeleteSession(req.SessionID)
		}
		p.reg.Batch(func() {
			p.deleteRequests.Add(1)
			p.recordsDeleted.Add(int64(deleted))
		})
		if derr != nil {
			return nil, derr
		}
		resp := &prep.DeleteResponse{Deleted: deleted}
		if deleted > 0 {
			// A failed scheduled compaction must not mask the delete,
			// which already succeeded: report it in the response instead
			// of turning the whole request into a fault.
			var err error
			if resp.Compacted, err = p.maybeCompact(); err != nil {
				resp.CompactError = err.Error()
			}
		}
		resp.GarbageRatio = p.prov.GarbageRatio()
		return resp, nil
	case prep.ActionCompact:
		var req prep.CompactRequest
		if err := xml.Unmarshal(body, &req); err != nil {
			return nil, &soap.Fault{Code: soap.FaultBadRequest, Message: "bad compact request: " + err.Error()}
		}
		before := p.prov.GarbageRatio()
		p.compactMu.Lock()
		err := p.prov.Compact()
		p.compactMu.Unlock()
		if err != nil {
			return nil, err
		}
		p.compactions.Add(1)
		return &prep.CompactResponse{GarbageBefore: before, GarbageAfter: p.prov.GarbageRatio()}, nil
	}
	return nil, &soap.Fault{Code: soap.FaultBadAction, Message: action}
}

// maybeCompact runs an online compaction when the backend's garbage
// ratio has crossed the plug-in's threshold — the scheduled reclamation
// that keeps deletions from growing the store without bound. It runs
// inline with the triggering delete request: deletions are rare
// administrative operations, and an inline compaction keeps the
// observable state deterministic (the response reports whether it ran).
func (p *StorePlugIn) maybeCompact() (bool, error) {
	threshold := p.compactThreshold()
	if threshold < 0 || p.prov.GarbageRatio() < threshold {
		return false, nil
	}
	p.compactMu.Lock()
	defer p.compactMu.Unlock()
	// Re-check under the compaction lock: a concurrent delete may have
	// just compacted the garbage away.
	if p.prov.GarbageRatio() < threshold {
		return false, nil
	}
	// Selective: only the store/shards at or over the threshold are
	// rewritten (explicit ActionCompact still compacts everything).
	if err := p.prov.CompactAbove(threshold); err != nil {
		return false, fmt.Errorf("preserv: scheduled compaction: %w", err)
	}
	p.compactions.Add(1)
	return true, nil
}

// QueryPlugIn handles queries (scanned and planned), session listings
// and counts.
type QueryPlugIn struct {
	prov     Provenance
	requests *obs.Counter
}

// NewQueryPlugIn returns a query plug-in over p, accounting into reg
// (nil creates a private registry). Planned-query actions run through
// p's query planner (secondary indexes plus a result cache, fanned out
// and merged when p is a shard router); the plain query action keeps
// the scan path the paper measures.
func NewQueryPlugIn(p Provenance, reg *obs.Registry) *QueryPlugIn {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &QueryPlugIn{prov: p, requests: reg.Counter("preserv_query_requests_total")}
}

// Actions implements soap.Handler.
func (p *QueryPlugIn) Actions() []string {
	return []string{prep.ActionQuery, prep.ActionPlannedQuery, prep.ActionQueryPage, prep.ActionSessions, prep.ActionCount}
}

// Handle implements soap.Handler. Errors returned to the soap layer
// must stay errors.Is-matchable across the wire.
//
// provlint:typed-faults
func (p *QueryPlugIn) Handle(action string, body []byte) (interface{}, error) {
	p.requests.Add(1)
	switch action {
	case prep.ActionQuery:
		var q prep.Query
		if err := xml.Unmarshal(body, &q); err != nil {
			return nil, &soap.Fault{Code: soap.FaultBadRequest, Message: "bad query: " + err.Error()}
		}
		records, total, err := p.prov.Query(&q)
		if err != nil {
			return nil, err
		}
		return &prep.QueryResponse{Total: total, Records: records}, nil
	case prep.ActionPlannedQuery:
		var q prep.Query
		if err := xml.Unmarshal(body, &q); err != nil {
			return nil, &soap.Fault{Code: soap.FaultBadRequest, Message: "bad query: " + err.Error()}
		}
		records, total, plan, err := p.prov.QueryPlanned(&q)
		if err != nil {
			return nil, err
		}
		return &prep.PlannedQueryResponse{Total: total, Plan: *plan, Records: records}, nil
	case prep.ActionQueryPage:
		var req prep.PageQueryRequest
		if err := xml.Unmarshal(body, &req); err != nil {
			return nil, &soap.Fault{Code: soap.FaultBadRequest, Message: "bad page query: " + err.Error()}
		}
		records, next, done, plan, err := p.prov.QueryPage(&req.Query, req.After, req.PageSize)
		if err != nil {
			// An undecodable composite cursor (corrupted, or minted
			// against a resized topology) and a stale one (minted before
			// a drain moved records) are both client input, not server
			// failures — fault them like every other bad-input path. The
			// stale fault keeps ErrStaleCursor's message, which is what
			// lets Client.QueryPage re-type it so QueryStream restarts
			// the walk instead of failing it.
			if errors.Is(err, shard.ErrBadCursor) || errors.Is(err, shard.ErrStaleCursor) {
				return nil, &soap.Fault{Code: soap.FaultBadRequest, Message: "bad page query: " + err.Error()}
			}
			return nil, err
		}
		return &prep.PageQueryResponse{Plan: *plan, Next: next, Done: done, Records: records}, nil
	case prep.ActionSessions:
		sessions, err := p.prov.Sessions()
		if err != nil {
			return nil, err
		}
		return &prep.SessionsResponse{Sessions: sessions}, nil
	case prep.ActionCount:
		cnt, err := p.prov.Count()
		if err != nil {
			return nil, err
		}
		return &cnt, nil
	}
	return nil, &soap.Fault{Code: soap.FaultBadAction, Message: action}
}

// StatsPlugIn handles prep.ActionStats: the wire window onto the
// service's telemetry. It is what closes the remote-shard gap — a
// router fronting this endpoint as a RemoteShard polls it for the
// garbage ratio, tombstones and engine counters the base wire protocol
// never carried.
type StatsPlugIn struct {
	svc *Service
}

// Actions implements soap.Handler.
func (p *StatsPlugIn) Actions() []string { return []string{prep.ActionStats} }

// Handle implements soap.Handler. Errors returned to the soap layer
// must stay errors.Is-matchable across the wire.
//
// provlint:typed-faults
func (p *StatsPlugIn) Handle(action string, body []byte) (interface{}, error) {
	var req prep.StatsRequest
	if err := xml.Unmarshal(body, &req); err != nil {
		return nil, &soap.Fault{Code: soap.FaultBadRequest, Message: "bad stats request: " + err.Error()}
	}
	return p.svc.StatsResponse()
}

// timedHandler wraps a plug-in, timing every request into a per-action
// latency histogram and span. The histograms are resolved per action
// at construction, so serving a request costs no registry lookup.
type timedHandler struct {
	inner soap.Handler
	reg   *obs.Registry
	hists map[string]*obs.Histogram
}

func newTimedHandler(inner soap.Handler, reg *obs.Registry) *timedHandler {
	th := &timedHandler{inner: inner, reg: reg, hists: make(map[string]*obs.Histogram)}
	for _, a := range inner.Actions() {
		th.hists[a] = reg.Histogram(fmt.Sprintf(`preserv_request_seconds{action=%q}`, actionShort(a)), nil)
	}
	return th
}

// actionShort strips the URI prefix: "urn:prep:record" -> "record".
func actionShort(action string) string { return strings.TrimPrefix(action, "urn:prep:") }

// Actions implements soap.Handler.
func (th *timedHandler) Actions() []string { return th.inner.Actions() }

// Handle implements soap.Handler. Errors returned to the soap layer
// must stay errors.Is-matchable across the wire.
//
// provlint:typed-faults
func (th *timedHandler) Handle(action string, body []byte) (interface{}, error) {
	span := th.reg.Tracer().StartSpan("preserv." + actionShort(action))
	reply, err := th.inner.Handle(action, body)
	span.Observe(th.hists[action], err)
	return reply, err
}

// Stats summarises service activity.
type Stats struct {
	RecordRequests  int64
	RecordsAccepted int64
	QueryRequests   int64
	// QueryCacheHits / QueryCacheMisses are the planned-query result
	// cache's cumulative lookup outcomes (a stale entry counts as a
	// miss).
	QueryCacheHits   int64
	QueryCacheMisses int64
	// QueryIndexPlans / QueryScanPlans count executed planner queries by
	// strategy; QueryPages counts cursor-paged executions.
	QueryIndexPlans int64
	QueryScanPlans  int64
	QueryPages      int64
	// QueryCostProbes counts the planner's CountPostings cardinality
	// probes; QueryPostingsRead and QueryCandidatesFetched are the read
	// path's cumulative index-entry and record-fetch costs.
	QueryCostProbes        int64
	QueryPostingsRead      int64
	QueryCandidatesFetched int64
	// DeleteRequests / RecordsDeleted / Compactions count the deletion
	// lifecycle: retraction requests served, records removed, and
	// compactions run (explicit or garbage-ratio-scheduled).
	DeleteRequests int64
	RecordsDeleted int64
	Compactions    int64
	// Tombstones is the backend's current count of unreclaimed deletion
	// markers; GarbageRatio its current dead-byte fraction — the signal
	// the next scheduled compaction fires on. In sharded mode
	// Tombstones sums across shards and GarbageRatio reports the worst
	// shard's.
	Tombstones   int64
	GarbageRatio float64
	// Shards is the number of store partitions behind the service: 0
	// for the classic single-store service, N for the sharded mode.
	Shards int
}

// Service is a PReServ instance: a provenance surface (one store, or a
// shard router fronting several) plus the translator wiring.
type Service struct {
	// Store is the embedded store of a single-store service; nil when
	// the service fronts a shard router (use Provenance then).
	Store   *store.Store
	prov    Provenance
	shards  int
	reg     *obs.Registry
	storeP  *StorePlugIn
	queryP  *QueryPlugIn
	handler http.Handler
	// pprofOn gates the /debug/pprof handlers Serve wires up; set it
	// via EnablePprof before Serve.
	pprofOn atomic.Bool
}

// NewService assembles a PReServ service over the given store.
func NewService(s *store.Store) *Service {
	svc := newService(shard.NewLocal(s), 0)
	svc.Store = s
	return svc
}

// NewShardedService assembles a PReServ service over a shard router —
// the sharded service mode: the same actions, handlers and telemetry as
// a single-store service, with every request fanned, routed and merged
// by the router. The front-end is indistinguishable from one big store
// to clients.
func NewShardedService(rt *shard.Router) *Service {
	return newService(rt, rt.NumShards())
}

func newService(p Provenance, shards int) *Service {
	reg := obs.NewRegistry()
	sp := NewStorePlugIn(p, reg)
	qp := NewQueryPlugIn(p, reg)
	svc := &Service{
		prov:   p,
		shards: shards,
		reg:    reg,
		storeP: sp,
		queryP: qp,
	}
	svc.handler = soap.NewHTTPHandler(
		newTimedHandler(sp, reg),
		newTimedHandler(qp, reg),
		newTimedHandler(&StatsPlugIn{svc: svc}, reg),
	)
	return svc
}

// Obs returns the service's telemetry registry (request counters and
// per-action latency histograms; store/router registries live with
// their owners).
func (svc *Service) Obs() *obs.Registry { return svc.reg }

// EnablePprof makes Serve expose net/http/pprof under /debug/pprof on
// this service's listener. Off by default: profiling endpoints leak
// internals and belong behind an explicit operator decision.
func (svc *Service) EnablePprof() { svc.pprofOn.Store(true) }

// Provenance returns the store surface the service serves (the store's
// shard.Local wrapper, or the shard router).
func (svc *Service) Provenance() Provenance { return svc.prov }

// Handler returns the HTTP handler (the message-translator layer).
func (svc *Service) Handler() http.Handler { return svc.handler }

// SetCompactRatio sets the garbage-ratio threshold for delete-triggered
// online compaction (negative disables it). Safe to call while serving:
// the threshold is stored atomically and picked up by the next delete.
func (svc *Service) SetCompactRatio(r float64) { svc.storeP.SetCompactRatio(r) }

// Stats returns a snapshot of service counters. The request counters
// come from one registry snapshot, so the returned struct is
// internally consistent — a record request and the records it accepted
// appear together or not at all, where the old field-by-field atomic
// loads could tear between them.
func (svc *Service) Stats() Stats {
	counters := svc.reg.CounterSnapshot()
	es := svc.prov.EngineStats()
	return Stats{
		RecordRequests:         counters["preserv_record_requests_total"],
		RecordsAccepted:        counters["preserv_records_accepted_total"],
		QueryRequests:          counters["preserv_query_requests_total"],
		QueryCacheHits:         es.CacheHits,
		QueryCacheMisses:       es.CacheMisses,
		QueryIndexPlans:        es.IndexPlans,
		QueryScanPlans:         es.ScanPlans,
		QueryPages:             es.PagedQueries,
		QueryCostProbes:        es.CostProbes,
		QueryPostingsRead:      es.PostingsRead,
		QueryCandidatesFetched: es.CandidatesFetched,
		DeleteRequests:         counters["preserv_delete_requests_total"],
		RecordsDeleted:         counters["preserv_records_deleted_total"],
		Compactions:            counters["preserv_compactions_total"],
		Tombstones:             svc.prov.Tombstones(),
		GarbageRatio:           svc.prov.GarbageRatio(),
		Shards:                 svc.shards,
	}
}

// StatsResponse assembles the urn:prep:stats reply: one consistent
// counter snapshot, whole-store aggregates, the per-shard breakdown
// (local shards report in full; remote shards are polled over the
// wire), and the service's own request histograms and slow log.
func (svc *Service) StatsResponse() (*prep.StatsResponse, error) {
	counters := svc.reg.CounterSnapshot()
	count, err := svc.prov.Count()
	if err != nil {
		return nil, err
	}
	resp := &prep.StatsResponse{
		RecordRequests:  counters["preserv_record_requests_total"],
		RecordsAccepted: counters["preserv_records_accepted_total"],
		QueryRequests:   counters["preserv_query_requests_total"],
		DeleteRequests:  counters["preserv_delete_requests_total"],
		RecordsDeleted:  counters["preserv_records_deleted_total"],
		Compactions:     counters["preserv_compactions_total"],
		Records:         count.Records,
		NumShards:       svc.shards,
		GarbageRatio:    svc.prov.GarbageRatio(),
		Tombstones:      svc.prov.Tombstones(),
		Engine:          svc.prov.EngineStats().Wire(),
		Histograms:      shard.HistogramStats(svc.reg),
		Slow:            shard.SlowSpans(svc.reg.Tracer()),
	}
	if gp, ok := svc.prov.(shard.GenerationProber); ok {
		resp.Generation, resp.GenerationValid = gp.Generation()
	}
	switch p := svc.prov.(type) {
	case interface {
		ShardStats() ([]prep.ShardStats, error)
	}:
		shards, err := p.ShardStats()
		if err != nil {
			return nil, err
		}
		resp.Shards = shards
	case shard.ShardStatser:
		st, err := p.ShardStats()
		if err != nil {
			return nil, err
		}
		resp.Shards = []prep.ShardStats{st}
	}
	// The whole-store read-cache and write-path aggregates sum the shard
	// breakdowns (each shard's bloom and block-cache outcomes; each
	// shard's in-flight compactions and commit stalls); the router's own
	// result cache — which belongs to no single shard — lands in the
	// same aggregate next to them.
	for i := range resp.Shards {
		resp.ReadCache.Add(resp.Shards[i].ReadCache)
		resp.WritePath.Add(resp.Shards[i].WritePath)
	}
	if rt, ok := svc.prov.(*shard.Router); ok {
		hits, misses := rt.ResultCacheStats()
		resp.ReadCache.ResultCacheHits += hits
		resp.ReadCache.ResultCacheMisses += misses
		resp.DrainEpoch = rt.DrainEpoch()
		resp.OverlapSuspected = rt.OverlapSuspected()
		// The router's own instruments (fan-out latency, merge width,
		// drain counters) belong to no single shard: report them at the
		// top level next to the service's request histograms.
		resp.Histograms = append(resp.Histograms, shard.HistogramStats(rt.Obs())...)
		resp.Slow = append(resp.Slow, shard.SlowSpans(rt.Obs().Tracer())...)
	}
	return resp, nil
}

// MetricsHandler serves the service's telemetry in the Prometheus text
// exposition format: the service registry (request counters and
// per-action latency), plus the store registry of a single-store
// service — or, fronting a router, the router registry and every
// embedded shard's store registry labelled shard="i". Remote shards
// export their own /metrics.
func (svc *Service) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		exports := []obs.Export{{Reg: svc.reg}}
		switch p := svc.prov.(type) {
		case *shard.Local:
			exports = append(exports, obs.Export{Reg: p.Store().Obs()})
		case *shard.Router:
			exports = append(exports, obs.Export{Reg: p.Obs()})
			for i := 0; i < p.NumShards(); i++ {
				if l, ok := p.Shard(i).(*shard.Local); ok {
					exports = append(exports, obs.Export{
						Labels: fmt.Sprintf(`shard="%d"`, i),
						Reg:    l.Store().Obs(),
					})
				}
			}
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w, exports...)
	})
}

// DefaultDrainTimeout is how long Server.Close waits for in-flight
// requests to finish before forcibly closing their connections.
const DefaultDrainTimeout = 5 * time.Second

// Server is a listening PReServ endpoint.
type Server struct {
	// URL is the service endpoint, e.g. "http://127.0.0.1:8734".
	URL string
	// DrainTimeout bounds how long Close waits for in-flight requests;
	// zero means DefaultDrainTimeout.
	DrainTimeout time.Duration
	ln           net.Listener
	httpSrv      *http.Server
	done         chan struct{}
}

// Serve starts serving svc on addr (use "127.0.0.1:0" to pick a free
// port). It returns once the listener is active. Besides the PReP
// endpoint at "/", the server exposes the service's telemetry at
// "/metrics" (Prometheus text format) and — only when EnablePprof was
// called — the net/http/pprof handlers under "/debug/pprof/".
func Serve(svc *Service, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("preserv: listening on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.Handle("/metrics", svc.MetricsHandler())
	if svc.pprofOn.Load() {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &Server{
		URL:     "http://" + ln.Addr().String(),
		ln:      ln,
		httpSrv: &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
		done:    make(chan struct{}),
	}
	go func() {
		defer close(srv.done)
		// ErrServerClosed is the normal shutdown signal.
		_ = srv.httpSrv.Serve(ln)
	}()
	return srv, nil
}

// Close stops the server gracefully: the listener closes immediately
// (no new connections), in-flight record and query requests get up to
// DrainTimeout to complete their responses, and only then are the
// remaining connections forcibly closed. It waits for the serve loop to
// exit before returning.
func (s *Server) Close() error {
	timeout := s.DrainTimeout
	if timeout <= 0 {
		timeout = DefaultDrainTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := s.httpSrv.Shutdown(ctx)
	if err != nil {
		// Drain deadline passed (or shutdown failed) with requests still
		// running: cut the stragglers off rather than hang.
		_ = s.httpSrv.Close()
	}
	<-s.done
	return err
}

// Client talks PReP to a provenance store endpoint.
type Client struct {
	url string
	hc  *http.Client
}

// NewClient returns a client for the store at url. A nil httpClient uses
// a dedicated client with sane timeouts.
func NewClient(url string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 60 * time.Second}
	}
	return &Client{url: url, hc: httpClient}
}

// URL returns the endpoint this client records to.
func (c *Client) URL() string { return c.url }

// Record submits a batch of p-assertions asserted by asserter.
func (c *Client) Record(asserter core.ActorID, records []core.Record) (*prep.RecordResponse, error) {
	req := &prep.RecordRequest{Asserter: asserter, Records: records}
	var resp prep.RecordResponse
	if err := soap.Post(c.hc, c.url, prep.ActionRecord, req, &resp); err != nil {
		return nil, fmt.Errorf("preserv: record: %w", err)
	}
	return &resp, nil
}

// Query retrieves records matching q via the store's scan path.
func (c *Client) Query(q *prep.Query) ([]core.Record, int, error) {
	var resp prep.QueryResponse
	if err := soap.Post(c.hc, c.url, prep.ActionQuery, q, &resp); err != nil {
		return nil, 0, fmt.Errorf("preserv: query: %w", err)
	}
	return resp.Records, resp.Total, nil
}

// QueryPlanned retrieves records matching q via the store's query
// planner (secondary indexes plus result cache), returning the plan the
// server chose alongside the results. Results are identical to Query.
func (c *Client) QueryPlanned(q *prep.Query) ([]core.Record, int, *prep.QueryPlan, error) {
	var resp prep.PlannedQueryResponse
	if err := soap.Post(c.hc, c.url, prep.ActionPlannedQuery, q, &resp); err != nil {
		return nil, 0, nil, fmt.Errorf("preserv: planned query: %w", err)
	}
	plan := resp.Plan
	return resp.Records, resp.Total, &plan, nil
}

// QueryPage retrieves one cursor-delimited page of q's results via the
// store's query planner: up to pageSize records with storage keys
// strictly greater than after (empty after starts from the beginning).
// The server computes each page with early termination — candidates
// beyond it are never visited — so q.Limit is ignored and no total is
// reported. Use resp.Next as the following call's after; resp.Done
// reports exhaustion.
func (c *Client) QueryPage(q *prep.Query, after string, pageSize int) (*prep.PageQueryResponse, error) {
	req := &prep.PageQueryRequest{Query: *q, After: after, PageSize: pageSize}
	var resp prep.PageQueryResponse
	if err := soap.Post(c.hc, c.url, prep.ActionQueryPage, req, &resp); err != nil {
		// A sharded server rejects a cursor minted before a drain epoch
		// bump (shard.ErrStaleCursor) or one it cannot decode
		// (shard.ErrBadCursor) with a bad-request fault carrying the
		// sentinel's message. Re-type both so callers — QueryStream
		// first among them — can tell "restart the walk" from "the
		// request is broken" with errors.Is instead of string matching.
		var fault *soap.Fault
		if errors.As(err, &fault) && fault.Code == soap.FaultBadRequest {
			for _, sentinel := range []error{shard.ErrStaleCursor, shard.ErrBadCursor} {
				if strings.Contains(fault.Message, sentinel.Error()) {
					return nil, fmt.Errorf("preserv: page query: %w: %s", sentinel, fault.Message)
				}
			}
		}
		return nil, fmt.Errorf("preserv: page query: %w", err)
	}
	return &resp, nil
}

// QueryStream retrieves every record matching q by paging through
// QueryPage, invoking fn once per record in storage-key order. The
// store never buffers more than one page per request, however large the
// result set; fn returning an error aborts the stream. pageSize <= 0
// selects the server default. It returns the last page's plan (each
// page is planned afresh; cardinalities can shift between pages as the
// store grows).
//
// A sharded server retires every outstanding composite cursor when a
// drain moves records (shard.ErrStaleCursor). The stream absorbs that
// transparently: it resumes with a plain cursor at the last storage
// key fn was given, which is exact — fn sees every committed record
// exactly once — because storage keys are shard-independent, so plain
// seek-after semantics hold across any rebalance. Each delivered
// record re-arms the retry, so a walk racing repeated drains makes
// progress; only a stale rejection with nothing new delivered since
// the last one surfaces as an error (a router cannot loop on its own
// cursors that way — it would take a malformed server).
func (c *Client) QueryStream(q *prep.Query, pageSize int, fn func(r *core.Record) error) (*prep.QueryPlan, error) {
	after := ""
	lastKey := ""
	retried := false
	var plan prep.QueryPlan
	for {
		resp, err := c.QueryPage(q, after, pageSize)
		if err != nil {
			if errors.Is(err, shard.ErrStaleCursor) && !retried {
				retried = true
				after = lastKey
				continue
			}
			return nil, err
		}
		plan = resp.Plan
		for i := range resp.Records {
			if err := fn(&resp.Records[i]); err != nil {
				return nil, err
			}
			lastKey = resp.Records[i].StorageKey()
			retried = false
		}
		if resp.Done || resp.Next == "" {
			return &plan, nil
		}
		after = resp.Next
	}
}

// DeleteRecord retracts the record stored under the given storage key.
// It returns the server's acknowledgement; Deleted is 0 when the key
// was already absent (retraction is idempotent).
func (c *Client) DeleteRecord(storageKey string) (*prep.DeleteResponse, error) {
	return c.delete(&prep.DeleteRequest{StorageKey: storageKey})
}

// DeleteRecords retracts the records stored under the given keys in one
// round trip — the batched form a drain uses to delete a moved page
// from a remote shard.
func (c *Client) DeleteRecords(storageKeys []string) (*prep.DeleteResponse, error) {
	return c.delete(&prep.DeleteRequest{StorageKeys: storageKeys})
}

// DeleteSession retracts every record grouped under the session.
func (c *Client) DeleteSession(session ids.ID) (*prep.DeleteResponse, error) {
	return c.delete(&prep.DeleteRequest{SessionID: session})
}

func (c *Client) delete(req *prep.DeleteRequest) (*prep.DeleteResponse, error) {
	var resp prep.DeleteResponse
	if err := soap.Post(c.hc, c.url, prep.ActionDelete, req, &resp); err != nil {
		return nil, fmt.Errorf("preserv: delete: %w", err)
	}
	return &resp, nil
}

// Compact asks the store to compact its backend online, reclaiming the
// dead bytes deletions and overwrites leave behind. The response
// reports the garbage ratio before and after.
func (c *Client) Compact() (*prep.CompactResponse, error) {
	var resp prep.CompactResponse
	if err := soap.Post(c.hc, c.url, prep.ActionCompact, &prep.CompactRequest{}, &resp); err != nil {
		return nil, fmt.Errorf("preserv: compact: %w", err)
	}
	return &resp, nil
}

// Sessions lists the distinct session identifiers recorded in the
// store, sorted, answered from the store's session index.
func (c *Client) Sessions() ([]ids.ID, error) {
	var resp prep.SessionsResponse
	if err := soap.Post(c.hc, c.url, prep.ActionSessions, &prep.SessionsRequest{}, &resp); err != nil {
		return nil, fmt.Errorf("preserv: sessions: %w", err)
	}
	return resp.Sessions, nil
}

// Count retrieves store statistics.
func (c *Client) Count() (prep.CountResponse, error) {
	var resp prep.CountResponse
	if err := soap.Post(c.hc, c.url, prep.ActionCount, &prep.CountRequest{}, &resp); err != nil {
		return prep.CountResponse{}, fmt.Errorf("preserv: count: %w", err)
	}
	return resp, nil
}

// StoreStats retrieves the endpoint's full telemetry snapshot via
// urn:prep:stats: request counters, garbage state, engine counters,
// per-shard breakdown, histogram summaries and the slow-operation log.
func (c *Client) StoreStats() (*prep.StatsResponse, error) {
	var resp prep.StatsResponse
	if err := soap.Post(c.hc, c.url, prep.ActionStats, &prep.StatsRequest{}, &resp); err != nil {
		return nil, fmt.Errorf("preserv: stats: %w", err)
	}
	return &resp, nil
}
