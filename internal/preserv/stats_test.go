package preserv

// Tests for the telemetry surface: the urn:prep:stats wire action, the
// /metrics Prometheus endpoint, the sharded garbage/tombstone
// aggregation over remote children (which silently read as zero before
// the stats action existed), and the slow-operation log capturing a
// forced scan-plan query.

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"preserv/internal/core"
	"preserv/internal/obs"
	"preserv/internal/prep"
	"preserv/internal/shard"
	"preserv/internal/store"
)

// withTelemetry turns the histogram/span instrumentation on for one
// test and restores the previous state after.
func withTelemetry(t *testing.T) {
	t.Helper()
	prev := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(prev) })
}

func TestStatsWireAction(t *testing.T) {
	withTelemetry(t)
	client, svc := startKVServer(t)
	svc.SetCompactRatio(-1) // keep the garbage so the stats can see it

	session := seq.NewID()
	var recs []core.Record
	for i := 0; i < 6; i++ {
		recs = append(recs, mkRecord(session, "svc:gzip"))
	}
	if _, err := client.Record("svc:enactor", recs); err != nil {
		t.Fatal(err)
	}
	if _, err := client.DeleteRecord(recs[0].StorageKey()); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := client.QueryPlanned(&prep.Query{SessionID: session}); err != nil {
		t.Fatal(err)
	}

	st, err := client.StoreStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.RecordRequests != 1 || st.RecordsAccepted != 6 {
		t.Errorf("record counters = %d/%d, want 1/6", st.RecordRequests, st.RecordsAccepted)
	}
	if st.DeleteRequests != 1 || st.RecordsDeleted != 1 {
		t.Errorf("delete counters = %d/%d, want 1/1", st.DeleteRequests, st.RecordsDeleted)
	}
	if st.QueryRequests != 1 {
		t.Errorf("QueryRequests = %d, want 1", st.QueryRequests)
	}
	if st.Records != 5 {
		t.Errorf("Records = %d, want 5", st.Records)
	}
	if st.Tombstones == 0 {
		t.Error("Tombstones = 0 after a delete")
	}
	if st.GarbageRatio <= 0 {
		t.Errorf("GarbageRatio = %v after a delete", st.GarbageRatio)
	}
	if st.Engine.IndexPlans == 0 {
		t.Errorf("engine counters did not reach the wire: %+v", st.Engine)
	}
	// The service histograms must have observed the requests above.
	var reqSeconds int64
	for _, h := range st.Histograms {
		if strings.HasPrefix(h.Name, "preserv_request_seconds") {
			reqSeconds += h.Count
		}
	}
	if reqSeconds < 3 {
		t.Errorf("preserv_request_seconds observed %d requests, want >= 3", reqSeconds)
	}
	// Single-store service: one embedded shard in the breakdown.
	if len(st.Shards) != 1 || st.Shards[0].Records != 5 {
		t.Errorf("shard breakdown = %+v", st.Shards)
	}
}

// TestShardedStatsOverRemoteShards is the regression test for the
// remote-shard telemetry gap: a router fronting remote PReServ
// endpoints used to report GarbageRatio 0 and Tombstones 0 regardless
// of the children's state, because the base wire protocol never carried
// them. With urn:prep:stats the router polls them for real.
func TestShardedStatsOverRemoteShards(t *testing.T) {
	withTelemetry(t)

	// Two real kvdb-backed servers, reached over HTTP.
	var urls []string
	for i := 0; i < 2; i++ {
		b, err := store.NewKVBackend(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		childSvc := NewService(store.New(b))
		childSvc.SetCompactRatio(-1)
		srv, err := Serve(childSvc, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close(); b.Close() })
		urls = append(urls, srv.URL)
	}

	rt, err := NewRemoteRouter(strings.Join(urls, ","))
	if err != nil {
		t.Fatal(err)
	}
	svc := NewShardedService(rt)
	svc.SetCompactRatio(-1)
	srv, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	front := NewClient(srv.URL, nil)

	// Enough distinct sessions that both shards receive records, then a
	// deletion on each session to leave tombstones behind on both sides.
	perShard := make([]int, 2)
	var doomed []string
	for s := 0; s < 8; s++ {
		session := seq.NewID()
		recs := []core.Record{mkRecord(session, "svc:gzip"), mkRecord(session, "svc:ppmz")}
		if _, err := front.Record("svc:enactor", recs); err != nil {
			t.Fatal(err)
		}
		perShard[shard.AffinityIndex(session.String(), 2)] += 2
		doomed = append(doomed, recs[0].StorageKey())
	}
	if perShard[0] == 0 || perShard[1] == 0 {
		t.Fatalf("fixture did not spread across both shards: %v", perShard)
	}
	// Query before deleting: the deletes invalidate the remote shards'
	// TTL-cached stats, so the aggregates below poll a snapshot that
	// already includes these queries' engine counters.
	if _, _, _, err := front.QueryPlanned(&prep.Query{}); err != nil {
		t.Fatal(err)
	}
	for _, k := range doomed {
		if _, err := front.DeleteRecord(k); err != nil {
			t.Fatal(err)
		}
	}

	// The router's base aggregates now see the remote children's state
	// (a record's tombstone count is backend-internal — one record may
	// leave several index tombstones — so assert presence, and exact
	// consistency with the per-shard breakdown below).
	if got := rt.Tombstones(); got == 0 {
		t.Error("router Tombstones over remote shards = 0 after deletes on both shards")
	}
	if got := rt.GarbageRatio(); got <= 0 {
		t.Errorf("router GarbageRatio over remote shards = %v, want > 0", got)
	}
	es := rt.EngineStats()
	if es.IndexPlans+es.ScanPlans == 0 {
		t.Errorf("router engine aggregate over remote shards is empty: %+v", es)
	}

	// And the stats action reports the per-shard breakdown.
	st, err := front.StoreStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumShards != 2 || len(st.Shards) != 2 {
		t.Fatalf("NumShards=%d Shards=%d, want 2/2", st.NumShards, len(st.Shards))
	}
	if st.Tombstones == 0 {
		t.Error("aggregate Tombstones = 0 after deletes on both shards")
	}
	var sumRecords int
	var sumTombstones int64
	for i, sh := range st.Shards {
		if sh.Index != i || sh.URL != urls[i] {
			t.Errorf("shard %d identity = {Index:%d URL:%q}, want {%d %q}", i, sh.Index, sh.URL, i, urls[i])
		}
		if sh.Records == 0 || sh.Tombstones == 0 || sh.GarbageRatio <= 0 {
			t.Errorf("shard %d telemetry still zero: %+v", i, sh)
		}
		var latency int64
		for _, h := range sh.Histograms {
			if strings.HasPrefix(h.Name, "preserv_request_seconds") {
				latency += h.Count
			}
		}
		if latency == 0 {
			t.Errorf("shard %d reports no request-latency observations", i)
		}
		sumRecords += sh.Records
		sumTombstones += sh.Tombstones
	}
	if sumRecords != st.Records {
		t.Errorf("per-shard records sum to %d, aggregate says %d", sumRecords, st.Records)
	}
	if sumTombstones != st.Tombstones {
		t.Errorf("per-shard tombstones sum to %d, aggregate says %d", sumTombstones, st.Tombstones)
	}
}

// promLine matches one Prometheus text-format sample.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[-+]?[0-9.eE+-]+)$`)

func TestMetricsEndpoint(t *testing.T) {
	withTelemetry(t)
	client, svc := startKVServer(t)
	_ = svc
	session := seq.NewID()
	if _, err := client.Record("svc:enactor", []core.Record{mkRecord(session, "svc:gzip")}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := client.QueryPlanned(&prep.Query{SessionID: session}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(client.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		name, value, _ := strings.Cut(line, " ")
		samples[name] = value
	}
	// Service counters, store gauges and request histograms all reach
	// the one endpoint.
	for _, want := range []string{
		"preserv_record_requests_total",
		"preserv_query_requests_total",
		"store_garbage_ratio",
		"store_tombstones",
		`preserv_request_seconds_count{action="record"}`,
		`store_record_seconds_count`,
	} {
		if _, ok := samples[want]; !ok {
			t.Errorf("missing sample %s", want)
		}
	}
	if got := samples["preserv_record_requests_total"]; got != "1" {
		t.Errorf("preserv_record_requests_total = %s, want 1", got)
	}
}

// TestSlowLogCapturesScanPlan drops the slow threshold to one
// nanosecond so every operation qualifies, runs a query the planner
// must execute as a scan (no indexable dimension), and checks the store
// tracer's slow log kept the span WITH its plan annotations — the
// debugging artefact the slow log exists for.
func TestSlowLogCapturesScanPlan(t *testing.T) {
	withTelemetry(t)
	st := store.New(store.NewMemoryBackend())
	t.Cleanup(func() { st.Close() })
	st.Obs().Tracer().SetSlowThreshold(1)
	local := shard.NewLocal(st)

	session := seq.NewID()
	if _, _, err := local.Record("svc:enactor", []core.Record{mkRecord(session, "svc:gzip")}); err != nil {
		t.Fatal(err)
	}
	// An empty query has no dimension the planner can serve from an
	// index: it must fall back to the scan path.
	if _, _, plan, err := local.QueryPlanned(&prep.Query{}); err != nil {
		t.Fatal(err)
	} else if plan.Strategy != prep.PlanScan {
		t.Fatalf("fixture query planned as %q, want scan", plan.Strategy)
	}

	var found bool
	for _, span := range st.Obs().Tracer().Slow() {
		if span.Op() != "query.planned" {
			continue
		}
		attrs := map[string]string{}
		for _, a := range span.Attrs() {
			attrs[a.Key] = a.Value
		}
		if attrs["strategy"] == string(prep.PlanScan) {
			found = true
			if attrs["candidates"] == "" {
				t.Errorf("slow span lacks plan cost attrs: %v", span.Attrs())
			}
		}
	}
	if !found {
		t.Fatalf("slow log holds no scan-plan query.planned span: %v", st.Obs().Tracer().Slow())
	}
	if d := st.Obs().Tracer().Slow()[0].Duration(); d <= 0 {
		t.Errorf("slow span duration = %v", d)
	}
}

// TestStatsTornReadFixed drives concurrent record traffic while
// snapshotting Stats, asserting the invariant the old field-by-field
// atomic loads could violate: every snapshot's accepted-records count
// is consistent with its request count (each request accepts exactly 2
// records, and a request is only counted once its records are).
func TestStatsTornReadFixed(t *testing.T) {
	client, svc := startServer(t)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		defer close(errc)
		for {
			select {
			case <-stop:
				return
			default:
			}
			session := seq.NewID()
			recs := []core.Record{mkRecord(session, "svc:gzip"), mkRecord(session, "svc:ppmz")}
			if _, err := client.Record("svc:enactor", recs); err != nil {
				errc <- err
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		s := svc.Stats()
		if s.RecordsAccepted != 2*s.RecordRequests {
			t.Fatalf("torn stats snapshot: %d requests but %d accepted", s.RecordRequests, s.RecordsAccepted)
		}
	}
	close(stop)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

var _ = fmt.Sprintf
