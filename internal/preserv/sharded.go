package preserv

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
	"preserv/internal/shard"
)

// RemoteShard adapts a PReP client into a shard.Shard, so a Router can
// front remote PReServ endpoints the same way it fronts embedded child
// stores — the front-end half of the paper's distributed PReServ: the
// AsyncRecorder already ships to several endpoints; a Router over
// RemoteShards is what makes those endpoints answer queries as one.
type RemoteShard struct {
	c *Client

	// statsMu guards the cached urn:prep:stats snapshot. GarbageRatio,
	// Tombstones and EngineStats are polled on hot paths the base Shard
	// surface never meant to cost a round trip (the router's
	// GarbageRatio loops over every shard on every delete), so the
	// snapshot is cached for statsTTL and refreshed lazily. Mutations
	// through this shard invalidate it immediately — a delete must see
	// its own garbage.
	statsMu    sync.Mutex
	stats      *prep.StatsResponse
	statsAt    time.Time
	statsStale bool
}

// remoteStatsTTL bounds how stale a cached remote stats snapshot may
// be served: long enough that a burst of garbage-ratio probes costs one
// round trip, short enough that another writer's deletions surface
// within a second.
const remoteStatsTTL = time.Second

// NewRemoteShard wraps a client as a shard.
func NewRemoteShard(c *Client) *RemoteShard { return &RemoteShard{c: c, statsStale: true} }

// URL reports the remote endpoint.
func (r *RemoteShard) URL() string { return r.c.URL() }

// invalidateStats drops the cached stats snapshot; the next telemetry
// read re-polls the endpoint.
func (r *RemoteShard) invalidateStats() {
	r.statsMu.Lock()
	r.statsStale = true
	r.statsMu.Unlock()
}

// cachedStats returns the endpoint's stats snapshot, re-polling it over
// the wire when the cache is invalidated or older than remoteStatsTTL.
// An endpoint that cannot answer (older server without the stats
// action, or unreachable) yields (nil, err) — callers on the base Shard
// surface degrade to zero, matching the pre-stats behaviour.
func (r *RemoteShard) cachedStats() (*prep.StatsResponse, error) {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	if r.stats != nil && !r.statsStale && time.Since(r.statsAt) < remoteStatsTTL {
		return r.stats, nil
	}
	resp, err := r.c.StoreStats()
	if err != nil {
		return nil, err
	}
	r.stats, r.statsAt, r.statsStale = resp, time.Now(), false
	return resp, nil
}

// Record implements shard.Shard.
func (r *RemoteShard) Record(asserter core.ActorID, records []core.Record) (int, []prep.Reject, error) {
	resp, err := r.c.Record(asserter, records)
	if err != nil {
		return 0, nil, err
	}
	r.invalidateStats()
	return resp.Accepted, resp.Rejects, nil
}

// Query implements shard.Shard via the endpoint's scan path.
func (r *RemoteShard) Query(q *prep.Query) ([]core.Record, int, error) {
	return r.c.Query(q)
}

// QueryPlanned implements shard.Shard.
func (r *RemoteShard) QueryPlanned(q *prep.Query) ([]core.Record, int, *prep.QueryPlan, error) {
	return r.c.QueryPlanned(q)
}

// QueryPage implements shard.Shard.
func (r *RemoteShard) QueryPage(q *prep.Query, after string, pageSize int) ([]core.Record, string, bool, *prep.QueryPlan, error) {
	resp, err := r.c.QueryPage(q, after, pageSize)
	if err != nil {
		return nil, "", false, nil, err
	}
	plan := resp.Plan
	return resp.Records, resp.Next, resp.Done, &plan, nil
}

// Sessions implements shard.Shard.
func (r *RemoteShard) Sessions() ([]ids.ID, error) { return r.c.Sessions() }

// Count implements shard.Shard.
func (r *RemoteShard) Count() (prep.CountResponse, error) { return r.c.Count() }

// DeleteRecords implements shard.Shard: the whole batch retracts in one
// round trip, so a drain's delete half costs one request per moved page
// (and the router's delete fence is held for one RTT, not one per key).
func (r *RemoteShard) DeleteRecords(keys []string) (int, error) {
	if len(keys) == 0 {
		return 0, nil
	}
	resp, err := r.c.DeleteRecords(keys)
	if err != nil {
		return 0, err
	}
	r.invalidateStats()
	return resp.Deleted, nil
}

// DeleteSession implements shard.Shard.
func (r *RemoteShard) DeleteSession(session ids.ID) (int, error) {
	resp, err := r.c.DeleteSession(session)
	if err != nil {
		return 0, err
	}
	r.invalidateStats()
	return resp.Deleted, nil
}

// Compact implements shard.Shard.
func (r *RemoteShard) Compact() error {
	_, err := r.c.Compact()
	if err == nil {
		r.invalidateStats()
	}
	return err
}

// GarbageRatio implements shard.Shard via the endpoint's stats action
// (TTL-cached — the router probes this on every delete). An endpoint
// that cannot answer contributes zero, the pre-stats behaviour: the
// remote store schedules its own compactions then.
func (r *RemoteShard) GarbageRatio() float64 {
	st, err := r.cachedStats()
	if err != nil {
		return 0
	}
	return st.GarbageRatio
}

// Generation implements shard.GenerationProber via the endpoint's
// stats action (TTL-cached). Mutations routed through this shard
// invalidate the cache immediately, so their generation bumps surface
// on the next probe; a writer shipping to the endpoint directly can be
// invisible for up to remoteStatsTTL — the same staleness window
// GarbageRatio already accepts, and bounded the same way. An endpoint
// that cannot answer — or one running an older server whose stats
// reply carries no generation — reports false, which makes the router
// bypass its result cache rather than trust a generation it cannot
// watch.
func (r *RemoteShard) Generation() (uint64, bool) {
	st, err := r.cachedStats()
	if err != nil || !st.GenerationValid {
		return 0, false
	}
	return st.Generation, true
}

// Tombstones implements shard.Shard via the endpoint's stats action
// (TTL-cached; zero when the endpoint cannot answer).
func (r *RemoteShard) Tombstones() int64 {
	st, err := r.cachedStats()
	if err != nil {
		return 0
	}
	return st.Tombstones
}

// EngineStats implements shard.EngineStatser via the endpoint's stats
// action, so a router's engine aggregate covers its remote children
// (zero when the endpoint cannot answer).
func (r *RemoteShard) EngineStats() shard.EngineStats {
	st, err := r.cachedStats()
	if err != nil {
		return shard.EngineStats{}
	}
	return shard.EngineStatsFromWire(st.Engine)
}

// ShardStats implements shard.ShardStatser: the endpoint's own stats
// reply collapses to one shard's view. This read is a live poll, not
// the TTL cache — an operator asking for the per-shard breakdown wants
// current numbers — and it refreshes the cache as a side effect.
func (r *RemoteShard) ShardStats() (prep.ShardStats, error) {
	r.invalidateStats()
	st, err := r.cachedStats()
	if err != nil {
		return prep.ShardStats{}, err
	}
	return prep.ShardStats{
		URL:          r.c.URL(),
		Records:      st.Records,
		GarbageRatio: st.GarbageRatio,
		Tombstones:   st.Tombstones,
		Engine:       st.Engine,
		ReadCache:    st.ReadCache,
		Histograms:   st.Histograms,
		Slow:         st.Slow,
	}, nil
}

// Close implements shard.Shard; the underlying HTTP client needs no
// teardown and the remote store's lifecycle is its own.
func (r *RemoteShard) Close() error { return nil }

var (
	_ shard.Shard            = (*RemoteShard)(nil)
	_ shard.ShardStatser     = (*RemoteShard)(nil)
	_ shard.EngineStatser    = (*RemoteShard)(nil)
	_ shard.GenerationProber = (*RemoteShard)(nil)
)

// NewRemoteRouter builds a Router over the comma-separated remote store
// URLs — the shared front half of `preserv -shard-endpoints` and
// `provq -shards`. Blank entries (a trailing or doubled comma) are
// tolerated; a list naming no endpoint is an error.
func NewRemoteRouter(csv string) (*shard.Router, error) {
	var children []shard.Shard
	for _, u := range strings.Split(csv, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		children = append(children, NewRemoteShard(NewClient(u, nil)))
	}
	if len(children) == 0 {
		return nil, fmt.Errorf("preserv: shard endpoint list %q names no endpoint", csv)
	}
	return shard.NewRouter(children...)
}
