package preserv

import (
	"fmt"
	"strings"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
	"preserv/internal/shard"
)

// RemoteShard adapts a PReP client into a shard.Shard, so a Router can
// front remote PReServ endpoints the same way it fronts embedded child
// stores — the front-end half of the paper's distributed PReServ: the
// AsyncRecorder already ships to several endpoints; a Router over
// RemoteShards is what makes those endpoints answer queries as one.
type RemoteShard struct {
	c *Client
}

// NewRemoteShard wraps a client as a shard.
func NewRemoteShard(c *Client) *RemoteShard { return &RemoteShard{c: c} }

// URL reports the remote endpoint.
func (r *RemoteShard) URL() string { return r.c.URL() }

// Record implements shard.Shard.
func (r *RemoteShard) Record(asserter core.ActorID, records []core.Record) (int, []prep.Reject, error) {
	resp, err := r.c.Record(asserter, records)
	if err != nil {
		return 0, nil, err
	}
	return resp.Accepted, resp.Rejects, nil
}

// Query implements shard.Shard via the endpoint's scan path.
func (r *RemoteShard) Query(q *prep.Query) ([]core.Record, int, error) {
	return r.c.Query(q)
}

// QueryPlanned implements shard.Shard.
func (r *RemoteShard) QueryPlanned(q *prep.Query) ([]core.Record, int, *prep.QueryPlan, error) {
	return r.c.QueryPlanned(q)
}

// QueryPage implements shard.Shard.
func (r *RemoteShard) QueryPage(q *prep.Query, after string, pageSize int) ([]core.Record, string, bool, *prep.QueryPlan, error) {
	resp, err := r.c.QueryPage(q, after, pageSize)
	if err != nil {
		return nil, "", false, nil, err
	}
	plan := resp.Plan
	return resp.Records, resp.Next, resp.Done, &plan, nil
}

// Sessions implements shard.Shard.
func (r *RemoteShard) Sessions() ([]ids.ID, error) { return r.c.Sessions() }

// Count implements shard.Shard.
func (r *RemoteShard) Count() (prep.CountResponse, error) { return r.c.Count() }

// DeleteRecords implements shard.Shard: the whole batch retracts in one
// round trip, so a drain's delete half costs one request per moved page
// (and the router's delete fence is held for one RTT, not one per key).
func (r *RemoteShard) DeleteRecords(keys []string) (int, error) {
	if len(keys) == 0 {
		return 0, nil
	}
	resp, err := r.c.DeleteRecords(keys)
	if err != nil {
		return 0, err
	}
	return resp.Deleted, nil
}

// DeleteSession implements shard.Shard.
func (r *RemoteShard) DeleteSession(session ids.ID) (int, error) {
	resp, err := r.c.DeleteSession(session)
	if err != nil {
		return 0, err
	}
	return resp.Deleted, nil
}

// Compact implements shard.Shard.
func (r *RemoteShard) Compact() error {
	_, err := r.c.Compact()
	return err
}

// GarbageRatio implements shard.Shard. The wire protocol reports the
// ratio only on delete/compact responses, so a remote shard cannot be
// polled for it; it contributes zero to the router's aggregate and the
// remote endpoint schedules its own compactions.
func (r *RemoteShard) GarbageRatio() float64 { return 0 }

// Tombstones implements shard.Shard (zero: not reported on the wire).
func (r *RemoteShard) Tombstones() int64 { return 0 }

// Close implements shard.Shard; the underlying HTTP client needs no
// teardown and the remote store's lifecycle is its own.
func (r *RemoteShard) Close() error { return nil }

var _ shard.Shard = (*RemoteShard)(nil)

// NewRemoteRouter builds a Router over the comma-separated remote store
// URLs — the shared front half of `preserv -shard-endpoints` and
// `provq -shards`. Blank entries (a trailing or doubled comma) are
// tolerated; a list naming no endpoint is an error.
func NewRemoteRouter(csv string) (*shard.Router, error) {
	var children []shard.Shard
	for _, u := range strings.Split(csv, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		children = append(children, NewRemoteShard(NewClient(u, nil)))
	}
	if len(children) == 0 {
		return nil, fmt.Errorf("preserv: shard endpoint list %q names no endpoint", csv)
	}
	return shard.NewRouter(children...)
}
