package preserv

// Wire-level tests for the planned-query and sessions actions: the
// predicate (including its time-range bounds) and the plan must survive
// the XML round trip, and the indexed read side must agree with the
// scan read side end-to-end over HTTP.

import (
	"reflect"
	"testing"
	"time"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
)

func TestPlannedQueryOverHTTP(t *testing.T) {
	client, _ := startServer(t)
	s1, s2 := seq.NewID(), seq.NewID()
	for _, session := range []ids.ID{s1, s2} {
		r := mkRecord(session, "svc:gzip")
		if _, err := client.Record("svc:enactor", []core.Record{r}); err != nil {
			t.Fatal(err)
		}
	}

	q := &prep.Query{SessionID: s1, Kind: core.KindInteraction.String()}
	wantRecs, wantTotal, err := client.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	recs, total, plan, err := client.QueryPlanned(q)
	if err != nil {
		t.Fatal(err)
	}
	if total != wantTotal || len(recs) != len(wantRecs) {
		t.Fatalf("planned %d/%d vs scan %d/%d", len(recs), total, len(wantRecs), wantTotal)
	}
	if recs[0].StorageKey() != wantRecs[0].StorageKey() {
		t.Errorf("planned and scan paths returned different records")
	}
	if plan.Strategy != prep.PlanIndex {
		t.Errorf("plan strategy = %q, want index", plan.Strategy)
	}
	if len(plan.Dims) == 0 || plan.Candidates == 0 {
		t.Errorf("plan not populated over the wire: %+v", plan)
	}

	// A repeat of the same predicate is served from the result cache.
	_, _, plan2, err := client.QueryPlanned(q)
	if err != nil {
		t.Fatal(err)
	}
	if !plan2.Cached {
		t.Errorf("repeat plan = %+v, want cache hit", plan2)
	}
}

func TestPlannedQueryTimeRangeOverHTTP(t *testing.T) {
	// Since/Until must survive XML marshalling (time.Time text form).
	client, _ := startServer(t)
	session := seq.NewID()
	r := mkRecord(session, "svc:gzip")
	if _, err := client.Record("svc:enactor", []core.Record{r}); err != nil {
		t.Fatal(err)
	}
	ts := r.Interaction.Timestamp
	recs, total, plan, err := client.QueryPlanned(&prep.Query{
		Since: ts.Add(-time.Minute),
		Until: ts.Add(time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 1 || len(recs) != 1 {
		t.Fatalf("time-range query: %d/%d, want the one record", len(recs), total)
	}
	if len(plan.Dims) != 1 || plan.Dims[0] != "time" {
		t.Errorf("plan dims = %v, want the time index", plan.Dims)
	}
	if _, total, _, err = client.QueryPlanned(&prep.Query{Until: ts.Add(-time.Hour)}); err != nil || total != 0 {
		t.Errorf("out-of-range query: total=%d err=%v", total, err)
	}
}

func TestSessionsOverHTTP(t *testing.T) {
	client, _ := startServer(t)
	if sessions, err := client.Sessions(); err != nil || len(sessions) != 0 {
		t.Fatalf("empty store sessions = %v err=%v", sessions, err)
	}
	s1, s2 := seq.NewID(), seq.NewID()
	for _, session := range []ids.ID{s1, s2, s1} {
		r := mkRecord(session, "svc:gzip")
		if _, err := client.Record("svc:enactor", []core.Record{r}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := client.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	want := []ids.ID{s1, s2}
	if s2.Compare(s1) < 0 {
		want = []ids.ID{s2, s1}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sessions = %v, want %v", got, want)
	}
	// The package-level helper is the same call.
	viaHelper, err := Sessions(client)
	if err != nil || !reflect.DeepEqual(viaHelper, got) {
		t.Fatalf("Sessions helper = %v err=%v", viaHelper, err)
	}
}
