package preserv

// Wire-level tests for drain-safe paging: a composite cursor minted
// before a drain comes back over HTTP as a typed shard.ErrStaleCursor
// (bad-request fault, re-typed by the client), QueryStream absorbs the
// rejection by restarting from the last delivered key, and the stats
// action surfaces the router's drain epoch.

import (
	"errors"
	"reflect"
	"testing"

	"preserv/internal/core"
	"preserv/internal/prep"
	"preserv/internal/shard"
)

func TestStaleCursorFaultTypedAcrossWire(t *testing.T) {
	client, _, rt := startShardedServer(t, 3)
	recordShardSessions(t, client, 6, 4)

	q := &prep.Query{}
	first, err := client.QueryPage(q, "", 5)
	if err != nil || first.Done || first.Next == "" {
		t.Fatalf("first page: %+v err=%v", first, err)
	}
	if _, err := rt.Drain(1); err != nil {
		t.Fatal(err)
	}
	_, err = client.QueryPage(q, first.Next, 5)
	if !errors.Is(err, shard.ErrStaleCursor) {
		t.Fatalf("pre-drain cursor over the wire: err=%v, want ErrStaleCursor", err)
	}
	// A fresh walk works under the new epoch.
	if _, err := client.QueryPage(q, "", 5); err != nil {
		t.Fatal(err)
	}
}

func TestQueryStreamSurvivesDrain(t *testing.T) {
	client, _, rt := startShardedServer(t, 3)
	recordShardSessions(t, client, 8, 4)
	rt.SetDrainPageSize(4)

	q := &prep.Query{}
	want, _, err := client.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 32 {
		t.Fatalf("reference holds %d records, want 32", len(want))
	}

	// Drain mid-stream: fn runs between page requests, so the drain
	// lands exactly where a cursor from the first pages goes stale.
	var got []core.Record
	drained := false
	_, err = client.QueryStream(q, 5, func(r *core.Record) error {
		got = append(got, *r)
		if len(got) == 7 && !drained {
			drained = true
			if _, err := rt.Drain(2); err != nil {
				t.Fatal(err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !drained {
		t.Fatal("drain never triggered")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream across drain delivered %d records, want %d (exact committed set)", len(got), len(want))
	}
}

func TestStatsSurfaceDrainEpoch(t *testing.T) {
	client, svc, rt := startShardedServer(t, 3)
	recordShardSessions(t, client, 4, 3)

	st, err := svc.StatsResponse()
	if err != nil {
		t.Fatal(err)
	}
	if st.DrainEpoch != 0 || st.OverlapSuspected {
		t.Fatalf("fresh router stats: epoch=%d overlap=%v, want 0/false", st.DrainEpoch, st.OverlapSuspected)
	}
	if _, err := rt.Drain(1); err != nil {
		t.Fatal(err)
	}
	st, err = svc.StatsResponse()
	if err != nil {
		t.Fatal(err)
	}
	if st.DrainEpoch == 0 {
		t.Fatal("drain epoch not surfaced in stats after a drain")
	}
	if st.OverlapSuspected {
		t.Fatal("clean drain reported suspected overlap")
	}
}
