package preserv

import (
	"testing"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/store"
)

func TestConsolidateMergesStores(t *testing.T) {
	// Three sources with disjoint sessions plus one record duplicated
	// across two of them.
	var sources []*Client
	session := seq.NewID()
	shared := mkRecord(session, "svc:gzip")
	for i := 0; i < 3; i++ {
		c, _ := startServer(t)
		sources = append(sources, c)
		recs := []core.Record{mkRecord(seq.NewID(), "svc:gzip")}
		if i < 2 {
			recs = append(recs, shared)
		}
		if _, err := c.Record("svc:enactor", recs); err != nil {
			t.Fatal(err)
		}
	}
	dst, _ := startServer(t)

	accepted, err := Consolidate(dst, sources...)
	if err != nil {
		t.Fatal(err)
	}
	// 3 unique + shared accepted twice (idempotently).
	if accepted != 5 {
		t.Errorf("accepted = %d, want 5", accepted)
	}
	cnt, err := dst.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Interactions != 4 {
		t.Errorf("consolidated store holds %d interactions, want 4 (dedup)", cnt.Interactions)
	}
}

func TestConsolidatePreservesAsserters(t *testing.T) {
	src, _ := startServer(t)
	session := seq.NewID()
	r := mkRecord(session, "svc:gzip")
	scr := mkScriptRecord(r.Interaction.Interaction, session, "#!s")
	if _, err := src.Record("svc:enactor", []core.Record{r}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Record("svc:gzip", []core.Record{scr}); err != nil {
		t.Fatal(err)
	}
	dst, _ := startServer(t)
	accepted, err := Consolidate(dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 2 {
		t.Errorf("accepted = %d, want 2", accepted)
	}
	cnt, _ := dst.Count()
	if cnt.Interactions != 1 || cnt.ActorStates != 1 {
		t.Errorf("consolidated counts = %+v", cnt)
	}
}

func TestSessionsDiscovery(t *testing.T) {
	c, _ := startServer(t)
	s1, s2 := seq.NewID(), seq.NewID()
	for i := 0; i < 3; i++ {
		if _, err := c.Record("svc:enactor", []core.Record{mkRecord(s1, "svc:gzip")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Record("svc:enactor", []core.Record{mkRecord(s2, "svc:ppmz")}); err != nil {
		t.Fatal(err)
	}
	sessions, err := Sessions(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 2 {
		t.Fatalf("sessions = %v, want 2", sessions)
	}
	found := map[ids.ID]bool{}
	for _, s := range sessions {
		found[s] = true
	}
	if !found[s1] || !found[s2] {
		t.Errorf("sessions %v missing %v or %v", sessions, s1, s2)
	}
	// Sorted order.
	if sessions[0].Compare(sessions[1]) >= 0 {
		t.Error("sessions not sorted")
	}
}

func TestSessionsEmptyStore(t *testing.T) {
	c, _ := startServer(t)
	sessions, err := Sessions(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 0 {
		t.Errorf("sessions = %v", sessions)
	}
}

func TestConsolidateEmptySources(t *testing.T) {
	dst, _ := startServer(t)
	src, _ := startServer(t)
	accepted, err := Consolidate(dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 0 {
		t.Errorf("accepted = %d", accepted)
	}
	accepted, err = Consolidate(dst)
	if err != nil || accepted != 0 {
		t.Errorf("no sources: %d %v", accepted, err)
	}
}

func TestConsolidateDeadSource(t *testing.T) {
	dst, _ := startServer(t)
	dead := NewClient("http://127.0.0.1:1", nil)
	if _, err := Consolidate(dst, dead); err == nil {
		t.Error("dead source should fail")
	}
}

func TestConsolidateDistributedRunRoundTrip(t *testing.T) {
	// E8's companion: after a distributed async run, consolidation
	// produces one store holding the whole session.
	var sources []*Client
	var urls []string
	for i := 0; i < 3; i++ {
		c, svc := startServer(t)
		_ = svc
		sources = append(sources, c)
		urls = append(urls, c.URL())
	}
	_ = urls
	session := seq.NewID()
	// Stripe 30 records over the three stores by hand.
	for i := 0; i < 30; i++ {
		r := mkRecord(session, "svc:gzip")
		if _, err := sources[i%3].Record("svc:enactor", []core.Record{r}); err != nil {
			t.Fatal(err)
		}
	}
	dstBackend := store.NewMemoryBackend()
	dstSvc := NewService(store.New(dstBackend))
	srv, err := Serve(dstSvc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dst := NewClient(srv.URL, nil)

	accepted, err := Consolidate(dst, sources...)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 30 {
		t.Errorf("accepted = %d, want 30", accepted)
	}
	cnt, _ := dst.Count()
	if cnt.Interactions != 30 {
		t.Errorf("consolidated = %d interactions, want 30", cnt.Interactions)
	}
	var _ ids.ID = session
}
