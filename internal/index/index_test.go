package index_test

import (
	"fmt"
	. "preserv/internal/index"
	"testing"
	"time"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/store"
)

var seq = &ids.SeqSource{Prefix: 0xD1}

var t0 = time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)

// makeActivity builds one interaction record and one script actor-state
// record for the same interaction.
func makeActivity(session ids.ID, asserter, service core.ActorID, n uint64, ts time.Time) (core.Record, core.Record, ids.ID) {
	in := core.Interaction{ID: seq.NewID(), Sender: asserter, Receiver: service, Operation: "run"}
	dataIn, dataOut := seq.NewID(), seq.NewID()
	groups := []core.GroupRef{{Type: core.GroupSession, ID: session, Seq: n}}
	inter := *core.NewInteractionRecord(&core.InteractionPAssertion{
		LocalID:     fmt.Sprintf("e%d", n),
		Asserter:    asserter,
		Interaction: in,
		View:        core.SenderView,
		Request:     core.Message{Name: "invoke", Parts: []core.MessagePart{{Name: "in", DataID: dataIn}}},
		Response:    core.Message{Name: "result", Parts: []core.MessagePart{{Name: "out", DataID: dataOut}}},
		Groups:      groups,
		Timestamp:   ts,
	})
	state := *core.NewActorStateRecord(&core.ActorStatePAssertion{
		LocalID:     fmt.Sprintf("s%d", n),
		Asserter:    asserter,
		Interaction: in,
		View:        core.SenderView,
		StateKind:   core.StateScript,
		Content:     core.Bytes("script"),
		Groups:      groups,
		Timestamp:   ts,
	})
	return inter, state, dataOut
}

// put encodes and stores a record directly in a backend, bypassing the
// Store layer (and therefore the write-through index).
func put(t *testing.T, kv KV, r *core.Record) {
	t.Helper()
	encoded, err := core.EncodeRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(r.StorageKey(), encoded); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRebuildsUnindexedStore(t *testing.T) {
	// Records written before indexing existed: Open must detect the
	// missing schema marker and rebuild postings from a scan.
	b := store.NewMemoryBackend()
	session := seq.NewID()
	inter, state, _ := makeActivity(session, "svc:a", "svc:gzip", 1, t0)
	put(t, b, &inter)
	put(t, b, &state)

	ix, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	list, err := ix.Postings(DimSession, session.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("session postings after rebuild = %v, want both records", list)
	}
	if list[0] != inter.StorageKey() || list[1] != state.StorageKey() {
		t.Errorf("posting order = %v, want sorted storage keys", list)
	}
}

func TestOpenRepairsPostingDeficit(t *testing.T) {
	// A record written after the schema marker but without its postings
	// (crash between the record put and the index put) must trigger a
	// rebuild on the next Open.
	b := store.NewMemoryBackend()
	if _, err := Open(b); err != nil { // writes the schema marker
		t.Fatal(err)
	}
	session := seq.NewID()
	inter, _, _ := makeActivity(session, "svc:a", "svc:gzip", 1, t0)
	put(t, b, &inter)

	ix, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	list, err := ix.Postings(DimInteraction, inter.InteractionID().String())
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Fatalf("interaction postings = %v, want the repaired record", list)
	}
}

func TestPostingsPerDimension(t *testing.T) {
	b := store.NewMemoryBackend()
	ix, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	session := seq.NewID()
	inter, state, dataOut := makeActivity(session, "svc:a", "svc:gzip", 1, t0)
	for _, r := range []*core.Record{&inter, &state} {
		put(t, b, r)
		if err := ix.Add(r); err != nil {
			t.Fatal(err)
		}
	}

	checks := []struct {
		dim, term string
		want      int
	}{
		{DimKind, "i", 1},
		{DimKind, "s", 1},
		{DimInteraction, inter.InteractionID().String(), 2},
		{DimSession, session.String(), 2},
		{DimGroup, session.String(), 2},
		{DimActor, "svc:a", 2},
		{DimService, "svc:gzip", 2},
		{DimState, core.StateScript, 1},
		{DimData, dataOut.String(), 1},
		{DimTime, TimeTerm(t0), 2},
		{DimSession, seq.NewID().String(), 0},
	}
	for _, c := range checks {
		n, err := ix.CountPostings(c.dim, c.term)
		if err != nil {
			t.Fatal(err)
		}
		if n != c.want {
			t.Errorf("CountPostings(%s, %s) = %d, want %d", c.dim, c.term, n, c.want)
		}
	}
}

func TestTermEscapingRoundTrips(t *testing.T) {
	// Actor names may contain '/' and '%'; postings must neither collide
	// nor corrupt the term enumeration.
	b := store.NewMemoryBackend()
	ix, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	session := seq.NewID()
	inter, _, _ := makeActivity(session, "org/unit%5/svc", "svc:gzip", 1, t0)
	put(t, b, &inter)
	if err := ix.Add(&inter); err != nil {
		t.Fatal(err)
	}
	n, err := ix.CountPostings(DimActor, "org/unit%5/svc")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("escaped-term postings = %d, want 1", n)
	}
	terms, err := ix.Terms(DimActor)
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 1 || terms[0] != "org/unit%5/svc" {
		t.Fatalf("Terms = %v, want the unescaped actor name", terms)
	}
}

func TestScanTimeRange(t *testing.T) {
	b := store.NewMemoryBackend()
	ix, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	session := seq.NewID()
	var keysByHour []string
	for h := 0; h < 5; h++ {
		inter, _, _ := makeActivity(session, "svc:a", "svc:gzip", uint64(h+1), t0.Add(time.Duration(h)*time.Hour))
		put(t, b, &inter)
		if err := ix.Add(&inter); err != nil {
			t.Fatal(err)
		}
		keysByHour = append(keysByHour, inter.StorageKey())
	}

	collect := func(since, until time.Time) []string {
		var got []string
		if err := ix.ScanTimeRange(since, until, func(skey string) error {
			got = append(got, skey)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}

	mid := collect(t0.Add(1*time.Hour), t0.Add(3*time.Hour))
	if len(mid) != 3 {
		t.Fatalf("inclusive [h1,h3] = %d keys, want 3", len(mid))
	}
	if got := collect(time.Time{}, t0.Add(30*time.Minute)); len(got) != 1 || got[0] != keysByHour[0] {
		t.Fatalf("open lower bound = %v, want only hour 0", got)
	}
	if got := collect(t0.Add(210*time.Minute), time.Time{}); len(got) != 1 || got[0] != keysByHour[4] {
		t.Fatalf("open upper bound = %v, want only hour 4", got)
	}
	if got := collect(t0.Add(10*time.Hour), time.Time{}); len(got) != 0 {
		t.Fatalf("empty range returned %v", got)
	}
}

func TestSessionsEnumeratesDistinctTerms(t *testing.T) {
	b := store.NewMemoryBackend()
	ix, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := seq.NewID(), seq.NewID()
	for i, session := range []ids.ID{s1, s2, s1} {
		inter, state, _ := makeActivity(session, "svc:a", "svc:gzip", uint64(i+1), t0)
		for _, r := range []*core.Record{&inter, &state} {
			put(t, b, r)
			if err := ix.Add(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	sessions, err := ix.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 2 {
		t.Fatalf("sessions = %v, want the 2 distinct ids", sessions)
	}
	for i := 1; i < len(sessions); i++ {
		if sessions[i-1].Compare(sessions[i]) >= 0 {
			t.Errorf("sessions not sorted: %v", sessions)
		}
	}
}

func TestRebuildSkipsCorruptRecords(t *testing.T) {
	// A record value that no longer decodes must not fail the rebuild
	// (recording stays available); the skip is remembered so the next
	// Open does not rebuild forever.
	b := store.NewMemoryBackend()
	session := seq.NewID()
	inter, _, _ := makeActivity(session, "svc:a", "svc:gzip", 1, t0)
	put(t, b, &inter)
	if err := b.Put("i/urn:pasoa:ffffffffffffffffffffffffffffffff/sender/svc:a/torn", []byte("not a gob record")); err != nil {
		t.Fatal(err)
	}

	ix, err := Open(b)
	if err != nil {
		t.Fatalf("rebuild over corrupt record failed: %v", err)
	}
	n, err := ix.CountPostings(DimSession, session.String())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("healthy record not indexed: postings = %d", n)
	}

	// Reopen: the deficit marker must satisfy the consistency check, so
	// the healthy record's postings are still exactly one (a repeated
	// rebuild would not change counts, but a fresh marker write would
	// not be needed either — assert Open succeeds and sees a clean
	// index).
	if _, err := Open(b); err != nil {
		t.Fatalf("reopen after tolerated corruption failed: %v", err)
	}
}

func TestIndexPersistsAcrossReopen(t *testing.T) {
	// On a persistent backend the postings survive a restart: reopening
	// must not rebuild (observed via the posting count staying exact).
	dir := t.TempDir()
	open := func() (*store.KVBackend, *Index) {
		b, err := store.NewKVBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Open(b)
		if err != nil {
			t.Fatal(err)
		}
		return b, ix
	}
	b, ix := open()
	session := seq.NewID()
	inter, state, _ := makeActivity(session, "svc:a", "svc:gzip", 1, t0)
	for _, r := range []*core.Record{&inter, &state} {
		put(t, b, r)
		if err := ix.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b, ix = open()
	defer b.Close()
	n, err := ix.CountPostings(DimSession, session.String())
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("postings after reopen = %d, want 2", n)
	}
}

func TestPostingIterSequential(t *testing.T) {
	// Next must visit exactly what Postings materialises, in order —
	// across chunk refills (the store holds several chunks' worth).
	backend := store.NewMemoryBackend()
	ix, err := Open(backend)
	if err != nil {
		t.Fatal(err)
	}
	session := seq.NewID()
	const n = 150 // > 2 × iterChunk
	for i := 0; i < n; i++ {
		inter, _, _ := makeActivity(session, "svc:enactor", "svc:gzip", uint64(i+1), t0)
		if err := ix.Add(&inter); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ix.Postings(DimSession, session.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != n {
		t.Fatalf("postings = %d, want %d", len(want), n)
	}
	it := ix.Iter(DimSession, session.String())
	var got []string
	for {
		k, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, k)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("iterator visited %d keys, Postings %d; diverged", len(got), len(want))
	}
	if it.Read() != n {
		t.Errorf("Read() = %d, want %d", it.Read(), n)
	}
	// Next past the end stays exhausted.
	if _, ok, err := it.Next(); ok || err != nil {
		t.Errorf("Next after end: ok=%v err=%v", ok, err)
	}
}

func TestPostingIterSeek(t *testing.T) {
	backend := store.NewMemoryBackend()
	ix, err := Open(backend)
	if err != nil {
		t.Fatal(err)
	}
	session := seq.NewID()
	const n = 150
	for i := 0; i < n; i++ {
		inter, _, _ := makeActivity(session, "svc:enactor", "svc:gzip", uint64(i+1), t0)
		if err := ix.Add(&inter); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ix.Postings(DimSession, session.String())
	if err != nil {
		t.Fatal(err)
	}

	// Seek to an existing key is inclusive.
	it := ix.Iter(DimSession, session.String())
	k, ok, err := it.Seek(want[100])
	if err != nil || !ok || k != want[100] {
		t.Fatalf("Seek(existing) = %q ok=%v err=%v, want %q", k, ok, err, want[100])
	}
	// The stream continues from there.
	k, ok, err = it.Next()
	if err != nil || !ok || k != want[101] {
		t.Fatalf("Next after seek = %q ok=%v err=%v, want %q", k, ok, err, want[101])
	}

	// Seek between keys lands on the successor; a sparse seek far ahead
	// must not read the skipped run.
	it2 := ix.Iter(DimSession, session.String())
	if _, ok, err := it2.Next(); !ok || err != nil {
		t.Fatal("first Next failed")
	}
	readBefore := it2.Read()
	k, ok, err = it2.Seek(want[len(want)-1])
	if err != nil || !ok || k != want[len(want)-1] {
		t.Fatalf("sparse Seek = %q ok=%v err=%v", k, ok, err)
	}
	if skipped := it2.Read() - readBefore; skipped > 2*64 {
		t.Errorf("sparse seek read %d entries; the skipped run was not skipped", skipped)
	}

	// Seek past the end exhausts.
	k, ok, err = it2.Seek(want[len(want)-1] + "\xff")
	if err != nil || ok {
		t.Fatalf("Seek past end = %q ok=%v err=%v, want exhausted", k, ok, err)
	}

	// A missing term yields an empty list.
	it3 := ix.Iter(DimSession, seq.NewID().String())
	if _, ok, err := it3.Next(); ok || err != nil {
		t.Errorf("empty-term Next: ok=%v err=%v", ok, err)
	}
}
