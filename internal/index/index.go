// Package index maintains secondary indexes over the provenance store's
// records so that queries scoped by session, actor, interaction, data
// item, record kind or time range resolve without scanning the whole
// store — the leverage that keeps the paper's use cases (run comparison
// and semantic validation) fast as the store grows to many sessions.
//
// The index is a set of posting entries persisted in the same backend as
// the records themselves, under the reserved key prefixes "x/" (postings)
// and "xm/" (metadata), which never collide with the record prefixes "i/"
// and "s/". One posting entry is one key
//
//	x/<dim>/<escaped term>/<record storage key>
//
// with an empty value: the backend's sorted prefix scan over
// x/<dim>/<term>/ therefore yields the matching records' storage keys in
// sorted order, which is exactly a sorted posting list — intersections
// are sorted merges, and record fetches are point Gets. Because entries
// are write-once and content-free, index maintenance needs no
// read-modify-write and re-adding a record's postings (during rebuild,
// or after a crash between the record put and the index put) is
// idempotent under the Backend contract.
//
// Stores recorded before indexing existed are detected at Open time by a
// missing schema marker or by posting counts disagreeing with record
// counts, and are rebuilt with one full scan. See DESIGN.md for the full
// layout.
package index

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/kv"
)

// Index dimensions. Each names one secondary index over the records.
const (
	// DimInteraction indexes by interaction identifier.
	DimInteraction = "int"
	// DimSession indexes by session group identifier.
	DimSession = "sess"
	// DimGroup indexes by group identifier, of any group type
	// (sessions appear here too).
	DimGroup = "grp"
	// DimActor indexes by asserting actor.
	DimActor = "actor"
	// DimService indexes by the interaction's receiver (the service).
	DimService = "svc"
	// DimState indexes actor-state records by state kind.
	DimState = "state"
	// DimData indexes interaction records by the data identifiers their
	// message parts carry.
	DimData = "data"
	// DimKind indexes by record kind ("i" or "s").
	DimKind = "kind"
	// DimTime indexes by assertion timestamp, in a fixed-width sortable
	// form so the backend's sorted scan doubles as a range scan.
	DimTime = "time"
)

const (
	postingPrefix = "x/"
	metaPrefix    = "xm/"
	schemaKey     = metaPrefix + "schema"
	// deficitKeyPrefix + kind tag stores how many records of that kind
	// the last rebuild could not decode (and therefore not index), so
	// the Open-time consistency check can tell "corrupt, known and
	// skipped" apart from "postings missing, rebuild needed".
	deficitKeyPrefix = metaPrefix + "deficit/"
	schemaVersion    = "1"

	// timeLayout is fixed-width and zero-padded so lexicographic key
	// order equals chronological order.
	timeLayout = "20060102T150405.000000000"
)

// KV is the slice of the store Backend contract the index needs. It is
// satisfied by store.Backend (declared here to avoid an import cycle:
// the store maintains the index write-through on Record).
type KV interface {
	Put(key string, value []byte) error
	// PutBatch stores several pairs in one backend operation, preserving
	// slice order — the property AddBatch's commit-marker layout needs.
	PutBatch(kvs []kv.Pair) error
	Get(key string) (value []byte, ok bool, err error)
	Scan(prefix string, fn func(key string, value []byte) error) error
	// ScanFrom is Scan restricted to keys >= from — what lets a posting
	// iterator resume a partially consumed list without re-reading its
	// head.
	ScanFrom(prefix, from string, fn func(key string, value []byte) error) error
	Count(prefix string) (int, error)
	// Delete removes one key (absent keys are no-ops); DeleteBatch
	// removes several in one backend operation, preserving slice order —
	// the property RemoveBatch's commit-marker layout needs.
	Delete(key string) error
	DeleteBatch(keys []string) error
}

// Index is an open secondary index over a backend.
type Index struct {
	kv KV
}

// Open attaches to (creating or rebuilding as needed) the index stored
// in kv. A store recorded before indexing existed — no schema marker, or
// posting counts that disagree with record counts (the signature of a
// crash between a record put and its index puts) — is rebuilt by one
// full scan; rebuilding is idempotent.
func Open(kv KV) (*Index, error) {
	ix := &Index{kv: kv}
	_, haveSchema, err := kv.Get(schemaKey)
	if err != nil {
		return nil, fmt.Errorf("index: reading schema marker: %w", err)
	}
	ni, err := kv.Count("i/")
	if err != nil {
		return nil, fmt.Errorf("index: counting interaction records: %w", err)
	}
	ns, err := kv.Count("s/")
	if err != nil {
		return nil, fmt.Errorf("index: counting actor-state records: %w", err)
	}
	pi, err := kv.Count(postingKeyPrefix(DimKind, "i"))
	if err != nil {
		return nil, fmt.Errorf("index: counting postings: %w", err)
	}
	ps, err := kv.Count(postingKeyPrefix(DimKind, "s"))
	if err != nil {
		return nil, fmt.Errorf("index: counting postings: %w", err)
	}
	di, err := ix.deficit("i")
	if err != nil {
		return nil, err
	}
	ds, err := ix.deficit("s")
	if err != nil {
		return nil, err
	}
	if haveSchema && pi+di == ni && ps+ds == ns {
		return ix, nil
	}
	if err := ix.Rebuild(); err != nil {
		return nil, err
	}
	if err := kv.Put(schemaKey, []byte(schemaVersion)); err != nil {
		return nil, fmt.Errorf("index: writing schema marker: %w", err)
	}
	return ix, nil
}

func (ix *Index) deficit(kindTag string) (int, error) {
	v, ok, err := ix.kv.Get(deficitKeyPrefix + kindTag)
	if err != nil {
		return 0, fmt.Errorf("index: reading deficit marker: %w", err)
	}
	if !ok {
		return 0, nil
	}
	n, err := strconv.Atoi(string(v))
	if err != nil || n < 0 {
		// A mangled marker just forces a rebuild.
		return -1, nil
	}
	return n, nil
}

// Rebuild derives every posting entry from the records themselves. It is
// safe to run over a partially indexed store: existing postings are
// re-put with identical (empty) content, and postings whose record no
// longer exists (deleted, then a crash before RemoveBatch finished) are
// garbage-collected — without the GC sweep a kind-posting surplus would
// re-trigger a rebuild at every Open forever. A record that no longer
// decodes is skipped rather than failing the rebuild — recording must
// stay available over a store with one torn value (the same policy the
// file backend applies to torn writes); the skip count is persisted so
// the Open-time consistency check does not re-trigger a rebuild forever.
func (ix *Index) Rebuild() error {
	skipped := map[string]int{"i": 0, "s": 0}
	// live collects every record storage key seen during the scan, so
	// the GC pass below can tell a re-puttable posting from a dangling
	// one.
	live := make(map[string]bool)
	// Postings are flushed in bounded chunks: one backend batch per
	// rebuildChunk records keeps rebuild memory flat while still
	// amortising the per-write cost (and, on the file backend, packing
	// postings into a handful of segment files rather than thousands).
	const rebuildChunk = 4096
	var pending []kv.Pair
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if err := ix.kv.PutBatch(pending); err != nil {
			return fmt.Errorf("index: rebuilding postings: %w", err)
		}
		pending = pending[:0]
		return nil
	}
	for _, prefix := range []string{"i/", "s/"} {
		kindTag := prefix[:1]
		err := ix.kv.Scan(prefix, func(key string, value []byte) error {
			live[key] = true
			r, err := core.DecodeRecord(value)
			if err != nil {
				skipped[kindTag]++
				return nil
			}
			for _, pk := range postingKeys(r) {
				pending = append(pending, kv.Pair{Key: pk})
			}
			if len(pending) >= rebuildChunk {
				return flush()
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	if err := flush(); err != nil {
		return err
	}
	// GC pass: delete postings that reference a record the scan did not
	// see. Queries already skip dangling postings at fetch time, but
	// their counts corrupt the planner's cardinality estimates and the
	// Open-time consistency check, so a rebuild sweeps them out.
	var doomed []string
	err := ix.kv.Scan(postingPrefix, func(key string, _ []byte) error {
		skey, ok := postingStorageKey(key)
		if ok && !live[skey] {
			doomed = append(doomed, key)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("index: sweeping dangling postings: %w", err)
	}
	for len(doomed) > 0 {
		n := len(doomed)
		if n > rebuildChunk {
			n = rebuildChunk
		}
		if err := ix.kv.DeleteBatch(doomed[:n]); err != nil {
			return fmt.Errorf("index: collecting dangling postings: %w", err)
		}
		doomed = doomed[n:]
	}
	for kindTag, n := range skipped {
		key := deficitKeyPrefix + kindTag
		want := strconv.Itoa(n)
		// Only write on change: a strictly write-once backend may reject
		// overwrites, and identical re-puts are always accepted.
		if cur, ok, err := ix.kv.Get(key); err == nil && ok && string(cur) == want {
			continue
		}
		if err := ix.kv.Put(key, []byte(want)); err != nil {
			return fmt.Errorf("index: writing deficit marker: %w", err)
		}
	}
	return nil
}

// Add writes the posting entries for one record.
func (ix *Index) Add(r *core.Record) error {
	return ix.AddBatch([]*core.Record{r})
}

// AddBatch writes the posting entries for a batch of records in ONE
// backend batch put — the store calls this once per accepted Record
// call, so a multi-record ingest batch costs one backend write for all
// its postings (~20 per record) instead of one write each.
//
// Ordering within the batch preserves the commit-marker property: each
// record's kind posting is last among its postings, and PutBatch
// implementations keep slice order, so a crash that durably keeps only a
// prefix of the batch leaves a kind-posting deficit for every
// incompletely indexed record — exactly what the Open-time consistency
// check counts.
func (ix *Index) AddBatch(records []*core.Record) error {
	if len(records) == 0 {
		return nil
	}
	pairs := make([]kv.Pair, 0, len(records)*16)
	for _, r := range records {
		for _, key := range postingKeys(r) {
			pairs = append(pairs, kv.Pair{Key: key})
		}
	}
	if err := ix.kv.PutBatch(pairs); err != nil {
		return fmt.Errorf("index: putting %d postings for %d records: %w", len(pairs), len(records), err)
	}
	return nil
}

// Remove deletes the posting entries of one record.
func (ix *Index) Remove(r *core.Record) error {
	return ix.RemoveBatch([]*core.Record{r})
}

// RemoveBatch deletes the posting entries for a batch of records in ONE
// backend batch delete — the store calls this once per DeleteRecord /
// DeleteSession call, mirroring AddBatch on the write path.
//
// Ordering within the batch preserves the commit-marker property in the
// removal direction: each record's kind posting is deleted LAST among
// its postings (postingKeys already emits it last, and DeleteBatch
// keeps slice order), so a crash that durably keeps only a prefix of
// the batch leaves a kind-posting SURPLUS for every incompletely
// de-indexed record — record counts have already shrunk, posting counts
// have not — which is exactly what the Open-time consistency check
// detects, and Rebuild's dangling-posting sweep repairs.
func (ix *Index) RemoveBatch(records []*core.Record) error {
	if len(records) == 0 {
		return nil
	}
	keys := make([]string, 0, len(records)*16)
	for _, r := range records {
		keys = append(keys, postingKeys(r)...)
	}
	if err := ix.kv.DeleteBatch(keys); err != nil {
		return fmt.Errorf("index: deleting %d postings for %d records: %w", len(keys), len(records), err)
	}
	return nil
}

// postingKeys computes the full posting key set of a record. The kind
// posting comes LAST: it is the entry the Open-time consistency check
// counts, so writing it after every other posting makes it a commit
// marker — a crash anywhere mid-Add leaves a kind-posting deficit that
// triggers a rebuild.
func postingKeys(r *core.Record) []string {
	skey := r.StorageKey()
	kindTag := "s"
	if r.Kind == core.KindInteraction {
		kindTag = "i"
	}
	keys := []string{
		postingKey(DimInteraction, r.InteractionID().String(), skey),
		postingKey(DimActor, string(r.Asserter()), skey),
	}
	if recv := r.Receiver(); recv != "" {
		keys = append(keys, postingKey(DimService, string(recv), skey))
	}
	for _, g := range r.Groups() {
		keys = append(keys, postingKey(DimGroup, g.ID.String(), skey))
		if g.Type == core.GroupSession {
			keys = append(keys, postingKey(DimSession, g.ID.String(), skey))
		}
	}
	if r.Kind == core.KindActorState && r.ActorState != nil {
		keys = append(keys, postingKey(DimState, r.ActorState.StateKind, skey))
	}
	for _, d := range r.DataIDs() {
		keys = append(keys, postingKey(DimData, d.String(), skey))
	}
	if ts := r.Timestamp(); !ts.IsZero() {
		keys = append(keys, postingKey(DimTime, TimeTerm(ts), skey))
	}
	keys = append(keys, postingKey(DimKind, kindTag, skey))
	return keys
}

// TimeTerm renders a timestamp as its index term: fixed-width UTC so
// that key order is chronological order.
func TimeTerm(t time.Time) string { return t.UTC().Format(timeLayout) }

func postingKey(dim, term, skey string) string {
	return postingKeyPrefix(dim, term) + skey
}

// postingKeyPrefix is the scan prefix covering one term's posting list.
func postingKeyPrefix(dim, term string) string {
	return postingPrefix + dim + "/" + escapeTerm(term) + "/"
}

// postingStorageKey extracts the record storage key a posting entry
// points at: the tail after "x/<dim>/<escaped term>/". Terms are escaped
// so neither component can contain '/'; storage keys themselves do.
func postingStorageKey(key string) (string, bool) {
	rest := key[len(postingPrefix):]
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return "", false
	}
	rest = rest[slash+1:]
	slash = strings.IndexByte(rest, '/')
	if slash < 0 || slash+1 >= len(rest) {
		return "", false
	}
	return rest[slash+1:], true
}

// escapeTerm makes a term safe to embed between '/' separators: '/' and
// '%' are percent-encoded. Identifier terms (urn:pasoa:<hex>) pass
// through untouched; only free-form actor names and state kinds can need
// escaping.
func escapeTerm(s string) string {
	if !strings.ContainsAny(s, "/%") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '/':
			b.WriteString("%2F")
		case '%':
			b.WriteString("%25")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func unescapeTerm(s string) string {
	if !strings.Contains(s, "%") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			switch s[i+1 : i+3] {
			case "2F":
				b.WriteByte('/')
				i += 2
				continue
			case "25":
				b.WriteByte('%')
				i += 2
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// ScanPostings visits the storage keys of every record indexed under
// (dim, term), in sorted storage-key order.
func (ix *Index) ScanPostings(dim, term string, fn func(storageKey string) error) error {
	prefix := postingKeyPrefix(dim, term)
	return ix.kv.Scan(prefix, func(key string, _ []byte) error {
		return fn(key[len(prefix):])
	})
}

// Postings materialises the sorted posting list of (dim, term).
// Streaming reads should prefer Iter: a materialised list costs memory
// proportional to the term's cardinality however few entries the caller
// consumes.
func (ix *Index) Postings(dim, term string) ([]string, error) {
	var out []string
	err := ix.ScanPostings(dim, term, func(skey string) error {
		out = append(out, skey)
		return nil
	})
	return out, err
}

// iterChunk is how many posting keys one buffer refill pulls from the
// backend. Large enough to amortise the seek (binary search + lock) over
// a run of sequential Next calls, small enough that a leapfrog
// intersection skipping most of a long list never drags whole sublists
// into memory.
const iterChunk = 64

// PostingIter is a seekable cursor over one term's sorted posting list.
// It streams the underlying key range in bounded chunks, so neither a
// long sequential read nor a sparse skip-heavy intersection ever
// materialises the full list. The zero value is not usable; call Iter.
//
// Iterators read the live index: postings added after a refill appear
// when the next chunk is pulled. That is the same read-uncommitted view
// a materialised Postings call has — one Record batch may be seen
// partially — and queries tolerate it the same way (a posting without a
// stored record is skipped at fetch time).
type PostingIter struct {
	kv     KV
	prefix string // full posting key prefix of (dim, term)
	buf    []string
	pos    int    // next unread entry of buf
	next   string // lower bound for the next refill ("" = list start)
	done   bool   // backend range exhausted
	read   int    // posting entries pulled from the backend (plan stats)
}

// Iter opens a cursor over the (dim, term) posting list.
func (ix *Index) Iter(dim, term string) *PostingIter {
	return &PostingIter{kv: ix.kv, prefix: postingKeyPrefix(dim, term)}
}

// Read reports how many posting entries the iterator has pulled from
// the backend — the actual read cost a query plan attributes to it.
func (it *PostingIter) Read() int { return it.read }

// refill pulls the next chunk of storage keys at or above `from`.
func (it *PostingIter) refill(from string) error {
	it.buf = it.buf[:0]
	it.pos = 0
	err := it.kv.ScanFrom(it.prefix, from, func(key string, _ []byte) error {
		it.buf = append(it.buf, key[len(it.prefix):])
		if len(it.buf) >= iterChunk {
			return errStop
		}
		return nil
	})
	if err != nil && err != errStop {
		return err
	}
	it.read += len(it.buf)
	if len(it.buf) < iterChunk {
		it.done = true // range exhausted; the buffer tail is all that is left
	} else {
		it.next = it.prefix + it.buf[len(it.buf)-1] + "\x00"
	}
	return nil
}

// Next returns the next storage key of the list, or ok=false at the end.
func (it *PostingIter) Next() (skey string, ok bool, err error) {
	if it.pos >= len(it.buf) {
		if it.done {
			return "", false, nil
		}
		if err := it.refill(it.next); err != nil {
			return "", false, err
		}
		if it.pos >= len(it.buf) {
			return "", false, nil
		}
	}
	skey = it.buf[it.pos]
	it.pos++
	return skey, true, nil
}

// Seek advances to the first storage key >= target and returns it (or
// ok=false if the list holds none). Seeking backwards is not supported:
// a target at or before the last returned key just yields the next
// entries in order.
func (it *PostingIter) Seek(target string) (skey string, ok bool, err error) {
	// Serve from the buffer when the target lies inside it.
	if it.pos < len(it.buf) {
		rest := it.buf[it.pos:]
		i := sort.SearchStrings(rest, target)
		if i < len(rest) {
			it.pos += i + 1
			return rest[i], true, nil
		}
		if it.done {
			return "", false, nil
		}
	} else if it.done {
		return "", false, nil
	}
	// Past the buffer: one backend seek directly to the target, skipping
	// the entries in between without reading them.
	from := it.prefix + target
	if from < it.next {
		from = it.next
	}
	if err := it.refill(from); err != nil {
		return "", false, err
	}
	if it.pos >= len(it.buf) {
		return "", false, nil
	}
	skey = it.buf[it.pos]
	it.pos++
	return skey, true, nil
}

// CountPostings reports the length of the (dim, term) posting list — the
// planner's selectivity estimate.
func (ix *Index) CountPostings(dim, term string) (int, error) {
	return ix.kv.Count(postingKeyPrefix(dim, term))
}

// errStop terminates a range scan early once past the upper bound.
var errStop = fmt.Errorf("index: stop scan")

// ScanTimeRange visits the storage keys of records asserted within the
// inclusive [since, until] range. A zero bound is unconstrained. The scan
// is pruned to the longest shared key prefix of the two bounds and stops
// as soon as it passes the upper bound.
func (ix *Index) ScanTimeRange(since, until time.Time, fn func(storageKey string) error) error {
	dimPrefix := postingPrefix + DimTime + "/"
	var lo, hi string
	if !since.IsZero() {
		lo = TimeTerm(since)
	}
	if !until.IsZero() {
		hi = TimeTerm(until)
	}
	scanPrefix := dimPrefix + commonPrefix(lo, hi)
	if hi == "" {
		// Unbounded above: scanning from the lower bound's prefix would
		// not help, the shared prefix of lo and "" is empty anyway.
		scanPrefix = dimPrefix
	}
	err := ix.kv.Scan(scanPrefix, func(key string, _ []byte) error {
		rest := key[len(dimPrefix):]
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			return nil
		}
		term := rest[:slash]
		if lo != "" && term < lo {
			return nil
		}
		if hi != "" && term > hi {
			return errStop
		}
		return fn(rest[slash+1:])
	})
	if err == errStop {
		return nil
	}
	return err
}

func commonPrefix(a, b string) string {
	if a == "" || b == "" {
		return ""
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return a[:i]
}

// Terms enumerates the distinct terms recorded under a dimension, in
// sorted order — e.g. Terms(DimSession) lists every session identifier
// in the store without touching a single record.
func (ix *Index) Terms(dim string) ([]string, error) {
	prefix := postingPrefix + dim + "/"
	var out []string
	last := ""
	err := ix.kv.Scan(prefix, func(key string, _ []byte) error {
		rest := key[len(prefix):]
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			return nil
		}
		if term := rest[:slash]; term != last || len(out) == 0 {
			last = term
			out = append(out, unescapeTerm(term))
		}
		return nil
	})
	return out, err
}

// Sessions lists the distinct session identifiers in the store, sorted
// by identifier value.
func (ix *Index) Sessions() ([]ids.ID, error) {
	terms, err := ix.Terms(DimSession)
	if err != nil {
		return nil, err
	}
	out := make([]ids.ID, 0, len(terms))
	for _, t := range terms {
		id, err := ids.Parse(t)
		if err != nil {
			return nil, fmt.Errorf("index: malformed session term %q: %w", t, err)
		}
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, nil
}
