// Package store implements the Provenance Store Interface of PReServ's
// layered design (paper Figure 3): a uniform API that plug-ins call,
// with interchangeable backends — in-memory, file system, and an
// embedded database (internal/kvdb, the Berkeley DB stand-in). "This
// abstraction makes it easy to integrate new backend stores without
// having to change already developed PlugIns."
package store

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/index"
	"preserv/internal/kv"
	"preserv/internal/obs"
	"preserv/internal/prep"
)

// ErrDuplicate is returned when a record's storage key already exists
// with different content; recording the identical record twice is
// accepted idempotently.
var ErrDuplicate = errors.New("store: duplicate record key")

// KV is one key/value pair of a batched write (an alias of kv.Pair so
// that internal/index can name the same type without importing store).
type KV = kv.Pair

// Backend persists encoded records under their storage keys.
// Implementations must be safe for concurrent use.
type Backend interface {
	// Put stores a record under key. Keys are write-once: backends may
	// reject overwrites (the Store layer handles idempotency first).
	Put(key string, value []byte) error
	// PutBatch stores several pairs in one backend operation, with the
	// same per-key semantics as Put. Implementations amortise the
	// per-write cost (one lock acquisition, one log append, one packed
	// segment file) and preserve slice order, so a crash durably keeps
	// at most a prefix of the batch.
	PutBatch(kvs []KV) error
	// Get returns the value under key, or (nil, false, nil) if absent.
	Get(key string) (value []byte, ok bool, err error)
	// GetBatch fetches several keys in one backend operation — the read
	// twin of PutBatch. The returned slices align with keys; present[i]
	// is false for absent keys (whose values[i] is nil). Implementations
	// amortise the per-read cost: one lock acquisition, one pass over
	// the log, one open per touched segment file.
	GetBatch(keys []string) (values [][]byte, present []bool, err error)
	// Delete removes key. Deleting an absent key is a no-op. Persistent
	// backends delete by tombstone (a kvdb log entry, a PSEG1 segment
	// entry); the bytes are reclaimed by Compact.
	Delete(key string) error
	// DeleteBatch removes several keys in one backend operation, with
	// the same per-key semantics as Delete. A crash never applies a
	// deletion the durable state cannot explain: kvdb logs the batch's
	// tombstones in slice order (a torn tail keeps a strict prefix);
	// the file backend publishes all its tombstones atomically first
	// and only then removes record-file keys one at a time.
	DeleteBatch(keys []string) error
	// Scan visits every key with the given prefix in sorted key order.
	Scan(prefix string, fn func(key string, value []byte) error) error
	// ScanFrom is Scan restricted to keys >= from (an empty from is
	// unconstrained) — the seek primitive posting iterators resume
	// partially consumed lists with.
	ScanFrom(prefix, from string, fn func(key string, value []byte) error) error
	// Count returns the number of keys with the given prefix.
	Count(prefix string) (int, error)
	// Close releases resources.
	Close() error
	// Name identifies the backend flavour ("memory", "file", "kvdb").
	Name() string
}

// recordStripes is how many lock stripes guard record commits. Writers
// to different keys almost never contend; writers to the same key (an
// idempotent client retry, or two asserters racing on one interaction
// key) serialise on the key's stripe so the Get-then-Put check stays
// atomic per key.
const recordStripes = 64

// Store is the provenance store: validation, idempotent recording and
// query evaluation over a Backend, with secondary indexes
// (internal/index) maintained write-through on Record.
//
// Concurrency: Record calls run in parallel. Validation and encoding
// happen outside any lock; each record's commit (the per-key
// exists/identical/conflict check plus the Put) holds only that key's
// lock stripe; the call's posting entries are flushed in one backend
// batch at the end. The mu mutex only guards the lazily opened index
// handle — it is not held across backend operations, so readers never
// wait behind an ingest batch.
type Store struct {
	mu sync.RWMutex // provlint:lock-order 20
	b  Backend
	// idx is the secondary index, opened lazily on first use so that New
	// keeps its error-free signature; a store recorded before indexing
	// existed is rebuilt at that point. Open failures are not latched:
	// a transient backend error must not disable the store for good.
	idx *index.Index
	// gen counts content changes; the query engine keys its result cache
	// on it so cached results are invalidated by new records.
	gen atomic.Uint64
	// stripes are the per-key commit locks; seed salts the stripe hash.
	// Ordered below s.mu: deleteChunk holds a stripe across its commit
	// and drops the index handle (s.mu) on de-index failure.
	// provlint:lock-order 10
	stripes [recordStripes]sync.Mutex
	seed    maphash.Seed

	// reg is this store's telemetry registry. Each store owns its own
	// registry (rather than sharing a process-global one) so a router
	// over several local stores can report per-shard numbers. The
	// histogram handles are resolved once here, keeping the map lookup
	// off the write path.
	reg         *obs.Registry
	recordSec   *obs.Histogram
	recordBatch *obs.Histogram
	deleteSec   *obs.Histogram
	deleteBatch *obs.Histogram
	compactSec  *obs.Histogram
	// writeStallSec is the per-record commit latency (stripe lock wait
	// plus the backend get/put) — the distribution that shows whether
	// background maintenance stalls writers. compacting counts backend
	// compactions currently running (the store_compaction_in_progress
	// gauge).
	writeStallSec *obs.Histogram
	compacting    atomic.Int64

	// bc is the shared record block cache (see blockcache.go): every
	// GetRecord/GetBatch consumer — queries, the planner's candidate
	// fetches, presence-only total counting — reads through it. Entries
	// are stamped with the generation loaded before the backend read, so
	// the existing invalidation contract (gen bumps on accepted records
	// and attempted deletes) covers it with no new bookkeeping.
	bc *BlockCache
}

// New wraps a backend in a Store.
func New(b Backend) *Store {
	s := &Store{b: b, seed: maphash.MakeSeed(), reg: obs.NewRegistry(), bc: newBlockCache(DefaultBlockCacheBytes)}
	s.recordSec = s.reg.Histogram("store_record_seconds", nil)
	s.recordBatch = s.reg.Histogram("store_record_batch_size", obs.SizeBuckets)
	s.deleteSec = s.reg.Histogram("store_delete_seconds", nil)
	s.deleteBatch = s.reg.Histogram("store_delete_batch_size", obs.SizeBuckets)
	s.compactSec = s.reg.Histogram("store_compact_seconds", nil)
	s.writeStallSec = s.reg.Histogram("store_write_stall_seconds", nil)
	s.reg.GaugeFunc("store_compaction_in_progress", func() float64 { return float64(s.compacting.Load()) })
	s.reg.GaugeFunc("store_garbage_ratio", s.GarbageRatio)
	s.reg.GaugeFunc("store_tombstones", func() float64 { return float64(s.Tombstones()) })
	s.reg.GaugeFunc("store_blockcache_resident_bytes", func() float64 { return float64(s.bc.stats().Bytes) })
	s.reg.GaugeFunc("store_blockcache_entries", func() float64 { return float64(s.bc.stats().Entries) })
	s.reg.GaugeFunc("store_blockcache_hit_ratio", func() float64 {
		st := s.bc.stats()
		if st.Hits+st.Misses == 0 {
			return 0
		}
		return float64(st.Hits) / float64(st.Hits+st.Misses)
	})
	if bs, ok := b.(BloomStatser); ok {
		s.reg.GaugeFunc("store_bloom_skips", func() float64 { sk, _, _ := bs.BloomStats(); return float64(sk) })
		s.reg.GaugeFunc("store_bloom_false_positives", func() float64 { _, fp, _ := bs.BloomStats(); return float64(fp) })
		s.reg.GaugeFunc("store_bloom_hits", func() float64 { _, _, h := bs.BloomStats(); return float64(h) })
	}
	if mb, ok := b.(interface{ MappedBytes() int64 }); ok {
		s.reg.GaugeFunc("store_mapped_bytes", func() float64 { return float64(mb.MappedBytes()) })
	}
	return s
}

// SetBlockCacheBytes resizes the record block cache's byte budget,
// evicting down to it immediately; n <= 0 disables the cache.
func (s *Store) SetBlockCacheBytes(n int64) { s.bc.setMax(n) }

// ReadCacheStats is a snapshot of the read-path cache counters: the
// backend's negative-filter traffic (zero on backends without one) and
// the record block cache.
type ReadCacheStats struct {
	BloomSkips          int64
	BloomFalsePositives int64
	BloomHits           int64
	BlockCacheHits      int64
	BlockCacheMisses    int64
	BlockCacheBytes     int64
	BlockCacheEntries   int64
}

// ReadCacheStats reports the read-path cache counters.
func (s *Store) ReadCacheStats() ReadCacheStats {
	st := s.bc.stats()
	out := ReadCacheStats{
		BlockCacheHits:    st.Hits,
		BlockCacheMisses:  st.Misses,
		BlockCacheBytes:   st.Bytes,
		BlockCacheEntries: st.Entries,
	}
	if bs, ok := s.b.(BloomStatser); ok {
		out.BloomSkips, out.BloomFalsePositives, out.BloomHits = bs.BloomStats()
	}
	return out
}

// WritePathStats is a snapshot of write-path health: how many backend
// compactions are running right now, and the per-record commit-stall
// distribution summarised (count, total seconds, p99).
type WritePathStats struct {
	CompactionsInProgress int64
	StallCount            int64
	StallSeconds          float64
	StallP99              float64
}

// WritePathStats reports the write-path health counters.
func (s *Store) WritePathStats() WritePathStats {
	snap := s.writeStallSec.Snapshot()
	return WritePathStats{
		CompactionsInProgress: s.compacting.Load(),
		StallCount:            snap.Count,
		StallSeconds:          snap.Sum,
		StallP99:              snap.Quantile(0.99),
	}
}

// Obs returns the store's telemetry registry. The query engine records
// its plan histograms and slow spans here too, so one registry holds a
// shard's complete read+write telemetry.
func (s *Store) Obs() *obs.Registry { return s.reg }

// stripeIndex maps a storage key to its commit lock stripe.
func (s *Store) stripeIndex(key string) int {
	return int(maphash.String(s.seed, key) % recordStripes)
}

// stripeFor maps a storage key to its commit lock.
func (s *Store) stripeFor(key string) *sync.Mutex {
	return &s.stripes[s.stripeIndex(key)]
}

// BackendName reports which backend the store runs on.
func (s *Store) BackendName() string { return s.b.Name() }

// Close closes the underlying backend.
func (s *Store) Close() error { return s.b.Close() }

// Generation returns the store's content generation: it changes whenever
// a record is accepted, so equal generations imply equal query results.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// ensureIndexLocked opens (rebuilding if necessary) the secondary index.
// Callers must hold s.mu. Only success is cached — a failed Open is
// retried on the next call.
//
// provlint:requires mu
func (s *Store) ensureIndexLocked() (*index.Index, error) {
	if s.idx != nil {
		return s.idx, nil
	}
	idx, err := index.Open(s.b)
	if err != nil {
		return nil, err
	}
	s.idx = idx
	return idx, nil
}

// Index returns the store's secondary index, opening it (and rebuilding
// it from a scan, for stores recorded before indexing existed) on first
// call.
func (s *Store) Index() (*index.Index, error) {
	s.mu.RLock()
	idx := s.idx
	s.mu.RUnlock()
	if idx != nil {
		return idx, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ensureIndexLocked()
}

// dropIndex discards the cached index handle after a failed posting
// write, forcing the next use through index.Open's deficit check (which
// detects the missing postings and rebuilds).
func (s *Store) dropIndex() {
	s.mu.Lock()
	s.idx = nil
	s.mu.Unlock()
}

// GetRecord fetches and decodes one record by its storage key — the
// point lookup the query planner uses to resolve posting-list candidates.
func (s *Store) GetRecord(key string) (*core.Record, bool, error) {
	// The generation is loaded BEFORE the backend read: a mutation that
	// races the read has already bumped past it, so the entry this read
	// caches dies on its first lookup — stale values cannot be served,
	// only invalidated too eagerly.
	gen := s.gen.Load()
	value, cached := s.bc.get(key, gen)
	if !cached {
		s.mu.RLock()
		var ok bool
		var err error
		value, ok, err = s.b.Get(key)
		s.mu.RUnlock()
		if err != nil || !ok {
			return nil, false, err
		}
		s.bc.put(key, gen, value)
	}
	r, err := core.DecodeRecord(value)
	if err != nil {
		return nil, false, fmt.Errorf("store: corrupt record at %s: %w", key, err)
	}
	return r, true, nil
}

// GetBatch fetches several records' raw encodings in one backend batch —
// the bulk lookup the streaming read path resolves candidate chunks
// with. The result aligns with keys; present[i] is false for keys with
// no stored record (a dangling posting reads as absent, not as an
// error). Values are returned undecoded so callers that only need
// existence (total counting past a query's Limit) skip the decode.
func (s *Store) GetBatch(keys []string) (values [][]byte, present []bool, err error) {
	if !s.bc.enabled() {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.b.GetBatch(keys)
	}
	gen := s.gen.Load() // pre-read, same under-stamping rule as GetRecord
	values = make([][]byte, len(keys))
	present = make([]bool, len(keys))
	var missKeys []string
	var missIdx []int
	for i, k := range keys {
		if v, ok := s.bc.get(k, gen); ok {
			values[i] = v
			present[i] = true
		} else {
			missKeys = append(missKeys, k)
			missIdx = append(missIdx, i)
		}
	}
	if len(missKeys) == 0 {
		return values, present, nil
	}
	s.mu.RLock()
	mv, mp, err := s.b.GetBatch(missKeys)
	s.mu.RUnlock()
	if err != nil {
		return nil, nil, err
	}
	for j, i := range missIdx {
		if mp[j] {
			values[i] = mv[j]
			present[i] = true
			s.bc.put(missKeys[j], gen, mv[j])
		}
	}
	return values, present, nil
}

// Record validates and stores a batch of p-assertions asserted by
// asserter. It returns the number accepted and a reject entry for each
// refused record. Storage is idempotent: re-recording an identical
// record is counted as accepted.
//
// Concurrent Record calls proceed in parallel: validation and encoding
// run lock-free, commits serialise only per storage key (stripe locks),
// and the call's posting entries ship to the backend as one batch.
func (s *Store) Record(asserter core.ActorID, records []core.Record) (int, []prep.Reject, error) {
	span := s.reg.Tracer().StartSpan("store.record").
		SetAttr("batch", fmt.Sprint(len(records)))
	accepted, rejects, err := s.record(asserter, records)
	s.recordBatch.Observe(float64(len(records)))
	span.Observe(s.recordSec, err)
	return accepted, rejects, err
}

func (s *Store) record(asserter core.ActorID, records []core.Record) (int, []prep.Reject, error) {
	if asserter == "" {
		return 0, nil, fmt.Errorf("store: empty asserter")
	}
	// Phase 1 — validate and encode outside any lock.
	type staged struct {
		i       int
		r       *core.Record
		key     string
		encoded []byte
	}
	var rejects []prep.Reject
	batch := make([]staged, 0, len(records))
	for i := range records {
		r := &records[i]
		if err := r.Validate(); err != nil {
			rejects = append(rejects, prep.Reject{Index: i, Reason: err.Error()})
			continue
		}
		if r.Asserter() != asserter {
			rejects = append(rejects, prep.Reject{
				Index:  i,
				Reason: fmt.Sprintf("record asserted by %q but submitted by %q", r.Asserter(), asserter),
			})
			continue
		}
		encoded, err := core.EncodeRecord(r)
		if err != nil {
			rejects = append(rejects, prep.Reject{Index: i, Reason: err.Error()})
			continue
		}
		batch = append(batch, staged{i: i, r: r, key: r.StorageKey(), encoded: encoded})
	}

	idx, err := s.Index()
	if err != nil {
		return 0, nil, fmt.Errorf("store: opening index: %w", err)
	}

	accepted := 0
	touched := 0
	// The generation must advance whenever anything was committed or
	// repaired, even if the batch errors out part-way — a missed bump
	// would let the query engine's cache serve stale results as fresh.
	// Idempotent re-records count too: their posting re-puts may have
	// just repaired an index deficit that cached results were computed
	// against.
	defer func() {
		if touched > 0 {
			s.gen.Add(1)
		}
	}()

	// toIndex accumulates this call's accepted records; their postings
	// flush in one backend batch. A flush failure drops the cached index
	// handle, so the next use re-runs index.Open's deficit check and
	// rebuilds — the planner never keeps serving an index that is
	// missing a committed record. (A crash is repaired the same way at
	// the next Open, or by a client retry of the batch.)
	toIndex := make([]*core.Record, 0, len(batch))
	flushIndex := func() error {
		if len(toIndex) == 0 {
			return nil
		}
		if err := idx.AddBatch(toIndex); err != nil {
			s.dropIndex()
			return fmt.Errorf("store: indexing batch: %w", err)
		}
		toIndex = toIndex[:0]
		return nil
	}

	// Phase 2 — commit each record under its key's lock stripe, so the
	// exists/identical/conflict decision is atomic per key while
	// unrelated keys commit in parallel. Each record's commit section —
	// stripe-lock wait plus the backend get/put — is observed into the
	// write-stall histogram: its tail is where a writer-blocking
	// compaction or a contended stripe shows up.
	for _, st := range batch {
		stall := time.Now()
		mu := s.stripeFor(st.key)
		mu.Lock()
		existing, ok, err := s.b.Get(st.key)
		if err != nil {
			mu.Unlock()
			s.writeStallSec.Observe(time.Since(stall).Seconds())
			// Best-effort flush so already-committed records get their
			// commit-marker postings before the error surfaces.
			_ = flushIndex()
			sortRejects(rejects)
			return accepted, rejects, fmt.Errorf("store: checking %s: %w", st.key, err)
		}
		if ok {
			mu.Unlock()
			s.writeStallSec.Observe(time.Since(stall).Seconds())
			if sameRecordBytes(existing, st.encoded) {
				// Idempotent re-record. Re-put the postings too: if a
				// previous attempt committed the record but failed before
				// (or during) indexing, the client's retry lands here and
				// must repair the deficit, not skip past it.
				toIndex = append(toIndex, st.r)
				accepted++
				touched++
				continue
			}
			rejects = append(rejects, prep.Reject{
				Index:  st.i,
				Reason: fmt.Sprintf("%v: %s", ErrDuplicate, st.key),
			})
			continue
		}
		err = s.b.Put(st.key, st.encoded)
		mu.Unlock()
		s.writeStallSec.Observe(time.Since(stall).Seconds())
		if err != nil {
			_ = flushIndex()
			sortRejects(rejects)
			return accepted, rejects, fmt.Errorf("store: putting %s: %w", st.key, err)
		}
		// The record is committed from here on: count it for the
		// generation bump even if indexing then fails.
		touched++
		toIndex = append(toIndex, st.r)
		accepted++
	}

	// Phase 3 — one batched index flush for the whole call.
	if err := flushIndex(); err != nil {
		sortRejects(rejects)
		return accepted, rejects, err
	}
	sortRejects(rejects)
	return accepted, rejects, nil
}

// DeleteRecord removes the record stored under key, together with its
// posting entries, and reports whether a record was there to delete.
// The store's content generation advances, so every cached query result
// computed before the deletion is invalidated — a cached page can never
// resurrect a deleted record. It is the one-key form of the chunked
// delete commit protocol (deleteChunk), so the crash ordering and
// locking story live in exactly one place.
func (s *Store) DeleteRecord(key string) (bool, error) {
	span := s.reg.Tracer().StartSpan("store.delete").SetAttr("kind", "record")
	ok, err := s.deleteRecord(key)
	s.deleteBatch.Observe(1)
	span.Observe(s.deleteSec, err)
	return ok, err
}

func (s *Store) deleteRecord(key string) (bool, error) {
	if key == "" {
		return false, fmt.Errorf("store: empty key")
	}
	idx, err := s.Index()
	if err != nil {
		return false, fmt.Errorf("store: opening index: %w", err)
	}
	deleted, attempted, err := s.deleteChunk(idx, []string{key})
	if attempted {
		s.gen.Add(1)
	}
	if err != nil {
		return deleted > 0, fmt.Errorf("store: deleting %s: %w", key, err)
	}
	return deleted > 0, nil
}

// deleteChunkSize bounds how many records one DeleteSession backend
// batch covers: stripe locks are held across the chunk's Get+Delete, so
// the bound caps both lock hold time and peak decoded-record memory.
const deleteChunkSize = 256

// DeleteSession removes every record grouped under the given session —
// the retraction primitive that keeps a long-lived store from growing
// without bound. It returns how many records were deleted. Each chunk
// of records is deleted in one backend batch (one tombstone segment /
// one contiguous log append), and all the call's posting removals flush
// through one RemoveBatch per chunk.
func (s *Store) DeleteSession(session ids.ID) (int, error) {
	span := s.reg.Tracer().StartSpan("store.delete").SetAttr("kind", "session")
	deleted, err := s.deleteSession(session)
	s.deleteBatch.Observe(float64(deleted))
	span.SetAttr("deleted", fmt.Sprint(deleted)).Observe(s.deleteSec, err)
	return deleted, err
}

func (s *Store) deleteSession(session ids.ID) (int, error) {
	if !session.Valid() {
		return 0, fmt.Errorf("store: invalid session id")
	}
	idx, err := s.Index()
	if err != nil {
		return 0, fmt.Errorf("store: opening index: %w", err)
	}
	keys, err := idx.Postings(index.DimSession, session.String())
	if err != nil {
		return 0, fmt.Errorf("store: listing session %s: %w", session, err)
	}
	deleted, err := s.deleteKeys(idx, keys)
	if err != nil {
		return deleted, fmt.Errorf("store: deleting session %s: %w", session, err)
	}
	return deleted, nil
}

// DeleteRecords removes the records stored under the given storage keys
// (absent keys are no-ops), together with their posting entries — the
// bulk retraction a shard drain moves records out with: copy the batch
// to its new shard first, then DeleteRecords it here, and a crash in
// between leaves only an idempotently re-recordable overlap. It runs
// the same chunked delete commit protocol as DeleteSession and returns
// how many records were actually deleted.
func (s *Store) DeleteRecords(keys []string) (int, error) {
	span := s.reg.Tracer().StartSpan("store.delete").
		SetAttr("kind", "records").SetAttr("batch", fmt.Sprint(len(keys)))
	deleted, err := s.deleteRecords(keys)
	s.deleteBatch.Observe(float64(len(keys)))
	span.Observe(s.deleteSec, err)
	return deleted, err
}

func (s *Store) deleteRecords(keys []string) (int, error) {
	if len(keys) == 0 {
		return 0, nil
	}
	seen := make(map[string]bool, len(keys))
	uniq := keys[:0:0]
	for _, k := range keys {
		if k == "" {
			return 0, fmt.Errorf("store: empty key in delete batch")
		}
		// A repeated key must delete (and count, and tombstone) once —
		// keys arrive from the wire here, not only from unique index
		// postings.
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, k)
		}
	}
	keys = uniq
	idx, err := s.Index()
	if err != nil {
		return 0, fmt.Errorf("store: opening index: %w", err)
	}
	deleted, err := s.deleteKeys(idx, keys)
	if err != nil {
		return deleted, fmt.Errorf("store: deleting %d records: %w", len(keys), err)
	}
	return deleted, nil
}

// deleteKeys runs the chunked delete commit protocol over an arbitrary
// key list (DeleteSession's posting listing and DeleteRecords' explicit
// batch both land here).
func (s *Store) deleteKeys(idx *index.Index, keys []string) (int, error) {
	deleted := 0
	// attempted tracks whether any backend delete batch was issued at
	// all: an errored batch may still have durably removed records (the
	// file backend deletes record-file keys per key), so the generation
	// must advance — a cached result from before the call can never be
	// served as current once anything might have changed.
	attempted := false
	defer func() {
		if attempted {
			s.gen.Add(1)
		}
	}()
	for len(keys) > 0 {
		n := len(keys)
		if n > deleteChunkSize {
			n = deleteChunkSize
		}
		chunk := keys[:n]
		keys = keys[n:]
		doomed, tried, err := s.deleteChunk(idx, chunk)
		attempted = attempted || tried
		deleted += doomed
		if err != nil {
			return deleted, err
		}
	}
	return deleted, nil
}

// deleteChunk is the delete commit protocol (DeleteRecord's single key
// and DeleteSession's chunks both run through it): remove one chunk of
// records in a single backend batch, then flush their posting
// removals, all while holding every involved stripe lock (acquired in
// ascending stripe order, so concurrent multi-key deleters cannot
// deadlock; Record holds at most one stripe at a time — and unlike the
// file backend's *Locked helpers, this function takes its own locks).
// Keeping the posting removal inside the locks stops a concurrent
// idempotent re-Record from interleaving its fresh postings between
// the record deletes and the de-indexing. Crash ordering mirrors
// Record in reverse — records first, postings second, each kind
// posting last — so a crash in between leaves a kind-posting surplus
// the index's Open-time consistency check detects and Rebuild's
// dangling-posting GC repairs; until then queries skip the dangling
// postings at fetch time.
//
// provlint:no-genbump the generation bump lives in every caller
// (deleteRecord and deleteKeys both bump when any batch was
// attempted), because a chunk that errors may still have removed
// records and the bump must cover that case too.
//
// A record whose stored bytes no longer decode is deleted anyway —
// retraction must work on a store with one torn value, the same policy
// Rebuild applies by skipping it — with no posting removal (the
// posting set is not computable); whatever stale postings it had go
// dangling and are collected by the next rebuild. It returns how many
// keys were deleted and whether any backend mutation was attempted
// (possibly partially applied, on error).
func (s *Store) deleteChunk(idx *index.Index, chunk []string) (deleted int, attempted bool, err error) {
	var stripes [recordStripes]bool
	for _, k := range chunk {
		stripes[s.stripeIndex(k)] = true
	}
	for i := range stripes {
		if stripes[i] {
			s.stripes[i].Lock()
		}
	}
	defer func() {
		for i := range stripes {
			if stripes[i] {
				s.stripes[i].Unlock()
			}
		}
	}()
	values, present, err := s.b.GetBatch(chunk)
	if err != nil {
		return 0, false, fmt.Errorf("fetching delete chunk: %w", err)
	}
	records := make([]*core.Record, 0, len(chunk))
	doomed := make([]string, 0, len(chunk))
	for i, k := range chunk {
		if !present[i] {
			continue // dangling posting: nothing to delete
		}
		r, err := core.DecodeRecord(values[i])
		if err != nil {
			// Corrupt value: delete the key, strand its postings for
			// the rebuild GC (see the function comment).
			doomed = append(doomed, k)
			continue
		}
		records = append(records, r)
		doomed = append(doomed, k)
	}
	if len(doomed) == 0 {
		return 0, false, nil
	}
	if err := s.b.DeleteBatch(doomed); err != nil {
		return 0, true, fmt.Errorf("deleting chunk: %w", err)
	}
	if err := idx.RemoveBatch(records); err != nil {
		s.dropIndex()
		return len(doomed), true, fmt.Errorf("de-indexing chunk: %w", err)
	}
	return len(doomed), true, nil
}

// Compacter is implemented by backends that can reclaim dead bytes
// (superseded values, tombstones) — the file and kvdb backends; the
// memory backend has no garbage to reclaim.
type Compacter interface {
	Compact() error
}

// GarbageReporter is implemented by backends that can estimate how much
// of their on-disk footprint is dead.
type GarbageReporter interface {
	// GarbageRatio is dead bytes over total bytes, in [0, 1].
	GarbageRatio() float64
}

// TombstoneReporter is implemented by backends that count unreclaimed
// deletion markers.
type TombstoneReporter interface {
	Tombstones() int64
}

// BloomStatser is implemented by backends with a negative-lookup
// filter (the file backend's aggregate bloom); the store surfaces its
// counters through ReadCacheStats and the obs registry.
type BloomStatser interface {
	BloomStats() (skips, falsePositives, hits int64)
}

// Compact reclaims dead bytes in the underlying backend, if it supports
// compaction; otherwise it is a no-op. Compaction changes no logical
// content — the generation does not advance, and cached query results
// stay valid.
func (s *Store) Compact() error {
	c, ok := s.b.(Compacter)
	if !ok {
		return nil
	}
	span := s.reg.Tracer().StartSpan("store.compact")
	s.compacting.Add(1)
	err := c.Compact()
	s.compacting.Add(-1)
	span.Observe(s.compactSec, err)
	return err
}

// GarbageRatio reports the backend's dead-byte fraction (zero for
// backends without garbage) — the signal online compaction schedules on.
func (s *Store) GarbageRatio() float64 {
	if g, ok := s.b.(GarbageReporter); ok {
		return g.GarbageRatio()
	}
	return 0
}

// Tombstones reports the backend's count of unreclaimed deletion
// markers (zero for backends without tombstones).
func (s *Store) Tombstones() int64 {
	if t, ok := s.b.(TombstoneReporter); ok {
		return t.Tombstones()
	}
	return 0
}

// sortRejects restores submission order: validation rejects are staged
// before commit-time conflicts, so without the sort a conflict on an
// early record would trail a validation failure on a later one.
func sortRejects(rejects []prep.Reject) {
	sort.Slice(rejects, func(i, j int) bool { return rejects[i].Index < rejects[j].Index })
}

// sameRecordBytes reports whether an existing stored blob holds the same
// record as a freshly encoded one. Byte equality is the fast path; on
// mismatch the existing blob is decoded and canonically re-encoded, so a
// record stored in the legacy gob format is still recognised as an
// idempotent re-record rather than flagged as a duplicate conflict.
func sameRecordBytes(existing, encoded []byte) bool {
	if string(existing) == string(encoded) {
		return true
	}
	r, err := core.DecodeRecord(existing)
	if err != nil {
		return false
	}
	re, err := core.EncodeRecord(r)
	if err != nil {
		return false
	}
	return string(re) == string(encoded)
}

// Query evaluates q and returns matching records (up to q.Limit) plus
// the total number of matches. Interaction-scoped queries use the key
// structure to avoid full scans; everything else scans linearly, which
// is the behaviour whose cost the paper's Figure 5 characterises.
func (s *Store) Query(q *prep.Query) ([]core.Record, int, error) {
	if err := q.Validate(); err != nil {
		return nil, 0, err
	}
	var out []core.Record
	total := 0
	err := s.ScanQuery(q, "", func(_ string, r *core.Record) (bool, error) {
		total++
		if q.Limit == 0 || len(out) < q.Limit {
			out = append(out, *r)
		}
		return false, nil
	})
	if err != nil {
		return nil, 0, err
	}
	return out, total, nil
}

// errStopScan terminates a ScanQuery sweep once the visitor asks to stop.
var errStopScan = errors.New("store: stop scan")

// ScanQuery visits every record matching q in storage-key order,
// starting strictly after the `after` cursor (empty visits from the
// beginning), calling fn with the storage key and decoded record. fn
// returning stop=true ends the sweep early — the primitive cursor-paged
// reads resume on. Limit is ignored here; callers own truncation.
func (s *Store) ScanQuery(q *prep.Query, after string, fn func(key string, r *core.Record) (stop bool, err error)) error {
	if err := q.Validate(); err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()

	prefixes := []string{"i/", "s/"}
	if q.Kind == core.KindInteraction.String() {
		prefixes = []string{"i/"}
	} else if q.Kind == core.KindActorState.String() {
		prefixes = []string{"s/"}
	}
	if q.InteractionID.Valid() {
		for i, p := range prefixes {
			prefixes[i] = p + q.InteractionID.String() + "/"
		}
	}

	// after+"\x00" is the immediate successor string: every key k with
	// k > after satisfies k >= after+"\x00", so the backend seek skips
	// exactly the keys a previous page already delivered.
	from := ""
	if after != "" {
		from = after + "\x00"
	}
	for _, prefix := range prefixes {
		err := s.b.ScanFrom(prefix, from, func(key string, value []byte) error {
			r, err := core.DecodeRecord(value)
			if err != nil {
				return fmt.Errorf("store: corrupt record at %s: %w", key, err)
			}
			if !q.Matches(r) {
				return nil
			}
			stop, err := fn(key, r)
			if err != nil {
				return err
			}
			if stop {
				return errStopScan
			}
			return nil
		})
		if err == errStopScan {
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Count reports store statistics.
func (s *Store) Count() (prep.CountResponse, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ni, err := s.b.Count("i/")
	if err != nil {
		return prep.CountResponse{}, err
	}
	ns, err := s.b.Count("s/")
	if err != nil {
		return prep.CountResponse{}, err
	}
	return prep.CountResponse{
		Records:      ni + ns,
		Interactions: ni,
		ActorStates:  ns,
	}, nil
}

// MemoryBackend keeps records in a map, like PReServ's in-memory store.
// The zero value is not usable; call NewMemoryBackend.
type MemoryBackend struct {
	mu     sync.RWMutex
	items  map[string][]byte
	sorted []string // cached sorted keys; nil when dirty
}

// NewMemoryBackend returns an empty in-memory backend.
func NewMemoryBackend() *MemoryBackend {
	return &MemoryBackend{items: make(map[string][]byte)}
}

// Name implements Backend.
func (m *MemoryBackend) Name() string { return "memory" }

// Put implements Backend.
func (m *MemoryBackend) Put(key string, value []byte) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.items[key]; !exists {
		m.sorted = nil
	}
	m.items[key] = append([]byte(nil), value...)
	return nil
}

// PutBatch implements Backend: the whole batch goes in under one lock
// acquisition, so a multi-hundred-posting index flush costs one
// contended section instead of one per posting.
func (m *MemoryBackend) PutBatch(kvs []KV) error {
	for _, p := range kvs {
		if p.Key == "" {
			return fmt.Errorf("store: empty key")
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range kvs {
		if _, exists := m.items[p.Key]; !exists {
			m.sorted = nil
		}
		m.items[p.Key] = append([]byte(nil), p.Value...)
	}
	return nil
}

// Delete implements Backend.
func (m *MemoryBackend) Delete(key string) error {
	return m.DeleteBatch([]string{key})
}

// DeleteBatch implements Backend: the whole batch of removals happens
// under one lock acquisition. Absent keys are no-ops.
func (m *MemoryBackend) DeleteBatch(keys []string) error {
	for _, k := range keys {
		if k == "" {
			return fmt.Errorf("store: empty key")
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, k := range keys {
		if _, exists := m.items[k]; exists {
			delete(m.items, k)
			m.sorted = nil
		}
	}
	return nil
}

// Get implements Backend.
func (m *MemoryBackend) Get(key string) ([]byte, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.items[key]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// GetBatch implements Backend: the whole batch resolves under one lock
// acquisition, so a query fetching hundreds of candidate records costs
// one contended section instead of one per record.
func (m *MemoryBackend) GetBatch(keys []string) ([][]byte, []bool, error) {
	values := make([][]byte, len(keys))
	present := make([]bool, len(keys))
	m.mu.RLock()
	defer m.mu.RUnlock()
	for i, k := range keys {
		if v, ok := m.items[k]; ok {
			values[i] = append([]byte(nil), v...)
			present[i] = true
		}
	}
	return values, present, nil
}

func (m *MemoryBackend) sortedKeys() []string {
	if m.sorted == nil {
		keys := make([]string, 0, len(m.items))
		for k := range m.items {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		m.sorted = keys
	}
	return m.sorted
}

// sortedSnapshot returns the sorted key cache, rebuilding it only when
// stale. The fast path is a shared lock: the cached slice is immutable
// once built (writers replace it, never mutate it in place), so
// concurrent readers iterate the same snapshot without excluding each
// other; keys deleted or added afterwards are handled by the per-key
// re-check at read time.
func (m *MemoryBackend) sortedSnapshot() []string {
	m.mu.RLock()
	keys := m.sorted
	m.mu.RUnlock()
	if keys != nil {
		return keys
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sortedKeys()
}

// Scan implements Backend. The sorted key cache is binary-searched so
// prefix-scoped scans (the per-interaction queries of both use cases)
// cost O(log n + matches) rather than a full sweep.
func (m *MemoryBackend) Scan(prefix string, fn func(string, []byte) error) error {
	return m.ScanFrom(prefix, "", fn)
}

// ScanFrom implements Backend: a binary search lands directly on the
// first key >= max(prefix, from), so resuming a posting list mid-scan
// costs O(log n) rather than re-walking the consumed head. Keys stream
// off the snapshot lazily — an early stop from fn (a posting iterator
// filling one chunk, a page completing) ends the sweep without the
// remaining range ever being copied or visited.
func (m *MemoryBackend) ScanFrom(prefix, from string, fn func(string, []byte) error) error {
	lo := prefix
	if from > lo {
		lo = from
	}
	keys := m.sortedSnapshot()
	for i := sort.SearchStrings(keys, lo); i < len(keys) && strings.HasPrefix(keys[i], prefix); i++ {
		m.mu.RLock()
		v, ok := m.items[keys[i]]
		m.mu.RUnlock()
		if !ok {
			continue
		}
		if err := fn(keys[i], v); err != nil {
			return err
		}
	}
	return nil
}

// Count implements Backend. Like Scan it binary-searches the sorted key
// cache, so prefix counts (the planner's selectivity probes) cost two
// binary searches rather than a full sweep — and, cache warm, exclude
// no other reader.
func (m *MemoryBackend) Count(prefix string) (int, error) {
	keys := m.sortedSnapshot()
	i := sort.SearchStrings(keys, prefix)
	j := sort.Search(len(keys)-i, func(n int) bool {
		return !strings.HasPrefix(keys[i+n], prefix)
	}) // prefix-carrying keys are contiguous from i
	return j, nil
}

// Close implements Backend.
func (m *MemoryBackend) Close() error { return nil }
