// Package store implements the Provenance Store Interface of PReServ's
// layered design (paper Figure 3): a uniform API that plug-ins call,
// with interchangeable backends — in-memory, file system, and an
// embedded database (internal/kvdb, the Berkeley DB stand-in). "This
// abstraction makes it easy to integrate new backend stores without
// having to change already developed PlugIns."
package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"preserv/internal/core"
	"preserv/internal/prep"
)

// ErrDuplicate is returned when a record's storage key already exists
// with different content; recording the identical record twice is
// accepted idempotently.
var ErrDuplicate = errors.New("store: duplicate record key")

// Backend persists encoded records under their storage keys.
// Implementations must be safe for concurrent use.
type Backend interface {
	// Put stores a record under key. Keys are write-once: backends may
	// reject overwrites (the Store layer handles idempotency first).
	Put(key string, value []byte) error
	// Get returns the value under key, or (nil, false, nil) if absent.
	Get(key string) (value []byte, ok bool, err error)
	// Scan visits every key with the given prefix in sorted key order.
	Scan(prefix string, fn func(key string, value []byte) error) error
	// Count returns the number of keys with the given prefix.
	Count(prefix string) (int, error)
	// Close releases resources.
	Close() error
	// Name identifies the backend flavour ("memory", "file", "kvdb").
	Name() string
}

// Store is the provenance store: validation, idempotent recording and
// query evaluation over a Backend.
type Store struct {
	mu sync.RWMutex
	b  Backend
}

// New wraps a backend in a Store.
func New(b Backend) *Store { return &Store{b: b} }

// BackendName reports which backend the store runs on.
func (s *Store) BackendName() string { return s.b.Name() }

// Close closes the underlying backend.
func (s *Store) Close() error { return s.b.Close() }

// Record validates and stores a batch of p-assertions asserted by
// asserter. It returns the number accepted and a reject entry for each
// refused record. Storage is idempotent: re-recording an identical
// record is counted as accepted.
func (s *Store) Record(asserter core.ActorID, records []core.Record) (int, []prep.Reject, error) {
	if asserter == "" {
		return 0, nil, fmt.Errorf("store: empty asserter")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	accepted := 0
	var rejects []prep.Reject
	for i := range records {
		r := &records[i]
		if err := r.Validate(); err != nil {
			rejects = append(rejects, prep.Reject{Index: i, Reason: err.Error()})
			continue
		}
		if r.Asserter() != asserter {
			rejects = append(rejects, prep.Reject{
				Index:  i,
				Reason: fmt.Sprintf("record asserted by %q but submitted by %q", r.Asserter(), asserter),
			})
			continue
		}
		encoded, err := core.EncodeRecord(r)
		if err != nil {
			rejects = append(rejects, prep.Reject{Index: i, Reason: err.Error()})
			continue
		}
		key := r.StorageKey()
		if existing, ok, err := s.b.Get(key); err != nil {
			return accepted, rejects, fmt.Errorf("store: checking %s: %w", key, err)
		} else if ok {
			if string(existing) == string(encoded) {
				accepted++ // idempotent re-record
				continue
			}
			rejects = append(rejects, prep.Reject{
				Index:  i,
				Reason: fmt.Sprintf("%v: %s", ErrDuplicate, key),
			})
			continue
		}
		if err := s.b.Put(key, encoded); err != nil {
			return accepted, rejects, fmt.Errorf("store: putting %s: %w", key, err)
		}
		accepted++
	}
	return accepted, rejects, nil
}

// Query evaluates q and returns matching records (up to q.Limit) plus
// the total number of matches. Interaction-scoped queries use the key
// structure to avoid full scans; everything else scans linearly, which
// is the behaviour whose cost the paper's Figure 5 characterises.
func (s *Store) Query(q *prep.Query) ([]core.Record, int, error) {
	if err := q.Validate(); err != nil {
		return nil, 0, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()

	prefixes := []string{"i/", "s/"}
	if q.Kind == core.KindInteraction.String() {
		prefixes = []string{"i/"}
	} else if q.Kind == core.KindActorState.String() {
		prefixes = []string{"s/"}
	}
	if q.InteractionID.Valid() {
		for i, p := range prefixes {
			prefixes[i] = p + q.InteractionID.String() + "/"
		}
	}

	var out []core.Record
	total := 0
	for _, prefix := range prefixes {
		err := s.b.Scan(prefix, func(key string, value []byte) error {
			r, err := core.DecodeRecord(value)
			if err != nil {
				return fmt.Errorf("store: corrupt record at %s: %w", key, err)
			}
			if !q.Matches(r) {
				return nil
			}
			total++
			if q.Limit == 0 || len(out) < q.Limit {
				out = append(out, *r)
			}
			return nil
		})
		if err != nil {
			return nil, 0, err
		}
	}
	return out, total, nil
}

// Count reports store statistics.
func (s *Store) Count() (prep.CountResponse, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ni, err := s.b.Count("i/")
	if err != nil {
		return prep.CountResponse{}, err
	}
	ns, err := s.b.Count("s/")
	if err != nil {
		return prep.CountResponse{}, err
	}
	return prep.CountResponse{
		Records:      ni + ns,
		Interactions: ni,
		ActorStates:  ns,
	}, nil
}

// MemoryBackend keeps records in a map, like PReServ's in-memory store.
// The zero value is not usable; call NewMemoryBackend.
type MemoryBackend struct {
	mu     sync.RWMutex
	items  map[string][]byte
	sorted []string // cached sorted keys; nil when dirty
}

// NewMemoryBackend returns an empty in-memory backend.
func NewMemoryBackend() *MemoryBackend {
	return &MemoryBackend{items: make(map[string][]byte)}
}

// Name implements Backend.
func (m *MemoryBackend) Name() string { return "memory" }

// Put implements Backend.
func (m *MemoryBackend) Put(key string, value []byte) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.items[key]; !exists {
		m.sorted = nil
	}
	m.items[key] = append([]byte(nil), value...)
	return nil
}

// Get implements Backend.
func (m *MemoryBackend) Get(key string) ([]byte, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.items[key]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

func (m *MemoryBackend) sortedKeys() []string {
	if m.sorted == nil {
		keys := make([]string, 0, len(m.items))
		for k := range m.items {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		m.sorted = keys
	}
	return m.sorted
}

// Scan implements Backend. The sorted key cache is binary-searched so
// prefix-scoped scans (the per-interaction queries of both use cases)
// cost O(log n + matches) rather than a full sweep.
func (m *MemoryBackend) Scan(prefix string, fn func(string, []byte) error) error {
	m.mu.Lock()
	keys := m.sortedKeys()
	start := sort.SearchStrings(keys, prefix)
	var selected []string
	for i := start; i < len(keys) && strings.HasPrefix(keys[i], prefix); i++ {
		selected = append(selected, keys[i])
	}
	m.mu.Unlock()
	for _, k := range selected {
		m.mu.RLock()
		v, ok := m.items[k]
		m.mu.RUnlock()
		if !ok {
			continue
		}
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return nil
}

// Count implements Backend.
func (m *MemoryBackend) Count(prefix string) (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for k := range m.items {
		if strings.HasPrefix(k, prefix) {
			n++
		}
	}
	return n, nil
}

// Close implements Backend.
func (m *MemoryBackend) Close() error { return nil }
