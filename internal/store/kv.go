package store

import (
	"fmt"

	"preserv/internal/kvdb"
)

// KVBackend persists records in the embedded kvdb database — the
// counterpart of PReServ's Berkeley DB backend, which the paper uses for
// all of its evaluations.
type KVBackend struct {
	db *kvdb.DB
}

// NewKVBackend opens (creating if necessary) a kvdb-backed store in dir.
func NewKVBackend(dir string) (*KVBackend, error) {
	db, err := kvdb.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("store: opening kvdb backend: %w", err)
	}
	return &KVBackend{db: db}, nil
}

// Name implements Backend.
func (k *KVBackend) Name() string { return "kvdb" }

// Put implements Backend.
func (k *KVBackend) Put(key string, value []byte) error {
	return k.db.Put(key, value)
}

// PutBatch implements Backend: the whole batch is serialised into one
// contiguous log append inside kvdb, costing one lock acquisition and
// one write syscall.
func (k *KVBackend) PutBatch(kvs []KV) error {
	return k.db.PutBatch(kvs)
}

// Get implements Backend. Lookup (not kvdb.Get) keeps point misses —
// the planner's dangling postings, existence probes — allocation-free:
// absence binary-searches the sorted key cache before the log index and
// never builds an ErrNotFound wrap.
func (k *KVBackend) Get(key string) ([]byte, bool, error) {
	return k.db.Lookup(key)
}

// GetBatch implements Backend: one lock acquisition and one
// offset-ordered pass over the log for the whole batch.
func (k *KVBackend) GetBatch(keys []string) ([][]byte, []bool, error) {
	return k.db.GetBatch(keys)
}

// Delete implements Backend: a tombstone entry is appended to the log;
// the dead bytes are reclaimed by Compact.
func (k *KVBackend) Delete(key string) error {
	return k.db.Delete(key)
}

// DeleteBatch implements Backend: the whole batch of tombstones goes to
// the log in one contiguous append, so a torn tail keeps a strict
// prefix of the batch's deletions — the same recovery shape PutBatch
// has.
func (k *KVBackend) DeleteBatch(keys []string) error {
	return k.db.DeleteBatch(keys)
}

// GarbageRatio reports the fraction of log bytes occupied by dead
// records (superseded values, tombstones, tombstoned values).
func (k *KVBackend) GarbageRatio() float64 {
	total := k.db.LogBytes()
	if total <= 0 {
		return 0
	}
	return float64(k.db.GarbageBytes()) / float64(total)
}

// Tombstones reports how many tombstone entries the log holds.
func (k *KVBackend) Tombstones() int64 { return k.db.Tombstones() }

// Scan implements Backend.
func (k *KVBackend) Scan(prefix string, fn func(string, []byte) error) error {
	return k.db.Scan(prefix, fn)
}

// ScanFrom implements Backend.
func (k *KVBackend) ScanFrom(prefix, from string, fn func(string, []byte) error) error {
	return k.db.ScanFrom(prefix, from, fn)
}

// Count implements Backend. The count comes off kvdb's sorted key cache
// without copying keys — the planner probes it once per candidate
// dimension on every uncached query.
func (k *KVBackend) Count(prefix string) (int, error) {
	return k.db.CountPrefix(prefix), nil
}

// Close implements Backend.
func (k *KVBackend) Close() error { return k.db.Close() }

// Compact reclaims space in the underlying database.
func (k *KVBackend) Compact() error { return k.db.Compact() }

// SetIncrementalCompaction selects between kvdb's incremental
// compaction path (the default) and the legacy stop-the-world rewrite.
func (k *KVBackend) SetIncrementalCompaction(on bool) {
	k.db.SetIncrementalCompaction(on)
}
