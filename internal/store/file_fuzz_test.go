package store

// Native fuzz target for the PSEG1 segment parser: whatever bytes end
// up in a .seg file (torn renames, disk corruption), walking its
// entries must terminate, make progress, and never panic — corruption
// parses as a torn tail, exactly like loadSegment treats it.

import (
	"testing"
)

// buildSegment assembles a valid segment buffer from (key, value,
// tombstone) triples, for seeding.
func buildSegment(entries []struct {
	key  string
	val  string
	tomb bool
}) []byte {
	buf := []byte(segMagic)
	for _, e := range entries {
		if e.tomb {
			buf = appendSegTombstone(buf, e.key)
		} else {
			buf = appendSegEntry(buf, e.key, []byte(e.val))
		}
	}
	return buf
}

func FuzzParseSegment(f *testing.F) {
	valid := buildSegment([]struct {
		key  string
		val  string
		tomb bool
	}{
		{"i/a/1", "value-one", false},
		{"x/sess/term/i/a/1", "", false}, // empty value (a posting)
		{"i/a/1", "", true},              // tombstone
		{"s/b/2", "actor state", false},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn CRC
	f.Add(valid[:7])            // torn first entry
	f.Add([]byte(segMagic))     // empty segment
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	corrupt[len(segMagic)+2] ^= 0xFF
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Walk the way loadSegment does, from offset 0 (the fuzz input
		// is the post-magic byte stream; magic validation is separate).
		off := 0
		for off < len(data) {
			key, valOff, valLen, next, tomb, ok := parseSegEntry(data, off)
			if !ok {
				break // torn tail: the walk must simply stop
			}
			if next <= off {
				t.Fatalf("no progress at offset %d (next %d)", off, next)
			}
			if next > len(data) {
				t.Fatalf("entry at %d overruns the buffer: next %d > %d", off, next, len(data))
			}
			if key == "" {
				t.Fatalf("entry at %d parsed an empty key", off)
			}
			if !tomb {
				if valOff < 0 || valOff+valLen > len(data) {
					t.Fatalf("entry at %d: value [%d:%d) outside buffer", off, valOff, valOff+valLen)
				}
			}
			off = next
		}
	})
}
