//go:build linux

package store

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform serves segment reads from
// a real memory mapping; elsewhere openSegMap falls back to a heap copy
// of the segment with the same cached-handle semantics.
const mmapSupported = true

// mmapFile maps size bytes of fh read-only and shared, so the kernel
// page cache backs every read directly — no read syscalls, no buffer
// copies until a value is handed out — and returns the mapping with its
// releaser.
func mmapFile(fh *os.File, size int64) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(fh.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
