package store

// Conformance test for the Backend contract, run against every backend
// flavour. The secondary-index subsystem (internal/index) depends on
// exactly these properties: sorted prefix Scan order (posting lists come
// out merge-ready), Put idempotency for identical content (rebuild
// re-puts postings), and Count agreeing with Scan (index consistency
// checks compare posting counts to record counts).

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// backendUnderTest names one flavour and how to (re)open it.
type backendUnderTest struct {
	name string
	open func(t *testing.T) Backend
}

func allBackends() []backendUnderTest {
	return []backendUnderTest{
		{"memory", func(t *testing.T) Backend { return NewMemoryBackend() }},
		{"file", func(t *testing.T) Backend {
			b, err := NewFileBackend(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		// The file backend again with segment mmapping forced off: the
		// portable ReadFile path must satisfy the identical contract (it
		// is the -mmap=off escape hatch and the non-linux build).
		{"file-nommap", func(t *testing.T) Backend {
			prev := SetMmapEnabled(false)
			t.Cleanup(func() { SetMmapEnabled(prev) })
			b, err := NewFileBackend(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		// The file backend with the legacy serial compactor: both
		// compaction paths (incremental snapshot-rewrite-swap and the
		// stop-the-world rewrite) must leave identical stores behind.
		{"file-serialcompact", func(t *testing.T) Backend {
			b, err := NewFileBackend(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			b.SetIncrementalCompaction(false)
			return b
		}},
		{"kvdb", func(t *testing.T) Backend {
			b, err := NewKVBackend(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { b.Close() })
			return b
		}},
		// kvdb with the legacy serial compactor, for the same reason as
		// file-serialcompact.
		{"kvdb-serialcompact", func(t *testing.T) Backend {
			b, err := NewKVBackend(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			b.SetIncrementalCompaction(false)
			t.Cleanup(func() { b.Close() })
			return b
		}},
	}
}

func TestBackendConformance(t *testing.T) {
	for _, but := range allBackends() {
		t.Run(but.name, func(t *testing.T) {
			t.Run("GetRoundTrip", func(t *testing.T) { conformGetRoundTrip(t, but.open(t)) })
			t.Run("ScanSortedOrder", func(t *testing.T) { conformScanSorted(t, but.open(t)) })
			t.Run("ScanPrefixScoped", func(t *testing.T) { conformScanPrefix(t, but.open(t)) })
			t.Run("PutIdempotentRePut", func(t *testing.T) { conformRePut(t, but.open(t)) })
			t.Run("PutOverwriteLastWins", func(t *testing.T) { conformOverwrite(t, but.open(t)) })
			t.Run("CountMatchesScan", func(t *testing.T) { conformCount(t, but.open(t)) })
			t.Run("EmptyValueRoundTrips", func(t *testing.T) { conformEmptyValue(t, but.open(t)) })
			t.Run("ScanErrorPropagates", func(t *testing.T) { conformScanError(t, but.open(t)) })
			t.Run("PutBatchRoundTrip", func(t *testing.T) { conformPutBatch(t, but.open(t)) })
			t.Run("PutBatchSortedScan", func(t *testing.T) { conformPutBatchSortedScan(t, but.open(t)) })
			t.Run("PutBatchWriteOnceRePut", func(t *testing.T) { conformPutBatchRePut(t, but.open(t)) })
			t.Run("PutBatchCountConsistency", func(t *testing.T) { conformPutBatchCount(t, but.open(t)) })
			t.Run("PutBatchEmptyAndInvalid", func(t *testing.T) { conformPutBatchEdge(t, but.open(t)) })
			t.Run("GetBatchRoundTrip", func(t *testing.T) { conformGetBatch(t, but.open(t)) })
			t.Run("GetBatchEmptyValues", func(t *testing.T) { conformGetBatchEmpty(t, but.open(t)) })
			t.Run("ScanFromResumesMidList", func(t *testing.T) { conformScanFrom(t, but.open(t)) })
			t.Run("ScanFromEqualsScan", func(t *testing.T) { conformScanFromUnbounded(t, but.open(t)) })
		})
	}
}

func conformGetBatch(t *testing.T, b Backend) {
	// GetBatch must agree with per-key Gets: values align with the key
	// slice, absent keys read as present=false, duplicates allowed.
	if err := b.PutBatch([]KV{
		{Key: "i/1", Value: []byte("one")},
		{Key: "i/2", Value: []byte("two")},
		{Key: "s/9", Value: []byte("nine")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("i/3", []byte("three")); err != nil {
		t.Fatal(err)
	}
	keys := []string{"i/2", "absent", "i/3", "s/9", "i/2"}
	values, present, err := b.GetBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != len(keys) || len(present) != len(keys) {
		t.Fatalf("result lengths %d/%d, want %d", len(values), len(present), len(keys))
	}
	want := []struct {
		ok  bool
		val string
	}{{true, "two"}, {false, ""}, {true, "three"}, {true, "nine"}, {true, "two"}}
	for i, w := range want {
		if present[i] != w.ok || (w.ok && string(values[i]) != w.val) {
			t.Errorf("GetBatch[%d] (%s) = %q present=%v, want %q present=%v",
				i, keys[i], values[i], present[i], w.val, w.ok)
		}
		if !w.ok && values[i] != nil {
			t.Errorf("GetBatch[%d] absent key carries value %q", i, values[i])
		}
	}
	if _, _, err := b.GetBatch(nil); err != nil {
		t.Errorf("empty batch get errored: %v", err)
	}
}

func conformGetBatchEmpty(t *testing.T, b Backend) {
	// Index postings are empty-valued; batched reads must report them
	// present.
	if err := b.PutBatch([]KV{{Key: "x/p/1", Value: nil}, {Key: "x/p/2", Value: []byte{}}}); err != nil {
		t.Fatal(err)
	}
	values, present, err := b.GetBatch([]string{"x/p/1", "x/p/2"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if !present[i] || len(values[i]) != 0 {
			t.Errorf("empty value [%d]: present=%v len=%d", i, present[i], len(values[i]))
		}
	}
}

func conformScanFrom(t *testing.T, b Backend) {
	keys := []string{"x/a/1", "x/a/3", "x/a/5", "x/a/7", "x/b/1"}
	for _, k := range keys {
		if err := b.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		from string
		want []string
	}{
		// Resume at an existing key: inclusive.
		{"x/a/3", []string{"x/a/3", "x/a/5", "x/a/7"}},
		// Resume between keys: lands on the next one.
		{"x/a/4", []string{"x/a/5", "x/a/7"}},
		// The successor-string cursor form skips the consumed key.
		{"x/a/3\x00", []string{"x/a/5", "x/a/7"}},
		// Past the prefix range: nothing.
		{"x/a/9", nil},
		// Before the prefix: everything (prefix still bounds below).
		{"a", []string{"x/a/1", "x/a/3", "x/a/5", "x/a/7"}},
	}
	for _, c := range cases {
		var got []string
		if err := b.ScanFrom("x/a/", c.from, func(k string, v []byte) error {
			if string(v) != k {
				t.Errorf("value mismatch at %s", k)
			}
			got = append(got, k)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !sort.StringsAreSorted(got) {
			t.Errorf("ScanFrom(%q) order not sorted: %v", c.from, got)
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("ScanFrom(%q) = %v, want %v", c.from, got, c.want)
		}
	}
}

func conformScanFromUnbounded(t *testing.T, b Backend) {
	for _, k := range []string{"p/1", "p/2", "p/3"} {
		if err := b.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	var viaScan, viaFrom []string
	if err := b.Scan("p/", func(k string, _ []byte) error { viaScan = append(viaScan, k); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := b.ScanFrom("p/", "", func(k string, _ []byte) error { viaFrom = append(viaFrom, k); return nil }); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(viaScan) != fmt.Sprint(viaFrom) {
		t.Errorf("ScanFrom with empty from (%v) differs from Scan (%v)", viaFrom, viaScan)
	}
}

func conformPutBatch(t *testing.T, b Backend) {
	// A batch must be equivalent to the same sequence of Puts: every
	// pair Get-able afterwards, empty values (postings) included.
	batch := []KV{
		{Key: "x/kind/i/abc", Value: nil},
		{Key: "i/1", Value: []byte("record-one")},
		{Key: "x/sess/s1/abc", Value: []byte{}},
		{Key: "s/2", Value: []byte("record-two")},
	}
	if err := b.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	for _, p := range batch {
		v, ok, err := b.Get(p.Key)
		if err != nil || !ok {
			t.Fatalf("Get(%s) after batch: ok=%v err=%v", p.Key, ok, err)
		}
		if string(v) != string(p.Value) {
			t.Errorf("Get(%s) = %q, want %q", p.Key, v, p.Value)
		}
	}
}

func conformPutBatchSortedScan(t *testing.T, b Backend) {
	// Keys written out of order, split across Put and PutBatch, must
	// still scan in sorted order — posting lists stay merge-ready
	// however they were written.
	if err := b.Put("x/a/5", []byte("x/a/5")); err != nil {
		t.Fatal(err)
	}
	if err := b.PutBatch([]KV{
		{Key: "x/b/2", Value: []byte("x/b/2")},
		{Key: "x/a/9", Value: []byte("x/a/9")},
		{Key: "x/a/1", Value: []byte("x/a/1")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.PutBatch([]KV{{Key: "x/a/3", Value: []byte("x/a/3")}}); err != nil {
		t.Fatal(err)
	}
	var visited []string
	if err := b.Scan("x/", func(k string, v []byte) error {
		if string(v) != k {
			t.Errorf("value mismatch at %s: %q", k, v)
		}
		visited = append(visited, k)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(visited) {
		t.Errorf("scan order not sorted after batch writes: %v", visited)
	}
	if len(visited) != 5 {
		t.Errorf("scan visited %d keys, want 5: %v", len(visited), visited)
	}
}

func conformPutBatchRePut(t *testing.T, b Backend) {
	// Re-putting identical content through a batch must be accepted
	// (idempotent client retries flush the same postings again), and a
	// batch overlapping existing keys must behave per key like Put.
	batch := []KV{{Key: "k", Value: []byte("same")}, {Key: "x/p/k", Value: nil}}
	if err := b.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := b.PutBatch(batch); err != nil {
		t.Fatalf("idempotent batch re-put rejected: %v", err)
	}
	v, ok, err := b.Get("k")
	if err != nil || !ok || string(v) != "same" {
		t.Fatalf("after batch re-put: %q ok=%v err=%v", v, ok, err)
	}
	if n, err := b.Count(""); err != nil || n != 2 {
		t.Fatalf("Count after duplicate batches = %d err=%v, want 2", n, err)
	}
}

func conformPutBatchCount(t *testing.T, b Backend) {
	var batch []KV
	for i := 0; i < 9; i++ {
		batch = append(batch, KV{Key: fmt.Sprintf("p/%d", i), Value: []byte("v")})
	}
	batch = append(batch, KV{Key: "q/0", Value: []byte("v")})
	if err := b.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	for _, prefix := range []string{"p/", "q/", "r/", ""} {
		scanned := 0
		if err := b.Scan(prefix, func(string, []byte) error { scanned++; return nil }); err != nil {
			t.Fatal(err)
		}
		counted, err := b.Count(prefix)
		if err != nil {
			t.Fatal(err)
		}
		if counted != scanned {
			t.Errorf("Count(%q) = %d but Scan visited %d", prefix, counted, scanned)
		}
	}
}

func conformPutBatchEdge(t *testing.T, b Backend) {
	if err := b.PutBatch(nil); err != nil {
		t.Fatalf("empty batch must be a no-op, got %v", err)
	}
	if err := b.PutBatch([]KV{{Key: "ok", Value: nil}, {Key: "", Value: nil}}); err == nil {
		t.Fatal("batch containing an empty key must be rejected")
	}
	if n, err := b.Count(""); err != nil || n != 0 {
		t.Fatalf("store not empty after rejected/empty batches: n=%d err=%v", n, err)
	}
}

func conformGetRoundTrip(t *testing.T, b Backend) {
	if _, ok, err := b.Get("absent"); err != nil || ok {
		t.Fatalf("Get(absent) = ok=%v err=%v, want miss without error", ok, err)
	}
	if err := b.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := b.Get("k1")
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get(k1) = %q ok=%v err=%v", v, ok, err)
	}
}

func conformScanSorted(t *testing.T, b Backend) {
	// Insert out of order; Scan must visit in sorted key order.
	keys := []string{"x/b/2", "x/a/9", "x/b/1", "x/a/10", "x/c/0"}
	for _, k := range keys {
		if err := b.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	var visited []string
	if err := b.Scan("x/", func(k string, v []byte) error {
		if string(v) != k {
			t.Errorf("value mismatch at %s: %q", k, v)
		}
		visited = append(visited, k)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(visited) {
		t.Errorf("scan order not sorted: %v", visited)
	}
	if len(visited) != len(keys) {
		t.Errorf("scan visited %d keys, want %d", len(visited), len(keys))
	}
}

func conformScanPrefix(t *testing.T, b Backend) {
	for _, k := range []string{"i/1", "i/2", "i0", "ij/3", "s/1"} {
		if err := b.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var visited []string
	if err := b.Scan("i/", func(k string, _ []byte) error {
		visited = append(visited, k)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, k := range visited {
		if !strings.HasPrefix(k, "i/") {
			t.Errorf("scan leaked key %q outside prefix", k)
		}
	}
	if len(visited) != 2 {
		t.Errorf("prefix scan visited %v, want exactly i/1 i/2", visited)
	}
}

func conformRePut(t *testing.T, b Backend) {
	// Keys are write-once at the Store layer, but backends must accept
	// re-putting identical content: index rebuild re-derives postings
	// over existing entries.
	if err := b.Put("k", []byte("same")); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("k", []byte("same")); err != nil {
		t.Fatalf("idempotent re-put rejected: %v", err)
	}
	v, ok, err := b.Get("k")
	if err != nil || !ok || string(v) != "same" {
		t.Fatalf("after re-put: %q ok=%v err=%v", v, ok, err)
	}
}

func conformOverwrite(t *testing.T, b Backend) {
	// The contract allows a backend to reject overwrites with different
	// content; a backend that accepts them must be last-write-wins.
	if err := b.Put("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	err := b.Put("k", []byte("new"))
	v, ok, gerr := b.Get("k")
	if gerr != nil || !ok {
		t.Fatalf("Get after overwrite: ok=%v err=%v", ok, gerr)
	}
	if err != nil {
		if string(v) != "old" {
			t.Fatalf("overwrite rejected but value changed to %q", v)
		}
		return
	}
	if string(v) != "new" {
		t.Fatalf("overwrite accepted but Get = %q, want last write", v)
	}
}

func conformCount(t *testing.T, b Backend) {
	for i := 0; i < 7; i++ {
		if err := b.Put(fmt.Sprintf("p/%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Put("q/0", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for _, prefix := range []string{"p/", "q/", "r/", ""} {
		scanned := 0
		if err := b.Scan(prefix, func(string, []byte) error { scanned++; return nil }); err != nil {
			t.Fatal(err)
		}
		counted, err := b.Count(prefix)
		if err != nil {
			t.Fatal(err)
		}
		if counted != scanned {
			t.Errorf("Count(%q) = %d but Scan visited %d", prefix, counted, scanned)
		}
	}
}

func conformEmptyValue(t *testing.T, b Backend) {
	// Index postings are empty-valued keys; they must round-trip.
	if err := b.Put("empty", nil); err != nil {
		t.Fatalf("empty value rejected: %v", err)
	}
	v, ok, err := b.Get("empty")
	if err != nil || !ok || len(v) != 0 {
		t.Fatalf("empty value round-trip: %q ok=%v err=%v", v, ok, err)
	}
}

func conformScanError(t *testing.T, b Backend) {
	for _, k := range []string{"e/1", "e/2", "e/3"} {
		if err := b.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	sentinel := fmt.Errorf("stop here")
	visited := 0
	err := b.Scan("e/", func(string, []byte) error {
		visited++
		return sentinel
	})
	if err != sentinel {
		t.Errorf("scan error = %v, want the callback's error", err)
	}
	if visited != 1 {
		t.Errorf("scan continued after error: visited %d", visited)
	}
}
