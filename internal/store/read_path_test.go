package store

// Read-path tests: packed-segment compaction on the file backend and
// the Store-level batched record fetch.

import (
	"os"
	"strings"
	"testing"

	"preserv/internal/core"
	"preserv/internal/prep"
)

// segFiles counts the packed segment files in a directory.
func segFiles(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			n++
		}
	}
	return n
}

func TestFileBackendCompactMergesSegments(t *testing.T) {
	dir := t.TempDir()
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(fb)

	// Several Record calls leave several posting segments (plus the
	// index's schema-marker writes).
	for i := 0; i < 6; i++ {
		session := seq.NewID()
		var recs []core.Record
		for j := 0; j < 4; j++ {
			recs = append(recs, mkInteraction(session, "svc:gzip", "compress"))
		}
		if acc, rejects, err := s.Record("svc:enactor", recs); err != nil || len(rejects) > 0 || acc != len(recs) {
			t.Fatalf("record %d: acc=%d rejects=%v err=%v", i, acc, rejects, err)
		}
	}
	before := segFiles(t, dir)
	if before < 6 {
		t.Fatalf("expected at least one segment per Record call, found %d", before)
	}

	// Snapshot every key/value before the merge.
	type kvSnap struct{ key, val string }
	var snap []kvSnap
	if err := fb.Scan("", func(k string, v []byte) error {
		snap = append(snap, kvSnap{k, string(v)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	if err := fb.Compact(); err != nil {
		t.Fatal(err)
	}
	if after := segFiles(t, dir); after != 1 {
		t.Errorf("segments after compaction = %d, want 1", after)
	}
	if got := fb.Segments(); got != 1 {
		t.Errorf("Segments() = %d, want 1", got)
	}

	// Byte-identical content, in place and across a reopen.
	check := func(b Backend, label string) {
		i := 0
		if err := b.Scan("", func(k string, v []byte) error {
			if i >= len(snap) || snap[i].key != k || snap[i].val != string(v) {
				t.Fatalf("%s: divergence at entry %d (key %s)", label, i, k)
			}
			i++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if i != len(snap) {
			t.Errorf("%s: %d entries, want %d", label, i, len(snap))
		}
	}
	check(fb, "compacted")

	fb2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	check(fb2, "reopened")

	// The reopened store still answers queries over the merged segments.
	s2 := New(fb2)
	recs, total, err := s2.Query(&prep.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if total != 24 || len(recs) != 24 {
		t.Fatalf("query after compaction: %d/%d records, want 24", len(recs), total)
	}
}

func TestFileBackendCompactSingleSegmentNoop(t *testing.T) {
	dir := t.TempDir()
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fb.PutBatch([]KV{{Key: "a", Value: []byte("1")}, {Key: "b", Value: []byte("2")}}); err != nil {
		t.Fatal(err)
	}
	if err := fb.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := segFiles(t, dir); n != 1 {
		t.Errorf("single segment compacted away: %d files", n)
	}
	// An empty backend compacts to nothing without error.
	fb2, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fb2.Compact(); err != nil {
		t.Fatal(err)
	}
}

func TestFileBackendCompactDropsSupersededValues(t *testing.T) {
	dir := t.TempDir()
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The same key rewritten across segments: only the newest survives
	// the merge, and the merged file carries it once.
	if err := fb.PutBatch([]KV{{Key: "k", Value: []byte("old")}}); err != nil {
		t.Fatal(err)
	}
	if err := fb.PutBatch([]KV{{Key: "k", Value: []byte("new")}, {Key: "l", Value: []byte("live")}}); err != nil {
		t.Fatal(err)
	}
	if err := fb.Compact(); err != nil {
		t.Fatal(err)
	}
	v, ok, err := fb.Get("k")
	if err != nil || !ok || string(v) != "new" {
		t.Fatalf("after compact: %q ok=%v err=%v, want \"new\"", v, ok, err)
	}
	fb2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err = fb2.Get("k")
	if err != nil || !ok || string(v) != "new" {
		t.Fatalf("after reopen: %q ok=%v err=%v, want \"new\"", v, ok, err)
	}
}

func TestFileBackendCompactPreservesRecordFiles(t *testing.T) {
	// Keys stored as per-Put record files stay untouched by segment
	// compaction.
	dir := t.TempDir()
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fb.Put("rec/one", []byte("via-put")); err != nil {
		t.Fatal(err)
	}
	if err := fb.PutBatch([]KV{{Key: "seg/one", Value: []byte("via-batch")}}); err != nil {
		t.Fatal(err)
	}
	if err := fb.PutBatch([]KV{{Key: "seg/two", Value: []byte("via-batch-2")}}); err != nil {
		t.Fatal(err)
	}
	if err := fb.Compact(); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{
		"rec/one": "via-put", "seg/one": "via-batch", "seg/two": "via-batch-2",
	} {
		v, ok, err := fb.Get(key)
		if err != nil || !ok || string(v) != want {
			t.Errorf("%s = %q ok=%v err=%v, want %q", key, v, ok, err, want)
		}
	}
	// Exactly one .rec file and one merged .seg remain.
	if n := segFiles(t, dir); n != 1 {
		t.Errorf("segments = %d, want 1", n)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".rec") {
			recs++
		}
	}
	if recs != 1 {
		t.Errorf("record files = %d, want 1", recs)
	}
}
