package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// FileBackend stores records in files under a directory, PReServ's
// "file system" backend, in two layouts:
//
//   - A single Put writes one record file plus a key sidecar (file names
//     derived from the storage key: sanitised, hash-suffixed forms that
//     are filesystem-safe while still grouping an interaction's records
//     by prefix).
//   - A PutBatch packs the whole batch into ONE segment file — the
//     layout that keeps a record's ~20 index postings from costing ~20
//     file pairs each. Segments are written to a temp file and renamed
//     into place, so a batch is visible atomically; per-entry CRCs guard
//     recovery against torn segments all the same.
//
// A sidecar index file is unnecessary — the directory itself is the
// index, rebuilt into memory on open.
type FileBackend struct {
	mu  sync.RWMutex // provlint:lock-order 20
	dir string
	// keys maps storage key -> location; rebuilt on open.
	keys map[string]fileLoc
	// sorted caches the keys in sorted order; pending overlays it with
	// keys whose presence changed since the last build (true = present,
	// false = removed). Small writes queue an O(1) delta instead of
	// discarding the snapshot; the next snapshot read folds the overlay
	// in with one merge pass. nil sorted = fully dirty (initial state
	// and wholesale rebuilds).
	sorted  []string
	pending map[string]bool
	// segSeq numbers segment files; monotonically increasing so open
	// replays segments in write order (last write wins).
	segSeq uint64
	// tombstones tracks keys whose newest segment entry is a tombstone:
	// the key is dead, but its tombstone must survive until Compact has
	// made sure no earlier layout copy (a record file, an older segment)
	// could resurrect it on replay. The value is the sequence number of
	// the segment holding the newest tombstone entry, so an incremental
	// compaction can tell tombstones its snapshot covered (droppable at
	// swap) from ones written during the rewrite (which must survive).
	tombstones map[string]uint64
	// liveBytes / deadBytes approximate how segment bytes split between
	// entries that still back a live key and entries that are garbage
	// (superseded values, tombstones, tombstoned values) — the inputs of
	// GarbageRatio, which schedules online compaction.
	liveBytes int64
	deadBytes int64

	// compactMu serialises compactions against each other; f.mu alone
	// still serialises the swap section against writers. Ordered above
	// f.mu: Compact takes compactMu first, then f.mu in short sections.
	// provlint:lock-order 10
	compactMu sync.Mutex
	// compactBoundary is the merged segment's sequence number while an
	// incremental compaction is in flight (0 = idle). Writers use it to
	// split dead-byte accounting: garbage born in segments ABOVE the
	// boundary survives the swap and accrues in deadSinceSnap, which the
	// swap section promotes to the new deadBytes.
	compactBoundary uint64
	deadSinceSnap   int64
	// legacyCompact selects the original stop-the-world Compact (held
	// f.mu for the whole merge). Kept for comparison benchmarks and so
	// crash/conformance suites cover both paths.
	legacyCompact bool

	// useMmap selects the read path: cached mmap segment handles (the
	// default, see mmap.go) or the legacy open-per-call path
	// (-mmap=off). Latched at open.
	useMmap bool
	// segMu guards the segment handle cache. Ordered below f.mu: it is
	// only ever acquired with f.mu held or with no lock held, never the
	// other way around.
	// provlint:lock-order 30
	segMu    sync.RWMutex
	segs     map[string]*segMap
	segBytes atomic.Int64

	// blooms holds one filter per live segment (see bloom.go); agg is
	// the lock-free store-wide negative filter folded from them plus the
	// record-file keys, consulted by reads before f.mu.
	blooms map[string]*bloomFilter
	agg    atomic.Pointer[negFilter]
	// bloom counters: lookups short-circuited / filter maybes that were
	// absent after all / maybes that were present.
	bloomSkips atomic.Int64
	bloomFPs   atomic.Int64
	bloomHits  atomic.Int64
}

// fileLoc locates one value: a whole record file (off < 0) or a byte
// range within a packed segment.
type fileLoc struct {
	file string
	off  int64
	vlen int
}

const (
	fileExt = ".rec"
	segExt  = ".seg"
	// segMagic heads every packed segment file.
	segMagic = "PSEG1\n"
)

// segTombstoneVal is the reserved valLen marking a segment entry as a
// tombstone: the entry carries no value and deletes its key on replay.
// A real entry's valLen is an actual byte count bounded by the segment
// size, so the sentinel can never be produced by a legitimate put —
// segments written before deletion existed parse unchanged.
const segTombstoneVal = ^uint64(0)

// uvarintLen is the encoded size of x — used to account segment entry
// bytes without re-encoding them.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// putEntrySize / tombEntrySize are the exact on-disk sizes of the two
// segment entry forms, for the live/dead byte accounting.
func putEntrySize(key string, vlen int) int64 {
	return int64(uvarintLen(uint64(len(key))) + uvarintLen(uint64(vlen)) + len(key) + vlen + 4)
}

func tombEntrySize(key string) int64 {
	return int64(uvarintLen(uint64(len(key))) + uvarintLen(segTombstoneVal) + len(key) + 4)
}

// NewFileBackend opens (creating if necessary) a file backend rooted at
// dir and indexes any records already present.
func NewFileBackend(dir string) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	fb := &FileBackend{
		dir:        dir,
		keys:       make(map[string]fileLoc),
		tombstones: make(map[string]uint64),
		blooms:     make(map[string]*bloomFilter),
		useMmap:    MmapEnabled(),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %w", dir, err)
	}
	// Segments replay in sequence order so that a key rewritten in a
	// later segment resolves to its newest location.
	var segs []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir():
		case strings.HasSuffix(name, fileExt):
			keyPath := filepath.Join(dir, name+".key")
			keyBytes, err := os.ReadFile(keyPath)
			if err != nil {
				// A record file without its key sidecar is a torn write;
				// skip it rather than fail the whole store.
				continue
			}
			fb.keys[string(keyBytes)] = fileLoc{file: name, off: -1}
		case strings.HasSuffix(name, segExt):
			segs = append(segs, name)
		}
	}
	sort.Strings(segs)
	for _, name := range segs {
		if seq, err := strconv.ParseUint(strings.TrimSuffix(name, segExt), 16, 64); err == nil && seq > fb.segSeq {
			fb.segSeq = seq
		}
		if err := fb.loadSegment(name); err != nil {
			return nil, err
		}
	}
	fb.rebuildAggLocked()
	return fb, nil
}

// loadSegment indexes the entries of one packed segment. A corrupt entry
// ends the replay of that segment (everything after a torn write is
// unreliable) without failing the open — the same torn-write tolerance
// the record-file layout has. On the mmap path the parse runs straight
// off the cached mapping, which stays cached for the reads to come.
func (f *FileBackend) loadSegment(name string) error {
	if f.useMmap {
		_, err := f.withSegData(name, func(data []byte) error {
			f.replaySegment(name, data)
			return nil
		})
		if err != nil {
			return fmt.Errorf("store: reading segment %s: %w", name, err)
		}
		return nil
	}
	data, err := os.ReadFile(filepath.Join(f.dir, name))
	if err != nil {
		return fmt.Errorf("store: reading segment %s: %w", name, err)
	}
	f.replaySegment(name, data)
	return nil
}

// replaySegment applies one segment's entries to the in-memory state
// and adopts the segment's bloom filter. Open-time only (single
// goroutine, f.mu not yet shared).
func (f *FileBackend) replaySegment(name string, data []byte) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return // not a segment we understand; leave it alone
	}
	seq, _ := segSeqOf(name)
	var putKeys []string
	off := len(segMagic)
	for off < len(data) {
		key, valOff, valLen, next, tomb, ok := parseSegEntry(data, off)
		if !ok {
			break
		}
		if tomb {
			f.noteTombstoneLocked(key, seq)
		} else {
			f.notePutLocked(key)
			f.liveBytes += putEntrySize(key, valLen)
			f.keys[key] = fileLoc{file: name, off: int64(valOff), vlen: valLen}
			putKeys = append(putKeys, key)
		}
		off = next
	}
	f.adoptSegmentBloomLocked(name, putKeys)
}

// adoptSegmentBloomLocked installs the filter for a freshly replayed
// segment: the persisted sidecar when it decodes cleanly (for a large
// compacted segment that saves re-hashing every key), a rebuild from
// the parsed keys otherwise. A truncated segment only ever replays a
// prefix of the keys its sidecar was built over, so a structurally
// valid sidecar is always a superset of the parsed keys and needs no
// per-key validation. Callers hold f.mu (or own the backend).
func (f *FileBackend) adoptSegmentBloomLocked(name string, keys []string) {
	if len(keys) == 0 {
		return // tombstone-only or empty: nothing for a filter to cover
	}
	if data, err := os.ReadFile(filepath.Join(f.dir, name+bloomExt)); err == nil {
		if b, _, ok := decodeBloomSidecar(data); ok {
			f.blooms[name] = b
			return
		}
	}
	b := newBloomFilter(len(keys))
	for _, k := range keys {
		b.add(k)
	}
	f.blooms[name] = b
	if len(keys) >= bloomSidecarMinKeys {
		f.writeBloomSidecar(name, b, len(keys))
	}
}

// rebuildAggLocked rebuilds the store-wide negative filter from the
// per-segment filters plus every record-file key. Folding filters in
// word-wise instead of re-hashing their keys is what makes a compacted
// segment's sidecar pay for itself at open. Runs at open, when growth
// pushes the false-positive rate past its design point, and at the end
// of Compact — the one moment deleted keys get washed out. Callers
// hold f.mu.
func (f *FileBackend) rebuildAggLocked() {
	// Wide enough for every existing filter to fold in, with headroom
	// for the live key count to double before the next rebuild.
	need := bloomBitsFor(2 * len(f.keys))
	for _, b := range f.blooms {
		if w := uint64(len(b.words)) * 64; w > need {
			need = w
		}
	}
	nf := newNegFilter(int(need / bloomBitsPerKey))
	for _, b := range f.blooms {
		nf.orFilter(b, 0)
	}
	for k, loc := range f.keys {
		if loc.off < 0 {
			nf.add(k)
		}
	}
	nf.n.Store(int64(len(f.keys)))
	f.agg.Store(nf)
}

// aggAbsorbLocked folds a new segment's filter into the aggregate,
// rebuilding when the shapes no longer fit or the aggregate has grown
// past its design fill. Callers hold f.mu.
func (f *FileBackend) aggAbsorbLocked(b *bloomFilter, nkeys int) {
	nf := f.agg.Load()
	if nf != nil && nf.orFilter(b, nkeys) && !nf.overfull() {
		return
	}
	f.rebuildAggLocked()
}

// aggAddLocked folds a single record-file key in. Callers hold f.mu.
func (f *FileBackend) aggAddLocked(key string) {
	nf := f.agg.Load()
	if nf == nil {
		f.rebuildAggLocked()
		return
	}
	nf.add(key)
	if nf.overfull() {
		f.rebuildAggLocked()
	}
}

// BloomStats reports the negative-filter counters: lookups answered
// "absent" without touching the lock (skips), filter maybes that were
// absent after all (false positives), and maybes that were present
// (hits).
func (f *FileBackend) BloomStats() (skips, falsePositives, hits int64) {
	return f.bloomSkips.Load(), f.bloomFPs.Load(), f.bloomHits.Load()
}

// segSeqOf parses the sequence number out of a %016x.seg name; false
// for foreign segment names.
func segSeqOf(name string) (uint64, bool) {
	seq, err := strconv.ParseUint(strings.TrimSuffix(name, segExt), 16, 64)
	return seq, err == nil
}

// noteDeadLocked records sz bytes of the segment entry in file going
// dead. While an incremental compaction is in flight, garbage born in
// segments above the snapshot boundary survives the coming swap, so it
// is tracked separately for the swap section to promote. Callers hold
// f.mu.
func (f *FileBackend) noteDeadLocked(file string, sz int64) {
	f.deadBytes += sz
	if f.compactBoundary != 0 {
		if seq, ok := segSeqOf(file); ok && seq > f.compactBoundary {
			f.deadSinceSnap += sz
		}
	}
}

// notePutLocked updates the byte accounting and tombstone set for a
// segment put of key: a previous segment copy becomes dead, a previous
// tombstone stops being the key's newest entry. Callers hold f.mu.
func (f *FileBackend) notePutLocked(key string) {
	if old, ok := f.keys[key]; ok && old.off >= 0 {
		sz := putEntrySize(key, old.vlen)
		f.liveBytes -= sz
		f.noteDeadLocked(old.file, sz)
	}
	delete(f.tombstones, key)
}

// noteTombstoneLocked applies one tombstone entry written in segment
// sequence seq: the key's live segment copy (if any) becomes dead, the
// key leaves the directory, and the tombstone itself is garbage-to-be.
// Callers hold f.mu.
func (f *FileBackend) noteTombstoneLocked(key string, seq uint64) {
	if old, ok := f.keys[key]; ok {
		if old.off >= 0 {
			sz := putEntrySize(key, old.vlen)
			f.liveBytes -= sz
			f.noteDeadLocked(old.file, sz)
		}
		delete(f.keys, key)
		f.markKeyLocked(key, false)
	}
	ts := tombEntrySize(key)
	f.deadBytes += ts
	if f.compactBoundary != 0 {
		// Tombstone entries always land in a post-boundary segment while
		// a compaction is in flight (the boundary sequence was claimed
		// before any concurrent write could allocate one).
		f.deadSinceSnap += ts
	}
	f.tombstones[key] = seq
}

// Segment entry layout: uvarint keyLen, uvarint valLen, key, value,
// 4-byte big-endian CRC32 over key+value. A valLen of segTombstoneVal
// marks a tombstone: no value follows, the CRC covers the key alone, and
// replay deletes the key instead of locating a value. Lengths are
// validated in uint64 before any int conversion so a corrupt varint
// cannot overflow the bounds check into a panic — corruption must parse
// as torn, not crash the open.
func parseSegEntry(data []byte, off int) (key string, valOff, valLen, next int, tomb, ok bool) {
	kl, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return "", 0, 0, 0, false, false
	}
	vl, m := binary.Uvarint(data[off+n:])
	if m <= 0 {
		return "", 0, 0, 0, false, false
	}
	hdr := off + n + m
	rest := uint64(len(data) - hdr)
	if vl == segTombstoneVal {
		if kl == 0 || kl > rest || rest-kl < 4 {
			return "", 0, 0, 0, false, false
		}
		body := data[hdr : hdr+int(kl)]
		if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[hdr+int(kl):]) {
			return "", 0, 0, 0, false, false
		}
		return string(body), 0, 0, hdr + int(kl) + 4, true, true
	}
	if kl == 0 || kl > rest || vl > rest-kl || rest-kl-vl < 4 {
		return "", 0, 0, 0, false, false
	}
	body := data[hdr : hdr+int(kl)+int(vl)]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[hdr+int(kl)+int(vl):]) {
		return "", 0, 0, 0, false, false
	}
	return string(body[:kl]), hdr + int(kl), int(vl), hdr + int(kl) + int(vl) + 4, false, true
}

func appendSegEntry(buf []byte, key string, value []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = binary.AppendUvarint(buf, uint64(len(value)))
	buf = append(buf, key...)
	buf = append(buf, value...)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf[len(buf)-len(key)-len(value):]))
	return append(buf, crc[:]...)
}

// appendSegTombstone encodes a deletion entry for key.
func appendSegTombstone(buf []byte, key string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = binary.AppendUvarint(buf, segTombstoneVal)
	buf = append(buf, key...)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf[len(buf)-len(key):]))
	return append(buf, crc[:]...)
}

// Name implements Backend.
func (f *FileBackend) Name() string { return "file" }

func fileNameFor(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:16]) + fileExt
}

// Put implements Backend. The record body is written first, then the key
// sidecar; a crash between the two leaves an orphan that open skips.
//
// Overwriting a key that lives in a packed segment is rejected unless
// the content is identical: the two layouts have no durable ordering
// between them, so reopen could not tell which write was last. Within
// one layout, overwrites stay last-write-wins (same record file name;
// higher segment sequence).
func (f *FileBackend) Put(key string, value []byte) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if loc, ok := f.keys[key]; ok && loc.off >= 0 {
		existing, found, err := f.readLoc(loc)
		if err != nil {
			// Writing the record file anyway would plant a copy a restart
			// silently loses to the segment (record files replay first);
			// surface the read failure instead.
			return fmt.Errorf("store: checking segment-stored %s before overwrite: %w", key, err)
		}
		if found {
			if string(existing) != string(value) {
				return fmt.Errorf("store: %s is segment-stored; cross-layout overwrite with different content", key)
			}
			return nil // identical re-put; the segment copy already serves it
		}
		// Segment file vanished underneath us: write the record file.
	}
	if _, dead := f.tombstones[key]; dead {
		// A live tombstone outranks every record file on replay (record
		// files load before all segments), so a re-put of a deleted key
		// must land in a segment with a later sequence number than the
		// tombstone's — not in a record file the tombstone would erase.
		return f.putBatchLocked([]KV{{Key: key, Value: value}})
	}
	name := fileNameFor(key)
	path := filepath.Join(f.dir, name)
	if err := os.WriteFile(path, value, 0o644); err != nil {
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := os.WriteFile(path+".key", []byte(key), 0o644); err != nil {
		return fmt.Errorf("store: writing key sidecar: %w", err)
	}
	f.setLocLocked(key, fileLoc{file: name, off: -1})
	f.aggAddLocked(key)
	return nil
}

// setLocLocked records a key's location, queueing a sorted-overlay
// delta when the key is new. Callers hold f.mu.
func (f *FileBackend) setLocLocked(key string, loc fileLoc) {
	if _, exists := f.keys[key]; !exists {
		f.markKeyLocked(key, true)
	}
	f.keys[key] = loc
}

// markKeyLocked records that key's presence changed. While a snapshot
// exists the change lands in the pending overlay (an O(1) map write)
// instead of discarding the snapshot — the churn fix for write phases
// interleaved with scans, where every small PutBatch/DeleteBatch used
// to force a full O(n log n) rebuild on the next read. Callers hold
// f.mu.
func (f *FileBackend) markKeyLocked(key string, present bool) {
	if f.sorted == nil {
		return // no snapshot to maintain; the next read rebuilds anyway
	}
	if f.pending == nil {
		f.pending = make(map[string]bool)
	}
	f.pending[key] = present
}

// sortedKeysLocked returns the sorted key snapshot, folding any pending
// overlay in — or rebuilding wholesale when there is no snapshot or the
// overlay has grown to a significant fraction of it. Changed snapshots
// are freshly allocated, never mutated in place, so readers holding an
// old slice keep iterating it safely. Callers hold f.mu (write).
func (f *FileBackend) sortedKeysLocked() []string {
	if f.sorted != nil && len(f.pending) == 0 {
		return f.sorted
	}
	if f.sorted == nil || len(f.pending) > len(f.sorted)/4+64 {
		keys := make([]string, 0, len(f.keys))
		for k := range f.keys {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		f.sorted, f.pending = keys, nil
		return f.sorted
	}
	delta := make([]string, 0, len(f.pending))
	for k := range f.pending {
		delta = append(delta, k)
	}
	sort.Strings(delta)
	merged := make([]string, 0, len(f.sorted)+len(delta))
	i := 0
	for _, k := range delta {
		j := i + sort.SearchStrings(f.sorted[i:], k)
		merged = append(merged, f.sorted[i:j]...)
		if j < len(f.sorted) && f.sorted[j] == k {
			j++ // key already present: replaced (kept) or removed below
		}
		if f.pending[k] {
			merged = append(merged, k)
		}
		i = j
	}
	merged = append(merged, f.sorted[i:]...)
	f.sorted, f.pending = merged, nil
	return f.sorted
}

// sortedSnapshot returns the sorted key cache, folding deltas in only
// when present. Cache clean, the cost is one shared-lock acquisition:
// the slice is immutable once built (writers replace, never mutate), so
// readers iterate it concurrently; staleness is absorbed by the per-key
// Get.
func (f *FileBackend) sortedSnapshot() []string {
	f.mu.RLock()
	keys, clean := f.sorted, len(f.pending) == 0
	f.mu.RUnlock()
	if keys != nil && clean {
		return keys
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sortedKeysLocked()
}

// PutBatch implements Backend: the whole batch lands in one packed
// segment file — two syscall-visible writes (temp file + rename) no
// matter how many pairs, where the per-Put layout would cost two files
// per pair. The rename makes the batch visible atomically.
func (f *FileBackend) PutBatch(kvs []KV) error {
	if len(kvs) == 0 {
		return nil
	}
	for _, p := range kvs {
		if p.Key == "" {
			return fmt.Errorf("store: empty key")
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.putBatchLocked(kvs)
}

// putBatchLocked writes one packed segment for kvs. Callers hold f.mu
// and have validated the keys.
func (f *FileBackend) putBatchLocked(kvs []KV) error {
	// Mirror Put's cross-layout guard: a key stored as a record file may
	// only be re-put through a batch with identical content, since
	// reopen replays segments after record files and would otherwise
	// resurrect whichever copy replays last.
	for _, p := range kvs {
		loc, ok := f.keys[p.Key]
		if !ok || loc.off >= 0 {
			continue
		}
		existing, found, err := f.readLoc(loc)
		if err == nil && found && string(existing) != string(p.Value) {
			return fmt.Errorf("store: %s is file-stored; cross-layout overwrite with different content", p.Key)
		}
	}
	f.segSeq++
	name := fmt.Sprintf("%016x%s", f.segSeq, segExt)

	buf := []byte(segMagic)
	b := newBloomFilter(len(kvs))
	offs := make([]int64, len(kvs))
	for i, p := range kvs {
		buf = appendSegEntry(buf, p.Key, p.Value)
		// The value sits immediately before the entry's trailing CRC.
		offs[i] = int64(len(buf) - 4 - len(p.Value))
		b.add(p.Key)
	}

	path := filepath.Join(f.dir, name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("store: writing segment %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publishing segment %s: %w", name, err)
	}
	// Per-key bookkeeping in ONE map probe per key (this loop is the
	// ingest floor's hot path): it fuses what notePutLocked plus
	// setLocLocked would do in three probes each batch key.
	haveTombs := len(f.tombstones) > 0
	for i, p := range kvs {
		old, ok := f.keys[p.Key]
		if ok && old.off >= 0 {
			sz := putEntrySize(p.Key, old.vlen)
			f.liveBytes -= sz
			f.noteDeadLocked(old.file, sz)
		}
		if haveTombs {
			delete(f.tombstones, p.Key)
		}
		if !ok {
			f.markKeyLocked(p.Key, true)
		}
		f.liveBytes += putEntrySize(p.Key, len(p.Value))
		f.keys[p.Key] = fileLoc{file: name, off: offs[i], vlen: len(p.Value)}
	}
	f.blooms[name] = b
	if len(kvs) >= bloomSidecarMinKeys {
		f.writeBloomSidecar(name, b, len(kvs))
	}
	f.aggAbsorbLocked(b, len(kvs))
	return nil
}

// Delete implements Backend. See DeleteBatch for the durability story.
func (f *FileBackend) Delete(key string) error {
	return f.DeleteBatch([]string{key})
}

// DeleteBatch implements Backend: every key that lives in a packed
// segment gets a tombstone entry, and the whole batch of tombstones
// lands in ONE new segment file (temp file + rename, so that part of
// the batch is visible atomically — a crash keeps either all segment
// deletions or none). Keys stored as individual record files are then
// deleted per key, sidecar first (open skips record files without
// one), body second. The tombstone segment is published BEFORE any
// record file is touched, so an error or crash part-way never applies
// a record-file deletion the durable log knows nothing about while
// reporting total failure. Absent keys are no-ops.
//
// Tombstones must outlive the delete call: record files replay before
// all segments, and an identical cross-layout copy of a deleted key may
// still sit in a record file — so after publishing the tombstones, any
// such record files are removed, and Compact repeats that removal
// before it drops a tombstone for good.
func (f *FileBackend) DeleteBatch(keys []string) error {
	for _, k := range keys {
		if k == "" {
			return fmt.Errorf("store: empty key")
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var buf []byte
	var doomed []string // segment-stored keys being tombstoned
	var fileKeys []string
	for _, k := range keys {
		loc, ok := f.keys[k]
		if !ok {
			continue // absent: no-op
		}
		if loc.off < 0 {
			fileKeys = append(fileKeys, k)
			continue
		}
		if len(buf) == 0 {
			buf = []byte(segMagic)
		}
		buf = appendSegTombstone(buf, k)
		doomed = append(doomed, k)
	}
	if len(doomed) > 0 {
		f.segSeq++
		name := fmt.Sprintf("%016x%s", f.segSeq, segExt)
		path := filepath.Join(f.dir, name)
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, buf, 0o644); err != nil {
			return fmt.Errorf("store: writing tombstone segment %s: %w", tmp, err)
		}
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("store: publishing tombstone segment %s: %w", name, err)
		}
		for _, k := range doomed {
			f.noteTombstoneLocked(k, f.segSeq)
			// A cross-layout identical copy may sit in a record file;
			// remove it so the tombstone can eventually be compacted
			// away.
			rec := filepath.Join(f.dir, fileNameFor(k))
			_ = os.Remove(rec + ".key")
			_ = os.Remove(rec)
		}
	}
	for _, k := range fileKeys {
		path := filepath.Join(f.dir, f.keys[k].file)
		if err := os.Remove(path + ".key"); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: deleting key sidecar for %s: %w", k, err)
		}
		_ = os.Remove(path)
		delete(f.keys, k)
		f.markKeyLocked(k, false)
	}
	return nil
}

// GetBatch implements Backend: lookups resolve under one lock
// acquisition, then each touched segment file is opened once and its
// ranges read in offset order — where per-key Gets would re-open the
// same segment for every posting candidate it holds.
func (f *FileBackend) GetBatch(keys []string) ([][]byte, []bool, error) {
	values := make([][]byte, len(keys))
	present := make([]bool, len(keys))
	flt := f.agg.Load()
	var skips, fps, hits int64
	f.mu.RLock()
	type fetch struct {
		i   int
		loc fileLoc
	}
	byFile := make(map[string][]fetch)
	for i, k := range keys {
		if flt != nil && !flt.mayContain(k) {
			skips++
			continue
		}
		loc, ok := f.keys[k]
		if !ok {
			fps++
			continue
		}
		hits++
		if loc.off >= 0 && loc.vlen == 0 {
			// Empty segment value (an index posting): no file access.
			values[i] = []byte{}
			present[i] = true
			continue
		}
		byFile[loc.file] = append(byFile[loc.file], fetch{i: i, loc: loc})
	}
	f.mu.RUnlock()
	if flt != nil {
		if skips > 0 {
			f.bloomSkips.Add(skips)
		}
		if fps > 0 {
			f.bloomFPs.Add(fps)
		}
		if hits > 0 {
			f.bloomHits.Add(hits)
		}
	}
	for file, fetches := range byFile {
		if fetches[0].loc.off < 0 {
			// Whole record files: one ReadFile each.
			for _, ft := range fetches {
				data, err := os.ReadFile(filepath.Join(f.dir, file))
				if err != nil {
					if os.IsNotExist(err) {
						continue
					}
					return nil, nil, fmt.Errorf("store: reading %s: %w", file, err)
				}
				values[ft.i] = data
				present[ft.i] = true
			}
			continue
		}
		if f.useMmap {
			// One handle acquisition serves every range in this segment;
			// values are copied straight out of the mapping.
			if _, err := f.withSegData(file, func(seg []byte) error {
				for _, ft := range fetches {
					end := ft.loc.off + int64(ft.loc.vlen)
					if end > int64(len(seg)) {
						return fmt.Errorf("store: segment %s shorter than indexed range", file)
					}
					values[ft.i] = append([]byte(nil), seg[ft.loc.off:end]...)
					present[ft.i] = true
				}
				return nil
			}); err != nil {
				return nil, nil, err
			}
			continue // a vanished segment leaves its keys absent
		}
		fh, err := os.Open(filepath.Join(f.dir, file))
		if err != nil {
			if os.IsNotExist(err) {
				continue // segment vanished: all its keys read as absent
			}
			return nil, nil, fmt.Errorf("store: opening segment %s: %w", file, err)
		}
		sort.Slice(fetches, func(a, b int) bool { return fetches[a].loc.off < fetches[b].loc.off })
		for _, ft := range fetches {
			data := make([]byte, ft.loc.vlen)
			if _, err := fh.ReadAt(data, ft.loc.off); err != nil {
				fh.Close()
				return nil, nil, fmt.Errorf("store: reading segment %s: %w", file, err)
			}
			values[ft.i] = data
			present[ft.i] = true
		}
		fh.Close()
	}
	return values, present, nil
}

// Get implements Backend. The negative filter runs BEFORE f.mu: a key
// that cannot exist is answered without queueing behind writers, which
// hold the lock across segment file I/O.
func (f *FileBackend) Get(key string) ([]byte, bool, error) {
	flt := f.agg.Load()
	if flt != nil && !flt.mayContain(key) {
		f.bloomSkips.Add(1)
		return nil, false, nil
	}
	f.mu.RLock()
	loc, ok := f.keys[key]
	f.mu.RUnlock()
	if !ok {
		if flt != nil {
			f.bloomFPs.Add(1)
		}
		return nil, false, nil
	}
	if flt != nil {
		f.bloomHits.Add(1)
	}
	return f.readLoc(loc)
}

// readLoc fetches the value at a location: a whole record file or a
// byte range within a segment.
func (f *FileBackend) readLoc(loc fileLoc) ([]byte, bool, error) {
	path := filepath.Join(f.dir, loc.file)
	if loc.off < 0 {
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				return nil, false, nil
			}
			return nil, false, fmt.Errorf("store: reading %s: %w", loc.file, err)
		}
		return data, true, nil
	}
	if loc.vlen == 0 {
		// Empty segment values (index postings) need no file access —
		// the hot posting-resolution path must not pay an open per key.
		return []byte{}, true, nil
	}
	if f.useMmap {
		var data []byte
		found, err := f.withSegData(loc.file, func(seg []byte) error {
			end := loc.off + int64(loc.vlen)
			if end > int64(len(seg)) {
				return fmt.Errorf("store: segment %s shorter than indexed range", loc.file)
			}
			data = append([]byte(nil), seg[loc.off:end]...)
			return nil
		})
		if err != nil || !found {
			return nil, false, err
		}
		return data, true, nil
	}
	fh, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: opening segment %s: %w", loc.file, err)
	}
	defer fh.Close()
	data := make([]byte, loc.vlen)
	if _, err := fh.ReadAt(data, loc.off); err != nil {
		return nil, false, fmt.Errorf("store: reading segment %s: %w", loc.file, err)
	}
	return data, true, nil
}

// Scan implements Backend.
func (f *FileBackend) Scan(prefix string, fn func(string, []byte) error) error {
	return f.ScanFrom(prefix, "", fn)
}

// ScanFrom implements Backend: a binary search on the sorted key cache
// lands on the first key >= max(prefix, from), so a resumed scan never
// re-walks (or re-sorts) the keys already consumed. Keys stream off the
// snapshot lazily — an early stop from fn ends the sweep without the
// remaining range ever being copied or visited.
func (f *FileBackend) ScanFrom(prefix, from string, fn func(string, []byte) error) error {
	lo := prefix
	if from > lo {
		lo = from
	}
	keys := f.sortedSnapshot()
	for i := sort.SearchStrings(keys, lo); i < len(keys) && strings.HasPrefix(keys[i], prefix); i++ {
		data, ok, err := f.Get(keys[i])
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := fn(keys[i], data); err != nil {
			return err
		}
	}
	return nil
}

// Count implements Backend: two binary searches on the sorted key cache.
func (f *FileBackend) Count(prefix string) (int, error) {
	keys := f.sortedSnapshot()
	i := sort.SearchStrings(keys, prefix)
	j := sort.Search(len(keys)-i, func(n int) bool {
		return !strings.HasPrefix(keys[i+n], prefix)
	}) // prefix-carrying keys are contiguous from i
	return j, nil
}

// Segments reports how many packed segment files currently back live
// keys — the quantity Compact exists to shrink.
func (f *FileBackend) Segments() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	segs := make(map[string]bool)
	for _, loc := range f.keys {
		if loc.off >= 0 {
			segs[loc.file] = true
		}
	}
	return len(segs)
}

// Compact merges every packed posting segment into one freshly written
// segment (the kvdb Compact analogue for the file layout): each Record
// call leaves its own small PSEG1 file, so a long-lived store
// accumulates thousands of tiny segments that slow reopen and waste
// directory entries. Only live entries survive the merge; superseded
// segment values and tombstones are dropped, so deleted keys' bytes are
// reclaimed here. Record files (the per-Put layout) are untouched —
// except those shadowed by a tombstone, which must go before the
// tombstone can (record files replay first, and would resurrect the
// key).
//
// Crash safety: the merged segment is written to a temp file and
// renamed in under its pre-allocated sequence number, so it replays
// after (and consistently with) the segments it replaces; the old files
// are removed only after the rename. A crash in between leaves both —
// the replay resolves every key to the same bytes either way.
//
// By default the merge runs incrementally: the expensive rewrite works
// against a snapshot with no lock held while writers keep landing
// segments, and a short exclusive section swaps the result in. The
// legacy stop-the-world path is kept behind SetIncrementalCompaction
// for comparison benchmarks and dual-path crash/conformance coverage.
func (f *FileBackend) Compact() error {
	f.compactMu.Lock()
	defer f.compactMu.Unlock()
	f.mu.RLock()
	legacy := f.legacyCompact
	f.mu.RUnlock()
	if legacy {
		return f.compactSerial()
	}
	return f.compactIncremental()
}

// SetIncrementalCompaction selects between the incremental compaction
// path (the default: writers keep running during the merge) and the
// legacy stop-the-world path that holds the lock for the whole merge.
func (f *FileBackend) SetIncrementalCompaction(on bool) {
	f.mu.Lock()
	f.legacyCompact = !on
	f.mu.Unlock()
}

// compactIncremental merges segments in three phases. Phase 1 (short
// exclusive section): snapshot every segment-resident key's location
// and the tombstone set, and claim the merged segment's sequence number
// — the "boundary". Every segment a concurrent writer lands during the
// rewrite gets a HIGHER sequence and therefore replays after the merged
// output, which is what makes the on-disk state consistent at every
// instant without any content redo. Phase 2 (no lock): read the
// snapshot values (only Compact removes segments, and compactions are
// serialised, so snapshot locations stay readable), write the merged
// segment under the boundary sequence, sweep record files shadowed by
// snapshot tombstones, and build the merged bloom filter. Phase 3
// (short exclusive section): repoint every key that still resolves to
// its snapshot location — keys overwritten or deleted during the
// rewrite keep their newer location and their merged copy is born dead
// — then retire the victims (sequence below the boundary) and settle
// the byte accounting from deadSinceSnap, which tracked garbage born in
// surviving segments while the rewrite ran.
func (f *FileBackend) compactIncremental() error {
	type snapEntry struct {
		key string
		loc fileLoc
	}
	f.mu.Lock()
	liveSegs := make(map[string]bool)
	snap := make([]snapEntry, 0, len(f.keys))
	for k, loc := range f.keys {
		if loc.off >= 0 {
			liveSegs[loc.file] = true
			snap = append(snap, snapEntry{key: k, loc: loc})
		}
	}
	if len(liveSegs) <= 1 && len(f.tombstones) == 0 && f.deadBytes == 0 {
		f.mu.Unlock()
		return nil // nothing to merge, nothing to reclaim
	}
	tombSnap := make([]string, 0, len(f.tombstones))
	for k := range f.tombstones {
		tombSnap = append(tombSnap, k)
	}
	f.segSeq++
	boundary := f.segSeq
	f.compactBoundary = boundary
	f.deadSinceSnap = 0
	f.mu.Unlock()

	abort := func(e error) error {
		f.mu.Lock()
		f.compactBoundary = 0
		f.deadSinceSnap = 0
		f.mu.Unlock()
		return e
	}

	sort.Slice(snap, func(i, j int) bool { return snap[i].key < snap[j].key })
	buf := []byte(segMagic)
	type placed struct {
		key     string
		snapLoc fileLoc
		off     int64
		vlen    int
	}
	locs := make([]placed, 0, len(snap))
	for _, s := range snap {
		value, ok, err := f.readLoc(s.loc)
		if err != nil {
			return abort(fmt.Errorf("store: compacting %s: %w", s.key, err))
		}
		if !ok {
			continue // segment vanished underneath us; key is dead
		}
		buf = appendSegEntry(buf, s.key, value)
		locs = append(locs, placed{key: s.key, snapLoc: s.loc, off: int64(len(buf) - 4 - len(value)), vlen: len(value)})
	}

	// Record-file sweep for snapshot tombstones (the crash-recovery
	// repeat of DeleteBatch's removal) — safe without the lock: while a
	// key is tombstoned no new record file can appear for it, because
	// re-puts of tombstoned keys route into segments.
	for _, k := range tombSnap {
		rec := filepath.Join(f.dir, fileNameFor(k))
		if err := os.Remove(rec + ".key"); err != nil && !os.IsNotExist(err) {
			return abort(fmt.Errorf("store: compacting tombstoned %s: %w", k, err))
		}
		_ = os.Remove(rec)
	}

	name := fmt.Sprintf("%016x%s", boundary, segExt)
	path := filepath.Join(f.dir, name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return abort(fmt.Errorf("store: writing compacted segment: %w", err))
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return abort(fmt.Errorf("store: publishing compacted segment: %w", err))
	}
	var mb *bloomFilter
	if len(locs) > 0 {
		mb = newBloomFilter(len(locs))
		for _, l := range locs {
			mb.add(l.key)
		}
		if len(locs) >= bloomSidecarMinKeys {
			f.writeBloomSidecar(name, mb, len(locs))
		}
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	// Repoint keys whose location is still exactly the snapshot one; a
	// key overwritten or deleted during the rewrite keeps its newer
	// location, and its merged copy counts straight into the new dead
	// tally (the concurrent write's own accounting already covered the
	// old copy it superseded).
	var mergedDead int64
	for _, l := range locs {
		if cur, ok := f.keys[l.key]; ok && cur == l.snapLoc {
			f.keys[l.key] = fileLoc{file: name, off: l.off, vlen: l.vlen}
		} else {
			mergedDead += putEntrySize(l.key, l.vlen)
		}
	}
	if mb != nil {
		f.blooms[name] = mb
	}
	// Retire the victims: every sequence-named segment BELOW the
	// boundary. Segments above it were written during the rewrite and
	// are live. Removal order and the stop-at-first-failure contract
	// match compactSerial (see the comment there).
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		f.compactBoundary = 0
		f.deadSinceSnap = 0
		return fmt.Errorf("store: listing %s after compaction: %w", f.dir, err)
	}
	var removeErr error
	for _, e := range entries { // ReadDir sorts: fixed-width hex names replay order
		n := e.Name()
		if strings.HasSuffix(n, segExt+bloomExt) {
			if seq, ok := segSeqOf(strings.TrimSuffix(n, bloomExt)); ok && seq < boundary {
				_ = os.Remove(filepath.Join(f.dir, n))
			}
			continue
		}
		if !strings.HasSuffix(n, segExt) {
			continue
		}
		seq, ok := segSeqOf(n)
		if !ok || seq >= boundary {
			continue // foreign, the merged output, or written during the rewrite
		}
		if err := os.Remove(filepath.Join(f.dir, n)); err != nil && !os.IsNotExist(err) {
			removeErr = fmt.Errorf("store: removing compacted segment %s: %w", n, err)
			break
		}
		delete(f.blooms, n)
		f.dropSeg(n) // unmap under the handle lock; readers have copied out
	}
	var newLive int64
	for k, loc := range f.keys {
		if loc.off >= 0 {
			newLive += putEntrySize(k, loc.vlen)
		}
	}
	f.liveBytes = newLive
	f.compactBoundary = 0
	if removeErr == nil {
		// Tombstones the snapshot covered are fully reclaimed: their
		// segments are gone and the record-file sweep ran. Ones written
		// during the rewrite live in surviving segments and must stay.
		for k, seq := range f.tombstones {
			if seq <= boundary {
				delete(f.tombstones, k)
			}
		}
		f.deadBytes = f.deadSinceSnap + mergedDead
	}
	// On a removal failure the victims (tombstone segments included) are
	// still on disk, so — exactly as in compactSerial — the tombstone
	// set and the dead-byte count survive for the next Compact to retry.
	f.deadSinceSnap = 0
	f.rebuildAggLocked()
	return removeErr
}

// compactSerial is the legacy stop-the-world merge: it holds f.mu for
// the entire rewrite.
func (f *FileBackend) compactSerial() error {
	f.mu.Lock()
	defer f.mu.Unlock()

	liveSegs := make(map[string]bool)
	var keys []string
	for k, loc := range f.keys {
		if loc.off >= 0 {
			liveSegs[loc.file] = true
			keys = append(keys, k)
		}
	}
	if len(liveSegs) <= 1 && len(f.tombstones) == 0 && f.deadBytes == 0 {
		return nil // nothing to merge, nothing to reclaim
	}
	sort.Strings(keys)

	buf := []byte(segMagic)
	type pending struct {
		key  string
		off  int64
		vlen int
	}
	locs := make([]pending, 0, len(keys))
	for _, k := range keys {
		value, ok, err := f.readLoc(f.keys[k])
		if err != nil {
			return fmt.Errorf("store: compacting %s: %w", k, err)
		}
		if !ok {
			continue // segment vanished underneath us; key is dead
		}
		buf = appendSegEntry(buf, k, value)
		locs = append(locs, pending{key: k, off: int64(len(buf) - 4 - len(value)), vlen: len(value)})
	}

	f.segSeq++
	name := fmt.Sprintf("%016x%s", f.segSeq, segExt)
	path := filepath.Join(f.dir, name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("store: writing compacted segment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publishing compacted segment: %w", err)
	}
	var newLive int64
	for _, l := range locs {
		f.keys[l.key] = fileLoc{file: name, off: l.off, vlen: l.vlen}
		newLive += putEntrySize(l.key, l.vlen)
	}
	if len(locs) > 0 {
		// The merged segment's filter is exact over its keys; its sidecar
		// is the one that pays off at the next open (compaction output is
		// where the per-segment key counts get large).
		mb := newBloomFilter(len(locs))
		for _, l := range locs {
			mb.add(l.key)
		}
		f.blooms[name] = mb
		if len(locs) >= bloomSidecarMinKeys {
			f.writeBloomSidecar(name, mb, len(locs))
		}
	}
	// Tombstoned keys: make sure no record-file copy survives before the
	// tombstones are dropped with their segments (DeleteBatch already
	// removed these; this is the crash-recovery sweep).
	for k := range f.tombstones {
		rec := filepath.Join(f.dir, fileNameFor(k))
		if err := os.Remove(rec + ".key"); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: compacting tombstoned %s: %w", k, err)
		}
		_ = os.Remove(rec)
	}
	// Every pre-merge segment — live-backed, superseded-only, or
	// tombstone-only — is garbage now. Removal goes in ASCENDING
	// sequence order and stops at the first failure: a put segment that
	// refuses to go while a LATER tombstone segment is removed would
	// resurrect the deleted key on replay (the tombstone outranked the
	// put only by sequence). Stopping keeps every remaining segment's
	// replay consistent — older puts stay overridden by the segments
	// after them — and the stragglers are retried by the next Compact.
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return fmt.Errorf("store: listing %s after compaction: %w", f.dir, err)
	}
	var removeErr error
	for _, e := range entries { // ReadDir sorts: fixed-width hex names replay order
		n := e.Name()
		if strings.HasSuffix(n, segExt+bloomExt) {
			// Bloom sidecars of retired segments (and any orphans from a
			// crashed earlier compaction) go best-effort — a sidecar is
			// never a source of truth, so failure here can't corrupt.
			if n != name+bloomExt {
				if _, err := strconv.ParseUint(strings.TrimSuffix(n, segExt+bloomExt), 16, 64); err == nil {
					_ = os.Remove(filepath.Join(f.dir, n))
				}
			}
			continue
		}
		if !strings.HasSuffix(n, segExt) || n == name {
			continue
		}
		// Only sequence-named segments are ours to reclaim; a foreign
		// .seg file (unknown magic, skipped at open) is left alone.
		if _, err := strconv.ParseUint(strings.TrimSuffix(n, segExt), 16, 64); err != nil {
			continue
		}
		if err := os.Remove(filepath.Join(f.dir, n)); err != nil && !os.IsNotExist(err) {
			removeErr = fmt.Errorf("store: removing compacted segment %s: %w", n, err)
			break
		}
		delete(f.blooms, n)
		f.dropSeg(n) // unmap under the handle lock; readers have copied out
	}
	f.liveBytes = newLive
	// Rebuild the negative filter from what survived: on a clean sweep
	// that is the merged segment alone, which washes out every deleted
	// key the old aggregate still answered "maybe" for.
	f.rebuildAggLocked()
	if removeErr != nil {
		// The merged segment is authoritative and the directory replays
		// consistently — but the leftover segments (tombstones included)
		// are still on disk, so the tombstone set and the dead-byte
		// count MUST survive: forgetting a live tombstone would let a
		// later Put route into a record file the tombstone erases on
		// replay, and zeroing deadBytes would make the next Compact
		// early-return instead of retrying the removal.
		return removeErr
	}
	f.tombstones = make(map[string]uint64)
	f.deadBytes = 0
	return nil
}

// GarbageRatio reports the fraction of packed-segment bytes occupied by
// dead entries (superseded values, tombstones, tombstoned values) — the
// signal online compaction schedules on. Zero when no segments exist.
func (f *FileBackend) GarbageRatio() float64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	total := f.liveBytes + f.deadBytes
	if total <= 0 {
		return 0
	}
	return float64(f.deadBytes) / float64(total)
}

// Tombstones reports how many deleted keys still have a live tombstone
// entry awaiting compaction.
func (f *FileBackend) Tombstones() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.tombstones))
}

// Close implements Backend: release every cached segment handle
// (unmapping where mapped). Reads after Close lazily re-open handles —
// Close is a resource release, not a poisoning.
func (f *FileBackend) Close() error {
	f.segMu.Lock()
	defer f.segMu.Unlock()
	var first error
	for name, m := range f.segs {
		if err := m.close(); err != nil && first == nil {
			first = fmt.Errorf("store: unmapping segment %s: %w", name, err)
		}
		delete(f.segs, name)
	}
	f.segBytes.Store(0)
	return first
}
