package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// FileBackend stores records in files under a directory, PReServ's
// "file system" backend, in two layouts:
//
//   - A single Put writes one record file plus a key sidecar (file names
//     derived from the storage key: sanitised, hash-suffixed forms that
//     are filesystem-safe while still grouping an interaction's records
//     by prefix).
//   - A PutBatch packs the whole batch into ONE segment file — the
//     layout that keeps a record's ~20 index postings from costing ~20
//     file pairs each. Segments are written to a temp file and renamed
//     into place, so a batch is visible atomically; per-entry CRCs guard
//     recovery against torn segments all the same.
//
// A sidecar index file is unnecessary — the directory itself is the
// index, rebuilt into memory on open.
type FileBackend struct {
	mu  sync.RWMutex
	dir string
	// keys maps storage key -> location; rebuilt on open.
	keys map[string]fileLoc
	// sorted caches the keys in sorted order; nil when dirty (a new key
	// arrived since the last build). Scans and counts binary-search it
	// instead of re-sorting the whole key set per call.
	sorted []string
	// segSeq numbers segment files; monotonically increasing so open
	// replays segments in write order (last write wins).
	segSeq uint64
}

// fileLoc locates one value: a whole record file (off < 0) or a byte
// range within a packed segment.
type fileLoc struct {
	file string
	off  int64
	vlen int
}

const (
	fileExt = ".rec"
	segExt  = ".seg"
	// segMagic heads every packed segment file.
	segMagic = "PSEG1\n"
)

// NewFileBackend opens (creating if necessary) a file backend rooted at
// dir and indexes any records already present.
func NewFileBackend(dir string) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	fb := &FileBackend{dir: dir, keys: make(map[string]fileLoc)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %w", dir, err)
	}
	// Segments replay in sequence order so that a key rewritten in a
	// later segment resolves to its newest location.
	var segs []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir():
		case strings.HasSuffix(name, fileExt):
			keyPath := filepath.Join(dir, name+".key")
			keyBytes, err := os.ReadFile(keyPath)
			if err != nil {
				// A record file without its key sidecar is a torn write;
				// skip it rather than fail the whole store.
				continue
			}
			fb.keys[string(keyBytes)] = fileLoc{file: name, off: -1}
		case strings.HasSuffix(name, segExt):
			segs = append(segs, name)
		}
	}
	sort.Strings(segs)
	for _, name := range segs {
		if seq, err := strconv.ParseUint(strings.TrimSuffix(name, segExt), 16, 64); err == nil && seq > fb.segSeq {
			fb.segSeq = seq
		}
		if err := fb.loadSegment(name); err != nil {
			return nil, err
		}
	}
	return fb, nil
}

// loadSegment indexes the entries of one packed segment. A corrupt entry
// ends the replay of that segment (everything after a torn write is
// unreliable) without failing the open — the same torn-write tolerance
// the record-file layout has.
func (f *FileBackend) loadSegment(name string) error {
	data, err := os.ReadFile(filepath.Join(f.dir, name))
	if err != nil {
		return fmt.Errorf("store: reading segment %s: %w", name, err)
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return nil // not a segment we understand; leave it alone
	}
	off := len(segMagic)
	for off < len(data) {
		key, valOff, valLen, next, ok := parseSegEntry(data, off)
		if !ok {
			break
		}
		f.keys[key] = fileLoc{file: name, off: int64(valOff), vlen: valLen}
		off = next
	}
	return nil
}

// Segment entry layout: uvarint keyLen, uvarint valLen, key, value,
// 4-byte big-endian CRC32 over key+value. Lengths are validated in
// uint64 before any int conversion so a corrupt varint cannot overflow
// the bounds check into a panic — corruption must parse as torn, not
// crash the open.
func parseSegEntry(data []byte, off int) (key string, valOff, valLen, next int, ok bool) {
	kl, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return "", 0, 0, 0, false
	}
	vl, m := binary.Uvarint(data[off+n:])
	if m <= 0 {
		return "", 0, 0, 0, false
	}
	hdr := off + n + m
	rest := uint64(len(data) - hdr)
	if kl == 0 || kl > rest || vl > rest-kl || rest-kl-vl < 4 {
		return "", 0, 0, 0, false
	}
	body := data[hdr : hdr+int(kl)+int(vl)]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[hdr+int(kl)+int(vl):]) {
		return "", 0, 0, 0, false
	}
	return string(body[:kl]), hdr + int(kl), int(vl), hdr + int(kl) + int(vl) + 4, true
}

func appendSegEntry(buf []byte, key string, value []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = binary.AppendUvarint(buf, uint64(len(value)))
	buf = append(buf, key...)
	buf = append(buf, value...)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf[len(buf)-len(key)-len(value):]))
	return append(buf, crc[:]...)
}

// Name implements Backend.
func (f *FileBackend) Name() string { return "file" }

func fileNameFor(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:16]) + fileExt
}

// Put implements Backend. The record body is written first, then the key
// sidecar; a crash between the two leaves an orphan that open skips.
//
// Overwriting a key that lives in a packed segment is rejected unless
// the content is identical: the two layouts have no durable ordering
// between them, so reopen could not tell which write was last. Within
// one layout, overwrites stay last-write-wins (same record file name;
// higher segment sequence).
func (f *FileBackend) Put(key string, value []byte) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if loc, ok := f.keys[key]; ok && loc.off >= 0 {
		existing, found, err := f.readLoc(loc)
		if err != nil {
			// Writing the record file anyway would plant a copy a restart
			// silently loses to the segment (record files replay first);
			// surface the read failure instead.
			return fmt.Errorf("store: checking segment-stored %s before overwrite: %w", key, err)
		}
		if found {
			if string(existing) != string(value) {
				return fmt.Errorf("store: %s is segment-stored; cross-layout overwrite with different content", key)
			}
			return nil // identical re-put; the segment copy already serves it
		}
		// Segment file vanished underneath us: write the record file.
	}
	name := fileNameFor(key)
	path := filepath.Join(f.dir, name)
	if err := os.WriteFile(path, value, 0o644); err != nil {
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := os.WriteFile(path+".key", []byte(key), 0o644); err != nil {
		return fmt.Errorf("store: writing key sidecar: %w", err)
	}
	f.setLocLocked(key, fileLoc{file: name, off: -1})
	return nil
}

// setLocLocked records a key's location, invalidating the sorted key
// cache when the key is new. Callers hold f.mu.
func (f *FileBackend) setLocLocked(key string, loc fileLoc) {
	if _, exists := f.keys[key]; !exists {
		f.sorted = nil
	}
	f.keys[key] = loc
}

// sortedKeysLocked returns the cached sorted key slice, rebuilding it if
// stale. Callers hold f.mu (write).
func (f *FileBackend) sortedKeysLocked() []string {
	if f.sorted == nil {
		keys := make([]string, 0, len(f.keys))
		for k := range f.keys {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		f.sorted = keys
	}
	return f.sorted
}

// sortedSnapshot returns the sorted key cache, rebuilding only when
// stale. Cache warm, the cost is one shared-lock acquisition: the slice
// is immutable once built (writers replace, never mutate), so readers
// iterate it concurrently; staleness is absorbed by the per-key Get.
func (f *FileBackend) sortedSnapshot() []string {
	f.mu.RLock()
	keys := f.sorted
	f.mu.RUnlock()
	if keys != nil {
		return keys
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sortedKeysLocked()
}

// PutBatch implements Backend: the whole batch lands in one packed
// segment file — two syscall-visible writes (temp file + rename) no
// matter how many pairs, where the per-Put layout would cost two files
// per pair. The rename makes the batch visible atomically.
func (f *FileBackend) PutBatch(kvs []KV) error {
	if len(kvs) == 0 {
		return nil
	}
	for _, p := range kvs {
		if p.Key == "" {
			return fmt.Errorf("store: empty key")
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	// Mirror Put's cross-layout guard: a key stored as a record file may
	// only be re-put through a batch with identical content, since
	// reopen replays segments after record files and would otherwise
	// resurrect whichever copy replays last.
	for _, p := range kvs {
		loc, ok := f.keys[p.Key]
		if !ok || loc.off >= 0 {
			continue
		}
		existing, found, err := f.readLoc(loc)
		if err == nil && found && string(existing) != string(p.Value) {
			return fmt.Errorf("store: %s is file-stored; cross-layout overwrite with different content", p.Key)
		}
	}
	f.segSeq++
	name := fmt.Sprintf("%016x%s", f.segSeq, segExt)

	buf := []byte(segMagic)
	type loc struct {
		key  string
		off  int64
		vlen int
	}
	locs := make([]loc, 0, len(kvs))
	for _, p := range kvs {
		buf = appendSegEntry(buf, p.Key, p.Value)
		// The value sits immediately before the entry's trailing CRC.
		locs = append(locs, loc{key: p.Key, off: int64(len(buf) - 4 - len(p.Value)), vlen: len(p.Value)})
	}

	path := filepath.Join(f.dir, name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("store: writing segment %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publishing segment %s: %w", name, err)
	}
	for _, l := range locs {
		f.setLocLocked(l.key, fileLoc{file: name, off: l.off, vlen: l.vlen})
	}
	return nil
}

// GetBatch implements Backend: lookups resolve under one lock
// acquisition, then each touched segment file is opened once and its
// ranges read in offset order — where per-key Gets would re-open the
// same segment for every posting candidate it holds.
func (f *FileBackend) GetBatch(keys []string) ([][]byte, []bool, error) {
	values := make([][]byte, len(keys))
	present := make([]bool, len(keys))
	f.mu.RLock()
	type fetch struct {
		i   int
		loc fileLoc
	}
	byFile := make(map[string][]fetch)
	for i, k := range keys {
		loc, ok := f.keys[k]
		if !ok {
			continue
		}
		if loc.off >= 0 && loc.vlen == 0 {
			// Empty segment value (an index posting): no file access.
			values[i] = []byte{}
			present[i] = true
			continue
		}
		byFile[loc.file] = append(byFile[loc.file], fetch{i: i, loc: loc})
	}
	f.mu.RUnlock()
	for file, fetches := range byFile {
		if fetches[0].loc.off < 0 {
			// Whole record files: one ReadFile each.
			for _, ft := range fetches {
				data, err := os.ReadFile(filepath.Join(f.dir, file))
				if err != nil {
					if os.IsNotExist(err) {
						continue
					}
					return nil, nil, fmt.Errorf("store: reading %s: %w", file, err)
				}
				values[ft.i] = data
				present[ft.i] = true
			}
			continue
		}
		fh, err := os.Open(filepath.Join(f.dir, file))
		if err != nil {
			if os.IsNotExist(err) {
				continue // segment vanished: all its keys read as absent
			}
			return nil, nil, fmt.Errorf("store: opening segment %s: %w", file, err)
		}
		sort.Slice(fetches, func(a, b int) bool { return fetches[a].loc.off < fetches[b].loc.off })
		for _, ft := range fetches {
			data := make([]byte, ft.loc.vlen)
			if _, err := fh.ReadAt(data, ft.loc.off); err != nil {
				fh.Close()
				return nil, nil, fmt.Errorf("store: reading segment %s: %w", file, err)
			}
			values[ft.i] = data
			present[ft.i] = true
		}
		fh.Close()
	}
	return values, present, nil
}

// Get implements Backend.
func (f *FileBackend) Get(key string) ([]byte, bool, error) {
	f.mu.RLock()
	loc, ok := f.keys[key]
	f.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	return f.readLoc(loc)
}

// readLoc fetches the value at a location: a whole record file or a
// byte range within a segment.
func (f *FileBackend) readLoc(loc fileLoc) ([]byte, bool, error) {
	path := filepath.Join(f.dir, loc.file)
	if loc.off < 0 {
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				return nil, false, nil
			}
			return nil, false, fmt.Errorf("store: reading %s: %w", loc.file, err)
		}
		return data, true, nil
	}
	if loc.vlen == 0 {
		// Empty segment values (index postings) need no file access —
		// the hot posting-resolution path must not pay an open per key.
		return []byte{}, true, nil
	}
	fh, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: opening segment %s: %w", loc.file, err)
	}
	defer fh.Close()
	data := make([]byte, loc.vlen)
	if _, err := fh.ReadAt(data, loc.off); err != nil {
		return nil, false, fmt.Errorf("store: reading segment %s: %w", loc.file, err)
	}
	return data, true, nil
}

// Scan implements Backend.
func (f *FileBackend) Scan(prefix string, fn func(string, []byte) error) error {
	return f.ScanFrom(prefix, "", fn)
}

// ScanFrom implements Backend: a binary search on the sorted key cache
// lands on the first key >= max(prefix, from), so a resumed scan never
// re-walks (or re-sorts) the keys already consumed. Keys stream off the
// snapshot lazily — an early stop from fn ends the sweep without the
// remaining range ever being copied or visited.
func (f *FileBackend) ScanFrom(prefix, from string, fn func(string, []byte) error) error {
	lo := prefix
	if from > lo {
		lo = from
	}
	keys := f.sortedSnapshot()
	for i := sort.SearchStrings(keys, lo); i < len(keys) && strings.HasPrefix(keys[i], prefix); i++ {
		data, ok, err := f.Get(keys[i])
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := fn(keys[i], data); err != nil {
			return err
		}
	}
	return nil
}

// Count implements Backend: two binary searches on the sorted key cache.
func (f *FileBackend) Count(prefix string) (int, error) {
	keys := f.sortedSnapshot()
	i := sort.SearchStrings(keys, prefix)
	j := sort.Search(len(keys)-i, func(n int) bool {
		return !strings.HasPrefix(keys[i+n], prefix)
	}) // prefix-carrying keys are contiguous from i
	return j, nil
}

// Segments reports how many packed segment files currently back live
// keys — the quantity Compact exists to shrink.
func (f *FileBackend) Segments() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	segs := make(map[string]bool)
	for _, loc := range f.keys {
		if loc.off >= 0 {
			segs[loc.file] = true
		}
	}
	return len(segs)
}

// Compact merges every packed posting segment into one freshly written
// segment (the kvdb Compact analogue for the file layout): each Record
// call leaves its own small PSEG1 file, so a long-lived store
// accumulates thousands of tiny segments that slow reopen and waste
// directory entries. Only live entries survive the merge; superseded
// segment values are dropped. Record files (the per-Put layout) are
// untouched.
//
// Crash safety: the merged segment is written to a temp file and
// renamed in under the next sequence number, so it replays after (and
// consistently with) the segments it replaces; the old files are
// removed only after the rename. A crash in between leaves both — the
// replay resolves every key to the same bytes either way.
func (f *FileBackend) Compact() error {
	f.mu.Lock()
	defer f.mu.Unlock()

	oldSegs := make(map[string]bool)
	var keys []string
	for k, loc := range f.keys {
		if loc.off >= 0 {
			oldSegs[loc.file] = true
			keys = append(keys, k)
		}
	}
	if len(oldSegs) <= 1 {
		return nil // nothing to merge
	}
	sort.Strings(keys)

	buf := []byte(segMagic)
	type pending struct {
		key  string
		off  int64
		vlen int
	}
	locs := make([]pending, 0, len(keys))
	for _, k := range keys {
		value, ok, err := f.readLoc(f.keys[k])
		if err != nil {
			return fmt.Errorf("store: compacting %s: %w", k, err)
		}
		if !ok {
			continue // segment vanished underneath us; key is dead
		}
		buf = appendSegEntry(buf, k, value)
		locs = append(locs, pending{key: k, off: int64(len(buf) - 4 - len(value)), vlen: len(value)})
	}

	f.segSeq++
	name := fmt.Sprintf("%016x%s", f.segSeq, segExt)
	path := filepath.Join(f.dir, name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("store: writing compacted segment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publishing compacted segment: %w", err)
	}
	for _, l := range locs {
		f.keys[l.key] = fileLoc{file: name, off: l.off, vlen: l.vlen}
	}
	// The merged segment is durable and indexed; the sources are garbage.
	// Removal failures are harmless — replay order resolves identically.
	for seg := range oldSegs {
		_ = os.Remove(filepath.Join(f.dir, seg))
	}
	return nil
}

// Close implements Backend.
func (f *FileBackend) Close() error { return nil }
