package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FileBackend stores one file per record under a directory, PReServ's
// "file system" backend. File names are derived from the storage key:
// a sanitised, hash-suffixed form that is filesystem-safe while still
// grouping an interaction's records by prefix. A sidecar index file is
// unnecessary — the directory itself is the index.
type FileBackend struct {
	mu  sync.RWMutex
	dir string
	// keys maps storage key -> file name; rebuilt on open.
	keys map[string]string
}

const fileExt = ".rec"

// NewFileBackend opens (creating if necessary) a file backend rooted at
// dir and indexes any records already present.
func NewFileBackend(dir string) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	fb := &FileBackend{dir: dir, keys: make(map[string]string)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), fileExt) {
			continue
		}
		keyPath := filepath.Join(dir, e.Name()+".key")
		keyBytes, err := os.ReadFile(keyPath)
		if err != nil {
			// A record file without its key sidecar is a torn write;
			// skip it rather than fail the whole store.
			continue
		}
		fb.keys[string(keyBytes)] = e.Name()
	}
	return fb, nil
}

// Name implements Backend.
func (f *FileBackend) Name() string { return "file" }

func fileNameFor(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:16]) + fileExt
}

// Put implements Backend. The record body is written first, then the key
// sidecar; a crash between the two leaves an orphan that open skips.
func (f *FileBackend) Put(key string, value []byte) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	name := fileNameFor(key)
	path := filepath.Join(f.dir, name)
	if err := os.WriteFile(path, value, 0o644); err != nil {
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := os.WriteFile(path+".key", []byte(key), 0o644); err != nil {
		return fmt.Errorf("store: writing key sidecar: %w", err)
	}
	f.keys[key] = name
	return nil
}

// Get implements Backend.
func (f *FileBackend) Get(key string) ([]byte, bool, error) {
	f.mu.RLock()
	name, ok := f.keys[key]
	f.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	data, err := os.ReadFile(filepath.Join(f.dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: reading %s: %w", name, err)
	}
	return data, true, nil
}

// Scan implements Backend.
func (f *FileBackend) Scan(prefix string, fn func(string, []byte) error) error {
	f.mu.RLock()
	keys := make([]string, 0, len(f.keys))
	for k := range f.keys {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	f.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		data, ok, err := f.Get(k)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := fn(k, data); err != nil {
			return err
		}
	}
	return nil
}

// Count implements Backend.
func (f *FileBackend) Count(prefix string) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := 0
	for k := range f.keys {
		if strings.HasPrefix(k, prefix) {
			n++
		}
	}
	return n, nil
}

// Close implements Backend.
func (f *FileBackend) Close() error { return nil }
