package store

// BlockCache is the store-level record block cache: a byte-bounded LRU
// of raw record values, shared by every consumer that reads through
// Store.GetRecord/Store.GetBatch — one query warming a record serves
// the next query's (or the planner's candidate-fetch) read of the same
// record from memory.
//
// Invalidation contract: every entry is stamped with the store
// generation observed BEFORE the backend read that produced it, and a
// lookup only hits when the caller's pre-read generation matches the
// stamp. The generation bumps on every accepted record and every
// attempted delete, so a mutation can at worst invalidate entries too
// eagerly — a stale value can never be served. Compaction rewrites
// bytes without changing contents and deliberately does not bump.

import "sync"

// DefaultBlockCacheBytes bounds the cache when SetBlockCacheBytes has
// not been called: 32 MiB holds the hot working set of a multi-session
// query mix without mattering next to the page cache.
const DefaultBlockCacheBytes = 32 << 20

// blockCacheMaxEntry keeps one oversized value from flushing the whole
// cache: values larger than max/8 bypass it.
const blockCacheMaxEntry = 8

// blockEntryOverhead approximates per-entry bookkeeping bytes (map
// slot, list node, header) for the byte budget.
const blockEntryOverhead = 96

type blockEntry struct {
	key  string
	gen  uint64
	val  []byte
	prev *blockEntry
	next *blockEntry
}

// BlockCache is safe for concurrent use. A max of <= 0 disables it:
// gets miss, puts drop.
type BlockCache struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	entries map[string]*blockEntry
	head    *blockEntry // most recent
	tail    *blockEntry // least recent
	hits    int64
	misses  int64
}

func newBlockCache(max int64) *BlockCache {
	return &BlockCache{max: max, entries: make(map[string]*blockEntry)}
}

func (c *BlockCache) enabled() bool {
	c.mu.Lock()
	on := c.max > 0
	c.mu.Unlock()
	return on
}

// setMax resizes the budget, evicting down to it immediately.
func (c *BlockCache) setMax(max int64) {
	c.mu.Lock()
	c.max = max
	c.evictLocked()
	c.mu.Unlock()
}

func (c *BlockCache) unlinkLocked(e *blockEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *BlockCache) pushFrontLocked(e *blockEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func entrySize(e *blockEntry) int64 {
	return int64(len(e.key)+len(e.val)) + blockEntryOverhead
}

func (c *BlockCache) evictLocked() {
	for c.bytes > c.max && c.tail != nil {
		e := c.tail
		c.unlinkLocked(e)
		delete(c.entries, e.key)
		c.bytes -= entrySize(e)
	}
}

// get returns the cached value for key if its generation stamp matches
// gen — the generation the caller loaded before it would read the
// backend. A stale entry is evicted on sight. The returned slice is
// shared and must not be mutated (record decode copies what it keeps).
func (c *BlockCache) get(key string, gen uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	if e.gen != gen {
		c.unlinkLocked(e)
		delete(c.entries, key)
		c.bytes -= entrySize(e)
		c.misses++
		return nil, false
	}
	if c.head != e {
		c.unlinkLocked(e)
		c.pushFrontLocked(e)
	}
	c.hits++
	return e.val, true
}

// put stores a value under the caller's pre-read generation. Because
// the generation was loaded BEFORE the backend read, a mutation that
// raced the read has already bumped past gen and the entry dies on its
// first lookup — under-stamping can only ever invalidate too eagerly.
func (c *BlockCache) put(key string, gen uint64, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max <= 0 || int64(len(val)) > c.max/blockCacheMaxEntry {
		return
	}
	if old, ok := c.entries[key]; ok {
		c.unlinkLocked(old)
		delete(c.entries, key)
		c.bytes -= entrySize(old)
	}
	e := &blockEntry{key: key, gen: gen, val: val}
	c.entries[key] = e
	c.pushFrontLocked(e)
	c.bytes += entrySize(e)
	c.evictLocked()
}

// BlockCacheStats is a point-in-time counter snapshot.
type BlockCacheStats struct {
	Hits    int64
	Misses  int64
	Bytes   int64
	Entries int64
}

func (c *BlockCache) stats() BlockCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return BlockCacheStats{Hits: c.hits, Misses: c.misses, Bytes: c.bytes, Entries: int64(len(c.entries))}
}
