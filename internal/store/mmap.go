package store

// Mmap-backed segment handles: the file backend used to pay an
// os.Open + ReadAt (or a whole os.ReadFile) per value fetched from a
// packed segment. Segments are immutable once renamed into place, which
// makes them ideal mmap targets — open each touched segment once, keep
// the mapping in a handle cache, and serve every later read as a memcpy
// out of the kernel page cache with zero syscalls.
//
// Lifecycle contract: readers only touch mapped memory inside
// withSegData, under the handle lock held shared; Compact retires a
// mapping with dropSeg, which unmaps under the same lock held
// exclusively — so an unmap can never yank pages out from under an
// in-flight reader. Values handed out are always copies; no mapped byte
// escapes the lock.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// mmapOff disables mmap-backed segment handles for backends opened
// after the call — the -mmap=off escape hatch. The legacy
// open-per-call path it reverts to is also the baseline the readpath
// bench measures against.
var mmapOff atomic.Bool

// SetMmapEnabled toggles whether newly opened file backends serve
// segment reads through cached mmap handles (the default) or the
// legacy open-per-call path. It returns the previous setting; backends
// already open are unaffected.
func SetMmapEnabled(on bool) bool {
	prev := !mmapOff.Load()
	mmapOff.Store(!on)
	return prev
}

// MmapEnabled reports the current default for new file backends.
func MmapEnabled() bool { return !mmapOff.Load() }

// segMap is one open segment: an mmap of the whole file where the
// platform supports it, a heap copy where it doesn't (or where mapping
// failed — some filesystems refuse MAP_SHARED).
type segMap struct {
	data  []byte
	unmap func() error
}

func openSegMap(path string) (*segMap, error) {
	if mmapSupported {
		fh, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		if st, err := fh.Stat(); err == nil && st.Size() > 0 {
			if data, unmap, merr := mmapFile(fh, st.Size()); merr == nil {
				fh.Close()
				return &segMap{data: data, unmap: unmap}, nil
			}
		}
		fh.Close()
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &segMap{data: data}, nil
}

func (m *segMap) close() error {
	if m.unmap != nil {
		u := m.unmap
		m.unmap = nil
		return u()
	}
	return nil
}

// withSegData runs fn over the segment's bytes while holding the handle
// lock, opening (and caching) the handle on first touch. fn must copy
// anything it keeps and must not acquire f.mu (f.mu is ordered above
// segMu). Returns ok=false when the segment no longer exists — the
// caller treats its keys as absent, exactly like the legacy path's
// IsNotExist handling.
func (f *FileBackend) withSegData(name string, fn func(data []byte) error) (ok bool, err error) {
	f.segMu.RLock()
	if m := f.segs[name]; m != nil {
		err := fn(m.data)
		f.segMu.RUnlock()
		return true, err
	}
	f.segMu.RUnlock()

	f.segMu.Lock()
	defer f.segMu.Unlock()
	m := f.segs[name]
	if m == nil {
		var oerr error
		m, oerr = openSegMap(filepath.Join(f.dir, name))
		if oerr != nil {
			if os.IsNotExist(oerr) {
				return false, nil
			}
			return false, fmt.Errorf("store: mapping segment %s: %w", name, oerr)
		}
		if f.segs == nil {
			f.segs = make(map[string]*segMap)
		}
		f.segs[name] = m
		f.segBytes.Add(int64(len(m.data)))
	}
	return true, fn(m.data)
}

// dropSeg retires a segment handle after Compact removed its file. The
// unmap happens under the exclusive handle lock, after every in-flight
// reader has copied its bytes out.
func (f *FileBackend) dropSeg(name string) {
	f.segMu.Lock()
	if m := f.segs[name]; m != nil {
		delete(f.segs, name)
		f.segBytes.Add(-int64(len(m.data)))
		_ = m.close()
	}
	f.segMu.Unlock()
}

// MappedBytes reports how many segment bytes are currently held by
// cached handles (mapped or heap-resident) — an obs gauge input.
func (f *FileBackend) MappedBytes() int64 { return f.segBytes.Load() }
