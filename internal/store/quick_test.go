package store

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
)

// Property: for any randomly generated batch of valid records, the store
// accepts all of them and every conjunctive query returns exactly the
// records that Match — record/query fidelity, the store's core contract.
func TestQuickRecordQueryFidelity(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		src := &ids.SeqSource{Prefix: uint64(seed) & 0xFFF}
		s := New(NewMemoryBackend())

		sessions := []ids.ID{src.NewID(), src.NewID()}
		services := []core.ActorID{"svc:gzip", "svc:ppmz", "svc:measure"}
		n := int(n8)%40 + 1
		var recs []core.Record
		for i := 0; i < n; i++ {
			session := sessions[rng.Intn(len(sessions))]
			service := services[rng.Intn(len(services))]
			in := core.Interaction{ID: src.NewID(), Sender: "svc:enactor", Receiver: service, Operation: "op"}
			if rng.Intn(3) == 0 {
				recs = append(recs, *core.NewActorStateRecord(&core.ActorStatePAssertion{
					LocalID: fmt.Sprintf("s%d", i), Asserter: "svc:enactor",
					Interaction: in, View: core.SenderView,
					StateKind: core.StateScript, Content: core.Bytes("x"),
					Groups:    []core.GroupRef{{Type: core.GroupSession, ID: session, Seq: uint64(i)}},
					Timestamp: time.Unix(0, 0),
				}))
			} else {
				recs = append(recs, *core.NewInteractionRecord(&core.InteractionPAssertion{
					LocalID: fmt.Sprintf("e%d", i), Asserter: "svc:enactor",
					Interaction: in, View: core.SenderView,
					Request:   core.Message{Name: "invoke"},
					Response:  core.Message{Name: "result"},
					Groups:    []core.GroupRef{{Type: core.GroupSession, ID: session, Seq: uint64(i)}},
					Timestamp: time.Unix(0, 0),
				}))
			}
		}
		acc, rej, err := s.Record("svc:enactor", recs)
		if err != nil || acc != n || len(rej) != 0 {
			return false
		}

		queries := []*prep.Query{
			{},
			{SessionID: sessions[0]},
			{Kind: "interaction"},
			{Kind: "actorState", StateKind: core.StateScript},
			{Service: services[0]},
			{SessionID: sessions[1], Service: services[1]},
			{InteractionID: recs[0].InteractionID()},
		}
		for _, q := range queries {
			got, total, err := s.Query(q)
			if err != nil {
				return false
			}
			want := 0
			for i := range recs {
				if q.Matches(&recs[i]) {
					want++
				}
			}
			if total != want || len(got) != want {
				return false
			}
			// Every returned record must itself match and be one of ours.
			keys := map[string]bool{}
			for i := range recs {
				keys[recs[i].StorageKey()] = true
			}
			for i := range got {
				if !q.Matches(&got[i]) || !keys[got[i].StorageKey()] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
