package store

// Tests for the memory-speed read path: bloom filter behaviour (no
// false negatives, bounded false-positive rate, sidecar durability),
// the generation-invalidated block cache, and the file backend's
// incrementally maintained sorted-key snapshot.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"preserv/internal/core"
)

// TestBloomFilterNoFalseNegativesAndLowFPR is the filter's core
// property: every inserted key answers mayContain, and absent keys
// answer true rarely (10 bits/key targets ~1%; the bound leaves slack
// for power-of-two rounding on the unlucky side).
func TestBloomFilterNoFalseNegativesAndLowFPR(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 2000
	b := newBloomFilter(n)
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("i/key/%d-%d", i, rng.Int63())
		b.add(keys[i])
	}
	for _, k := range keys {
		if !b.mayContain(k) {
			t.Fatalf("false negative for inserted key %q", k)
		}
	}
	const probes = 20000
	fp := 0
	for i := 0; i < probes; i++ {
		if b.mayContain(fmt.Sprintf("absent/%d-%d", i, rng.Int63())) {
			fp++
		}
	}
	if fpr := float64(fp) / probes; fpr > 0.05 {
		t.Fatalf("false-positive rate %.4f over %d probes, want <= 0.05", fpr, probes)
	}
}

// TestBloomSidecarRoundTripAndCorruption: the PBLM1 sidecar round-trips
// exactly, and any single corrupted byte is rejected (magic or CRC), so
// a torn or bit-rotted sidecar can never poison lookups — load falls
// back to rebuilding from the replayed keys.
func TestBloomSidecarRoundTripAndCorruption(t *testing.T) {
	b := newBloomFilter(600)
	for i := 0; i < 600; i++ {
		b.add(fmt.Sprintf("i/sc/%d", i))
	}
	enc := encodeBloomSidecar(b, 600)
	dec, nkeys, ok := decodeBloomSidecar(enc)
	if !ok || nkeys != 600 || dec.k != b.k || len(dec.words) != len(b.words) {
		t.Fatalf("round trip: ok=%v nkeys=%d k=%d/%d words=%d/%d", ok, nkeys, dec.k, b.k, len(dec.words), len(b.words))
	}
	for i := range b.words {
		if dec.words[i] != b.words[i] {
			t.Fatalf("word %d differs after round trip", i)
		}
	}
	step := len(enc)/64 + 1
	for pos := 0; pos < len(enc); pos += step {
		bad := append([]byte(nil), enc...)
		bad[pos] ^= 0x5a
		if _, _, ok := decodeBloomSidecar(bad); ok {
			t.Fatalf("corrupted byte %d accepted", pos)
		}
	}
	if _, _, ok := decodeBloomSidecar(enc[:len(enc)-3]); ok {
		t.Fatal("truncated sidecar accepted")
	}
}

// TestBloomSidecarCorruptionRebuildsOnLoad: a file backend whose
// persisted sidecar is corrupted reopens with full fidelity — the
// filter rebuilds from the segment's replayed keys, negative lookups
// still skip the backend, and a fresh valid sidecar is written back.
func TestBloomSidecarCorruptionRebuildsOnLoad(t *testing.T) {
	dir := t.TempDir()
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	nkeys := bloomSidecarMinKeys + 10
	kvs := make([]KV, nkeys)
	for i := range kvs {
		kvs[i] = KV{Key: fmt.Sprintf("i/blm/%04d", i), Value: []byte(fmt.Sprintf("v-%d", i))}
	}
	if err := fb.PutBatch(kvs); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	sidecars, err := filepath.Glob(filepath.Join(dir, "*.seg"+bloomExt))
	if err != nil || len(sidecars) != 1 {
		t.Fatalf("want exactly one bloom sidecar, got %v (%v)", sidecars, err)
	}
	if err := os.WriteFile(sidecars[0], []byte("garbage, not PBLM1"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, kv := range kvs {
		v, ok, err := re.Get(kv.Key)
		if err != nil || !ok || string(v) != string(kv.Value) {
			t.Fatalf("Get(%s) after sidecar corruption = %q %v %v", kv.Key, v, ok, err)
		}
	}
	skips0, _, _ := re.BloomStats()
	if _, ok, _ := re.Get("i/blm/absent"); ok {
		t.Fatal("absent key reported present")
	}
	skips1, _, _ := re.BloomStats()
	if skips1 <= skips0 {
		t.Fatalf("negative lookup did not skip via bloom (skips %d -> %d)", skips0, skips1)
	}
	// The rebuilt filter was persisted back.
	data, err := os.ReadFile(sidecars[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, n, ok := decodeBloomSidecar(data); !ok || n != nkeys {
		t.Fatalf("rewritten sidecar invalid: ok=%v nkeys=%d want %d", ok, n, nkeys)
	}
}

// TestBlockCacheGenerationBumpInvalidates is the block cache's
// staleness regression: a cached record value must die with the store
// generation, so a delete (or any accepted record) can never be masked
// by the cache.
func TestBlockCacheGenerationBumpInvalidates(t *testing.T) {
	s := New(NewMemoryBackend())
	sid := seq.NewID()
	rec := mkInteraction(sid, "svc:bc", "run")
	if _, _, err := s.Record("svc:enactor", []core.Record{rec}); err != nil {
		t.Fatal(err)
	}
	key := rec.StorageKey()

	for i := 0; i < 2; i++ {
		if _, ok, err := s.GetRecord(key); err != nil || !ok {
			t.Fatalf("GetRecord #%d = %v %v", i, ok, err)
		}
	}
	st := s.ReadCacheStats()
	if st.BlockCacheHits == 0 {
		t.Fatalf("repeat point read did not hit the block cache: %+v", st)
	}

	if ok, err := s.DeleteRecord(key); err != nil || !ok {
		t.Fatalf("DeleteRecord = %v %v", ok, err)
	}
	if _, ok, err := s.GetRecord(key); err != nil || ok {
		t.Fatalf("deleted record still served (stale block cache): ok=%v err=%v", ok, err)
	}

	// Re-record: the generation moved again, the fresh value is served.
	if _, _, err := s.Record("svc:enactor", []core.Record{rec}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.GetRecord(key); err != nil || !ok {
		t.Fatalf("re-recorded record not served: ok=%v err=%v", ok, err)
	}
}

// TestBlockCacheDisabled: a zero budget bypasses the cache entirely.
func TestBlockCacheDisabled(t *testing.T) {
	s := New(NewMemoryBackend())
	s.SetBlockCacheBytes(0)
	sid := seq.NewID()
	rec := mkInteraction(sid, "svc:nobc", "run")
	if _, _, err := s.Record("svc:enactor", []core.Record{rec}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := s.GetRecord(rec.StorageKey()); err != nil || !ok {
			t.Fatal(ok, err)
		}
	}
	if st := s.ReadCacheStats(); st.BlockCacheHits != 0 || st.BlockCacheBytes != 0 {
		t.Fatalf("disabled cache retained state: %+v", st)
	}
}

// TestFileBackendSortedOverlayProperty drives the file backend through
// random batched puts and deletes, demanding after every step that the
// incrementally maintained sorted snapshot equals the key set sorted
// from scratch — the overlay merge must be indistinguishable from a
// full rebuild.
func TestFileBackendSortedOverlayProperty(t *testing.T) {
	fb, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	rng := rand.New(rand.NewSource(41))
	live := make(map[string]bool)

	check := func(step int) {
		got := fb.sortedSnapshot()
		want := make([]string, 0, len(live))
		for k := range live {
			want = append(want, k)
		}
		sort.Strings(want)
		if len(got) != len(want) {
			t.Fatalf("step %d: snapshot has %d keys, want %d", step, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d: snapshot[%d] = %q, want %q", step, i, got[i], want[i])
			}
		}
	}
	// Materialise the sorted snapshot up front so mutations exercise the
	// pending-overlay path rather than the nil fast path.
	check(0)

	for step := 1; step <= 120; step++ {
		switch rng.Intn(3) {
		case 0: // batch of puts: new keys and overwrites
			n := 1 + rng.Intn(5)
			kvs := make([]KV, 0, n)
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("i/ov/%03d", rng.Intn(200))
				kvs = append(kvs, KV{Key: k, Value: []byte("v")})
				live[k] = true
			}
			if err := fb.PutBatch(kvs); err != nil {
				t.Fatal(err)
			}
		case 1: // batch of deletes: live and absent keys mixed
			n := 1 + rng.Intn(5)
			keys := make([]string, 0, n)
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("i/ov/%03d", rng.Intn(220))
				keys = append(keys, k)
				delete(live, k)
			}
			if err := fb.DeleteBatch(keys); err != nil {
				t.Fatal(err)
			}
		case 2: // single record-file put
			k := fmt.Sprintf("r/ov/%03d", rng.Intn(60))
			if err := fb.Put(k, []byte(strings.Repeat("x", 1+rng.Intn(8)))); err != nil {
				t.Fatal(err)
			}
			live[k] = true
		}
		check(step)
	}
}
