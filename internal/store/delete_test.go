package store

// Tests for the record-deletion and compaction lifecycle: backend
// Delete/DeleteBatch conformance (including persistence across reopen,
// which is where tombstones earn their keep), store-level
// DeleteRecord/DeleteSession with index maintenance, and the acceptance
// property that deletion + compaction shrinks the on-disk footprint
// while keeping planner results byte-identical to a fresh scan.

import (
	"os"
	"path/filepath"
	"testing"

	"preserv/internal/core"
	"preserv/internal/prep"
)

func TestBackendDeleteConformance(t *testing.T) {
	for _, but := range allBackends() {
		t.Run(but.name, func(t *testing.T) {
			t.Run("DeleteRoundTrip", func(t *testing.T) { conformDelete(t, but.open(t)) })
			t.Run("DeleteAbsentNoop", func(t *testing.T) { conformDeleteAbsent(t, but.open(t)) })
			t.Run("DeleteBatchMixed", func(t *testing.T) { conformDeleteBatch(t, but.open(t)) })
			t.Run("DeleteThenRePut", func(t *testing.T) { conformDeleteRePut(t, but.open(t)) })
			t.Run("DeleteEmptyKeyRejected", func(t *testing.T) { conformDeleteEmptyKey(t, but.open(t)) })
		})
	}
}

func conformDelete(t *testing.T, b Backend) {
	if err := b.PutBatch([]KV{
		{Key: "i/a/1", Value: []byte("one")},
		{Key: "i/a/2", Value: []byte("two")},
		{Key: "s/a/1", Value: []byte("state")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete("i/a/1"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := b.Get("i/a/1"); err != nil || ok {
		t.Fatalf("deleted key still present: ok=%v err=%v", ok, err)
	}
	if v, ok, err := b.Get("i/a/2"); err != nil || !ok || string(v) != "two" {
		t.Fatalf("sibling key damaged by delete: %q %v %v", v, ok, err)
	}
	// Scan, ScanFrom and Count must all agree the key is gone.
	var seen []string
	if err := b.Scan("i/", func(k string, _ []byte) error {
		seen = append(seen, k)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != "i/a/2" {
		t.Fatalf("Scan after delete = %v", seen)
	}
	if n, err := b.Count("i/"); err != nil || n != 1 {
		t.Fatalf("Count after delete = %d %v", n, err)
	}
	values, present, err := b.GetBatch([]string{"i/a/1", "i/a/2"})
	if err != nil {
		t.Fatal(err)
	}
	if present[0] || !present[1] || string(values[1]) != "two" {
		t.Fatalf("GetBatch after delete = %q %v", values, present)
	}
}

func conformDeleteAbsent(t *testing.T, b Backend) {
	if err := b.Delete("i/never/was"); err != nil {
		t.Fatalf("deleting absent key: %v", err)
	}
	if err := b.DeleteBatch([]string{"i/nope/1", "i/nope/2"}); err != nil {
		t.Fatalf("batch-deleting absent keys: %v", err)
	}
	if n, err := b.Count(""); err != nil || n != 0 {
		t.Fatalf("Count after absent deletes = %d %v", n, err)
	}
}

func conformDeleteBatch(t *testing.T, b Backend) {
	var batch []KV
	for _, k := range []string{"i/b/1", "i/b/2", "i/b/3", "s/b/1"} {
		batch = append(batch, KV{Key: k, Value: []byte("v-" + k)})
	}
	if err := b.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	// A mixed batch: two present keys, one absent, one duplicate.
	if err := b.DeleteBatch([]string{"i/b/1", "i/b/3", "i/absent", "i/b/1"}); err != nil {
		t.Fatal(err)
	}
	var seen []string
	if err := b.Scan("", func(k string, _ []byte) error {
		seen = append(seen, k)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != "i/b/2" || seen[1] != "s/b/1" {
		t.Fatalf("survivors = %v", seen)
	}
}

func conformDeleteRePut(t *testing.T, b Backend) {
	if err := b.Put("i/c/1", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete("i/c/1"); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("i/c/1", []byte("second")); err != nil {
		t.Fatalf("re-putting deleted key: %v", err)
	}
	if v, ok, err := b.Get("i/c/1"); err != nil || !ok || string(v) != "second" {
		t.Fatalf("re-put value = %q %v %v", v, ok, err)
	}
}

func conformDeleteEmptyKey(t *testing.T, b Backend) {
	if err := b.DeleteBatch([]string{""}); err == nil && b.Name() != "kvdb" {
		t.Error("empty key should be rejected")
	}
}

// persistentBackends returns reopenable flavours: open attaches to dir,
// creating it on first use.
type persistentBackend struct {
	name string
	open func(t *testing.T, dir string) Backend
}

func persistentBackends() []persistentBackend {
	return []persistentBackend{
		{"file", func(t *testing.T, dir string) Backend {
			b, err := NewFileBackend(dir)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		{"kvdb", func(t *testing.T, dir string) Backend {
			b, err := NewKVBackend(dir)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
	}
}

// TestDeletePersistsAcrossReopen is the tombstone contract: a deletion
// must survive a restart even though older copies of the key (record
// files, earlier segments, earlier log entries) are still on disk.
func TestDeletePersistsAcrossReopen(t *testing.T) {
	for _, pb := range persistentBackends() {
		t.Run(pb.name, func(t *testing.T) {
			dir := t.TempDir()
			b := pb.open(t, dir)
			// One key in each layout: batch (segment / log append) and
			// single put (record file / log append).
			if err := b.PutBatch([]KV{
				{Key: "i/x/1", Value: []byte("batch")},
				{Key: "i/x/2", Value: []byte("batch2")},
			}); err != nil {
				t.Fatal(err)
			}
			if err := b.Put("i/x/3", []byte("single")); err != nil {
				t.Fatal(err)
			}
			if err := b.DeleteBatch([]string{"i/x/1", "i/x/3"}); err != nil {
				t.Fatal(err)
			}
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}

			b = pb.open(t, dir)
			defer b.Close()
			if _, ok, _ := b.Get("i/x/1"); ok {
				t.Error("batch-stored key resurrected after reopen")
			}
			if _, ok, _ := b.Get("i/x/3"); ok {
				t.Error("file-stored key resurrected after reopen")
			}
			if v, ok, err := b.Get("i/x/2"); err != nil || !ok || string(v) != "batch2" {
				t.Fatalf("survivor damaged: %q %v %v", v, ok, err)
			}
		})
	}
}

// TestDeleteSurvivesCompactionAndReopen pins the subtle file-backend
// case: Compact drops tombstones, so it must also make sure nothing
// older can resurrect the key on the next open.
func TestDeleteSurvivesCompactionAndReopen(t *testing.T) {
	for _, pb := range persistentBackends() {
		t.Run(pb.name, func(t *testing.T) {
			dir := t.TempDir()
			b := pb.open(t, dir)
			if err := b.Put("i/y/1", []byte("recordfile")); err != nil {
				t.Fatal(err)
			}
			if err := b.PutBatch([]KV{{Key: "i/y/2", Value: []byte("segment")}}); err != nil {
				t.Fatal(err)
			}
			if err := b.DeleteBatch([]string{"i/y/1", "i/y/2"}); err != nil {
				t.Fatal(err)
			}
			if c, ok := b.(Compacter); ok {
				if err := c.Compact(); err != nil {
					t.Fatal(err)
				}
			}
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			b = pb.open(t, dir)
			defer b.Close()
			for _, k := range []string{"i/y/1", "i/y/2"} {
				if _, ok, _ := b.Get(k); ok {
					t.Errorf("%s resurrected after compaction + reopen", k)
				}
			}
		})
	}
}

// TestFileDeleteOfCrossLayoutDuplicate pins the cross-layout corner: a
// key put as a record file and identically re-put through a batch lives
// in both layouts; deleting it must leave neither copy able to
// resurrect it — before or after compaction.
func TestFileDeleteOfCrossLayoutDuplicate(t *testing.T) {
	dir := t.TempDir()
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fb.Put("i/z/1", []byte("same")); err != nil {
		t.Fatal(err)
	}
	if err := fb.PutBatch([]KV{{Key: "i/z/1", Value: []byte("same")}}); err != nil {
		t.Fatal(err)
	}
	if err := fb.Delete("i/z/1"); err != nil {
		t.Fatal(err)
	}
	if err := fb.Compact(); err != nil {
		t.Fatal(err)
	}
	fb2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := fb2.Get("i/z/1"); ok {
		t.Error("cross-layout duplicate resurrected the deleted key")
	}
}

// TestFileRePutAfterDeleteSurvivesReopen pins the replay-order trap: a
// record file written after a tombstone would be erased by the
// tombstone on replay (record files load before all segments), so the
// re-put must be routed into a later segment.
func TestFileRePutAfterDeleteSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fb.PutBatch([]KV{{Key: "i/w/1", Value: []byte("v1")}}); err != nil {
		t.Fatal(err)
	}
	if err := fb.Delete("i/w/1"); err != nil {
		t.Fatal(err)
	}
	if err := fb.Put("i/w/1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	fb2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := fb2.Get("i/w/1"); !ok || string(v) != "v2" {
		t.Fatalf("re-put after delete lost on reopen: %q %v", v, ok)
	}
}

// dirSize sums the on-disk bytes under dir.
func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

// queryEquivalence asserts that the planner-free scan path and a fresh
// full sweep agree byte-for-byte on every record the store holds.
func recordsByScan(t *testing.T, s *Store, q *prep.Query) ([]core.Record, int) {
	t.Helper()
	recs, total, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	return recs, total
}

// TestDeleteLifecycleShrinksDiskAndKeepsScanIdentity is the PR's
// acceptance property: after DeleteRecord/DeleteSession + Compact,
// query results are byte-identical to a fresh scan on every backend,
// and the persistent backends' on-disk size shrinks.
func TestDeleteLifecycleShrinksDiskAndKeepsScanIdentity(t *testing.T) {
	type flavour struct {
		name string
		dir  string // empty for memory
		open func(t *testing.T, dir string) Backend
	}
	flavours := []flavour{
		{"memory", "", func(t *testing.T, _ string) Backend { return NewMemoryBackend() }},
	}
	for _, pb := range persistentBackends() {
		pb := pb
		flavours = append(flavours, flavour{pb.name, t.TempDir(), pb.open})
	}
	for _, fl := range flavours {
		t.Run(fl.name, func(t *testing.T) {
			b := fl.open(t, fl.dir)
			s := New(b)
			keep := seq.NewID()
			doomed := seq.NewID()
			var keepRecs, doomedRecs []core.Record
			for i := 0; i < 8; i++ {
				keepRecs = append(keepRecs, mkInteraction(keep, "svc:gzip", "compress"))
				doomedRecs = append(doomedRecs, mkInteraction(doomed, "svc:ppmz", "compress"))
			}
			if acc, _, err := s.Record("svc:enactor", append(keepRecs, doomedRecs...)); err != nil || acc != 16 {
				t.Fatalf("Record = %d, %v", acc, err)
			}

			// Delete one record by key, then the rest of its session.
			gen := s.Generation()
			ok, err := s.DeleteRecord(doomedRecs[0].StorageKey())
			if err != nil || !ok {
				t.Fatalf("DeleteRecord = %v, %v", ok, err)
			}
			if s.Generation() == gen {
				t.Fatal("DeleteRecord did not advance the generation")
			}
			// Idempotent: deleting again is a no-op.
			if ok, err := s.DeleteRecord(doomedRecs[0].StorageKey()); err != nil || ok {
				t.Fatalf("re-delete = %v, %v", ok, err)
			}
			gen = s.Generation()
			n, err := s.DeleteSession(doomed)
			if err != nil || n != 7 {
				t.Fatalf("DeleteSession = %d, %v", n, err)
			}
			if s.Generation() == gen {
				t.Fatal("DeleteSession did not advance the generation")
			}

			var before int64
			if fl.dir != "" {
				before = dirSize(t, fl.dir)
			}
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
			if fl.dir != "" {
				after := dirSize(t, fl.dir)
				if after >= before {
					t.Errorf("on-disk size did not shrink: %d -> %d bytes", before, after)
				}
			}
			if tombs := s.Tombstones(); tombs != 0 {
				t.Errorf("tombstones survive compaction: %d", tombs)
			}

			// Every read path agrees the session is gone and the kept
			// session is intact.
			all, total := recordsByScan(t, s, &prep.Query{})
			if total != 8 || len(all) != 8 {
				t.Fatalf("scan after delete+compact: %d records (total %d)", len(all), total)
			}
			for _, r := range all {
				if sid, _ := r.GroupID(core.GroupSession); sid == doomed {
					t.Fatalf("deleted session resurrected: %s", r.StorageKey())
				}
			}
			gone, total := recordsByScan(t, s, &prep.Query{SessionID: doomed})
			if len(gone) != 0 || total != 0 {
				t.Fatalf("deleted session still queryable: %d (total %d)", len(gone), total)
			}

			// Reopen (persistent backends): deletions and index must
			// survive; the Open-time consistency check must be satisfied
			// without a rebuild looping forever.
			if fl.dir != "" {
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				s = New(fl.open(t, fl.dir))
				defer s.Close()
				if _, err := s.Index(); err != nil {
					t.Fatal(err)
				}
				all, total = recordsByScan(t, s, &prep.Query{})
				if total != 8 || len(all) != 8 {
					t.Fatalf("after reopen: %d records (total %d)", len(all), total)
				}
			}
		})
	}
}

// TestDeleteRecordCrashBeforeDeindexRecovers simulates the crash window
// between the record delete and its posting removal: the reopened
// index must detect the posting surplus, rebuild, GC the dangling
// postings, and satisfy its own consistency check on the next open.
func TestDeleteRecordCrashBeforeDeindexRecovers(t *testing.T) {
	for _, pb := range persistentBackends() {
		t.Run(pb.name, func(t *testing.T) {
			dir := t.TempDir()
			b := pb.open(t, dir)
			s := New(b)
			session := seq.NewID()
			var recs []core.Record
			for i := 0; i < 4; i++ {
				recs = append(recs, mkInteraction(session, "svc:gzip", "compress"))
			}
			if _, _, err := s.Record("svc:enactor", recs); err != nil {
				t.Fatal(err)
			}
			// Crash simulation: the record is deleted straight at the
			// backend, bypassing the store's posting removal.
			if err := b.Delete(recs[0].StorageKey()); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			b = pb.open(t, dir)
			s = New(b)
			defer s.Close()
			idx, err := s.Index() // triggers the consistency check + rebuild
			if err != nil {
				t.Fatal(err)
			}
			// The dangling postings must be gone: the deleted record's
			// interaction posting list is empty.
			keys, err := idx.Postings("int", recs[0].InteractionID().String())
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != 0 {
				t.Errorf("dangling postings survive rebuild: %v", keys)
			}
			recsOut, total := recordsByScan(t, s, &prep.Query{SessionID: session})
			if len(recsOut) != 3 || total != 3 {
				t.Fatalf("after recovery: %d records (total %d)", len(recsOut), total)
			}
		})
	}
}

// TestDeleteRecordWithCorruptValue pins the retraction policy for torn
// values: a record whose stored bytes no longer decode must still be
// deletable (its stale postings go dangling and are collected by the
// next rebuild) — otherwise one corrupt value would make itself and
// its session permanently unretractable.
func TestDeleteRecordWithCorruptValue(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := New(b)
			session := seq.NewID()
			good := mkInteraction(session, "svc:gzip", "compress")
			if _, _, err := s.Record("svc:enactor", []core.Record{good}); err != nil {
				t.Fatal(err)
			}
			// Plant a corrupt value directly at the backend, as a torn
			// write would leave it.
			corruptKey := "i/urn:pasoa:00000000000000000000000000000042/sender/svc:x/torn"
			if err := b.Put(corruptKey, []byte("\x01garbage")); err != nil {
				t.Fatal(err)
			}
			ok, err := s.DeleteRecord(corruptKey)
			if err != nil || !ok {
				t.Fatalf("deleting corrupt record = %v, %v", ok, err)
			}
			if _, present, _ := b.Get(corruptKey); present {
				t.Fatal("corrupt record survives deletion")
			}
			if recs, total := recordsByScan(t, s, &prep.Query{SessionID: session}); len(recs) != 1 || total != 1 {
				t.Fatalf("healthy record damaged: %d (total %d)", len(recs), total)
			}
		})
	}
}

// TestFileGarbageRatioAccounting sanity-checks the byte accounting the
// compaction scheduler reads.
func TestFileGarbageRatioAccounting(t *testing.T) {
	fb, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if r := fb.GarbageRatio(); r != 0 {
		t.Fatalf("empty backend garbage ratio = %v", r)
	}
	if err := fb.PutBatch([]KV{
		{Key: "i/g/1", Value: []byte("abcdef")},
		{Key: "i/g/2", Value: []byte("ghijkl")},
	}); err != nil {
		t.Fatal(err)
	}
	if r := fb.GarbageRatio(); r != 0 {
		t.Fatalf("all-live garbage ratio = %v", r)
	}
	if err := fb.Delete("i/g/1"); err != nil {
		t.Fatal(err)
	}
	if r := fb.GarbageRatio(); r <= 0 || r >= 1 {
		t.Fatalf("post-delete garbage ratio = %v, want in (0,1)", r)
	}
	if n := fb.Tombstones(); n != 1 {
		t.Fatalf("tombstones = %d", n)
	}
	if err := fb.Compact(); err != nil {
		t.Fatal(err)
	}
	if r := fb.GarbageRatio(); r != 0 {
		t.Fatalf("post-compaction garbage ratio = %v", r)
	}
	if n := fb.Tombstones(); n != 0 {
		t.Fatalf("post-compaction tombstones = %d", n)
	}
}

// TestStoreDeleteRecordsBatch covers the exported bulk retraction
// (DeleteRecords, the shard drain's delete half) on every backend:
// chunked deletion with index maintenance, absent keys as no-ops,
// generation bump, and planner-equals-scan afterwards.
func TestStoreDeleteRecordsBatch(t *testing.T) {
	for _, but := range allBackends() {
		t.Run(but.name, func(t *testing.T) {
			s := New(but.open(t))
			session := seq.NewID()
			var keys []string
			var recs []core.Record
			for i := 0; i < 9; i++ {
				r := mkInteraction(session, "svc:gzip", "run")
				recs = append(recs, r)
				keys = append(keys, r.StorageKey())
			}
			if acc, rejects, err := s.Record("svc:enactor", recs); err != nil || acc != 9 || len(rejects) != 0 {
				t.Fatalf("record: acc=%d rejects=%v err=%v", acc, rejects, err)
			}
			genBefore := s.Generation()

			// Delete a mix of present, absent and REPEATED keys: a key
			// arriving twice from the wire must delete (and count, and
			// tombstone) once.
			doomed := append([]string{"i/absent/sender/x/y", keys[0], keys[0]}, keys[:5]...)
			n, err := s.DeleteRecords(doomed)
			if err != nil {
				t.Fatal(err)
			}
			if n != 5 {
				t.Fatalf("deleted %d, want 5", n)
			}
			if s.Generation() == genBefore {
				t.Fatal("generation did not advance on batch delete")
			}

			// Survivors intact, deleted gone, both read paths agree.
			got, total, err := s.Query(&prep.Query{SessionID: session})
			if err != nil || total != 4 || len(got) != 4 {
				t.Fatalf("scan after batch delete: %d/%d err=%v", len(got), total, err)
			}
			for _, r := range got {
				for _, k := range keys[:5] {
					if r.StorageKey() == k {
						t.Fatalf("deleted record %s still queryable", k)
					}
				}
			}

			// Empty and all-absent batches are no-ops; empty keys rejected.
			if n, err := s.DeleteRecords(nil); err != nil || n != 0 {
				t.Fatalf("empty batch: %d %v", n, err)
			}
			if n, err := s.DeleteRecords(keys[:5]); err != nil || n != 0 {
				t.Fatalf("re-delete batch: %d %v", n, err)
			}
			if _, err := s.DeleteRecords([]string{"ok", ""}); err == nil {
				t.Fatal("empty key in batch accepted")
			}
		})
	}
}
