package store

import (
	"fmt"
	"testing"
	"time"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
)

func populateStore(b *testing.B, s *Store, n int) ids.ID {
	b.Helper()
	src := &ids.SeqSource{Prefix: 0xBE}
	session := src.NewID()
	var recs []core.Record
	for i := 0; i < n; i++ {
		in := core.Interaction{ID: src.NewID(), Sender: "svc:enactor", Receiver: "svc:gzip", Operation: "compress"}
		recs = append(recs, *core.NewInteractionRecord(&core.InteractionPAssertion{
			LocalID:     fmt.Sprintf("e%d", i),
			Asserter:    "svc:enactor",
			Interaction: in,
			View:        core.SenderView,
			Request:     core.Message{Name: "invoke"},
			Response:    core.Message{Name: "result"},
			Groups:      []core.GroupRef{{Type: core.GroupSession, ID: session, Seq: uint64(i)}},
			Timestamp:   time.Unix(1117584000, 0),
		}))
	}
	if _, rej, err := s.Record("svc:enactor", recs); err != nil || len(rej) > 0 {
		b.Fatalf("populate: %v %v", err, rej)
	}
	return session
}

func BenchmarkRecordBatchMemory(b *testing.B) {
	s := New(NewMemoryBackend())
	src := &ids.SeqSource{Prefix: 0xBF}
	session := src.NewID()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := core.Interaction{ID: src.NewID(), Sender: "svc:enactor", Receiver: "svc:gzip", Operation: "c"}
		rec := *core.NewInteractionRecord(&core.InteractionPAssertion{
			LocalID: "e", Asserter: "svc:enactor", Interaction: in, View: core.SenderView,
			Request: core.Message{Name: "invoke"}, Response: core.Message{Name: "result"},
			Groups:    []core.GroupRef{{Type: core.GroupSession, ID: session, Seq: uint64(i)}},
			Timestamp: time.Unix(1117584000, 0),
		})
		if _, _, err := s.Record("svc:enactor", []core.Record{rec}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryBySessionMemory(b *testing.B) {
	s := New(NewMemoryBackend())
	session := populateStore(b, s, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, total, err := s.Query(&prep.Query{SessionID: session})
		if err != nil || total != 1000 {
			b.Fatalf("total=%d err=%v", total, err)
		}
	}
}

func BenchmarkQueryByInteractionMemory(b *testing.B) {
	s := New(NewMemoryBackend())
	populateStore(b, s, 1000)
	// Grab one interaction id via a full query.
	recs, _, err := s.Query(&prep.Query{Limit: 1})
	if err != nil || len(recs) == 0 {
		b.Fatal(err)
	}
	target := recs[0].InteractionID()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, total, err := s.Query(&prep.Query{InteractionID: target})
		if err != nil || total != 1 {
			b.Fatalf("total=%d err=%v", total, err)
		}
	}
}

func BenchmarkQueryByInteractionKVDB(b *testing.B) {
	kb, err := NewKVBackend(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	s := New(kb)
	defer s.Close()
	populateStore(b, s, 1000)
	recs, _, err := s.Query(&prep.Query{Limit: 1})
	if err != nil || len(recs) == 0 {
		b.Fatal(err)
	}
	target := recs[0].InteractionID()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, total, err := s.Query(&prep.Query{InteractionID: target})
		if err != nil || total != 1 {
			b.Fatalf("total=%d err=%v", total, err)
		}
	}
}
