//go:build !linux

package store

import "os"

// mmapSupported: no memory mapping on this platform; openSegMap reads
// the whole segment onto the heap instead, keeping the cached-handle
// read path (and every test that exercises it) portable.
const mmapSupported = false

// mmapFile is unreachable when mmapSupported is false.
func mmapFile(fh *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, os.ErrInvalid
}
