package store

// Per-segment bloom filters and the store-wide negative filter built
// from them.
//
// The in-memory key directory is exact, so blooms here are not about
// routing a key to the right segment — they are about answering "this
// key does not exist" without touching f.mu at all. Writers hold f.mu
// across segment file I/O, so a point-Get of an absent key (a dangling
// posting, a cross-shard miss, a kvdb-style existence probe) used to
// queue behind every in-flight write; the aggregate filter answers it
// lock-free.
//
// Per-segment filters are the persistence and rebuild unit: one filter
// is built per PSEG1 segment at write/compact time, persisted in a
// <segment>.bloom sidecar for large segments, and rebuilt from the
// parsed segment at open when the sidecar is missing or damaged. A
// crash-truncated segment replays a strict PREFIX of the keys its
// sidecar was built over, so a structurally valid sidecar is always a
// superset of the live keys — trustable as a bloom without per-key
// validation. All widths are powers of two, so segment filters fold
// into the wider aggregate by cyclic word replication.

import (
	"encoding/binary"
	"hash/crc32"
	"math/bits"
	"os"
	"path/filepath"
	"sync/atomic"
)

const (
	// bloomExt names a segment's bloom sidecar: <segment>.seg.bloom.
	bloomExt = ".bloom"
	// bloomMagic heads every sidecar.
	bloomMagic = "PBLM1\n"
	// bloomK is the probe count per key.
	bloomK = 6
	// bloomBitsPerKey sizes filters: ~10 bits/key at k=6 gives a design
	// false-positive rate under 1%.
	bloomBitsPerKey = 10
	// bloomMinBits floors tiny filters so the smallest segments still
	// get a useful width.
	bloomMinBits = 512
	// bloomSidecarMinKeys: segments below this skip the sidecar write —
	// re-hashing a few thousand already-parsed keys at open costs tens
	// of microseconds, while the sidecar's two extra file syscalls per
	// ingest batch measurably cut write throughput (the ingest floor is
	// a CI gate, and profiling put the sidecar at ~7% of PutBatch). The
	// threshold therefore sits above the async shipper's batch sizes;
	// large compacted segments are the sidecar's payoff.
	bloomSidecarMinKeys = 4096
)

// bloomHashes derives the double-hashing pair for key: h1 is FNV-1a,
// h2 an odd splitmix of it, so probe i lands on (h1 + i*h2) & mask — k
// probes from one pass over the key bytes.
func bloomHashes(key string) (h1, h2 uint64) {
	h1 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h1 ^= uint64(key[i])
		h1 *= 1099511628211
	}
	h2 = h1
	h2 ^= h2 >> 30
	h2 *= 0xbf58476d1ce4e5b9
	h2 ^= h2 >> 27
	h2 *= 0x94d049bb133111eb
	h2 ^= h2 >> 31
	return h1, h2 | 1
}

// bloomBitsFor picks the power-of-two bit width for n keys.
func bloomBitsFor(n int) uint64 {
	b := uint64(n) * bloomBitsPerKey
	if b < bloomMinBits {
		b = bloomMinBits
	}
	return nextPow2(b)
}

func nextPow2(x uint64) uint64 {
	if x <= 1 {
		return 1
	}
	return 1 << bits.Len64(x-1)
}

// bloomFilter is a single-writer per-segment filter, built under f.mu
// at segment write/compact time or from a parsed segment at open.
type bloomFilter struct {
	k     uint32
	words []uint64
}

func newBloomFilter(nkeys int) *bloomFilter {
	return &bloomFilter{k: bloomK, words: make([]uint64, bloomBitsFor(nkeys)/64)}
}

func (b *bloomFilter) mask() uint64 { return uint64(len(b.words))*64 - 1 }

func (b *bloomFilter) add(key string) {
	h1, h2 := bloomHashes(key)
	m := b.mask()
	for i := uint64(0); i < uint64(b.k); i++ {
		bit := (h1 + i*h2) & m
		b.words[bit>>6] |= 1 << (bit & 63)
	}
}

func (b *bloomFilter) mayContain(key string) bool {
	h1, h2 := bloomHashes(key)
	m := b.mask()
	for i := uint64(0); i < uint64(b.k); i++ {
		bit := (h1 + i*h2) & m
		if b.words[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// encodeBloomSidecar renders a sidecar: magic, uvarint probe count,
// uvarint word count, uvarint keys-at-build, little-endian words, then
// a big-endian CRC32 (IEEE) over everything after the magic.
func encodeBloomSidecar(b *bloomFilter, nkeys int) []byte {
	buf := []byte(bloomMagic)
	buf = binary.AppendUvarint(buf, uint64(b.k))
	buf = binary.AppendUvarint(buf, uint64(len(b.words)))
	buf = binary.AppendUvarint(buf, uint64(nkeys))
	for _, w := range b.words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf[len(bloomMagic):]))
	return append(buf, crc[:]...)
}

// decodeBloomSidecar parses a sidecar. Any structural damage — bad
// magic, bad CRC, zero or non-power-of-two width, absurd probe count —
// returns ok=false and the caller rebuilds from the parsed segment:
// sidecars are an optimization, never a source of truth.
func decodeBloomSidecar(data []byte) (b *bloomFilter, nkeys int, ok bool) {
	if len(data) < len(bloomMagic)+4 || string(data[:len(bloomMagic)]) != bloomMagic {
		return nil, 0, false
	}
	body := data[len(bloomMagic) : len(data)-4]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[len(data)-4:]) {
		return nil, 0, false
	}
	k, n := binary.Uvarint(body)
	if n <= 0 || k == 0 || k > 32 {
		return nil, 0, false
	}
	body = body[n:]
	wc, n := binary.Uvarint(body)
	if n <= 0 || wc == 0 || wc > 1<<26 || wc&(wc-1) != 0 {
		return nil, 0, false
	}
	body = body[n:]
	nk, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, 0, false
	}
	body = body[n:]
	if uint64(len(body)) != wc*8 {
		return nil, 0, false
	}
	words := make([]uint64, wc)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(body[i*8:])
	}
	return &bloomFilter{k: uint32(k), words: words}, int(nk), true
}

// writeBloomSidecar persists a segment's filter, tmp + rename like the
// segment itself. Best-effort: a missing sidecar only means a rebuild
// at the next open.
func (f *FileBackend) writeBloomSidecar(segName string, b *bloomFilter, nkeys int) {
	path := filepath.Join(f.dir, segName+bloomExt)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, encodeBloomSidecar(b, nkeys), 0o644); err == nil {
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
		}
	}
}

// negFilter is the store-wide negative filter: the lock-free aggregate
// of every live segment filter plus the record-file keys. Point-Gets
// and GetBatch consult it BEFORE f.mu, so absent keys short-circuit
// without queuing behind writers. It may over-approximate (deleted
// keys linger until the next rebuild washes them out); it never
// under-approximates a live key.
type negFilter struct {
	k    uint32
	mask uint64
	// n approximates the keys folded in since the build; past cap the
	// next writer rebuilds, keeping the false-positive rate bounded.
	n     atomic.Int64
	cap   int64
	words []atomic.Uint64
}

func newNegFilter(capKeys int) *negFilter {
	nbits := bloomBitsFor(capKeys)
	return &negFilter{
		k:     bloomK,
		mask:  nbits - 1,
		cap:   int64(nbits / bloomBitsPerKey),
		words: make([]atomic.Uint64, nbits/64),
	}
}

// add folds one key in. Callers hold f.mu (single writer); readers run
// lock-free against the atomic words.
func (nf *negFilter) add(key string) {
	h1, h2 := bloomHashes(key)
	for i := uint64(0); i < uint64(nf.k); i++ {
		bit := (h1 + i*h2) & nf.mask
		nf.words[bit>>6].Or(1 << (bit & 63))
	}
	nf.n.Add(1)
}

func (nf *negFilter) mayContain(key string) bool {
	h1, h2 := bloomHashes(key)
	for i := uint64(0); i < uint64(nf.k); i++ {
		bit := (h1 + i*h2) & nf.mask
		if nf.words[bit>>6].Load()&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// overfull reports whether enough keys were folded in that the
// false-positive rate may have drifted past the design point.
func (nf *negFilter) overfull() bool { return nf.n.Load() > nf.cap }

// orFilter folds a whole segment filter in by cyclic word replication:
// with both widths powers of two and the aggregate at least as wide,
// bit b of the segment filter maps to every aggregate bit congruent to
// b modulo the segment width — exactly the positions any hash landing
// on b can occupy under the wider mask. Returns false (nothing folded)
// when the shapes are incompatible and the caller must rebuild.
func (nf *negFilter) orFilter(b *bloomFilter, nkeys int) bool {
	if b.k != nf.k || len(b.words) > len(nf.words) {
		return false
	}
	bmask := len(b.words) - 1
	for i := range nf.words {
		if w := b.words[i&bmask]; w != 0 {
			nf.words[i].Or(w)
		}
	}
	nf.n.Add(int64(nkeys))
	return true
}
