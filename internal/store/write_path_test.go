package store

// Tests for the concurrent batched write path: packed posting segments
// on the file backend, striped commit locking, and the one-flush-per-
// Record index maintenance.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"preserv/internal/core"
	"preserv/internal/prep"
)

// TestFileBackendPackedPostings verifies the headline file-count fix:
// recording a record must not cost one file pair per index posting
// (~20 pairs before packing). Postings flush through PutBatch, which
// packs the whole call into one segment file.
func TestFileBackendPackedPostings(t *testing.T) {
	dir := t.TempDir()
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(fb)
	session := seq.NewID()
	const n = 10
	recs := make([]core.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, mkInteraction(session, "svc:gzip", fmt.Sprintf("op%d", i)))
	}
	acc, rej, err := s.Record("svc:enactor", recs)
	if err != nil || acc != n || len(rej) != 0 {
		t.Fatalf("Record: acc=%d rej=%v err=%v", acc, rej, err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := 0
	segments := 0
	for _, e := range entries {
		files++
		if strings.HasSuffix(e.Name(), segExt) {
			segments++
		}
		// No posting may own a record-file pair: every .key sidecar must
		// belong to a record or an index marker, never an "x/" posting.
		if strings.HasSuffix(e.Name(), ".key") {
			key, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if strings.HasPrefix(string(key), "x/") {
				t.Errorf("posting %q written as its own file pair", key)
			}
		}
	}
	if segments == 0 {
		t.Fatal("no packed segment file written for the posting batch")
	}
	// Pre-refactor cost was ~20 posting file pairs per record (~40 extra
	// files each). Now: 2 files per record, plus a handful of index
	// marker pairs and one segment per Record call.
	if files >= 3*n {
		t.Errorf("%d files for %d records — posting writes are not packed", files, n)
	}

	// The packed layout must survive a reopen.
	fb2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(fb2)
	_, total, err := s2.Query(&prep.Query{})
	if err != nil || total != n {
		t.Fatalf("after reopen: total=%d err=%v, want %d", total, err, n)
	}
	ix, err := s2.Index()
	if err != nil {
		t.Fatal(err)
	}
	postings, err := ix.Postings("sess", session.String())
	if err != nil || len(postings) != n {
		t.Fatalf("session postings after reopen = %d err=%v, want %d", len(postings), err, n)
	}
}

// TestFileBackendTornSegmentTail verifies recovery: a torn batch write
// keeps the segment's intact prefix and drops only the damaged tail.
func TestFileBackendTornSegmentTail(t *testing.T) {
	dir := t.TempDir()
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fb.PutBatch([]KV{
		{Key: "a", Value: []byte("alpha")},
		{Key: "b", Value: []byte("beta")},
		{Key: "c", Value: []byte("gamma")},
	}); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	var segPath string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), segExt) {
			segPath = filepath.Join(dir, e.Name())
		}
	}
	if segPath == "" {
		t.Fatal("no segment written")
	}
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the last entry's CRC: "c" must be dropped, "a"/"b" kept.
	if err := os.WriteFile(segPath, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	fb2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{"a": "alpha", "b": "beta"} {
		v, ok, err := fb2.Get(key)
		if err != nil || !ok || string(v) != want {
			t.Errorf("Get(%s) after torn tail = %q ok=%v err=%v", key, v, ok, err)
		}
	}
	if _, ok, _ := fb2.Get("c"); ok {
		t.Error("torn entry survived recovery")
	}
}

// TestConcurrentRecordManyWriters drives parallel Record calls at every
// backend and checks nothing is lost, duplicated, or left unindexed.
func TestConcurrentRecordManyWriters(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := New(b)
			const writers = 8
			const perWriter = 5
			var wg sync.WaitGroup
			errs := make([]error, writers)
			session := seq.NewID()
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					recs := make([]core.Record, 0, perWriter)
					for i := 0; i < perWriter; i++ {
						recs = append(recs, mkInteraction(session, "svc:gzip", fmt.Sprintf("w%d-op%d", w, i)))
					}
					acc, rej, err := s.Record("svc:enactor", recs)
					if err != nil {
						errs[w] = err
						return
					}
					if acc != perWriter || len(rej) != 0 {
						errs[w] = fmt.Errorf("writer %d: acc=%d rej=%v", w, acc, rej)
					}
				}(w)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			cnt, err := s.Count()
			if err != nil || cnt.Records != writers*perWriter {
				t.Fatalf("Count = %d err=%v, want %d", cnt.Records, err, writers*perWriter)
			}
			// Every record must be planner-visible: the session posting
			// list has one entry per record.
			ix, err := s.Index()
			if err != nil {
				t.Fatal(err)
			}
			postings, err := ix.Postings("sess", session.String())
			if err != nil || len(postings) != writers*perWriter {
				t.Fatalf("postings = %d err=%v, want %d", len(postings), err, writers*perWriter)
			}
			if s.Generation() == 0 {
				t.Error("generation did not advance")
			}
		})
	}
}

// TestConcurrentIdempotentSameRecord races identical re-records of one
// record: the per-key stripe lock must make every call see either
// "absent" or "identical", never a spurious duplicate conflict.
func TestConcurrentIdempotentSameRecord(t *testing.T) {
	s := New(NewMemoryBackend())
	session := seq.NewID()
	r := mkInteraction(session, "svc:gzip", "compress")
	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			acc, rej, err := s.Record("svc:enactor", []core.Record{r})
			if err != nil {
				errs[c] = err
				return
			}
			if acc != 1 || len(rej) != 0 {
				errs[c] = fmt.Errorf("caller %d: acc=%d rej=%v", c, acc, rej)
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	cnt, err := s.Count()
	if err != nil || cnt.Records != 1 {
		t.Fatalf("Count = %d err=%v, want exactly 1", cnt.Records, err)
	}
}

// TestRejectOrderPreserved checks that rejects come back in submission
// order even though validation rejects and commit-time conflicts are
// discovered in different phases.
func TestRejectOrderPreserved(t *testing.T) {
	s := New(NewMemoryBackend())
	session := seq.NewID()
	dup := mkInteraction(session, "svc:gzip", "compress")
	if _, _, err := s.Record("svc:enactor", []core.Record{dup}); err != nil {
		t.Fatal(err)
	}
	// Same key, different content → commit-time conflict at index 0;
	// invalid record → validation reject at index 1.
	conflict := dup
	clone := *dup.Interaction
	clone.Request = core.Message{Name: "invoke", Parts: []core.MessagePart{{Name: "other"}}}
	conflict.Interaction = &clone
	var invalid core.Record
	acc, rej, err := s.Record("svc:enactor", []core.Record{conflict, invalid})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0 || len(rej) != 2 {
		t.Fatalf("acc=%d rej=%v, want 0 accepted and 2 rejects", acc, rej)
	}
	if rej[0].Index != 0 || rej[1].Index != 1 {
		t.Fatalf("reject order = [%d %d], want [0 1]", rej[0].Index, rej[1].Index)
	}
	if !strings.Contains(rej[0].Reason, "duplicate") {
		t.Errorf("reject 0 = %q, want duplicate conflict", rej[0].Reason)
	}
}

// TestIdempotentReRecordAcrossCodecChange pre-seeds a backend with a
// record in the legacy gob storage format: re-recording the same record
// must land on the idempotent path, not a duplicate conflict.
func TestIdempotentReRecordAcrossCodecChange(t *testing.T) {
	b := NewMemoryBackend()
	session := seq.NewID()
	r := mkInteraction(session, "svc:gzip", "compress")
	legacy, err := core.EncodeRecordLegacy(&r)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put(r.StorageKey(), legacy); err != nil {
		t.Fatal(err)
	}
	s := New(b)
	acc, rej, err := s.Record("svc:enactor", []core.Record{r})
	if err != nil || acc != 1 || len(rej) != 0 {
		t.Fatalf("re-record over legacy blob: acc=%d rej=%v err=%v", acc, rej, err)
	}
	cnt, err := s.Count()
	if err != nil || cnt.Records != 1 {
		t.Fatalf("Count = %d err=%v, want 1", cnt.Records, err)
	}
	// A genuinely different record under the same key still conflicts.
	r2 := r
	clone := *r.Interaction
	clone.Request = core.Message{Name: "invoke", Parts: []core.MessagePart{{Name: "other"}}}
	r2.Interaction = &clone
	acc, rej, err = s.Record("svc:enactor", []core.Record{r2})
	if err != nil || acc != 0 || len(rej) != 1 {
		t.Fatalf("conflicting record over legacy blob: acc=%d rej=%v err=%v", acc, rej, err)
	}
}

// TestFileBackendCorruptSegmentLengths guards the torn-write parser: a
// corrupted length varint (huge values, overflow bait) must make the
// entry parse as torn, never panic the open.
func TestFileBackendCorruptSegmentLengths(t *testing.T) {
	dir := t.TempDir()
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fb.PutBatch([]KV{{Key: "good", Value: []byte("v")}}); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	var segPath string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), segExt) {
			segPath = filepath.Join(dir, e.Name())
		}
	}
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// Append a forged entry whose keyLen varint decodes to ~2^63.
	forged := append(append([]byte(nil), data...),
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, // keyLen
		0x01,     // valLen
		'k', 'v') // far too short for the declared lengths
	if err := os.WriteFile(segPath, forged, 0o644); err != nil {
		t.Fatal(err)
	}
	fb2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatalf("open paniced or failed on corrupt lengths: %v", err)
	}
	if v, ok, err := fb2.Get("good"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("intact prefix entry lost: %q ok=%v err=%v", v, ok, err)
	}
}

// TestFileBackendCrossLayoutOverwrite pins the mixed Put/PutBatch
// story: identical re-puts across layouts are accepted and survive a
// reopen with the same value, differing overwrites are rejected (the
// two layouts have no durable ordering a reopen could arbitrate).
func TestFileBackendCrossLayoutOverwrite(t *testing.T) {
	dir := t.TempDir()
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fb.PutBatch([]KV{{Key: "seg", Value: []byte("v1")}}); err != nil {
		t.Fatal(err)
	}
	if err := fb.Put("rec", []byte("w1")); err != nil {
		t.Fatal(err)
	}
	// Differing cross-layout overwrites: rejected, value unchanged.
	if err := fb.Put("seg", []byte("CHANGED")); err == nil {
		t.Fatal("differing Put over segment-stored key accepted")
	}
	if err := fb.PutBatch([]KV{{Key: "rec", Value: []byte("CHANGED")}}); err == nil {
		t.Fatal("differing batch over file-stored key accepted")
	}
	// Identical cross-layout re-puts: accepted. (The batch re-put
	// migrates "rec" into a segment; from there on, later segments give
	// a durable last-write-wins order, so this stays consistent.)
	if err := fb.Put("seg", []byte("v1")); err != nil {
		t.Fatalf("identical Put over segment key rejected: %v", err)
	}
	if err := fb.PutBatch([]KV{{Key: "rec", Value: []byte("w1")}}); err != nil {
		t.Fatalf("identical batch over record key rejected: %v", err)
	}
	fb2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{"seg": "v1", "rec": "w1"} {
		v, ok, err := fb2.Get(key)
		if err != nil || !ok || string(v) != want {
			t.Errorf("after reopen Get(%s) = %q ok=%v err=%v, want %q", key, v, ok, err, want)
		}
	}
}
