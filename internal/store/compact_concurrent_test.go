package store

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestCompactDuringConcurrentWrites hammers the incremental compactors
// with writes and deletes racing repeated Compact calls, then checks
// the surviving state — live, and again after a reopen — against a
// deterministic model. Each writer owns a disjoint key range, so the
// final state does not depend on interleaving; what the test pins is
// that no concurrent write is lost to the swap and no compaction
// resurrects a deleted key.
func TestCompactDuringConcurrentWrites(t *testing.T) {
	open := map[string]func(t *testing.T, dir string) Backend{
		"file": func(t *testing.T, dir string) Backend {
			b, err := NewFileBackend(dir)
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
		"kvdb": func(t *testing.T, dir string) Backend {
			b, err := NewKVBackend(dir)
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
	}
	for name, openFn := range open {
		name, openFn := name, openFn
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			b := openFn(t, dir)

			const writers = 4
			const perWriter = 200
			// Seed some garbage so the first Compact has work.
			for i := 0; i < 50; i++ {
				if err := b.Put(fmt.Sprintf("seed/%03d", i), []byte(fmt.Sprintf("s%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 25; i++ {
				if err := b.Delete(fmt.Sprintf("seed/%03d", i)); err != nil {
					t.Fatal(err)
				}
			}

			errCh := make(chan error, writers+1)
			done := make(chan struct{})
			var cwg sync.WaitGroup
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				for {
					if err := b.(interface{ Compact() error }).Compact(); err != nil {
						errCh <- fmt.Errorf("compact: %w", err)
						return
					}
					select {
					case <-done:
						return
					default:
					}
				}
			}()
			var wwg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wwg.Add(1)
				go func(w int) {
					defer wwg.Done()
					for i := 0; i < perWriter; i++ {
						key := fmt.Sprintf("w%d/%04d", w, i)
						if err := b.Put(key, []byte(fmt.Sprintf("v%d-%d", w, i))); err != nil {
							errCh <- fmt.Errorf("put %s: %w", key, err)
							return
						}
						// Delete every third of this writer's own keys a
						// little behind the write frontier, so deletions
						// race the compactor's snapshot window too.
						if i >= 3 && i%3 == 0 {
							dk := fmt.Sprintf("w%d/%04d", w, i-3)
							if err := b.Delete(dk); err != nil {
								errCh <- fmt.Errorf("delete %s: %w", dk, err)
								return
							}
						}
					}
				}(w)
			}
			wwg.Wait()
			close(done)
			cwg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}

			// One final compaction on the quiescent store.
			if err := b.(interface{ Compact() error }).Compact(); err != nil {
				t.Fatal(err)
			}

			model := make(map[string]string)
			for i := 25; i < 50; i++ {
				model[fmt.Sprintf("seed/%03d", i)] = fmt.Sprintf("s%d", i)
			}
			for w := 0; w < writers; w++ {
				for i := 0; i < perWriter; i++ {
					if i%3 == 0 && i+3 <= perWriter-1 {
						continue // deleted by its writer three steps later
					}
					model[fmt.Sprintf("w%d/%04d", w, i)] = fmt.Sprintf("v%d-%d", w, i)
				}
			}

			check := func(stage string, b Backend) {
				got := make(map[string]string)
				if err := b.Scan("", func(k string, v []byte) error {
					got[k] = string(v)
					return nil
				}); err != nil {
					t.Fatalf("%s scan: %v", stage, err)
				}
				if !reflect.DeepEqual(got, model) {
					t.Fatalf("%s: %d keys survive, want %d (state diverged)", stage, len(got), len(model))
				}
			}
			check("live", b)
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			b2 := openFn(t, dir)
			defer b2.Close()
			check("reopened", b2)
		})
	}
}
