package store

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
)

var seq = &ids.SeqSource{Prefix: 0xDD}

// backends returns one fresh instance of every backend flavour.
func backends(t *testing.T) map[string]Backend {
	t.Helper()
	fb, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	kb, err := NewKVBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]Backend{
		"memory": NewMemoryBackend(),
		"file":   fb,
		"kvdb":   kb,
	}
	t.Cleanup(func() {
		for _, b := range m {
			b.Close()
		}
	})
	return m
}

func mkInteraction(session ids.ID, receiver core.ActorID, op string) core.Record {
	in := core.Interaction{ID: seq.NewID(), Sender: "svc:enactor", Receiver: receiver, Operation: op}
	return *core.NewInteractionRecord(&core.InteractionPAssertion{
		LocalID:     "exchange",
		Asserter:    in.Sender,
		Interaction: in,
		View:        core.SenderView,
		Request:     core.Message{Name: "invoke", Parts: []core.MessagePart{{Name: "in", DataID: seq.NewID()}}},
		Response:    core.Message{Name: "result", Parts: []core.MessagePart{{Name: "out", DataID: seq.NewID()}}},
		Groups:      []core.GroupRef{{Type: core.GroupSession, ID: session, Seq: 1}},
		Timestamp:   time.Unix(1117584000, 0),
	})
}

func mkScript(inter core.Interaction, session ids.ID, script string) core.Record {
	return *core.NewActorStateRecord(&core.ActorStatePAssertion{
		LocalID:     "script",
		Asserter:    inter.Receiver,
		Interaction: inter,
		View:        core.ReceiverView,
		StateKind:   core.StateScript,
		Content:     core.Bytes(script),
		Groups:      []core.GroupRef{{Type: core.GroupSession, ID: session, Seq: 1}},
		Timestamp:   time.Unix(1117584001, 0),
	})
}

func TestBackendPutGetScanCount(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := b.Put("i/x/1", []byte("one")); err != nil {
				t.Fatal(err)
			}
			if err := b.Put("i/x/2", []byte("two")); err != nil {
				t.Fatal(err)
			}
			if err := b.Put("s/x/1", []byte("state")); err != nil {
				t.Fatal(err)
			}
			v, ok, err := b.Get("i/x/1")
			if err != nil || !ok || string(v) != "one" {
				t.Fatalf("Get = %q %v %v", v, ok, err)
			}
			if _, ok, _ := b.Get("i/missing"); ok {
				t.Error("absent key reported present")
			}
			var seen []string
			if err := b.Scan("i/", func(k string, v []byte) error {
				seen = append(seen, k)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(seen) != 2 || seen[0] != "i/x/1" || seen[1] != "i/x/2" {
				t.Errorf("Scan order = %v", seen)
			}
			n, err := b.Count("s/")
			if err != nil || n != 1 {
				t.Errorf("Count(s/) = %d %v", n, err)
			}
			if err := b.Put("", []byte("v")); err == nil && name != "kvdb" {
				t.Error("empty key should be rejected")
			}
		})
	}
}

func TestStoreRecordAndQueryAllBackends(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := New(b)
			session := seq.NewID()
			r1 := mkInteraction(session, "svc:gzip", "compress")
			r2 := mkInteraction(session, "svc:ppmz", "compress")
			scr := mkScript(r1.Interaction.Interaction, session, "#!/bin/sh gzip")

			acc, rej, err := s.Record("svc:enactor", []core.Record{r1, r2})
			if err != nil {
				t.Fatal(err)
			}
			if acc != 2 || len(rej) != 0 {
				t.Fatalf("accepted %d, rejects %v", acc, rej)
			}
			acc, rej, err = s.Record("svc:gzip", []core.Record{scr})
			if err != nil {
				t.Fatal(err)
			}
			if acc != 1 || len(rej) != 0 {
				t.Fatalf("script record: %d %v", acc, rej)
			}

			recs, total, err := s.Query(&prep.Query{SessionID: session})
			if err != nil {
				t.Fatal(err)
			}
			if total != 3 || len(recs) != 3 {
				t.Fatalf("session query: %d/%d records", len(recs), total)
			}

			recs, total, err = s.Query(&prep.Query{InteractionID: r1.InteractionID()})
			if err != nil {
				t.Fatal(err)
			}
			if total != 2 {
				t.Fatalf("interaction query total = %d, want 2 (exchange + script)", total)
			}
			for _, r := range recs {
				if r.InteractionID() != r1.InteractionID() {
					t.Error("interaction query leaked other interactions")
				}
			}

			recs, _, err = s.Query(&prep.Query{Kind: "actorState", StateKind: core.StateScript})
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 1 || string(recs[0].ActorState.Content) != "#!/bin/sh gzip" {
				t.Fatalf("script query: %+v", recs)
			}

			cnt, err := s.Count()
			if err != nil {
				t.Fatal(err)
			}
			if cnt.Interactions != 2 || cnt.ActorStates != 1 || cnt.Records != 3 {
				t.Fatalf("Count = %+v", cnt)
			}
		})
	}
}

func TestStoreRejectsInvalidAndForged(t *testing.T) {
	s := New(NewMemoryBackend())
	session := seq.NewID()
	good := mkInteraction(session, "svc:gzip", "compress")
	invalid := good
	invalid.Interaction = nil // kind says interaction but payload missing

	acc, rej, err := s.Record("svc:enactor", []core.Record{good, invalid})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 || len(rej) != 1 || rej[0].Index != 1 {
		t.Fatalf("acc=%d rej=%v", acc, rej)
	}

	// Forgery: submitting a record asserted by someone else.
	other := mkInteraction(session, "svc:gzip", "compress")
	acc, rej, err = s.Record("svc:impostor", []core.Record{other})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0 || len(rej) != 1 || !strings.Contains(rej[0].Reason, "submitted by") {
		t.Fatalf("forged record not rejected: acc=%d rej=%v", acc, rej)
	}
}

func TestStoreIdempotentReRecord(t *testing.T) {
	s := New(NewMemoryBackend())
	session := seq.NewID()
	r := mkInteraction(session, "svc:gzip", "compress")
	for i := 0; i < 2; i++ {
		acc, rej, err := s.Record("svc:enactor", []core.Record{r})
		if err != nil || acc != 1 || len(rej) != 0 {
			t.Fatalf("attempt %d: acc=%d rej=%v err=%v", i, acc, rej, err)
		}
	}
	cnt, _ := s.Count()
	if cnt.Records != 1 {
		t.Fatalf("Records = %d after idempotent re-record, want 1", cnt.Records)
	}
	// Same key, different content: conflict.
	r2 := r
	clone := *r.Interaction
	clone.Request = core.Message{Name: "invoke", Parts: []core.MessagePart{{Name: "other"}}}
	r2.Interaction = &clone
	acc, rej, err := s.Record("svc:enactor", []core.Record{r2})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0 || len(rej) != 1 || !strings.Contains(rej[0].Reason, "duplicate") {
		t.Fatalf("conflicting duplicate accepted: acc=%d rej=%v", acc, rej)
	}
}

func TestStoreQueryLimit(t *testing.T) {
	s := New(NewMemoryBackend())
	session := seq.NewID()
	var recs []core.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, mkInteraction(session, "svc:gzip", fmt.Sprintf("op%d", i)))
	}
	if _, _, err := s.Record("svc:enactor", recs); err != nil {
		t.Fatal(err)
	}
	got, total, err := s.Query(&prep.Query{SessionID: session, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || total != 10 {
		t.Fatalf("limit query: %d returned, %d total", len(got), total)
	}
}

func TestStoreQueryInvalid(t *testing.T) {
	s := New(NewMemoryBackend())
	if _, _, err := s.Query(&prep.Query{Kind: "weird"}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestStoreEmptyAsserter(t *testing.T) {
	s := New(NewMemoryBackend())
	if _, _, err := s.Record("", nil); err == nil {
		t.Error("empty asserter accepted")
	}
}

func TestFileBackendPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(fb)
	session := seq.NewID()
	r := mkInteraction(session, "svc:gzip", "compress")
	if _, _, err := s.Record("svc:enactor", []core.Record{r}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	fb2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(fb2)
	defer s2.Close()
	recs, total, err := s2.Query(&prep.Query{SessionID: session})
	if err != nil {
		t.Fatal(err)
	}
	if total != 1 || recs[0].StorageKey() != r.StorageKey() {
		t.Fatalf("reopened store lost record: total=%d", total)
	}
}

func TestKVBackendPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	kb, err := NewKVBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(kb)
	session := seq.NewID()
	r := mkInteraction(session, "svc:ppmz", "compress")
	if _, _, err := s.Record("svc:enactor", []core.Record{r}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	kb2, err := NewKVBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(kb2)
	defer s2.Close()
	cnt, err := s2.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Interactions != 1 {
		t.Fatalf("reopened kvdb store: %+v", cnt)
	}
}

func TestBackendNames(t *testing.T) {
	for want, b := range backends(t) {
		if b.Name() != want {
			t.Errorf("backend Name() = %q, want %q", b.Name(), want)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 5; i++ {
				b.Put(fmt.Sprintf("i/k%d", i), []byte{byte(i)})
			}
			count := 0
			stop := fmt.Errorf("stop")
			err := b.Scan("i/", func(string, []byte) error {
				count++
				if count == 2 {
					return stop
				}
				return nil
			})
			if err != stop || count != 2 {
				t.Errorf("early stop: err=%v count=%d", err, count)
			}
		})
	}
}

func TestStoreLinearScanCost(t *testing.T) {
	// Document the complexity property Figure 5 relies on: full-store
	// queries touch every record (linear), interaction queries do not.
	s := New(NewMemoryBackend())
	session := seq.NewID()
	var recs []core.Record
	for i := 0; i < 200; i++ {
		recs = append(recs, mkInteraction(session, "svc:gzip", "op"))
	}
	if _, _, err := s.Record("svc:enactor", recs); err != nil {
		t.Fatal(err)
	}
	_, total, err := s.Query(&prep.Query{})
	if err != nil || total != 200 {
		t.Fatalf("full scan total = %d err=%v", total, err)
	}
	_, total, err = s.Query(&prep.Query{InteractionID: recs[42].InteractionID()})
	if err != nil || total != 1 {
		t.Fatalf("interaction-scoped total = %d err=%v", total, err)
	}
}
