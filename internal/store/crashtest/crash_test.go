package crashtest

// Crash-recovery tests: the kvdb log and the file backend's PSEG1
// segments are truncated (and corrupted) at EVERY byte boundary inside
// an interrupted PutBatch / DeleteBatch tail, then reopened. Recovery
// must always produce a clean prefix of the batch — and at the store
// level, an index whose planner answers match a full scan byte for
// byte.

import (
	"fmt"
	"os"
	"testing"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/kv"
	"preserv/internal/kvdb"
	"preserv/internal/store"
)

// TestKvdbTornPutBatchEveryByte interrupts a PutBatch at every byte of
// its log tail: recovery keeps the committed base intact and a strict
// prefix of the batch, monotonically growing with the cut point.
func TestKvdbTornPutBatchEveryByte(t *testing.T) {
	src := t.TempDir()
	db, err := kvdb.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	base := []kv.Pair{{Key: "i/base/1", Value: []byte("b1")}, {Key: "i/base/2", Value: []byte("b2")}}
	if err := db.PutBatch(base); err != nil {
		t.Fatal(err)
	}
	baseSize := db.LogBytes()
	var batch []kv.Pair
	var batchKeys []string
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("i/torn/%d", i)
		batch = append(batch, kv.Pair{Key: k, Value: []byte(fmt.Sprintf("value-%d", i))})
		batchKeys = append(batchKeys, k)
	}
	if err := db.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	fullSize := db.LogBytes()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	lastK := 0
	for cut := baseSize; cut <= fullSize; cut++ {
		dir := copyDir(t, src)
		logPath, _ := findOne(t, dir, ".log", false)
		truncateFile(t, logPath, cut)
		re, err := kvdb.Open(dir)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		for _, p := range base {
			if !re.Has(p.Key) {
				t.Fatalf("cut %d: committed base key %q lost", cut, p.Key)
			}
		}
		got := make(map[string]bool)
		for _, k := range re.Keys("i/torn/") {
			got[k] = true
		}
		k := prefixOf(t, got, batchKeys, fmt.Sprintf("cut %d", cut))
		if len(got) != k {
			t.Fatalf("cut %d: recovered %d torn keys but prefix is %d", cut, len(got), k)
		}
		if k < lastK {
			t.Fatalf("cut %d: prefix shrank from %d to %d as the cut grew", cut, lastK, k)
		}
		lastK = k
		re.Close()
	}
	if lastK != len(batchKeys) {
		t.Fatalf("full log recovered only %d/%d batch keys", lastK, len(batchKeys))
	}
}

// TestKvdbTornDeleteBatchEveryByte interrupts a DeleteBatch the same
// way: the applied deletions always form a strict prefix of the batch.
func TestKvdbTornDeleteBatchEveryByte(t *testing.T) {
	src := t.TempDir()
	db, err := kvdb.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	var all []string
	for i := 0; i < 6; i++ {
		k := fmt.Sprintf("i/del/%d", i)
		all = append(all, k)
		if err := db.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	baseSize := db.LogBytes()
	doomed := all[:4]
	if err := db.DeleteBatch(doomed); err != nil {
		t.Fatal(err)
	}
	fullSize := db.LogBytes()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	lastJ := 0
	for cut := baseSize; cut <= fullSize; cut++ {
		dir := copyDir(t, src)
		logPath, _ := findOne(t, dir, ".log", false)
		truncateFile(t, logPath, cut)
		re, err := kvdb.Open(dir)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		// Deletions apply in slice order: the missing keys must be
		// doomed[:j] for some j.
		j := 0
		for j < len(doomed) && !re.Has(doomed[j]) {
			j++
		}
		for i := j; i < len(doomed); i++ {
			if !re.Has(doomed[i]) {
				t.Fatalf("cut %d: deletion of %q applied without earlier %q", cut, doomed[i], doomed[j])
			}
		}
		for _, k := range all[4:] {
			if !re.Has(k) {
				t.Fatalf("cut %d: undeleted key %q lost", cut, k)
			}
		}
		if j < lastJ {
			t.Fatalf("cut %d: deletion prefix shrank from %d to %d", cut, lastJ, j)
		}
		lastJ = j
		re.Close()
	}
	if lastJ != len(doomed) {
		t.Fatalf("full log applied only %d/%d deletions", lastJ, len(doomed))
	}
}

// TestKvdbCorruptedLogRecoversPrefix flips a byte at every offset of
// the log: Open must never fail or panic, and must recover a prefix of
// the put sequence (CRCs catch the flip; everything after it is
// discarded).
func TestKvdbCorruptedLogRecoversPrefix(t *testing.T) {
	src := t.TempDir()
	db, err := kvdb.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("i/corrupt/%d", i)
		keys = append(keys, k)
		if err := db.Put(k, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	size := db.LogBytes()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	for off := int64(0); off < size; off++ {
		dir := copyDir(t, src)
		logPath, _ := findOne(t, dir, ".log", false)
		data, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatal(err)
		}
		data[off] ^= 0xFF
		if err := os.WriteFile(logPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := kvdb.Open(dir)
		if err != nil {
			t.Fatalf("offset %d: reopen after corruption: %v", off, err)
		}
		got := make(map[string]bool)
		for _, k := range re.Keys("") {
			got[k] = true
		}
		// A flipped length field can alias a later record's framing, but
		// the CRC guarantees at least: recovered keys of OUR sequence
		// form a prefix (corrupting record i discards i and everything
		// after it).
		prefixOf(t, got, keys, fmt.Sprintf("offset %d", off))
		re.Close()
	}
}

// TestFileTornSegmentEveryByte truncates a packed PSEG1 segment at
// every byte: open recovers a clean prefix of the batch and never
// fails.
func TestFileTornSegmentEveryByte(t *testing.T) {
	src := t.TempDir()
	fb, err := store.NewFileBackend(src)
	if err != nil {
		t.Fatal(err)
	}
	var batch []kv.Pair
	var batchKeys []string
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("i/seg/%d", i)
		batch = append(batch, kv.Pair{Key: k, Value: []byte(fmt.Sprintf("value-%d", i))})
		batchKeys = append(batchKeys, k)
	}
	if err := fb.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	_, segSize := findOne(t, src, ".seg", true)

	lastK := 0
	for cut := int64(0); cut <= segSize; cut++ {
		dir := copyDir(t, src)
		segPath, _ := findOne(t, dir, ".seg", true)
		truncateFile(t, segPath, cut)
		re, err := store.NewFileBackend(dir)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		got := backendKeys(t, re)
		k := prefixOf(t, got, batchKeys, fmt.Sprintf("cut %d", cut))
		if len(got) != k {
			t.Fatalf("cut %d: recovered %d keys but prefix is %d", cut, len(got), k)
		}
		if k < lastK {
			t.Fatalf("cut %d: prefix shrank from %d to %d", cut, lastK, k)
		}
		lastK = k
	}
	if lastK != len(batchKeys) {
		t.Fatalf("whole segment recovered only %d/%d keys", lastK, len(batchKeys))
	}
}

// TestFileTornTombstoneSegmentEveryByte truncates the tombstone segment
// a DeleteBatch writes: the applied deletions form a prefix of the
// batch, and the committed base keys are never harmed.
func TestFileTornTombstoneSegmentEveryByte(t *testing.T) {
	src := t.TempDir()
	fb, err := store.NewFileBackend(src)
	if err != nil {
		t.Fatal(err)
	}
	var all []string
	var batch []kv.Pair
	for i := 0; i < 6; i++ {
		k := fmt.Sprintf("i/ts/%d", i)
		all = append(all, k)
		batch = append(batch, kv.Pair{Key: k, Value: []byte("v")})
	}
	if err := fb.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	doomed := all[:4]
	if err := fb.DeleteBatch(doomed); err != nil {
		t.Fatal(err)
	}
	// The tombstone segment is the newest.
	_, tombSize := findOne(t, src, ".seg", true)

	for cut := int64(0); cut <= tombSize; cut++ {
		dir := copyDir(t, src)
		segPath, _ := findOne(t, dir, ".seg", true)
		truncateFile(t, segPath, cut)
		re, err := store.NewFileBackend(dir)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		got := backendKeys(t, re)
		j := 0
		for j < len(doomed) && !got[doomed[j]] {
			j++
		}
		for i := j; i < len(doomed); i++ {
			if !got[doomed[i]] {
				t.Fatalf("cut %d: deletion of %q applied without earlier %q", cut, doomed[i], doomed[j])
			}
		}
		for _, k := range all[4:] {
			if !got[k] {
				t.Fatalf("cut %d: undeleted key %q lost", cut, k)
			}
		}
	}
}

// storeFlavours are the persistent store configurations the end-to-end
// crash tests run over.
func storeFlavours() []struct {
	name string
	open func(t *testing.T, dir string) store.Backend
	tail func(t *testing.T, dir string) (string, int64) // crash-prone tail file
} {
	return []struct {
		name string
		open func(t *testing.T, dir string) store.Backend
		tail func(t *testing.T, dir string) (string, int64)
	}{
		{
			name: "kvdb",
			open: func(t *testing.T, dir string) store.Backend {
				b, err := store.NewKVBackend(dir)
				if err != nil {
					t.Fatal(err)
				}
				return b
			},
			tail: func(t *testing.T, dir string) (string, int64) { return findOne(t, dir, ".log", false) },
		},
		{
			name: "file",
			open: func(t *testing.T, dir string) store.Backend {
				b, err := store.NewFileBackend(dir)
				if err != nil {
					t.Fatal(err)
				}
				return b
			},
			tail: func(t *testing.T, dir string) (string, int64) { return findOne(t, dir, ".seg", true) },
		},
		// The file backend with segment mmapping forced off: crash
		// recovery must be byte-identical on the portable ReadFile path
		// (the -mmap=off escape hatch and the non-linux build).
		{
			name: "file-nommap",
			open: func(t *testing.T, dir string) store.Backend {
				prev := store.SetMmapEnabled(false)
				t.Cleanup(func() { store.SetMmapEnabled(prev) })
				b, err := store.NewFileBackend(dir)
				if err != nil {
					t.Fatal(err)
				}
				return b
			},
			tail: func(t *testing.T, dir string) (string, int64) { return findOne(t, dir, ".seg", true) },
		},
	}
}

// TestStoreCrashRecoveryPlannerEqualsScan is the end-to-end property:
// populate a store, keep writing and deleting, crash by truncating the
// backend's newest crash-prone file at every byte boundary of the tail
// region, reopen, force the index through its consistency check, and
// require planner results byte-identical to a scan — whatever prefix of
// the interrupted work survived.
func TestStoreCrashRecoveryPlannerEqualsScan(t *testing.T) {
	for _, fl := range storeFlavours() {
		t.Run(fl.name, func(t *testing.T) {
			src := t.TempDir()
			b := fl.open(t, src)
			s := store.New(b)
			var sessions []ids.ID
			for i := 0; i < 3; i++ {
				sid := seq.NewID()
				sessions = append(sessions, sid)
				var recs []core.Record
				for a := 0; a < 3; a++ {
					recs = append(recs, mkInteraction(sid, core.ActorID(fmt.Sprintf("svc:stage-%d", a)), a))
				}
				if _, _, err := s.Record("svc:enactor", recs); err != nil {
					t.Fatal(err)
				}
			}
			// The interrupted work: delete a whole session (records +
			// postings), then record one more batch — both land in the
			// backend's tail.
			tailPath, tailStart := fl.tail(t, src)
			_ = tailPath
			if _, err := s.DeleteSession(sessions[0]); err != nil {
				t.Fatal(err)
			}
			extra := seq.NewID()
			sessions = append(sessions, extra)
			var recs []core.Record
			for a := 0; a < 2; a++ {
				recs = append(recs, mkInteraction(extra, "svc:tail", a))
			}
			if _, _, err := s.Record("svc:enactor", recs); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			// For kvdb the tail region is [tailStart, end) of the one log
			// file; for the file backend truncate the NEWEST segment over
			// its whole length (older files are already-committed state).
			cuts := func(dir string) (string, int64, int64) {
				path, size := fl.tail(t, dir)
				if fl.name == "kvdb" {
					return path, tailStart, size
				}
				return path, 0, size
			}
			_, lo, hi := cuts(src)
			step := int64(1)
			if hi-lo > 512 {
				// Every byte boundary of a long tail would run minutes;
				// sample densely instead, always including both ends.
				step = (hi - lo) / 512
			}
			for cut := lo; cut <= hi; cut += step {
				dir := copyDir(t, src)
				path, _, _ := cuts(dir)
				truncateFile(t, path, cut)
				rb := fl.open(t, dir)
				rs := store.New(rb)
				if _, err := rs.Index(); err != nil {
					t.Fatalf("cut %d: index open: %v", cut, err)
				}
				assertPlannerEqualsScan(t, rs, sessions, fmt.Sprintf("cut %d", cut))
				if err := rs.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
