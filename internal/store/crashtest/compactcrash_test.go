package crashtest

// Compaction and journal-rotation crash tests: the incremental
// compactors publish their merged output (rename) and only then retire
// the inputs, and the async recorder seals its journal (rename) before
// shipping it — so a crash inside either window must leave a state
// recovery reads back exactly. These tests reconstruct the mid-window
// states byte by byte and require full equivalence (compaction) or
// clean-prefix recovery (rotation).

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"preserv/internal/client"
	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
	"preserv/internal/preserv"
	"preserv/internal/store"
)

type compacter interface{ Compact() error }

// contentsOf snapshots a backend's live keys and values.
func contentsOf(t *testing.T, b store.Backend) map[string]string {
	t.Helper()
	out := make(map[string]string)
	if err := b.Scan("", func(k string, v []byte) error {
		out[k] = string(v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// filesWithSuffix lists the names in dir carrying suffix.
func filesWithSuffix(t *testing.T, dir, suffix string) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == suffix {
			out[e.Name()] = true
		}
	}
	return out
}

// populateAndClose records three sessions (one batch each, so the file
// backend lays down several segments), deletes the first session to
// create garbage and tombstones, and closes the store. Returns the
// sessions for the query sweep.
func populateAndClose(t *testing.T, b store.Backend) []ids.ID {
	t.Helper()
	s := store.New(b)
	var sessions []ids.ID
	for i := 0; i < 3; i++ {
		sid := seq.NewID()
		sessions = append(sessions, sid)
		var recs []core.Record
		for a := 0; a < 3; a++ {
			recs = append(recs, mkInteraction(sid, core.ActorID(fmt.Sprintf("svc:stage-%d", a)), a))
		}
		if _, _, err := s.Record("svc:enactor", recs); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.DeleteSession(sessions[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return sessions
}

// TestCompactCrashMidSwap reconstructs the incremental compactor's
// publication window. For the file backend the window is real on disk:
// the merged segment has been renamed into place but the victim
// segments have not yet been unlinked — and the merged segment itself
// may be torn to any byte if the rename raced a dirty page loss. Every
// such state must read back EXACTLY the compacted contents (the victims
// still hold whatever the torn merge lost). For kvdb the window is a
// leftover compact.tmp next to the intact old log (crash before the
// atomic rename), torn at any byte; Open must discard it and keep the
// full pre-compaction state, and the post-rename state must equal it.
func TestCompactCrashMidSwap(t *testing.T) {
	for _, fl := range storeFlavours() {
		t.Run(fl.name, func(t *testing.T) {
			src := t.TempDir()
			sessions := populateAndClose(t, fl.open(t, src))
			pre := copyDir(t, src)

			b := fl.open(t, src)
			if err := b.(compacter).Compact(); err != nil {
				t.Fatal(err)
			}
			want := contentsOf(t, b)
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatal("compacted store is empty — population failed")
			}

			// The crash artifact: the file the swap published. For the
			// file backends it is the merged segment (present after
			// compaction, absent before); for kvdb the rewritten log.
			var artifactName string
			switch fl.name {
			case "kvdb":
				artifactName = "data.log"
			default:
				preSegs := filesWithSuffix(t, pre, ".seg")
				var added []string
				for name := range filesWithSuffix(t, src, ".seg") {
					if !preSegs[name] {
						added = append(added, name)
					}
				}
				if len(added) != 1 {
					t.Fatalf("compaction added %d segments %v, want exactly the merged one", len(added), added)
				}
				artifactName = added[0]
			}
			artifact, err := os.ReadFile(filepath.Join(src, artifactName))
			if err != nil {
				t.Fatal(err)
			}

			check := func(dir, label string) {
				rb := fl.open(t, dir)
				if got := contentsOf(t, rb); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: %d keys survive, want %d (state diverged)", label, len(got), len(want))
				}
				rs := store.New(rb)
				if _, err := rs.Index(); err != nil {
					t.Fatalf("%s: index open: %v", label, err)
				}
				assertPlannerEqualsScan(t, rs, sessions, label)
				if err := rs.Close(); err != nil {
					t.Fatal(err)
				}
			}

			hi := int64(len(artifact))
			step := int64(1)
			if hi > 128 {
				step = hi / 128
			}
			for cut := int64(0); ; cut += step {
				if cut > hi {
					cut = hi
				}
				dir := copyDir(t, pre)
				name := artifactName
				if fl.name == "kvdb" {
					// Crash BEFORE the rename: the torn rewrite is still
					// under its temporary name, the old log untouched.
					name = "compact.tmp"
				}
				if err := os.WriteFile(filepath.Join(dir, name), artifact[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				check(dir, fmt.Sprintf("cut %d/%d", cut, hi))
				if cut == hi {
					break
				}
			}
			if fl.name == "kvdb" {
				// Crash AFTER the rename: the synced rewrite replaced the
				// log whole; nothing of the old state remains to reconcile.
				dir := copyDir(t, pre)
				if err := os.WriteFile(filepath.Join(dir, "data.log"), artifact, 0o644); err != nil {
					t.Fatal(err)
				}
				check(dir, "post-rename")
			}
		})
	}
}

// TestJournalRotationCrashEveryByte tears a sealed async-recorder
// journal at every sampled byte: a fresh recorder must adopt the sealed
// file, count a clean prefix of the recorded sequence, and ship exactly
// that prefix — monotonically growing with the cut, complete at full
// size, and never a record out of order.
func TestJournalRotationCrashEveryByte(t *testing.T) {
	const n = 6
	src := t.TempDir()
	// Record n interactions and seal the journal without shipping —
	// the recorder needs a client at construction, but this endpoint is
	// never contacted before the rotation.
	seedStore := store.New(store.NewMemoryBackend())
	seedSrv, err := preserv.Serve(preserv.NewService(seedStore), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer seedSrv.Close()
	r, err := client.NewAsyncRecorder("svc:enactor", filepath.Join(src, "journal.gob"), 0, preserv.NewClient(seedSrv.URL, nil))
	if err != nil {
		t.Fatal(err)
	}
	session := seq.NewID()
	var wantKeys []string
	for i := 0; i < n; i++ {
		rec := mkInteraction(session, "svc:gzip", i)
		wantKeys = append(wantKeys, rec.StorageKey())
		if err := r.Record(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Rotate(); err != nil {
		t.Fatal(err)
	}
	sealedName := "journal.gob.000001.sealed"
	sealed, err := os.ReadFile(filepath.Join(src, sealedName))
	if err != nil {
		t.Fatalf("sealed journal missing after Rotate: %v", err)
	}
	// Abandon the recorder without Close (Close would ship and remove
	// the journals); the raw bytes are what the crash states replay.

	hi := int64(len(sealed))
	step := int64(1)
	if hi > 128 {
		step = hi / 128
	}
	lastK := 0
	for cut := int64(0); ; cut += step {
		if cut > hi {
			cut = hi
		}
		label := fmt.Sprintf("cut %d/%d", cut, hi)
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, sealedName), sealed[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s := store.New(store.NewMemoryBackend())
		srv, err := preserv.Serve(preserv.NewService(s), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		re, err := client.NewAsyncRecorder("svc:enactor", filepath.Join(dir, "journal.gob"), 0, preserv.NewClient(srv.URL, nil))
		if err != nil {
			t.Fatalf("%s: adopting recorder: %v", label, err)
		}
		adopted := int(re.Pending())
		if err := re.Flush(); err != nil {
			t.Fatalf("%s: flush of adopted prefix: %v", label, err)
		}
		shipped, _, err := s.Query(&prep.Query{})
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[string]bool)
		for i := range shipped {
			got[shipped[i].StorageKey()] = true
		}
		k := prefixOf(t, got, wantKeys, label)
		if len(got) != k {
			t.Fatalf("%s: shipped %d records but prefix is %d", label, len(got), k)
		}
		if k != adopted {
			t.Fatalf("%s: adopted %d pending but shipped %d", label, adopted, k)
		}
		if k < lastK {
			t.Fatalf("%s: prefix shrank from %d to %d as the cut grew", label, lastK, k)
		}
		lastK = k
		if err := re.Close(); err != nil {
			t.Fatalf("%s: close: %v", label, err)
		}
		srv.Close()
		if cut == hi {
			break
		}
	}
	if lastK != n {
		t.Fatalf("full sealed journal recovered only %d/%d records", lastK, n)
	}
}
