package crashtest

// Randomized lifecycle property test: a random interleaving of
// Record / DeleteRecord / DeleteSession / Query / Compact runs against
// all three backends, concurrently, with a plain-map oracle tracking
// the records that must exist. At every quiesce point the three views —
// cost-based planner, scan path, oracle — must agree byte for byte.
// CI runs this under -race; the concurrent phase is where the striped
// commit locks, the batched tombstone writes and the online compaction
// earn their keep.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
	"preserv/internal/query"
	"preserv/internal/store"
)

// oracle is the plain-map model: storage key -> canonical encoding.
type oracle struct {
	mu   sync.Mutex
	recs map[string]core.Record
}

func newOracle() *oracle { return &oracle{recs: make(map[string]core.Record)} }

func (o *oracle) record(recs []core.Record) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, r := range recs {
		o.recs[r.StorageKey()] = r
	}
}

func (o *oracle) delete(key string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.recs, key)
}

func (o *oracle) deleteSession(sid ids.ID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for k, r := range o.recs {
		if g, ok := r.GroupID(core.GroupSession); ok && g == sid {
			delete(o.recs, k)
		}
	}
}

// expect computes the query's reference answer: Matches-filtered
// records in storage-key order, Total before Limit.
func (o *oracle) expect(q *prep.Query) ([]core.Record, int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	keys := make([]string, 0, len(o.recs))
	for k, r := range o.recs {
		if q.Matches(&r) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	total := len(keys)
	if q.Limit > 0 && len(keys) > q.Limit {
		keys = keys[:q.Limit]
	}
	out := make([]core.Record, 0, len(keys))
	for _, k := range keys {
		out = append(out, o.recs[k])
	}
	return out, total
}

// worker owns a disjoint slice of the key space: its own sessions, its
// own recorded keys. Disjointness is what makes the oracle's final
// state deterministic under concurrency — workers' operations commute.
type worker struct {
	id       int
	rng      *rand.Rand
	sessions []ids.ID
	keys     []string // storage keys this worker has recorded and not deleted
}

func (w *worker) newSession() ids.ID {
	sid := seq.NewID()
	w.sessions = append(w.sessions, sid)
	return sid
}

func (w *worker) pickSession() ids.ID {
	return w.sessions[w.rng.Intn(len(w.sessions))]
}

func TestRandomizedLifecycleAllBackends(t *testing.T) {
	flavours := []struct {
		name string
		open func(t *testing.T) store.Backend
	}{
		{"memory", func(t *testing.T) store.Backend { return store.NewMemoryBackend() }},
		{"file", func(t *testing.T) store.Backend {
			b, err := store.NewFileBackend(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		{"kvdb", func(t *testing.T) store.Backend {
			b, err := store.NewKVBackend(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { b.Close() })
			return b
		}},
	}
	const (
		workers      = 4
		rounds       = 5
		opsPerWorker = 10
	)
	for _, fl := range flavours {
		t.Run(fl.name, func(t *testing.T) {
			s := store.New(fl.open(t))
			o := newOracle()
			ws := make([]*worker, workers)
			for i := range ws {
				ws[i] = &worker{id: i, rng: rand.New(rand.NewSource(int64(1000 + i)))}
				ws[i].sessions = []ids.ID{seq.NewID()}
			}

			for round := 0; round < rounds; round++ {
				var wg sync.WaitGroup
				errs := make(chan error, workers+1)
				for _, w := range ws {
					wg.Add(1)
					go func(w *worker) {
						defer wg.Done()
						for op := 0; op < opsPerWorker; op++ {
							if err := w.step(s, o); err != nil {
								errs <- fmt.Errorf("worker %d: %w", w.id, err)
								return
							}
						}
					}(w)
				}
				// One concurrent reader hammers the planner while the
				// writers mutate: results cannot be oracle-checked
				// mid-flight, but they must never error and never
				// contain a record the oracle never knew.
				wg.Add(1)
				go func() {
					defer wg.Done()
					e := query.New(s)
					for i := 0; i < opsPerWorker; i++ {
						if _, _, _, err := e.Query(&prep.Query{Asserter: "svc:enactor"}); err != nil {
							errs <- fmt.Errorf("concurrent reader: %w", err)
							return
						}
					}
				}()
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
				quiesceCheck(t, s, o, ws, fmt.Sprintf("round %d", round))
			}

			// Final compaction must not change any answer.
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
			quiesceCheck(t, s, o, ws, "after final compaction")
		})
	}
}

// step applies one random operation: mostly records, a healthy share of
// deletions, the occasional whole-session retraction, compaction or
// read.
func (w *worker) step(s *store.Store, o *oracle) error {
	switch p := w.rng.Intn(10); {
	case p < 4: // record a small batch into one of our sessions
		sid := w.pickSession()
		if w.rng.Intn(4) == 0 {
			sid = w.newSession()
		}
		n := 1 + w.rng.Intn(3)
		recs := make([]core.Record, 0, n)
		for i := 0; i < n; i++ {
			recs = append(recs, mkInteraction(sid, core.ActorID(fmt.Sprintf("svc:stage-%d", w.rng.Intn(3))), i))
		}
		acc, rejects, err := s.Record("svc:enactor", recs)
		if err != nil {
			return err
		}
		if acc != n || len(rejects) != 0 {
			return fmt.Errorf("record accepted %d/%d, rejects %v", acc, n, rejects)
		}
		o.record(recs)
		for _, r := range recs {
			w.keys = append(w.keys, r.StorageKey())
		}
	case p < 7: // delete one of our records
		if len(w.keys) == 0 {
			return nil
		}
		i := w.rng.Intn(len(w.keys))
		key := w.keys[i]
		w.keys = append(w.keys[:i], w.keys[i+1:]...)
		ok, err := s.DeleteRecord(key)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("delete of recorded key %s found nothing", key)
		}
		o.delete(key)
	case p < 8: // retract one of our sessions wholesale
		if len(w.sessions) < 2 {
			return nil
		}
		i := w.rng.Intn(len(w.sessions))
		sid := w.sessions[i]
		w.sessions = append(w.sessions[:i], w.sessions[i+1:]...)
		if _, err := s.DeleteSession(sid); err != nil {
			return err
		}
		o.deleteSession(sid)
		// Drop our bookkeeping for that session's keys.
		kept := w.keys[:0]
		o.mu.Lock()
		for _, k := range w.keys {
			if _, alive := o.recs[k]; alive {
				kept = append(kept, k)
			}
		}
		o.mu.Unlock()
		w.keys = kept
	case p < 9: // compact online, concurrently with everything else
		if err := s.Compact(); err != nil {
			return err
		}
	default: // read one of our sessions through the store scan path
		if _, _, err := s.Query(&prep.Query{SessionID: w.pickSession()}); err != nil {
			return err
		}
	}
	return nil
}

// quiesceCheck asserts, with all writers joined, that planner == scan
// == oracle for a sweep of predicates at the current generation.
func quiesceCheck(t *testing.T, s *store.Store, o *oracle, ws []*worker, label string) {
	t.Helper()
	var sessions []ids.ID
	for _, w := range ws {
		sessions = append(sessions, w.sessions...)
	}
	e := query.New(s)
	for qi, q := range standardQueries(sessions) {
		wantRecs, wantTotal := o.expect(q)
		scanRecs, scanTotal, err := s.Query(q)
		if err != nil {
			t.Fatalf("%s: scan query %d: %v", label, qi, err)
		}
		compareToOracle(t, wantRecs, wantTotal, scanRecs, scanTotal, label, qi, "scan")
		planRecs, planTotal, _, err := e.Query(q)
		if err != nil {
			t.Fatalf("%s: planned query %d: %v", label, qi, err)
		}
		compareToOracle(t, wantRecs, wantTotal, planRecs, planTotal, label, qi, "planner")
	}
}

func compareToOracle(t *testing.T, want []core.Record, wantTotal int, got []core.Record, gotTotal int, label string, qi int, path string) {
	t.Helper()
	if gotTotal != wantTotal || len(got) != len(want) {
		t.Fatalf("%s: query %d: %s %d/%d vs oracle %d/%d",
			label, qi, path, len(got), gotTotal, len(want), wantTotal)
	}
	for i := range want {
		w := want[i]
		wb, err := core.EncodeRecord(&w)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := core.EncodeRecord(&got[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb, gb) {
			t.Fatalf("%s: query %d: %s record %d (%s) differs from oracle (%s)",
				label, qi, path, i, got[i].StorageKey(), w.StorageKey())
		}
	}
}
