package crashtest

// Shared machinery: record builders, directory snapshot/restore,
// truncation helpers, and the planner-vs-scan-vs-oracle equivalence
// assertions every crash and property test ends in.

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
	"preserv/internal/query"
	"preserv/internal/store"
)

var seq = &ids.SeqSource{Prefix: 0xC4}

// mkInteraction builds one interaction record in session, asserted by
// the enactor, with fresh data ids.
func mkInteraction(session ids.ID, service core.ActorID, n int) core.Record {
	in := core.Interaction{ID: seq.NewID(), Sender: "svc:enactor", Receiver: service, Operation: "run"}
	return *core.NewInteractionRecord(&core.InteractionPAssertion{
		LocalID:     "e",
		Asserter:    "svc:enactor",
		Interaction: in,
		View:        core.SenderView,
		Request:     core.Message{Name: "invoke", Parts: []core.MessagePart{{Name: "in", DataID: seq.NewID()}}},
		Response:    core.Message{Name: "result", Parts: []core.MessagePart{{Name: "out", DataID: seq.NewID()}}},
		Groups:      []core.GroupRef{{Type: core.GroupSession, ID: session, Seq: uint64(n + 1)}},
		Timestamp:   time.Date(2026, 7, 1, 9, 0, n, 0, time.UTC),
	})
}

// copyDir clones src into a fresh temp directory (one level deep — the
// shape both persistent backends use).
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			t.Fatalf("unexpected subdirectory %s", e.Name())
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// findOne returns the unique file in dir with the given suffix and its
// size; newest (lexically last) wins when several match and latest is
// set.
func findOne(t *testing.T, dir, suffix string, latest bool) (string, int64) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), suffix) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatalf("no %s file in %s", suffix, dir)
	}
	sort.Strings(names)
	name := names[0]
	if latest {
		name = names[len(names)-1]
	}
	path := filepath.Join(dir, name)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, info.Size()
}

func truncateFile(t *testing.T, path string, n int64) {
	t.Helper()
	if err := os.Truncate(path, n); err != nil {
		t.Fatal(err)
	}
}

// prefixOf asserts that got (a set) equals want[:k] for some k and
// returns k; order in want is the batch's slice order.
func prefixOf(t *testing.T, got map[string]bool, want []string, label string) int {
	t.Helper()
	k := 0
	for k < len(want) && got[want[k]] {
		k++
	}
	for i := k; i < len(want); i++ {
		if got[want[i]] {
			t.Fatalf("%s: recovered %q without earlier %q — not a clean prefix", label, want[i], want[k])
		}
	}
	return k
}

// standardQueries derives the predicate set the equivalence assertions
// sweep: everything, each session, an asserter, each kind, and a
// limited query (Total semantics).
func standardQueries(sessions []ids.ID) []*prep.Query {
	qs := []*prep.Query{
		{},
		{Asserter: "svc:enactor"},
		{Kind: core.KindInteraction.String()},
		{Kind: core.KindActorState.String()},
		{Limit: 3},
	}
	for _, s := range sessions {
		qs = append(qs, &prep.Query{SessionID: s}, &prep.Query{SessionID: s, Limit: 2})
	}
	return qs
}

// assertPlannerEqualsScan runs every query through the cost-based
// planner and the scan path and requires byte-identical results. A
// fresh engine per call keeps the result cache out of the comparison.
func assertPlannerEqualsScan(t *testing.T, s *store.Store, sessions []ids.ID, label string) {
	t.Helper()
	e := query.New(s)
	for qi, q := range standardQueries(sessions) {
		want, wantTotal, err := s.Query(q)
		if err != nil {
			t.Fatalf("%s: scan query %d: %v", label, qi, err)
		}
		got, gotTotal, _, err := e.Query(q)
		if err != nil {
			t.Fatalf("%s: planned query %d: %v", label, qi, err)
		}
		compareRecords(t, want, wantTotal, got, gotTotal, label, qi)
	}
}

// compareRecords requires two result sets to agree record-for-record,
// byte-for-byte (canonical encoding), and on Total.
func compareRecords(t *testing.T, want []core.Record, wantTotal int, got []core.Record, gotTotal int, label string, qi int) {
	t.Helper()
	if gotTotal != wantTotal || len(got) != len(want) {
		t.Fatalf("%s: query %d: planner %d/%d vs scan %d/%d", label, qi, len(got), gotTotal, len(want), wantTotal)
	}
	for i := range want {
		wb, err := core.EncodeRecord(&want[i])
		if err != nil {
			t.Fatal(err)
		}
		gb, err := core.EncodeRecord(&got[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb, gb) {
			t.Fatalf("%s: query %d: record %d differs: %s vs %s",
				label, qi, i, got[i].StorageKey(), want[i].StorageKey())
		}
	}
}

// backendKeys snapshots every live key of a backend into a set.
func backendKeys(t *testing.T, b store.Backend) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	if err := b.Scan("", func(k string, _ []byte) error {
		out[k] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}
