// Package crashtest is the cross-backend crash/fuzz/property harness
// for the provenance store's write, delete and compaction paths. Its
// tests simulate crashes by truncating or corrupting the kvdb log tail
// and the file backend's packed PSEG1 segments at every byte boundary
// mid-PutBatch / mid-DeleteBatch, reopen the store, and assert that
//
//   - the backend recovers to a clean prefix of the interrupted batch
//     (never a hole, never a half-applied record), and
//   - the secondary index's Open-time consistency check plus rebuild
//     bring planner query results back byte-identical to a full scan.
//
// It also drives a randomized lifecycle property test: a random
// interleaving of Record / Delete / Query / Compact against all three
// backends, concurrently, checked against a plain-map oracle at every
// quiesce point (run under -race in CI).
//
// The package contains no production code; it exists so the crash
// machinery has a home that future storage work extends.
package crashtest
