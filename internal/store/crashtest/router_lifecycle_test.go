package crashtest

// Randomized lifecycle property test for the sharded topology: the same
// random Record / DeleteRecord / DeleteSession / Query / Compact
// interleaving as TestRandomizedLifecycleAllBackends, but run through a
// shard.Router over three children of each backend flavour — and with a
// whole-shard Drain racing one round's traffic. At every quiesce point
// the sharded planner, the sharded scan path and the plain-map oracle
// must agree byte for byte; the drained shard must end empty with
// nothing lost or duplicated.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
	"preserv/internal/shard"
	"preserv/internal/store"
)

// routerWorker mirrors worker but drives a Router.
type routerWorker struct {
	id       int
	rng      *rand.Rand
	sessions []ids.ID
	keys     []string
}

func (w *routerWorker) newSession() ids.ID {
	sid := seq.NewID()
	w.sessions = append(w.sessions, sid)
	return sid
}

func (w *routerWorker) pickSession() ids.ID {
	return w.sessions[w.rng.Intn(len(w.sessions))]
}

func (w *routerWorker) step(rt *shard.Router, o *oracle) error {
	switch p := w.rng.Intn(10); {
	case p < 4: // record a small batch into one of our sessions
		sid := w.pickSession()
		if w.rng.Intn(4) == 0 {
			sid = w.newSession()
		}
		n := 1 + w.rng.Intn(3)
		recs := make([]core.Record, 0, n)
		for i := 0; i < n; i++ {
			recs = append(recs, mkInteraction(sid, core.ActorID(fmt.Sprintf("svc:stage-%d", w.rng.Intn(3))), i))
		}
		acc, rejects, err := rt.Record("svc:enactor", recs)
		if err != nil {
			return err
		}
		if acc != n || len(rejects) != 0 {
			return fmt.Errorf("record accepted %d/%d, rejects %v", acc, n, rejects)
		}
		o.record(recs)
		for _, r := range recs {
			w.keys = append(w.keys, r.StorageKey())
		}
	case p < 7: // delete one of our records (fans out across shards)
		if len(w.keys) == 0 {
			return nil
		}
		i := w.rng.Intn(len(w.keys))
		key := w.keys[i]
		w.keys = append(w.keys[:i], w.keys[i+1:]...)
		ok, err := rt.DeleteRecord(key)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("delete of recorded key %s found nothing", key)
		}
		o.delete(key)
	case p < 8: // retract one of our sessions wholesale
		if len(w.sessions) < 2 {
			return nil
		}
		i := w.rng.Intn(len(w.sessions))
		sid := w.sessions[i]
		w.sessions = append(w.sessions[:i], w.sessions[i+1:]...)
		if _, err := rt.DeleteSession(sid); err != nil {
			return err
		}
		o.deleteSession(sid)
		kept := w.keys[:0]
		o.mu.Lock()
		for _, k := range w.keys {
			if _, alive := o.recs[k]; alive {
				kept = append(kept, k)
			}
		}
		o.mu.Unlock()
		w.keys = kept
	case p < 9: // compact every shard, concurrently with everything else
		if err := rt.Compact(); err != nil {
			return err
		}
	default: // read one of our sessions through the sharded scan path
		if _, _, err := rt.Query(&prep.Query{SessionID: w.pickSession()}); err != nil {
			return err
		}
	}
	return nil
}

func TestRouterRandomizedLifecycleAllBackends(t *testing.T) {
	flavours := []struct {
		name string
		open func(t *testing.T) store.Backend
	}{
		{"memory", func(t *testing.T) store.Backend { return store.NewMemoryBackend() }},
		{"file", func(t *testing.T) store.Backend {
			b, err := store.NewFileBackend(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		{"kvdb", func(t *testing.T) store.Backend {
			b, err := store.NewKVBackend(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { b.Close() })
			return b
		}},
	}
	const (
		shards       = 3
		workers      = 4
		rounds       = 4
		opsPerWorker = 10
		drainRound   = 2 // Drain(1) races this round's traffic
	)
	for _, fl := range flavours {
		t.Run(fl.name, func(t *testing.T) {
			children := make([]shard.Shard, shards)
			for i := range children {
				children[i] = shard.NewLocal(store.New(fl.open(t)))
			}
			rt, err := shard.NewRouter(children...)
			if err != nil {
				t.Fatal(err)
			}
			o := newOracle()
			ws := make([]*routerWorker, workers)
			for i := range ws {
				ws[i] = &routerWorker{id: i, rng: rand.New(rand.NewSource(int64(7000 + i)))}
				ws[i].sessions = []ids.ID{seq.NewID()}
			}

			for round := 0; round < rounds; round++ {
				var wg sync.WaitGroup
				errs := make(chan error, workers+1)
				for _, w := range ws {
					wg.Add(1)
					go func(w *routerWorker) {
						defer wg.Done()
						for op := 0; op < opsPerWorker; op++ {
							if err := w.step(rt, o); err != nil {
								errs <- fmt.Errorf("worker %d: %w", w.id, err)
								return
							}
						}
					}(w)
				}
				if round == drainRound {
					// The rebalance races live records, deletes and
					// queries; copy-before-delete must keep every answer
					// whole throughout.
					wg.Add(1)
					go func() {
						defer wg.Done()
						if _, err := rt.Drain(1); err != nil {
							errs <- fmt.Errorf("concurrent drain: %w", err)
						}
					}()
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
				routerQuiesceCheck(t, rt, o, ws, fmt.Sprintf("round %d", round))
			}

			// After the drained round, shard 1 must be empty and stay so.
			cnt, err := rt.Shard(1).Count()
			if err != nil {
				t.Fatal(err)
			}
			if cnt.Records != 0 {
				t.Fatalf("drained shard holds %d records at quiesce", cnt.Records)
			}

			// Final compaction fan-out must not change any answer.
			if err := rt.Compact(); err != nil {
				t.Fatal(err)
			}
			routerQuiesceCheck(t, rt, o, ws, "after final compaction")
		})
	}
}

// routerQuiesceCheck asserts, with all writers joined, that the sharded
// planner == sharded scan == oracle for the standard predicate sweep.
func routerQuiesceCheck(t *testing.T, rt *shard.Router, o *oracle, ws []*routerWorker, label string) {
	t.Helper()
	var sessions []ids.ID
	for _, w := range ws {
		sessions = append(sessions, w.sessions...)
	}
	for qi, q := range standardQueries(sessions) {
		wantRecs, wantTotal := o.expect(q)
		scanRecs, scanTotal, err := rt.Query(q)
		if err != nil {
			t.Fatalf("%s: sharded scan query %d: %v", label, qi, err)
		}
		compareToOracle(t, wantRecs, wantTotal, scanRecs, scanTotal, label, qi, "sharded-scan")
		planRecs, planTotal, _, err := rt.QueryPlanned(q)
		if err != nil {
			t.Fatalf("%s: sharded planned query %d: %v", label, qi, err)
		}
		compareToOracle(t, wantRecs, wantTotal, planRecs, planTotal, label, qi, "sharded-planner")
	}
}
