package crashtest

// Drain/paging race harness: concurrent multi-page QueryPage walks —
// with the client's stale-cursor restart protocol — race whole-shard
// drains (including one that crashes mid-page and leaves a twinned
// overlap) over three children of every backend flavour. Every
// completed walk must deliver exactly the committed key set, in order,
// no misses and no dupes; Limit-ed Totals must stay exact throughout,
// across the in-flight drains AND across the crashed drain's overlap;
// and a pre-drain cursor must come back as shard.ErrStaleCursor, never
// a silently short page. Run under -race in CI.

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"preserv/internal/core"
	"preserv/internal/prep"
	"preserv/internal/shard"
	"preserv/internal/store"
)

// crashOnceShard fails its first DeleteRecords call — the drain then
// aborts between copying a page to the survivors and deleting it from
// the source, the exact overlap a mid-drain crash leaves.
type crashOnceShard struct {
	shard.Shard
	mu       sync.Mutex
	failures int
}

func (c *crashOnceShard) DeleteRecords(keys []string) (int, error) {
	c.mu.Lock()
	fail := c.failures > 0
	if fail {
		c.failures--
	}
	c.mu.Unlock()
	if fail {
		return 0, fmt.Errorf("injected mid-drain crash")
	}
	return c.Shard.DeleteRecords(keys)
}

// pagedWalk walks the whole result set page by page, restarting from
// the last delivered key whenever a drain retires its cursor — the
// same protocol Client.QueryStream speaks. It returns the delivered
// storage keys in order.
func pagedWalk(rt *shard.Router, pageSize int) ([]string, error) {
	var keys []string
	after := ""
	lastKey := ""
	retried := false
	for steps := 0; ; steps++ {
		if steps > 2000 {
			return nil, fmt.Errorf("paged walk did not terminate")
		}
		recs, next, done, _, err := rt.QueryPage(&prep.Query{}, after, pageSize)
		if err != nil {
			if errors.Is(err, shard.ErrStaleCursor) && !retried {
				retried = true
				after = lastKey
				continue
			}
			return nil, err
		}
		for i := range recs {
			lastKey = recs[i].StorageKey()
			keys = append(keys, lastKey)
			retried = false
		}
		if done || next == "" {
			return keys, nil
		}
		after = next
	}
}

func assertWalkExact(committed, got []string, label string) error {
	if len(got) != len(committed) {
		return fmt.Errorf("%s: walked %d keys, want %d", label, len(got), len(committed))
	}
	for i := range committed {
		if got[i] != committed[i] {
			return fmt.Errorf("%s: key %d is %s, want %s", label, i, got[i], committed[i])
		}
	}
	return nil
}

func TestRouterDrainVsPagedWalksAllBackends(t *testing.T) {
	flavours := []struct {
		name string
		open func(t *testing.T) store.Backend
	}{
		{"memory", func(t *testing.T) store.Backend { return store.NewMemoryBackend() }},
		{"file", func(t *testing.T) store.Backend {
			b, err := store.NewFileBackend(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		{"kvdb", func(t *testing.T) store.Backend {
			b, err := store.NewKVBackend(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { b.Close() })
			return b
		}},
	}
	const (
		shards     = 3
		sessions   = 12
		perSession = 5
		walkers    = 3
	)
	for _, fl := range flavours {
		t.Run(fl.name, func(t *testing.T) {
			children := make([]shard.Shard, shards)
			for i := range children {
				children[i] = shard.NewLocal(store.New(fl.open(t)))
			}
			// Shard 1's first drained page crashes between copy and
			// delete.
			crash := &crashOnceShard{Shard: children[1], failures: 1}
			children[1] = crash
			rt, err := shard.NewRouter(children...)
			if err != nil {
				t.Fatal(err)
			}
			// Small drain pages: each drain takes several fenced page
			// moves — the window the walks race.
			rt.SetDrainPageSize(4)

			// Commit a fixed record set up front; the walks assert
			// against it, so no concurrent writes in this harness.
			var committed []string
			for s := 0; s < sessions; s++ {
				sid := seq.NewID()
				recs := make([]core.Record, 0, perSession)
				for j := 0; j < perSession; j++ {
					recs = append(recs, mkInteraction(sid, core.ActorID(fmt.Sprintf("svc:stage-%d", j%3)), j))
				}
				acc, rejects, err := rt.Record("svc:enactor", recs)
				if err != nil || acc != perSession || len(rejects) != 0 {
					t.Fatalf("seeding session %d: acc=%d rejects=%v err=%v", s, acc, rejects, err)
				}
				for _, r := range recs {
					committed = append(committed, r.StorageKey())
				}
			}
			sort.Strings(committed)
			if cnt, err := rt.Shard(1).Count(); err != nil || cnt.Records == 0 {
				t.Fatalf("workload left shard 1 empty (records=%d err=%v)", cnt.Records, err)
			}

			// Walkers page the full set over and over, with randomized
			// page sizes, restarting on stale cursors; a totals checker
			// pins exact Limit-ed Totals concurrently. Both run across
			// the crashed drain, the recovery re-drain, and a second
			// drain.
			stop := make(chan struct{})
			errs := make(chan error, walkers+2)
			var wg sync.WaitGroup
			for w := 0; w < walkers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(9100 + w)))
					for walk := 0; ; walk++ {
						select {
						case <-stop:
							return
						default:
						}
						pageSize := 3 + rng.Intn(7)
						got, err := pagedWalk(rt, pageSize)
						if err != nil {
							errs <- fmt.Errorf("walker %d walk %d: %w", w, walk, err)
							return
						}
						if err := assertWalkExact(committed, got, fmt.Sprintf("walker %d walk %d (page %d)", w, walk, pageSize)); err != nil {
							errs <- err
							return
						}
					}
				}(w)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, lim := range []int{0, 1, 7} {
						_, total, err := rt.Query(&prep.Query{Limit: lim})
						if err != nil {
							errs <- fmt.Errorf("totals checker: %w", err)
							return
						}
						if total != len(committed) {
							errs <- fmt.Errorf("totals checker: Limit %d Total %d, want exact %d", lim, total, len(committed))
							return
						}
					}
				}
			}()

			// The drain lifecycle, racing everything above: a crashing
			// drain of shard 1 (leaves overlap), the recovery re-drain,
			// then a drain of shard 2 down to a single survivor.
			if _, err := rt.Drain(1); err == nil {
				t.Error("crashing drain of shard 1 reported success")
			}
			if !rt.OverlapSuspected() {
				t.Error("crashed drain did not raise overlap suspicion")
			}
			if _, err := rt.Drain(1); err != nil {
				t.Errorf("recovery re-drain: %v", err)
			}
			if _, err := rt.Drain(2); err != nil {
				t.Errorf("drain of shard 2: %v", err)
			}
			close(stop)
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Quiesced: drained shards empty, suspicion cleared, one
			// final walk and Limit-ed Total exact against the committed
			// set.
			for _, i := range []int{1, 2} {
				if cnt, _ := rt.Shard(i).Count(); cnt.Records != 0 {
					t.Fatalf("drained shard %d still holds %d records", i, cnt.Records)
				}
			}
			if rt.OverlapSuspected() {
				t.Fatal("overlap suspicion survived successful drains")
			}
			got, err := pagedWalk(rt, 7)
			if err != nil {
				t.Fatal(err)
			}
			if err := assertWalkExact(committed, got, "final walk"); err != nil {
				t.Fatal(err)
			}
			if _, total, err := rt.Query(&prep.Query{Limit: 5}); err != nil || total != len(committed) {
				t.Fatalf("final limited Total %d (err=%v), want %d", total, err, len(committed))
			}
		})
	}
}
