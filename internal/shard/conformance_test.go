package shard

// Cross-backend conformance for the sharded topology: whatever backend
// flavour the children run on, the Router's answers must be exactly a
// single store's answers over the union of the shards — planner, scan
// and paged paths alike — and a drain (including one resumed over a
// simulated crash's copy/delete overlap) must preserve the record set
// bit for bit.

import (
	"fmt"
	"testing"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
	"preserv/internal/store"
)

// shardFlavour opens one child backend of the given flavour.
type shardFlavour struct {
	name string
	open func(t *testing.T) store.Backend
}

func shardFlavours() []shardFlavour {
	return []shardFlavour{
		{"memory", func(t *testing.T) store.Backend { return store.NewMemoryBackend() }},
		{"file", func(t *testing.T) store.Backend {
			b, err := store.NewFileBackend(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		{"kvdb", func(t *testing.T) store.Backend {
			b, err := store.NewKVBackend(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { b.Close() })
			return b
		}},
	}
}

// flavourRouter builds a router over n children of one backend flavour,
// returning the router and the child stores (for rebuilding a router
// over the same data — the crash-restart path).
func flavourRouter(t *testing.T, fl shardFlavour, n int) (*Router, []*store.Store) {
	t.Helper()
	children := make([]Shard, n)
	stores := make([]*store.Store, n)
	for i := range children {
		stores[i] = store.New(fl.open(t))
		children[i] = NewLocal(stores[i])
	}
	rt, err := NewRouter(children...)
	if err != nil {
		t.Fatal(err)
	}
	return rt, stores
}

// unionReference replays every record the router holds into one fresh
// memory store — the oracle a sharded answer must match byte for byte.
func unionReference(t *testing.T, rt *Router) *store.Store {
	t.Helper()
	ref := store.New(store.NewMemoryBackend())
	for i := 0; i < rt.NumShards(); i++ {
		recs, _, err := rt.Shard(i).Query(&prep.Query{})
		if err != nil {
			t.Fatal(err)
		}
		byAsserter := make(map[core.ActorID][]core.Record)
		for _, r := range recs {
			byAsserter[r.Asserter()] = append(byAsserter[r.Asserter()], r)
		}
		for asserter, rs := range byAsserter {
			if acc, rejects, err := ref.Record(asserter, rs); err != nil || len(rejects) > 0 || acc != len(rs) {
				t.Fatalf("reference ingest: accepted %d/%d, rejects %v, err %v", acc, len(rs), rejects, err)
			}
		}
	}
	return ref
}

// conformanceQueries sweeps the predicate space: everything, sessions,
// kinds, asserter, limits.
func conformanceQueries(sessions []ids.ID) []*prep.Query {
	qs := []*prep.Query{
		{},
		{Asserter: "svc:enactor"},
		{Kind: core.KindInteraction.String()},
		{Kind: core.KindActorState.String()},
		{Limit: 3},
		{Service: "svc:stage-1"},
	}
	for _, s := range sessions {
		qs = append(qs, &prep.Query{SessionID: s}, &prep.Query{SessionID: s, Limit: 2})
	}
	return qs
}

// assertRouterEqualsUnion requires the router's planned, scanned and
// paged answers to equal the union store's scan answers.
func assertRouterEqualsUnion(t *testing.T, rt *Router, ref *store.Store, sessions []ids.ID, label string) {
	t.Helper()
	assertRouterEqualsUnionOpts(t, rt, ref, sessions, label, true)
}

// assertRouterEqualsUnionOpts is assertRouterEqualsUnion with control
// over Total checking on limited queries. The router's exact Limit-ed
// Totals rely on its overlap-suspicion flag, which only drains the
// router itself ran can raise — the overlap phase here builds the
// twinning EXTERNALLY (manual cross-shard copies the router never
// observed, the fresh-router-over-crashed-state case DESIGN.md
// documents as requiring an operator re-drain), so a Limit can hide
// twins beyond its fetched window and the summed Total legitimately
// over-counts; that phase checks limited queries record-for-record
// only. Router-observed crashed drains yield exact Limit-ed Totals,
// pinned by TestCrashedDrainOverlapExactLimitedTotal and the
// crashtest drain/paging harness.
func assertRouterEqualsUnionOpts(t *testing.T, rt *Router, ref *store.Store, sessions []ids.ID, label string, exactLimitedTotals bool) {
	t.Helper()
	for qi, q := range conformanceQueries(sessions) {
		want, wantTotal, err := ref.Query(q)
		if err != nil {
			t.Fatalf("%s: union scan %d: %v", label, qi, err)
		}
		got, gotTotal, err := rt.Query(q)
		if err != nil {
			t.Fatalf("%s: sharded scan %d: %v", label, qi, err)
		}
		pgot, ptotal, _, err := rt.QueryPlanned(q)
		if err != nil {
			t.Fatalf("%s: sharded planner %d: %v", label, qi, err)
		}
		if q.Limit > 0 && !exactLimitedTotals {
			if gotTotal < wantTotal || ptotal < wantTotal {
				t.Fatalf("%s: query %d: limited totals undercount: scan %d planner %d, want >= %d",
					label, qi, gotTotal, ptotal, wantTotal)
			}
			gotTotal, ptotal = wantTotal, wantTotal
		}
		assertSameRecords(t, want, wantTotal, got, gotTotal, label, qi, "sharded-scan")
		assertSameRecords(t, want, wantTotal, pgot, ptotal, label, qi, "sharded-planner")

		// Paged walk (Limit-free queries only: pages ignore Limit).
		if q.Limit != 0 {
			continue
		}
		var paged []core.Record
		after := ""
		for steps := 0; ; steps++ {
			if steps > 100 {
				t.Fatalf("%s: query %d: paging did not terminate", label, qi)
			}
			recs, next, done, _, err := rt.QueryPage(q, after, 5)
			if err != nil {
				t.Fatalf("%s: sharded page %d: %v", label, qi, err)
			}
			paged = append(paged, recs...)
			if done || next == "" {
				break
			}
			after = next
		}
		assertSameRecords(t, want, len(want), paged, len(paged), label, qi, "sharded-paged")
	}
}

func assertSameRecords(t *testing.T, want []core.Record, wantTotal int, got []core.Record, gotTotal int, label string, qi int, path string) {
	t.Helper()
	if gotTotal != wantTotal || len(got) != len(want) {
		t.Fatalf("%s: query %d: %s %d/%d vs union %d/%d", label, qi, path, len(got), gotTotal, len(want), wantTotal)
	}
	for i := range want {
		wb, err := core.EncodeRecord(&want[i])
		if err != nil {
			t.Fatal(err)
		}
		gb, err := core.EncodeRecord(&got[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(wb) != string(gb) {
			t.Fatalf("%s: query %d: %s record %d (%s) differs from union (%s)",
				label, qi, path, i, got[i].StorageKey(), want[i].StorageKey())
		}
	}
}

func TestRouterConformanceAllBackends(t *testing.T) {
	for _, fl := range shardFlavours() {
		t.Run(fl.name, func(t *testing.T) {
			rt, _ := flavourRouter(t, fl, 3)
			sessions := recordSessions(t, rt, 8, 6)
			ref := unionReference(t, rt)
			assertRouterEqualsUnion(t, rt, ref, sessions, fl.name)
		})
	}
}

func TestRouterPageCursorSurvivesDeletionAllBackends(t *testing.T) {
	for _, fl := range shardFlavours() {
		t.Run(fl.name, func(t *testing.T) {
			rt, _ := flavourRouter(t, fl, 3)
			recordSessions(t, rt, 6, 6)
			want, _, err := rt.Query(&prep.Query{})
			if err != nil {
				t.Fatal(err)
			}

			// First page.
			page1, next, done, _, err := rt.QueryPage(&prep.Query{}, "", 7)
			if err != nil {
				t.Fatal(err)
			}
			if done || next == "" || len(page1) != 7 {
				t.Fatalf("first page: %d records done=%v next=%q", len(page1), done, next)
			}

			// Between pages, delete one already-delivered record and one
			// not-yet-delivered record (the very last by key order).
			delivered := page1[2].StorageKey()
			pending := want[len(want)-1].StorageKey()
			for _, k := range []string{delivered, pending} {
				if ok, err := rt.DeleteRecord(k); err != nil || !ok {
					t.Fatalf("delete %s: ok=%v err=%v", k, ok, err)
				}
			}

			// Resume paging on the old composite cursor.
			got := append([]core.Record(nil), page1...)
			for steps := 0; ; steps++ {
				if steps > 50 {
					t.Fatal("paging did not terminate")
				}
				recs, n2, d2, _, err := rt.QueryPage(&prep.Query{}, next, 7)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, recs...)
				if d2 || n2 == "" {
					break
				}
				next = n2
			}

			// Expect: every original record except the pending deletion
			// (the delivered one was already served — deletion cannot
			// unserve it), each exactly once, in key order.
			var expect []string
			for i := range want {
				if k := want[i].StorageKey(); k != pending {
					expect = append(expect, k)
				}
			}
			if len(got) != len(expect) {
				t.Fatalf("paged %d records, want %d", len(got), len(expect))
			}
			seen := make(map[string]bool)
			for i, r := range got {
				k := r.StorageKey()
				if seen[k] {
					t.Fatalf("record %s delivered twice", k)
				}
				seen[k] = true
				if k != expect[i] {
					t.Fatalf("page walk record %d is %s, want %s", i, k, expect[i])
				}
			}
		})
	}
}

func TestRouterDrainCrashRecoveryAllBackends(t *testing.T) {
	for _, fl := range shardFlavours() {
		t.Run(fl.name, func(t *testing.T) {
			rt, stores := flavourRouter(t, fl, 3)
			sessions := recordSessions(t, rt, 9, 5)
			ref := unionReference(t, rt)

			// Simulate a crash mid-drain: the first half of shard 0's
			// records were already copied to their new homes among the
			// survivors, but the source deletions never ran — the exact
			// state Drain's copy-before-delete ordering leaves behind.
			srcRecs, _, err := rt.Shard(0).Query(&prep.Query{})
			if err != nil {
				t.Fatal(err)
			}
			if len(srcRecs) == 0 {
				t.Skip("affinity left shard 0 empty for this workload")
			}
			half := srcRecs[:(len(srcRecs)+1)/2]
			survivors := []int{1, 2}
			for _, r := range half {
				target := survivors[AffinityIndex(AffinityTerm(&r), len(survivors))]
				if acc, rejects, err := rt.Shard(target).Record(r.Asserter(), []core.Record{r}); err != nil || acc != 1 || len(rejects) != 0 {
					t.Fatalf("crash-copy to shard %d: acc=%d rejects=%v err=%v", target, acc, rejects, err)
				}
			}

			// Mid-overlap, answers must already be exact: the merge
			// dedupes the twins. (Limit-ed queries are checked record-
			// for-record; their Totals legitimately over-count twins
			// hidden beyond the fetched window.)
			assertRouterEqualsUnionOpts(t, rt, ref, sessions, fl.name+"/mid-overlap", false)

			// "Restart": a fresh router over the same stores (all shards
			// active again), then the operator re-runs the drain.
			rt2, err := NewRouter(func() []Shard {
				out := make([]Shard, len(stores))
				for i := range stores {
					out[i] = NewLocal(stores[i])
				}
				return out
			}()...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rt2.Drain(0); err != nil {
				t.Fatal(err)
			}

			// No record lost, none duplicated: router answers match the
			// union reference, the drained shard is empty, and per-shard
			// counts sum to the reference count.
			assertRouterEqualsUnion(t, rt2, ref, sessions, fl.name+"/after-redrain")
			if cnt, _ := rt2.Shard(0).Count(); cnt.Records != 0 {
				t.Fatalf("drained shard still holds %d records", cnt.Records)
			}
			refCnt, err := ref.Count()
			if err != nil {
				t.Fatal(err)
			}
			sum := 0
			for i := 0; i < rt2.NumShards(); i++ {
				cnt, err := rt2.Shard(i).Count()
				if err != nil {
					t.Fatal(err)
				}
				sum += cnt.Records
			}
			if sum != refCnt.Records {
				t.Fatalf("per-shard counts sum to %d, want %d (duplicate or lost record)", sum, refCnt.Records)
			}
		})
	}
}

// TestRouterSingleShardDegenerate pins that a 1-shard router behaves
// exactly like the store it wraps (the migration path: front a store
// with a router first, add shards later).
func TestRouterSingleShardDegenerate(t *testing.T) {
	rt := memRouter(t, 1)
	sessions := recordSessions(t, rt, 4, 5)
	ref := unionReference(t, rt)
	assertRouterEqualsUnion(t, rt, ref, sessions, "single")
	if _, err := rt.Drain(0); err == nil {
		t.Fatal("draining the only shard succeeded")
	}
}

// TestRouterRecordConcurrent exercises concurrent affine writes (the
// topology read-lock path Drain synchronises with).
func TestRouterRecordConcurrent(t *testing.T) {
	rt := memRouter(t, 4)
	const writers = 8
	errs := make(chan error, writers)
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 10; i++ {
				sid := seq.NewID()
				recs := []core.Record{mkRec(sid, "svc:gzip", 0), mkRec(sid, "svc:ppmz", 1)}
				if acc, rejects, err := rt.Record("svc:enactor", recs); err != nil || acc != 2 || len(rejects) != 0 {
					errs <- fmt.Errorf("writer %d: acc=%d rejects=%v err=%v", w, acc, rejects, err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < writers; w++ {
		<-done
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cnt, err := rt.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Records != writers*10*2 {
		t.Fatalf("count %d, want %d", cnt.Records, writers*10*2)
	}
}
