package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/obs"
	"preserv/internal/prep"
	"preserv/internal/query"
)

// Router presents the full store API over N shards: writes route
// session-affine to one shard, reads fan out to all of them and merge.
// A Router is safe for concurrent use; Drain may run concurrently with
// queries and writes.
//
// Topology: the shard list is fixed at construction, but a shard can be
// deactivated by Drain — it then receives no new affine writes while
// staying in the read fan-out (its records are moving to the survivors;
// reads are fenced from the page moves, paging cursors carry the drain
// epoch so a walk can never silently straddle a move, and the merge's
// key-dedup plus overlap-aware Total counting collapse the overlap a
// crashed drain leaves behind, so query answers stay exact throughout).
type Router struct {
	shards []Shard
	// topo guards the active set. Record holds it shared across routing
	// AND dispatch, so Drain's exclusive flip of a shard's active flag
	// cannot complete while any write routed under the old topology is
	// still in flight — after the flip, no new record can land on the
	// draining shard, which is what lets Drain terminate.
	// provlint:lock-order 30
	topo   sync.RWMutex
	active []bool
	// fp fingerprints the shard list's identity AND order (computed
	// once at construction); composite cursors embed it so a cursor
	// minted against one topology is rejected — not silently mis-applied
	// — when the endpoint list is reordered between restarts.
	fp string
	// drainMu serialises drains: one rebalance at a time.
	// provlint:lock-order 10
	drainMu sync.Mutex
	// reg is the router's own telemetry: per-shard fan-out latency
	// (fanoutSec[i], resolved at construction so the hot path never
	// touches the registry map), k-way-merge width, and drain progress
	// counters. Per-shard store registries stay with their shards.
	reg        *obs.Registry
	fanoutSec  []*obs.Histogram
	mergeWidth *obs.Histogram
	drainPages *obs.Counter
	drainMoved *obs.Counter
	// moveMu fences router-level deletions AND read fan-outs against a
	// drain's page cycle. Drain holds it exclusively from reading a
	// page off the source until that page's copies and source deletions
	// land; DeleteRecords and DeleteSession hold it exclusively for
	// their fan-out; Query/QueryPlanned/QueryPage/Sessions/Count hold
	// it shared. Without the delete fence a deletion could slip between
	// the page read and the re-record and the drain would resurrect the
	// deleted record from its page buffer. Without the read fence a
	// fan-out could read the survivor before a record's copy lands and
	// the source after its deletion — seeing the record on NEITHER side
	// — so the fence is what makes "one-shot queries see exactly the
	// full set throughout a drain" true rather than merely likely.
	// Held per page, it delays readers and (rare, administrative)
	// deletions by at most one page move; it never blocks writes.
	// provlint:lock-order 20
	moveMu sync.RWMutex
	// moveEpoch counts page moves: bumped (always under moveMu held
	// exclusively) at every Drain start and finish and after every page a
	// drain relocates. Composite cursors embed the epoch they were minted
	// under; a cursor replayed after a bump is rejected as ErrStaleCursor
	// instead of silently skipping records a move carried behind it. The
	// epoch also keys the paged result cache, so a cached cursor chain
	// can never be served against a post-move topology.
	moveEpoch atomic.Uint64
	// overlaps tracks shards a failed drain may have left overlapping
	// the survivors (copies landed, source deletions unconfirmed). While
	// any shard is suspect, Limit-ed fan-outs switch from summed Totals
	// to a presence-only key union (Limit-free fetch) so the Total stays
	// exact; a drain that completes clears its shard's suspicion. All
	// writes happen on the drain path (serialised by drainMu); overlapN
	// is the fan-out paths' lock-free read.
	// provlint:lock-order 40
	overlapMu sync.Mutex
	overlaps  map[int]bool
	overlapN  atomic.Int64
	// drainPage is how many records one drain step moves (the
	// drainPageSize default; tests shrink it to force multi-page drains
	// on small data sets). Read on the drain path under drainMu.
	drainPage int
	// rc caches merged fan-out answers keyed on the query's canonical
	// form plus the tuple of every shard's content generation. The
	// tuple is probed under moveMu (shared) BEFORE the fan-out, so a
	// cached answer is always one some fenced fan-out could have
	// produced; any shard that cannot report a generation disables
	// caching for that call. See resultcache.go for the invalidation
	// argument.
	rc *routerResultCache
}

// NewRouter builds a router over the given shards (at least one).
func NewRouter(shards ...Shard) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one shard")
	}
	active := make([]bool, len(shards))
	for i := range active {
		active[i] = true
	}
	rt := &Router{
		shards:    shards,
		active:    active,
		fp:        fingerprint(shards),
		reg:       obs.NewRegistry(),
		overlaps:  make(map[int]bool),
		drainPage: drainPageSize,
	}
	rt.fanoutSec = make([]*obs.Histogram, len(shards))
	for i := range shards {
		rt.fanoutSec[i] = rt.reg.Histogram(fmt.Sprintf(`router_shard_fanout_seconds{shard="%d"}`, i), nil)
	}
	rt.mergeWidth = rt.reg.Histogram("router_merge_width", obs.SizeBuckets)
	rt.drainPages = rt.reg.Counter("router_drain_pages_total")
	rt.drainMoved = rt.reg.Counter("router_drain_records_moved_total")
	rt.rc = newRouterResultCache(DefaultResultCacheSize)
	rt.reg.GaugeFunc("router_resultcache_hits", func() float64 { return float64(rt.rc.hits.Load()) })
	rt.reg.GaugeFunc("router_resultcache_misses", func() float64 { return float64(rt.rc.misses.Load()) })
	rt.reg.GaugeFunc("router_resultcache_entries", func() float64 { return float64(rt.rc.len()) })
	return rt, nil
}

// SetResultCacheSize replaces the router's result cache with one of the
// given entry capacity (0 or negative disables caching). Counters reset
// with the cache. Safe to call while serving.
func (rt *Router) SetResultCacheSize(capacity int) {
	rt.moveMu.Lock()
	defer rt.moveMu.Unlock()
	rt.rc = newRouterResultCache(capacity)
}

// ResultCacheStats reports the result cache's cumulative lookup
// outcomes (a tuple-mismatched entry evicted on lookup counts as a
// miss, same convention as the per-store query cache).
func (rt *Router) ResultCacheStats() (hits, misses int64) {
	rt.moveMu.RLock()
	rc := rt.rc
	rt.moveMu.RUnlock()
	return rc.hits.Load(), rc.misses.Load()
}

// probeGenerations collects every shard's content generation, in
// topology order. ok is false — and the result nil — when any shard
// cannot report one; the caller then bypasses the result cache for
// this fan-out (no counters move: the cache was never consulted).
// Callers hold moveMu (shared suffices): the probe and the fan-out it
// guards must sit under the same fence acquisition, so a drain's page
// move cannot slip between them.
//
// provlint:requires moveMu
func (rt *Router) probeGenerations() ([]uint64, bool) {
	gens := make([]uint64, len(rt.shards))
	for i, s := range rt.shards {
		p, ok := s.(GenerationProber)
		if !ok {
			return nil, false
		}
		g, ok := p.Generation()
		if !ok {
			return nil, false
		}
		gens[i] = g
	}
	return gens, true
}

// Generation implements GenerationProber for the router itself (a
// router can be a shard of a parent router): the tuple folds to a sum,
// which changes whenever any child's generation does — sufficient for
// the parent's equality test, since generations only grow.
func (rt *Router) Generation() (uint64, bool) {
	rt.moveMu.RLock()
	defer rt.moveMu.RUnlock()
	gens, ok := rt.probeGenerations()
	if !ok {
		return 0, false
	}
	var sum uint64
	for _, g := range gens {
		sum += g
	}
	return sum, true
}

// Obs returns the router's telemetry registry.
func (rt *Router) Obs() *obs.Registry { return rt.reg }

// DrainEpoch reports the router's current drain epoch (see moveEpoch):
// it advances whenever a drain starts, moves a page, or finishes, and a
// composite cursor minted under an older epoch no longer resumes.
func (rt *Router) DrainEpoch() uint64 { return rt.moveEpoch.Load() }

// bumpMoveEpoch advances the drain epoch under the move fence, so the
// bump is ordered against every page fan-out: fan-outs in flight when
// the bump waits for the lock finished encoding their cursor under the
// old epoch, and every later fan-out observes the new one.
func (rt *Router) bumpMoveEpoch() {
	rt.moveMu.Lock()
	rt.moveEpoch.Add(1)
	rt.moveMu.Unlock()
}

// markOverlap flips shard i's crashed-drain overlap suspicion.
func (rt *Router) markOverlap(i int, suspect bool) {
	rt.overlapMu.Lock()
	defer rt.overlapMu.Unlock()
	if suspect == rt.overlaps[i] {
		return
	}
	if suspect {
		rt.overlaps[i] = true
		rt.overlapN.Add(1)
	} else {
		delete(rt.overlaps, i)
		rt.overlapN.Add(-1)
	}
}

// OverlapSuspected reports whether any shard may still hold records a
// failed drain already copied to the survivors. While true, Limit-ed
// queries compute their Total by key union over Limit-free per-shard
// fetches instead of the summed fast path, keeping the Total exact
// across the overlap; a drain of the shard that completes (including
// the cheap re-drain of an already-empty shard) clears it. The flag is
// in-process state: a router constructed over shards that already
// overlap (a process crash mid-drain) cannot know, and the operator
// re-drains — as crash recovery already requires — to restore both
// disjointness and the flag.
func (rt *Router) OverlapSuspected() bool { return rt.overlapN.Load() > 0 }

// fingerprint hashes the shard list's identity in order: a remote
// shard contributes its endpoint URL, an embedded one its position
// (stable across restarts of the same -shards N layout, which reopens
// the same directories in the same order). FNV-1a like the affinity
// hash, so it is process-independent.
func fingerprint(shards []Shard) string {
	h := fnv.New64a()
	for i, s := range shards {
		if u, ok := s.(interface{ URL() string }); ok {
			h.Write([]byte("url:" + u.URL()))
		} else {
			h.Write([]byte("local:" + strconv.Itoa(i)))
		}
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// NumShards reports the topology size (active or not).
func (rt *Router) NumShards() int { return len(rt.shards) }

// ActiveShards reports how many shards still receive affine writes.
func (rt *Router) ActiveShards() int {
	rt.topo.RLock()
	defer rt.topo.RUnlock()
	n := 0
	for _, a := range rt.active {
		if a {
			n++
		}
	}
	return n
}

// Shard returns the i-th shard (for tests and maintenance tooling).
func (rt *Router) Shard(i int) Shard { return rt.shards[i] }

// activeListLocked returns the indices of the active shards. Callers
// hold rt.topo (shared suffices).
func (rt *Router) activeListLocked() []int {
	out := make([]int, 0, len(rt.shards))
	for i, a := range rt.active {
		if a {
			out = append(out, i)
		}
	}
	return out
}

// Record validates and stores a batch of p-assertions: each record
// routes to its affinity shard (hash of its session group over the
// active shard count), the per-shard sub-batches dispatch concurrently,
// and the responses recombine — accepted counts sum, reject indexes map
// back to positions in the caller's slice. A failed shard surfaces as
// the call's error; sub-batches on other shards may still have
// committed (exactly the partial-failure surface one store's batched
// Record already has), and a client retry is absorbed idempotently.
func (rt *Router) Record(asserter core.ActorID, records []core.Record) (int, []prep.Reject, error) {
	rt.topo.RLock()
	defer rt.topo.RUnlock()
	act := rt.activeListLocked()
	if len(act) == 0 {
		return 0, nil, fmt.Errorf("shard: no active shard to record onto")
	}
	if len(act) == 1 || len(records) == 0 {
		return rt.shards[act[0]].Record(asserter, records)
	}

	// Partition by home shard, remembering original positions so the
	// shards' reject indexes can be mapped back.
	byShard := make(map[int][]int) // shard index -> original record indexes
	for i := range records {
		si := act[AffinityIndex(AffinityTerm(&records[i]), len(act))]
		byShard[si] = append(byShard[si], i)
	}

	type result struct {
		accepted int
		rejects  []prep.Reject
		err      error
	}
	results := make([]result, len(rt.shards))
	var wg sync.WaitGroup
	for si, idxs := range byShard {
		sub := make([]core.Record, len(idxs))
		for j, oi := range idxs {
			sub[j] = records[oi]
		}
		wg.Add(1)
		go func(si int, idxs []int, sub []core.Record) {
			defer wg.Done()
			acc, rej, err := rt.shards[si].Record(asserter, sub)
			// Remap reject indexes to the caller's positions.
			for k := range rej {
				if rej[k].Index >= 0 && rej[k].Index < len(idxs) {
					rej[k].Index = idxs[rej[k].Index]
				}
			}
			results[si] = result{accepted: acc, rejects: rej, err: err}
		}(si, idxs, sub)
	}
	wg.Wait()

	accepted := 0
	var rejects []prep.Reject
	var firstErr error
	for _, r := range results {
		accepted += r.accepted
		rejects = append(rejects, r.rejects...)
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	sort.Slice(rejects, func(i, j int) bool { return rejects[i].Index < rejects[j].Index })
	return accepted, rejects, firstErr
}

// shardResult is one shard's contribution to a fanned-out read.
type shardResult struct {
	records []core.Record
	total   int
	plan    *prep.QueryPlan
	next    string
	done    bool
}

// fanOut runs fn against every shard concurrently and collects the
// results in shard order. The first error wins.
func (rt *Router) fanOut(fn func(s Shard) (*shardResult, error)) ([]*shardResult, error) {
	return rt.fanOut2(func(_ int, s Shard) (*shardResult, error) { return fn(s) })
}

// mergeRecords k-way-merges per-shard result slices (each already in
// ascending storage-key order) into one, deduplicating identical keys —
// after a crashed drain a record is present on two shards until a
// re-drain absorbs the overlap, and it must count once. limit > 0
// truncates the merged records (not the total). It returns the merged
// records and the number of duplicate keys met. With countAll the scan
// runs every head to exhaustion and counts dupes across the WHOLE
// input, including keys beyond the limit cut, so that when the caller
// fetched Limit-free (the exact-Total path over a crashed-drain
// overlap) the dupe count deducts every twin and the summed Total
// lands exactly on the key union. Without countAll the merge returns
// as soon as the limit is filled — the paged fan-out path discards the
// dupe count and must not pay for scanning past the page cut.
func mergeRecords(parts [][]core.Record, limit int, countAll bool) (out []core.Record, dupes int) {
	type head struct {
		part, pos int
		key       string
	}
	heads := make([]head, 0, len(parts))
	for p := range parts {
		if len(parts[p]) > 0 {
			heads = append(heads, head{part: p, key: parts[p][0].StorageKey()})
		}
	}
	prevKey := ""
	for len(heads) > 0 {
		// Smallest head wins; ties broken by part order (the records are
		// identical by construction — same storage key, idempotent store).
		min := 0
		for i := 1; i < len(heads); i++ {
			if heads[i].key < heads[min].key {
				min = i
			}
		}
		h := heads[min]
		// Key dedup: a drain-overlap twin merges (and counts) once. All
		// copies of a key sort adjacent, so comparing against the
		// previous distinct key suffices — and prevKey advances on every
		// distinct key, appended or beyond the cut, so twins of an
		// overshoot key still register as dupes.
		if prevKey != "" && h.key == prevKey {
			dupes++
		} else {
			if limit <= 0 || len(out) < limit {
				out = append(out, parts[h.part][h.pos])
			} else if !countAll {
				return out, dupes
			}
			prevKey = h.key
		}
		heads[min].pos++
		if heads[min].pos >= len(parts[h.part]) {
			heads[min] = heads[len(heads)-1]
			heads = heads[:len(heads)-1]
		} else {
			heads[min].key = parts[h.part][heads[min].pos].StorageKey()
		}
	}
	return out, dupes
}

// mergePlans folds per-shard plans into one plan describing the fanned
// execution: counters sum, the strategy is "index" only when every
// shard answered from its indexes, Cached only when every shard served
// from cache, and Dims reports the first indexed shard's choice (shard
// planners run independently; their orders can differ).
func mergePlans(plans []*prep.QueryPlan) *prep.QueryPlan {
	merged := &prep.QueryPlan{Strategy: prep.PlanIndex, Cached: true}
	seen := false
	for _, p := range plans {
		if p == nil {
			continue
		}
		seen = true
		if p.Strategy != prep.PlanIndex {
			merged.Strategy = prep.PlanScan
		}
		if !p.Cached {
			merged.Cached = false
		}
		if merged.Dims == nil && len(p.Dims) > 0 {
			merged.Dims = append([]string(nil), p.Dims...)
			merged.DimCounts = append([]int(nil), p.DimCounts...)
		}
		merged.EstCandidates += p.EstCandidates
		merged.Postings += p.Postings
		merged.Candidates += p.Candidates
	}
	if !seen {
		return &prep.QueryPlan{Strategy: prep.PlanScan}
	}
	return merged
}

// Query evaluates q across every shard via the scan path and merges:
// records interleave in global storage-key order (duplicate keys
// collapse), totals sum minus the duplicates seen. The read fence
// (moveMu, shared) orders the fan-out against a drain's page moves, so
// a record mid-move is seen on exactly one side — never on neither.
//
// Totals are exact. When the shards are disjoint — the steady state,
// which the fence preserves even mid-drain — per-shard totals simply
// sum. The one state that breaks disjointness is the overlap a failed
// drain leaves until a re-drain absorbs it (copies on the survivors,
// source deletions unconfirmed); there a Limit-ed fetch would hide
// overlap twins beyond the fetched window, so while the router
// suspects such an overlap (OverlapSuspected) it fetches Limit-free,
// deducts every twin the merge meets, and truncates the returned
// records to Limit afterwards — presence-only key-union counting, at
// the cost of the Limit pushdown, only while the suspicion stands.
// provlint:typed-faults
func (rt *Router) Query(q *prep.Query) ([]core.Record, int, error) {
	if err := q.Validate(); err != nil {
		return nil, 0, err
	}
	rt.moveMu.RLock()
	defer rt.moveMu.RUnlock()
	rc := rt.rc
	key := "q|" + query.CacheKey(q)
	gens, probed := rt.probeGenerations()
	if probed {
		if e, ok := rc.get(key, gens); ok {
			return e.recs, e.total, nil
		}
	}
	fq := rt.fanOutQuery(q)
	results, err := rt.fanOut(func(s Shard) (*shardResult, error) {
		recs, total, err := s.Query(fq)
		if err != nil {
			return nil, err
		}
		return &shardResult{records: recs, total: total}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	recs, total, err := rt.mergeQueryResults(q, results)
	if err == nil && probed {
		rc.put(key, gens, recs, total, nil, "", false)
	}
	return recs, total, err
}

// QueryPlanned evaluates q across every shard via each shard's planner
// and merges records, totals and plans.
// provlint:typed-faults
func (rt *Router) QueryPlanned(q *prep.Query) ([]core.Record, int, *prep.QueryPlan, error) {
	if err := q.Validate(); err != nil {
		return nil, 0, nil, err
	}
	rt.moveMu.RLock()
	defer rt.moveMu.RUnlock()
	rc := rt.rc
	key := "p|" + query.CacheKey(q)
	gens, probed := rt.probeGenerations()
	if probed {
		if e, ok := rc.get(key, gens); ok {
			plan := e.plan
			if plan == nil {
				plan = &prep.QueryPlan{}
			}
			plan.Cached = true
			return e.recs, e.total, plan, nil
		}
	}
	fq := rt.fanOutQuery(q)
	results, err := rt.fanOut(func(s Shard) (*shardResult, error) {
		recs, total, plan, err := s.QueryPlanned(fq)
		if err != nil {
			return nil, err
		}
		return &shardResult{records: recs, total: total, plan: plan}, nil
	})
	if err != nil {
		return nil, 0, nil, err
	}
	recs, total, err := rt.mergeQueryResults(q, results)
	if err != nil {
		return nil, 0, nil, err
	}
	plans := make([]*prep.QueryPlan, len(results))
	for i, r := range results {
		plans[i] = r.plan
	}
	merged := mergePlans(plans)
	if probed {
		rc.put(key, gens, recs, total, merged, "", false)
	}
	return recs, total, merged, nil
}

// observeMergeWidth records how many shards contributed records to a
// k-way merge — the effective fan-in, as opposed to the topology size.
func (rt *Router) observeMergeWidth(parts [][]core.Record) {
	width := 0
	for _, p := range parts {
		if len(p) > 0 {
			width++
		}
	}
	rt.mergeWidth.Observe(float64(width))
}

// fanOutQuery picks the query the per-shard legs actually run: q
// itself, or — when a crashed drain's overlap is suspected and q
// carries a Limit over more than one shard — a Limit-free copy, so
// every overlap twin is inside the fetched windows and the merge's
// dupe count makes the summed Total exactly the key union's size.
// mergeQueryResults still truncates the merged records to q's Limit.
func (rt *Router) fanOutQuery(q *prep.Query) *prep.Query {
	if q.Limit <= 0 || len(rt.shards) == 1 || !rt.OverlapSuspected() {
		return q
	}
	full := *q
	full.Limit = 0
	return &full
}

// mergeQueryResults combines per-shard Query answers under q's Limit.
// Each shard returned its first Limit matches (or all of them when
// Limit is 0), so the union's first Limit records are guaranteed to be
// among the fetched ones; duplicates (drain overlap) sort adjacent and
// collapse, each one also deducted from the summed total.
func (rt *Router) mergeQueryResults(q *prep.Query, results []*shardResult) ([]core.Record, int, error) {
	parts := make([][]core.Record, len(results))
	total := 0
	for i, r := range results {
		parts[i] = r.records
		total += r.total
	}
	rt.observeMergeWidth(parts)
	merged, dupes := mergeRecords(parts, q.Limit, true)
	total -= dupes
	if total < len(merged) {
		total = len(merged)
	}
	return merged, total, nil
}

// compositeCursorPrefix tags a Router page cursor. A cursor without the
// tag is treated as a plain storage key applied uniformly to every
// shard — the form a client carries over from an unsharded store, and
// the form the first page (empty cursor) takes.
const compositeCursorPrefix = "sc1!"

// encodeCursor packs per-shard cursors into one opaque composite
// cursor: "sc1!" + N + "!" + topology fingerprint "." drain epoch (hex)
// + "!" + N url-escaped per-shard after-keys. A shard that proved
// exhaustion carries a "*" before its escaped key (QueryEscape never
// emits "*"), so later pages skip it instead of re-planning an empty
// page against it every time. The epoch rides inside the fingerprint
// field — the field that already means "the world this cursor was
// minted against" — so the wire shape ("sc1!" and the field count)
// is unchanged.
func encodeCursor(fp string, epoch uint64, perShard []string, exhausted []bool) string {
	var b strings.Builder
	b.WriteString(compositeCursorPrefix)
	b.WriteString(strconv.Itoa(len(perShard)))
	b.WriteString("!")
	b.WriteString(fp)
	b.WriteString(".")
	b.WriteString(strconv.FormatUint(epoch, 16))
	for i, c := range perShard {
		b.WriteString("!")
		if exhausted[i] {
			b.WriteString("*")
		}
		b.WriteString(url.QueryEscape(c))
	}
	return b.String()
}

// ErrBadCursor marks a composite cursor the router cannot decode —
// malformed, corrupted, or built for a different shard count. It is
// client input, not a router failure; servers map it to a bad-request
// fault.
var ErrBadCursor = errors.New("shard: malformed composite cursor")

// ErrStaleCursor marks a composite cursor minted before a drain epoch
// bump: a page move may have carried records from in front of the
// cursor's position to behind it, so resuming the walk could silently
// skip them. Like ErrBadCursor it is client input mapped to a
// bad-request fault, but it is retryable: the walk restarts from a
// consistent position — Client.QueryStream resumes from the last
// storage key it delivered as a plain cursor, which is exact because
// storage keys are shard-independent, so per-shard seek-after
// semantics survive any move.
var ErrStaleCursor = errors.New("shard: stale page cursor")

// ErrInvalidSession marks a session-scoped request whose session id
// failed validation. Client input, mapped to a bad-request fault like
// the cursor sentinels, so callers can errors.Is it across the wire.
var ErrInvalidSession = errors.New("shard: invalid session id")

// decodeCursor unpacks a composite cursor for n shards under the
// router's topology fingerprint. A plain (untagged) cursor fans out
// as-is to every shard (composite=false, epoch meaningless); a tagged
// cursor minted against a different shard list — resized OR reordered —
// is rejected rather than silently applying one shard's position to
// another (which would seek past records with no error). The drain
// epoch the cursor was minted under returns to the caller, who
// compares it against the live epoch; a fingerprint field without an
// epoch suffix (a cursor minted by a pre-epoch build) decodes as epoch
// 0, which a router that has ever drained rejects as stale — the safe
// side.
func decodeCursor(after, fp string, n int) (perShard []string, exhausted []bool, epoch uint64, composite bool, err error) {
	perShard = make([]string, n)
	exhausted = make([]bool, n)
	if !strings.HasPrefix(after, compositeCursorPrefix) {
		for i := range perShard {
			perShard[i] = after
		}
		return perShard, exhausted, 0, false, nil
	}
	fields := strings.Split(after[len(compositeCursorPrefix):], "!")
	if len(fields) < 2 {
		return nil, nil, 0, false, ErrBadCursor
	}
	count, err := strconv.Atoi(fields[0])
	if err != nil || count != len(fields)-2 {
		return nil, nil, 0, false, ErrBadCursor
	}
	if count != n {
		return nil, nil, 0, false, fmt.Errorf("%w: built for %d shards, used against %d", ErrBadCursor, count, n)
	}
	fpField, epochField, hasEpoch := strings.Cut(fields[1], ".")
	if fpField != fp {
		return nil, nil, 0, false, fmt.Errorf("%w: built for a different shard topology", ErrBadCursor)
	}
	if hasEpoch {
		epoch, err = strconv.ParseUint(epochField, 16, 64)
		if err != nil {
			return nil, nil, 0, false, fmt.Errorf("%w: bad drain epoch: %v", ErrBadCursor, err)
		}
	}
	for i := 0; i < n; i++ {
		f := fields[i+2]
		if strings.HasPrefix(f, "*") {
			exhausted[i] = true
			f = f[1:]
		}
		c, err := url.QueryUnescape(f)
		if err != nil {
			return nil, nil, 0, false, fmt.Errorf("%w: %v", ErrBadCursor, err)
		}
		perShard[i] = c
	}
	return perShard, exhausted, epoch, true, nil
}

// QueryPage evaluates one cursor-delimited page of q across the shards:
// every shard serves a page from its own cursor concurrently, the pages
// k-way-merge in storage-key order, the first pageSize merged records
// form the page, and the per-shard consumption positions pack into the
// returned composite cursor. Records a shard fetched beyond the merge
// cut are simply re-served on the next page (the shard's cursor only
// advances past consumed keys), so the protocol stays stateless
// server-side; deletions between pages are invisible to the cursor —
// it is ordinary storage-key seek-after semantics per shard, which the
// single-store page path already honours.
//
// A multi-page walk cannot silently straddle a drain: every composite
// cursor carries the drain epoch it was minted under, the whole
// fetch+merge+encode window holds the move fence shared (so the epoch
// cannot advance between reading it and stamping it into the returned
// cursor — the cursor handed back never points into a mid-move gap),
// and a cursor whose epoch predates any drain activity is rejected as
// ErrStaleCursor rather than resumed past records a page move carried
// behind it. The stateless router cannot know which records a rejected
// walker already delivered, so the restart is the client's:
// Client.QueryStream resumes from the last storage key it delivered as
// a plain cursor, which plain seek-after semantics make exact across
// any move. One remaining documented weakness: the cursor's exhaustion
// markers make a shard that proved done stay silent for the rest of
// the walk, so a record written to it mid-walk stays invisible to that
// walk even if its key sorts after the walk's position (neither the
// sharded nor the single-store contract promises mid-walk writes
// appear; a walker that must be current re-runs).
// provlint:typed-faults
func (rt *Router) QueryPage(q *prep.Query, after string, pageSize int) ([]core.Record, string, bool, *prep.QueryPlan, error) {
	if err := q.Validate(); err != nil {
		return nil, "", false, nil, err
	}
	if pageSize <= 0 {
		pageSize = query.DefaultPageSize
	}
	if pageSize > query.MaxPageSize {
		pageSize = query.MaxPageSize
	}
	cursors, exhausted, cursorEpoch, composite, err := decodeCursor(after, rt.fp, len(rt.shards))
	if err != nil {
		return nil, "", false, nil, err
	}

	rt.moveMu.RLock()
	defer rt.moveMu.RUnlock()
	// The epoch read here is the one stamped into the returned cursor:
	// bumps take moveMu exclusively, so it cannot move while we hold the
	// fence shared across the fan-out, merge and encode below.
	epoch := rt.moveEpoch.Load()
	if composite && cursorEpoch != epoch {
		return nil, "", false, nil, fmt.Errorf(
			"%w: minted in drain epoch %d, now %d — a rebalance moved records; restart the walk",
			ErrStaleCursor, cursorEpoch, epoch)
	}
	rc := rt.rc
	key := "g|" + query.CacheKey(q) + "|a=" + url.QueryEscape(after) + "|n=" + strconv.Itoa(pageSize) + "|e=" + strconv.FormatUint(epoch, 10)
	gens, probed := rt.probeGenerations()
	if probed {
		if e, ok := rc.get(key, gens); ok {
			plan := e.plan
			if plan == nil {
				plan = &prep.QueryPlan{}
			}
			plan.Cached = true
			return e.recs, e.next, e.done, plan, nil
		}
	}
	results, err := rt.fanOut2(func(i int, s Shard) (*shardResult, error) {
		// A shard that proved exhaustion on an earlier page answers
		// empty without being asked again.
		if exhausted[i] {
			return &shardResult{done: true}, nil
		}
		recs, next, done, plan, err := s.QueryPage(q, cursors[i], pageSize)
		if err != nil {
			return nil, err
		}
		return &shardResult{records: recs, plan: plan, next: next, done: done}, nil
	})
	if err != nil {
		return nil, "", false, nil, err
	}

	parts := make([][]core.Record, len(results))
	for i, r := range results {
		parts[i] = r.records
	}
	rt.observeMergeWidth(parts)
	merged, _ := mergeRecords(parts, pageSize, false)

	// Advance each shard's cursor past its consumed records; a shard
	// none of whose fetched records made the cut keeps its old cursor.
	consumed := make(map[string]bool, len(merged))
	for i := range merged {
		consumed[merged[i].StorageKey()] = true
	}
	nextCursors := make([]string, len(rt.shards))
	done := true
	for i, r := range results {
		nextCursors[i] = cursors[i]
		allConsumed := true
		for j := range r.records {
			if k := r.records[j].StorageKey(); consumed[k] {
				nextCursors[i] = k
			} else {
				allConsumed = false
			}
		}
		// A shard is exhausted once it proved its own exhaustion AND
		// everything it fetched was merged out; the whole result set is
		// done only when every shard is.
		exhausted[i] = r.done && allConsumed
		if !exhausted[i] {
			done = false
		}
	}

	plans := make([]*prep.QueryPlan, len(results))
	for i, r := range results {
		plans[i] = r.plan
	}
	next := ""
	if !done && len(merged) > 0 {
		next = encodeCursor(rt.fp, epoch, nextCursors, exhausted)
	}
	mergedPlan := mergePlans(plans)
	if probed {
		rc.put(key, gens, merged, 0, mergedPlan, next, done)
	}
	return merged, next, done, mergedPlan, nil
}

// fanOut2 is fanOut with the shard index in hand. Each shard's leg is
// timed into its fan-out histogram, so a slow or skewed shard is
// visible per shard rather than folded into the merged latency.
func (rt *Router) fanOut2(fn func(i int, s Shard) (*shardResult, error)) ([]*shardResult, error) {
	results := make([]*shardResult, len(rt.shards))
	errs := make([]error, len(rt.shards))
	var wg sync.WaitGroup
	for i, s := range rt.shards {
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			span := rt.reg.Tracer().StartSpan("router.fanout")
			results[i], errs[i] = fn(i, s)
			span.SetAttr("shard", strconv.Itoa(i)).Observe(rt.fanoutSec[i], errs[i])
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// fanOutJoin runs fn against every shard concurrently and aggregates
// every shard's error rather than surfacing only the first. Mutating
// fan-outs (compaction, deletion) want this shape: one failed shard
// must not mask what happened on the others, and the caller needs to
// know exactly which shards still hold work to redo. Each leg is timed
// into its fan-out histogram like fanOut2.
func (rt *Router) fanOutJoin(fn func(i int, s Shard) error) error {
	errs := make([]error, len(rt.shards))
	var wg sync.WaitGroup
	for i, s := range rt.shards {
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			span := rt.reg.Tracer().StartSpan("router.fanout")
			err := fn(i, s)
			span.SetAttr("shard", strconv.Itoa(i)).Observe(rt.fanoutSec[i], err)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Sessions unions the shards' session listings, sorted and distinct.
// provlint:typed-faults
func (rt *Router) Sessions() ([]ids.ID, error) {
	rt.moveMu.RLock()
	defer rt.moveMu.RUnlock()
	seen := make(map[string]ids.ID)
	var mu sync.Mutex
	_, err := rt.fanOut(func(s Shard) (*shardResult, error) {
		sess, err := s.Sessions()
		if err != nil {
			return nil, err
		}
		mu.Lock()
		for _, id := range sess {
			seen[id.String()] = id
		}
		mu.Unlock()
		return &shardResult{}, nil
	})
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ids.ID, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out, nil
}

// Count sums the shards' record statistics. The read fence keeps page
// moves invisible, so a record counts once — except in the overlap a
// crashed drain leaves behind (copies landed, source deletion did not),
// where it counts on both sides until a re-drain absorbs it.
// provlint:typed-faults
func (rt *Router) Count() (prep.CountResponse, error) {
	rt.moveMu.RLock()
	defer rt.moveMu.RUnlock()
	var mu sync.Mutex
	var sum prep.CountResponse
	_, err := rt.fanOut(func(s Shard) (*shardResult, error) {
		c, err := s.Count()
		if err != nil {
			return nil, err
		}
		mu.Lock()
		sum.Records += c.Records
		sum.Interactions += c.Interactions
		sum.ActorStates += c.ActorStates
		mu.Unlock()
		return &shardResult{}, nil
	})
	return sum, err
}

// DeleteRecord removes the record under key from whichever shard holds
// it. The key cannot name its home shard (affinity hashes the session
// group, which the key does not carry — and a rebalance may have moved
// the record anyway), so the deletion fans out; it lands on at most one
// shard outside drain overlap, and retraction is idempotent regardless.
func (rt *Router) DeleteRecord(key string) (bool, error) {
	if key == "" {
		return false, fmt.Errorf("shard: empty key")
	}
	n, err := rt.DeleteRecords([]string{key})
	return n > 0, err
}

// DeleteRecords fans a batched deletion out to every shard and sums the
// per-shard deletions. It fences against an in-flight drain's page
// cycle (moveMu), so a deletion observes every record on exactly one
// consistent side of a move.
// provlint:typed-faults
func (rt *Router) DeleteRecords(keys []string) (int, error) {
	rt.moveMu.Lock()
	defer rt.moveMu.Unlock()
	var mu sync.Mutex
	deleted := 0
	err := rt.fanOutJoin(func(_ int, s Shard) error {
		n, err := s.DeleteRecords(keys)
		mu.Lock()
		deleted += n
		mu.Unlock()
		return err
	})
	return deleted, err
}

// DeleteSession fans the session retraction out to every shard (a
// rebalance may have left a session's records on a non-home shard) and
// sums the deletions.
// provlint:typed-faults
func (rt *Router) DeleteSession(session ids.ID) (int, error) {
	if !session.Valid() {
		return 0, ErrInvalidSession
	}
	rt.moveMu.Lock()
	defer rt.moveMu.Unlock()
	var mu sync.Mutex
	deleted := 0
	err := rt.fanOutJoin(func(_ int, s Shard) error {
		n, err := s.DeleteSession(session)
		mu.Lock()
		deleted += n
		mu.Unlock()
		return err
	})
	return deleted, err
}

// Compact fans compaction out to every shard. Shards compact
// independently, so one failure does not stop the others; the joined
// error names every shard that still holds garbage.
func (rt *Router) Compact() error {
	return rt.fanOutJoin(func(_ int, s Shard) error {
		return s.Compact()
	})
}

// CompactAbove compacts only the shards whose own garbage ratio has
// reached threshold — the scheduled-reclamation form: one hot shard
// crossing the threshold must not force every clean shard through a
// full live-data rewrite. Shards that cannot report a ratio (remote
// endpoints read as zero) are skipped; they schedule their own
// compactions. A negative threshold disables.
func (rt *Router) CompactAbove(threshold float64) error {
	if threshold < 0 {
		return nil
	}
	return rt.fanOutJoin(func(_ int, s Shard) error {
		if s.GarbageRatio() >= threshold {
			return s.Compact()
		}
		return nil
	})
}

// GarbageRatio reports the worst shard's dead-byte fraction — the shard
// a scheduled compaction most needs to visit drives the signal (Compact
// fans out and relieves all of them at once).
func (rt *Router) GarbageRatio() float64 {
	max := 0.0
	for _, s := range rt.shards {
		if g := s.GarbageRatio(); g > max {
			max = g
		}
	}
	return max
}

// Tombstones sums the shards' unreclaimed deletion markers.
func (rt *Router) Tombstones() int64 {
	var sum int64
	for _, s := range rt.shards {
		sum += s.Tombstones()
	}
	return sum
}

// ShardStats reports every shard's telemetry, indexed in topology
// order. Shards implementing ShardStatser (local shards, and remote
// shards on a stats-capable server) report in full; others fall back
// to the base Shard surface. The per-shard calls fan out concurrently
// — a remote shard's stats cost a wire round trip.
func (rt *Router) ShardStats() ([]prep.ShardStats, error) {
	out := make([]prep.ShardStats, len(rt.shards))
	errs := make([]error, len(rt.shards))
	var wg sync.WaitGroup
	for i, s := range rt.shards {
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			var st prep.ShardStats
			var err error
			if ss, ok := s.(ShardStatser); ok {
				st, err = ss.ShardStats()
			} else {
				var count prep.CountResponse
				count, err = s.Count()
				st = prep.ShardStats{
					Records:      count.Records,
					GarbageRatio: s.GarbageRatio(),
					Tombstones:   s.Tombstones(),
				}
				if es, ok := s.(EngineStatser); ok {
					st.Engine = es.EngineStats().Wire()
				}
			}
			st.Index = i
			if u, ok := s.(interface{ URL() string }); ok {
				st.URL = u.URL()
			}
			out[i], errs[i] = st, err
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// EngineStats implements EngineStatser by aggregating over the shards
// that can report (local shards, and remote shards via the stats wire
// action; shards that cannot report contribute zero).
func (rt *Router) EngineStats() EngineStats {
	var sum EngineStats
	for _, s := range rt.shards {
		if es, ok := s.(EngineStatser); ok {
			sum.add(es.EngineStats())
		}
	}
	return sum
}

// Close closes every shard, returning the first error.
func (rt *Router) Close() error {
	var firstErr error
	for _, s := range rt.shards {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// drainPageSize is how many records one drain step moves: fetched in
// one page, re-recorded in per-asserter batches, deleted in one
// DeleteRecords call.
const drainPageSize = 256

// SetDrainPageSize overrides how many records one drain step moves.
// Tests (and the race harness) shrink it so a drain over a small data
// set still takes many page moves — the window the epoch fencing
// exists for. Values < 1 restore the default. Safe to call between
// drains; a drain in flight keeps the size it started with.
func (rt *Router) SetDrainPageSize(n int) {
	rt.drainMu.Lock()
	defer rt.drainMu.Unlock()
	if n < 1 {
		n = drainPageSize
	}
	rt.drainPage = n
}

// shardDesc names a shard for error messages: the endpoint URL for a
// remote shard, its embedded position otherwise.
func shardDesc(i int, s Shard) string {
	if u, ok := s.(interface{ URL() string }); ok && u.URL() != "" {
		return u.URL()
	}
	return fmt.Sprintf("embedded shard %d", i)
}

// maxDrainPasses bounds Drain's sweep loop. The router's own writes are
// fenced by the topology flip, so pass two is normally the empty
// confirmation sweep — but a writer shipping to the shard's endpoint
// directly (a session-affine AsyncRecorder that still lists it, in a
// remote topology) keeps refilling it, and without a cap Drain would
// chase that writer forever. Hitting the cap returns an error naming
// the condition; the records moved so far stay moved (re-draining
// resumes where the sweeps left off).
const maxDrainPasses = 16

// Drain rebalances shard i's records onto the surviving active shards
// and empties it: the shard first stops receiving affine writes (the
// topology flip waits out in-flight routed writes), then its records
// stream out page by page — each page is re-recorded session-affine
// onto the survivors FIRST and deleted from the source only after every
// copy is acknowledged, so a crash at any point loses nothing; at worst
// it leaves copies on both sides, which idempotent re-recording (on a
// drain retry) and the read merge's key-dedup absorb — and which the
// router remembers (markOverlap) so Limit-ed Totals stay exact until a
// re-drain absorbs the twins. One-shot queries running concurrently
// keep seeing exactly the full record set throughout — the moveMu read
// fence orders each fan-out against the page moves; a multi-page walk
// whose cursor spans the drain is fenced by the drain epoch the cursor
// carries (see QueryPage): it is rejected as ErrStaleCursor and
// restarted by the client, never silently short.
//
// The drained shard stays in the read fan-out (it is empty, so it
// answers trivially); re-draining an already-drained shard is a cheap
// no-op, which is also the crash-recovery path. It returns how many
// records were moved.
func (rt *Router) Drain(i int) (int, error) {
	rt.drainMu.Lock()
	defer rt.drainMu.Unlock()

	if i < 0 || i >= len(rt.shards) {
		return 0, fmt.Errorf("shard: drain index %d out of range [0,%d)", i, len(rt.shards))
	}
	rt.topo.Lock()
	if rt.active[i] {
		others := 0
		for j, a := range rt.active {
			if a && j != i {
				others++
			}
		}
		if others == 0 {
			rt.topo.Unlock()
			return 0, fmt.Errorf("shard: cannot drain the last active shard")
		}
		rt.active[i] = false
	}
	rt.topo.Unlock()

	// Epoch bumps bracket the drain: the bump here retires every cursor
	// minted before it (a walk resumed mid-drain would otherwise race
	// the first page move), drainOnePage bumps after each page it
	// relocates, and the deferred bump retires cursors minted between
	// the last page move and the finish.
	rt.bumpMoveEpoch()
	defer rt.bumpMoveEpoch()

	moved := 0
	// Passes repeat until a full sweep moves nothing: the first pass
	// races only writes that were already routed before the topology
	// flip (the flip waited those out), so the second pass is normally
	// the empty confirmation sweep. The cap catches writers outside the
	// router that keep refilling the shard — draining requires them to
	// stop (or route through the router) first.
	for pass := 0; pass < maxDrainPasses; pass++ {
		n, err := rt.drainPass(i)
		moved += n
		if err != nil {
			return moved, err
		}
		if n == 0 {
			// The sweep confirmed the source is empty: any overlap a
			// previously failed drain left has been absorbed, so summed
			// Totals are exact again.
			rt.markOverlap(i, false)
			return moved, nil
		}
	}
	// Every page cycle in the capped sweeps completed (copy AND source
	// deletion), so hitting the cap leaves no overlap — only a shard
	// that keeps refilling.
	return moved, fmt.Errorf("shard: draining shard %d (%s): still receiving records after %d sweeps — an external writer is shipping to it directly; stop it (or route it through the router) and re-drain",
		i, shardDesc(i, rt.shards[i]), maxDrainPasses)
}

// drainPass streams one full sweep of shard i: page, copy, delete —
// each page's whole cycle under the delete fence (see moveMu), so a
// concurrent fan-out deletion can never slip between the page read and
// the re-record and be undone by the drain's copy.
func (rt *Router) drainPass(i int) (int, error) {
	src := rt.shards[i]
	moved := 0
	after := ""
	for {
		recs, next, done, err := rt.drainOnePage(src, i, after)
		if err != nil {
			return moved, err
		}
		moved += len(recs)
		if done || next == "" {
			return moved, nil
		}
		after = next
	}
}

// drainOnePage moves one page: read, copy to survivors, delete source.
func (rt *Router) drainOnePage(src Shard, i int, after string) (_ []core.Record, _ string, _ bool, err error) {
	span := rt.reg.Tracer().StartSpan("router.drain_page").SetAttr("shard", strconv.Itoa(i))
	defer func() { span.End(err) }()
	rt.moveMu.Lock()
	defer rt.moveMu.Unlock()
	recs, next, done, _, err := src.QueryPage(&prep.Query{}, after, rt.drainPage)
	if err != nil {
		return nil, "", false, fmt.Errorf("shard: draining shard %d: reading page: %w", i, err)
	}
	if len(recs) == 0 {
		return nil, next, done, nil
	}
	// From here on records may land on the survivors, so whatever the
	// outcome the epoch must advance before the fence drops: cursors
	// minted before this page cannot be allowed to resume past the
	// move. (Deferred after the Unlock above, so it runs first — still
	// under the fence.) A failure past this point additionally leaves
	// the source page possibly twinned on the survivors until a
	// re-drain confirms it gone.
	defer rt.moveEpoch.Add(1)
	if err := rt.relocate(i, recs); err != nil {
		rt.markOverlap(i, true)
		return nil, "", false, err
	}
	keys := make([]string, len(recs))
	for j := range recs {
		keys[j] = recs[j].StorageKey()
	}
	// Copies are acknowledged: only now may the source forget.
	if _, err := src.DeleteRecords(keys); err != nil {
		rt.markOverlap(i, true)
		return nil, "", false, fmt.Errorf("shard: draining shard %d: deleting moved page: %w", i, err)
	}
	rt.reg.Batch(func() {
		rt.drainPages.Add(1)
		rt.drainMoved.Add(int64(len(recs)))
	})
	return recs, next, done, nil
}

// relocate re-records one drained page onto the surviving shards,
// grouped by (home shard, asserter) — Record calls carry one asserter.
func (rt *Router) relocate(from int, recs []core.Record) error {
	rt.topo.RLock()
	act := make([]int, 0, len(rt.shards))
	for j, a := range rt.active {
		if a && j != from {
			act = append(act, j)
		}
	}
	rt.topo.RUnlock()
	if len(act) == 0 {
		return fmt.Errorf("shard: draining shard %d: no surviving shard to move records to", from)
	}

	type groupKey struct {
		shard    int
		asserter core.ActorID
	}
	groups := make(map[groupKey][]core.Record)
	for j := range recs {
		gk := groupKey{
			shard:    act[AffinityIndex(AffinityTerm(&recs[j]), len(act))],
			asserter: recs[j].Asserter(),
		}
		groups[gk] = append(groups[gk], recs[j])
	}
	for gk, sub := range groups {
		acc, rejects, err := rt.shards[gk.shard].Record(gk.asserter, sub)
		if err != nil {
			return fmt.Errorf("shard: draining shard %d: copying %d records to shard %d: %w", from, len(sub), gk.shard, err)
		}
		if len(rejects) > 0 {
			return fmt.Errorf("shard: draining shard %d: shard %d rejected %d of %d records, first: %s",
				from, gk.shard, len(rejects), len(sub), rejects[0].Reason)
		}
		if acc != len(sub) {
			return fmt.Errorf("shard: draining shard %d: shard %d accepted %d of %d records", from, gk.shard, acc, len(sub))
		}
	}
	return nil
}
