package shard

import (
	"container/list"
	"sync"
	"sync/atomic"

	"preserv/internal/core"
	"preserv/internal/prep"
)

// GenerationProber is an optional Shard extension: a shard that can
// report its content generation cheaply (without a wire round trip on
// the hot path) lets the router cache merged query results keyed on the
// tuple of all shards' generations. A Local shard answers from its
// store's atomic counter; a RemoteShard answers from its TTL-cached
// stats snapshot. The bool is false when the generation cannot be
// determined (an endpoint running an older server, an unreachable
// endpoint) — the router then bypasses its result cache entirely
// rather than risk a stale answer.
type GenerationProber interface {
	Generation() (uint64, bool)
}

// DefaultResultCacheSize is the router result cache's default entry
// capacity. Entries are whole merged result sets, so the budget is
// deliberately small; SetResultCacheSize tunes or disables it.
const DefaultResultCacheSize = 128

// resultCacheMaxRecords caps how large a merged result set the router
// will cache. A fan-out returning more records than this is served but
// not retained — one giant scan must not evict the whole working set
// of small repeated queries.
const resultCacheMaxRecords = 1024

// routerCacheEntry is one cached fan-out answer, pinned to the
// generation tuple it was computed under. The tuple is probed BEFORE
// the fan-out runs (both under the same moveMu read fence), and store
// generations bump only AFTER a mutation's data is committed — so a
// write racing the fan-out makes the current tuple advance past the
// stamped one, and the entry dies on its next lookup. Staleness is
// impossible; the failure mode is over-invalidation.
type routerCacheEntry struct {
	key   string
	gens  []uint64
	recs  []core.Record
	total int
	plan  *prep.QueryPlan
	next  string
	done  bool
}

// routerResultCache is a mutex-guarded LRU over merged fan-out results.
// There is no explicit invalidation hook: the generation tuple in the
// key comparison is the invalidation — any accepted record or deletion
// on any shard changes that shard's generation and orphans every entry
// stamped with the old tuple (stale entries evict on lookup; unlooked
// ones age out of the LRU).
type routerResultCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List
	m      map[string]*list.Element
	hits   atomic.Int64
	misses atomic.Int64
}

func newRouterResultCache(capacity int) *routerResultCache {
	if capacity <= 0 {
		return &routerResultCache{}
	}
	return &routerResultCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

func gensEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// clonePlan deep-copies a plan so a cached one cannot be disturbed by
// a caller (plans carry dim slices).
func clonePlan(p *prep.QueryPlan) *prep.QueryPlan {
	if p == nil {
		return nil
	}
	cp := *p
	cp.Dims = append([]string(nil), p.Dims...)
	cp.DimCounts = append([]int(nil), p.DimCounts...)
	return &cp
}

// get returns the entry under key if it is stamped with exactly the
// current generation tuple; a tuple mismatch evicts on sight and counts
// as a miss. The returned records slice and plan are fresh copies.
func (c *routerResultCache) get(key string, gens []uint64) (*routerCacheEntry, bool) {
	if c.cap == 0 {
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	e := el.Value.(*routerCacheEntry)
	if !gensEqual(e.gens, gens) {
		c.ll.Remove(el)
		delete(c.m, key)
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	return &routerCacheEntry{
		key:   e.key,
		recs:  append([]core.Record(nil), e.recs...),
		total: e.total,
		plan:  clonePlan(e.plan),
		next:  e.next,
		done:  e.done,
	}, true
}

// put retains a merged answer under its generation tuple. Oversized
// result sets are dropped (see resultCacheMaxRecords). The entry keeps
// its own copies of the records slice and plan so later mutation of
// the returned values cannot corrupt the cache.
func (c *routerResultCache) put(key string, gens []uint64, recs []core.Record, total int, plan *prep.QueryPlan, next string, done bool) {
	if c.cap == 0 || len(recs) > resultCacheMaxRecords {
		return
	}
	e := &routerCacheEntry{
		key:   key,
		gens:  append([]uint64(nil), gens...),
		recs:  append([]core.Record(nil), recs...),
		total: total,
		plan:  clonePlan(plan),
		next:  next,
		done:  done,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*routerCacheEntry).key)
	}
}

// len reports the number of live entries (for tests).
func (c *routerResultCache) len() int {
	if c.cap == 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
