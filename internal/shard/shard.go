// Package shard partitions the provenance store horizontally and routes
// the full store API across the partitions — the "distributed PReServ"
// the paper's future-work section proposes, taken from recording at
// scale (the AsyncRecorder already ships to several endpoints) to
// *using* provenance at scale: queries answered whole, however many
// stores hold the records.
//
// Writes route session-affine: a record's home shard is a stable hash
// of its session group over the shard count, so one workflow run's
// lineage stays co-located and a session-scoped query touches one
// shard's indexes. Reads fan out: planned queries execute on every
// shard concurrently and k-way-merge in storage-key order, paged
// queries resume each shard at its own cursor behind one composite
// cursor, session listings union, statistics aggregate. Rebalancing
// reuses the deletion lifecycle: Drain streams a shard's records out,
// re-records them onto the survivors (copy first), and only then
// deletes the source batch — a crash in between leaves an overlap that
// idempotent re-recording absorbs and the merge's key-dedup hides.
package shard

import (
	"hash/fnv"
	"sort"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/obs"
	"preserv/internal/prep"
	"preserv/internal/query"
	"preserv/internal/store"
)

// Shard is one partition of the provenance store, local or remote. The
// surface mirrors what the preserv service layer serves: writes,
// scanned and planned queries, paged reads, session listings, the
// deletion lifecycle and compaction telemetry. Implementations must be
// safe for concurrent use.
type Shard interface {
	// Record validates and stores a batch of p-assertions, idempotently
	// for identical re-records (the property drains and client retries
	// lean on).
	Record(asserter core.ActorID, records []core.Record) (int, []prep.Reject, error)
	// Query evaluates q via the scan path: matching records in
	// storage-key order (up to q.Limit) plus the total match count.
	Query(q *prep.Query) ([]core.Record, int, error)
	// QueryPlanned evaluates q via the shard's query planner. Results
	// are identical to Query; the plan describes the access path.
	QueryPlanned(q *prep.Query) ([]core.Record, int, *prep.QueryPlan, error)
	// QueryPage evaluates one cursor-delimited page: up to pageSize
	// matching records with storage keys strictly greater than after.
	QueryPage(q *prep.Query, after string, pageSize int) (records []core.Record, next string, done bool, plan *prep.QueryPlan, err error)
	// Sessions lists the shard's distinct session identifiers, sorted.
	Sessions() ([]ids.ID, error)
	// Count reports the shard's record statistics.
	Count() (prep.CountResponse, error)
	// DeleteRecords removes the records under the given storage keys
	// (absent keys are no-ops) and reports how many were deleted.
	DeleteRecords(keys []string) (int, error)
	// DeleteSession removes every record grouped under the session.
	DeleteSession(session ids.ID) (int, error)
	// Compact reclaims the shard's dead bytes, if its backend can.
	Compact() error
	// GarbageRatio is the shard's dead-byte fraction (0 if unknown).
	GarbageRatio() float64
	// Tombstones counts the shard's unreclaimed deletion markers.
	Tombstones() int64
	// Close releases the shard's resources.
	Close() error
}

// EngineStats aggregates a shard's query-engine telemetry (zero for
// shards that cannot report it, e.g. remote endpoints).
type EngineStats struct {
	CacheHits         int64
	CacheMisses       int64
	IndexPlans        int64
	ScanPlans         int64
	PagedQueries      int64
	CostProbes        int64
	PostingsRead      int64
	CandidatesFetched int64
}

// add accumulates o into s.
func (s *EngineStats) add(o EngineStats) {
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.IndexPlans += o.IndexPlans
	s.ScanPlans += o.ScanPlans
	s.PagedQueries += o.PagedQueries
	s.CostProbes += o.CostProbes
	s.PostingsRead += o.PostingsRead
	s.CandidatesFetched += o.CandidatesFetched
}

// EngineStatser is implemented by shards that can report query-engine
// telemetry (local shards, and remote shards via the stats wire
// action; the Router aggregates over them).
type EngineStatser interface {
	EngineStats() EngineStats
}

// Wire converts the stats to their urn:prep:stats wire form.
func (s EngineStats) Wire() prep.EngineCounters {
	return prep.EngineCounters{
		CacheHits:         s.CacheHits,
		CacheMisses:       s.CacheMisses,
		IndexPlans:        s.IndexPlans,
		ScanPlans:         s.ScanPlans,
		PagedQueries:      s.PagedQueries,
		CostProbes:        s.CostProbes,
		PostingsRead:      s.PostingsRead,
		CandidatesFetched: s.CandidatesFetched,
	}
}

// EngineStatsFromWire converts wire counters back to EngineStats.
func EngineStatsFromWire(c prep.EngineCounters) EngineStats {
	return EngineStats{
		CacheHits:         c.CacheHits,
		CacheMisses:       c.CacheMisses,
		IndexPlans:        c.IndexPlans,
		ScanPlans:         c.ScanPlans,
		PagedQueries:      c.PagedQueries,
		CostProbes:        c.CostProbes,
		PostingsRead:      c.PostingsRead,
		CandidatesFetched: c.CandidatesFetched,
	}
}

// ShardStatser is implemented by shards that can report full telemetry
// (record counts, garbage state, engine counters, histogram summaries,
// slow operations). It is an optional extension of Shard — remote
// endpoints running an older server simply lack it and the router
// falls back to the base surface.
type ShardStatser interface {
	ShardStats() (prep.ShardStats, error)
}

// HistogramStats summarises every histogram of a registry in wire
// form, sorted by name for stable output.
func HistogramStats(reg *obs.Registry) []prep.HistogramStat {
	snaps := reg.HistogramSnapshots()
	names := make([]string, 0, len(snaps))
	for name := range snaps {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]prep.HistogramStat, 0, len(names))
	for _, name := range names {
		s := snaps[name]
		out = append(out, prep.HistogramStat{
			Name:  name,
			Count: s.Count,
			Sum:   s.Sum,
			P50:   s.Quantile(0.50),
			P95:   s.Quantile(0.95),
			P99:   s.Quantile(0.99),
		})
	}
	return out
}

// SlowSpans converts a tracer's slow log to wire form, oldest first.
func SlowSpans(tr *obs.Tracer) []prep.SlowSpan {
	spans := tr.Slow()
	out := make([]prep.SlowSpan, 0, len(spans))
	for _, s := range spans {
		w := prep.SlowSpan{
			Op:      s.Op(),
			Start:   s.Start(),
			Seconds: s.Duration().Seconds(),
			Err:     s.Err(),
		}
		for _, a := range s.Attrs() {
			w.Attrs = append(w.Attrs, prep.SpanAttr{Key: a.Key, Value: a.Value})
		}
		out = append(out, w)
	}
	return out
}

// Local is a Shard embedded in this process: a store.Store plus its
// query engine. It is also the single-store implementation of the
// preserv service's provenance surface — the unsharded service runs on
// exactly one of these.
type Local struct {
	s *store.Store
	e *query.Engine
}

// NewLocal wraps a store (and a fresh query engine over it) as a Shard.
func NewLocal(s *store.Store) *Local {
	return &Local{s: s, e: query.New(s)}
}

// Store returns the underlying store.
func (l *Local) Store() *store.Store { return l.s }

// Generation implements GenerationProber: an embedded store's content
// generation is one atomic load, cheap enough to probe before every
// fanned-out read.
func (l *Local) Generation() (uint64, bool) { return l.s.Generation(), true }

// Record implements Shard.
func (l *Local) Record(asserter core.ActorID, records []core.Record) (int, []prep.Reject, error) {
	return l.s.Record(asserter, records)
}

// Query implements Shard via the store's scan path.
func (l *Local) Query(q *prep.Query) ([]core.Record, int, error) {
	return l.s.Query(q)
}

// QueryPlanned implements Shard via the cost-based planner.
func (l *Local) QueryPlanned(q *prep.Query) ([]core.Record, int, *prep.QueryPlan, error) {
	return l.e.Query(q)
}

// QueryPage implements Shard.
func (l *Local) QueryPage(q *prep.Query, after string, pageSize int) ([]core.Record, string, bool, *prep.QueryPlan, error) {
	return l.e.QueryPage(q, after, pageSize)
}

// Sessions implements Shard.
func (l *Local) Sessions() ([]ids.ID, error) { return l.e.Sessions() }

// Count implements Shard.
func (l *Local) Count() (prep.CountResponse, error) { return l.s.Count() }

// DeleteRecord removes the single record under key, reporting whether
// one was there — the one-key convenience the service layer's delete
// action uses.
func (l *Local) DeleteRecord(key string) (bool, error) { return l.s.DeleteRecord(key) }

// DeleteRecords implements Shard.
func (l *Local) DeleteRecords(keys []string) (int, error) { return l.s.DeleteRecords(keys) }

// DeleteSession implements Shard.
func (l *Local) DeleteSession(session ids.ID) (int, error) { return l.s.DeleteSession(session) }

// Compact implements Shard.
func (l *Local) Compact() error { return l.s.Compact() }

// CompactAbove compacts the store only when its garbage ratio has
// reached threshold — the selective form delete-triggered scheduling
// uses, so a single-store service behaves exactly as before while a
// router can skip its clean shards.
func (l *Local) CompactAbove(threshold float64) error {
	if threshold < 0 || l.s.GarbageRatio() < threshold {
		return nil
	}
	return l.s.Compact()
}

// GarbageRatio implements Shard.
func (l *Local) GarbageRatio() float64 { return l.s.GarbageRatio() }

// Tombstones implements Shard.
func (l *Local) Tombstones() int64 { return l.s.Tombstones() }

// Close implements Shard.
func (l *Local) Close() error { return l.s.Close() }

// ShardStats implements ShardStatser: the shard's record count,
// garbage state, engine counters, the store registry's histogram
// summaries and the slow-operation log.
func (l *Local) ShardStats() (prep.ShardStats, error) {
	count, err := l.s.Count()
	if err != nil {
		return prep.ShardStats{}, err
	}
	rc := l.s.ReadCacheStats()
	wp := l.s.WritePathStats()
	return prep.ShardStats{
		Records:      count.Records,
		GarbageRatio: l.s.GarbageRatio(),
		Tombstones:   l.s.Tombstones(),
		Engine:       l.EngineStats().Wire(),
		ReadCache: prep.ReadCacheCounters{
			BloomSkips:          rc.BloomSkips,
			BloomFalsePositives: rc.BloomFalsePositives,
			BloomHits:           rc.BloomHits,
			BlockCacheHits:      rc.BlockCacheHits,
			BlockCacheMisses:    rc.BlockCacheMisses,
			BlockCacheBytes:     rc.BlockCacheBytes,
			BlockCacheEntries:   rc.BlockCacheEntries,
		},
		WritePath: prep.WritePathCounters{
			CompactionsInProgress: wp.CompactionsInProgress,
			StallCount:            wp.StallCount,
			StallSeconds:          wp.StallSeconds,
			StallP99:              wp.StallP99,
		},
		Histograms: HistogramStats(l.s.Obs()),
		Slow:       SlowSpans(l.s.Obs().Tracer()),
	}, nil
}

// EngineStats implements EngineStatser.
func (l *Local) EngineStats() EngineStats {
	c := l.e.CacheStats()
	p := l.e.PlannerStats()
	return EngineStats{
		CacheHits:         c.Hits,
		CacheMisses:       c.Misses,
		IndexPlans:        p.IndexPlans,
		ScanPlans:         p.ScanPlans,
		PagedQueries:      p.PagedQueries,
		CostProbes:        p.CostProbes,
		PostingsRead:      p.PostingsRead,
		CandidatesFetched: p.CandidatesFetched,
	}
}

// AffinityTerm is the string a record's home shard is hashed from: the
// record's session group when it has one (a session's whole lineage
// then shares a shard), falling back to the interaction id (both views
// of an ungrouped interaction still co-locate), and to the storage key
// as a last resort.
func AffinityTerm(r *core.Record) string {
	if sid, ok := r.GroupID(core.GroupSession); ok {
		return sid.String()
	}
	if iid := r.InteractionID(); iid.Valid() {
		return iid.String()
	}
	return r.StorageKey()
}

// AffinityIndex maps an affinity term onto one of n shards with a
// stable, process-independent hash (FNV-1a), so a router restarted with
// the same topology — or a client shipping session-affine to the same
// endpoint list — routes every record to the same home shard.
func AffinityIndex(term string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(term))
	return int(h.Sum64() % uint64(n))
}

// Affinity maps a record to its home shard among n (see AffinityTerm).
func Affinity(r *core.Record, n int) int {
	return AffinityIndex(AffinityTerm(r), n)
}
