package shard

import (
	"reflect"
	"sync"
	"testing"

	"preserv/internal/core"
	"preserv/internal/prep"
)

// TestRouterResultCacheRepeatHit: a repeated fanned-out query answers
// from the router's result cache, and the cached answer is identical
// to the live one.
func TestRouterResultCacheRepeatHit(t *testing.T) {
	rt := memRouter(t, 3)
	recordSessions(t, rt, 4, 6)

	q := &prep.Query{Kind: core.KindInteraction.String()}
	r1, tot1, plan1, err := rt.QueryPlanned(q)
	if err != nil {
		t.Fatal(err)
	}
	hits0, _ := rt.ResultCacheStats()
	r2, tot2, plan2, err := rt.QueryPlanned(q)
	if err != nil {
		t.Fatal(err)
	}
	hits1, _ := rt.ResultCacheStats()
	if hits1 != hits0+1 {
		t.Fatalf("repeat query: hits %d -> %d, want one new hit", hits0, hits1)
	}
	if !reflect.DeepEqual(r1, r2) || tot1 != tot2 {
		t.Fatalf("cached answer differs: %d/%d records, total %d/%d", len(r1), len(r2), tot1, tot2)
	}
	if plan1.Cached || !plan2.Cached {
		t.Fatalf("plan Cached flags = %v then %v, want false then true", plan1.Cached, plan2.Cached)
	}

	// The scan path caches under its own key: its first run is a miss
	// even though the planned form of the same predicate is cached.
	s1, stot1, err := rt.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	s2, stot2, err := rt.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) || stot1 != stot2 {
		t.Fatal("scan-path cached answer differs")
	}
	if !reflect.DeepEqual(s1, r1) {
		t.Fatal("scan path and planned path disagree")
	}
}

// TestRouterResultCacheInvalidatesOnWrite: any accepted record moves
// some shard's generation, so the next lookup misses and re-fans —
// the cache can never hide a committed write.
func TestRouterResultCacheInvalidatesOnWrite(t *testing.T) {
	rt := memRouter(t, 2)
	sessions := recordSessions(t, rt, 2, 4)

	q := &prep.Query{Kind: core.KindInteraction.String()}
	_, tot1, _, err := rt.QueryPlanned(q)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache, then write one more record.
	if _, _, _, err := rt.QueryPlanned(q); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Record("svc:enactor", []core.Record{mkRec(sessions[0], "svc:late", 99)}); err != nil {
		t.Fatal(err)
	}
	_, tot2, _, err := rt.QueryPlanned(q)
	if err != nil {
		t.Fatal(err)
	}
	if tot2 != tot1+1 {
		t.Fatalf("after write: total %d, want %d (stale cached answer served?)", tot2, tot1+1)
	}

	// Deletions invalidate the same way.
	if _, err := rt.DeleteSession(sessions[1]); err != nil {
		t.Fatal(err)
	}
	_, tot3, _, err := rt.QueryPlanned(q)
	if err != nil {
		t.Fatal(err)
	}
	if tot3 != tot2-4 {
		t.Fatalf("after session delete: total %d, want %d", tot3, tot2-4)
	}
}

// TestRouterResultCachePagedWalk: a repeated paged walk serves every
// page from cache and yields the identical page sequence.
func TestRouterResultCachePagedWalk(t *testing.T) {
	rt := memRouter(t, 3)
	recordSessions(t, rt, 3, 5)

	q := &prep.Query{Kind: core.KindInteraction.String()}
	walk := func() []core.Record {
		var all []core.Record
		after := ""
		for {
			recs, next, done, _, err := rt.QueryPage(q, after, 4)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, recs...)
			if done || next == "" {
				return all
			}
			after = next
		}
	}
	w1 := walk()
	hits0, _ := rt.ResultCacheStats()
	w2 := walk()
	hits1, _ := rt.ResultCacheStats()
	if !reflect.DeepEqual(w1, w2) {
		t.Fatalf("cached walk differs: %d vs %d records", len(w1), len(w2))
	}
	if hits1 == hits0 {
		t.Fatal("repeat walk produced no cache hits")
	}
}

// TestRouterResultCacheDisabled: capacity 0 turns the cache off; every
// lookup is a miss and answers stay live.
func TestRouterResultCacheDisabled(t *testing.T) {
	rt := memRouter(t, 2)
	rt.SetResultCacheSize(0)
	recordSessions(t, rt, 2, 3)

	q := &prep.Query{Kind: core.KindInteraction.String()}
	for i := 0; i < 3; i++ {
		if _, _, _, err := rt.QueryPlanned(q); err != nil {
			t.Fatal(err)
		}
	}
	if hits, _ := rt.ResultCacheStats(); hits != 0 {
		t.Fatalf("disabled cache reported %d hits", hits)
	}
}

// unprobeableShard wraps a Shard, hiding any GenerationProber the
// wrapped value implements.
type unprobeableShard struct{ Shard }

// TestRouterResultCacheBypassWithoutProber: one shard that cannot
// report a generation disables caching (no hits, no stale risk) while
// queries keep answering.
func TestRouterResultCacheBypassWithoutProber(t *testing.T) {
	inner := memRouter(t, 1)
	rt, err := NewRouter(unprobeableShard{inner.Shard(0)})
	if err != nil {
		t.Fatal(err)
	}
	recordSessions(t, rt, 2, 3)

	q := &prep.Query{Kind: core.KindInteraction.String()}
	for i := 0; i < 2; i++ {
		if _, _, _, err := rt.QueryPlanned(q); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := rt.ResultCacheStats()
	if hits != 0 || misses != 0 {
		t.Fatalf("unprobeable topology consulted the cache: hits=%d misses=%d", hits, misses)
	}
	if _, ok := rt.Generation(); ok {
		t.Fatal("router over an unprobeable shard claimed a generation")
	}
}

// TestRouterResultCacheLiveMutationRace is the staleness property under
// concurrency (run it with -race): writers append records while readers
// query repeatedly through the cache. Record counts observed by each
// reader must never decrease — a decrease means a stale cached answer
// was served after a newer one. Deliberately not Short-gated: the CI
// race step runs -short and must include this.
func TestRouterResultCacheLiveMutationRace(t *testing.T) {
	rt := memRouter(t, 2)
	sessions := recordSessions(t, rt, 2, 2)

	const writes = 40
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			if _, _, err := rt.Record("svc:enactor", []core.Record{mkRec(sessions[i%2], "svc:w", i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			q := &prep.Query{Kind: core.KindInteraction.String()}
			last := 0
			for i := 0; i < 60; i++ {
				_, total, _, err := rt.QueryPlanned(q)
				if err != nil {
					t.Error(err)
					return
				}
				if total < last {
					t.Errorf("reader %d: total decreased %d -> %d (stale cache hit)", r, last, total)
					return
				}
				last = total
			}
		}(r)
	}
	wg.Wait()

	_, total, _, err := rt.QueryPlanned(&prep.Query{Kind: core.KindInteraction.String()})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 + writes; total != want {
		t.Fatalf("final total %d, want %d", total, want)
	}
}

// TestRouterGenerationSumAdvances: the router's own Generation (the
// probe a parent router would use) moves with any child's.
func TestRouterGenerationSumAdvances(t *testing.T) {
	rt := memRouter(t, 3)
	g0, ok := rt.Generation()
	if !ok {
		t.Fatal("all-local router must report a generation")
	}
	recordSessions(t, rt, 1, 1)
	g1, ok := rt.Generation()
	if !ok || g1 <= g0 {
		t.Fatalf("generation %d -> %d (ok=%v), want strictly increasing", g0, g1, ok)
	}
}
