package shard

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
	"preserv/internal/store"
)

var seq = &ids.SeqSource{Prefix: 0x5D}

// mkRec builds one interaction record in session asserted by the
// enactor.
func mkRec(session ids.ID, service core.ActorID, n int) core.Record {
	in := core.Interaction{ID: seq.NewID(), Sender: "svc:enactor", Receiver: service, Operation: "run"}
	return *core.NewInteractionRecord(&core.InteractionPAssertion{
		LocalID:     "e",
		Asserter:    "svc:enactor",
		Interaction: in,
		View:        core.SenderView,
		Request:     core.Message{Name: "invoke", Parts: []core.MessagePart{{Name: "in", DataID: seq.NewID()}}},
		Response:    core.Message{Name: "result", Parts: []core.MessagePart{{Name: "out", DataID: seq.NewID()}}},
		Groups:      []core.GroupRef{{Type: core.GroupSession, ID: session, Seq: uint64(n + 1)}},
		Timestamp:   time.Date(2026, 7, 2, 10, 0, n, 0, time.UTC),
	})
}

// memRouter builds a router over n memory-backed local shards.
func memRouter(t *testing.T, n int) *Router {
	t.Helper()
	children := make([]Shard, n)
	for i := range children {
		children[i] = NewLocal(store.New(store.NewMemoryBackend()))
	}
	rt, err := NewRouter(children...)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// recordSessions records perSession records into each of n sessions via
// the router and returns the session ids.
func recordSessions(t *testing.T, rt *Router, sessions, perSession int) []ids.ID {
	t.Helper()
	out := make([]ids.ID, 0, sessions)
	for i := 0; i < sessions; i++ {
		sid := seq.NewID()
		out = append(out, sid)
		recs := make([]core.Record, 0, perSession)
		for j := 0; j < perSession; j++ {
			recs = append(recs, mkRec(sid, core.ActorID(fmt.Sprintf("svc:stage-%d", j%3)), j))
		}
		acc, rejects, err := rt.Record("svc:enactor", recs)
		if err != nil {
			t.Fatal(err)
		}
		if acc != perSession || len(rejects) != 0 {
			t.Fatalf("session %d: accepted %d/%d, rejects %v", i, acc, perSession, rejects)
		}
	}
	return out
}

func TestAffinityStableAndInRange(t *testing.T) {
	sid := seq.NewID()
	r := mkRec(sid, "svc:gzip", 0)
	for _, n := range []int{1, 2, 3, 7} {
		a := Affinity(&r, n)
		if a < 0 || a >= n {
			t.Fatalf("Affinity(n=%d) = %d out of range", n, a)
		}
		if b := Affinity(&r, n); b != a {
			t.Fatalf("Affinity not stable: %d then %d", a, b)
		}
	}
	// Every record of one session shares a home shard.
	other := mkRec(sid, "svc:ppmz", 1)
	if Affinity(&r, 4) != Affinity(&other, 4) {
		t.Fatal("records of one session map to different shards")
	}
	// A record without groups falls back to its interaction id.
	bare := mkRec(sid, "svc:gzip", 2)
	bare.Interaction.Groups = nil
	if got, want := AffinityTerm(&bare), bare.InteractionID().String(); got != want {
		t.Fatalf("ungrouped affinity term %q, want interaction id %q", got, want)
	}
}

func TestRecordRoutesSessionAffine(t *testing.T) {
	rt := memRouter(t, 3)
	sids := recordSessions(t, rt, 12, 6)
	// Each session's records must all live on exactly its affinity
	// shard.
	for _, sid := range sids {
		want := AffinityIndex(sid.String(), 3)
		for i := 0; i < rt.NumShards(); i++ {
			recs, _, err := rt.Shard(i).Query(&prep.Query{SessionID: sid})
			if err != nil {
				t.Fatal(err)
			}
			if i == want && len(recs) != 6 {
				t.Fatalf("home shard %d holds %d of session %s, want 6", i, len(recs), sid)
			}
			if i != want && len(recs) != 0 {
				t.Fatalf("shard %d holds %d stray records of session %s (home %d)", i, len(recs), sid, want)
			}
		}
	}
}

func TestRecordRemapsRejectIndexes(t *testing.T) {
	rt := memRouter(t, 3)
	sidA, sidB := seq.NewID(), seq.NewID()
	good := mkRec(sidA, "svc:gzip", 0)
	bad := mkRec(sidB, "svc:gzip", 1)
	bad.Interaction.LocalID = "" // fails validation
	good2 := mkRec(sidA, "svc:gzip", 2)
	bad2 := mkRec(sidA, "svc:gzip", 3)
	bad2.Interaction.LocalID = ""

	acc, rejects, err := rt.Record("svc:enactor", []core.Record{good, bad, good2, bad2})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 2 {
		t.Fatalf("accepted %d, want 2", acc)
	}
	if len(rejects) != 2 || rejects[0].Index != 1 || rejects[1].Index != 3 {
		t.Fatalf("rejects %v, want indexes 1 and 3", rejects)
	}
}

func TestQueryMergesAcrossShardsInKeyOrder(t *testing.T) {
	rt := memRouter(t, 3)
	sids := recordSessions(t, rt, 9, 4)

	recs, total, err := rt.Query(&prep.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if total != 36 || len(recs) != 36 {
		t.Fatalf("merged %d/%d, want 36/36", len(recs), total)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].StorageKey() >= recs[i].StorageKey() {
			t.Fatalf("merge out of order at %d: %s >= %s", i, recs[i-1].StorageKey(), recs[i].StorageKey())
		}
	}

	// Limit: the merged first-k must match the unlimited merge's prefix,
	// and Total must stay the full count.
	limited, ltotal, err := rt.Query(&prep.Query{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ltotal != 36 || len(limited) != 5 {
		t.Fatalf("limited merge %d/%d, want 5/36", len(limited), ltotal)
	}
	for i := range limited {
		if limited[i].StorageKey() != recs[i].StorageKey() {
			t.Fatalf("limited record %d differs from merge prefix", i)
		}
	}

	// Planned equals scan.
	precs, ptotal, plan, err := rt.QueryPlanned(&prep.Query{SessionID: sids[0]})
	if err != nil {
		t.Fatal(err)
	}
	srecs, stotal, err := rt.Query(&prep.Query{SessionID: sids[0]})
	if err != nil {
		t.Fatal(err)
	}
	if ptotal != stotal || len(precs) != len(srecs) {
		t.Fatalf("planned %d/%d vs scan %d/%d", len(precs), ptotal, len(srecs), stotal)
	}
	if plan == nil || plan.Strategy == "" {
		t.Fatal("merged plan missing")
	}
}

func TestCompositeCursorRoundTrip(t *testing.T) {
	const fp = "00000000deadbeef"
	cursors := []string{"i/x/1/sender/svc:enactor/e", "", "s/with!bang and spaces/\x00odd", "*starts/with/star"}
	marks := []bool{false, true, false, true}
	const mintEpoch = uint64(0x2f)
	enc := encodeCursor(fp, mintEpoch, cursors, marks)
	if !strings.HasPrefix(enc, compositeCursorPrefix) {
		t.Fatalf("encoded cursor %q lacks prefix", enc)
	}
	dec, done, epoch, composite, err := decodeCursor(enc, fp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !composite {
		t.Fatal("composite cursor decoded as plain")
	}
	if epoch != mintEpoch {
		t.Fatalf("epoch decoded %d, want %d", epoch, mintEpoch)
	}
	for i := range cursors {
		if dec[i] != cursors[i] {
			t.Fatalf("cursor %d decoded %q, want %q", i, dec[i], cursors[i])
		}
		if done[i] != marks[i] {
			t.Fatalf("cursor %d exhaustion decoded %v, want %v", i, done[i], marks[i])
		}
	}
	// Shard-count mismatch is rejected.
	if _, _, _, _, err := decodeCursor(enc, fp, 2); err == nil {
		t.Fatal("cursor for 4 shards accepted against 2")
	}
	// A cursor minted against a different topology (same count,
	// reordered or replaced shards — a different fingerprint) is
	// rejected instead of mis-applying per-shard positions.
	if _, _, _, _, err := decodeCursor(enc, "1111111111111111", 4); err == nil {
		t.Fatal("cursor accepted against a different topology fingerprint")
	}
	// A pre-epoch cursor (fingerprint field without the "." suffix —
	// minted by an older build) still decodes, as epoch 0.
	legacy := strings.Replace(enc, fp+"."+strconv.FormatUint(mintEpoch, 16), fp, 1)
	if _, _, epoch, composite, err := decodeCursor(legacy, fp, 4); err != nil || !composite || epoch != 0 {
		t.Fatalf("legacy cursor: epoch=%d composite=%v err=%v, want 0/true/nil", epoch, composite, err)
	}
	// A garbled epoch suffix is malformed, not stale.
	garbled := strings.Replace(enc, fp+"."+strconv.FormatUint(mintEpoch, 16), fp+".zz", 1)
	if _, _, _, _, err := decodeCursor(garbled, fp, 4); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("garbled epoch: err=%v, want ErrBadCursor", err)
	}
	// A plain storage key fans out unchanged, with no shard exhausted.
	plain, done, _, composite, err := decodeCursor("i/abc", fp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if composite {
		t.Fatal("plain cursor decoded as composite")
	}
	if plain[0] != "i/abc" || plain[1] != "i/abc" || done[0] || done[1] {
		t.Fatalf("plain cursor mangled: %v %v", plain, done)
	}
}

// TestCursorRejectedAcrossReorderedTopology pins the end-to-end form of
// the fingerprint check: a page cursor from a router over endpoints
// (A, B) must be refused by a router over (B, A) — silently applying
// A's cursor position to B would seek past records with no error.
func TestCursorRejectedAcrossReorderedTopology(t *testing.T) {
	a := urlShard{Shard: NewLocal(store.New(store.NewMemoryBackend())), url: "http://a"}
	b := urlShard{Shard: NewLocal(store.New(store.NewMemoryBackend())), url: "http://b"}
	ab, err := NewRouter(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := NewRouter(b, a)
	if err != nil {
		t.Fatal(err)
	}
	recordSessions(t, ab, 4, 4)
	_, next, done, _, err := ab.QueryPage(&prep.Query{}, "", 5)
	if err != nil || done || next == "" {
		t.Fatalf("first page: next=%q done=%v err=%v", next, done, err)
	}
	if _, _, _, _, err := ba.QueryPage(&prep.Query{}, next, 5); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("reordered topology accepted foreign cursor: err=%v", err)
	}
	// The minting router keeps accepting its own cursor.
	if _, _, _, _, err := ab.QueryPage(&prep.Query{}, next, 5); err != nil {
		t.Fatal(err)
	}
}

// urlShard gives an embedded shard a remote-style identity for
// fingerprint tests.
type urlShard struct {
	Shard
	url string
}

func (u urlShard) URL() string { return u.url }

func TestQueryPageWalksWholeResultSet(t *testing.T) {
	rt := memRouter(t, 3)
	recordSessions(t, rt, 8, 5)
	want, total, err := rt.Query(&prep.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if total != 40 {
		t.Fatalf("total %d, want 40", total)
	}

	var got []core.Record
	after := ""
	pages := 0
	for {
		recs, next, done, _, err := rt.QueryPage(&prep.Query{}, after, 7)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, recs...)
		pages++
		if pages > 20 {
			t.Fatal("paging did not terminate")
		}
		if done || next == "" {
			break
		}
		after = next
	}
	if len(got) != len(want) {
		t.Fatalf("paged %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].StorageKey() != want[i].StorageKey() {
			t.Fatalf("page record %d is %s, want %s", i, got[i].StorageKey(), want[i].StorageKey())
		}
	}
}

func TestSessionsUnionAndCount(t *testing.T) {
	rt := memRouter(t, 3)
	sids := recordSessions(t, rt, 7, 3)
	got, err := rt.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sids) {
		t.Fatalf("sessions %d, want %d", len(got), len(sids))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].String() >= got[i].String() {
			t.Fatal("sessions not sorted")
		}
	}
	cnt, err := rt.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Records != 21 || cnt.Interactions != 21 {
		t.Fatalf("count %+v, want 21 interactions", cnt)
	}
}

func TestDeleteFansOut(t *testing.T) {
	rt := memRouter(t, 3)
	sids := recordSessions(t, rt, 6, 4)

	// Delete one record by key: the router cannot know its shard.
	recs, _, err := rt.Query(&prep.Query{SessionID: sids[0]})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := rt.DeleteRecord(recs[0].StorageKey())
	if err != nil || !ok {
		t.Fatalf("DeleteRecord: ok=%v err=%v", ok, err)
	}
	if ok, _ := rt.DeleteRecord(recs[0].StorageKey()); ok {
		t.Fatal("second delete of same key reported a deletion")
	}

	// Delete a whole session.
	n, err := rt.DeleteSession(sids[1])
	if err != nil || n != 4 {
		t.Fatalf("DeleteSession deleted %d err=%v, want 4", n, err)
	}
	if recs, _, _ := rt.Query(&prep.Query{SessionID: sids[1]}); len(recs) != 0 {
		t.Fatalf("session survived deletion: %d records", len(recs))
	}
	cnt, _ := rt.Count()
	if cnt.Records != 6*4-1-4 {
		t.Fatalf("count after deletes %d, want %d", cnt.Records, 6*4-1-4)
	}
}

func TestDrainMovesEverythingAndKeepsAnswers(t *testing.T) {
	rt := memRouter(t, 3)
	recordSessions(t, rt, 12, 5)
	before, total, err := rt.Query(&prep.Query{})
	if err != nil {
		t.Fatal(err)
	}

	moved, err := rt.Drain(1)
	if err != nil {
		t.Fatal(err)
	}
	if rt.ActiveShards() != 2 {
		t.Fatalf("active shards %d after drain, want 2", rt.ActiveShards())
	}
	// The drained shard is empty.
	cnt, err := rt.Shard(1).Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Records != 0 {
		t.Fatalf("drained shard still holds %d records (moved %d)", cnt.Records, moved)
	}
	// The record set is preserved exactly.
	after, atotal, err := rt.Query(&prep.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if atotal != total || len(after) != len(before) {
		t.Fatalf("after drain %d/%d records, want %d/%d", len(after), atotal, len(before), total)
	}
	for i := range before {
		if before[i].StorageKey() != after[i].StorageKey() {
			t.Fatalf("record %d changed across drain", i)
		}
	}
	// Re-draining an empty shard is a no-op; new writes avoid it.
	if n, err := rt.Drain(1); err != nil || n != 0 {
		t.Fatalf("re-drain moved %d err=%v", n, err)
	}
	sid := seq.NewID()
	if _, _, err := rt.Record("svc:enactor", []core.Record{mkRec(sid, "svc:gzip", 0)}); err != nil {
		t.Fatal(err)
	}
	if cnt, _ := rt.Shard(1).Count(); cnt.Records != 0 {
		t.Fatal("drained shard received a new write")
	}

	// Draining everything but the last shard works; the last refuses.
	if _, err := rt.Drain(0); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Drain(2); err == nil {
		t.Fatal("draining the last active shard succeeded")
	}
}

func TestDrainUnderConcurrentQueriesPreservesRecordSet(t *testing.T) {
	rt := memRouter(t, 3)
	recordSessions(t, rt, 10, 6)
	want, wantTotal, err := rt.Query(&prep.Query{})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var readerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Every mid-drain answer must be exactly the full record
			// set: copy-before-delete plus merge dedup guarantee it.
			got, total, err := rt.Query(&prep.Query{})
			if err != nil {
				readerErr = fmt.Errorf("mid-drain query: %w", err)
				return
			}
			if total != wantTotal || len(got) != len(want) {
				readerErr = fmt.Errorf("mid-drain query saw %d/%d records, want %d/%d", len(got), total, len(want), wantTotal)
				return
			}
			for i := range want {
				if got[i].StorageKey() != want[i].StorageKey() {
					readerErr = fmt.Errorf("mid-drain record %d is %s, want %s", i, got[i].StorageKey(), want[i].StorageKey())
					return
				}
			}
		}
	}()

	if _, err := rt.Drain(0); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}
}

func TestRouterNeedsAShard(t *testing.T) {
	if _, err := NewRouter(); err == nil {
		t.Fatal("empty router accepted")
	}
}

// gaugeShard wraps a Shard, fixing its reported garbage ratio and
// counting Compact calls.
type gaugeShard struct {
	Shard
	ratio    float64
	compacts int
}

func (g *gaugeShard) GarbageRatio() float64 { return g.ratio }
func (g *gaugeShard) Compact() error        { g.compacts++; return g.Shard.Compact() }

// TestCompactAboveSkipsCleanShards pins selective scheduled
// compaction: one hot shard crossing the threshold must not force the
// clean shards through a rewrite (explicit Compact still visits all).
func TestCompactAboveSkipsCleanShards(t *testing.T) {
	hot := &gaugeShard{Shard: NewLocal(store.New(store.NewMemoryBackend())), ratio: 0.8}
	cold := &gaugeShard{Shard: NewLocal(store.New(store.NewMemoryBackend())), ratio: 0.1}
	rt, err := NewRouter(hot, cold)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.GarbageRatio(); got != 0.8 {
		t.Fatalf("router garbage ratio %v, want the worst shard's 0.8", got)
	}
	if err := rt.CompactAbove(0.5); err != nil {
		t.Fatal(err)
	}
	if hot.compacts != 1 || cold.compacts != 0 {
		t.Fatalf("CompactAbove compacted hot=%d cold=%d, want 1/0", hot.compacts, cold.compacts)
	}
	if err := rt.CompactAbove(-1); err != nil {
		t.Fatal(err)
	}
	if hot.compacts != 1 {
		t.Fatal("negative threshold still compacted")
	}
	if err := rt.Compact(); err != nil {
		t.Fatal(err)
	}
	if hot.compacts != 2 || cold.compacts != 1 {
		t.Fatalf("explicit Compact visited hot=%d cold=%d, want 2/1", hot.compacts, cold.compacts)
	}
}

// failingShard wraps a Shard, forcing its mutating fan-out legs to
// fail with a fixed error.
type failingShard struct {
	Shard
	err error
}

func (f *failingShard) Compact() error                           { return f.err }
func (f *failingShard) DeleteRecords(keys []string) (int, error) { return 0, f.err }

// TestMutatingFanOutAggregatesErrors pins the joined-error shape of
// the mutating fan-outs: every failed shard appears in the error (one
// failing shard must not mask another), the error names the shard
// index, and healthy shards still do their work.
func TestMutatingFanOutAggregatesErrors(t *testing.T) {
	bad0 := &failingShard{Shard: NewLocal(store.New(store.NewMemoryBackend())), err: errors.New("disk full")}
	good := &gaugeShard{Shard: NewLocal(store.New(store.NewMemoryBackend()))}
	bad2 := &failingShard{Shard: NewLocal(store.New(store.NewMemoryBackend())), err: errors.New("remote gone")}
	rt, err := NewRouter(bad0, good, bad2)
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Compact()
	if err == nil {
		t.Fatal("Compact with two failing shards returned nil")
	}
	for _, want := range []string{"shard 0: disk full", "shard 2: remote gone"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error %q missing %q", err, want)
		}
	}
	if good.compacts != 1 {
		t.Fatalf("healthy shard compacted %d times, want 1 despite sibling failures", good.compacts)
	}
	if _, err := rt.DeleteRecords([]string{"k"}); err == nil || !strings.Contains(err.Error(), "shard 2: remote gone") {
		t.Fatalf("DeleteRecords error %v, want joined per-shard error", err)
	}
}

// TestQueryPageRejectsBadCompositeCursor pins the typed error for
// undecodable composite cursors — stale across a topology resize,
// truncated, or corrupted — so servers can fault them as client input
// rather than internal failures.
func TestQueryPageRejectsBadCompositeCursor(t *testing.T) {
	rt := memRouter(t, 2)
	recordSessions(t, rt, 1, 3)
	for _, cur := range []string{
		"sc1!",        // no shard count
		"sc1!x!a",     // non-numeric count
		"sc1!1!a!b",   // count disagrees with field count
		"sc1!3!a!b!c", // built for 3 shards, router has 2
		"sc1!2!%zz!a", // undecodable escape
	} {
		_, _, _, _, err := rt.QueryPage(&prep.Query{}, cur, 10)
		if !errors.Is(err, ErrBadCursor) {
			t.Errorf("cursor %q: err = %v, want ErrBadCursor", cur, err)
		}
	}
	// A plain storage-key cursor is not composite and must keep working.
	if _, _, _, _, err := rt.QueryPage(&prep.Query{}, "i/0000", 10); err != nil {
		t.Fatalf("plain cursor: %v", err)
	}
}

// refillingShard simulates a writer shipping to a shard's endpoint
// directly, outside the router: every drain page read finds one
// freshly landed record, so a sweep never observes the shard empty.
type refillingShard struct {
	Shard
	n int
}

func (r *refillingShard) QueryPage(q *prep.Query, after string, pageSize int) ([]core.Record, string, bool, *prep.QueryPlan, error) {
	r.n++
	rec := mkRec(seq.NewID(), "svc:external", r.n)
	return []core.Record{rec}, "", true, &prep.QueryPlan{}, nil
}

// TestDrainCapsSweepsAgainstExternalWriter pins the sweep cap: a shard
// kept non-empty by an external writer must fail the drain with a
// diagnosis instead of spinning forever; the records each sweep did
// move stay moved.
func TestDrainCapsSweepsAgainstExternalWriter(t *testing.T) {
	leaky := &refillingShard{Shard: NewLocal(store.New(store.NewMemoryBackend()))}
	rt, err := NewRouter(leaky, NewLocal(store.New(store.NewMemoryBackend())))
	if err != nil {
		t.Fatal(err)
	}
	moved, err := rt.Drain(0)
	if err == nil {
		t.Fatal("draining a shard an external writer keeps refilling should error")
	}
	if !strings.Contains(err.Error(), "external writer") {
		t.Fatalf("drain error %q does not diagnose the external writer", err)
	}
	if moved != maxDrainPasses {
		t.Fatalf("moved %d records before giving up, want one per sweep = %d", moved, maxDrainPasses)
	}
}

// pageCountingShard wraps a Shard counting QueryPage calls.
type pageCountingShard struct {
	Shard
	pages int
}

func (p *pageCountingShard) QueryPage(q *prep.Query, after string, pageSize int) ([]core.Record, string, bool, *prep.QueryPlan, error) {
	p.pages++
	return p.Shard.QueryPage(q, after, pageSize)
}

// TestQueryPageSkipsExhaustedShards pins the cursor's exhaustion
// marker: once a shard proved done and fully consumed, later pages of
// the walk must not re-query it (an empty re-plan per page, and on
// remote topologies a wasted round trip per page).
func TestQueryPageSkipsExhaustedShards(t *testing.T) {
	small := &pageCountingShard{Shard: NewLocal(store.New(store.NewMemoryBackend()))}
	big := NewLocal(store.New(store.NewMemoryBackend()))
	rt, err := NewRouter(small, big)
	if err != nil {
		t.Fatal(err)
	}
	// One record straight onto the small shard, many onto the big one.
	sid := seq.NewID()
	if _, _, err := small.Record("svc:enactor", []core.Record{mkRec(sid, "svc:a", 0)}); err != nil {
		t.Fatal(err)
	}
	recs := make([]core.Record, 0, 40)
	sid2 := seq.NewID()
	for j := 0; j < 40; j++ {
		recs = append(recs, mkRec(sid2, "svc:b", j))
	}
	if _, _, err := big.Record("svc:enactor", recs); err != nil {
		t.Fatal(err)
	}

	seen, after, pages := 0, "", 0
	for {
		page, next, done, _, err := rt.QueryPage(&prep.Query{}, after, 5)
		if err != nil {
			t.Fatal(err)
		}
		seen += len(page)
		pages++
		if done || next == "" {
			break
		}
		after = next
	}
	if seen != 41 {
		t.Fatalf("walk saw %d records, want 41", seen)
	}
	// The small shard exhausts within the first couple of pages; the
	// remaining ~7 pages of the walk must leave it alone.
	if small.pages > 3 {
		t.Fatalf("exhausted shard queried on %d of %d pages", small.pages, pages)
	}
}
