package shard

// Drain-safe paging: composite cursors carry the router's drain epoch,
// so a multi-page walk can never silently straddle a page move — it is
// rejected as ErrStaleCursor and restarted by the client from the last
// key it delivered. Limit-ed Totals stay exact across a crashed
// drain's overlap via presence-only key-union counting, and the paged
// result cache keys on the epoch so a cached cursor chain cannot be
// served against a post-drain topology.

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"preserv/internal/core"
	"preserv/internal/prep"
	"preserv/internal/store"
)

// collectWalk pages the router to exhaustion from the given cursor,
// appending onto got.
func collectWalk(t *testing.T, rt *Router, after string, pageSize int, got []core.Record) []core.Record {
	t.Helper()
	for steps := 0; ; steps++ {
		if steps > 100 {
			t.Fatal("paging did not terminate")
		}
		recs, next, done, _, err := rt.QueryPage(&prep.Query{}, after, pageSize)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, recs...)
		if done || next == "" {
			return got
		}
		after = next
	}
}

func assertExactKeys(t *testing.T, got, want []core.Record, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: walked %d records, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].StorageKey() != want[i].StorageKey() {
			t.Fatalf("%s: record %d is %s, want %s", label, i, got[i].StorageKey(), want[i].StorageKey())
		}
	}
}

// TestWalkSpanningDrainFencedByEpoch pins the tentpole contract: a
// composite cursor minted before a Drain is rejected as ErrStaleCursor
// — never resumed silently short — and the client-style restart (plain
// cursor at the last delivered key) completes the walk with exactly
// the committed record set.
func TestWalkSpanningDrainFencedByEpoch(t *testing.T) {
	rt := memRouter(t, 3)
	recordSessions(t, rt, 8, 5)
	// Small drain pages: the drain takes several epoch bumps, like a
	// real rebalance.
	rt.SetDrainPageSize(4)
	want, total, err := rt.Query(&prep.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if total != 40 {
		t.Fatalf("total %d, want 40", total)
	}

	epoch0 := rt.DrainEpoch()
	page1, next, done, _, err := rt.QueryPage(&prep.Query{}, "", 7)
	if err != nil || done || next == "" || len(page1) != 7 {
		t.Fatalf("first page: %d records done=%v next=%q err=%v", len(page1), done, next, err)
	}

	if _, err := rt.Drain(1); err != nil {
		t.Fatal(err)
	}
	if rt.DrainEpoch() <= epoch0 {
		t.Fatalf("drain did not advance the epoch: %d -> %d", epoch0, rt.DrainEpoch())
	}

	// The pre-drain cursor is stale, typed, and stays stale on replay.
	for i := 0; i < 2; i++ {
		if _, _, _, _, err := rt.QueryPage(&prep.Query{}, next, 7); !errors.Is(err, ErrStaleCursor) {
			t.Fatalf("pre-drain cursor replay %d: err=%v, want ErrStaleCursor", i, err)
		}
	}

	// Client-style restart: a plain cursor at the last delivered key.
	// Storage keys are shard-independent, so seek-after resumes exactly
	// where the walk stopped, whatever the drain moved.
	got := append([]core.Record(nil), page1...)
	got = collectWalk(t, rt, page1[len(page1)-1].StorageKey(), 7, got)
	assertExactKeys(t, got, want, "resumed walk")

	// A fresh post-drain walk is self-consistent end to end.
	assertExactKeys(t, collectWalk(t, rt, "", 7, nil), want, "fresh walk")
}

// flakyDeleteShard fails its first DeleteRecords calls, reproducing a
// drain that crashed between copying a page to the survivors and
// deleting it from the source.
type flakyDeleteShard struct {
	Shard
	failures int
}

func (f *flakyDeleteShard) DeleteRecords(keys []string) (int, error) {
	if f.failures > 0 {
		f.failures--
		return 0, fmt.Errorf("injected delete failure")
	}
	return f.Shard.DeleteRecords(keys)
}

// TestCrashedDrainOverlapExactLimitedTotal pins exact Limit-ed Totals
// over a crashed drain's unabsorbed overlap: the router remembers the
// failed drain, switches Limit-ed fan-outs to key-union counting, and
// returns to the fast summed path once a re-drain absorbs the twins.
func TestCrashedDrainOverlapExactLimitedTotal(t *testing.T) {
	flaky := &flakyDeleteShard{Shard: NewLocal(store.New(store.NewMemoryBackend())), failures: 1}
	rt, err := NewRouter(flaky, NewLocal(store.New(store.NewMemoryBackend())), NewLocal(store.New(store.NewMemoryBackend())))
	if err != nil {
		t.Fatal(err)
	}
	recordSessions(t, rt, 9, 4)
	rt.SetDrainPageSize(8)
	if cnt, err := rt.Shard(0).Count(); err != nil || cnt.Records == 0 {
		t.Fatalf("workload left shard 0 empty (records=%d err=%v); pick other session counts", cnt.Records, err)
	}
	if rt.OverlapSuspected() {
		t.Fatal("fresh router suspects overlap")
	}

	if _, err := rt.Drain(0); err == nil {
		t.Fatal("drain over a failing delete succeeded")
	}
	if !rt.OverlapSuspected() {
		t.Fatal("failed drain did not raise overlap suspicion")
	}

	// Limit-free answers are exact by merge-dedup alone; they are the
	// reference. Sanity: the overlap really exists (per-shard counts
	// exceed the union).
	want, wantTotal, err := rt.Query(&prep.Query{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for i := 0; i < rt.NumShards(); i++ {
		cnt, err := rt.Shard(i).Count()
		if err != nil {
			t.Fatal(err)
		}
		sum += cnt.Records
	}
	if sum <= wantTotal {
		t.Fatalf("no overlap to test: per-shard sum %d, union %d", sum, wantTotal)
	}

	for _, lim := range []int{1, 2, 5, wantTotal} {
		recs, total, err := rt.Query(&prep.Query{Limit: lim})
		if err != nil {
			t.Fatal(err)
		}
		if total != wantTotal {
			t.Fatalf("limit %d: scan Total %d, want exact %d", lim, total, wantTotal)
		}
		assertExactKeys(t, recs, want[:lim], fmt.Sprintf("limit %d scan", lim))
		precs, ptotal, _, err := rt.QueryPlanned(&prep.Query{Limit: lim})
		if err != nil {
			t.Fatal(err)
		}
		if ptotal != wantTotal {
			t.Fatalf("limit %d: planned Total %d, want exact %d", lim, ptotal, wantTotal)
		}
		assertExactKeys(t, precs, want[:lim], fmt.Sprintf("limit %d planned", lim))
	}

	// Healed: the re-drain completes, absorbs the twins, clears the
	// suspicion, and the fast summed path is exact again.
	if _, err := rt.Drain(0); err != nil {
		t.Fatal(err)
	}
	if rt.OverlapSuspected() {
		t.Fatal("completed re-drain left overlap suspicion")
	}
	if cnt, _ := rt.Shard(0).Count(); cnt.Records != 0 {
		t.Fatalf("re-drained shard still holds %d records", cnt.Records)
	}
	if _, total, err := rt.Query(&prep.Query{Limit: 3}); err != nil || total != wantTotal {
		t.Fatalf("post-redrain limited Total %d (err=%v), want %d", total, err, wantTotal)
	}
}

// TestPagedCacheKeyedByDrainEpoch pins the result-cache satellite: a
// paged entry cached before a drain cannot be served after it, even
// when the drain changed no shard's content generation (the no-op
// re-drain of an already-empty shard).
func TestPagedCacheKeyedByDrainEpoch(t *testing.T) {
	rt := memRouter(t, 3)
	recordSessions(t, rt, 6, 4)
	// Empty shard 2 so the second drain below is generation-neutral.
	if _, err := rt.Drain(2); err != nil {
		t.Fatal(err)
	}

	q := &prep.Query{}
	page1, next1, _, _, err := rt.QueryPage(q, "", 5)
	if err != nil || len(page1) == 0 || next1 == "" {
		t.Fatalf("first page: %d records next=%q err=%v", len(page1), next1, err)
	}
	if _, _, _, plan, err := rt.QueryPage(q, "", 5); err != nil || plan == nil || !plan.Cached {
		t.Fatalf("repeat first page not served from cache (plan=%+v err=%v)", plan, err)
	}
	hits0, _ := rt.ResultCacheStats()

	// A no-op drain: no records move, no generation changes — only the
	// epoch advances.
	if _, err := rt.Drain(2); err != nil {
		t.Fatal(err)
	}

	page1b, next2, _, _, err := rt.QueryPage(q, "", 5)
	if err != nil {
		t.Fatal(err)
	}
	hits1, _ := rt.ResultCacheStats()
	if hits1 != hits0 {
		t.Fatal("post-drain first page served from the pre-drain cache entry")
	}
	assertExactKeys(t, page1b, page1, "post-drain first page")

	// The pre-drain cursor chain is dead; the post-drain one works.
	if _, _, _, _, err := rt.QueryPage(q, next1, 5); !errors.Is(err, ErrStaleCursor) {
		t.Fatalf("pre-drain cached cursor accepted: err=%v", err)
	}
	if _, _, _, _, err := rt.QueryPage(q, next2, 5); err != nil {
		t.Fatal(err)
	}
	// And the fresh entry caches under the new epoch.
	if _, _, _, plan, err := rt.QueryPage(q, "", 5); err != nil || plan == nil || !plan.Cached {
		t.Fatalf("post-drain first page did not re-cache (plan=%+v err=%v)", plan, err)
	}
}

// refillShard simulates an external writer shipping records to a
// shard's endpoint directly: every drain sweep finds one more record.
type refillShard struct {
	Shard
	url string
	rec core.Record
}

func (r refillShard) URL() string { return r.url }

func (r refillShard) QueryPage(q *prep.Query, after string, pageSize int) ([]core.Record, string, bool, *prep.QueryPlan, error) {
	return []core.Record{r.rec}, "", true, nil, nil
}

// TestDrainCapErrorNamesEndpoint pins the sweep-cap satellite: the
// external-writer diagnosis names the capped shard's endpoint, not
// just its index.
func TestDrainCapErrorNamesEndpoint(t *testing.T) {
	sid := seq.NewID()
	refill := refillShard{
		Shard: NewLocal(store.New(store.NewMemoryBackend())),
		url:   "http://shard-b.example:8081/preserv",
		rec:   mkRec(sid, "svc:gzip", 0),
	}
	rt, err := NewRouter(NewLocal(store.New(store.NewMemoryBackend())), refill)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Drain(1)
	if err == nil {
		t.Fatal("draining a refilling shard succeeded")
	}
	if !strings.Contains(err.Error(), refill.url) {
		t.Fatalf("sweep-cap error does not name the shard's endpoint: %v", err)
	}
	// Every page cycle completed, so the cap leaves no overlap.
	if rt.OverlapSuspected() {
		t.Fatal("sweep cap raised overlap suspicion")
	}

	// An embedded shard reports its position instead.
	rt2 := memRouter(t, 2)
	// Reuse the refill behaviour without a URL.
	rt2.shards[1] = refillShard{Shard: rt2.shards[1], rec: mkRec(seq.NewID(), "svc:ppmz", 0)}
	_, err = rt2.Drain(1)
	if err == nil {
		t.Fatal("draining a refilling embedded shard succeeded")
	}
	if !strings.Contains(err.Error(), "embedded shard 1") {
		t.Fatalf("sweep-cap error does not describe the embedded shard: %v", err)
	}
}
