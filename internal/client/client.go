// Package client provides the actor-side recording API for PReP. The
// protocol specifies how p-assertions are recorded but deliberately not
// when; this package implements the strategies the paper evaluates in
// Figure 4:
//
//   - NullRecorder: no recording (the baseline);
//   - SyncRecorder: each p-assertion is shipped to the store by a web
//     service invocation as execution proceeds;
//   - AsyncRecorder: p-assertions are accumulated locally in a file and
//     shipped to the store after execution, in batches — the strategy
//     whose overhead the paper reports as staying under 10%.
//
// An AsyncRecorder may ship to several store endpoints round-robin,
// which implements the paper's future-work "distributed PReServ" and is
// measured by experiment E8.
package client

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"preserv/internal/core"
	"preserv/internal/obs"
	"preserv/internal/preserv"
	"preserv/internal/shard"
)

// Recorder accepts p-assertions from an actor. Implementations must be
// safe for concurrent use by the workflow engine's parallel activities.
type Recorder interface {
	// Record accepts p-assertions for eventual storage.
	Record(records ...core.Record) error
	// Flush ships anything pending and blocks until it is stored.
	Flush() error
	// Close flushes and releases resources.
	Close() error
}

// Stats reports how much a recorder has processed.
type Stats struct {
	// Recorded counts p-assertions accepted by Record.
	Recorded int64
	// Shipped counts p-assertions confirmed stored.
	Shipped int64
	// FlushRetries counts re-ship attempts of sealed journal files whose
	// earlier ship failed — the signal that an endpoint is flapping.
	FlushRetries int64
}

// StatsReporter is implemented by recorders that track Stats.
type StatsReporter interface {
	Stats() Stats
}

// ErrRejected is returned when the store refuses records.
var ErrRejected = errors.New("client: store rejected records")

// NullRecorder drops all records: the paper's "without recording
// p-assertions" configuration.
type NullRecorder struct{}

// Record implements Recorder.
func (NullRecorder) Record(...core.Record) error { return nil }

// Flush implements Recorder.
func (NullRecorder) Flush() error { return nil }

// Close implements Recorder.
func (NullRecorder) Close() error { return nil }

// SyncRecorder ships every Record call immediately by direct service
// invocation of the provenance store.
type SyncRecorder struct {
	client   *preserv.Client
	asserter core.ActorID
	recorded atomic.Int64
	shipped  atomic.Int64
}

// NewSyncRecorder returns a synchronous recorder for the given asserter.
func NewSyncRecorder(c *preserv.Client, asserter core.ActorID) *SyncRecorder {
	return &SyncRecorder{client: c, asserter: asserter}
}

// Record implements Recorder.
func (r *SyncRecorder) Record(records ...core.Record) error {
	if len(records) == 0 {
		return nil
	}
	r.recorded.Add(int64(len(records)))
	resp, err := r.client.Record(r.asserter, records)
	if err != nil {
		return err
	}
	r.shipped.Add(int64(resp.Accepted))
	if len(resp.Rejects) > 0 {
		return fmt.Errorf("%w: %d rejects, first: %s", ErrRejected, len(resp.Rejects), resp.Rejects[0].Reason)
	}
	return nil
}

// Flush implements Recorder (synchronous recording has nothing pending).
func (r *SyncRecorder) Flush() error { return nil }

// Close implements Recorder.
func (r *SyncRecorder) Close() error { return nil }

// Stats implements StatsReporter.
func (r *SyncRecorder) Stats() Stats {
	return Stats{Recorded: r.recorded.Load(), Shipped: r.shipped.Load()}
}

// DefaultBatchSize is how many p-assertions an AsyncRecorder ships per
// store invocation during Flush.
const DefaultBatchSize = 100

// DefaultFlushConcurrency is how many record batches an AsyncRecorder
// keeps in flight at once during Flush.
const DefaultFlushConcurrency = 4

// AsyncRecorder accumulates p-assertions in a local journal file and
// ships them on Flush. Record is cheap — "p-assertion recording may
// require just a few milliseconds to prepare a record to be temporarily
// stored in a file and submitted asynchronously".
//
// Journals rotate: a flush first SEALS the active journal — an O(1)
// rename under the record lock — then ships the sealed file with no
// record lock held, while new Record calls append to a fresh active
// journal. Recording therefore never waits on network shipping, and a
// failed ship re-ships one sealed file instead of the whole backlog.
// Sealed files left behind by a crash (the recorder died mid-rotation
// or mid-ship) are adopted on the next open and re-enter the pending
// backlog.
//
// Shipping is a streaming pipeline: the sealed journal is decoded
// incrementally and batches ship through a bounded pool of concurrent
// POSTs, batches striped round-robin across the configured endpoints.
// The bounded channel between decoder and shippers is the backpressure
// — at most roughly 2× the concurrency's worth of batches is ever
// materialised, however large the backlog grew.
type AsyncRecorder struct {
	// provlint:lock-order 20
	mu          sync.Mutex
	asserter    core.ActorID
	clients     []*preserv.Client
	journal     *os.File
	bw          *bufio.Writer
	enc         *gob.Encoder
	path        string
	batchSize   int
	concurrency int
	// pending is the total backlog: records in the active journal
	// (activeCount) plus every sealed journal's count.
	pending     int64
	activeCount int64
	// sealSeq numbers sealed journal files; sealed lists them
	// oldest-first. Both are guarded by mu; a sealed file's contents are
	// only touched by the shipper holding shipMu.
	sealSeq uint64
	sealed  []*sealedJournal
	// shipMu serialises shippers (background auto-flush, explicit Flush,
	// Close) against each other. Ordered above mu: a shipper takes
	// shipMu first and mu only in short sections, so Record calls keep
	// flowing while a ship is on the wire.
	// provlint:lock-order 10
	shipMu sync.Mutex
	// flushRetries counts re-ship attempts of sealed files whose earlier
	// ship failed (Stats.FlushRetries).
	flushRetries atomic.Int64
	recorded     atomic.Int64
	// shipped counts p-assertions confirmed stored. Workers add to it
	// live during a ship; a failed ship rolls it back to the value it
	// had when that sealed file's ship started (the file is kept whole,
	// so the retry re-ships and re-counts everything — without the
	// rollback every retried batch would double-count, since the store
	// accepts idempotent re-records, and Shipped could exceed Recorded).
	shipped atomic.Int64
	// rr is the round-robin endpoint cursor. It lives on the recorder —
	// not inside one flush — so consecutive flushes continue around the
	// endpoint ring instead of each restarting at endpoint 0, which
	// under small frequent auto-flushes starved every endpoint but the
	// first.
	rr atomic.Uint64
	// sharded switches endpoint routing from round-robin striping to
	// session-affine placement: each record ships to the endpoint its
	// affinity hash names (shard.Affinity over the endpoint list), the
	// same mapping a shard.Router with that topology uses — so a
	// sharded front-end finds every session's records already home.
	sharded bool
	closed  bool
	// autoFlushAt triggers a background flush once pending reaches it
	// (0 disables); flushing marks one in flight so Record never stacks
	// a second goroutine behind it. retryAt is the failure backoff:
	// after a failed background flush it holds the backlog level that
	// must accumulate before another attempt, so a dead endpoint costs
	// one failed flush per threshold's worth of new records instead of
	// one O(journal) attempt per Record call.
	autoFlushAt int64
	retryAt     int64
	flushing    bool
	// autoFlushErr keeps the most recent background-flush failure for
	// AutoFlushErr. The journal itself is kept whole on failure, so the
	// error is informational: the next flush (background or explicit)
	// re-ships everything.
	autoFlushErr error
	// reg holds the recorder's telemetry: flush latency and the journal
	// backlog gauge. The gauge mirrors pending so an operator scraping
	// the recorder's registry sees the backlog without taking r.mu.
	reg            *obs.Registry
	flushSec       *obs.Histogram
	journalPending *obs.Gauge
}

// sealedExt suffixes rotated-out journal files: <journal>.<seq>.sealed.
const sealedExt = ".sealed"

// sealedJournal is one rotated-out journal file awaiting shipment.
type sealedJournal struct {
	path string
	// count is how many records the file holds, for pending accounting.
	count int64
	// attempts counts failed ship attempts. Once it reaches
	// maxAutoShipAttempts the background shipper skips the file; an
	// explicit Flush or Close still retries it. Mutated only under
	// shipMu (and at construction, before any concurrency).
	attempts int
	// recovered marks a file adopted from a crashed predecessor: its
	// tail may be torn, so the shipper treats a decode error as the end
	// of the clean prefix rather than corruption.
	recovered bool
}

// maxAutoShipAttempts bounds how often the background shipper retries
// one sealed journal before leaving it for an explicit Flush/Close.
const maxAutoShipAttempts = 5

// countJournalRecords reports how many records decode cleanly from a
// journal file — the length of its clean prefix.
func countJournalRecords(path string) int64 {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	dec := gob.NewDecoder(bufio.NewReaderSize(f, 64<<10))
	var n int64
	for {
		var rec core.Record
		if err := dec.Decode(&rec); err != nil {
			return n
		}
		n++
	}
}

// NewAsyncRecorder creates an asynchronous recorder journaling to
// journalPath and shipping to the given endpoints (at least one).
// batchSize <= 0 selects DefaultBatchSize. Sealed journal files a
// crashed predecessor left beside journalPath are adopted: their clean
// prefixes re-enter the pending backlog and ship with the next flush.
func NewAsyncRecorder(asserter core.ActorID, journalPath string, batchSize int, clients ...*preserv.Client) (*AsyncRecorder, error) {
	if len(clients) == 0 {
		return nil, errors.New("client: async recorder needs at least one store endpoint")
	}
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	f, err := os.OpenFile(journalPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("client: opening journal: %w", err)
	}
	var (
		sealed  []*sealedJournal
		sealSeq uint64
		pending int64
	)
	dir, base := filepath.Split(journalPath)
	if dir == "" {
		dir = "."
	}
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			n := e.Name()
			if !strings.HasPrefix(n, base+".") || !strings.HasSuffix(n, sealedExt) {
				continue
			}
			seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(n, base+"."), sealedExt), 10, 64)
			if err != nil {
				continue
			}
			if seq > sealSeq {
				sealSeq = seq
			}
			sp := filepath.Join(dir, n)
			count := countJournalRecords(sp)
			if count == 0 {
				os.Remove(sp) // nothing recoverable in it
				continue
			}
			sealed = append(sealed, &sealedJournal{path: sp, count: count, recovered: true})
			pending += count
		}
		sort.Slice(sealed, func(i, j int) bool { return sealed[i].path < sealed[j].path })
	}
	bw := bufio.NewWriterSize(f, 64<<10)
	reg := obs.NewRegistry()
	r := &AsyncRecorder{
		asserter:       asserter,
		clients:        clients,
		journal:        f,
		bw:             bw,
		enc:            gob.NewEncoder(bw),
		path:           journalPath,
		batchSize:      batchSize,
		sealSeq:        sealSeq,
		sealed:         sealed,
		pending:        pending,
		reg:            reg,
		flushSec:       reg.Histogram("client_flush_seconds", nil),
		journalPending: reg.Gauge("client_journal_pending"),
	}
	r.journalPending.Set(pending)
	return r, nil
}

// Obs returns the recorder's telemetry registry: client_flush_seconds
// (latency of each flush, batching and shipping included) and
// client_journal_pending (the journal backlog, live).
func (r *AsyncRecorder) Obs() *obs.Registry { return r.reg }

// SetFlushConcurrency bounds how many batches Flush keeps in flight at
// once; n <= 0 restores DefaultFlushConcurrency.
func (r *AsyncRecorder) SetFlushConcurrency(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.concurrency = n
}

// SetShardedTopology declares whether the configured endpoints are
// shards of one partitioned store (true) or interchangeable replicas /
// independent stores (false, the default round-robin E8 striping).
// With a sharded topology, batches route session-affine: every record
// ships to shard.Affinity(record, len(endpoints)) — the endpoint a
// shard router over the same list calls the record's home — so
// session-scoped queries on the sharded front-end stay single-shard.
func (r *AsyncRecorder) SetShardedTopology(sharded bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sharded = sharded
}

// SetAutoFlushThreshold arranges for a background flush whenever the
// journal backlog reaches n pending records, so a long-running actor
// ships continuously instead of accumulating everything until an
// explicit Flush or Close. n <= 0 disables (the default — the paper's
// record-everything-then-ship-after-execution mode). Crossing the
// threshold seals the active journal (an O(1) rename) and ships the
// sealed file in the background, so Record calls keep flowing into a
// fresh journal while the ship is on the wire. A failed background
// ship keeps the sealed file whole (the next flush re-ships,
// idempotent recording absorbs the overlap) and is reported by
// AutoFlushErr.
func (r *AsyncRecorder) SetAutoFlushThreshold(n int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.autoFlushAt = n
	r.retryAt = 0
}

// AutoFlushErr returns (and clears) the most recent background-flush
// failure, nil if none since the last call.
func (r *AsyncRecorder) AutoFlushErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.autoFlushErr
	r.autoFlushErr = nil
	return err
}

// maybeAutoFlushLocked seals the active journal and spawns the
// background shipper when the backlog crossed the threshold and none is
// already in flight. The seal is O(1) (rename + reopen) so the Record
// call paying for it barely notices; the shipping happens off-lock.
// Callers hold r.mu.
//
// provlint:requires mu
func (r *AsyncRecorder) maybeAutoFlushLocked() {
	if r.autoFlushAt <= 0 || r.pending < r.autoFlushAt || r.pending < r.retryAt || r.flushing || r.closed {
		return
	}
	if err := r.sealActiveLocked(); err != nil {
		r.autoFlushErr = err
		return
	}
	r.flushing = true
	go func() {
		span := r.reg.Tracer().StartSpan("client.flush")
		err := r.shipSealed(false)
		span.Observe(r.flushSec, err)
		r.mu.Lock()
		defer r.mu.Unlock()
		r.flushing = false
		if err != nil {
			r.autoFlushErr = err
			// Back off: the sealed files are whole, so re-attempting on
			// the very next Record would just replay the same failure.
			// Wait for another threshold's worth of backlog first.
			r.retryAt = r.pending + r.autoFlushAt
		} else {
			r.retryAt = 0
		}
	}()
}

// Record implements Recorder: it only appends to the local journal.
func (r *AsyncRecorder) Record(records ...core.Record) error {
	if len(records) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return errors.New("client: recorder closed")
	}
	for i := range records {
		if err := r.enc.Encode(&records[i]); err != nil {
			return fmt.Errorf("client: journaling record: %w", err)
		}
	}
	r.activeCount += int64(len(records))
	r.pending += int64(len(records))
	r.journalPending.Set(r.pending)
	r.recorded.Add(int64(len(records)))
	r.maybeAutoFlushLocked()
	return nil
}

// Rotate seals the active journal — an O(1) rename — without shipping
// it: the records become a sealed file the next flush (background or
// explicit) ships. Exposed for tests and crash harnesses that need the
// mid-rotation on-disk state.
func (r *AsyncRecorder) Rotate() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return errors.New("client: recorder closed")
	}
	return r.sealActiveLocked()
}

// sealActiveLocked rotates the active journal out: flush the buffer,
// rename the file to <journal>.<seq>.sealed, and start a fresh journal
// (with a fresh gob stream — each sealed file must decode standalone).
// No-op when the active journal is empty. Callers hold r.mu.
//
// provlint:requires mu
func (r *AsyncRecorder) sealActiveLocked() error {
	if r.activeCount == 0 {
		return nil
	}
	if err := r.bw.Flush(); err != nil {
		return fmt.Errorf("client: flushing journal buffer: %w", err)
	}
	if err := r.journal.Close(); err != nil {
		return fmt.Errorf("client: closing journal for rotation: %w", err)
	}
	r.sealSeq++
	sp := fmt.Sprintf("%s.%06d%s", r.path, r.sealSeq, sealedExt)
	if err := os.Rename(r.path, sp); err != nil {
		// The records still sit at r.path; reopen it and continue the
		// same gob stream (the encoder survives a bw retarget) so the
		// recorder stays usable.
		r.sealSeq--
		f, oerr := os.OpenFile(r.path, os.O_RDWR|os.O_CREATE, 0o644)
		if oerr == nil {
			if _, oerr = f.Seek(0, io.SeekEnd); oerr == nil {
				r.journal = f
				r.bw.Reset(f)
			}
		}
		return fmt.Errorf("client: sealing journal: %w", err)
	}
	f, err := os.OpenFile(r.path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("client: reopening journal after rotation: %w", err)
	}
	r.journal = f
	r.bw.Reset(f)
	r.enc = gob.NewEncoder(r.bw)
	r.sealed = append(r.sealed, &sealedJournal{path: sp, count: r.activeCount})
	r.activeCount = 0
	return nil
}

// Flush seals the active journal and ships every sealed file to the
// configured endpoints in batches, striped round-robin when several
// endpoints are configured. Shipped files are removed. Unlike the
// background shipper, an explicit Flush retries even sealed files that
// have exhausted their automatic attempt budget.
func (r *AsyncRecorder) Flush() error {
	r.mu.Lock()
	if err := r.sealActiveLocked(); err != nil {
		r.mu.Unlock()
		return err
	}
	pending := r.pending
	r.mu.Unlock()
	if pending == 0 {
		return nil
	}
	span := r.reg.Tracer().StartSpan("client.flush").
		SetAttr("pending", strconv.FormatInt(pending, 10))
	err := r.shipSealed(true)
	span.Observe(r.flushSec, err)
	if err == nil {
		r.mu.Lock()
		r.retryAt = 0 // the endpoint evidently recovered
		r.mu.Unlock()
	}
	return err
}

// shipSealed ships sealed journals oldest-first until none remain (or
// one fails). With all=false — the background shipper — files that have
// exhausted maxAutoShipAttempts are skipped so a poisoned file cannot
// wedge the pipeline; all=true retries everything. Each shipped file is
// deducted from pending and removed. Callers must NOT hold r.mu.
func (r *AsyncRecorder) shipSealed(all bool) error {
	r.shipMu.Lock()
	defer r.shipMu.Unlock()
	for {
		r.mu.Lock()
		var sj *sealedJournal
		for _, c := range r.sealed {
			if all || c.attempts < maxAutoShipAttempts {
				sj = c
				break
			}
		}
		workers, sharded := r.concurrency, r.sharded
		r.mu.Unlock()
		if sj == nil {
			return nil
		}
		if sj.attempts > 0 {
			r.flushRetries.Add(1)
		}
		if err := r.shipJournal(sj, workers, sharded); err != nil {
			sj.attempts++
			return err
		}
		r.mu.Lock()
		for i, c := range r.sealed {
			if c == sj {
				r.sealed = append(r.sealed[:i], r.sealed[i+1:]...)
				break
			}
		}
		r.pending -= sj.count
		r.journalPending.Set(r.pending)
		r.mu.Unlock()
		os.Remove(sj.path)
	}
}

// shipJournal decodes one sealed journal and ships its batches through
// the bounded worker pipeline. On failure the file is left whole and
// the shipped counter rolls back to this ship's starting point.
func (r *AsyncRecorder) shipJournal(sj *sealedJournal, workers int, sharded bool) (err error) {
	f, err := os.Open(sj.path)
	if err != nil {
		return fmt.Errorf("client: opening sealed journal: %w", err)
	}
	defer f.Close()
	dec := gob.NewDecoder(bufio.NewReaderSize(f, 64<<10))

	if workers <= 0 {
		workers = DefaultFlushConcurrency
	}

	// shippedBase is this ship's rollback point: workers add confirmed
	// batches to r.shipped as they land (so Stats sees live progress),
	// and a failed ship restores the starting value — the file is kept
	// whole, the retry re-ships everything, and counting any batch
	// twice would let Shipped exceed Recorded (the store accepts
	// idempotent re-records as accepted).
	shippedBase := r.shipped.Load()

	// Decode → ship pipeline. The channel's bound is the backpressure:
	// once every worker is mid-POST and the queue is full, the decoder
	// blocks instead of materialising the rest of the backlog. Each
	// shipment names its endpoint: -1 means "next around the ring"
	// (round-robin striping, resolved by the worker off the recorder's
	// persistent cursor), >= 0 pins a sharded batch to its home shard.
	type shipment struct {
		endpoint int
		records  []core.Record
	}
	batches := make(chan shipment, workers)
	var (
		wg       sync.WaitGroup
		failed   atomic.Bool
		errOnce  sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errOnce.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errOnce.Unlock()
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range batches {
				if failed.Load() {
					continue // drain the channel without shipping
				}
				ci := b.endpoint
				if ci < 0 {
					// Round-robin striping (E8's distributed submission),
					// continuing where the previous flush left the ring.
					ci = int(r.rr.Add(1)-1) % len(r.clients)
				}
				resp, err := r.clients[ci].Record(r.asserter, b.records)
				if err != nil {
					fail(err)
					continue
				}
				r.shipped.Add(int64(resp.Accepted))
				if len(resp.Rejects) > 0 {
					fail(fmt.Errorf("%w: %d rejects, first: %s",
						ErrRejected, len(resp.Rejects), resp.Rejects[0].Reason))
				}
			}
		}()
	}

	var decodeErr error
	// Round-robin mode fills one rolling batch; sharded mode fills one
	// per endpoint (a record's home shard is fixed by its affinity
	// hash), each shipping independently as it reaches batchSize.
	perEndpoint := make([][]core.Record, len(r.clients))
	var rolling []core.Record
	emit := func(ci int, recs []core.Record) {
		batches <- shipment{endpoint: ci, records: recs}
	}
	for !failed.Load() {
		var rec core.Record
		if err := dec.Decode(&rec); err != nil {
			if err != io.EOF && !sj.recovered {
				// A recovered file may end in a torn tail (the writer
				// crashed mid-encode): its clean prefix ships, the tail
				// is gone either way. A file this process sealed was
				// fully flushed before the rename, so any decode error
				// there is real corruption.
				decodeErr = fmt.Errorf("client: reading journal: %w", err)
			}
			break
		}
		if sharded {
			ci := shard.Affinity(&rec, len(r.clients))
			perEndpoint[ci] = append(perEndpoint[ci], rec)
			if len(perEndpoint[ci]) >= r.batchSize {
				emit(ci, perEndpoint[ci])
				perEndpoint[ci] = nil
			}
		} else {
			rolling = append(rolling, rec)
			if len(rolling) >= r.batchSize {
				emit(-1, rolling)
				rolling = nil
			}
		}
	}
	if decodeErr == nil && !failed.Load() {
		if len(rolling) > 0 {
			emit(-1, rolling)
		}
		for ci, recs := range perEndpoint {
			if len(recs) > 0 {
				emit(ci, recs)
			}
		}
	}
	close(batches)
	wg.Wait()
	errOnce.Lock()
	err = firstErr
	errOnce.Unlock()
	if decodeErr != nil {
		err = decodeErr
	}
	if err != nil {
		// The sealed file is kept whole: the retry re-ships everything
		// and the store's idempotent recording absorbs the overlap — so
		// the shipped counter must forget this attempt's partial
		// progress, or the retry would count those batches twice.
		r.shipped.Store(shippedBase)
		return err
	}
	return nil
}

// Pending reports how many records await shipping (active journal plus
// sealed files).
func (r *AsyncRecorder) Pending() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pending
}

// Close flushes, then closes and removes the journal files — including
// sealed files whose final ship failed (matching the previous
// semantics: Close never leaves journals behind).
func (r *AsyncRecorder) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	sealErr := r.sealActiveLocked()
	r.closed = true
	r.mu.Unlock()

	var shipErr error
	if sealErr == nil {
		shipErr = r.shipSealed(true)
	}

	r.shipMu.Lock()
	r.mu.Lock()
	closeErr := r.journal.Close()
	os.Remove(r.path)
	for _, sj := range r.sealed {
		os.Remove(sj.path)
	}
	r.sealed = nil
	r.mu.Unlock()
	r.shipMu.Unlock()

	if sealErr != nil {
		return sealErr
	}
	if shipErr != nil {
		return shipErr
	}
	return closeErr
}

// Stats implements StatsReporter.
func (r *AsyncRecorder) Stats() Stats {
	return Stats{
		Recorded:     r.recorded.Load(),
		Shipped:      r.shipped.Load(),
		FlushRetries: r.flushRetries.Load(),
	}
}
