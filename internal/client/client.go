// Package client provides the actor-side recording API for PReP. The
// protocol specifies how p-assertions are recorded but deliberately not
// when; this package implements the strategies the paper evaluates in
// Figure 4:
//
//   - NullRecorder: no recording (the baseline);
//   - SyncRecorder: each p-assertion is shipped to the store by a web
//     service invocation as execution proceeds;
//   - AsyncRecorder: p-assertions are accumulated locally in a file and
//     shipped to the store after execution, in batches — the strategy
//     whose overhead the paper reports as staying under 10%.
//
// An AsyncRecorder may ship to several store endpoints round-robin,
// which implements the paper's future-work "distributed PReServ" and is
// measured by experiment E8.
package client

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"preserv/internal/core"
	"preserv/internal/preserv"
)

// Recorder accepts p-assertions from an actor. Implementations must be
// safe for concurrent use by the workflow engine's parallel activities.
type Recorder interface {
	// Record accepts p-assertions for eventual storage.
	Record(records ...core.Record) error
	// Flush ships anything pending and blocks until it is stored.
	Flush() error
	// Close flushes and releases resources.
	Close() error
}

// Stats reports how much a recorder has processed.
type Stats struct {
	// Recorded counts p-assertions accepted by Record.
	Recorded int64
	// Shipped counts p-assertions confirmed stored.
	Shipped int64
}

// StatsReporter is implemented by recorders that track Stats.
type StatsReporter interface {
	Stats() Stats
}

// ErrRejected is returned when the store refuses records.
var ErrRejected = errors.New("client: store rejected records")

// NullRecorder drops all records: the paper's "without recording
// p-assertions" configuration.
type NullRecorder struct{}

// Record implements Recorder.
func (NullRecorder) Record(...core.Record) error { return nil }

// Flush implements Recorder.
func (NullRecorder) Flush() error { return nil }

// Close implements Recorder.
func (NullRecorder) Close() error { return nil }

// SyncRecorder ships every Record call immediately by direct service
// invocation of the provenance store.
type SyncRecorder struct {
	client   *preserv.Client
	asserter core.ActorID
	recorded atomic.Int64
	shipped  atomic.Int64
}

// NewSyncRecorder returns a synchronous recorder for the given asserter.
func NewSyncRecorder(c *preserv.Client, asserter core.ActorID) *SyncRecorder {
	return &SyncRecorder{client: c, asserter: asserter}
}

// Record implements Recorder.
func (r *SyncRecorder) Record(records ...core.Record) error {
	if len(records) == 0 {
		return nil
	}
	r.recorded.Add(int64(len(records)))
	resp, err := r.client.Record(r.asserter, records)
	if err != nil {
		return err
	}
	r.shipped.Add(int64(resp.Accepted))
	if len(resp.Rejects) > 0 {
		return fmt.Errorf("%w: %d rejects, first: %s", ErrRejected, len(resp.Rejects), resp.Rejects[0].Reason)
	}
	return nil
}

// Flush implements Recorder (synchronous recording has nothing pending).
func (r *SyncRecorder) Flush() error { return nil }

// Close implements Recorder.
func (r *SyncRecorder) Close() error { return nil }

// Stats implements StatsReporter.
func (r *SyncRecorder) Stats() Stats {
	return Stats{Recorded: r.recorded.Load(), Shipped: r.shipped.Load()}
}

// DefaultBatchSize is how many p-assertions an AsyncRecorder ships per
// store invocation during Flush.
const DefaultBatchSize = 100

// AsyncRecorder accumulates p-assertions in a local journal file and
// ships them on Flush. Record is cheap — "p-assertion recording may
// require just a few milliseconds to prepare a record to be temporarily
// stored in a file and submitted asynchronously".
type AsyncRecorder struct {
	mu        sync.Mutex
	asserter  core.ActorID
	clients   []*preserv.Client
	journal   *os.File
	bw        *bufio.Writer
	enc       *gob.Encoder
	path      string
	batchSize int
	pending   int64
	recorded  atomic.Int64
	shipped   atomic.Int64
	closed    bool
}

// NewAsyncRecorder creates an asynchronous recorder journaling to
// journalPath and shipping to the given endpoints (at least one).
// batchSize <= 0 selects DefaultBatchSize.
func NewAsyncRecorder(asserter core.ActorID, journalPath string, batchSize int, clients ...*preserv.Client) (*AsyncRecorder, error) {
	if len(clients) == 0 {
		return nil, errors.New("client: async recorder needs at least one store endpoint")
	}
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	f, err := os.OpenFile(journalPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("client: opening journal: %w", err)
	}
	bw := bufio.NewWriterSize(f, 64<<10)
	return &AsyncRecorder{
		asserter:  asserter,
		clients:   clients,
		journal:   f,
		bw:        bw,
		enc:       gob.NewEncoder(bw),
		path:      journalPath,
		batchSize: batchSize,
	}, nil
}

// Record implements Recorder: it only appends to the local journal.
func (r *AsyncRecorder) Record(records ...core.Record) error {
	if len(records) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return errors.New("client: recorder closed")
	}
	for i := range records {
		if err := r.enc.Encode(&records[i]); err != nil {
			return fmt.Errorf("client: journaling record: %w", err)
		}
	}
	r.pending += int64(len(records))
	r.recorded.Add(int64(len(records)))
	return nil
}

// Flush ships all journaled records to the configured endpoints in
// batches, striped round-robin when several endpoints are configured,
// then truncates the journal.
func (r *AsyncRecorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flushLocked()
}

func (r *AsyncRecorder) flushLocked() error {
	if r.pending == 0 {
		return nil
	}
	if err := r.bw.Flush(); err != nil {
		return fmt.Errorf("client: flushing journal buffer: %w", err)
	}
	if _, err := r.journal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("client: rewinding journal: %w", err)
	}
	dec := gob.NewDecoder(bufio.NewReaderSize(r.journal, 64<<10))
	var batches [][]core.Record
	var batch []core.Record
	for {
		var rec core.Record
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				break
			}
			return fmt.Errorf("client: reading journal: %w", err)
		}
		batch = append(batch, rec)
		if len(batch) >= r.batchSize {
			batches = append(batches, batch)
			batch = nil
		}
	}
	if len(batch) > 0 {
		batches = append(batches, batch)
	}

	// Stripe batches across endpoints; each endpoint ships its share
	// sequentially, endpoints proceed in parallel (E8's distributed
	// submission).
	perClient := make([][][]core.Record, len(r.clients))
	for i, b := range batches {
		ci := i % len(r.clients)
		perClient[ci] = append(perClient[ci], b)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(r.clients))
	for ci := range r.clients {
		if len(perClient[ci]) == 0 {
			continue
		}
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for _, b := range perClient[ci] {
				resp, err := r.clients[ci].Record(r.asserter, b)
				if err != nil {
					errs[ci] = err
					return
				}
				r.shipped.Add(int64(resp.Accepted))
				if len(resp.Rejects) > 0 {
					errs[ci] = fmt.Errorf("%w: %d rejects, first: %s",
						ErrRejected, len(resp.Rejects), resp.Rejects[0].Reason)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// All shipped: reset the journal.
	if err := r.journal.Truncate(0); err != nil {
		return fmt.Errorf("client: truncating journal: %w", err)
	}
	if _, err := r.journal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("client: rewinding journal: %w", err)
	}
	r.bw.Reset(r.journal)
	r.enc = gob.NewEncoder(r.bw)
	r.pending = 0
	return nil
}

// Pending reports how many records await shipping.
func (r *AsyncRecorder) Pending() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pending
}

// Close flushes, closes and removes the journal.
func (r *AsyncRecorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	flushErr := r.flushLocked()
	r.closed = true
	closeErr := r.journal.Close()
	os.Remove(r.path)
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Stats implements StatsReporter.
func (r *AsyncRecorder) Stats() Stats {
	return Stats{Recorded: r.recorded.Load(), Shipped: r.shipped.Load()}
}
