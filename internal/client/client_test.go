package client

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
	"preserv/internal/preserv"
	"preserv/internal/store"
)

var seq = &ids.SeqSource{Prefix: 0xF1}

func startStore(t *testing.T) (*preserv.Client, *preserv.Service) {
	t.Helper()
	svc := preserv.NewService(store.New(store.NewMemoryBackend()))
	srv, err := preserv.Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return preserv.NewClient(srv.URL, nil), svc
}

func mkRecord(session ids.ID) core.Record {
	in := core.Interaction{ID: seq.NewID(), Sender: "svc:enactor", Receiver: "svc:gzip", Operation: "run"}
	return *core.NewInteractionRecord(&core.InteractionPAssertion{
		LocalID:     "x",
		Asserter:    in.Sender,
		Interaction: in,
		View:        core.SenderView,
		Request:     core.Message{Name: "invoke"},
		Response:    core.Message{Name: "result"},
		Groups:      []core.GroupRef{{Type: core.GroupSession, ID: session, Seq: 1}},
		Timestamp:   time.Now().UTC(),
	})
}

func TestNullRecorder(t *testing.T) {
	var r NullRecorder
	if err := r.Record(mkRecord(seq.NewID())); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncRecorderShipsImmediately(t *testing.T) {
	pc, svc := startStore(t)
	r := NewSyncRecorder(pc, "svc:enactor")
	session := seq.NewID()
	if err := r.Record(mkRecord(session), mkRecord(session)); err != nil {
		t.Fatal(err)
	}
	// No flush needed: records must already be in the store.
	cnt, err := pc.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Interactions != 2 {
		t.Fatalf("store has %d interactions before Flush, want 2", cnt.Interactions)
	}
	st := r.Stats()
	if st.Recorded != 2 || st.Shipped != 2 {
		t.Errorf("stats = %+v", st)
	}
	if svc.Stats().RecordRequests != 1 {
		t.Errorf("sync recorder should have made 1 request, got %d", svc.Stats().RecordRequests)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncRecorderRejects(t *testing.T) {
	pc, _ := startStore(t)
	r := NewSyncRecorder(pc, "svc:enactor")
	bad := mkRecord(seq.NewID())
	bad.Interaction.LocalID = ""
	err := r.Record(bad)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestSyncRecorderEmptyCall(t *testing.T) {
	pc, svc := startStore(t)
	r := NewSyncRecorder(pc, "svc:enactor")
	if err := r.Record(); err != nil {
		t.Fatal(err)
	}
	if svc.Stats().RecordRequests != 0 {
		t.Error("empty Record must not invoke the store")
	}
}

func TestAsyncRecorderDefersShipping(t *testing.T) {
	pc, _ := startStore(t)
	journal := filepath.Join(t.TempDir(), "journal.gob")
	r, err := NewAsyncRecorder("svc:enactor", journal, 10, pc)
	if err != nil {
		t.Fatal(err)
	}
	session := seq.NewID()
	for i := 0; i < 25; i++ {
		if err := r.Record(mkRecord(session)); err != nil {
			t.Fatal(err)
		}
	}
	cnt, err := pc.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Interactions != 0 {
		t.Fatalf("async recorder shipped %d records before Flush", cnt.Interactions)
	}
	if r.Pending() != 25 {
		t.Fatalf("Pending = %d, want 25", r.Pending())
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	cnt, err = pc.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Interactions != 25 {
		t.Fatalf("after Flush store has %d, want 25", cnt.Interactions)
	}
	if r.Pending() != 0 {
		t.Errorf("Pending after flush = %d", r.Pending())
	}
	st := r.Stats()
	if st.Recorded != 25 || st.Shipped != 25 {
		t.Errorf("stats = %+v", st)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncRecorderFlushTwice(t *testing.T) {
	pc, _ := startStore(t)
	journal := filepath.Join(t.TempDir(), "j.gob")
	r, err := NewAsyncRecorder("svc:enactor", journal, 0, pc)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	session := seq.NewID()
	r.Record(mkRecord(session))
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	// Second flush with nothing pending is a no-op.
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	// Records after a flush land in a fresh journal generation.
	r.Record(mkRecord(session))
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	cnt, _ := pc.Count()
	if cnt.Interactions != 2 {
		t.Fatalf("interactions = %d, want 2", cnt.Interactions)
	}
}

func TestAsyncRecorderCloseFlushes(t *testing.T) {
	pc, _ := startStore(t)
	journal := filepath.Join(t.TempDir(), "j.gob")
	r, err := NewAsyncRecorder("svc:enactor", journal, 0, pc)
	if err != nil {
		t.Fatal(err)
	}
	session := seq.NewID()
	r.Record(mkRecord(session), mkRecord(session))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	cnt, _ := pc.Count()
	if cnt.Interactions != 2 {
		t.Fatalf("Close did not flush: %d interactions", cnt.Interactions)
	}
	if err := r.Record(mkRecord(session)); err == nil {
		t.Error("Record after Close should fail")
	}
	if err := r.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestAsyncRecorderConcurrentRecord(t *testing.T) {
	pc, _ := startStore(t)
	journal := filepath.Join(t.TempDir(), "j.gob")
	r, err := NewAsyncRecorder("svc:enactor", journal, 50, pc)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	session := seq.NewID()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := r.Record(mkRecord(session)); err != nil {
					t.Errorf("Record: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	cnt, _ := pc.Count()
	if cnt.Interactions != 400 {
		t.Fatalf("interactions = %d, want 400", cnt.Interactions)
	}
}

func TestAsyncRecorderDistributedStores(t *testing.T) {
	// E8: parallel submission into several provenance store instances.
	var clients []*preserv.Client
	var services []*preserv.Service
	for i := 0; i < 4; i++ {
		pc, svc := startStore(t)
		clients = append(clients, pc)
		services = append(services, svc)
	}
	journal := filepath.Join(t.TempDir(), "j.gob")
	r, err := NewAsyncRecorder("svc:enactor", journal, 5, clients...)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	session := seq.NewID()
	for i := 0; i < 100; i++ {
		r.Record(mkRecord(session))
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	total := 0
	touched := 0
	for i, pc := range clients {
		cnt, err := pc.Count()
		if err != nil {
			t.Fatal(err)
		}
		total += cnt.Interactions
		if cnt.Interactions > 0 {
			touched++
		}
		_ = services[i]
	}
	if total != 100 {
		t.Fatalf("distributed total = %d, want 100", total)
	}
	if touched != 4 {
		t.Fatalf("only %d of 4 stores received records", touched)
	}
}

func TestAsyncRecorderNoEndpoints(t *testing.T) {
	if _, err := NewAsyncRecorder("a", filepath.Join(t.TempDir(), "j"), 0); err == nil {
		t.Error("no endpoints should be rejected")
	}
}

func TestAsyncRecorderBadJournalPath(t *testing.T) {
	pc, _ := startStore(t)
	if _, err := NewAsyncRecorder("a", filepath.Join(t.TempDir(), "missing", "j"), 0, pc); err == nil {
		t.Error("unwritable journal path should fail")
	}
}

func TestAsyncRecorderFlushFailureKeepsJournal(t *testing.T) {
	// Records must survive a failed flush so they can be re-shipped.
	dead := preserv.NewClient("http://127.0.0.1:1", nil)
	journal := filepath.Join(t.TempDir(), "j.gob")
	r, err := NewAsyncRecorder("svc:enactor", journal, 0, dead)
	if err != nil {
		t.Fatal(err)
	}
	session := seq.NewID()
	r.Record(mkRecord(session))
	if err := r.Flush(); err == nil {
		t.Fatal("flush to dead endpoint should fail")
	}
	if r.Pending() != 1 {
		t.Fatalf("Pending after failed flush = %d, want 1", r.Pending())
	}
	// Re-point is not supported; but a live endpoint recorder can pick up
	// where journaling left off in a fresh recorder — here we just check
	// the journal was not truncated.
}

func TestRecorderInterfaceCompliance(t *testing.T) {
	pc, _ := startStore(t)
	journal := filepath.Join(t.TempDir(), "j.gob")
	async, err := NewAsyncRecorder("a", journal, 0, pc)
	if err != nil {
		t.Fatal(err)
	}
	defer async.Close()
	for _, r := range []Recorder{NullRecorder{}, NewSyncRecorder(pc, "a"), async} {
		if r == nil {
			t.Fatal("nil recorder")
		}
	}
	var _ StatsReporter = NewSyncRecorder(pc, "a")
	var _ StatsReporter = async
}

func TestQueryThroughStoreAfterAsyncFlush(t *testing.T) {
	pc, _ := startStore(t)
	journal := filepath.Join(t.TempDir(), "j.gob")
	r, err := NewAsyncRecorder("svc:enactor", journal, 0, pc)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	session := seq.NewID()
	recs := []core.Record{mkRecord(session), mkRecord(session), mkRecord(session)}
	r.Record(recs...)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	got, total, err := pc.Query(&prep.Query{SessionID: session})
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 {
		t.Fatalf("query total = %d, want 3", total)
	}
	keys := map[string]bool{}
	for _, rec := range got {
		keys[rec.StorageKey()] = true
	}
	for _, rec := range recs {
		if !keys[rec.StorageKey()] {
			t.Errorf("record %s missing after flush", rec.StorageKey())
		}
	}
}

func TestManyBatches(t *testing.T) {
	pc, svc := startStore(t)
	journal := filepath.Join(t.TempDir(), "j.gob")
	r, err := NewAsyncRecorder("svc:enactor", journal, 7, pc)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	session := seq.NewID()
	for i := 0; i < 100; i++ {
		r.Record(mkRecord(session))
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	// ceil(100/7) = 15 store invocations.
	if got := svc.Stats().RecordRequests; got != 15 {
		t.Errorf("store requests = %d, want 15", got)
	}
	fmt.Fprintln(testingDiscard{}, "ok")
}

type testingDiscard struct{}

func (testingDiscard) Write(p []byte) (int, error) { return len(p), nil }

func TestAsyncRecorderPipelinedFlush(t *testing.T) {
	// A large backlog ships fully through the bounded-concurrency
	// pipeline, whatever the concurrency setting.
	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			pc, svc := startStore(t)
			journal := filepath.Join(t.TempDir(), "j.gob")
			r, err := NewAsyncRecorder("svc:enactor", journal, 7, pc)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			r.SetFlushConcurrency(workers)
			session := seq.NewID()
			const n = 100
			for i := 0; i < n; i++ {
				if err := r.Record(mkRecord(session)); err != nil {
					t.Fatal(err)
				}
			}
			if err := r.Flush(); err != nil {
				t.Fatal(err)
			}
			if got := r.Stats(); got.Shipped != n {
				t.Fatalf("Shipped = %d, want %d", got.Shipped, n)
			}
			if r.Pending() != 0 {
				t.Fatalf("Pending = %d after flush", r.Pending())
			}
			st := svc.Stats()
			if st.RecordsAccepted != n {
				t.Fatalf("store accepted %d, want %d", st.RecordsAccepted, n)
			}
		})
	}
}

func TestAsyncRecorderFlushConcurrencyBounded(t *testing.T) {
	// The pipeline must never have more batches in flight than its
	// concurrency bound: count concurrent POSTs at the HTTP layer.
	const workers = 3
	svc := preserv.NewService(store.New(store.NewMemoryBackend()))
	var inFlight, maxInFlight atomic.Int64
	wrapped := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		cur := inFlight.Add(1)
		for {
			prev := maxInFlight.Load()
			if cur <= prev || maxInFlight.CompareAndSwap(prev, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond) // widen the race window
		svc.Handler().ServeHTTP(w, req)
		inFlight.Add(-1)
	})
	ts := httptest.NewServer(wrapped)
	defer ts.Close()

	journal := filepath.Join(t.TempDir(), "j.gob")
	r, err := NewAsyncRecorder("svc:enactor", journal, 2, preserv.NewClient(ts.URL, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetFlushConcurrency(workers)
	session := seq.NewID()
	const n = 60
	for i := 0; i < n; i++ {
		if err := r.Record(mkRecord(session)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats(); got.Shipped != n {
		t.Fatalf("Shipped = %d, want %d", got.Shipped, n)
	}
	if peak := maxInFlight.Load(); peak > workers {
		t.Fatalf("observed %d concurrent POSTs, bound is %d", peak, workers)
	}
	if peak := maxInFlight.Load(); peak < 2 {
		t.Errorf("observed %d concurrent POSTs — pipeline is not overlapping shipments", peak)
	}
}

func TestAsyncRecorderRecordAfterFailedFlush(t *testing.T) {
	// Regression: the streaming flush decodes the journal through a
	// buffered reader that reads ahead of the decode position. A failed
	// flush must restore the file's append position, or the next
	// Record() overwrites unshipped journal bytes mid-file and the
	// retry decodes garbage. Needs a journal larger than the 64KB read
	// buffer to bite.
	svc := preserv.NewService(store.New(store.NewMemoryBackend()))
	var failing atomic.Bool
	wrapped := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if failing.Load() {
			http.Error(w, "injected outage", http.StatusInternalServerError)
			return
		}
		svc.Handler().ServeHTTP(w, req)
	})
	ts := httptest.NewServer(wrapped)
	defer ts.Close()

	journal := filepath.Join(t.TempDir(), "j.gob")
	r, err := NewAsyncRecorder("svc:enactor", journal, 25, preserv.NewClient(ts.URL, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	session := seq.NewID()
	// Big enough (~1MB) that the decoder is nowhere near EOF when the
	// outage hits — the buffered reader's read-ahead must not have
	// already walked the file offset to the end by accident.
	const first = 3000
	for i := 0; i < first; i++ {
		if err := r.Record(mkRecord(session)); err != nil {
			t.Fatal(err)
		}
	}
	failing.Store(true)
	if err := r.Flush(); err == nil {
		t.Fatal("flush through outage should fail")
	}
	failing.Store(false)
	const extra = 10
	for i := 0; i < extra; i++ {
		if err := r.Record(mkRecord(session)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	if r.Pending() != 0 {
		t.Fatalf("Pending after retry = %d", r.Pending())
	}
	st := svc.Stats()
	if st.RecordsAccepted != first+extra {
		t.Fatalf("store accepted %d, want %d", st.RecordsAccepted, first+extra)
	}
}

func TestAsyncRecorderAutoFlushOnBacklog(t *testing.T) {
	// With a threshold set, crossing the backlog triggers shipping in
	// the background — no explicit Flush needed.
	client, svc := startStore(t)
	r, err := NewAsyncRecorder("svc:enactor", filepath.Join(t.TempDir(), "journal"), 5, client)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetAutoFlushThreshold(10)

	session := seq.NewID()
	for i := 0; i < 25; i++ {
		if err := r.Record(mkRecord(session)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.Stats().Shipped >= 10 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if shipped := r.Stats().Shipped; shipped < 10 {
		t.Fatalf("background flush shipped %d records, want >= 10 without an explicit Flush", shipped)
	}
	if err := r.AutoFlushErr(); err != nil {
		t.Fatalf("background flush errored: %v", err)
	}

	// An explicit Flush ships the remainder; everything lands exactly
	// once (idempotent store, distinct records).
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().RecordsAccepted; got != 25 {
		t.Fatalf("store accepted %d records, want 25", got)
	}
	if r.Pending() != 0 {
		t.Errorf("pending = %d after flush, want 0", r.Pending())
	}
}

func TestAsyncRecorderAutoFlushDisabledByDefault(t *testing.T) {
	client, svc := startStore(t)
	r, err := NewAsyncRecorder("svc:enactor", filepath.Join(t.TempDir(), "journal"), 5, client)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	session := seq.NewID()
	for i := 0; i < 30; i++ {
		if err := r.Record(mkRecord(session)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if got := svc.Stats().RecordsAccepted; got != 0 {
		t.Errorf("recorder shipped %d records without a threshold or Flush", got)
	}
	if r.Pending() != 30 {
		t.Errorf("pending = %d, want 30", r.Pending())
	}
}

func TestAsyncRecorderAutoFlushFailureKeepsJournal(t *testing.T) {
	// A dead endpoint fails the background flush; the journal must stay
	// whole, the error must surface through AutoFlushErr, and a later
	// flush against a live endpoint re-ships everything.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer dead.Close()
	r, err := NewAsyncRecorder("svc:enactor", filepath.Join(t.TempDir(), "journal"), 4, preserv.NewClient(dead.URL, nil))
	if err != nil {
		t.Fatal(err)
	}
	r.SetAutoFlushThreshold(3)
	session := seq.NewID()
	for i := 0; i < 6; i++ {
		if err := r.Record(mkRecord(session)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		r.mu.Lock()
		failed := r.autoFlushErr != nil
		r.mu.Unlock()
		if failed {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := r.AutoFlushErr(); err == nil {
		t.Fatal("background flush against a dead endpoint reported no error")
	}
	if r.Pending() != 6 {
		t.Errorf("pending = %d after failed background flush, want 6 (journal kept whole)", r.Pending())
	}
	// The failure backs the trigger off: the next Record must not spawn
	// another full-journal attempt (the journal is whole; replaying it
	// immediately would just repeat the failure per Record call).
	if err := r.Record(mkRecord(session)); err != nil {
		t.Fatalf("Record after failed background flush: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := r.AutoFlushErr(); err != nil {
		t.Errorf("auto-flush re-fired immediately after a failure: %v", err)
	}
	// A clean Close (no endpoint swap possible here) surfaces the
	// shipping failure rather than losing data silently.
	if err := r.Close(); err == nil {
		t.Error("Close shipped to a dead endpoint without error")
	}
}
