package client

// Tests for the multi-endpoint shipping fixes and the sharded-topology
// routing mode: Shipped accounting across flush retries, round-robin
// balance across flushes, and session-affine placement when the
// endpoints are shards of one partitioned store.

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"

	"preserv/internal/core"
	"preserv/internal/ids"
	"preserv/internal/prep"
	"preserv/internal/preserv"
	"preserv/internal/shard"
	"preserv/internal/store"
)

// TestAsyncRecorderShippedNeverExceedsRecordedAcrossRetries is the
// regression test for the Shipped over-count: a flush that ships some
// batches and then fails keeps the journal whole, and the retry
// re-ships everything — the store accepts the idempotent re-records as
// accepted, so without a per-attempt rollback the counter double-counts
// every batch the failed attempt already landed.
func TestAsyncRecorderShippedNeverExceedsRecordedAcrossRetries(t *testing.T) {
	svc := preserv.NewService(store.New(store.NewMemoryBackend()))
	// The endpoint accepts the first two record POSTs, fails the next
	// one, then recovers for good — the flaky-endpoint shape.
	var calls atomic.Int64
	wrapped := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if calls.Add(1) == 3 {
			http.Error(w, "injected flake", http.StatusInternalServerError)
			return
		}
		svc.Handler().ServeHTTP(w, req)
	})
	ts := httptest.NewServer(wrapped)
	defer ts.Close()

	journal := filepath.Join(t.TempDir(), "j.gob")
	r, err := NewAsyncRecorder("svc:enactor", journal, 2, preserv.NewClient(ts.URL, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetFlushConcurrency(1) // deterministic: batches ship in order

	session := seq.NewID()
	const n = 10 // 5 batches of 2
	for i := 0; i < n; i++ {
		if err := r.Record(mkRecord(session)); err != nil {
			t.Fatal(err)
		}
	}

	if err := r.Flush(); err == nil {
		t.Fatal("flush through the flake should fail")
	}
	st := r.Stats()
	if st.Shipped > st.Recorded {
		t.Fatalf("after failed flush: Shipped %d > Recorded %d", st.Shipped, st.Recorded)
	}

	if err := r.Flush(); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	st = r.Stats()
	if st.Shipped != st.Recorded || st.Shipped != n {
		t.Fatalf("after retry: Stats %+v, want Shipped = Recorded = %d", st, n)
	}
	// The store holds each record exactly once, the journal is spent.
	if stats := svc.Stats(); stats.RecordsAccepted < n {
		t.Fatalf("store accepted %d, want >= %d", stats.RecordsAccepted, n)
	}
	cnt, err := preserv.NewClient(ts.URL, nil).Count()
	if err != nil || cnt.Records != n {
		t.Fatalf("store count %d err=%v, want %d", cnt.Records, err, n)
	}
	if r.Pending() != 0 {
		t.Fatalf("pending %d after successful retry", r.Pending())
	}
}

// countingEndpoints starts n single-store servers, each counting its
// record requests.
func countingEndpoints(t *testing.T, n int) ([]*preserv.Client, []*preserv.Service, []*atomic.Int64) {
	t.Helper()
	clients := make([]*preserv.Client, n)
	services := make([]*preserv.Service, n)
	counts := make([]*atomic.Int64, n)
	for i := 0; i < n; i++ {
		svc := preserv.NewService(store.New(store.NewMemoryBackend()))
		cnt := &atomic.Int64{}
		wrapped := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			cnt.Add(1)
			svc.Handler().ServeHTTP(w, req)
		})
		ts := httptest.NewServer(wrapped)
		t.Cleanup(ts.Close)
		clients[i] = preserv.NewClient(ts.URL, nil)
		services[i] = svc
		counts[i] = cnt
	}
	return clients, services, counts
}

// TestAsyncRecorderRoundRobinBalancedAcrossFlushes is the regression
// test for the per-flush cursor reset: with the cursor declared inside
// flushLocked, every flush restarted at endpoint 0, so a recorder
// shipping one small batch per flush (the SetAutoFlushThreshold shape)
// sent nearly all E8 traffic to the first endpoint.
func TestAsyncRecorderRoundRobinBalancedAcrossFlushes(t *testing.T) {
	const endpoints = 3
	const flushes = 12
	clients, _, counts := countingEndpoints(t, endpoints)

	journal := filepath.Join(t.TempDir(), "j.gob")
	r, err := NewAsyncRecorder("svc:enactor", journal, DefaultBatchSize, clients...)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// One small batch per flush: the pathological shape.
	for f := 0; f < flushes; f++ {
		if err := r.Record(mkRecord(seq.NewID())); err != nil {
			t.Fatal(err)
		}
		if err := r.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	for i, c := range counts {
		if got := c.Load(); got != flushes/endpoints {
			all := make([]int64, endpoints)
			for j := range counts {
				all[j] = counts[j].Load()
			}
			t.Fatalf("endpoint %d carried %d of %d batches (distribution %v), want an even %d each",
				i, got, flushes, all, flushes/endpoints)
		}
	}
	if st := r.Stats(); st.Shipped != flushes {
		t.Fatalf("Shipped %d, want %d", st.Shipped, flushes)
	}
}

// TestAsyncRecorderShardedTopologyRoutesSessionAffine pins the sharded
// shipping mode: every record lands on the endpoint its affinity hash
// names — the same endpoint a shard.Router over the same list would
// route it to — so a sharded front-end never has to move it.
func TestAsyncRecorderShardedTopologyRoutesSessionAffine(t *testing.T) {
	const endpoints = 3
	clients, services, _ := countingEndpoints(t, endpoints)

	journal := filepath.Join(t.TempDir(), "j.gob")
	r, err := NewAsyncRecorder("svc:enactor", journal, 4, clients...)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetShardedTopology(true)

	const sessions = 9
	const perSession = 6
	sids := make([]ids.ID, sessions)
	for i := range sids {
		sids[i] = seq.NewID()
	}
	// Interleave sessions in recording order, so affinity (not
	// accidental batching) is what keeps them together.
	for j := 0; j < perSession; j++ {
		for _, sid := range sids {
			if err := r.Record(mkRecord(sid)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Shipped != sessions*perSession {
		t.Fatalf("Shipped %d, want %d", st.Shipped, sessions*perSession)
	}

	spread := 0
	for _, sid := range sids {
		home := shard.AffinityIndex(sid.String(), endpoints)
		for e, svc := range services {
			recs, _, err := svc.Provenance().Query(&prep.Query{SessionID: sid})
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			if e == home {
				want = perSession
			}
			if len(recs) != want {
				t.Fatalf("endpoint %d holds %d records of session %s, want %d (home %d)",
					e, len(recs), sid, want, home)
			}
		}
		if home != 0 {
			spread++
		}
	}
	if spread == 0 {
		t.Fatal("every session hashed to endpoint 0 — affinity not exercised")
	}
}

// TestAsyncRecorderShardedRetryIdempotent combines the two: a sharded
// flush that fails mid-way retries cleanly, with Shipped intact and
// every record on its home endpoint exactly once.
func TestAsyncRecorderShardedRetryIdempotent(t *testing.T) {
	const endpoints = 2
	svcs := make([]*preserv.Service, endpoints)
	clients := make([]*preserv.Client, endpoints)
	var fail atomic.Bool
	for i := 0; i < endpoints; i++ {
		svc := preserv.NewService(store.New(store.NewMemoryBackend()))
		svcs[i] = svc
		i := i
		wrapped := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			if i == 1 && fail.Load() {
				http.Error(w, "injected outage", http.StatusInternalServerError)
				return
			}
			svc.Handler().ServeHTTP(w, req)
		})
		ts := httptest.NewServer(wrapped)
		t.Cleanup(ts.Close)
		clients[i] = preserv.NewClient(ts.URL, nil)
	}

	journal := filepath.Join(t.TempDir(), "j.gob")
	r, err := NewAsyncRecorder("svc:enactor", journal, 3, clients...)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetShardedTopology(true)

	// Sessions spanning both endpoints.
	var recs []core.Record
	for {
		sid := seq.NewID()
		for j := 0; j < 6; j++ {
			recs = append(recs, mkRecord(sid))
		}
		// Stop once both endpoints have a session homed on them.
		homes := map[int]bool{}
		for i := range recs {
			homes[shard.Affinity(&recs[i], endpoints)] = true
		}
		if len(homes) == endpoints {
			break
		}
	}
	if err := r.Record(recs...); err != nil {
		t.Fatal(err)
	}

	fail.Store(true)
	if err := r.Flush(); err == nil {
		t.Fatal("flush with endpoint 1 down should fail")
	}
	if st := r.Stats(); st.Shipped > st.Recorded {
		t.Fatalf("Shipped %d > Recorded %d after partial sharded flush", st.Shipped, st.Recorded)
	}
	fail.Store(false)
	if err := r.Flush(); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if st := r.Stats(); st.Shipped != st.Recorded {
		t.Fatalf("Stats %+v after retry", st)
	}
	// Exactly once, on the right endpoint.
	total := 0
	for i, svc := range svcs {
		cnt, err := svc.Provenance().Count()
		if err != nil {
			t.Fatal(err)
		}
		total += cnt.Records
		wantHere := 0
		for j := range recs {
			if shard.Affinity(&recs[j], endpoints) == i {
				wantHere++
			}
		}
		if cnt.Records != wantHere {
			t.Fatalf("endpoint %d holds %d records, want %d", i, cnt.Records, wantHere)
		}
	}
	if total != len(recs) {
		t.Fatalf("endpoints hold %d records total, want %d", total, len(recs))
	}
}
