// Package bio provides the biological-sequence substrate of the protein
// compressibility experiment: FASTA parsing and generation, amino-acid
// and nucleotide alphabets, reduced-alphabet group encodings, sample
// collation, and seeded permutation (the workflow's Shuffle activity).
//
// The paper downloads microbial protein sequences from RefSeq; this
// package substitutes a deterministic synthetic generator with realistic
// amino-acid composition (see DESIGN.md) while also parsing real FASTA
// for users who have it.
package bio

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// AminoAcids is the canonical 20-letter amino-acid alphabet.
const AminoAcids = "ACDEFGHIKLMNPQRSTVWY"

// Nucleotides is the DNA nucleotide alphabet. Note it is a subset of
// AminoAcids — the property that makes the paper's use case 2 subtle: a
// nucleotide sequence passes syntactic validation as a protein.
const Nucleotides = "ACGT"

// SeqKind labels the biological type of a sequence. The provenance
// registry annotates service inputs/outputs with the corresponding
// semantic types.
type SeqKind int

// Sequence kinds.
const (
	KindUnknown SeqKind = iota
	KindProtein
	KindNucleotide
	KindGroupEncoded
)

// String returns the kind's name.
func (k SeqKind) String() string {
	switch k {
	case KindProtein:
		return "protein"
	case KindNucleotide:
		return "nucleotide"
	case KindGroupEncoded:
		return "group-encoded"
	default:
		return "unknown"
	}
}

// Sequence is one biological sequence with its FASTA header.
type Sequence struct {
	// ID is the FASTA identifier (the first word after '>').
	ID string
	// Description is the remainder of the FASTA header line.
	Description string
	// Residues is the sequence body, upper-case, no whitespace.
	Residues []byte
}

// Len returns the number of residues.
func (s *Sequence) Len() int { return len(s.Residues) }

// ErrBadFASTA is returned for malformed FASTA input.
var ErrBadFASTA = errors.New("bio: malformed FASTA")

// ParseFASTA reads all sequences from FASTA-formatted input. Sequence
// characters are upper-cased; blank lines are tolerated; a record with
// an empty body is an error.
func ParseFASTA(r io.Reader) ([]*Sequence, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var seqs []*Sequence
	var cur *Sequence
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ">") {
			if cur != nil && len(cur.Residues) == 0 {
				return nil, fmt.Errorf("%w: record %q has no residues (line %d)", ErrBadFASTA, cur.ID, line)
			}
			header := strings.TrimSpace(text[1:])
			if header == "" {
				return nil, fmt.Errorf("%w: empty header at line %d", ErrBadFASTA, line)
			}
			id, desc := header, ""
			if i := strings.IndexAny(header, " \t"); i >= 0 {
				id, desc = header[:i], strings.TrimSpace(header[i+1:])
			}
			cur = &Sequence{ID: id, Description: desc}
			seqs = append(seqs, cur)
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("%w: residue data before any header (line %d)", ErrBadFASTA, line)
		}
		for _, c := range []byte(strings.ToUpper(text)) {
			if c < 'A' || c > 'Z' {
				if c == '*' || c == '-' {
					continue // stop codons and alignment gaps are dropped
				}
				return nil, fmt.Errorf("%w: invalid residue %q at line %d", ErrBadFASTA, c, line)
			}
			cur.Residues = append(cur.Residues, c)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bio: reading FASTA: %w", err)
	}
	if cur != nil && len(cur.Residues) == 0 {
		return nil, fmt.Errorf("%w: record %q has no residues", ErrBadFASTA, cur.ID)
	}
	return seqs, nil
}

// WriteFASTA writes sequences in FASTA format with 70-column wrapping.
func WriteFASTA(w io.Writer, seqs []*Sequence) error {
	bw := bufio.NewWriter(w)
	for _, s := range seqs {
		if s.Description != "" {
			fmt.Fprintf(bw, ">%s %s\n", s.ID, s.Description)
		} else {
			fmt.Fprintf(bw, ">%s\n", s.ID)
		}
		for off := 0; off < len(s.Residues); off += 70 {
			end := off + 70
			if end > len(s.Residues) {
				end = len(s.Residues)
			}
			bw.Write(s.Residues[off:end])
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// GuessKind classifies residues as nucleotide or protein. A sequence
// whose residues all fall within the nucleotide alphabet is classified
// as nucleotide — which mirrors exactly the ambiguity in use case 2: the
// guess cannot be trusted, only registry annotations are authoritative.
func GuessKind(residues []byte) SeqKind {
	if len(residues) == 0 {
		return KindUnknown
	}
	nuc := true
	for _, c := range residues {
		if !strings.ContainsRune(Nucleotides, rune(c)) {
			nuc = false
		}
		if !strings.ContainsRune(AminoAcids, rune(c)) {
			return KindUnknown
		}
	}
	if nuc {
		return KindNucleotide
	}
	return KindProtein
}

// realisticAAFreqs holds approximate amino-acid frequencies (per mille)
// observed in microbial proteomes, in AminoAcids order. They drive the
// synthetic RefSeq substitute so compressibility figures have a
// realistic zero-order entropy.
var realisticAAFreqs = [20]int{
	// A   C   D   E   F   G   H   I   K   L   M   N   P   Q   R   S   T   V   W   Y
	88, 12, 54, 62, 40, 74, 22, 66, 53, 102, 24, 41, 44, 38, 55, 63, 54, 70, 13, 30,
}

// Generator produces deterministic synthetic sequences. It substitutes
// the paper's RefSeq download (see DESIGN.md table row "RefSeq").
type Generator struct {
	rng *rand.Rand
	// OrderedBias ∈ [0,1) injects first-order structure: with this
	// probability the next residue repeats a short motif, giving the
	// compressors genuine context structure to discover.
	OrderedBias float64
	motif       []byte
	motifPos    int
}

// NewGenerator returns a generator seeded deterministically.
func NewGenerator(seed int64) *Generator {
	g := &Generator{rng: rand.New(rand.NewSource(seed)), OrderedBias: 0.35}
	g.remotif()
	return g
}

func (g *Generator) remotif() {
	n := 4 + g.rng.Intn(8)
	g.motif = make([]byte, n)
	for i := range g.motif {
		g.motif[i] = g.sampleAA()
	}
	g.motifPos = 0
}

func (g *Generator) sampleAA() byte {
	r := g.rng.Intn(1000)
	acc := 0
	for i, f := range realisticAAFreqs {
		acc += f
		if r < acc {
			return AminoAcids[i]
		}
	}
	return AminoAcids[len(AminoAcids)-1]
}

// Protein generates one synthetic protein sequence of the given length.
// Motifs are emitted contiguously so the sequence carries genuine
// context structure (repeated substrings) that a random permutation
// destroys — the property the compressibility experiment measures.
func (g *Generator) Protein(id string, length int) *Sequence {
	res := make([]byte, 0, length)
	for len(res) < length {
		if g.rng.Float64() < g.OrderedBias {
			take := len(g.motif)
			if remaining := length - len(res); take > remaining {
				take = remaining
			}
			res = append(res, g.motif[:take]...)
			if g.rng.Intn(6) == 0 {
				g.remotif()
			}
		} else {
			res = append(res, g.sampleAA())
		}
	}
	return &Sequence{ID: id, Description: "synthetic microbial protein", Residues: res}
}

// Nucleotide generates one synthetic DNA sequence of the given length.
func (g *Generator) Nucleotide(id string, length int) *Sequence {
	res := make([]byte, length)
	for i := range res {
		res[i] = Nucleotides[g.rng.Intn(len(Nucleotides))]
	}
	return &Sequence{ID: id, Description: "synthetic nucleotide sequence", Residues: res}
}

// ProteinSet generates count proteins with lengths drawn uniformly from
// [minLen, maxLen].
func (g *Generator) ProteinSet(count, minLen, maxLen int) []*Sequence {
	seqs := make([]*Sequence, count)
	for i := range seqs {
		length := minLen
		if maxLen > minLen {
			length += g.rng.Intn(maxLen - minLen + 1)
		}
		seqs[i] = g.Protein(fmt.Sprintf("SYN%05d", i), length)
	}
	return seqs
}

// CollateSample concatenates sequences until the sample reaches at least
// targetBytes, returning the sample. This is the workflow's Collate
// Sample activity: "sample may be composed from several individual
// sequences to provide enough data for the statistical methods".
// It returns an error if the sequences cannot fill the target.
func CollateSample(seqs []*Sequence, targetBytes int) ([]byte, error) {
	if targetBytes <= 0 {
		return nil, fmt.Errorf("bio: target size %d must be positive", targetBytes)
	}
	var buf bytes.Buffer
	for _, s := range seqs {
		if buf.Len() >= targetBytes {
			break
		}
		buf.Write(s.Residues)
	}
	if buf.Len() < targetBytes {
		return nil, fmt.Errorf("bio: sequences provide %d bytes, need %d", buf.Len(), targetBytes)
	}
	return buf.Bytes()[:targetBytes], nil
}

// Shuffle returns a random permutation of data using the given seed
// (Fisher-Yates). It is the workflow's Shuffle activity: permutations
// provide the standard of comparison that removes the influence of
// encoding and symbol frequency from the compressibility value.
func Shuffle(data []byte, seed int64) []byte {
	out := append([]byte(nil), data...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
