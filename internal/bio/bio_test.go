package bio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseFASTABasic(t *testing.T) {
	in := `>sp|P12345| test protein one
MKVLAT
RESGW
>seq2 another one
ACDEFGHIKLMNPQRSTVWY
`
	seqs, err := ParseFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("got %d sequences, want 2", len(seqs))
	}
	if seqs[0].ID != "sp|P12345|" {
		t.Errorf("ID = %q", seqs[0].ID)
	}
	if seqs[0].Description != "test protein one" {
		t.Errorf("Description = %q", seqs[0].Description)
	}
	if string(seqs[0].Residues) != "MKVLATRESGW" {
		t.Errorf("Residues = %q", seqs[0].Residues)
	}
	if seqs[1].Len() != 20 {
		t.Errorf("seq2 length = %d, want 20", seqs[1].Len())
	}
}

func TestParseFASTALowercaseAndGaps(t *testing.T) {
	in := ">s\nmkvl-at*\n"
	seqs, err := ParseFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if string(seqs[0].Residues) != "MKVLAT" {
		t.Errorf("Residues = %q, want MKVLAT", seqs[0].Residues)
	}
}

func TestParseFASTAErrors(t *testing.T) {
	cases := map[string]string{
		"data before header": "MKVL\n>s\nMKVL\n",
		"empty header":       ">\nMKVL\n",
		"empty body":         ">s\n>s2\nMKVL\n",
		"trailing empty":     ">s\nMKVL\n>s2\n",
		"invalid residue":    ">s\nMK1VL\n",
	}
	for name, in := range cases {
		if _, err := ParseFASTA(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestParseFASTAEmpty(t *testing.T) {
	seqs, err := ParseFASTA(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 0 {
		t.Fatalf("got %d sequences from empty input", len(seqs))
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	g := NewGenerator(1)
	seqs := g.ProteinSet(5, 50, 300)
	seqs[0].Description = ""
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, seqs); err != nil {
		t.Fatal(err)
	}
	back, err := ParseFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(seqs) {
		t.Fatalf("got %d sequences, want %d", len(back), len(seqs))
	}
	for i := range seqs {
		if back[i].ID != seqs[i].ID {
			t.Errorf("seq %d ID %q != %q", i, back[i].ID, seqs[i].ID)
		}
		if !bytes.Equal(back[i].Residues, seqs[i].Residues) {
			t.Errorf("seq %d residues differ", i)
		}
	}
}

func TestGuessKind(t *testing.T) {
	cases := []struct {
		in   string
		want SeqKind
	}{
		{"", KindUnknown},
		{"ACGT", KindNucleotide},
		{"ACGTACGTACGT", KindNucleotide},
		{"MKVLAT", KindProtein},
		{"ACGTW", KindProtein}, // W breaks the nucleotide subset
		{"ACGTB", KindUnknown}, // B is neither
	}
	for _, c := range cases {
		if got := GuessKind([]byte(c.in)); got != c.want {
			t.Errorf("GuessKind(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSeqKindString(t *testing.T) {
	kinds := []SeqKind{KindUnknown, KindProtein, KindNucleotide, KindGroupEncoded}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty String", k)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(42).Protein("p", 1000)
	b := NewGenerator(42).Protein("p", 1000)
	if !bytes.Equal(a.Residues, b.Residues) {
		t.Error("same seed must generate identical sequences")
	}
	c := NewGenerator(43).Protein("p", 1000)
	if bytes.Equal(a.Residues, c.Residues) {
		t.Error("different seeds should generate different sequences")
	}
}

func TestGeneratorAlphabet(t *testing.T) {
	seq := NewGenerator(7).Protein("p", 5000)
	for i, r := range seq.Residues {
		if !strings.ContainsRune(AminoAcids, rune(r)) {
			t.Fatalf("residue %q at %d outside amino-acid alphabet", r, i)
		}
	}
	nuc := NewGenerator(7).Nucleotide("n", 5000)
	for i, r := range nuc.Residues {
		if !strings.ContainsRune(Nucleotides, rune(r)) {
			t.Fatalf("residue %q at %d outside nucleotide alphabet", r, i)
		}
	}
}

func TestGeneratorComposition(t *testing.T) {
	// Leucine (L) should be the most common residue by a visible margin
	// over tryptophan (W), matching microbial composition.
	seq := NewGenerator(8).Protein("p", 200000)
	var counts [256]int
	for _, r := range seq.Residues {
		counts[r]++
	}
	if counts['L'] <= counts['W']*3 {
		t.Errorf("L count %d vs W count %d: composition not realistic", counts['L'], counts['W'])
	}
}

func TestProteinSetLengths(t *testing.T) {
	seqs := NewGenerator(9).ProteinSet(20, 100, 200)
	if len(seqs) != 20 {
		t.Fatalf("got %d sequences", len(seqs))
	}
	ids := make(map[string]bool)
	for _, s := range seqs {
		if s.Len() < 100 || s.Len() > 200 {
			t.Errorf("length %d outside [100,200]", s.Len())
		}
		if ids[s.ID] {
			t.Errorf("duplicate ID %s", s.ID)
		}
		ids[s.ID] = true
	}
}

func TestCollateSample(t *testing.T) {
	g := NewGenerator(10)
	seqs := g.ProteinSet(50, 1000, 2000)
	sample, err := CollateSample(seqs, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) != 10000 {
		t.Fatalf("sample length %d, want 10000", len(sample))
	}
	// The sample must be a prefix of the concatenation.
	var concat []byte
	for _, s := range seqs {
		concat = append(concat, s.Residues...)
	}
	if !bytes.Equal(sample, concat[:10000]) {
		t.Error("sample is not the prefix of the concatenation")
	}
}

func TestCollateSampleErrors(t *testing.T) {
	g := NewGenerator(11)
	seqs := g.ProteinSet(2, 10, 20)
	if _, err := CollateSample(seqs, 1<<20); err == nil {
		t.Error("oversized target should error")
	}
	if _, err := CollateSample(seqs, 0); err == nil {
		t.Error("zero target should error")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	data := []byte("MKVLATRESGWMKVLATRESGW")
	shuf := Shuffle(data, 99)
	if len(shuf) != len(data) {
		t.Fatalf("length changed: %d -> %d", len(data), len(shuf))
	}
	var want, got [256]int
	for i := range data {
		want[data[i]]++
		got[shuf[i]]++
	}
	if want != got {
		t.Error("shuffle is not a permutation")
	}
}

func TestShuffleDeterministicBySeed(t *testing.T) {
	data := []byte(strings.Repeat("ACDEFG", 100))
	a := Shuffle(data, 5)
	b := Shuffle(data, 5)
	c := Shuffle(data, 6)
	if !bytes.Equal(a, b) {
		t.Error("same seed must give same permutation")
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds should give different permutations")
	}
}

func TestShuffleDoesNotMutate(t *testing.T) {
	data := []byte("ABCDEFGH")
	orig := append([]byte(nil), data...)
	Shuffle(data, 1)
	if !bytes.Equal(data, orig) {
		t.Error("Shuffle mutated its input")
	}
}

func TestQuickShufflePermutation(t *testing.T) {
	f := func(data []byte, seed int64) bool {
		shuf := Shuffle(data, seed)
		if len(shuf) != len(data) {
			return false
		}
		var want, got [256]int
		for i := range data {
			want[data[i]]++
			got[shuf[i]]++
		}
		return want == got
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
