package bio

import (
	"fmt"
	"sort"
	"strings"
)

// Grouping is a reduced-alphabet recoding of amino acids: each residue
// maps to the symbol of the group it belongs to. This is the workflow's
// Encode by Groups activity, following Sampath's block-coding idea the
// paper cites — compression applied to the recoded sequence quantifies
// structure relative to the grouping.
type Grouping struct {
	name    string
	groups  []string // each entry is the set of residues in one group
	symbols []byte   // symbol emitted for each group
	table   [256]byte
	valid   [256]bool
}

// NewGrouping builds a grouping from group definitions: groups[i] is the
// string of residues that recode to symbols[i]. Every amino acid must be
// covered exactly once.
func NewGrouping(name string, groups []string, symbols []byte) (*Grouping, error) {
	if name == "" {
		return nil, fmt.Errorf("bio: grouping needs a name")
	}
	if len(groups) == 0 || len(groups) != len(symbols) {
		return nil, fmt.Errorf("bio: grouping %q: %d groups but %d symbols", name, len(groups), len(symbols))
	}
	g := &Grouping{name: name, groups: groups, symbols: append([]byte(nil), symbols...)}
	covered := make(map[byte]bool)
	for i, members := range groups {
		if members == "" {
			return nil, fmt.Errorf("bio: grouping %q: group %d is empty", name, i)
		}
		for _, r := range []byte(members) {
			if !strings.ContainsRune(AminoAcids, rune(r)) {
				return nil, fmt.Errorf("bio: grouping %q: %q is not an amino acid", name, r)
			}
			if covered[r] {
				return nil, fmt.Errorf("bio: grouping %q: residue %q in two groups", name, r)
			}
			covered[r] = true
			g.table[r] = symbols[i]
			g.valid[r] = true
		}
	}
	if len(covered) != len(AminoAcids) {
		return nil, fmt.Errorf("bio: grouping %q covers %d of %d amino acids", name, len(covered), len(AminoAcids))
	}
	seen := make(map[byte]bool)
	for _, s := range symbols {
		if seen[s] {
			return nil, fmt.Errorf("bio: grouping %q: duplicate group symbol %q", name, s)
		}
		seen[s] = true
	}
	return g, nil
}

// Name returns the grouping's name.
func (g *Grouping) Name() string { return g.name }

// NumGroups returns the size of the reduced alphabet.
func (g *Grouping) NumGroups() int { return len(g.groups) }

// Symbols returns the reduced-alphabet symbols.
func (g *Grouping) Symbols() []byte { return append([]byte(nil), g.symbols...) }

// Spec renders the grouping as "name:ACDE=A|FGHI=B|..." — the canonical
// description recorded in provenance so two runs can be compared.
func (g *Grouping) Spec() string {
	parts := make([]string, len(g.groups))
	for i := range g.groups {
		members := []byte(g.groups[i])
		sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
		parts[i] = fmt.Sprintf("%s=%c", members, g.symbols[i])
	}
	return g.name + ":" + strings.Join(parts, "|")
}

// Encode recodes an amino-acid sequence into the reduced alphabet.
// Unknown residues produce an error — unless they are all nucleotides,
// which silently succeed; this reproduces the trap of use case 2 (A, C,
// G and T are all valid amino-acid letters, so a nucleotide sequence
// recodes without any syntactic error).
func (g *Grouping) Encode(residues []byte) ([]byte, error) {
	out := make([]byte, len(residues))
	for i, r := range residues {
		if !g.valid[r] {
			return nil, fmt.Errorf("bio: grouping %q: residue %q at offset %d is not an amino acid", g.name, r, i)
		}
		out[i] = g.table[r]
	}
	return out, nil
}

// Standard groupings used across the experiment and its benchmarks.
// The hydropathy classes are a common 4-group reduction; SampathLike is
// an 8-group partition in the spirit of the block coding the paper
// cites; Identity20 keeps all twenty residues distinct.
var (
	hydropathyGroups = []string{"AILMFWV", "CGPSTY", "DENQ", "HKR"}
	sampathGroups    = []string{"AG", "C", "DE", "FWY", "HKR", "ILMV", "NQ", "PST"}
)

// Hydropathy4 returns the 4-group hydropathy reduction.
func Hydropathy4() *Grouping {
	g, err := NewGrouping("hydropathy4", hydropathyGroups, []byte("HPCN"))
	if err != nil {
		panic(err) // static definition; cannot fail
	}
	return g
}

// SampathLike8 returns an 8-group partition modelled on the grouping
// literature the paper references.
func SampathLike8() *Grouping {
	g, err := NewGrouping("sampath8", sampathGroups, []byte("ABCDEFGH"))
	if err != nil {
		panic(err)
	}
	return g
}

// Identity20 returns the trivial grouping mapping each amino acid to
// itself (the un-reduced baseline).
func Identity20() *Grouping {
	groups := make([]string, len(AminoAcids))
	symbols := make([]byte, len(AminoAcids))
	for i := range AminoAcids {
		groups[i] = string(AminoAcids[i])
		symbols[i] = AminoAcids[i]
	}
	g, err := NewGrouping("identity20", groups, symbols)
	if err != nil {
		panic(err)
	}
	return g
}

// Groupings returns the built-in groupings keyed by name.
func Groupings() map[string]*Grouping {
	return map[string]*Grouping{
		"hydropathy4": Hydropathy4(),
		"sampath8":    SampathLike8(),
		"identity20":  Identity20(),
	}
}
