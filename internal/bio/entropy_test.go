package bio

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEntropyKnownValues(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"", 0},
		{"aaaa", 0},     // single symbol: no uncertainty
		{"abab", 1},     // two equiprobable symbols: 1 bit
		{"abcdabcd", 2}, // four equiprobable: 2 bits
		{strings.Repeat("ACGT", 100), 2},
	}
	for _, c := range cases {
		if got := Entropy([]byte(c.in)); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Entropy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestEntropySkewedBelowUniform(t *testing.T) {
	skewed := []byte(strings.Repeat("a", 90) + strings.Repeat("b", 10))
	uniform := []byte(strings.Repeat("ab", 50))
	if Entropy(skewed) >= Entropy(uniform) {
		t.Errorf("skewed entropy %.3f should be below uniform %.3f",
			Entropy(skewed), Entropy(uniform))
	}
}

func TestEntropyRatio(t *testing.T) {
	data := []byte(strings.Repeat("ACGT", 64))
	if got := EntropyRatio(data); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("EntropyRatio of 2-bit source = %v, want 0.25", got)
	}
}

func TestEntropyOfGeneratedProteinRealistic(t *testing.T) {
	// Microbial proteomes sit around 4.1-4.2 bits/residue; our
	// generator's motif structure lowers zero-order entropy slightly but
	// it must stay in the biologically plausible band.
	seq := NewGenerator(5).Protein("p", 100000)
	h := Entropy(seq.Residues)
	if h < 3.2 || h > 4.4 {
		t.Errorf("generated protein entropy = %.3f bits/residue, want 3.2-4.4", h)
	}
}

func TestGroupEncodingReducesEntropy(t *testing.T) {
	seq := NewGenerator(6).Protein("p", 50000)
	enc, err := Hydropathy4().Encode(seq.Residues)
	if err != nil {
		t.Fatal(err)
	}
	if Entropy(enc) >= Entropy(seq.Residues) {
		t.Errorf("4-group encoding entropy %.3f should be below 20-letter entropy %.3f",
			Entropy(enc), Entropy(seq.Residues))
	}
	if Entropy(enc) > 2.0 {
		t.Errorf("4-symbol alphabet entropy = %.3f, cannot exceed 2 bits", Entropy(enc))
	}
}

// Property: entropy is permutation-invariant (zero-order statistics),
// which is exactly why the experiment uses shuffled permutations as its
// standard of comparison.
func TestQuickEntropyShuffleInvariant(t *testing.T) {
	f := func(data []byte, seed int64) bool {
		return math.Abs(Entropy(data)-Entropy(Shuffle(data, seed))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: entropy is bounded by log2(distinct symbols).
func TestQuickEntropyBound(t *testing.T) {
	f := func(data []byte) bool {
		distinct := make(map[byte]bool)
		for _, b := range data {
			distinct[b] = true
		}
		if len(data) == 0 {
			return Entropy(data) == 0
		}
		bound := math.Log2(float64(len(distinct)))
		if len(distinct) == 1 {
			bound = 0
		}
		return Entropy(data) <= bound+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
