package bio

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuiltInGroupingsValid(t *testing.T) {
	for name, g := range Groupings() {
		if g.Name() != name {
			t.Errorf("grouping registered as %q has name %q", name, g.Name())
		}
		if g.NumGroups() < 1 {
			t.Errorf("%s has no groups", name)
		}
		if g.Spec() == "" {
			t.Errorf("%s has empty spec", name)
		}
	}
}

func TestHydropathyEncode(t *testing.T) {
	g := Hydropathy4()
	out, err := g.Encode([]byte("AILD"))
	if err != nil {
		t.Fatal(err)
	}
	// A, I, L are hydrophobic (H); D is charged-negative group (C).
	if string(out) != "HHHC" {
		t.Errorf("Encode(AILD) = %q, want HHHC", out)
	}
}

func TestEncodeCoversFullAlphabet(t *testing.T) {
	for name, g := range Groupings() {
		out, err := g.Encode([]byte(AminoAcids))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) != len(AminoAcids) {
			t.Fatalf("%s: output length %d", name, len(out))
		}
		// Every output symbol must be one of the grouping's symbols.
		syms := string(g.Symbols())
		for _, c := range out {
			if !strings.ContainsRune(syms, rune(c)) {
				t.Errorf("%s: output symbol %q not in group symbols %q", name, c, syms)
			}
		}
	}
}

func TestEncodeReducesAlphabet(t *testing.T) {
	g := Hydropathy4()
	seq := NewGenerator(3).Protein("p", 10000)
	out, err := g.Encode(seq.Residues)
	if err != nil {
		t.Fatal(err)
	}
	distinct := make(map[byte]bool)
	for _, c := range out {
		distinct[c] = true
	}
	if len(distinct) > 4 {
		t.Errorf("hydropathy4 output has %d distinct symbols, want <= 4", len(distinct))
	}
}

func TestNucleotideTrap(t *testing.T) {
	// Use case 2's core subtlety: nucleotide sequences encode without
	// error because ACGT ⊂ amino-acid alphabet.
	g := Hydropathy4()
	nuc := NewGenerator(4).Nucleotide("n", 1000)
	if _, err := g.Encode(nuc.Residues); err != nil {
		t.Fatalf("nucleotide sequence must encode silently (the use-case-2 trap): %v", err)
	}
}

func TestEncodeRejectsNonResidues(t *testing.T) {
	g := Hydropathy4()
	if _, err := g.Encode([]byte("MKV1")); err == nil {
		t.Error("digit should be rejected")
	}
	if _, err := g.Encode([]byte("MKB")); err == nil {
		t.Error("B is not an amino acid; should be rejected")
	}
}

func TestIdentity20IsIdentity(t *testing.T) {
	g := Identity20()
	in := []byte(AminoAcids)
	out, err := g.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != AminoAcids {
		t.Errorf("identity20 changed the sequence: %q", out)
	}
}

func TestNewGroupingValidation(t *testing.T) {
	cases := []struct {
		name    string
		groups  []string
		symbols []byte
	}{
		{"", []string{AminoAcids}, []byte("X")},                    // empty name
		{"g", []string{}, []byte{}},                                // no groups
		{"g", []string{AminoAcids}, []byte("XY")},                  // mismatched lengths
		{"g", []string{"", AminoAcids}, []byte("XY")},              // empty group
		{"g", []string{"ACDEFGHIKLMNPQRSTVW"}, []byte("X")},        // missing Y
		{"g", []string{"AA" + AminoAcids[2:]}, []byte("X")},        // duplicate residue
		{"g", []string{"ACDEFGHIKL", "MNPQRSTVWY"}, []byte("XX")},  // duplicate symbol
		{"g", []string{"ACDEFGHIKLMNPQRSTVWY1"}, []byte("X")},      // non-amino residue
		{"g", []string{"ACDEFGHIKLZ", "MNPQRSTVWY"}, []byte("XY")}, // Z invalid
	}
	for i, c := range cases {
		if _, err := NewGrouping(c.name, c.groups, c.symbols); err == nil {
			t.Errorf("case %d: NewGrouping succeeded, want error", i)
		}
	}
}

func TestSpecIsCanonical(t *testing.T) {
	// Residue order within a group must not change the spec.
	g1, err := NewGrouping("g", []string{"AILMFWV", "CGPSTY", "DENQ", "HKR"}, []byte("1234"))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGrouping("g", []string{"VWFMLIA", "YTSPGC", "QNED", "RKH"}, []byte("1234"))
	if err != nil {
		t.Fatal(err)
	}
	if g1.Spec() != g2.Spec() {
		t.Errorf("specs differ:\n%s\n%s", g1.Spec(), g2.Spec())
	}
}

func TestSymbolsIsCopy(t *testing.T) {
	g := Hydropathy4()
	s := g.Symbols()
	s[0] = 'Z'
	if g.Symbols()[0] == 'Z' {
		t.Error("Symbols must return a copy")
	}
}

// Property: encoding any generated protein sequence succeeds and
// output length equals input length.
func TestQuickEncodeTotalOnProteins(t *testing.T) {
	g := Hydropathy4()
	f := func(seed int64, n16 uint16) bool {
		n := int(n16)%2000 + 1
		seq := NewGenerator(seed).Protein("p", n)
		out, err := g.Encode(seq.Residues)
		return err == nil && len(out) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Encode commutes with Shuffle up to multiset equality — the
// encoded shuffle has the same symbol histogram as the shuffled encode.
func TestQuickEncodeShuffleHistogram(t *testing.T) {
	g := SampathLike8()
	f := func(seed int64) bool {
		seq := NewGenerator(seed).Protein("p", 500)
		enc, err := g.Encode(seq.Residues)
		if err != nil {
			return false
		}
		shufThenEnc, err := g.Encode(Shuffle(seq.Residues, seed))
		if err != nil {
			return false
		}
		var a, b [256]int
		for i := range enc {
			a[enc[i]]++
			b[shufThenEnc[i]]++
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
