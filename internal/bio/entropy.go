package bio

import "math"

// Entropy returns the zero-order Shannon entropy of data in bits per
// symbol. The paper's compressibility measure is an upper bound relative
// to a compression method; zero-order entropy is the corresponding
// model-free reference ("estimating DNA sequence entropy" is the cited
// baseline technique), used in reports to contextualise compression
// ratios.
func Entropy(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	n := float64(len(data))
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// EntropyRatio returns Entropy(data)/8, the fraction of its raw length
// an ideal zero-order coder would need — directly comparable to the
// compression ratios the Measure workflow reports.
func EntropyRatio(data []byte) float64 {
	return Entropy(data) / 8
}
