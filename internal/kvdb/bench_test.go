package kvdb

import (
	"fmt"
	"testing"
)

func benchDB(b *testing.B) *DB {
	b.Helper()
	db, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

func BenchmarkPut(b *testing.B) {
	db := benchDB(b)
	val := make([]byte, 512)
	b.SetBytes(int64(len(val)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(fmt.Sprintf("key-%09d", i), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	db := benchDB(b)
	val := make([]byte, 512)
	const n = 10000
	for i := 0; i < n; i++ {
		db.Put(fmt.Sprintf("key-%09d", i), val)
	}
	b.SetBytes(int64(len(val)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get(fmt.Sprintf("key-%09d", i%n)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanPrefix(b *testing.B) {
	db := benchDB(b)
	for i := 0; i < 1000; i++ {
		db.Put(fmt.Sprintf("i/%04d/rec", i), []byte("v"))
		db.Put(fmt.Sprintf("s/%04d/rec", i), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		db.Scan("i/", func(string, []byte) error { count++; return nil })
		if count != 1000 {
			b.Fatalf("scanned %d", count)
		}
	}
}

func BenchmarkOpenRecovery(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		db.Put(fmt.Sprintf("key-%06d", i), []byte("some value content"))
	}
	db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		if db.Len() != 5000 {
			b.Fatalf("Len = %d", db.Len())
		}
		db.Close()
	}
}
