// Package kvdb is a small embedded key-value store in the bitcask style:
// an append-only data log with an in-memory key directory, crash
// recovery by log scan, and offline compaction. It plays the role that
// Berkeley DB Java Edition plays in the paper's PReServ — the persistent
// "database" backend behind the Provenance Store Interface — without any
// dependency beyond the standard library.
//
// Concurrency: a DB is safe for concurrent use; writes are serialised,
// reads take a shared lock and read the log file at a stable offset via
// ReadAt.
//
// Durability: records are buffered through the OS page cache; call Sync
// for a hard barrier. A torn final record (e.g. from a crash) is
// detected by CRC and truncated away on the next Open.
package kvdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"preserv/internal/kv"
)

const (
	dataFileName = "data.log"
	tmpFileName  = "compact.tmp"

	flagTombstone = 1

	headerSize = 4 + 1 + 4 + 4 // crc, flags, keyLen, valLen

	// MaxKeyLen and MaxValueLen bound record sizes; the limits exist to
	// reject obviously corrupt headers during recovery.
	MaxKeyLen   = 1 << 16
	MaxValueLen = 1 << 28
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("kvdb: database is closed")

// ErrNotFound is returned by Get when the key is absent.
var ErrNotFound = errors.New("kvdb: key not found")

type entryLoc struct {
	off    int64 // offset of the value bytes within the log
	valLen int
}

// DB is an open database.
type DB struct {
	mu     sync.RWMutex // provlint:lock-order 20
	dir    string
	f      *os.File
	index  map[string]entryLoc
	offset int64 // append position
	closed bool
	// compactMu serialises compactions (incremental or serial) against
	// each other; db.mu alone still serialises them against writes.
	// provlint:lock-order 10
	compactMu sync.Mutex
	// legacyCompact selects the original stop-the-world Compact, which
	// holds db.mu for the whole rewrite. Kept for comparison benchmarks
	// and so crash/conformance suites cover both paths.
	legacyCompact bool
	// garbage counts bytes occupied by superseded or deleted records,
	// used to decide when compaction is worthwhile.
	garbage int64
	// sorted caches the index's keys in sorted order; nil when dirty
	// (a key was added or deleted since the last build). It turns the
	// prefix/range scans the read path leans on from O(n log n) per call
	// into a binary search plus a walk.
	sorted []string
	// tombs counts live tombstone entries in the log (deletions not yet
	// reclaimed by compaction) — the deletion-lifecycle telemetry the
	// store surfaces.
	tombs int64
}

// Open opens (creating if necessary) the database in dir. A partially
// written final record — the signature of a crash — is truncated away.
func Open(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvdb: creating %s: %w", dir, err)
	}
	// A leftover compaction temp file means a crash mid-compaction; the
	// main log is still authoritative, so discard the temp file.
	_ = os.Remove(filepath.Join(dir, tmpFileName))

	path := filepath.Join(dir, dataFileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvdb: opening log: %w", err)
	}
	db := &DB{dir: dir, f: f, index: make(map[string]entryLoc)}
	if err := db.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return db, nil
}

// recover scans the log rebuilding the in-memory index, truncating any
// torn tail.
func (db *DB) recover() error {
	stat, err := db.f.Stat()
	if err != nil {
		return fmt.Errorf("kvdb: stat: %w", err)
	}
	size := stat.Size()
	var off int64
	hdr := make([]byte, headerSize)
	for off < size {
		if size-off < headerSize {
			break // torn header
		}
		if _, err := db.f.ReadAt(hdr, off); err != nil {
			return fmt.Errorf("kvdb: recovery read at %d: %w", off, err)
		}
		crc := binary.BigEndian.Uint32(hdr[0:])
		flags := hdr[4]
		keyLen := int(binary.BigEndian.Uint32(hdr[5:]))
		valLen := int(binary.BigEndian.Uint32(hdr[9:]))
		if keyLen == 0 || keyLen > MaxKeyLen || valLen > MaxValueLen {
			break // implausible header: treat as torn tail
		}
		recLen := int64(headerSize + keyLen + valLen)
		if off+recLen > size {
			break // torn body
		}
		body := make([]byte, keyLen+valLen)
		if _, err := db.f.ReadAt(body, off+headerSize); err != nil {
			return fmt.Errorf("kvdb: recovery body at %d: %w", off, err)
		}
		if crc32.ChecksumIEEE(append(hdr[4:], body...)) != crc {
			break // corrupt record: everything after is unreliable
		}
		key := string(body[:keyLen])
		if prev, ok := db.index[key]; ok {
			db.garbage += int64(headerSize + keyLen + prev.valLen)
		}
		if flags&flagTombstone != 0 {
			delete(db.index, key)
			db.garbage += recLen
			db.tombs++
		} else {
			db.index[key] = entryLoc{off: off + headerSize + int64(keyLen), valLen: valLen}
		}
		off += recLen
	}
	if off < size {
		if err := db.f.Truncate(off); err != nil {
			return fmt.Errorf("kvdb: truncating torn tail: %w", err)
		}
	}
	db.offset = off
	return nil
}

func (db *DB) appendRecord(flags byte, key string, val []byte) error {
	rec := encodeRecord(make([]byte, 0, headerSize+len(key)+len(val)), flags, key, val)
	if _, err := db.f.WriteAt(rec, db.offset); err != nil {
		return fmt.Errorf("kvdb: append: %w", err)
	}
	db.offset += int64(len(rec))
	return nil
}

// Put stores val under key, replacing any existing value.
func (db *DB) Put(key string, val []byte) error {
	if key == "" || len(key) > MaxKeyLen {
		return fmt.Errorf("kvdb: invalid key length %d", len(key))
	}
	if len(val) > MaxValueLen {
		return fmt.Errorf("kvdb: value too large: %d", len(val))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if prev, ok := db.index[key]; ok {
		db.garbage += int64(headerSize + len(key) + prev.valLen)
	} else {
		db.sorted = nil
	}
	valOff := db.offset + headerSize + int64(len(key))
	if err := db.appendRecord(0, key, val); err != nil {
		return err
	}
	db.index[key] = entryLoc{off: valOff, valLen: len(val)}
	return nil
}

// encodeRecord serialises one log record into buf (appending) and
// returns the extended buffer.
func encodeRecord(buf []byte, flags byte, key string, val []byte) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, headerSize)...)
	buf = append(buf, key...)
	buf = append(buf, val...)
	rec := buf[start:]
	rec[4] = flags
	binary.BigEndian.PutUint32(rec[5:], uint32(len(key)))
	binary.BigEndian.PutUint32(rec[9:], uint32(len(val)))
	binary.BigEndian.PutUint32(rec[0:], crc32.ChecksumIEEE(rec[4:]))
	return buf
}

// PutBatch stores several pairs with one log append: the whole batch is
// serialised into a single contiguous buffer and written with one
// WriteAt, so a batch costs one syscall instead of one per pair. Record
// framing is identical to Put's, and pairs land in the log in slice
// order — recovery after a torn tail therefore keeps a strict prefix of
// the batch, which is what the index layer's commit-marker ordering
// relies on. Duplicate keys within a batch resolve to the last value.
func (db *DB) PutBatch(pairs []kv.Pair) error {
	if len(pairs) == 0 {
		return nil
	}
	for _, p := range pairs {
		if p.Key == "" || len(p.Key) > MaxKeyLen {
			return fmt.Errorf("kvdb: invalid key length %d", len(p.Key))
		}
		if len(p.Value) > MaxValueLen {
			return fmt.Errorf("kvdb: value too large: %d", len(p.Value))
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	size := 0
	for _, p := range pairs {
		size += headerSize + len(p.Key) + len(p.Value)
	}
	buf := make([]byte, 0, size)
	type pending struct {
		key string
		loc entryLoc
	}
	locs := make([]pending, 0, len(pairs))
	off := db.offset
	for _, p := range pairs {
		buf = encodeRecord(buf, 0, p.Key, p.Value)
		locs = append(locs, pending{p.Key, entryLoc{
			off:    off + headerSize + int64(len(p.Key)),
			valLen: len(p.Value),
		}})
		off += int64(headerSize + len(p.Key) + len(p.Value))
	}
	if _, err := db.f.WriteAt(buf, db.offset); err != nil {
		return fmt.Errorf("kvdb: batch append: %w", err)
	}
	db.offset = off
	for _, l := range locs {
		if prev, ok := db.index[l.key]; ok {
			db.garbage += int64(headerSize + len(l.key) + prev.valLen)
		} else {
			db.sorted = nil
		}
		db.index[l.key] = l.loc
	}
	return nil
}

// GetBatch fetches several keys in one lock acquisition and one pass
// over the log. The returned slices align with keys; present[i] is
// false for absent keys. Reads are issued in log-offset order, so a
// batch of point lookups degrades into one forward sweep of the file
// rather than random seeking in request order.
func (db *DB) GetBatch(keys []string) (values [][]byte, present []bool, err error) {
	values = make([][]byte, len(keys))
	present = make([]bool, len(keys))
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, nil, ErrClosed
	}
	type fetch struct {
		i   int
		loc entryLoc
	}
	fetches := make([]fetch, 0, len(keys))
	for i, k := range keys {
		if loc, ok := db.index[k]; ok {
			fetches = append(fetches, fetch{i: i, loc: loc})
		}
	}
	sort.Slice(fetches, func(a, b int) bool { return fetches[a].loc.off < fetches[b].loc.off })
	for _, f := range fetches {
		val := make([]byte, f.loc.valLen)
		if _, err := db.f.ReadAt(val, f.loc.off); err != nil {
			return nil, nil, fmt.Errorf("kvdb: batch reading %q: %w", keys[f.i], err)
		}
		values[f.i] = val
		present[f.i] = true
	}
	return values, present, nil
}

// Get returns the value stored under key, or ErrNotFound.
func (db *DB) Get(key string) ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	loc, ok := db.index[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	val := make([]byte, loc.valLen)
	if _, err := db.f.ReadAt(val, loc.off); err != nil {
		return nil, fmt.Errorf("kvdb: reading %q: %w", key, err)
	}
	return val, nil
}

// Lookup returns the value under key with a presence flag instead of an
// error. Point misses are the read path's common case (dangling
// postings, cross-shard probes), and Get pays an ErrNotFound wrap
// allocation for every one; Lookup answers them allocation-free. When
// the sorted key cache is live, a binary search settles absence before
// the log index map is consulted at all — the kvdb mirror of the file
// backend's bloom skip.
func (db *DB) Lookup(key string) ([]byte, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, false, ErrClosed
	}
	if s := db.sorted; s != nil {
		i := sort.SearchStrings(s, key)
		if i >= len(s) || s[i] != key {
			return nil, false, nil
		}
	}
	loc, ok := db.index[key]
	if !ok {
		return nil, false, nil
	}
	val := make([]byte, loc.valLen)
	if _, err := db.f.ReadAt(val, loc.off); err != nil {
		return nil, false, fmt.Errorf("kvdb: reading %q: %w", key, err)
	}
	return val, true, nil
}

// Has reports whether key is present.
func (db *DB) Has(key string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.index[key]
	return ok && !db.closed
}

// Delete removes key. Deleting an absent key is a no-op. It is the
// one-element form of DeleteBatch, so the tombstone framing and the
// garbage accounting live in exactly one place.
func (db *DB) Delete(key string) error {
	return db.DeleteBatch([]string{key})
}

// DeleteBatch removes several keys with ONE log append: the tombstones
// are serialised into a single contiguous buffer and written with one
// WriteAt, mirroring PutBatch. Tombstones land in slice order, so a
// crash mid-write durably keeps a strict prefix of the batch's
// deletions — recovery never sees a deletion without every earlier one
// in the batch. Absent keys are skipped (no tombstone is logged for
// them), matching Delete's no-op semantics.
func (db *DB) DeleteBatch(keys []string) error {
	if len(keys) == 0 {
		return nil
	}
	for _, k := range keys {
		if k == "" || len(k) > MaxKeyLen {
			return fmt.Errorf("kvdb: invalid key length %d", len(k))
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	buf := make([]byte, 0, len(keys)*(headerSize+16))
	var doomed []string
	var reclaimed int64
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		prev, ok := db.index[k]
		if !ok || seen[k] {
			continue // absent (or already tombstoned in this batch): no-op
		}
		seen[k] = true
		buf = encodeRecord(buf, flagTombstone, k, nil)
		doomed = append(doomed, k)
		reclaimed += int64(headerSize+len(k)+prev.valLen) + int64(headerSize+len(k))
	}
	if len(doomed) == 0 {
		return nil
	}
	if _, err := db.f.WriteAt(buf, db.offset); err != nil {
		return fmt.Errorf("kvdb: batch delete append: %w", err)
	}
	db.offset += int64(len(buf))
	for _, k := range doomed {
		delete(db.index, k)
	}
	db.sorted = nil
	db.tombs += int64(len(doomed))
	db.garbage += reclaimed
	return nil
}

// Len returns the number of live keys.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.index)
}

// sortedKeysLocked returns the cached sorted key slice, rebuilding it if
// a key was added or removed since the last build. Callers must hold the
// write lock.
func (db *DB) sortedKeysLocked() []string {
	if db.sorted == nil {
		keys := make([]string, 0, len(db.index))
		for k := range db.index {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		db.sorted = keys
	}
	return db.sorted
}

// sortedSnapshot returns the sorted key cache, rebuilding only when
// stale. Cache warm, the cost is one shared-lock acquisition: the slice
// is immutable once built (writers replace, never mutate), so readers
// iterate it concurrently; keys deleted after the build are absorbed by
// the per-key Get re-check.
func (db *DB) sortedSnapshot() []string {
	db.mu.RLock()
	keys := db.sorted
	db.mu.RUnlock()
	if keys != nil {
		return keys
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.sortedKeysLocked()
}

// Keys returns all live keys with the given prefix, sorted. An empty
// prefix returns every key. The result is the caller's to keep.
func (db *DB) Keys(prefix string) []string {
	keys := db.sortedSnapshot()
	i := sort.SearchStrings(keys, prefix)
	j := i
	for j < len(keys) && strings.HasPrefix(keys[j], prefix) {
		j++
	}
	return append([]string(nil), keys[i:j]...)
}

// CountPrefix reports how many live keys carry the prefix without
// copying them — two binary searches on the sorted key cache, which is
// what makes the query planner's per-dimension cardinality probes cheap.
func (db *DB) CountPrefix(prefix string) int {
	keys := db.sortedSnapshot()
	i := sort.SearchStrings(keys, prefix)
	j := sort.Search(len(keys)-i, func(n int) bool {
		return !strings.HasPrefix(keys[i+n], prefix)
	}) // prefix-carrying keys are contiguous from i
	return j
}

// Scan calls fn for every live key with the given prefix, in sorted key
// order, stopping early if fn returns an error (which Scan returns).
func (db *DB) Scan(prefix string, fn func(key string, val []byte) error) error {
	return db.ScanFrom(prefix, "", fn)
}

// ScanFrom is Scan restricted to keys >= from — the primitive behind
// seekable posting iterators, which resume a prefix scan mid-list
// without re-reading the keys already consumed. Keys stream off the
// snapshot lazily: an early stop from fn ends the sweep without the
// remaining range being copied or visited.
func (db *DB) ScanFrom(prefix, from string, fn func(key string, val []byte) error) error {
	lo := prefix
	if from > lo {
		lo = from
	}
	keys := db.sortedSnapshot()
	for i := sort.SearchStrings(keys, lo); i < len(keys) && strings.HasPrefix(keys[i], prefix); i++ {
		v, err := db.Get(keys[i])
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue // deleted between the key snapshot and Get
			}
			return err
		}
		if err := fn(keys[i], v); err != nil {
			return err
		}
	}
	return nil
}

// GarbageBytes reports the approximate number of dead bytes in the log.
func (db *DB) GarbageBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.garbage
}

// LogBytes reports the log's current append position — the on-disk size
// the garbage ratio is computed against.
func (db *DB) LogBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.offset
}

// Tombstones reports how many tombstone entries the log currently holds
// (deletions not yet reclaimed by Compact).
func (db *DB) Tombstones() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tombs
}

// Sync forces buffered writes to stable storage.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.f.Sync()
}

// SetIncrementalCompaction selects between the incremental compaction
// path (the default: writers keep running during the rewrite) and the
// legacy stop-the-world path that holds the lock for the whole rewrite.
func (db *DB) SetIncrementalCompaction(on bool) {
	db.mu.Lock()
	db.legacyCompact = !on
	db.mu.Unlock()
}

// Compact rewrites the log keeping only live records, reclaiming space
// from superseded values and tombstones. The database remains usable
// afterwards. By default the rewrite runs against a snapshot of the
// index with writers still admitted; a short exclusive section at the
// end folds in the redo window (records appended during the rewrite)
// and swaps the logs.
func (db *DB) Compact() error {
	db.compactMu.Lock()
	defer db.compactMu.Unlock()
	db.mu.RLock()
	legacy := db.legacyCompact
	db.mu.RUnlock()
	if legacy {
		return db.compactSerial()
	}
	return db.compactIncremental()
}

// compactIncremental rewrites the log in three phases: (1) snapshot the
// index and append position under a brief read lock; (2) with no lock
// held, write every snapshot-live record into compact.tmp — the live
// log is append-only, so snapshot offsets stay readable — and fold in
// large redo windows as they accumulate; (3) under a short exclusive
// section, fold the final redo window (a verbatim byte copy of the
// appended region, parsed with recovery's logic to update the new
// index), fsync, rename, and swap. A crash at any point leaves either
// the old log or the fully renamed new log authoritative: Open discards
// a leftover compact.tmp.
func (db *DB) compactIncremental() error {
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return ErrClosed
	}
	snap := make(map[string]entryLoc, len(db.index))
	for k, loc := range db.index {
		snap[k] = loc
	}
	snapOff := db.offset
	db.mu.RUnlock()

	tmpPath := filepath.Join(db.dir, tmpFileName)
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("kvdb: compaction temp: %w", err)
	}
	fail := func(e error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return e
	}

	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	newIndex := make(map[string]entryLoc, len(snap))
	var newOff, newGarbage, newTombs int64
	for _, k := range keys {
		loc := snap[k]
		val := make([]byte, loc.valLen)
		if _, err := db.f.ReadAt(val, loc.off); err != nil {
			return fail(fmt.Errorf("kvdb: compaction read: %w", err))
		}
		rec := encodeRecord(make([]byte, 0, headerSize+len(k)+len(val)), 0, k, val)
		if _, err := tmp.WriteAt(rec, newOff); err != nil {
			return fail(fmt.Errorf("kvdb: compaction write: %w", err))
		}
		newIndex[k] = entryLoc{off: newOff + headerSize + int64(len(k)), valLen: len(val)}
		newOff += int64(len(rec))
	}

	// Fold large redo windows without the exclusive lock so the final
	// swap section only replays the last sliver of concurrent appends.
	const redoFoldMax = 1 << 20
	for spins := 0; spins < 8; spins++ {
		db.mu.RLock()
		cur, closed := db.offset, db.closed
		db.mu.RUnlock()
		if closed {
			return fail(ErrClosed)
		}
		if cur-snapOff <= redoFoldMax {
			break
		}
		if err := db.foldRedo(tmp, snapOff, cur, &newOff, newIndex, &newGarbage, &newTombs); err != nil {
			return fail(err)
		}
		snapOff = cur
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fail(ErrClosed)
	}
	if db.offset > snapOff {
		if err := db.foldRedo(tmp, snapOff, db.offset, &newOff, newIndex, &newGarbage, &newTombs); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("kvdb: compaction sync: %w", err))
	}
	if err := os.Rename(tmpPath, filepath.Join(db.dir, dataFileName)); err != nil {
		return fail(fmt.Errorf("kvdb: compaction rename: %w", err))
	}
	old := db.f
	db.f = tmp
	db.index = newIndex
	db.offset = newOff
	db.garbage = newGarbage
	db.tombs = newTombs
	old.Close()
	return nil
}

// foldRedo copies the live log's [from, to) byte range — whole records
// by construction, since offset only advances past fully written
// records — verbatim onto the end of the compaction temp file, and
// replays it against newIndex with the same accounting recovery uses.
func (db *DB) foldRedo(tmp *os.File, from, to int64, newOff *int64, newIndex map[string]entryLoc, garbage, tombs *int64) error {
	buf := make([]byte, to-from)
	if _, err := db.f.ReadAt(buf, from); err != nil {
		return fmt.Errorf("kvdb: compaction redo read: %w", err)
	}
	if _, err := tmp.WriteAt(buf, *newOff); err != nil {
		return fmt.Errorf("kvdb: compaction redo write: %w", err)
	}
	base := *newOff
	off := 0
	for off < len(buf) {
		if off+headerSize > len(buf) {
			return fmt.Errorf("kvdb: torn redo window at %d", from+int64(off))
		}
		flags := buf[off+4]
		keyLen := int(binary.BigEndian.Uint32(buf[off+5:]))
		valLen := int(binary.BigEndian.Uint32(buf[off+9:]))
		recLen := headerSize + keyLen + valLen
		if off+recLen > len(buf) {
			return fmt.Errorf("kvdb: torn redo window at %d", from+int64(off))
		}
		key := string(buf[off+headerSize : off+headerSize+keyLen])
		if prev, ok := newIndex[key]; ok {
			*garbage += int64(headerSize + keyLen + prev.valLen)
		}
		if flags&flagTombstone != 0 {
			delete(newIndex, key)
			*garbage += int64(recLen)
			*tombs++
		} else {
			newIndex[key] = entryLoc{off: base + int64(off+headerSize+keyLen), valLen: valLen}
		}
		off += recLen
	}
	*newOff = base + int64(len(buf))
	return nil
}

// compactSerial is the legacy stop-the-world compaction: it holds the
// exclusive lock for the entire rewrite. Retained for benchmarks and
// crash/conformance coverage of both paths.
func (db *DB) compactSerial() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	tmpPath := filepath.Join(db.dir, tmpFileName)
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("kvdb: compaction temp: %w", err)
	}
	keys := make([]string, 0, len(db.index))
	for k := range db.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	newIndex := make(map[string]entryLoc, len(db.index))
	var newOff int64
	for _, k := range keys {
		loc := db.index[k]
		val := make([]byte, loc.valLen)
		if _, err := db.f.ReadAt(val, loc.off); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("kvdb: compaction read: %w", err)
		}
		rec := make([]byte, headerSize+len(k)+len(val))
		binary.BigEndian.PutUint32(rec[5:], uint32(len(k)))
		binary.BigEndian.PutUint32(rec[9:], uint32(len(val)))
		copy(rec[headerSize:], k)
		copy(rec[headerSize+len(k):], val)
		binary.BigEndian.PutUint32(rec[0:], crc32.ChecksumIEEE(rec[4:]))
		if _, err := tmp.WriteAt(rec, newOff); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("kvdb: compaction write: %w", err)
		}
		newIndex[k] = entryLoc{off: newOff + headerSize + int64(len(k)), valLen: len(val)}
		newOff += int64(len(rec))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("kvdb: compaction sync: %w", err)
	}
	dataPath := filepath.Join(db.dir, dataFileName)
	if err := os.Rename(tmpPath, dataPath); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("kvdb: compaction rename: %w", err)
	}
	old := db.f
	db.f = tmp
	db.index = newIndex
	db.offset = newOff
	db.garbage = 0
	db.tombs = 0
	old.Close()
	return nil
}

// Close flushes and closes the database. Further operations fail with
// ErrClosed. Close is idempotent.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if err := db.f.Sync(); err != nil {
		db.f.Close()
		return fmt.Errorf("kvdb: close sync: %w", err)
	}
	return db.f.Close()
}

// Dir returns the directory the database lives in.
func (db *DB) Dir() string { return db.dir }

// DumpStats writes a short human-readable status line to w.
func (db *DB) DumpStats(w io.Writer) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	fmt.Fprintf(w, "kvdb: dir=%s keys=%d logBytes=%d garbageBytes=%d\n",
		db.dir, len(db.index), db.offset, db.garbage)
}
