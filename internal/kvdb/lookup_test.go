package kvdb

import (
	"errors"
	"fmt"
	"testing"
)

// TestLookupAgreesWithGet: Lookup is the allocation-light point read —
// present keys return the value, absent keys return (nil, false, nil)
// with no error, and both must agree with Get across puts, overwrites,
// deletes and a reopen (where the sorted key cache starts cold).
func TestLookupAgreesWithGet(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := db.Put(fmt.Sprintf("k/%02d", i), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Put("k/05", []byte("v-5-new")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("k/07"); err != nil {
		t.Fatal(err)
	}

	check := func(db *DB, phase string) {
		t.Helper()
		for _, probe := range []string{"k/00", "k/05", "k/07", "k/19", "k/99", "absent", ""} {
			lv, lok, lerr := db.Lookup(probe)
			if lerr != nil {
				t.Fatalf("%s: Lookup(%q) error: %v", phase, probe, lerr)
			}
			gv, gerr := db.Get(probe)
			if gok := gerr == nil; gok != lok {
				t.Fatalf("%s: Lookup(%q) ok=%v but Get err=%v", phase, probe, lok, gerr)
			}
			if !lok && !errors.Is(gerr, ErrNotFound) && gerr != nil {
				t.Fatalf("%s: Get(%q) unexpected error: %v", phase, probe, gerr)
			}
			if lok && string(lv) != string(gv) {
				t.Fatalf("%s: Lookup(%q) = %q, Get = %q", phase, probe, lv, gv)
			}
		}
	}
	check(db, "live")

	// Warm the sorted cache (Scan builds it), then probe again: the
	// binary-search negative shortcut must agree with the map.
	if err := db.Scan("k/", func(string, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	check(db, "warm")

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	check(re, "reopened")

	if _, ok, err := re.Lookup("k/07"); ok || err != nil {
		t.Fatalf("deleted key after reopen: ok=%v err=%v", ok, err)
	}
}
