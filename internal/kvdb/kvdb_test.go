package kvdb

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"preserv/internal/kv"
)

func openTemp(t *testing.T) *DB {
	t.Helper()
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPutGet(t *testing.T) {
	db := openTemp(t)
	if err := db.Put("alpha", []byte("one")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "one" {
		t.Fatalf("Get = %q, want one", v)
	}
}

func TestGetMissing(t *testing.T) {
	db := openTemp(t)
	if _, err := db.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestOverwrite(t *testing.T) {
	db := openTemp(t)
	db.Put("k", []byte("v1"))
	db.Put("k", []byte("v2"))
	v, err := db.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v2" {
		t.Fatalf("Get = %q, want v2", v)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d, want 1", db.Len())
	}
	if db.GarbageBytes() == 0 {
		t.Error("overwrite should create garbage")
	}
}

func TestDelete(t *testing.T) {
	db := openTemp(t)
	db.Put("k", []byte("v"))
	if err := db.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("key should be gone")
	}
	if db.Has("k") {
		t.Error("Has after delete")
	}
	if err := db.Delete("absent"); err != nil {
		t.Errorf("deleting absent key should be a no-op, got %v", err)
	}
}

func TestEmptyAndHugeKeys(t *testing.T) {
	db := openTemp(t)
	if err := db.Put("", []byte("v")); err == nil {
		t.Error("empty key should be rejected")
	}
	if err := db.Put(strings.Repeat("k", MaxKeyLen+1), []byte("v")); err == nil {
		t.Error("oversized key should be rejected")
	}
}

func TestEmptyValue(t *testing.T) {
	db := openTemp(t)
	if err := db.Put("k", nil); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("empty value read back as %q", v)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		db.Put(fmt.Sprintf("key%03d", i), []byte(fmt.Sprintf("val%d", i)))
	}
	db.Delete("key050")
	db.Put("key051", []byte("updated"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 99 {
		t.Fatalf("Len after reopen = %d, want 99", db2.Len())
	}
	if _, err := db2.Get("key050"); !errors.Is(err, ErrNotFound) {
		t.Error("deleted key resurrected after reopen")
	}
	v, err := db2.Get("key051")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "updated" {
		t.Fatalf("key051 = %q after reopen", v)
	}
}

func TestCrashRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.Put("good1", []byte("v1"))
	db.Put("good2", []byte("v2"))
	db.Close()

	// Simulate a crash mid-append: add a few garbage bytes.
	path := filepath.Join(dir, "data.log")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xDE, 0xAD, 0xBE})
	f.Close()

	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer db2.Close()
	if db2.Len() != 2 {
		t.Fatalf("Len after recovery = %d, want 2", db2.Len())
	}
	// The torn tail must be gone so new writes are clean.
	db2.Put("good3", []byte("v3"))
	db2.Close()
	db3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if db3.Len() != 3 {
		t.Fatalf("Len after write-past-recovery = %d, want 3", db3.Len())
	}
}

func TestCrashRecoveryCorruptMiddleStops(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.Put("a", []byte("1"))
	off := db.offset
	db.Put("b", []byte("2"))
	db.Close()

	// Corrupt the CRC of the second record.
	path := filepath.Join(dir, "data.log")
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF}, off)
	f.Close()

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !db2.Has("a") {
		t.Error("record before corruption must survive")
	}
	if db2.Has("b") {
		t.Error("record with bad CRC must be dropped")
	}
}

func TestLeftoverCompactionTempIgnored(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.Put("k", []byte("v"))
	db.Close()
	// Simulate crash mid-compaction.
	os.WriteFile(filepath.Join(dir, "compact.tmp"), []byte("partial"), 0o644)
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !db2.Has("k") {
		t.Error("main log must survive a leftover temp file")
	}
	if _, err := os.Stat(filepath.Join(dir, "compact.tmp")); !os.IsNotExist(err) {
		t.Error("leftover temp file should be removed")
	}
}

func TestKeysPrefixSorted(t *testing.T) {
	db := openTemp(t)
	for _, k := range []string{"b/2", "a/1", "b/1", "c", "b/10"} {
		db.Put(k, []byte("x"))
	}
	keys := db.Keys("b/")
	want := []string{"b/1", "b/10", "b/2"}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
	if got := len(db.Keys("")); got != 5 {
		t.Fatalf("all keys = %d, want 5", got)
	}
}

func TestScan(t *testing.T) {
	db := openTemp(t)
	for i := 0; i < 10; i++ {
		db.Put(fmt.Sprintf("rec/%02d", i), []byte{byte(i)})
	}
	var seen []string
	err := db.Scan("rec/", func(k string, v []byte) error {
		seen = append(seen, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 10 {
		t.Fatalf("scanned %d records, want 10", len(seen))
	}
	// Early stop.
	count := 0
	stop := errors.New("stop")
	err = db.Scan("rec/", func(k string, v []byte) error {
		count++
		if count == 3 {
			return stop
		}
		return nil
	})
	if err != stop || count != 3 {
		t.Fatalf("early stop: err=%v count=%d", err, count)
	}
}

func TestCompactReclaimsSpace(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte("x"), 1000)
	for i := 0; i < 100; i++ {
		db.Put("same-key", val)
	}
	db.Put("other", []byte("keep"))
	db.Delete("same-key")
	before := db.offset
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.offset >= before {
		t.Errorf("log did not shrink: %d -> %d", before, db.offset)
	}
	if db.GarbageBytes() != 0 {
		t.Errorf("garbage after compaction = %d", db.GarbageBytes())
	}
	v, err := db.Get("other")
	if err != nil || string(v) != "keep" {
		t.Fatalf("data lost in compaction: %q %v", v, err)
	}
	// And the DB keeps working after compaction.
	db.Put("post", []byte("compaction"))
	v, err = db.Get("post")
	if err != nil || string(v) != "compaction" {
		t.Fatalf("write after compaction: %q %v", v, err)
	}
}

func TestCompactSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir)
	for i := 0; i < 50; i++ {
		db.Put(fmt.Sprintf("k%d", i), []byte(strings.Repeat("v", i)))
	}
	for i := 0; i < 25; i++ {
		db.Delete(fmt.Sprintf("k%d", i))
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 25 {
		t.Fatalf("Len = %d, want 25", db2.Len())
	}
	for i := 25; i < 50; i++ {
		v, err := db2.Get(fmt.Sprintf("k%d", i))
		if err != nil || len(v) != i {
			t.Fatalf("k%d: %v len=%d", i, err, len(v))
		}
	}
}

func TestClosedOperationsFail(t *testing.T) {
	db := openTemp(t)
	db.Close()
	if err := db.Put("k", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close: %v", err)
	}
	if _, err := db.Get("k"); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after close: %v", err)
	}
	if err := db.Delete("k"); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete after close: %v", err)
	}
	if err := db.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync after close: %v", err)
	}
	if err := db.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact after close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	db := openTemp(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := db.Put(key, []byte(key)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				v, err := db.Get(key)
				if err != nil || string(v) != key {
					t.Errorf("Get(%s) = %q, %v", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if db.Len() != 800 {
		t.Fatalf("Len = %d, want 800", db.Len())
	}
}

func TestDumpStats(t *testing.T) {
	db := openTemp(t)
	db.Put("k", []byte("v"))
	var sb strings.Builder
	db.DumpStats(&sb)
	if !strings.Contains(sb.String(), "keys=1") {
		t.Errorf("DumpStats = %q", sb.String())
	}
}

// Property: a random sequence of puts and deletes leaves the DB with
// exactly the contents of a reference map, both live and after reopen.
func TestQuickMatchesReferenceMap(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		dir, err := os.MkdirTemp("", "kvdbq")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		db, err := Open(dir)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		ref := make(map[string]string)
		n := int(n8) + 20
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(20))
			if rng.Intn(4) == 0 {
				if db.Delete(key) != nil {
					db.Close()
					return false
				}
				delete(ref, key)
			} else {
				val := fmt.Sprintf("v%d", rng.Int63())
				if db.Put(key, []byte(val)) != nil {
					db.Close()
					return false
				}
				ref[key] = val
			}
		}
		check := func(d *DB) bool {
			if d.Len() != len(ref) {
				return false
			}
			for k, want := range ref {
				v, err := d.Get(k)
				if err != nil || string(v) != want {
					return false
				}
			}
			return true
		}
		if !check(db) {
			db.Close()
			return false
		}
		if db.Close() != nil {
			return false
		}
		db2, err := Open(dir)
		if err != nil {
			return false
		}
		defer db2.Close()
		return check(db2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPutBatchRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pairs := []kv.Pair{
		{Key: "b", Value: []byte("beta")},
		{Key: "a", Value: []byte("alpha")},
		{Key: "c", Value: nil},
	}
	if err := db.PutBatch(pairs); err != nil {
		t.Fatal(err)
	}
	check := func(d *DB) {
		t.Helper()
		for _, p := range pairs {
			v, err := d.Get(p.Key)
			if err != nil || !bytes.Equal(v, p.Value) {
				t.Fatalf("Get(%s) = %q err=%v, want %q", p.Key, v, err, p.Value)
			}
		}
		if d.Len() != len(pairs) {
			t.Fatalf("Len = %d, want %d", d.Len(), len(pairs))
		}
	}
	check(db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	check(db2)
}

func TestPutBatchTornTailKeepsPrefix(t *testing.T) {
	// A batch is one contiguous append of individually CRC-framed
	// records, so a torn tail must recover a strict prefix of the batch
	// — the property the index layer's commit-marker ordering needs.
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.PutBatch([]kv.Pair{
		{Key: "k1", Value: []byte("v1")},
		{Key: "k2", Value: []byte("v2")},
		{Key: "k3", Value: []byte("v3")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, dataFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for _, want := range []struct{ k, v string }{{"k1", "v1"}, {"k2", "v2"}} {
		v, err := db2.Get(want.k)
		if err != nil || string(v) != want.v {
			t.Fatalf("Get(%s) after torn batch tail = %q err=%v", want.k, v, err)
		}
	}
	if _, err := db2.Get("k3"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn final batch record should be gone, got err=%v", err)
	}
}

func TestPutBatchOverwriteAccountsGarbage(t *testing.T) {
	db := openTemp(t)
	if err := db.Put("k", []byte("old-value")); err != nil {
		t.Fatal(err)
	}
	if err := db.PutBatch([]kv.Pair{{Key: "k", Value: []byte("new")}}); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get("k")
	if err != nil || string(v) != "new" {
		t.Fatalf("Get = %q err=%v, want new", v, err)
	}
	if db.GarbageBytes() == 0 {
		t.Error("superseded record not counted as garbage")
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d, want 1", db.Len())
	}
}

func TestPutBatchValidation(t *testing.T) {
	db := openTemp(t)
	if err := db.PutBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := db.PutBatch([]kv.Pair{{Key: "", Value: nil}}); err == nil {
		t.Error("empty key accepted")
	}
	if err := db.PutBatch([]kv.Pair{{Key: "ok"}, {Key: strings.Repeat("k", MaxKeyLen+1)}}); err == nil {
		t.Error("oversized key accepted")
	}
	if db.Len() != 0 {
		t.Errorf("failed batches left %d keys", db.Len())
	}
	db.Close()
	if err := db.PutBatch([]kv.Pair{{Key: "k"}}); !errors.Is(err, ErrClosed) {
		t.Errorf("PutBatch on closed db = %v, want ErrClosed", err)
	}
}
