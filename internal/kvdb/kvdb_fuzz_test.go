package kvdb

// Native fuzz target for the log reader: recovery must accept an
// arbitrary data.log — torn tails, flipped bits, hostile length fields
// — without panicking, truncate to the valid prefix, and reach a state
// a second open reproduces exactly (recovery is idempotent).

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"preserv/internal/kv"
)

// seedLog builds a valid log (puts, an overwrite, a tombstone) by
// running the real writer in a scratch directory.
func seedLog(f *testing.F) []byte {
	dir, err := os.MkdirTemp("", "kvdbfuzzseed")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := Open(dir)
	if err != nil {
		f.Fatal(err)
	}
	if err := db.PutBatch([]kv.Pair{
		{Key: "i/a/1", Value: []byte("one")},
		{Key: "i/a/2", Value: []byte("two")},
		{Key: "x/p/1", Value: nil},
	}); err != nil {
		f.Fatal(err)
	}
	if err := db.Put("i/a/1", []byte("one-rewritten")); err != nil {
		f.Fatal(err)
	}
	if err := db.Delete("i/a/2"); err != nil {
		f.Fatal(err)
	}
	if err := db.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, dataFileName))
	if err != nil {
		f.Fatal(err)
	}
	return data
}

func FuzzRecover(f *testing.F) {
	valid := seedLog(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn tail
	f.Add(valid[:3])            // torn first header
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0xFF
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, dataFileName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Open(dir) // must not panic, whatever data is
		if err != nil {
			return // an unreadable log may be rejected, never crashed on
		}
		keys := db.Keys("")
		for _, k := range keys {
			if _, err := db.Get(k); err != nil {
				t.Fatalf("recovered key %q does not read back: %v", k, err)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		// Idempotence: recovery truncated the torn tail, so a second
		// open sees a fully valid log and the same live key set.
		db2, err := Open(dir)
		if err != nil {
			t.Fatalf("second open after recovery failed: %v", err)
		}
		if again := db2.Keys(""); !reflect.DeepEqual(keys, again) {
			t.Fatalf("recovery not idempotent: %v vs %v", keys, again)
		}
		db2.Close()
	})
}
