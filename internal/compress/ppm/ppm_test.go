package ppm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTripBasic(t *testing.T) {
	cases := []string{
		"",
		"a",
		"ab",
		"aaaaaaaaaaaaaaaa",
		"hello, world",
		"abracadabra abracadabra abracadabra",
		strings.Repeat("MKVLATRESGW", 500),
	}
	for _, c := range cases {
		comp, err := Compress([]byte(c))
		if err != nil {
			t.Fatalf("Compress(%q): %v", c, err)
		}
		back, err := Decompress(comp)
		if err != nil {
			t.Fatalf("Decompress(%q): %v", c, err)
		}
		if string(back) != c {
			t.Fatalf("round trip failed for %q: got %q", c, back)
		}
	}
}

func TestRoundTripAllOrders(t *testing.T) {
	data := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 50))
	for order := 1; order <= MaxOrder; order++ {
		comp, err := CompressOrder(data, order)
		if err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
		back, err := Decompress(comp)
		if err != nil {
			t.Fatalf("order %d decompress: %v", order, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("order %d round trip failed", order)
		}
	}
}

func TestRoundTripAllByteValues(t *testing.T) {
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i)
	}
	comp, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("all-byte-values round trip failed")
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 20000)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	comp, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("random data round trip failed")
	}
}

func TestRoundTripProteinLikeSample(t *testing.T) {
	// Synthetic amino-acid sequence with skewed composition — the actual
	// workload of the Measure workflow.
	alphabet := []byte("ACDEFGHIKLMNPQRSTVWY")
	rng := rand.New(rand.NewSource(12))
	data := make([]byte, 50000)
	for i := range data {
		// Skew: leucine/alanine-like residues more common.
		if rng.Intn(10) < 4 {
			data[i] = alphabet[rng.Intn(4)]
		} else {
			data[i] = alphabet[rng.Intn(len(alphabet))]
		}
	}
	comp, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("protein sample round trip failed")
	}
	// 20-symbol alphabet: must beat 8 bits/byte comfortably.
	ratio := float64(len(comp)) / float64(len(data))
	if ratio > 0.65 {
		t.Errorf("compression ratio %.3f on 20-letter alphabet, want < 0.65", ratio)
	}
}

func TestCompressesStructureBelowShuffled(t *testing.T) {
	// Core experimental property: structure ⇒ smaller output.
	structured := bytes.Repeat([]byte("MKVLATRESGWQ"), 2000)
	shuffled := append([]byte(nil), structured...)
	rng := rand.New(rand.NewSource(13))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	cs, err := Compress(structured)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := Compress(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) >= len(cr) {
		t.Errorf("structured %d >= shuffled %d; PPM must exploit structure", len(cs), len(cr))
	}
}

func TestHigherOrderHelpsOnText(t *testing.T) {
	data := []byte(strings.Repeat("provenance is the documentation of process. ", 300))
	c1, err := CompressOrder(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	c4, err := CompressOrder(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(c4) >= len(c1) {
		t.Errorf("order-4 output %d >= order-1 output %d on repetitive text", len(c4), len(c1))
	}
}

func TestOrderValidation(t *testing.T) {
	if _, err := CompressOrder([]byte("x"), 0); err == nil {
		t.Error("order 0 should error")
	}
	if _, err := CompressOrder([]byte("x"), MaxOrder+1); err == nil {
		t.Error("order beyond MaxOrder should error")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	comp, err := Compress([]byte("payload to be corrupted in several ways"))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     comp[:6],
		"bad magic": append([]byte("JUNK"), comp[4:]...),
		"bad order": func() []byte {
			c := append([]byte(nil), comp...)
			c[4] = 99
			return c
		}(),
		"truncated payload": comp[:len(comp)-3],
	}
	for name, data := range cases {
		if _, err := Decompress(data); err == nil {
			t.Errorf("%s: Decompress succeeded, want error", name)
		}
	}
}

func TestEmptyInputHeaderOnly(t *testing.T) {
	comp, err := Compress(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("empty round trip returned %d bytes", len(back))
	}
}

func TestRescaleStability(t *testing.T) {
	// Long single-symbol run forces repeated rescales in the order-0
	// context; the stream must still round-trip.
	data := bytes.Repeat([]byte{'Q'}, 100000)
	comp, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("rescale round trip failed")
	}
	if len(comp) > 2000 {
		t.Errorf("run of 100000 identical bytes compressed to %d, want < 2000", len(comp))
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		comp, err := Compress(data)
		if err != nil {
			return false
		}
		back, err := Decompress(comp)
		return err == nil && bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripSmallAlphabet(t *testing.T) {
	// Group-encoded samples have tiny alphabets (4-8 symbols); bias the
	// generator accordingly.
	f := func(data []byte, shift uint8) bool {
		mapped := make([]byte, len(data))
		for i, b := range data {
			mapped[i] = 'A' + (b+shift)%5
		}
		comp, err := Compress(mapped)
		if err != nil {
			return false
		}
		back, err := Decompress(comp)
		return err == nil && bytes.Equal(back, mapped)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
